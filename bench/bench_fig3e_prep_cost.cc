// Figure 3e: construction cost achieved by MC3[G] on the synthetic dataset
// with and without the preprocessing step, versus the number of queries.
// The paper reports preprocessing saving ~35% of construction cost in the
// general case (it removes dominated classifiers the greedy/f-approx would
// otherwise pick, and forces provably-optimal selections).
#include "bench/bench_util.h"
#include "data/synthetic.h"

int main() {
  using namespace mc3;
  using namespace mc3::bench;

  PrintHeader("Figure 3e: synthetic, general case, cost with/without prep");

  // The paper regenerates the synthetic dataset for each experiment; a
  // fresh instance is drawn per point (the property pool scales with n).
  // prune_unused is disabled on both arms so the bench isolates the effect
  // of Algorithm 1, as in the paper (which has no post-pass).
  SolverOptions with_options;
  with_options.prune_unused = false;
  SolverOptions without_options;
  without_options.preprocess = false;
  without_options.prune_unused = false;
  const GeneralSolver with_prep(with_options);
  const GeneralSolver without_prep(without_options);

  TablePrinter table(
      {"#queries", "no-prep cost", "prep cost", "cost saved"});
  for (size_t n : SubsetSizes(Scaled(10000))) {
    data::SyntheticConfig config;
    config.num_queries = n;
    config.seed = n * 5 + 7;
    const Instance sub = data::GenerateSynthetic(config);
    const RunOutcome without = RunSolver(without_prep, sub);
    const RunOutcome with = RunSolver(with_prep, sub);
    const double saved =
        without.cost > 0 ? 100.0 * (1.0 - with.cost / without.cost) : 0;
    table.AddRow({std::to_string(n), TablePrinter::Num(without.cost, 0),
                  TablePrinter::Num(with.cost, 0),
                  TablePrinter::Num(saved, 1) + "%"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper shape: preprocessing reduces the construction cost of the\n"
      "approximate solution (~35%% reported).\n");
  return 0;
}
