// Table 1: "The datasets used in the experiments" — one row per dataset
// (#queries, max cost, max length), extended with the additional marginals
// the paper quotes in prose (fraction of short queries, #classifiers,
// incidence).
#include "bench/bench_util.h"
#include "core/stats.h"
#include "data/bestbuy.h"
#include "data/private_dataset.h"
#include "data/synthetic.h"

int main() {
  using namespace mc3;
  using namespace mc3::bench;

  PrintHeader("Table 1: datasets");

  data::BestBuyConfig bb_config;
  bb_config.num_queries = Scaled(1000);
  const Instance bb = data::GenerateBestBuy(bb_config);

  data::PrivateConfig p_config;
  p_config.electronics_queries = Scaled(5500);
  p_config.home_garden_queries = Scaled(3500);
  p_config.fashion_queries = Scaled(1000);
  const data::PrivateDataset p = data::GeneratePrivate(p_config);

  data::SyntheticConfig s_config;
  // Full paper size is 100,000; default bench size keeps the binary fast on
  // one core (MC3_BENCH_SCALE=10 restores the paper's size).
  s_config.num_queries = Scaled(10000);
  const Instance s = data::GenerateSynthetic(s_config);

  TablePrinter table({"Dataset", "# of queries", "Max cost", "Max length",
                      "% len<=2", "# classifiers", "incidence I"});
  const auto add = [&](const std::string& name, const Instance& inst) {
    const InstanceStats stats = ComputeStats(inst);
    table.AddRow({name, std::to_string(stats.num_queries),
                  TablePrinter::Num(stats.max_cost, 0),
                  std::to_string(stats.max_query_length),
                  TablePrinter::Num(100 * stats.fraction_short, 1),
                  std::to_string(stats.num_classifiers),
                  std::to_string(stats.incidence)});
  };
  add("BestBuy (BB)", bb);
  add("Private (P)", p.instance);
  add("Synthetic (S)", s);
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper reference: BB 1000 queries / max cost 1 / max length 4;\n"
      "                 P 10,000 / 63 / 5-6;  S 100,000 / 50 / 10.\n"
      "(Set MC3_BENCH_SCALE=10 for the paper's synthetic size.)\n");
  return 0;
}
