// Shared harness utilities for the figure/table reproduction binaries.
//
// Each bench binary regenerates one table or figure of the paper's Section 6
// and prints the corresponding rows/series. Sizes can be scaled with the
// MC3_BENCH_SCALE environment variable (a positive double; default 1.0 keeps
// each binary's default workload, values > 1 approach the paper's full
// sizes, values < 1 give a quick smoke run).
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/mc3.h"
#include "obs/metrics.h"
#include "util/table.h"
#include "util/timer.h"

namespace mc3::bench {

/// Scale factor from MC3_BENCH_SCALE (default 1.0, clamped to [0.01, 100]).
inline double Scale() {
  const char* env = std::getenv("MC3_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  if (v < 0.01) return 0.01;
  if (v > 100) return 100;
  return v;
}

/// Applies the scale to a base size, keeping at least `min_size`.
inline size_t Scaled(size_t base, size_t min_size = 10) {
  const auto scaled = static_cast<size_t>(static_cast<double>(base) * Scale());
  return scaled < min_size ? min_size : scaled;
}

/// Runs `solver` on `instance`, returning (cost, wall seconds). Prints a
/// diagnostic and returns infinite cost on error.
struct RunOutcome {
  Cost cost = kInfiniteCost;
  double seconds = 0;
  bool ok = false;
};

inline RunOutcome RunSolver(const Solver& solver, const Instance& instance) {
  Timer timer;
  auto result = solver.Solve(instance);
  RunOutcome outcome;
  outcome.seconds = timer.Seconds();
  // Every harness solve also lands in the obs latency histogram, so a bench
  // binary's solve/bench report carries the p50/p95/p99 of its runs.
  obs::MetricsRegistry::Global()
      .GetHistogram("bench.solve_seconds")
      .Record(outcome.seconds);
  if (!result.ok()) {
    std::fprintf(stderr, "[%s] solve failed: %s\n", solver.Name().c_str(),
                 result.status().ToString().c_str());
    return outcome;
  }
  outcome.cost = result->cost;
  outcome.ok = true;
  return outcome;
}

/// Runs `solver` `reps` times, returning the best (minimum) wall time with
/// the (identical) cost — the standard way to de-noise timing runs.
inline RunOutcome RunSolverBest(const Solver& solver, const Instance& instance,
                                int reps) {
  RunOutcome best;
  for (int i = 0; i < reps; ++i) {
    const RunOutcome run = RunSolver(solver, instance);
    if (!run.ok) return run;
    if (!best.ok || run.seconds < best.seconds) best = run;
  }
  return best;
}

/// Runs `solver` `reps` times, returning the MEDIAN wall time with the
/// (identical) cost and all repetitions. More robust than the minimum when a
/// run-to-run trajectory is tracked (the median has a breakdown point; the
/// minimum only ever decreases with more reps).
struct RepeatedOutcome {
  RunOutcome median;                 ///< cost + median wall seconds
  std::vector<double> repetitions;   ///< every run's wall seconds, in order
};

inline RepeatedOutcome RunSolverMedian(const Solver& solver,
                                       const Instance& instance, int reps) {
  RepeatedOutcome out;
  for (int i = 0; i < reps; ++i) {
    const RunOutcome run = RunSolver(solver, instance);
    if (!run.ok) {
      out.median = run;
      return out;
    }
    out.median = run;  // keeps the (identical) cost; seconds fixed below
    out.repetitions.push_back(run.seconds);
  }
  std::vector<double> sorted = out.repetitions;
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  if (n > 0) {
    out.median.seconds = n % 2 == 1
                             ? sorted[n / 2]
                             : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  }
  return out;
}

/// Nested query-subset cardinalities used as the x axis of Figure 3 panels:
/// fractions of the full load, ending at the full load.
inline std::vector<size_t> SubsetSizes(size_t total) {
  std::vector<size_t> sizes;
  for (double fraction : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    const auto n = static_cast<size_t>(fraction * static_cast<double>(total));
    if (n >= 2 && (sizes.empty() || n > sizes.back())) sizes.push_back(n);
  }
  return sizes;
}

inline void PrintHeader(const std::string& title) {
  std::printf("=== %s ===\n", title.c_str());
}

}  // namespace mc3::bench

