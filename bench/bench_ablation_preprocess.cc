// Ablation: the contribution of each preprocessing step (Algorithm 1) to
// solution cost and running time of the general solver, on the P-like and
// synthetic workloads. DESIGN.md calls out the per-step design choices;
// this bench quantifies them.
#include "bench/bench_util.h"
#include "data/private_dataset.h"
#include "data/synthetic.h"

namespace {

using namespace mc3;
using namespace mc3::bench;

void RunAblation(const std::string& name, const Instance& instance) {
  struct Config {
    const char* label;
    bool preprocess;
    bool step1, step3, step4, step2;
  };
  const Config configs[] = {
      {"none", false, false, false, false, false},
      {"step1 only (forced singletons)", true, true, false, false, false},
      {"step1+2 (partition)", true, true, false, false, true},
      {"step1+2+3 (decompositions)", true, true, true, false, true},
      {"full (all four steps)", true, true, true, true, true},
  };
  TablePrinter table({"configuration", "cost", "time (s)", "components"});
  for (const Config& config : configs) {
    SolverOptions options;
    options.preprocess = config.preprocess;
    options.preprocess_options.step1_forced_singletons = config.step1;
    options.preprocess_options.step3_decompositions = config.step3;
    options.preprocess_options.step4_k2_singleton_prune = config.step4;
    options.preprocess_options.step2_partition = config.step2;
    const GeneralSolver solver(options);
    Timer timer;
    auto result = solver.Solve(instance);
    const double seconds = timer.Seconds();
    if (!result.ok()) {
      table.AddRow({config.label, "error", "-", "-"});
      continue;
    }
    table.AddRow({config.label, TablePrinter::Num(result->cost, 0),
                  TablePrinter::Num(seconds, 3),
                  std::to_string(result->num_components)});
  }
  PrintHeader("Preprocessing ablation: " + name);
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  data::PrivateConfig p_config;
  p_config.electronics_queries = Scaled(2000);
  p_config.home_garden_queries = Scaled(1500);
  p_config.fashion_queries = Scaled(500);
  RunAblation("P-like dataset",
              data::GeneratePrivate(p_config).instance);

  data::SyntheticConfig s_config;
  s_config.num_queries = Scaled(4000);
  RunAblation("synthetic dataset", data::GenerateSynthetic(s_config));
  return 0;
}
