// Figure 3c: running time of MC3[S] on the synthetic dataset (restricted to
// its short queries), with and without the preprocessing step, versus the
// number of queries. The paper reports preprocessing saving ~85% of the
// running time; solution cost is unaffected (the solver is exact either
// way).
#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "util/float_cmp.h"

int main() {
  using namespace mc3;
  using namespace mc3::bench;

  PrintHeader("Figure 3c: synthetic, k=2, runtime with/without preprocessing");

  // The k = 2 solver needs a k <= 2 workload: generate the synthetic
  // dataset and keep its length-2 queries (half the load by construction).
  // Both arms time the algorithm alone (no defensive verification, no
  // post-pass), matching the paper's methodology.
  SolverOptions with_options;
  with_options.prune_unused = false;
  with_options.verify_solution = false;
  SolverOptions without_options;
  without_options.preprocess = false;
  without_options.prune_unused = false;
  without_options.verify_solution = false;
  const K2ExactSolver with_prep(with_options);
  const K2ExactSolver without_prep(without_options);

  // Median over 5 repetitions (not the minimum): robust against one-sided
  // noise when runs are tracked across the bench trajectory.
  TablePrinter table({"#queries", "no-prep time (s)", "prep time (s)",
                      "time saved", "cost (identical)"});
  for (size_t n : SubsetSizes(Scaled(50000))) {
    // Fresh instance per point (the paper regenerates per experiment),
    // restricted to its length <= 2 queries.
    data::SyntheticConfig config;
    config.num_queries = n * 2;  // about half the queries have length 2
    config.seed = n * 3 + 2;
    const Instance full = data::GenerateSynthetic(config);
    std::vector<size_t> short_idx;
    for (size_t i = 0; i < full.NumQueries(); ++i) {
      if (full.queries()[i].size() <= 2) short_idx.push_back(i);
    }
    const Instance sub = SubInstance(full, short_idx);
    const size_t actual_n = sub.NumQueries();
    (void)actual_n;
    const RunOutcome without = RunSolverMedian(without_prep, sub, 5).median;
    const RunOutcome with = RunSolverMedian(with_prep, sub, 5).median;
    const double saved =
        without.seconds > 0
            ? 100.0 * (1.0 - with.seconds / without.seconds)
            : 0;
    if (with.ok && without.ok && !ApproxEq(with.cost, without.cost)) {
      std::fprintf(stderr,
                   "ERROR: preprocessing changed the optimal cost "
                   "(%f vs %f) at n=%zu\n",
                   with.cost, without.cost, n);
      return 1;
    }
    table.AddRow({std::to_string(sub.NumQueries()), TablePrinter::Num(without.seconds, 3),
                  TablePrinter::Num(with.seconds, 3),
                  TablePrinter::Num(saved, 1) + "%",
                  TablePrinter::Num(with.cost, 0)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper shape: preprocessing saves a large fraction (~85%%) of the\n"
      "running time; the optimal cost is identical by Theorem 4.1.\n");
  return 0;
}
