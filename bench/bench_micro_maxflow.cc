// Micro-benchmark (google-benchmark): the max-flow engines on the bipartite
// networks Algorithm 2 actually produces, supporting the paper's Section 6
// discussion of bipartite max-flow algorithm choice (Dinic [10] won).
#include <benchmark/benchmark.h>

#include "core/instance_util.h"
#include "core/k2_solver.h"
#include "data/synthetic.h"
#include "flow/bipartite_vertex_cover.h"
#include "util/rng.h"

namespace {

using namespace mc3;

/// Builds a bipartite WVC instance shaped like the k = 2 reduction: left =
/// properties, right = queries, two edges per right vertex.
flow::BipartiteVcInstance MakeReductionShapedInstance(int num_queries,
                                                      uint64_t seed) {
  Rng rng(seed);
  const int num_props = std::max(2, num_queries / 4);
  flow::BipartiteVcInstance inst;
  for (int i = 0; i < num_props; ++i) {
    inst.left_weights.push_back(1 + double(rng.UniformInt(0, 49)));
  }
  for (int r = 0; r < num_queries; ++r) {
    inst.right_weights.push_back(1 + double(rng.UniformInt(0, 49)));
    const auto a = static_cast<int32_t>(rng.UniformInt(0, num_props - 1));
    auto b = static_cast<int32_t>(rng.UniformInt(0, num_props - 1));
    if (b == a) b = (b + 1) % num_props;
    inst.edges.emplace_back(a, static_cast<int32_t>(r));
    inst.edges.emplace_back(b, static_cast<int32_t>(r));
  }
  return inst;
}

void BM_BipartiteVc(benchmark::State& state, flow::MaxFlowAlgorithm algo) {
  const auto instance = MakeReductionShapedInstance(
      static_cast<int>(state.range(0)), /*seed=*/42);
  for (auto _ : state) {
    auto solution = flow::SolveBipartiteVertexCover(instance, algo);
    benchmark::DoNotOptimize(solution);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Dinic(benchmark::State& state) {
  BM_BipartiteVc(state, flow::MaxFlowAlgorithm::kDinic);
}
void BM_PushRelabel(benchmark::State& state) {
  BM_BipartiteVc(state, flow::MaxFlowAlgorithm::kPushRelabel);
}
void BM_EdmondsKarp(benchmark::State& state) {
  BM_BipartiteVc(state, flow::MaxFlowAlgorithm::kEdmondsKarp);
}

BENCHMARK(BM_Dinic)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PushRelabel)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_EdmondsKarp)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMillisecond);

/// End-to-end Algorithm 2 with each engine on a synthetic k = 2 slice.
void BM_K2EndToEnd(benchmark::State& state, flow::MaxFlowAlgorithm algo) {
  data::SyntheticConfig config;
  config.num_queries = 4000;
  const Instance full = data::GenerateSynthetic(config);
  std::vector<size_t> short_idx;
  for (size_t i = 0; i < full.NumQueries(); ++i) {
    if (full.queries()[i].size() <= 2) short_idx.push_back(i);
  }
  const Instance instance = SubInstance(full, short_idx);
  SolverOptions options;
  options.max_flow = algo;
  const K2ExactSolver solver(options);
  for (auto _ : state) {
    auto result = solver.Solve(instance);
    benchmark::DoNotOptimize(result);
  }
}

void BM_K2Dinic(benchmark::State& state) {
  BM_K2EndToEnd(state, flow::MaxFlowAlgorithm::kDinic);
}
void BM_K2PushRelabel(benchmark::State& state) {
  BM_K2EndToEnd(state, flow::MaxFlowAlgorithm::kPushRelabel);
}

BENCHMARK(BM_K2Dinic)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_K2PushRelabel)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
