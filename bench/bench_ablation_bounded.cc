// Ablation for Section 5.3 "Bounded classifiers": in practice only
// classifiers of length at most k' < k are considered (often k' = 2). This
// bench sweeps k' on the P-like workload and reports the achieved cost and
// the resulting WSC parameters (frequency f, degree Delta) the paper's
// improved bounds are stated in: f <= sum_{i<k'} C(k-1, i) (= k for k'=2),
// Delta <= (k'-1) * I.
#include <cmath>

#include "bench/bench_util.h"
#include "core/wsc_reduction.h"
#include "data/private_dataset.h"
#include "setcover/instance.h"

int main() {
  using namespace mc3;
  using namespace mc3::bench;

  PrintHeader("Section 5.3 ablation: bounded classifier length k'");

  data::PrivateConfig config;
  config.electronics_queries = Scaled(1500);
  config.home_garden_queries = Scaled(1000);
  config.fashion_queries = Scaled(400);
  const Instance instance = data::GeneratePrivate(config).instance;
  const size_t k = instance.MaxQueryLength();

  const GeneralSolver solver;
  TablePrinter table({"k' (max classifier length)", "cost", "WSC freq f",
                      "WSC degree Delta", "feasible"});
  for (size_t bound = 1; bound <= k; ++bound) {
    const Instance bounded = BoundClassifierLength(instance, bound);
    const WscReduction reduction = ReduceToWsc(bounded);
    const int32_t f = setcover::WscFrequency(reduction.wsc);
    const int32_t degree = setcover::WscDegree(reduction.wsc);
    auto result = solver.Solve(bounded);
    table.AddRow({std::to_string(bound),
                  result.ok() ? TablePrinter::Num(result->cost, 0)
                              : std::string("-"),
                  std::to_string(f), std::to_string(degree),
                  result.ok() ? "yes" : result.status().ToString()});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: cost decreases as k' grows (a richer classifier\n"
      "menu can only help), most of the benefit arriving by k' = 2-3;\n"
      "f grows with k' (up to 2^(k-1)), tightening the approximation\n"
      "trade-off the paper describes.\n"
      "(Note: the generator itself prices only blocks of length <= 3 plus\n"
      "full-query classifiers, so k' beyond 3 adds only the latter.)\n");
  return 0;
}
