// Figure 3d (described in "Solution quality", Section 6.2): classifier
// construction cost on the P dataset, general case (queries up to length 6),
// versus the number of queries. Competitors: MC3[G] (Algorithm 3),
// Short-First, Local-Greedy, Query-Oriented, Property-Oriented.
//
// The 1000-query point is the fashion category specifically (96% short),
// where Short-First wins; on all larger random subsets MC3[G] is best
// (~12% below its closest competitor in the paper).
#include "bench/bench_util.h"
#include "data/private_dataset.h"

int main() {
  using namespace mc3;
  using namespace mc3::bench;

  PrintHeader("Figure 3d: P dataset, general case, construction cost");

  data::PrivateConfig config;
  config.electronics_queries = Scaled(5500);
  config.home_garden_queries = Scaled(3500);
  config.fashion_queries = Scaled(1000);
  const data::PrivateDataset dataset = data::GeneratePrivate(config);
  const Instance& instance = dataset.instance;

  const GeneralSolver mc3g;
  const ShortFirstSolver sf;
  const LocalGreedySolver lg;
  const QueryOrientedSolver qo;
  const PropertyOrientedSolver po;

  TablePrinter table({"#queries", "MC3[G]", "SF", "Local-Greedy",
                      "Query-Oriented", "Property-Oriented"});
  auto add_row = [&](const std::string& label, const Instance& sub) {
    table.AddRow({label, TablePrinter::Num(RunSolver(mc3g, sub).cost, 0),
                  TablePrinter::Num(RunSolver(sf, sub).cost, 0),
                  TablePrinter::Num(RunSolver(lg, sub).cost, 0),
                  TablePrinter::Num(RunSolver(qo, sub).cost, 0),
                  TablePrinter::Num(RunSolver(po, sub).cost, 0)});
  };

  // The fashion-category slice (the paper's smallest subset).
  const auto fashion_idx = dataset.CategoryQueryIndices("fashion");
  add_row(std::to_string(fashion_idx.size()) + " (fashion)",
          SubInstance(instance, fashion_idx));

  for (size_t n : SubsetSizes(instance.NumQueries())) {
    if (n <= fashion_idx.size()) continue;
    add_row(std::to_string(n),
            RandomSubInstance(instance, n, /*seed=*/n * 11 + 3));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper shape: SF best on the fashion slice (96%% short queries);\n"
      "MC3[G] best on all larger subsets, ~12%% below its closest\n"
      "competitor.\n");
  return 0;
}
