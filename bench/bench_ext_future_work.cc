// Extension bench (paper Section 8 future work, implemented in this
// library):
//   1. Budgeted partial cover — covered query weight as a function of the
//      budget, on a P-like workload (density-greedy heuristic).
//   2. Overlapping construction costs — plan cost under the shared-labeling
//      model: the paper's independent-cost pipeline (flatten, then
//      Algorithm 3) versus the sharing-aware greedy.
#include "bench/bench_util.h"
#include "data/private_dataset.h"
#include "util/rng.h"
#include "util/float_cmp.h"

namespace {

using namespace mc3;
using namespace mc3::bench;

void BudgetedCurve() {
  PrintHeader("Extension: budgeted partial cover (weight vs budget)");
  data::PrivateConfig config;
  config.electronics_queries = Scaled(1200);
  config.home_garden_queries = Scaled(800);
  config.fashion_queries = Scaled(300);
  const data::PrivateDataset dataset = data::GeneratePrivate(config);

  BudgetedInstance input;
  input.instance = dataset.instance;
  Rng rng(11);
  double total_weight = 0;
  for (size_t i = 0; i < input.instance.NumQueries(); ++i) {
    const double w = 1 + double(rng.UniformInt(0, 9));
    input.query_weights.push_back(w);
    total_weight += w;
  }
  // Reference: cost of covering everything.
  auto full = GeneralSolver().Solve(input.instance);
  if (!full.ok()) {
    std::fprintf(stderr, "full solve failed: %s\n",
                 full.status().ToString().c_str());
    return;
  }

  TablePrinter table({"budget (% of full-cover cost)", "spent",
                      "covered weight", "% of total weight"});
  for (double fraction : {0.05, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    input.budget = fraction * full->cost;
    auto result = SolveBudgetedGreedy(input);
    if (!result.ok()) continue;
    table.AddRow({TablePrinter::Num(100 * fraction, 0) + "%",
                  TablePrinter::Num(result->spent, 0),
                  TablePrinter::Num(result->covered_weight, 0),
                  TablePrinter::Num(
                      100 * result->covered_weight / total_weight, 1) + "%"});
  }
  std::printf("full-cover cost: %.0f, total weight: %.0f\n%s\n", full->cost,
              total_weight, table.ToString().c_str());
  std::printf(
      "Expected shape: strongly concave — most of the weight is covered by\n"
      "a small fraction of the full budget (cheap high-weight queries\n"
      "first).\n");
}

void SharedLabelingComparison() {
  PrintHeader("Extension: overlapping construction costs");
  data::PrivateConfig config;
  config.electronics_queries = Scaled(400);
  config.home_garden_queries = Scaled(300);
  config.fashion_queries = Scaled(100);
  const data::PrivateDataset dataset = data::GeneratePrivate(config);
  const Instance& instance = dataset.instance;

  // Decompose the dataset's costs: ~60% of each classifier's cost is
  // labeling, split over its properties; the rest is classifier-specific.
  SharedLabelingModel model;
  Rng rng(7);
  for (const PropertySet& q : instance.queries()) {
    for (PropertyId p : q) {
      if (model.label_costs.count(p) == 0) {
        const Cost single = instance.CostOf(PropertySet::Of({p}));
        model.label_costs[p] =
            IsInfiniteCost(single) ? 3.0 : 0.6 * single;
      }
    }
  }
  for (const auto& [classifier, cost] : SortedCostEntries(instance.costs())) {
    Cost labels = 0;
    for (PropertyId p : classifier) labels += model.label_costs[p];
    model.base_costs[classifier] = std::max(0.0, cost - 0.6 * labels);
  }

  // Pipeline A (the paper's model): flatten to independent costs, run
  // Algorithm 3, then price the chosen plan under the true shared model.
  const Instance flat = FlattenToIndependentCosts(instance, model);
  auto flat_plan = GeneralSolver().Solve(flat);
  // Pipeline B: sharing-aware greedy.
  auto shared_plan = SolveSharedLabelingGreedy(instance, model);
  if (!flat_plan.ok() || !shared_plan.ok()) {
    std::fprintf(stderr, "solve failed\n");
    return;
  }
  const Cost flat_under_shared = model.SetCost(flat_plan->solution);

  TablePrinter table({"pipeline", "plan cost under shared model"});
  table.AddRow({"independent-cost model (paper)",
                TablePrinter::Num(flat_under_shared, 0)});
  table.AddRow({"sharing-aware greedy (extension)",
                TablePrinter::Num(shared_plan->cost, 0)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: the sharing-aware plan is cheaper (or equal) — it\n"
      "amortizes labeling across classifiers that share properties.\n");
}

}  // namespace

int main() {
  BudgetedCurve();
  SharedLabelingComparison();
  return 0;
}
