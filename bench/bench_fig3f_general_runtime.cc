// Figure 3f: running time of MC3[G] on the synthetic dataset with and
// without the preprocessing step, versus the number of queries. The paper
// reports preprocessing saving ~50% of the running time in the general
// case.
#include "bench/bench_util.h"
#include "data/synthetic.h"

int main() {
  using namespace mc3;
  using namespace mc3::bench;

  PrintHeader("Figure 3f: synthetic, general case, runtime with/without prep");

  // Fresh instance per point, as the paper regenerates per experiment.
  // Both arms time the algorithm alone (no defensive verification, no
  // post-pass), matching the paper's methodology.
  SolverOptions with_options;
  with_options.prune_unused = false;
  with_options.verify_solution = false;
  SolverOptions without_options;
  without_options.preprocess = false;
  without_options.prune_unused = false;
  without_options.verify_solution = false;
  const GeneralSolver with_prep(with_options);
  const GeneralSolver without_prep(without_options);

  TablePrinter table({"#queries", "no-prep time (s)", "prep time (s)",
                      "time saved"});
  for (size_t n : SubsetSizes(Scaled(10000))) {
    data::SyntheticConfig config;
    config.num_queries = n;
    config.seed = n * 13 + 9;
    const Instance sub = data::GenerateSynthetic(config);
    // Median over 3 repetitions (not the minimum): robust against one-sided
    // noise when runs are tracked across the bench trajectory.
    const RunOutcome without = RunSolverMedian(without_prep, sub, 3).median;
    const RunOutcome with = RunSolverMedian(with_prep, sub, 3).median;
    const double saved =
        without.seconds > 0
            ? 100.0 * (1.0 - with.seconds / without.seconds)
            : 0;
    table.AddRow({std::to_string(n), TablePrinter::Num(without.seconds, 3),
                  TablePrinter::Num(with.seconds, 3),
                  TablePrinter::Num(saved, 1) + "%"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper shape: preprocessing saves ~50%% of the running time in the\n"
      "general case.\n");
  return 0;
}
