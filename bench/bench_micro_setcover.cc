// Micro-benchmark (google-benchmark): the Weighted Set Cover engines inside
// Algorithm 3 — naive greedy vs the lazy-heap greedy [9], the primal-dual
// f-approximation, and LP rounding on small instances.
#include <benchmark/benchmark.h>

#include "setcover/greedy.h"
#include "setcover/instance.h"
#include "setcover/lp_rounding.h"
#include "setcover/primal_dual.h"
#include "util/rng.h"

namespace {

using namespace mc3;
using namespace mc3::setcover;

WscInstance MakeWsc(int num_elements, int num_sets, uint64_t seed) {
  Rng rng(seed);
  WscInstance inst;
  inst.num_elements = num_elements;
  for (int i = 0; i < num_sets; ++i) {
    WscSet s;
    const int size = 1 + static_cast<int>(rng.UniformInt(0, 7));
    std::vector<bool> used(num_elements, false);
    for (int j = 0; j < size; ++j) {
      const auto e = static_cast<ElementId>(rng.UniformInt(0, num_elements - 1));
      if (!used[e]) {
        used[e] = true;
        s.elements.push_back(e);
      }
    }
    std::sort(s.elements.begin(), s.elements.end());
    s.cost = 1 + double(rng.UniformInt(0, 49));
    inst.sets.push_back(std::move(s));
  }
  // Feasibility: every element in at least one singleton set.
  for (ElementId e = 0; e < num_elements; ++e) {
    inst.sets.push_back(WscSet{{e}, 25});
  }
  return inst;
}

void BM_GreedyLazyHeap(benchmark::State& state) {
  const WscInstance inst =
      MakeWsc(static_cast<int>(state.range(0)),
              static_cast<int>(state.range(0)) * 2, 7);
  for (auto _ : state) {
    auto solution = SolveGreedy(inst);
    benchmark::DoNotOptimize(solution);
  }
}

void BM_GreedyNaive(benchmark::State& state) {
  const WscInstance inst =
      MakeWsc(static_cast<int>(state.range(0)),
              static_cast<int>(state.range(0)) * 2, 7);
  for (auto _ : state) {
    auto solution = SolveGreedyNaive(inst);
    benchmark::DoNotOptimize(solution);
  }
}

void BM_PrimalDual(benchmark::State& state) {
  const WscInstance inst =
      MakeWsc(static_cast<int>(state.range(0)),
              static_cast<int>(state.range(0)) * 2, 7);
  for (auto _ : state) {
    auto solution = SolvePrimalDual(inst);
    benchmark::DoNotOptimize(solution);
  }
}

void BM_LpRounding(benchmark::State& state) {
  const WscInstance inst =
      MakeWsc(static_cast<int>(state.range(0)),
              static_cast<int>(state.range(0)) * 2, 7);
  for (auto _ : state) {
    auto solution = SolveLpRounding(inst);
    benchmark::DoNotOptimize(solution);
  }
}

BENCHMARK(BM_GreedyLazyHeap)->Arg(100)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_GreedyNaive)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PrimalDual)->Arg(100)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_LpRounding)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
