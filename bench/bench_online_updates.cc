// Incremental serving engine: latency of component-scoped re-solve versus
// a full batch re-solve, on a sharded synthetic workload (~10k queries in
// 100 independent domains) under 1% churn batches. The engine only
// repartitions and re-solves the components an update touches (Observation
// 3.2), so its per-batch latency tracks the dirty region while the full
// solver pays for the whole workload every time. Both arms run the same
// GeneralSolver configuration and must agree on the cost exactly.
//
// A closing section shows the honest worst case — one giant shared-property
// component, where the dirty region IS the workload and the speedup
// collapses to ~1x.
#include <algorithm>
#include <cmath>

#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "online/churn.h"
#include "online/online_engine.h"

namespace {

using namespace mc3;
using namespace mc3::bench;

struct ChurnSummary {
  double incremental_seconds = 0;
  double full_seconds = 0;
  double max_cost_delta = 0;
  size_t rounds = 0;
};

/// Replays `rounds` churn batches against `engine`, timing each incremental
/// update and a from-scratch solve of the live instance, and printing one
/// table row per round.
ChurnSummary RunChurn(online::OnlineEngine& engine, online::ChurnGenerator& churn,
                      const Solver& full, size_t batch_queries, size_t rounds) {
  TablePrinter table({"round", "+add", "-rm", "dirty", "resolved", "touched",
                      "incr (ms)", "full (ms)", "speedup", "cost ok"});
  ChurnSummary summary;
  for (size_t round = 1; round <= rounds; ++round) {
    const online::ChurnGenerator::Batch batch =
        churn.Next(batch_queries / 2, batch_queries - batch_queries / 2);
    auto stats = engine.ApplyUpdate(batch.add, batch.remove);
    if (!stats.ok()) {
      std::fprintf(stderr, "update failed: %s\n",
                   stats.status().ToString().c_str());
      return summary;
    }
    const Instance live = engine.LiveInstance();
    const RunOutcome baseline = RunSolver(full, live);
    if (!baseline.ok) return summary;

    const double delta = std::abs(baseline.cost - engine.TotalCost());
    if (delta > summary.max_cost_delta) summary.max_cost_delta = delta;
    summary.incremental_seconds += stats->resolve_seconds;
    summary.full_seconds += baseline.seconds;
    ++summary.rounds;
    const double speedup = stats->resolve_seconds > 0
                               ? baseline.seconds / stats->resolve_seconds
                               : 0;
    table.AddRow({std::to_string(round), std::to_string(stats->queries_added),
                  std::to_string(stats->queries_removed),
                  std::to_string(stats->components_dirtied),
                  std::to_string(stats->components_resolved),
                  std::to_string(stats->queries_touched),
                  TablePrinter::Num(1e3 * stats->resolve_seconds, 2),
                  TablePrinter::Num(1e3 * baseline.seconds, 2),
                  TablePrinter::Num(speedup, 1) + "x",
                  delta == 0 ? "yes" : TablePrinter::Num(delta, 4)});
  }
  std::printf("%s\n", table.ToString().c_str());
  return summary;
}

}  // namespace

int main() {
  PrintHeader("Online updates: incremental engine vs full re-solve");

  // ~10k queries split over 1000 domains with disjoint property pools; the
  // shared-property graph has >= 1000 components, so a 1% churn batch can
  // dirty at most ~1% of them and the re-solved region stays proportional
  // to the batch, not the workload.
  // (Tiny domains saturate their property pools and yield fewer distinct
  // queries than requested; 15 per domain lands the total at ~10k.)
  online::ShardedSyntheticConfig config;
  config.num_domains = Scaled(1000, 40);
  config.domain.num_queries = 15;
  config.domain.seed = 7;
  const Instance base = online::GenerateShardedSynthetic(config);

  SolverOptions solver_options;
  solver_options.verify_solution = false;
  const GeneralSolver full(solver_options);

  online::EngineOptions engine_options;
  engine_options.solver = online::EngineOptions::SolverKind::kGeneral;
  engine_options.solver_options = solver_options;
  online::OnlineEngine engine(engine_options);
  {
    Timer timer;
    auto init = engine.Initialize(base);
    if (!init.ok()) {
      std::fprintf(stderr, "initialize failed: %s\n",
                   init.status().ToString().c_str());
      return 1;
    }
    std::printf("workload: %zu queries, %zu components, cost %.2f "
                "(initial solve %.1f ms)\n",
                engine.NumQueries(), engine.NumComponents(), engine.TotalCost(),
                1e3 * timer.Seconds());
  }

  // 1% churn per batch. Retire one batch up front so adds have a pool to
  // revive from (the generator only re-adds previously removed queries,
  // keeping every query priced by the base cost table).
  const size_t batch_queries =
      std::max<size_t>(2, engine.NumQueries() / 100);
  online::ChurnGenerator churn(base, 99);
  if (auto warm = engine.ApplyUpdate({}, churn.Next(0, batch_queries).remove);
      !warm.ok()) {
    std::fprintf(stderr, "warmup failed: %s\n",
                 warm.status().ToString().c_str());
    return 1;
  }

  const ChurnSummary sharded = RunChurn(engine, churn, full, batch_queries, 10);
  if (sharded.rounds == 0) return 1;
  if (Status status = engine.CheckInvariants(); !status.ok()) {
    std::fprintf(stderr, "invariants violated: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  const double speedup = sharded.incremental_seconds > 0
                             ? sharded.full_seconds / sharded.incremental_seconds
                             : 0;
  std::printf("sharded workload: incremental %.2f ms/batch vs full %.2f "
              "ms/batch -> %.1fx speedup (acceptance floor 5x), max cost "
              "delta %.6f\n\n",
              1e3 * sharded.incremental_seconds /
                  static_cast<double>(sharded.rounds),
              1e3 * sharded.full_seconds /
                  static_cast<double>(sharded.rounds),
              speedup, sharded.max_cost_delta);

  // Worst case: one shared property pool -> a near-single-component
  // instance, where every update dirties (almost) everything.
  PrintHeader("Worst case: one giant component");
  data::SyntheticConfig giant_config;
  giant_config.num_queries = Scaled(1000, 50);
  giant_config.seed = 5;
  const Instance giant = data::GenerateSynthetic(giant_config);
  online::OnlineEngine giant_engine(engine_options);
  if (auto init = giant_engine.Initialize(giant); !init.ok()) {
    std::fprintf(stderr, "initialize failed: %s\n",
                 init.status().ToString().c_str());
    return 1;
  }
  std::printf("workload: %zu queries, %zu components\n",
              giant_engine.NumQueries(), giant_engine.NumComponents());
  const size_t giant_batch =
      std::max<size_t>(2, giant_engine.NumQueries() / 100);
  online::ChurnGenerator giant_churn(giant, 99);
  if (auto warm = giant_engine.ApplyUpdate(
          {}, giant_churn.Next(0, giant_batch).remove);
      !warm.ok()) {
    std::fprintf(stderr, "warmup failed: %s\n",
                 warm.status().ToString().c_str());
    return 1;
  }
  const ChurnSummary worst =
      RunChurn(giant_engine, giant_churn, full, giant_batch, 3);
  if (worst.rounds == 0) return 1;
  const double worst_speedup =
      worst.incremental_seconds > 0
          ? worst.full_seconds / worst.incremental_seconds
          : 0;
  std::printf("giant component: %.1fx — with no independent components the\n"
              "dirty region is the whole workload and incrementality buys\n"
              "nothing; the sharded speedup above is what component locality\n"
              "is worth.\n",
              worst_speedup);
  return 0;
}
