// Figure 3a: classifier construction cost on the BestBuy dataset (uniform
// weights), short queries, versus the number of queries. Competitors:
// MC3[S] (Algorithm 2), Mixed [13], Query-Oriented, Property-Oriented.
// Expected shape: MC3[S] = Mixed (both optimal) < QO < PO.
#include <memory>

#include "bench/bench_util.h"
#include "data/bestbuy.h"

int main() {
  using namespace mc3;
  using namespace mc3::bench;

  PrintHeader("Figure 3a: BB dataset, short queries, construction cost");

  data::BestBuyConfig config;
  config.num_queries = Scaled(1000);
  const Instance full = data::GenerateBestBuy(config);

  // The short-query algorithms operate on BB's short slice (95% of the
  // load, as published).
  std::vector<size_t> short_idx;
  for (size_t i = 0; i < full.NumQueries(); ++i) {
    if (full.queries()[i].size() <= 2) short_idx.push_back(i);
  }
  const Instance instance = SubInstance(full, short_idx);

  const K2ExactSolver mc3s;
  const MixedSolver mixed;
  const QueryOrientedSolver qo;
  const PropertyOrientedSolver po;

  TablePrinter table(
      {"#queries", "MC3[S]", "Mixed", "Query-Oriented", "Property-Oriented"});
  for (size_t n : SubsetSizes(instance.NumQueries())) {
    const Instance sub = RandomSubInstance(instance, n, /*seed=*/n * 31 + 1);
    const RunOutcome a = RunSolver(mc3s, sub);
    const RunOutcome b = RunSolver(mixed, sub);
    const RunOutcome c = RunSolver(qo, sub);
    const RunOutcome d = RunSolver(po, sub);
    table.AddRow({std::to_string(n), TablePrinter::Num(a.cost, 0),
                  TablePrinter::Num(b.cost, 0), TablePrinter::Num(c.cost, 0),
                  TablePrinter::Num(d.cost, 0)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper shape: MC3[S] and Mixed are both optimal (identical curves);\n"
      "Query-Oriented next; Property-Oriented worst.\n");
  return 0;
}
