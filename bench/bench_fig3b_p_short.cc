// Figure 3b: classifier construction cost on the P dataset restricted to
// short queries (~80% of the data), with varying classifier costs, versus
// the number of queries. Competitors: MC3[S], Query-Oriented,
// Property-Oriented (Mixed is inapplicable: costs vary).
// Expected shape: MC3[S] optimal, ~30% below both baselines.
#include "bench/bench_util.h"
#include "data/private_dataset.h"

int main() {
  using namespace mc3;
  using namespace mc3::bench;

  PrintHeader("Figure 3b: P dataset, short queries, varying costs");

  data::PrivateConfig config;
  config.electronics_queries = Scaled(5500);
  config.home_garden_queries = Scaled(3500);
  config.fashion_queries = Scaled(1000);
  const data::PrivateDataset dataset = data::GeneratePrivate(config);

  std::vector<size_t> short_idx;
  for (size_t i = 0; i < dataset.instance.NumQueries(); ++i) {
    if (dataset.instance.queries()[i].size() <= 2) short_idx.push_back(i);
  }
  const Instance instance = SubInstance(dataset.instance, short_idx);
  std::printf("short queries: %zu of %zu (%.0f%%)\n", short_idx.size(),
              dataset.instance.NumQueries(),
              100.0 * short_idx.size() / dataset.instance.NumQueries());

  const K2ExactSolver mc3s;
  const QueryOrientedSolver qo;
  const PropertyOrientedSolver po;

  TablePrinter table({"#queries", "MC3[S]", "Query-Oriented",
                      "Property-Oriented", "MC3[S] saving vs best baseline"});
  for (size_t n : SubsetSizes(instance.NumQueries())) {
    const Instance sub = RandomSubInstance(instance, n, /*seed=*/n * 7 + 5);
    const RunOutcome a = RunSolver(mc3s, sub);
    const RunOutcome b = RunSolver(qo, sub);
    const RunOutcome c = RunSolver(po, sub);
    const double best_baseline = std::min(b.cost, c.cost);
    const double saving =
        best_baseline > 0 ? 100.0 * (1.0 - a.cost / best_baseline) : 0;
    table.AddRow({std::to_string(n), TablePrinter::Num(a.cost, 0),
                  TablePrinter::Num(b.cost, 0), TablePrinter::Num(c.cost, 0),
                  TablePrinter::Num(saving, 1) + "%"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper shape: MC3[S] optimal, outperforming Query-Oriented and\n"
      "Property-Oriented by ~30%%.\n");
  return 0;
}
