#!/usr/bin/env bash
# QPS-vs-shards sweep (docs/serving.md#sharded-serving): run the same
# churn-heavy multi-tenant loadgen mix against `mc3 serve --listen` at
# increasing shard counts and report sustained committed update throughput
# (the server-side per-shard op totals over the run's wall clock, from the
# loadgen's machine-parsable "sweep:" line).
#
# With --gate, the run fails (exit 1) unless 4 shards sustain at least
# MIN_SPEEDUP x the single-shard throughput — the acceptance bar for the
# sharded serving work. The gate needs real parallel hardware: on a host
# with fewer than 4 CPUs the shard workers time-slice one core and no
# wall-clock speedup is physically possible (see EXPERIMENTS.md), so the
# gate auto-skips (exit 0, loud message) instead of reporting a bogus
# failure. Without --gate the sweep just prints the table.
#
# The default mix is deliberately engine-bound (measured in
# EXPERIMENTS.md: resolve is ~98% of engine time at these knobs): long
# enough queries that the general solver dominates, small per-tenant pools
# so the classifier table stays cheap to price, and enough tenants that
# hash placement spreads components across shards.
#
# Usage: scripts/shard_sweep.sh [build-dir] [--gate] [--shards "1 2 4"]
#                               [--ops N] [--qps Q]
# Artifacts (reports + logs) are left in ./shard_sweep_artifacts.
set -euo pipefail

BUILD_DIR="build"
GATE=0
SHARDS="1 2 4"
OPS=3000
QPS=100000
MIN_SPEEDUP=2.0

while [ $# -gt 0 ]; do
  case "$1" in
    --gate) GATE=1; shift ;;
    --shards) SHARDS="$2"; shift 2 ;;
    --ops) OPS="$2"; shift 2 ;;
    --qps) QPS="$2"; shift 2 ;;
    -*) echo "shard_sweep: unknown flag $1" >&2; exit 2 ;;
    *) BUILD_DIR="$1"; shift ;;
  esac
done

MC3="$BUILD_DIR/tools/mc3"
LOADGEN="$BUILD_DIR/tools/mc3_loadgen"
ART_DIR="shard_sweep_artifacts"

for bin in "$MC3" "$LOADGEN"; do
  if [ ! -x "$bin" ]; then
    echo "shard_sweep: missing binary $bin (build mc3 and mc3_loadgen first)" >&2
    exit 2
  fi
done

rm -rf "$ART_DIR"
mkdir -p "$ART_DIR"
WORKLOAD="$ART_DIR/workload.csv"
PORT_FILE="$ART_DIR/port"

"$MC3" generate --dataset synthetic --n 40 --seed 3 -o "$WORKLOAD"

SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
}
trap cleanup EXIT

# Runs one shard count; prints "<shards> <ops_per_sec>" on stdout.
run_point() {
  local shards="$1"
  local log="$ART_DIR/server_${shards}.log"
  local out="$ART_DIR/loadgen_${shards}.log"
  rm -f "$PORT_FILE"
  "$MC3" serve "$WORKLOAD" --listen 0 --port-file "$PORT_FILE" \
    --default-cost 2 --shards "$shards" >"$log" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$PORT_FILE" ] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      echo "shard_sweep: server (--shards $shards) exited before listening" >&2
      cat "$log" >&2
      exit 1
    fi
    sleep 0.1
  done

  # Churn-heavy mix: all-update traffic (no interleaved solves), removes on
  # every third update, a saturating arrival rate so throughput is
  # server-bound, and 16 disjoint tenant pools so hash placement spreads
  # components over every shard and a coalesced batch fans out across all
  # of them. 12-property pools with length-4 queries keep the classifier
  # table small (pricing stays cheap) while components grow to hundreds of
  # live queries, which is where the per-shard solver work dominates.
  "$LOADGEN" --port-file "$PORT_FILE" --qps "$QPS" --ops "$OPS" \
    --burst "$OPS" --connections 8 --solve-every 0 --remove-every 3 \
    --tenants 16 --properties 12 --query-length 4 \
    --shutdown --report "$ART_DIR/load_report_${shards}.json" \
    >"$out" 2>&1
  if ! wait "$SERVER_PID"; then
    echo "shard_sweep: server (--shards $shards) exited non-zero" >&2
    cat "$log" >&2
    exit 1
  fi
  SERVER_PID=""

  local line
  line=$(grep '^sweep: ' "$out" | tail -1)
  if [ -z "$line" ]; then
    echo "shard_sweep: loadgen printed no sweep line for --shards $shards" >&2
    cat "$out" >&2
    exit 1
  fi
  echo "$shards $(echo "$line" | sed -n 's/.*ops_per_sec=\([0-9.]*\).*/\1/p')"
}

echo "shard_sweep: committed update throughput (ops/sec) by shard count"
RESULTS=""
for shards in $SHARDS; do
  POINT=$(run_point "$shards")
  RESULTS="$RESULTS$POINT"$'\n'
  echo "  shards=${POINT% *}  ops_per_sec=${POINT#* }"
done

BASE=$(echo "$RESULTS" | awk '$1 == 1 {print $2}')
AT4=$(echo "$RESULTS" | awk '$1 == 4 {print $2}')
if [ -n "$BASE" ] && [ -n "$AT4" ]; then
  SPEEDUP=$(awk "BEGIN{printf \"%.2f\", ($AT4) / ($BASE)}")
  echo "shard_sweep: 4-shard speedup over 1 shard: ${SPEEDUP}x"
  if [ "$GATE" -eq 1 ]; then
    CPUS=$(nproc 2>/dev/null || echo 1)
    if [ "$CPUS" -lt 4 ]; then
      echo "shard_sweep: SKIP gate — only $CPUS CPU(s); 4 shard workers" \
           "cannot run in parallel, so the >=${MIN_SPEEDUP}x bar is" \
           "unmeasurable here (see EXPERIMENTS.md)"
    else
      PASS=$(awk "BEGIN{print (($AT4) >= $MIN_SPEEDUP * ($BASE)) ? 1 : 0}")
      if [ "$PASS" -ne 1 ]; then
        echo "shard_sweep: FAIL — need >= ${MIN_SPEEDUP}x" >&2
        exit 1
      fi
    fi
  fi
fi

echo "shard_sweep: OK"
