#!/usr/bin/env bash
# Crash-recovery smoke test (docs/durability.md): run a durable `mc3 serve
# --listen` under loadgen churn, kill -9 it at a (deterministically)
# randomized point, and assert that
#
#   mc3 recover  ==  offline replay of the surviving WAL prefix
#
# byte for byte, for every one of $ITERATIONS kill points — the durability
# invariant is that the recovered state equals replaying exactly the
# batches that reached the log, no more, no less. The data dir carries over
# between iterations (recovery chains across crashes), the server keeps
# checkpointing (--checkpoint-every), and --keep-wal-segments preserves the
# full history so the offline replay can start from the base workload.
# A second chain repeats the drill with a 4-way sharded server
# (--shards 4): sharded recovery — explicit layout and snapshot-probed —
# must land on the same bytes as the single-engine offline replay.
# A final clean restart + drain checks the recovered server still serves.
#
# Usage: scripts/recover_smoke.sh [build-dir] [iterations]
# Artifacts are left in ./recover_smoke_artifacts for CI upload.
set -euo pipefail

BUILD_DIR="${1:-build}"
ITERATIONS="${2:-20}"
MC3="$BUILD_DIR/tools/mc3"
LOADGEN="$BUILD_DIR/tools/mc3_loadgen"
ART_DIR="recover_smoke_artifacts"

for bin in "$MC3" "$LOADGEN"; do
  if [ ! -x "$bin" ]; then
    echo "recover_smoke: missing binary $bin (build mc3 and mc3_loadgen first)" >&2
    exit 2
  fi
done

rm -rf "$ART_DIR"
mkdir -p "$ART_DIR"
WORKLOAD="$ART_DIR/workload.csv"
DATA_DIR="$ART_DIR/data"
PORT_FILE="$ART_DIR/port"

"$MC3" generate --dataset synthetic --n 60 --seed 5 -o "$WORKLOAD"

SERVER_PID=""
LOADGEN_PID=""
cleanup() {
  [ -n "$LOADGEN_PID" ] && kill -9 "$LOADGEN_PID" 2>/dev/null || true
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
}
trap cleanup EXIT

start_server() {
  local log="$1"
  shift
  rm -f "$PORT_FILE"
  "$MC3" serve "$WORKLOAD" --listen 0 --port-file "$PORT_FILE" \
    --default-cost 2 --data-dir "$DATA_DIR" --checkpoint-every 7 \
    --keep-wal-segments "$@" >"$log" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$PORT_FILE" ] && return 0
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      echo "recover_smoke: server exited before listening" >&2
      cat "$log" >&2
      return 1
    fi
    sleep 0.1
  done
  echo "recover_smoke: timed out waiting for the port file" >&2
  cat "$log" >&2
  return 1
}

for i in $(seq 1 "$ITERATIONS"); do
  # Chain crashes in groups of five: within a chain each life recovers the
  # previous one's data dir, which keeps exercising snapshot + WAL-tail
  # recovery across restarts without letting the offline replay (the full
  # history every iteration) grow quadratically in the loop length.
  if [ $(( (i - 1) % 5 )) -eq 0 ]; then rm -rf "$DATA_DIR"; fi
  LOG="$ART_DIR/server_$i.log"
  start_server "$LOG"

  # Open-loop churn; no --shutdown — this server dies by SIGKILL. Keep
  # --ops modest: the generator materializes its whole op schedule up
  # front, and the kill window below starts ~50 ms in.
  "$LOADGEN" --port-file "$PORT_FILE" --qps 2000 --ops 5000 \
    --seed "$i" --remove-every 3 >"$ART_DIR/loadgen_$i.log" 2>&1 &
  LOADGEN_PID=$!

  # Deterministically "random" kill point: 50..449 ms into the churn, a
  # different phase every iteration (7919 is prime to 400).
  DELAY=$(awk "BEGIN{printf \"%.3f\", 0.05 + (($i * 7919) % 400) / 1000}")
  sleep "$DELAY"
  kill -9 "$SERVER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
  kill -9 "$LOADGEN_PID" 2>/dev/null || true
  wait "$LOADGEN_PID" 2>/dev/null || true
  LOADGEN_PID=""

  # The surviving WAL prefix IS the acknowledged history. Replaying it
  # offline from the base workload must reproduce exactly what recovery
  # (latest snapshot + WAL tail) reconstructs.
  DUMP="$ART_DIR/wal_dump_$i.txt"
  "$MC3" wal dump --data-dir "$DATA_DIR" -o "$DUMP" \
    2>"$ART_DIR/wal_dump_$i.log"
  "$MC3" serve "$WORKLOAD" --trace "$DUMP" --default-cost 2 \
    --solution-out "$ART_DIR/expected_$i.txt" \
    >"$ART_DIR/replay_$i.log" 2>&1
  "$MC3" recover "$WORKLOAD" --data-dir "$DATA_DIR" --default-cost 2 \
    --solution-out "$ART_DIR/recovered_$i.txt" \
    >"$ART_DIR/recover_$i.log" 2>&1

  if ! cmp -s "$ART_DIR/expected_$i.txt" "$ART_DIR/recovered_$i.txt"; then
    echo "recover_smoke: iteration $i: recovered solution differs from the" \
         "offline WAL replay (kill after ${DELAY}s)" >&2
    diff "$ART_DIR/expected_$i.txt" "$ART_DIR/recovered_$i.txt" >&2 || true
    exit 1
  fi
  RECORDS=$(grep -o '[0-9]* records' "$ART_DIR/wal_dump_$i.log" | head -1)
  echo "recover_smoke: iteration $i OK (kill after ${DELAY}s, $RECORDS)"
done

# Sharded chain (docs/serving.md#sharded-serving): the same crash-recovery
# invariant with a 4-way sharded server under multi-tenant churn. The
# offline replay stays single-engine — sharded recovery must reconstruct
# the byte-identical canonical solution. Both recovery modes are checked:
# an explicit --shards 4 and the probe (no --shards) that adopts whatever
# layout the latest snapshot records.
SHARD_ITERATIONS=5
for i in $(seq 1 "$SHARD_ITERATIONS"); do
  if [ "$i" -eq 1 ]; then rm -rf "$DATA_DIR"; fi
  LOG="$ART_DIR/server_sharded_$i.log"
  start_server "$LOG" --shards 4

  "$LOADGEN" --port-file "$PORT_FILE" --qps 2000 --ops 5000 \
    --seed "$((100 + i))" --remove-every 3 --tenants 6 \
    >"$ART_DIR/loadgen_sharded_$i.log" 2>&1 &
  LOADGEN_PID=$!

  DELAY=$(awk "BEGIN{printf \"%.3f\", 0.05 + (($i * 7919) % 400) / 1000}")
  sleep "$DELAY"
  kill -9 "$SERVER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
  kill -9 "$LOADGEN_PID" 2>/dev/null || true
  wait "$LOADGEN_PID" 2>/dev/null || true
  LOADGEN_PID=""

  DUMP="$ART_DIR/wal_dump_sharded_$i.txt"
  "$MC3" wal dump --data-dir "$DATA_DIR" -o "$DUMP" \
    2>"$ART_DIR/wal_dump_sharded_$i.log"
  "$MC3" serve "$WORKLOAD" --trace "$DUMP" --default-cost 2 \
    --solution-out "$ART_DIR/expected_sharded_$i.txt" \
    >"$ART_DIR/replay_sharded_$i.log" 2>&1
  "$MC3" recover "$WORKLOAD" --data-dir "$DATA_DIR" --default-cost 2 \
    --shards 4 --solution-out "$ART_DIR/recovered_sharded_$i.txt" \
    >"$ART_DIR/recover_sharded_$i.log" 2>&1
  "$MC3" recover "$WORKLOAD" --data-dir "$DATA_DIR" --default-cost 2 \
    --solution-out "$ART_DIR/recovered_probe_$i.txt" \
    >"$ART_DIR/recover_probe_$i.log" 2>&1

  for recovered in "recovered_sharded_$i" "recovered_probe_$i"; do
    if ! cmp -s "$ART_DIR/expected_sharded_$i.txt" "$ART_DIR/$recovered.txt"; then
      echo "recover_smoke: sharded iteration $i: $recovered differs from" \
           "the offline WAL replay (kill after ${DELAY}s)" >&2
      diff "$ART_DIR/expected_sharded_$i.txt" "$ART_DIR/$recovered.txt" >&2 || true
      exit 1
    fi
  done
  echo "recover_smoke: sharded iteration $i OK (kill after ${DELAY}s)"
done

# The WAL must have actually seen traffic, or the loop proved nothing.
FINAL_RECORDS=$("$MC3" wal stats --data-dir "$DATA_DIR" |
  sed -n 's/^records:[[:space:]]*\([0-9]*\).*/\1/p')
if [ "${FINAL_RECORDS:-0}" -eq 0 ]; then
  echo "recover_smoke: no WAL records were ever written — the kill points" \
       "never let an update through; lower the delay floor" >&2
  exit 1
fi

# Final life: a clean restart must report recovery and then serve + drain.
# The data dir now holds 4-shard snapshots, so the restart keeps the layout
# (a 1-shard server would — by design — refuse the mismatched snapshot).
LOG="$ART_DIR/server_final.log"
start_server "$LOG" --shards 4
"$LOADGEN" --quick --port-file "$PORT_FILE" --shutdown \
  --report "$ART_DIR/load_report.json" >"$ART_DIR/loadgen_final.log" 2>&1
if ! wait "$SERVER_PID"; then
  echo "recover_smoke: recovered server exited non-zero after drain" >&2
  cat "$LOG" >&2
  exit 1
fi
SERVER_PID=""
grep -q '^recovered:' "$LOG"
grep -q '^drained:' "$LOG"

echo "recover_smoke: OK ($ITERATIONS crash-recovery iterations," \
     "$FINAL_RECORDS WAL records)"
grep '^recovered:' "$LOG"
