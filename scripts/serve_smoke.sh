#!/usr/bin/env bash
# End-to-end serving smoke test (docs/serving.md): start `mc3 serve
# --listen` on an ephemeral loopback port, drive it with a quick open-loop
# mc3_loadgen run, request a graceful drain, and assert
#
#   * zero lost requests (every admitted request was answered),
#   * at least one coalesced batch of size >= 2 (batching engaged),
#   * a schema-valid mc3.load_report/1 document,
#   * a clean (exit 0) server drain with passing engine invariants.
#
# Usage: scripts/serve_smoke.sh [build-dir]   (default: build)
# Artifacts (report + logs) are left in ./serve_smoke_artifacts for CI upload.
set -euo pipefail

BUILD_DIR="${1:-build}"
MC3="$BUILD_DIR/tools/mc3"
LOADGEN="$BUILD_DIR/tools/mc3_loadgen"
ART_DIR="serve_smoke_artifacts"

for bin in "$MC3" "$LOADGEN"; do
  if [ ! -x "$bin" ]; then
    echo "serve_smoke: missing binary $bin (build the mc3 and mc3_loadgen targets first)" >&2
    exit 2
  fi
done

rm -rf "$ART_DIR"
mkdir -p "$ART_DIR"
WORKLOAD="$ART_DIR/workload.csv"
PORT_FILE="$ART_DIR/port"
REPORT="$ART_DIR/load_report.json"
SERVER_LOG="$ART_DIR/server.log"

"$MC3" generate --dataset synthetic --n 40 --seed 3 -o "$WORKLOAD"

"$MC3" serve "$WORKLOAD" --listen 0 --port-file "$PORT_FILE" \
  --default-cost 2 >"$SERVER_LOG" 2>&1 &
SERVER_PID=$!

# Ephemeral-port handshake: the server writes its bound port once listening.
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "serve_smoke: server exited before listening" >&2
    cat "$SERVER_LOG" >&2
    exit 1
  fi
  sleep 0.1
done
if [ ! -s "$PORT_FILE" ]; then
  echo "serve_smoke: timed out waiting for the port file" >&2
  kill "$SERVER_PID" 2>/dev/null || true
  cat "$SERVER_LOG" >&2
  exit 1
fi

# The loadgen exits non-zero on lost requests, on an invalid report, or when
# no coalesced batch reached size 2; --shutdown drains the server at the end.
"$LOADGEN" --quick --port-file "$PORT_FILE" --shutdown \
  --report "$REPORT" --min-coalesced-batch 2

if ! wait "$SERVER_PID"; then
  echo "serve_smoke: server exited non-zero after drain" >&2
  cat "$SERVER_LOG" >&2
  exit 1
fi

grep -q '"schema": "mc3.load_report/1"' "$REPORT"
grep -q '^drained:' "$SERVER_LOG"

echo "serve_smoke: OK"
cat "$SERVER_LOG"
