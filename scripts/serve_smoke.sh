#!/usr/bin/env bash
# End-to-end serving smoke test (docs/serving.md): start `mc3 serve
# --listen` on an ephemeral loopback port, drive it with a quick open-loop
# mc3_loadgen run, request a graceful drain, and assert
#
#   * zero lost requests (every admitted request was answered),
#   * at least one coalesced batch of size >= 2 (batching engaged),
#   * a schema-valid mc3.load_report/1 document,
#   * a clean (exit 0) server drain with passing engine invariants.
#
# A second pass repeats the run with durability on (--data-dir, see
# docs/durability.md) and additionally asserts the WAL recorded every
# update and that a restart on the same data dir recovers the state.
#
# A telemetry pass (docs/observability.md, "Serving telemetry") serves with
# trace sampling + export on while the loadgen scrapes the `metrics`
# exposition mid-run: the loadgen's reconcile gate cross-checks server
# counters against client-side accounting, the final exposition is kept as
# an artifact, and the exported Chrome trace must contain connected flow
# events ("ph":"s" .. "ph":"f").
#
# Usage: scripts/serve_smoke.sh [build-dir]   (default: build)
# Artifacts (report + logs) are left in ./serve_smoke_artifacts for CI upload.
set -euo pipefail

BUILD_DIR="${1:-build}"
MC3="$BUILD_DIR/tools/mc3"
LOADGEN="$BUILD_DIR/tools/mc3_loadgen"
ART_DIR="serve_smoke_artifacts"

for bin in "$MC3" "$LOADGEN"; do
  if [ ! -x "$bin" ]; then
    echo "serve_smoke: missing binary $bin (build the mc3 and mc3_loadgen targets first)" >&2
    exit 2
  fi
done

rm -rf "$ART_DIR"
mkdir -p "$ART_DIR"
WORKLOAD="$ART_DIR/workload.csv"
PORT_FILE="$ART_DIR/port"

"$MC3" generate --dataset synthetic --n 40 --seed 3 -o "$WORKLOAD"

# Runs one serve + loadgen + drain round. $1 names the pass (artifact
# suffix); remaining args are appended to the server command line. Extra
# loadgen flags come in via $LOADGEN_EXTRA (space-separated).
run_pass() {
  local pass="$1"
  shift
  local report="$ART_DIR/load_report_$pass.json"
  local server_log="$ART_DIR/server_$pass.log"
  rm -f "$PORT_FILE"

  "$MC3" serve "$WORKLOAD" --listen 0 --port-file "$PORT_FILE" \
    --default-cost 2 "$@" >"$server_log" 2>&1 &
  SERVER_PID=$!

  # Ephemeral-port handshake: the server writes its bound port once
  # listening.
  for _ in $(seq 1 100); do
    [ -s "$PORT_FILE" ] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      echo "serve_smoke: $pass server exited before listening" >&2
      cat "$server_log" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [ ! -s "$PORT_FILE" ]; then
    echo "serve_smoke: timed out waiting for the $pass port file" >&2
    kill "$SERVER_PID" 2>/dev/null || true
    cat "$server_log" >&2
    exit 1
  fi

  # The loadgen exits non-zero on lost requests, on an invalid report, or
  # when no coalesced batch reached size 2; --shutdown drains the server.
  # shellcheck disable=SC2086  # LOADGEN_EXTRA is intentionally word-split
  "$LOADGEN" --quick --port-file "$PORT_FILE" --shutdown \
    --report "$report" --min-coalesced-batch 2 ${LOADGEN_EXTRA:-}

  if ! wait "$SERVER_PID"; then
    echo "serve_smoke: $pass server exited non-zero after drain" >&2
    cat "$server_log" >&2
    exit 1
  fi

  grep -q '"schema": "mc3.load_report/1"' "$report"
  grep -q '^drained:' "$server_log"
}

run_pass plain

# Sharded pass (docs/serving.md#sharded-serving): four engine shards behind
# the same wire protocol, fed a multi-tenant churn mix so coalesced batches
# split across shards. The loadgen gates stay identical — sharding must not
# lose requests or break coalescing — and the server must announce the
# layout both in its own log and through the stats verb the report scrapes.
LOADGEN_EXTRA="--tenants 6" run_pass sharded --shards 4
grep -q '^sharded:    4 engine shards' "$ART_DIR/server_sharded.log"
grep -q '"engine_shards": 4' "$ART_DIR/load_report_sharded.json"

# Read-heavy pass (docs/serving.md#lock-free-reads): 90% of the ops are
# solves answered on the lock-free read path while the remaining writes
# keep the coalescer folding, and the loadgen scrapes the exposition
# mid-run. The report must carry the split read/write latency summaries,
# and (when observability is compiled in) the scrape must show the
# server.read.* stage histograms and the view/epoch gauges that only the
# lock-free path populates.
LOADGEN_EXTRA="--read-ratio 0.9 --ops 400 --qps 2000 \
  --scrape-interval 0.02 --scrape-out $ART_DIR/exposition_readheavy.txt" \
  run_pass readheavy --shards 2
grep -q '"read_ratio": 0.9' "$ART_DIR/load_report_readheavy.json"
grep -q '"read_latency_seconds"' "$ART_DIR/load_report_readheavy.json"
grep -q '"write_latency_seconds"' "$ART_DIR/load_report_readheavy.json"
if grep -q 'obs="on"' "$ART_DIR/exposition_readheavy.txt"; then
  grep -q '^mc3_server_read_acquire_solve_count ' \
    "$ART_DIR/exposition_readheavy.txt"
  grep -q '^mc3_server_read_render_solve_count ' \
    "$ART_DIR/exposition_readheavy.txt"
  grep -q '^mc3_engine_view_version ' "$ART_DIR/exposition_readheavy.txt"
  grep -q '^mc3_engine_epoch_retired ' "$ART_DIR/exposition_readheavy.txt"
fi

# Durable pass: same drill with a write-ahead log and checkpoints on. The
# WAL must hold at least one record afterwards, and a restart on the same
# data dir must recover (snapshot + WAL replay) rather than start fresh.
DATA_DIR="$ART_DIR/data"
run_pass durable --data-dir "$DATA_DIR" --checkpoint-every 16
"$MC3" wal stats --data-dir "$DATA_DIR" >"$ART_DIR/wal_stats.txt"
if ! grep -q '^records:    [1-9]' "$ART_DIR/wal_stats.txt"; then
  echo "serve_smoke: the durable pass left no WAL records" >&2
  cat "$ART_DIR/wal_stats.txt" >&2
  exit 1
fi
run_pass restart --data-dir "$DATA_DIR" --checkpoint-every 16
if ! grep -q '^recovered:  snapshot' "$ART_DIR/server_restart.log"; then
  echo "serve_smoke: restart did not report recovery" >&2
  cat "$ART_DIR/server_restart.log" >&2
  exit 1
fi

# Telemetry pass: sharded + durable with every request traced, while the
# loadgen scrapes the metrics exposition mid-run. The loadgen itself gates
# the counter reconcile (exit 1 on drift between the exposition and its own
# accounting) and validates the embedded telemetry block; here we addition-
# ally assert the exposition artifact looks like Prometheus text format and
# that the exported Chrome trace stitched request flows across threads.
TRACE_DIR="$ART_DIR/traces"
LOADGEN_EXTRA="--scrape-interval 0.02 --scrape-out $ART_DIR/exposition.txt" \
  run_pass telemetry --shards 2 --data-dir "$ART_DIR/data_telemetry" \
  --trace-sample 1 --trace-out "$TRACE_DIR"
grep -q '^mc3_server_requests_total ' "$ART_DIR/exposition.txt"
grep -q '^mc3_server_queue_depth_max ' "$ART_DIR/exposition.txt"
grep -q '^mc3_server_shard_ops{shard="1"}' "$ART_DIR/exposition.txt"
grep -q '^mc3_build_info{' "$ART_DIR/exposition.txt"
grep -q '"telemetry"' "$ART_DIR/load_report_telemetry.json"
if grep -q 'obs="on"' "$ART_DIR/exposition.txt"; then
  # Trace export is compiled in: the server announced the file on drain and
  # it must contain complete spans plus a connected flow (start + finish
  # bound to the enclosing slice) for at least one sampled request.
  grep -q '^trace:' "$ART_DIR/server_telemetry.log"
  TRACE_FILE="$TRACE_DIR/serve_trace_$(cat "$PORT_FILE").json"
  if [ ! -s "$TRACE_FILE" ]; then
    echo "serve_smoke: telemetry pass wrote no trace file at $TRACE_FILE" >&2
    exit 1
  fi
  for needle in '"ph":"X"' '"ph":"s"' '"ph":"f"' '"bp":"e"' \
      '"name":"wal_durable"' '"name":"wal-committer"'; do
    if ! grep -qF "$needle" "$TRACE_FILE"; then
      echo "serve_smoke: trace file lacks $needle" >&2
      exit 1
    fi
  done
fi

echo "serve_smoke: OK"
cat "$ART_DIR"/server_*.log
