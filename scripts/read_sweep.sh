#!/usr/bin/env bash
# Read-latency-under-churn sweep (docs/serving.md#lock-free-reads): drive
# the same 95/5 read-heavy multi-tenant mix against `mc3 serve --listen`
# twice — once on the default lock-free read path and once with
# `--read-path queued` (reads funneled through the write queue, the
# pre-lock-free behaviour) — and report per-verb latency from the
# loadgen's machine-parsable "read_sweep:" line. The interesting number is
# read p99: on the lock-free path reads never wait behind coalesced write
# batches, so it stays flat under churn; on the queued path it inherits
# the write queue's batching delay.
#
# With --gate, the run fails (exit 1) unless the lock-free read p99 is at
# most MAX_RATIO x the queued read p99. The comparison needs real parallel
# hardware — with fewer than 4 CPUs the connection workers, the apply
# thread and the loadgen time-slice one core and queueing delay is noise
# (see EXPERIMENTS.md) — so on a small host the gate auto-skips (exit 0,
# loud message) instead of reporting a bogus verdict. Without --gate the
# sweep just prints the table.
#
# Usage: scripts/read_sweep.sh [build-dir] [--gate] [--ratio R]
#                              [--ops N] [--qps Q]
# Artifacts (reports + logs) are left in ./read_sweep_artifacts.
set -euo pipefail

BUILD_DIR="build"
GATE=0
RATIO=0.95
OPS=4000
QPS=100000
MAX_RATIO=1.0

while [ $# -gt 0 ]; do
  case "$1" in
    --gate) GATE=1; shift ;;
    --ratio) RATIO="$2"; shift 2 ;;
    --ops) OPS="$2"; shift 2 ;;
    --qps) QPS="$2"; shift 2 ;;
    -*) echo "read_sweep: unknown flag $1" >&2; exit 2 ;;
    *) BUILD_DIR="$1"; shift ;;
  esac
done

MC3="$BUILD_DIR/tools/mc3"
LOADGEN="$BUILD_DIR/tools/mc3_loadgen"
ART_DIR="read_sweep_artifacts"

for bin in "$MC3" "$LOADGEN"; do
  if [ ! -x "$bin" ]; then
    echo "read_sweep: missing binary $bin (build mc3 and mc3_loadgen first)" >&2
    exit 2
  fi
done

rm -rf "$ART_DIR"
mkdir -p "$ART_DIR"
WORKLOAD="$ART_DIR/workload.csv"
PORT_FILE="$ART_DIR/port"

"$MC3" generate --dataset synthetic --n 40 --seed 3 -o "$WORKLOAD"

SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
}
trap cleanup EXIT

# Runs one read path; prints "<mode> <read_p99_us> <write_p99_us>".
run_point() {
  local mode="$1"
  local log="$ART_DIR/server_${mode}.log"
  local out="$ART_DIR/loadgen_${mode}.log"
  rm -f "$PORT_FILE"
  "$MC3" serve "$WORKLOAD" --listen 0 --port-file "$PORT_FILE" \
    --default-cost 2 --read-path "$mode" >"$log" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$PORT_FILE" ] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      echo "read_sweep: server (--read-path $mode) exited before listening" >&2
      cat "$log" >&2
      exit 1
    fi
    sleep 0.1
  done

  # Read-heavy mix under write churn: RATIO of the ops are solves answered
  # on the read path under test, the rest are updates (removes every third
  # one) arriving fast enough that the coalescer keeps folding batches —
  # exactly the regime where queued reads inherit batching delay. The
  # tenant/property knobs mirror shard_sweep.sh so the write side stays
  # engine-bound.
  "$LOADGEN" --port-file "$PORT_FILE" --qps "$QPS" --ops "$OPS" \
    --burst 64 --connections 8 --read-ratio "$RATIO" --remove-every 3 \
    --tenants 16 --properties 12 --query-length 4 \
    --shutdown --report "$ART_DIR/load_report_${mode}.json" \
    >"$out" 2>&1
  if ! wait "$SERVER_PID"; then
    echo "read_sweep: server (--read-path $mode) exited non-zero" >&2
    cat "$log" >&2
    exit 1
  fi
  SERVER_PID=""

  local line
  line=$(grep '^read_sweep: ' "$out" | tail -1)
  if [ -z "$line" ]; then
    echo "read_sweep: loadgen printed no read_sweep line for --read-path $mode" >&2
    cat "$out" >&2
    exit 1
  fi
  echo "$mode" \
    "$(echo "$line" | sed -n 's/.*read_p99_us=\([0-9.]*\).*/\1/p')" \
    "$(echo "$line" | sed -n 's/.*write_p99_us=\([0-9.]*\).*/\1/p')"
}

echo "read_sweep: read/write p99 (us) by read path, read_ratio=$RATIO"
LOCKFREE=""
QUEUED=""
for mode in lockfree queued; do
  POINT=$(run_point "$mode")
  set -- $POINT
  echo "  read_path=$1  read_p99_us=$2  write_p99_us=$3"
  case "$1" in
    lockfree) LOCKFREE="$2" ;;
    queued) QUEUED="$2" ;;
  esac
done

if [ -n "$LOCKFREE" ] && [ -n "$QUEUED" ]; then
  REL=$(awk "BEGIN{printf \"%.2f\", ($LOCKFREE) / ($QUEUED)}")
  echo "read_sweep: lockfree read p99 is ${REL}x the queued read p99"
  if [ "$GATE" -eq 1 ]; then
    CPUS=$(nproc 2>/dev/null || echo 1)
    if [ "$CPUS" -lt 4 ]; then
      echo "read_sweep: SKIP gate — only $CPUS CPU(s); reads, the apply" \
           "thread and the loadgen time-slice one core so queueing delay" \
           "is unmeasurable here (see EXPERIMENTS.md)"
    else
      PASS=$(awk "BEGIN{print (($LOCKFREE) <= $MAX_RATIO * ($QUEUED)) ? 1 : 0}")
      if [ "$PASS" -ne 1 ]; then
        echo "read_sweep: FAIL — lock-free read p99 must be <=" \
             "${MAX_RATIO}x the queued baseline" >&2
        exit 1
      fi
    fi
  fi
fi

echo "read_sweep: OK"
