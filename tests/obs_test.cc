// Tests of the observability layer: metrics registry (including
// concurrency), span tracing, JSON writer/parser round trips and report
// schema validation. The span-dependent assertions are gated on
// MC3_OBS_DISABLED so the suite also passes in an MC3_OBS=OFF build.
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/mc3.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "tests/test_util.h"
#include "util/parallel.h"

namespace mc3 {
namespace {

using obs::JsonValue;
using obs::JsonWriter;
using obs::ParseJson;

TEST(JsonWriterTest, RendersNestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("a \"quoted\" \n value");
  w.Key("count").Int(42);
  w.Key("pi").Number(3.5);
  w.Key("bad").Number(std::nan(""));
  w.Key("flag").Bool(true);
  w.Key("nothing").Null();
  w.Key("list").BeginArray();
  w.Int(1);
  w.BeginObject();
  w.Key("x").Int(2);
  w.EndObject();
  w.EndArray();
  w.EndObject();
  const std::string json = w.Take();

  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->Find("name")->string, "a \"quoted\" \n value");
  EXPECT_EQ(parsed->Find("count")->number, 42);
  EXPECT_EQ(parsed->Find("pi")->number, 3.5);
  EXPECT_EQ(parsed->Find("bad")->kind, JsonValue::Kind::kNull);
  EXPECT_TRUE(parsed->Find("flag")->boolean);
  EXPECT_EQ(parsed->Find("nothing")->kind, JsonValue::Kind::kNull);
  ASSERT_TRUE(parsed->Find("list")->is_array());
  ASSERT_EQ(parsed->Find("list")->array.size(), 2u);
  EXPECT_EQ(parsed->Find("list")->array[1].Find("x")->number, 2);
}

TEST(JsonParserTest, AcceptsScalarsAndRejectsGarbage) {
  EXPECT_TRUE(ParseJson("true").ok());
  EXPECT_TRUE(ParseJson("-12.5e2").ok());
  EXPECT_TRUE(ParseJson("\"\\u0041\\t\"").ok());
  EXPECT_TRUE(ParseJson("[]").ok());
  EXPECT_TRUE(ParseJson("{}").ok());
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
}

TEST(JsonParserTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonParserTest, RoundTripsEscapes) {
  std::string out;
  obs::AppendJsonEscaped("tab\t nl\n quote\" back\\ bell\x07", &out);
  auto parsed = ParseJson("\"" + out + "\"");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->string, "tab\t nl\n quote\" back\\ bell\x07");
}

TEST(MetricsTest, CountersGaugesHistograms) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  obs::Counter& counter = registry.GetCounter("test.counter");
  obs::Gauge& gauge = registry.GetGauge("test.gauge");
  obs::Histogram& histogram = registry.GetHistogram("test.histogram");
  counter.Add();
  counter.Add(4);
  gauge.Set(2.5);
  histogram.Record(0.001);
  histogram.Record(0.004);

  if (!obs::kObsEnabled) return;  // no-op build: nothing to snapshot
  const obs::MetricsSnapshot snap = registry.Snap();
  EXPECT_EQ(snap.counters.at("test.counter"), 5u);
  EXPECT_EQ(snap.gauges.at("test.gauge"), 2.5);
  const obs::HistogramSnapshot& h = snap.histograms.at("test.histogram");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.sum, 0.005);
  EXPECT_EQ(h.min, 0.001);
  EXPECT_EQ(h.max, 0.004);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0025);

  // Handles survive ResetAll; values restart from zero.
  registry.ResetAll();
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(registry.Snap().histograms.at("test.histogram").count, 0u);
}

TEST(MetricsTest, HistogramBucketsAreMonotonic) {
  if (!obs::kObsEnabled) return;
  EXPECT_EQ(obs::Histogram::BucketOf(0), 0);
  EXPECT_EQ(obs::Histogram::BucketLowerBound(0), 0);
  int last = 0;
  for (double v = 1e-8; v < 1e4; v *= 3) {
    const int b = obs::Histogram::BucketOf(v);
    EXPECT_GE(b, last);
    EXPECT_LT(b, obs::Histogram::kNumBuckets);
    if (b > 0) {
      EXPECT_LE(obs::Histogram::BucketLowerBound(b), v);
    }
    last = b;
  }
}

TEST(MetricsTest, ConcurrentRecordingLosesNothing) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  obs::Counter& counter = registry.GetCounter("test.concurrent.counter");
  obs::Histogram& histogram =
      registry.GetHistogram("test.concurrent.histogram");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add();
        histogram.Record(1e-6 * (1 + ((t + i) % 7)));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  if (!obs::kObsEnabled) return;
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  const obs::HistogramSnapshot h =
      registry.Snap().histograms.at("test.concurrent.histogram");
  EXPECT_EQ(h.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.min, 1e-6);
  EXPECT_EQ(h.max, 7e-6);
  uint64_t bucketed = 0;
  for (uint64_t b : h.buckets) bucketed += b;
  EXPECT_EQ(bucketed, h.count);
}

#if !defined(MC3_OBS_DISABLED)

TEST(TraceTest, BuildsSpanTreeWithStats) {
  obs::Trace trace("root");
  {
    obs::ScopedTraceActivation activate(&trace);
    obs::ScopedSpan outer("outer");
    outer.AddStat("n", 3);
    {
      obs::ScopedSpan inner("inner");
      inner.AddStat("m", 1);
    }
    { obs::ScopedSpan inner("inner"); }
  }
  const obs::SpanNode& root = *trace.root();
  EXPECT_EQ(root.name, "root");
  ASSERT_EQ(root.children.size(), 1u);
  const obs::SpanNode& outer = *root.children[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_GE(outer.seconds, 0);
  ASSERT_EQ(outer.stats.size(), 1u);
  EXPECT_EQ(outer.stats[0].first, "n");
  EXPECT_EQ(outer.stats[0].second, 3);
  EXPECT_EQ(outer.children.size(), 2u);
  EXPECT_EQ(root.CountSpans("inner"), 2u);
  EXPECT_NE(root.FindSpan("inner"), nullptr);
  EXPECT_GE(root.TotalSeconds("outer"), root.TotalSeconds("inner"));
}

TEST(TraceTest, InactiveSpansAreNoOps) {
  // No activation: spans must not crash and must record nothing.
  obs::ScopedSpan span("orphan");
  EXPECT_FALSE(span.active());
  span.AddStat("ignored", 1);
}

TEST(TraceTest, ActivationRestoresPreviousContext) {
  obs::Trace a("a");
  obs::Trace b("b");
  {
    obs::ScopedTraceActivation activate_a(&a);
    {
      obs::ScopedTraceActivation activate_b(&b);
      obs::ScopedSpan span("in_b");
    }
    obs::ScopedSpan span("in_a");
  }
  EXPECT_EQ(a.root()->CountSpans("in_a"), 1u);
  EXPECT_EQ(a.root()->CountSpans("in_b"), 0u);
  EXPECT_EQ(b.root()->CountSpans("in_b"), 1u);
  EXPECT_EQ(obs::CurrentTraceContext().trace, nullptr);
}

TEST(TraceTest, ParallelWorkersAdoptTheParentSpan) {
  obs::Trace trace("root");
  {
    obs::ScopedTraceActivation activate(&trace);
    obs::ScopedSpan parent("parent");
    const obs::TraceContext context = obs::CurrentTraceContext();
    ParallelFor(32, 4, [&](size_t) {
      obs::ScopedSpanAdoption adopt(context);
      obs::ScopedSpan child("worker");
    });
  }
  const obs::SpanNode* parent = trace.root()->FindSpan("parent");
  ASSERT_NE(parent, nullptr);
  EXPECT_EQ(parent->CountSpans("worker"), 32u);
}

TEST(TraceTest, SolverSolvePopulatesPhases) {
  obs::Trace trace("solve");
  {
    obs::ScopedTraceActivation activate(&trace);
    GeneralSolver solver{SolverOptions{}};
    auto result = solver.Solve(mc3::testing::PaperExample());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->cost, 7);
  }
  const obs::SpanNode& root = *trace.root();
  EXPECT_NE(root.FindSpan("general_solver"), nullptr);
  EXPECT_NE(root.FindSpan("preprocess"), nullptr);
  EXPECT_NE(root.FindSpan("step1"), nullptr);
  EXPECT_NE(root.FindSpan("step3"), nullptr);
  EXPECT_NE(root.FindSpan("partition"), nullptr);
}

#endif  // !MC3_OBS_DISABLED

obs::SolveReportMeta TestMeta() {
  obs::SolveReportMeta meta;
  meta.tool = "bench";
  meta.solver = "mc3g";
  meta.workload = "unit";
  meta.num_queries = 2;
  meta.num_classifiers = 9;
  meta.num_properties = 5;
  meta.max_query_length = 3;
  meta.cost = 7;
  meta.solution_size = 3;
  meta.num_components = 1;
  meta.total_seconds = 0.001;
  return meta;
}

TEST(ReportTest, SolveReportValidates) {
  obs::Trace trace("solve");
  {
    obs::ScopedTraceActivation activate(&trace);
    obs::ScopedSpan span("preprocess");
    span.AddStat("queries_covered", 2);
  }
  const std::string json = obs::RenderSolveReport(
      TestMeta(), trace, obs::MetricsRegistry::Global().Snap());
  EXPECT_TRUE(obs::ValidateSolveReportJson(json).ok())
      << obs::ValidateSolveReportJson(json).ToString();
  // A bench document it is not.
  EXPECT_FALSE(obs::ValidateBenchReportJson(json).ok());
}

TEST(ReportTest, ValidationCatchesCorruption) {
  obs::Trace trace("solve");
  const std::string json = obs::RenderSolveReport(
      TestMeta(), trace, obs::MetricsRegistry::Global().Snap());
  ASSERT_TRUE(obs::ValidateSolveReportJson(json).ok());

  // Strip the result section: must fail validation.
  std::string corrupted = json;
  const size_t at = corrupted.find("\"result\"");
  ASSERT_NE(at, std::string::npos);
  corrupted.replace(at, 8, "\"broken\"");
  EXPECT_FALSE(obs::ValidateSolveReportJson(corrupted).ok());
  EXPECT_FALSE(obs::ValidateSolveReportJson("{}").ok());
  EXPECT_FALSE(obs::ValidateSolveReportJson("not json").ok());
}

obs::BenchRunInfo QuickRunInfo() {
  obs::BenchRunInfo run;
  run.quick = true;
  run.scale = 0.05;
  return run;
}

TEST(ReportTest, BenchReportRequiresPhasesWhenEnabled) {
  obs::Trace trace("bench");
  std::vector<obs::BenchCase> cases;
  obs::BenchCase bench_case;
  bench_case.meta = TestMeta();
  bench_case.trace = &trace;
  bench_case.counters["bench.test_counter"] = 7;
  bench_case.wall_seconds = {0.001};
  cases.push_back(std::move(bench_case));
  const std::string json = obs::RenderBenchReport(
      cases, obs::MetricsRegistry::Global().Snap(), QuickRunInfo());
  const Status status = obs::ValidateBenchReportJson(json);
  if (obs::kObsEnabled) {
    // An empty span tree cannot carry the required phases.
    EXPECT_FALSE(status.ok());
  } else {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
}

TEST(ReportTest, BenchReportV2RequiresCountersAndWallTimes) {
  obs::Trace trace("bench");
  std::vector<obs::BenchCase> cases;
  obs::BenchCase bench_case;
  bench_case.meta = TestMeta();
  bench_case.trace = &trace;
  bench_case.counters["bench.test_counter"] = 7;
  bench_case.wall_seconds = {0.001, 0.002};
  cases.push_back(std::move(bench_case));
  const std::string json = obs::RenderBenchReport(
      cases, obs::MetricsRegistry::Global().Snap(), QuickRunInfo());

  // The rendered document carries the v2 header fields verbatim.
  EXPECT_NE(json.find("\"schema\": \"mc3.bench_report/2\""),
            std::string::npos);
  EXPECT_NE(json.find("\"machine\""), std::string::npos);
  EXPECT_NE(json.find("\"bench.test_counter\": 7"), std::string::npos);

  // Dropping the per-case wall times must fail v2 validation.
  std::string no_walls = json;
  const size_t at = no_walls.find("\"wall_seconds\"");
  ASSERT_NE(at, std::string::npos);
  no_walls.replace(at, std::strlen("\"wall_seconds\""), "\"renamed\"");
  EXPECT_FALSE(obs::ValidateBenchReportJson(no_walls).ok());

  // A v1 document (no counters, no machine block) stays accepted.
  std::string v1 = json;
  const size_t schema_at = v1.find("mc3.bench_report/2");
  ASSERT_NE(schema_at, std::string::npos);
  v1.replace(schema_at, std::strlen("mc3.bench_report/2"),
             "mc3.bench_report/1");
  if (!obs::kObsEnabled) {
    EXPECT_TRUE(obs::ValidateBenchReportJson(v1).ok());
  }
}

}  // namespace
}  // namespace mc3
