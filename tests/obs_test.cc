// Tests of the observability layer: metrics registry (including
// concurrency), span tracing, JSON writer/parser round trips and report
// schema validation. The span-dependent assertions are gated on
// MC3_OBS_DISABLED so the suite also passes in an MC3_OBS=OFF build.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/mc3.h"
#include "obs/exposition.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "obs/trace_event.h"
#include "tests/test_util.h"
#include "util/parallel.h"

namespace mc3 {
namespace {

using obs::JsonValue;
using obs::JsonWriter;
using obs::ParseJson;

TEST(JsonWriterTest, RendersNestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("a \"quoted\" \n value");
  w.Key("count").Int(42);
  w.Key("pi").Number(3.5);
  w.Key("bad").Number(std::nan(""));
  w.Key("flag").Bool(true);
  w.Key("nothing").Null();
  w.Key("list").BeginArray();
  w.Int(1);
  w.BeginObject();
  w.Key("x").Int(2);
  w.EndObject();
  w.EndArray();
  w.EndObject();
  const std::string json = w.Take();

  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->Find("name")->string, "a \"quoted\" \n value");
  EXPECT_EQ(parsed->Find("count")->number, 42);
  EXPECT_EQ(parsed->Find("pi")->number, 3.5);
  EXPECT_EQ(parsed->Find("bad")->kind, JsonValue::Kind::kNull);
  EXPECT_TRUE(parsed->Find("flag")->boolean);
  EXPECT_EQ(parsed->Find("nothing")->kind, JsonValue::Kind::kNull);
  ASSERT_TRUE(parsed->Find("list")->is_array());
  ASSERT_EQ(parsed->Find("list")->array.size(), 2u);
  EXPECT_EQ(parsed->Find("list")->array[1].Find("x")->number, 2);
}

TEST(JsonParserTest, AcceptsScalarsAndRejectsGarbage) {
  EXPECT_TRUE(ParseJson("true").ok());
  EXPECT_TRUE(ParseJson("-12.5e2").ok());
  EXPECT_TRUE(ParseJson("\"\\u0041\\t\"").ok());
  EXPECT_TRUE(ParseJson("[]").ok());
  EXPECT_TRUE(ParseJson("{}").ok());
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
}

TEST(JsonParserTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonParserTest, RoundTripsEscapes) {
  std::string out;
  obs::AppendJsonEscaped("tab\t nl\n quote\" back\\ bell\x07", &out);
  auto parsed = ParseJson("\"" + out + "\"");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->string, "tab\t nl\n quote\" back\\ bell\x07");
}

TEST(MetricsTest, CountersGaugesHistograms) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  obs::Counter& counter = registry.GetCounter("test.counter");
  obs::Gauge& gauge = registry.GetGauge("test.gauge");
  obs::Histogram& histogram = registry.GetHistogram("test.histogram");
  counter.Add();
  counter.Add(4);
  gauge.Set(2.5);
  histogram.Record(0.001);
  histogram.Record(0.004);

  if (!obs::kObsEnabled) return;  // no-op build: nothing to snapshot
  const obs::MetricsSnapshot snap = registry.Snap();
  EXPECT_EQ(snap.counters.at("test.counter"), 5u);
  EXPECT_EQ(snap.gauges.at("test.gauge"), 2.5);
  const obs::HistogramSnapshot& h = snap.histograms.at("test.histogram");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.sum, 0.005);
  EXPECT_EQ(h.min, 0.001);
  EXPECT_EQ(h.max, 0.004);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0025);

  // Handles survive ResetAll; values restart from zero.
  registry.ResetAll();
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(registry.Snap().histograms.at("test.histogram").count, 0u);
}

TEST(MetricsTest, HistogramBucketsAreMonotonic) {
  if (!obs::kObsEnabled) return;
  EXPECT_EQ(obs::Histogram::BucketOf(0), 0);
  EXPECT_EQ(obs::Histogram::BucketLowerBound(0), 0);
  int last = 0;
  for (double v = 1e-8; v < 1e4; v *= 3) {
    const int b = obs::Histogram::BucketOf(v);
    EXPECT_GE(b, last);
    EXPECT_LT(b, obs::Histogram::kNumBuckets);
    if (b > 0) {
      EXPECT_LE(obs::Histogram::BucketLowerBound(b), v);
    }
    last = b;
  }
}

TEST(MetricsTest, ConcurrentRecordingLosesNothing) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  obs::Counter& counter = registry.GetCounter("test.concurrent.counter");
  obs::Histogram& histogram =
      registry.GetHistogram("test.concurrent.histogram");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add();
        histogram.Record(1e-6 * (1 + ((t + i) % 7)));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  if (!obs::kObsEnabled) return;
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  const obs::HistogramSnapshot h =
      registry.Snap().histograms.at("test.concurrent.histogram");
  EXPECT_EQ(h.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.min, 1e-6);
  EXPECT_EQ(h.max, 7e-6);
  uint64_t bucketed = 0;
  for (uint64_t b : h.buckets) bucketed += b;
  EXPECT_EQ(bucketed, h.count);
}

#if !defined(MC3_OBS_DISABLED)

TEST(TraceTest, BuildsSpanTreeWithStats) {
  obs::Trace trace("root");
  {
    obs::ScopedTraceActivation activate(&trace);
    obs::ScopedSpan outer("outer");
    outer.AddStat("n", 3);
    {
      obs::ScopedSpan inner("inner");
      inner.AddStat("m", 1);
    }
    { obs::ScopedSpan inner("inner"); }
  }
  const obs::SpanNode& root = *trace.root();
  EXPECT_EQ(root.name, "root");
  ASSERT_EQ(root.children.size(), 1u);
  const obs::SpanNode& outer = *root.children[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_GE(outer.seconds, 0);
  ASSERT_EQ(outer.stats.size(), 1u);
  EXPECT_EQ(outer.stats[0].first, "n");
  EXPECT_EQ(outer.stats[0].second, 3);
  EXPECT_EQ(outer.children.size(), 2u);
  EXPECT_EQ(root.CountSpans("inner"), 2u);
  EXPECT_NE(root.FindSpan("inner"), nullptr);
  EXPECT_GE(root.TotalSeconds("outer"), root.TotalSeconds("inner"));
}

TEST(TraceTest, InactiveSpansAreNoOps) {
  // No activation: spans must not crash and must record nothing.
  obs::ScopedSpan span("orphan");
  EXPECT_FALSE(span.active());
  span.AddStat("ignored", 1);
}

TEST(TraceTest, ActivationRestoresPreviousContext) {
  obs::Trace a("a");
  obs::Trace b("b");
  {
    obs::ScopedTraceActivation activate_a(&a);
    {
      obs::ScopedTraceActivation activate_b(&b);
      obs::ScopedSpan span("in_b");
    }
    obs::ScopedSpan span("in_a");
  }
  EXPECT_EQ(a.root()->CountSpans("in_a"), 1u);
  EXPECT_EQ(a.root()->CountSpans("in_b"), 0u);
  EXPECT_EQ(b.root()->CountSpans("in_b"), 1u);
  EXPECT_EQ(obs::CurrentTraceContext().trace, nullptr);
}

TEST(TraceTest, ParallelWorkersAdoptTheParentSpan) {
  obs::Trace trace("root");
  {
    obs::ScopedTraceActivation activate(&trace);
    obs::ScopedSpan parent("parent");
    const obs::TraceContext context = obs::CurrentTraceContext();
    ParallelFor(32, 4, [&](size_t) {
      obs::ScopedSpanAdoption adopt(context);
      obs::ScopedSpan child("worker");
    });
  }
  const obs::SpanNode* parent = trace.root()->FindSpan("parent");
  ASSERT_NE(parent, nullptr);
  EXPECT_EQ(parent->CountSpans("worker"), 32u);
}

TEST(TraceTest, SolverSolvePopulatesPhases) {
  obs::Trace trace("solve");
  {
    obs::ScopedTraceActivation activate(&trace);
    GeneralSolver solver{SolverOptions{}};
    auto result = solver.Solve(mc3::testing::PaperExample());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->cost, 7);
  }
  const obs::SpanNode& root = *trace.root();
  EXPECT_NE(root.FindSpan("general_solver"), nullptr);
  EXPECT_NE(root.FindSpan("preprocess"), nullptr);
  EXPECT_NE(root.FindSpan("step1"), nullptr);
  EXPECT_NE(root.FindSpan("step3"), nullptr);
  EXPECT_NE(root.FindSpan("partition"), nullptr);
}

#endif  // !MC3_OBS_DISABLED

obs::SolveReportMeta TestMeta() {
  obs::SolveReportMeta meta;
  meta.tool = "bench";
  meta.solver = "mc3g";
  meta.workload = "unit";
  meta.num_queries = 2;
  meta.num_classifiers = 9;
  meta.num_properties = 5;
  meta.max_query_length = 3;
  meta.cost = 7;
  meta.solution_size = 3;
  meta.num_components = 1;
  meta.total_seconds = 0.001;
  return meta;
}

TEST(ReportTest, SolveReportValidates) {
  obs::Trace trace("solve");
  {
    obs::ScopedTraceActivation activate(&trace);
    obs::ScopedSpan span("preprocess");
    span.AddStat("queries_covered", 2);
  }
  const std::string json = obs::RenderSolveReport(
      TestMeta(), trace, obs::MetricsRegistry::Global().Snap());
  EXPECT_TRUE(obs::ValidateSolveReportJson(json).ok())
      << obs::ValidateSolveReportJson(json).ToString();
  // A bench document it is not.
  EXPECT_FALSE(obs::ValidateBenchReportJson(json).ok());
}

TEST(ReportTest, ValidationCatchesCorruption) {
  obs::Trace trace("solve");
  const std::string json = obs::RenderSolveReport(
      TestMeta(), trace, obs::MetricsRegistry::Global().Snap());
  ASSERT_TRUE(obs::ValidateSolveReportJson(json).ok());

  // Strip the result section: must fail validation.
  std::string corrupted = json;
  const size_t at = corrupted.find("\"result\"");
  ASSERT_NE(at, std::string::npos);
  corrupted.replace(at, 8, "\"broken\"");
  EXPECT_FALSE(obs::ValidateSolveReportJson(corrupted).ok());
  EXPECT_FALSE(obs::ValidateSolveReportJson("{}").ok());
  EXPECT_FALSE(obs::ValidateSolveReportJson("not json").ok());
}

obs::BenchRunInfo QuickRunInfo() {
  obs::BenchRunInfo run;
  run.quick = true;
  run.scale = 0.05;
  return run;
}

TEST(ReportTest, BenchReportRequiresPhasesWhenEnabled) {
  obs::Trace trace("bench");
  std::vector<obs::BenchCase> cases;
  obs::BenchCase bench_case;
  bench_case.meta = TestMeta();
  bench_case.trace = &trace;
  bench_case.counters["bench.test_counter"] = 7;
  bench_case.wall_seconds = {0.001};
  cases.push_back(std::move(bench_case));
  const std::string json = obs::RenderBenchReport(
      cases, obs::MetricsRegistry::Global().Snap(), QuickRunInfo());
  const Status status = obs::ValidateBenchReportJson(json);
  if (obs::kObsEnabled) {
    // An empty span tree cannot carry the required phases.
    EXPECT_FALSE(status.ok());
  } else {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
}

TEST(ReportTest, BenchReportV2RequiresCountersAndWallTimes) {
  obs::Trace trace("bench");
  std::vector<obs::BenchCase> cases;
  obs::BenchCase bench_case;
  bench_case.meta = TestMeta();
  bench_case.trace = &trace;
  bench_case.counters["bench.test_counter"] = 7;
  bench_case.wall_seconds = {0.001, 0.002};
  cases.push_back(std::move(bench_case));
  const std::string json = obs::RenderBenchReport(
      cases, obs::MetricsRegistry::Global().Snap(), QuickRunInfo());

  // The rendered document carries the v2 header fields verbatim.
  EXPECT_NE(json.find("\"schema\": \"mc3.bench_report/2\""),
            std::string::npos);
  EXPECT_NE(json.find("\"machine\""), std::string::npos);
  EXPECT_NE(json.find("\"bench.test_counter\": 7"), std::string::npos);

  // Dropping the per-case wall times must fail v2 validation.
  std::string no_walls = json;
  const size_t at = no_walls.find("\"wall_seconds\"");
  ASSERT_NE(at, std::string::npos);
  no_walls.replace(at, std::strlen("\"wall_seconds\""), "\"renamed\"");
  EXPECT_FALSE(obs::ValidateBenchReportJson(no_walls).ok());

  // A v1 document (no counters, no machine block) stays accepted.
  std::string v1 = json;
  const size_t schema_at = v1.find("mc3.bench_report/2");
  ASSERT_NE(schema_at, std::string::npos);
  v1.replace(schema_at, std::strlen("mc3.bench_report/2"),
             "mc3.bench_report/1");
  if (!obs::kObsEnabled) {
    EXPECT_TRUE(obs::ValidateBenchReportJson(v1).ok());
  }
}

// ---------------------------------------------------------------------------
// HistogramSnapshot quantile edge cases.

TEST(HistogramQuantileTest, EmptyHistogramReportsZeroEverywhere) {
  const obs::HistogramSnapshot empty;
  EXPECT_EQ(empty.Percentile(0), 0);
  EXPECT_EQ(empty.P50(), 0);
  EXPECT_EQ(empty.P95(), 0);
  EXPECT_EQ(empty.P99(), 0);
  EXPECT_EQ(empty.Percentile(1), 0);
  EXPECT_EQ(empty.Mean(), 0);
}

TEST(HistogramQuantileTest, SingleSampleIsEveryQuantile) {
  if (!obs::kObsEnabled) return;
  auto& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  registry.GetHistogram("test.quantile.single").Record(0.0042);
  const obs::HistogramSnapshot h =
      registry.Snap().histograms.at("test.quantile.single");
  ASSERT_EQ(h.count, 1u);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.0042);
  EXPECT_DOUBLE_EQ(h.P50(), 0.0042);
  EXPECT_DOUBLE_EQ(h.P95(), 0.0042);
  EXPECT_DOUBLE_EQ(h.P99(), 0.0042);
  EXPECT_DOUBLE_EQ(h.Percentile(1), 0.0042);
  registry.ResetAll();
}

TEST(HistogramQuantileTest, OpenEndedFirstBucketClampsToObservedRange) {
  if (!obs::kObsEnabled) return;
  // Samples far below the first finite bucket bound land in the open-ended
  // first bucket; interpolation must clamp to [min, max], not to the bucket
  // bound.
  auto& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  obs::Histogram& histogram = registry.GetHistogram("test.quantile.tiny");
  histogram.Record(1e-9);
  histogram.Record(3e-9);
  const obs::HistogramSnapshot h =
      registry.Snap().histograms.at("test.quantile.tiny");
  ASSERT_EQ(h.count, 2u);
  for (const double q : {0.01, 0.5, 0.95, 0.99}) {
    const double v = h.Percentile(q);
    EXPECT_GE(v, h.min) << "q=" << q;
    EXPECT_LE(v, h.max) << "q=" << q;
  }
  registry.ResetAll();
}

TEST(HistogramQuantileTest, OpenEndedLastBucketClampsToObservedMax) {
  if (!obs::kObsEnabled) return;
  // A sample beyond the last finite bound lands in the open-ended last
  // bucket, whose upper edge is +inf; the observed max must bound the
  // estimate.
  auto& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  obs::Histogram& histogram = registry.GetHistogram("test.quantile.huge");
  histogram.Record(1e9);
  histogram.Record(2e9);
  const obs::HistogramSnapshot h =
      registry.Snap().histograms.at("test.quantile.huge");
  ASSERT_EQ(h.count, 2u);
  const double p99 = h.P99();
  EXPECT_TRUE(std::isfinite(p99));
  EXPECT_GE(p99, h.min);
  EXPECT_LE(p99, h.max);
  EXPECT_DOUBLE_EQ(h.Percentile(1), 2e9);
  registry.ResetAll();
}

// ---------------------------------------------------------------------------
// Chrome trace-event sink.

#if !defined(MC3_OBS_DISABLED)

namespace {

// Collects every event object in the rendered document that satisfies
// `pred`.
std::vector<const JsonValue*> EventsWhere(
    const JsonValue& doc, bool (*pred)(const JsonValue&)) {
  std::vector<const JsonValue*> out;
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) return out;
  for (const JsonValue& e : events->array) {
    if (pred(e)) out.push_back(&e);
  }
  return out;
}

std::string PhaseOf(const JsonValue& event) {
  const JsonValue* ph = event.Find("ph");
  return (ph != nullptr && ph->is_string()) ? ph->string : "";
}

}  // namespace

TEST(TraceEventSinkTest, StitchesFlowEventsAcrossThreads) {
  obs::TraceEventSink sink;
  sink.NameCurrentThread("conn-0");
  sink.Span("parse", sink.NowUs(), 10.0, uint64_t{7});
  std::thread worker([&sink] {
    sink.NameCurrentThread("shard-1");
    sink.Span("shard_apply", sink.NowUs() + 100, 25.0,
              std::vector<uint64_t>{7});
    sink.Span("unrelated", sink.NowUs() + 200, 5.0, uint64_t{0});
  });
  worker.join();
  sink.Span("serialize", sink.NowUs() + 400, 3.0, uint64_t{7});

  auto doc = ParseJson(sink.RenderJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  // Three 'X' spans plus the un-sampled one.
  auto complete = EventsWhere(*doc, [](const JsonValue& e) {
    return PhaseOf(e) == "X";
  });
  EXPECT_EQ(complete.size(), 4u);

  // Both threads announce display names.
  auto meta = EventsWhere(*doc, [](const JsonValue& e) {
    return PhaseOf(e) == "M";
  });
  ASSERT_EQ(meta.size(), 2u);
  std::vector<std::string> names;
  std::vector<int> tids;
  for (const JsonValue* e : meta) {
    const JsonValue* args = e->Find("args");
    ASSERT_NE(args, nullptr);
    const JsonValue* name = args->Find("name");
    ASSERT_NE(name, nullptr);
    names.push_back(name->string);
    const JsonValue* tid = e->Find("tid");
    ASSERT_NE(tid, nullptr);
    tids.push_back(static_cast<int>(tid->number));
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "conn-0"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "shard-1"), names.end());
  EXPECT_NE(tids[0], tids[1]);

  // Flow chain for id 7: exactly one start, one finish, one step, in
  // timestamp order, and the finish binds to the enclosing slice ("bp":"e").
  auto starts = EventsWhere(*doc, [](const JsonValue& e) {
    return PhaseOf(e) == "s";
  });
  auto steps = EventsWhere(*doc, [](const JsonValue& e) {
    return PhaseOf(e) == "t";
  });
  auto finishes = EventsWhere(*doc, [](const JsonValue& e) {
    return PhaseOf(e) == "f";
  });
  ASSERT_EQ(starts.size(), 1u);
  ASSERT_EQ(steps.size(), 1u);
  ASSERT_EQ(finishes.size(), 1u);
  const JsonValue* bp = finishes[0]->Find("bp");
  ASSERT_NE(bp, nullptr);
  EXPECT_EQ(bp->string, "e");
  const double ts_s = starts[0]->Find("ts")->number;
  const double ts_t = steps[0]->Find("ts")->number;
  const double ts_f = finishes[0]->Find("ts")->number;
  EXPECT_LE(ts_s, ts_t);
  EXPECT_LE(ts_t, ts_f);
  for (const JsonValue* e : {starts[0], steps[0], finishes[0]}) {
    const JsonValue* id = e->Find("id");
    ASSERT_NE(id, nullptr);
    EXPECT_EQ(id->number, 7);
  }
}

TEST(TraceEventSinkTest, SingleSpanFlowsNothing) {
  obs::TraceEventSink sink;
  sink.Span("lonely", 0, 1.0, uint64_t{42});
  auto doc = ParseJson(sink.RenderJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  auto flows = EventsWhere(*doc, [](const JsonValue& e) {
    const std::string ph = PhaseOf(e);
    return ph == "s" || ph == "t" || ph == "f";
  });
  EXPECT_TRUE(flows.empty());
}

TEST(TraceEventSinkTest, CapsRecordsAndCountsDrops) {
  obs::TraceEventSink sink(/*max_events=*/4);
  for (uint64_t i = 0; i < 10; ++i) {
    sink.Span("s", static_cast<double>(i), 1.0, uint64_t{0});
  }
  EXPECT_EQ(sink.dropped(), 6u);
  auto doc = ParseJson(sink.RenderJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  auto complete = EventsWhere(*doc, [](const JsonValue& e) {
    return PhaseOf(e) == "X";
  });
  EXPECT_EQ(complete.size(), 4u);
}

#endif  // !MC3_OBS_DISABLED

// ---------------------------------------------------------------------------
// Prometheus exposition rendering and parsing.

TEST(ExpositionTest, PrometheusNameSanitizes) {
  EXPECT_EQ(obs::PrometheusName("server.requests"), "mc3_server_requests");
  EXPECT_EQ(obs::PrometheusName("a-b.c/d"), "mc3_a_b_c_d");
  EXPECT_EQ(obs::PrometheusName("ok_name9"), "mc3_ok_name9");
}

TEST(ExpositionTest, ExtraSamplesRoundTripThroughParser) {
  // Extra samples render in every build config (the registry snapshot is
  // simply empty under MC3_OBS=OFF), so this covers the `metrics` verb's
  // always-on surface.
  obs::MetricsSnapshot snap;
  std::vector<obs::ExpositionSample> extra;
  extra.push_back({"server.requests", "counter", {}, 42});
  extra.push_back({"server.queue_depth", "gauge", {}, 3});
  extra.push_back({"shard.ops", "counter", {{"shard", "0"}}, 10});
  extra.push_back({"shard.ops", "counter", {{"shard", "1"}}, 12});
  extra.push_back(
      {"build_info", "gauge", {{"compiler", "g++ \"x\"\nv1\\2"}}, 1});
  const std::string text = obs::RenderPrometheus(snap, extra);

  // Counters carry _total; HELP/TYPE lines are emitted once per name run.
  EXPECT_NE(text.find("# TYPE mc3_server_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("mc3_server_queue_depth 3"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE mc3_shard_ops_total counter"),
            text.rfind("# TYPE mc3_shard_ops_total counter"));

  auto parsed = obs::ParseExposition(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::ParsedSample* requests =
      obs::FindSample(*parsed, "mc3_server_requests_total");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->value, 42);
  const obs::ParsedSample* shard1 =
      obs::FindSample(*parsed, "mc3_shard_ops_total", {{"shard", "1"}});
  ASSERT_NE(shard1, nullptr);
  EXPECT_EQ(shard1->value, 12);
  EXPECT_EQ(obs::FindSample(*parsed, "mc3_shard_ops_total", {{"shard", "9"}}),
            nullptr);
  // Escaped label value survives the round trip.
  const obs::ParsedSample* build = obs::FindSample(*parsed, "mc3_build_info");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->labels.at("compiler"), "g++ \"x\"\nv1\\2");
}

TEST(ExpositionTest, RegistryHistogramRendersCumulativeBuckets) {
  if (!obs::kObsEnabled) return;
  auto& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  obs::Histogram& histogram = registry.GetHistogram("test.expo.latency");
  histogram.Record(0.001);
  histogram.Record(0.002);
  histogram.Record(5.0);
  registry.GetCounter("test.expo.hits").Add(3);
  const std::string text = obs::RenderPrometheus(registry.Snap(), {});
  registry.ResetAll();

  auto parsed = obs::ParseExposition(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::ParsedSample* count =
      obs::FindSample(*parsed, "mc3_test_expo_latency_count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->value, 3);
  const obs::ParsedSample* inf =
      obs::FindSample(*parsed, "mc3_test_expo_latency_bucket", {{"le", "+Inf"}});
  ASSERT_NE(inf, nullptr);
  EXPECT_EQ(inf->value, 3);  // the +Inf bucket is cumulative == count
  const obs::ParsedSample* sum =
      obs::FindSample(*parsed, "mc3_test_expo_latency_sum");
  ASSERT_NE(sum, nullptr);
  EXPECT_NEAR(sum->value, 5.003, 1e-9);
  const obs::ParsedSample* hits =
      obs::FindSample(*parsed, "mc3_test_expo_hits_total");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->value, 3);

  // Bucket series is monotonically non-decreasing in le order.
  double prev = -1;
  for (const obs::ParsedSample& s : *parsed) {
    if (s.name != "mc3_test_expo_latency_bucket") continue;
    EXPECT_GE(s.value, prev);
    prev = s.value;
  }
}

TEST(ExpositionTest, ParserRejectsMalformedLines) {
  EXPECT_FALSE(obs::ParseExposition("metric_without_value\n").ok());
  EXPECT_FALSE(obs::ParseExposition("name{unclosed=\"x\" 1\n").ok());
  EXPECT_FALSE(obs::ParseExposition("name notanumber\n").ok());
  auto ok = obs::ParseExposition("# just a comment\n\nm 1\n");
  ASSERT_TRUE(ok.ok());
  ASSERT_EQ(ok->size(), 1u);
  EXPECT_EQ((*ok)[0].name, "m");
}

TEST(HistogramQuantileTest, QuantilesAreMonotonicAcrossSpreadSamples) {
  if (!obs::kObsEnabled) return;
  auto& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();
  obs::Histogram& histogram = registry.GetHistogram("test.quantile.spread");
  for (int i = 1; i <= 1000; ++i) histogram.Record(1e-6 * i);
  const obs::HistogramSnapshot h =
      registry.Snap().histograms.at("test.quantile.spread");
  ASSERT_EQ(h.count, 1000u);
  const double p50 = h.P50();
  const double p95 = h.P95();
  const double p99 = h.P99();
  EXPECT_LE(h.min, p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max);
  registry.ResetAll();
}

}  // namespace
}  // namespace mc3
