#include "core/stats.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mc3 {
namespace {

using testing::PS;

TEST(StatsTest, EmptyInstance) {
  const InstanceStats stats = ComputeStats(Instance{});
  EXPECT_EQ(stats.num_queries, 0u);
  EXPECT_EQ(stats.num_classifiers, 0u);
  EXPECT_EQ(stats.max_query_length, 0u);
  EXPECT_EQ(stats.fraction_short, 0);
  EXPECT_TRUE(stats.feasible);  // vacuously
}

TEST(StatsTest, PaperExampleStats) {
  const InstanceStats stats = ComputeStats(testing::PaperExample());
  EXPECT_EQ(stats.num_queries, 2u);
  EXPECT_EQ(stats.num_properties, 4u);
  EXPECT_EQ(stats.num_classifiers, 9u);
  EXPECT_EQ(stats.max_query_length, 3u);
  EXPECT_EQ(stats.min_cost, 1);
  EXPECT_EQ(stats.max_cost, 5);
  EXPECT_DOUBLE_EQ(stats.fraction_short, 0.5);  // the chelsea query
  // A (adidas) appears in both queries: incidence 2.
  EXPECT_EQ(stats.incidence, 2u);
  EXPECT_TRUE(stats.feasible);
}

TEST(StatsTest, LengthHistogram) {
  Instance inst;
  inst.AddQuery(PS({0}));
  inst.AddQuery(PS({1, 2}));
  inst.AddQuery(PS({3, 4}));
  inst.AddQuery(PS({0, 1, 2}));
  const InstanceStats stats = ComputeStats(inst);
  ASSERT_EQ(stats.length_histogram.size(), 4u);
  EXPECT_EQ(stats.length_histogram[1], 1u);
  EXPECT_EQ(stats.length_histogram[2], 2u);
  EXPECT_EQ(stats.length_histogram[3], 1u);
  EXPECT_DOUBLE_EQ(stats.fraction_short, 0.75);
}

TEST(StatsTest, InfeasibleFlag) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 1);
  EXPECT_FALSE(ComputeStats(inst).feasible);
}

TEST(StatsTest, InfiniteCostsExcludedFromRange) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 2);
  inst.SetCost(PS({1}), 7);
  const InstanceStats stats = ComputeStats(inst);
  EXPECT_EQ(stats.min_cost, 2);
  EXPECT_EQ(stats.max_cost, 7);
  EXPECT_EQ(stats.num_classifiers, 2u);
}

TEST(StatsTest, StatsRowRendersTableOneStyle) {
  const std::string row = StatsRow("BB", ComputeStats(testing::PaperExample()));
  EXPECT_NE(row.find("BB"), std::string::npos);
  EXPECT_NE(row.find("2 queries"), std::string::npos);
  EXPECT_NE(row.find("max cost 5"), std::string::npos);
  EXPECT_NE(row.find("max length 3"), std::string::npos);
}

}  // namespace
}  // namespace mc3
