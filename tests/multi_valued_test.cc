#include "core/multi_valued.h"

#include <gtest/gtest.h>

#include "core/exact_solver.h"
#include "tests/test_util.h"

namespace mc3 {
namespace {

using testing::PS;

// The Section 5.3 running example: queries q1 = {juventus, white, adidas},
// q2 = {chelsea, adidas}; attributes team (juventus, chelsea), color
// (white), brand (adidas). Merged queries: q1 = {team, color, brand},
// q2 = {team, brand}.
constexpr PropertyId kJuventus = 0, kWhite = 1, kAdidas = 2, kChelsea = 3;
constexpr AttributeId kTeam = 0, kColor = 1, kBrand = 2;

Instance BinaryInstance() {
  Instance inst;
  inst.AddQuery(PS({kJuventus, kWhite, kAdidas}));
  inst.AddQuery(PS({kChelsea, kAdidas}));
  for (PropertyId p = 0; p <= 3; ++p) inst.SetCost(PS({p}), 5);
  return inst;
}

TEST(MergeToAttributesTest, MergesQueries) {
  const std::vector<AttributeId> mapping = {kTeam, kColor, kBrand, kTeam};
  CostMap costs;
  costs[PS({kTeam})] = 4;
  costs[PS({kColor})] = 2;
  costs[PS({kBrand})] = 3;
  auto merged = MergeToAttributes(BinaryInstance(), mapping, costs);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->NumQueries(), 2u);
  EXPECT_EQ(merged->queries()[0], PS({kTeam, kColor, kBrand}));
  EXPECT_EQ(merged->queries()[1], PS({kTeam, kBrand}));
  EXPECT_TRUE(merged->Validate().ok());
}

TEST(MergeToAttributesTest, DeduplicatesCollapsedQueries) {
  Instance inst;
  inst.AddQuery(PS({0}));  // color=red
  inst.AddQuery(PS({1}));  // color=blue
  const std::vector<AttributeId> mapping = {0, 0};
  CostMap costs;
  costs[PS({0})] = 1;
  auto merged = MergeToAttributes(inst, mapping, costs);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->NumQueries(), 1u);
}

TEST(MergeToAttributesTest, RejectsUnmappedProperty) {
  const std::vector<AttributeId> mapping = {kTeam};  // too short
  auto merged = MergeToAttributes(BinaryInstance(), mapping, CostMap{});
  EXPECT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
}

TEST(MergeToAttributesTest, MergedInstanceSolvable) {
  const std::vector<AttributeId> mapping = {kTeam, kColor, kBrand, kTeam};
  CostMap costs;
  costs[PS({kTeam})] = 4;
  costs[PS({kColor})] = 2;
  costs[PS({kBrand})] = 3;
  costs[PS({kTeam, kBrand})] = 5;
  auto merged = MergeToAttributes(BinaryInstance(), mapping, costs);
  ASSERT_TRUE(merged.ok());
  auto exact = ExactSolver().Solve(*merged);
  ASSERT_TRUE(exact.ok());
  // Options: T+C+B = 9, TB+C... TB covers q2, q1 needs exact {t,c,b}: TB+C
  // covers t,b,c of q1 -> 5+2 = 7.
  EXPECT_DOUBLE_EQ(exact->cost, 7);
}

TEST(SolveWithMultiValuedTest, MvClassifierServesMultipleValues) {
  // Queries: {juventus, adidas}, {chelsea, adidas}. A single "team"
  // multi-valued classifier (cost 4) resolves both team properties; cheaper
  // than the two singletons (5 + 5).
  Instance inst;
  inst.AddQuery(PS({kJuventus, kAdidas}));
  inst.AddQuery(PS({kChelsea, kAdidas}));
  inst.SetCost(PS({kJuventus}), 5);
  inst.SetCost(PS({kChelsea}), 5);
  inst.SetCost(PS({kAdidas}), 2);
  std::vector<MultiValuedClassifier> mv;
  mv.push_back({"team", PS({kJuventus, kChelsea}), 4});
  auto result = SolveWithMultiValued(inst, mv);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->multi_valued.size(), 1u);
  EXPECT_EQ(result->multi_valued[0], 0u);
  EXPECT_TRUE(result->binary.Contains(PS({kAdidas})));
  EXPECT_DOUBLE_EQ(result->cost, 6);  // team (4) + adidas (2)
}

TEST(SolveWithMultiValuedTest, ExpensiveMvClassifierIgnored) {
  Instance inst;
  inst.AddQuery(PS({kJuventus, kAdidas}));
  inst.SetCost(PS({kJuventus}), 1);
  inst.SetCost(PS({kAdidas}), 1);
  std::vector<MultiValuedClassifier> mv;
  mv.push_back({"team", PS({kJuventus, kChelsea}), 100});
  auto result = SolveWithMultiValued(inst, mv);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->multi_valued.empty());
  EXPECT_DOUBLE_EQ(result->cost, 2);
}

TEST(SolveWithMultiValuedTest, MvOnlyInstanceStillInfeasibleWithoutCover) {
  Instance inst;
  inst.AddQuery(PS({kJuventus, kAdidas}));
  inst.SetCost(PS({kJuventus}), 1);
  // Nothing covers adidas, not even the MV classifier.
  std::vector<MultiValuedClassifier> mv;
  mv.push_back({"team", PS({kJuventus, kChelsea}), 1});
  auto result = SolveWithMultiValued(inst, mv);
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(SolveWithMultiValuedTest, MvClassifierCanCarryWholeInstance) {
  Instance inst;
  inst.AddQuery(PS({0}));
  inst.AddQuery(PS({1}));
  std::vector<MultiValuedClassifier> mv;
  mv.push_back({"color", PS({0, 1}), 3});
  auto result = SolveWithMultiValued(inst, mv);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->multi_valued.size(), 1u);
  EXPECT_DOUBLE_EQ(result->cost, 3);
  EXPECT_TRUE(result->binary.empty());
}

TEST(PruneMultiValuedTest, KeepsCheapDropsExpensive) {
  Instance inst;
  inst.AddQuery(PS({kJuventus, kAdidas}));
  inst.AddQuery(PS({kChelsea, kAdidas}));
  inst.SetCost(PS({kJuventus}), 5);
  inst.SetCost(PS({kChelsea}), 5);
  inst.SetCost(PS({kAdidas}), 2);
  std::vector<MultiValuedClassifier> mv;
  mv.push_back({"team_cheap", PS({kJuventus, kChelsea}), 9});   // < 10
  mv.push_back({"team_costly", PS({kJuventus, kChelsea}), 10});  // == 10
  const auto kept = PruneMultiValued(inst, mv);
  EXPECT_EQ(kept, (std::vector<size_t>{0}));
}

TEST(PruneMultiValuedTest, UnusedValuePropertiesIgnored) {
  Instance inst;
  inst.AddQuery(PS({kJuventus}));
  inst.SetCost(PS({kJuventus}), 3);
  std::vector<MultiValuedClassifier> mv;
  // chelsea never occurs in a query; only juventus counts toward the sum.
  mv.push_back({"team", PS({kJuventus, kChelsea}), 3});
  EXPECT_TRUE(PruneMultiValued(inst, mv).empty());
  mv[0].cost = 2;
  EXPECT_EQ(PruneMultiValued(inst, mv).size(), 1u);
}

TEST(PruneMultiValuedTest, UnpricedSingletonKeepsMv) {
  Instance inst;
  inst.AddQuery(PS({kJuventus}));
  // Singleton unpriced: the multi-valued classifier is the only option.
  std::vector<MultiValuedClassifier> mv;
  mv.push_back({"team", PS({kJuventus, kChelsea}), 100});
  EXPECT_EQ(PruneMultiValued(inst, mv).size(), 1u);
}

TEST(PruneMultiValuedTest, IndicesSurviveIntoHybridResult) {
  // The first MV classifier is prunable; the second must still be reported
  // under its original index.
  Instance inst;
  inst.AddQuery(PS({kJuventus, kAdidas}));
  inst.AddQuery(PS({kChelsea, kAdidas}));
  inst.SetCost(PS({kJuventus}), 5);
  inst.SetCost(PS({kChelsea}), 5);
  inst.SetCost(PS({kAdidas}), 2);
  std::vector<MultiValuedClassifier> mv;
  mv.push_back({"useless", PS({kJuventus}), 50});
  mv.push_back({"team", PS({kJuventus, kChelsea}), 4});
  auto result = SolveWithMultiValued(inst, mv);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->multi_valued.size(), 1u);
  EXPECT_EQ(result->multi_valued[0], 1u);
}

}  // namespace
}  // namespace mc3
