#include <gtest/gtest.h>

#include <cmath>

#include "util/csv.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table.h"
#include "util/timer.h"

namespace mc3 {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::Infeasible("no cover");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInfeasible);
  EXPECT_EQ(s.message(), "no cover");
  EXPECT_EQ(s.ToString(), "Infeasible: no cover");
}

TEST(StatusTest, AllCodesNamed) {
  EXPECT_EQ(Status::InvalidArgument("x").ToString(), "InvalidArgument: x");
  EXPECT_EQ(Status::NotFound("x").ToString(), "NotFound: x");
  EXPECT_EQ(Status::IOError("x").ToString(), "IOError: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "Internal: x");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("abc"));
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "abc");
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(7);
  EXPECT_EQ(rng.UniformInt(5, 5), 5u);
}

TEST(RngTest, UniformIntRoughlyUniform) {
  Rng rng(11);
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.UniformInt(0, 3)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(double(i));
  ::testing::Test::RecordProperty("sink", static_cast<int>(sink));
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_GE(t.Millis(), t.Seconds());  // millis numerically larger
}

TEST(CsvTest, ParsesSimpleRows) {
  auto doc = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(doc->rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvTest, SkipsCommentsAndBlankLines) {
  auto doc = ParseCsv("# header\n\na,b\n\n# tail\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
}

TEST(CsvTest, QuotedFields) {
  auto doc = ParseCsv("\"a,b\",\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][0], "a,b");
  EXPECT_EQ(doc->rows[0][1], "say \"hi\"");
}

TEST(CsvTest, CrLfTolerated) {
  auto doc = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows.size(), 2u);
}

TEST(CsvTest, MissingTrailingNewline) {
  auto doc = ParseCsv("a,b");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0].size(), 2u);
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  auto doc = ParseCsv("\"abc\n");
  EXPECT_FALSE(doc.ok());
}

TEST(CsvTest, FormatRoundTrips) {
  const std::vector<std::vector<std::string>> rows{
      {"plain", "with,comma", "with\"quote"},
      {"", "x", "multi\nline"},
  };
  auto parsed = ParseCsv(FormatCsv(rows));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->rows.size(), 2u);
  EXPECT_EQ(parsed->rows[0], rows[0]);
  EXPECT_EQ(parsed->rows[1], rows[1]);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mc3_csv_test.csv";
  const std::vector<std::vector<std::string>> rows{{"a", "b"}, {"c", "d"}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto doc = ReadCsvFile(path);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows, rows);
}

TEST(CsvTest, MissingFileIsNotFound) {
  auto doc = ReadCsvFile("/nonexistent/road/file.csv");
  EXPECT_EQ(doc.status().code(), StatusCode::kNotFound);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "cost"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "23"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| name   | cost |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 23   |"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatting) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(5, 0), "5");
  EXPECT_EQ(TablePrinter::Num(std::numeric_limits<double>::infinity()),
            "inf");
}

TEST(TablePrinterTest, CsvExport) {
  TablePrinter t({"h1", "h2"});
  t.AddRow({"a", "b"});
  EXPECT_EQ(t.ToCsv(), "h1,h2\na,b\n");
}

}  // namespace
}  // namespace mc3
