#include "core/shared_labeling.h"

#include <gtest/gtest.h>

#include "core/exact_solver.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace mc3 {
namespace {

using testing::PS;
using testing::RandomInstance;
using testing::RandomInstanceConfig;

SharedLabelingModel SmallModel() {
  SharedLabelingModel model;
  model.base_costs[PS({0})] = 1;
  model.base_costs[PS({1})] = 1;
  model.base_costs[PS({0, 1})] = 1;
  model.base_costs[PS({1, 2})] = 1;
  model.base_costs[PS({2})] = 1;
  model.label_costs[0] = 4;
  model.label_costs[1] = 4;
  model.label_costs[2] = 4;
  return model;
}

TEST(SharedLabelingModelTest, StandaloneCostAddsLabels) {
  const SharedLabelingModel model = SmallModel();
  EXPECT_EQ(model.StandaloneCost(PS({0})), 5);       // 1 + 4
  EXPECT_EQ(model.StandaloneCost(PS({0, 1})), 9);    // 1 + 4 + 4
  EXPECT_EQ(model.StandaloneCost(PS({0, 2})), kInfiniteCost);  // no base
}

TEST(SharedLabelingModelTest, SetCostSharesLabels) {
  const SharedLabelingModel model = SmallModel();
  Solution solution;
  solution.Add(PS({0, 1}));
  solution.Add(PS({1, 2}));
  // Bases 1 + 1; labels 0, 1, 2 paid once: 4 * 3. Total 14, not 18.
  EXPECT_EQ(model.SetCost(solution), 14);
}

TEST(SharedLabelingModelTest, SetCostInfiniteForUnpricedBase) {
  const SharedLabelingModel model = SmallModel();
  Solution solution;
  solution.Add(PS({0, 2}));
  EXPECT_EQ(model.SetCost(solution), kInfiniteCost);
}

TEST(FlattenTest, FlatInstanceUsesStandaloneCosts) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.AddQuery(PS({1, 2}));
  const SharedLabelingModel model = SmallModel();
  const Instance flat = FlattenToIndependentCosts(inst, model);
  EXPECT_EQ(flat.CostOf(PS({0, 1})), 9);
  EXPECT_EQ(flat.CostOf(PS({1})), 5);
  EXPECT_EQ(flat.NumQueries(), 2u);
}

TEST(SharedLabelingGreedyTest, ExploitsSharedLabels) {
  // Queries xy and yz. Flat costs: XY=9, YZ=9 -> flat total 18 via pairs,
  // or singletons X+Y+Z = 15. Shared: XY+YZ = 14; X,Y,Z = 15.
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.AddQuery(PS({1, 2}));
  auto result = SolveSharedLabelingGreedy(inst, SmallModel());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(Covers(inst, result->solution));
  EXPECT_LE(result->cost, 15);
}

TEST(SharedLabelingGreedyTest, InfeasibleReported) {
  Instance inst;
  inst.AddQuery(PS({0, 3}));  // property 3 has no classifier
  auto result = SolveSharedLabelingGreedy(inst, SmallModel());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(SharedLabelingGreedyTest, RejectsNegativeCosts) {
  Instance inst;
  inst.AddQuery(PS({0}));
  SharedLabelingModel model = SmallModel();
  model.label_costs[0] = -1;
  EXPECT_FALSE(SolveSharedLabelingGreedy(inst, model).ok());
}

TEST(SharedLabelingExactTest, FindsSharingOptimum) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.AddQuery(PS({1, 2}));
  auto result = SolveSharedLabelingExact(inst, SmallModel());
  ASSERT_TRUE(result.ok());
  // Optimum: {XY, YZ} = 14 (bases 2 + labels 12) beats singletons (15).
  EXPECT_EQ(result->cost, 14);
}

TEST(SharedLabelingExactTest, GuardsReject) {
  RandomInstanceConfig config;
  config.num_queries = 20;
  const Instance inst = RandomInstance(config, 5);
  SharedLabelingModel model;
  auto result = SolveSharedLabelingExact(inst, model);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

class SharedLabelingSweepTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, SharedLabelingSweepTest,
                         ::testing::Range(0, 15));

TEST_P(SharedLabelingSweepTest, GreedyCoversAndExactIsNoWorse) {
  RandomInstanceConfig config;
  config.num_queries = 4;
  config.pool = 5;
  config.max_query_length = 3;
  const Instance inst = RandomInstance(config, GetParam() * 61 + 13);
  SharedLabelingModel model;
  Rng rng(GetParam() + 500);
  // Sorted: random draws consumed in iteration order must be stable.
  for (const auto& [classifier, cost] : SortedCostEntries(inst.costs())) {
    model.base_costs[classifier] = double(rng.UniformInt(0, 5));
  }
  for (const PropertySet& q : inst.queries()) {
    for (PropertyId p : q) {
      if (model.label_costs.count(p) == 0) {
        model.label_costs[p] = double(rng.UniformInt(0, 8));
      }
    }
  }
  auto greedy = SolveSharedLabelingGreedy(inst, model);
  auto exact = SolveSharedLabelingExact(inst, model);
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_TRUE(Covers(inst, greedy->solution));
  EXPECT_TRUE(Covers(inst, exact->solution));
  EXPECT_LE(exact->cost, greedy->cost + 1e-9);
  EXPECT_DOUBLE_EQ(greedy->cost, model.SetCost(greedy->solution));
}

TEST_P(SharedLabelingSweepTest, SharedNeverCostsMoreThanFlatOptimum) {
  // The shared model's optimum is <= the flat (independent-cost) optimum:
  // any flat solution costs at least as much under sharing.
  RandomInstanceConfig config;
  config.num_queries = 4;
  config.pool = 5;
  config.max_query_length = 3;
  const Instance inst = RandomInstance(config, GetParam() * 73 + 29);
  SharedLabelingModel model;
  Rng rng(GetParam() + 900);
  // Sorted: random draws consumed in iteration order must be stable.
  for (const auto& [classifier, cost] : SortedCostEntries(inst.costs())) {
    model.base_costs[classifier] = double(rng.UniformInt(0, 5));
  }
  for (const PropertySet& q : inst.queries()) {
    for (PropertyId p : q) {
      if (model.label_costs.count(p) == 0) {
        model.label_costs[p] = double(rng.UniformInt(0, 8));
      }
    }
  }
  const Instance flat = FlattenToIndependentCosts(inst, model);
  auto flat_opt = ExactSolver().Solve(flat);
  auto shared_opt = SolveSharedLabelingExact(inst, model);
  ASSERT_TRUE(flat_opt.ok());
  ASSERT_TRUE(shared_opt.ok());
  EXPECT_LE(shared_opt->cost, flat_opt->cost + 1e-9);
}

}  // namespace
}  // namespace mc3
