// Determinism regression tests (lint rule R1's dynamic complement, see
// docs/static_analysis.md): the same logical instance, built with shuffled
// insertion histories, must produce byte-identical solutions. Unordered
// containers iterate in an order that depends on how their content was
// inserted, so any solver path that lets that order leak into tie-breaks or
// solution assembly fails these tests.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/exact_solver.h"
#include "core/general_solver.h"
#include "core/instance.h"
#include "core/instance_util.h"
#include "core/k2_solver.h"
#include "core/solution.h"
#include "durability/snapshot.h"
#include "obs/metrics.h"
#include "online/online_engine.h"
#include "online/sharded_engine.h"
#include "server/coalescer.h"
#include "tests/test_util.h"
#include "util/float_cmp.h"
#include "util/rng.h"

namespace mc3 {
namespace {

using testing::RandomInstanceConfig;

/// The sorted (query, cost-entry) content of a seeded random instance:
/// distinct generic costs, so the optimum is unique and any ordering bug
/// shows up as a different solution, not a cost tie.
struct InstanceContent {
  std::vector<PropertySet> queries;
  std::vector<std::pair<PropertySet, Cost>> cost_entries;
};

InstanceContent SeededContent(uint64_t seed, size_t num_queries = 8) {
  RandomInstanceConfig config;
  config.num_queries = num_queries;
  config.pool = 9;
  config.max_query_length = 3;
  config.zero_probability = 0;
  const Instance base = testing::RandomInstance(config, seed);
  InstanceContent content;
  content.queries = base.queries();
  content.cost_entries = SortedCostEntries(base.costs());
  // Perturb costs to be pairwise distinct (generic costs => unique optimum)
  // while keeping them comparable in magnitude.
  Cost bump = 0;
  for (auto& [classifier, cost] : content.cost_entries) {
    bump += 1.0 / 1024;
    cost += bump;
  }
  return content;
}

/// Builds the instance inserting cost entries (and optionally queries) in
/// the order given by `perm_seed` — same logical instance, different
/// unordered_map insertion history.
Instance BuildShuffled(const InstanceContent& content, uint64_t perm_seed,
                       bool shuffle_queries) {
  std::vector<size_t> cost_order(content.cost_entries.size());
  std::iota(cost_order.begin(), cost_order.end(), size_t{0});
  std::vector<size_t> query_order(content.queries.size());
  std::iota(query_order.begin(), query_order.end(), size_t{0});
  Rng rng(perm_seed);
  for (size_t i = cost_order.size(); i > 1; --i) {
    std::swap(cost_order[i - 1],
              cost_order[static_cast<size_t>(rng.UniformInt(0, i - 1))]);
  }
  if (shuffle_queries) {
    for (size_t i = query_order.size(); i > 1; --i) {
      std::swap(query_order[i - 1],
                query_order[static_cast<size_t>(rng.UniformInt(0, i - 1))]);
    }
  }
  Instance instance;
  for (size_t qi : query_order) instance.AddQuery(content.queries[qi]);
  for (size_t ci : cost_order) {
    instance.SetCost(content.cost_entries[ci].first, content.cost_entries[ci].second);
  }
  return instance;
}

/// Canonical byte rendering of a solution: sorted classifiers + total cost
/// at full precision.
std::string Canonical(const Solution& solution, const Instance& instance) {
  std::vector<PropertySet> sorted = solution.classifiers();
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const PropertySet& c : sorted) out += c.ToString() + ";";
  char cost[64];
  std::snprintf(cost, sizeof(cost), "%.17g",
                solution.TotalCost(instance));
  return out + cost;
}

template <typename SolverT>
void ExpectSolverDeterministic(uint64_t seed) {
  const InstanceContent content = SeededContent(seed);
  std::string first_canonical;
  std::string first_tostring;
  for (uint64_t perm = 0; perm < 4; ++perm) {
    const Instance instance =
        BuildShuffled(content, /*perm_seed=*/perm * 71 + 5,
                      /*shuffle_queries=*/false);
    auto result = SolverT().Solve(instance);
    ASSERT_TRUE(result.ok()) << result.status().message();
    // Identical query order + shuffled cost-table history must yield a
    // byte-identical solution, including classifier insertion order.
    const std::string rendered = result->solution.ToString(instance);
    const std::string canonical = Canonical(result->solution, instance);
    if (perm == 0) {
      first_tostring = rendered;
      first_canonical = canonical;
    } else {
      EXPECT_EQ(rendered, first_tostring) << "seed " << seed;
      EXPECT_EQ(canonical, first_canonical) << "seed " << seed;
    }
  }
  // Shuffling the query list is a semantic reordering: the classifier set
  // and cost must still match (canonical compare, not insertion order).
  for (uint64_t perm = 0; perm < 2; ++perm) {
    const Instance instance =
        BuildShuffled(content, /*perm_seed=*/perm * 131 + 17,
                      /*shuffle_queries=*/true);
    auto result = SolverT().Solve(instance);
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(Canonical(result->solution, instance), first_canonical)
        << "seed " << seed;
  }
}

TEST(DeterminismTest, ExactSolver) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    ExpectSolverDeterministic<ExactSolver>(seed);
  }
}

TEST(DeterminismTest, GeneralSolver) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    ExpectSolverDeterministic<GeneralSolver>(seed);
  }
}

TEST(DeterminismTest, K2Solver) {
  // K2 requires max query length 2.
  RandomInstanceConfig config;
  config.num_queries = 8;
  config.pool = 7;
  config.max_query_length = 2;
  config.zero_probability = 0;
  const Instance base = testing::RandomInstance(config, 31);
  InstanceContent content;
  content.queries = base.queries();
  content.cost_entries = SortedCostEntries(base.costs());
  Cost bump = 0;
  for (auto& [classifier, cost] : content.cost_entries) {
    bump += 1.0 / 1024;
    cost += bump;
  }
  std::string first;
  for (uint64_t perm = 0; perm < 4; ++perm) {
    const Instance instance = BuildShuffled(content, perm * 37 + 3,
                                            /*shuffle_queries=*/false);
    auto result = K2ExactSolver().Solve(instance);
    ASSERT_TRUE(result.ok()) << result.status().message();
    const std::string rendered =
        result->solution.ToString(instance) + "|" +
        Canonical(result->solution, instance);
    if (perm == 0) {
      first = rendered;
    } else {
      EXPECT_EQ(rendered, first);
    }
  }
}

TEST(DeterminismTest, OnlineEngineInitializeAndSolution) {
  const InstanceContent content = SeededContent(41);
  std::string first;
  for (uint64_t perm = 0; perm < 4; ++perm) {
    const Instance instance = BuildShuffled(content, perm * 53 + 7,
                                            /*shuffle_queries=*/false);
    online::OnlineEngine engine;
    auto stats = engine.Initialize(instance);
    ASSERT_TRUE(stats.ok()) << stats.status().message();
    const std::string rendered =
        Canonical(engine.CurrentSolution(), instance);
    if (perm == 0) {
      first = rendered;
    } else {
      EXPECT_EQ(rendered, first);
    }
  }
}

// The serving subsystem's coalescing contract (src/server/coalescer.h):
// folding a run of updates into one net ApplyUpdate batch must produce a
// byte-identical solution to applying the run one operation at a time —
// the engine re-solves dirty components deterministically from the live
// set alone, and the fold preserves the final live set exactly.
TEST(DeterminismTest, CoalescedBatchMatchesSequentialUpdates) {
  const InstanceContent content = SeededContent(83, /*num_queries=*/10);
  const Instance base =
      BuildShuffled(content, 11, /*shuffle_queries=*/false);
  const std::vector<PropertySet>& qs = content.queries;

  // A churn run over live queries: removes, re-adds, a duplicate add and a
  // remove-then-re-add flip, spread over several components.
  struct Op {
    std::vector<PropertySet> add;
    std::vector<PropertySet> remove;
  };
  const std::vector<Op> ops = {
      {{}, {qs[0]}}, {{}, {qs[2]}}, {{qs[0]}, {}}, {{}, {qs[4]}},
      {{qs[2]}, {}}, {{qs[0]}, {}},  // duplicate add: idempotent
      {{qs[7]}, {qs[7]}},            // same-op flip: nets to an add
  };

  online::OnlineEngine sequential;
  ASSERT_TRUE(sequential.Initialize(base).ok());
  for (const Op& op : ops) {
    auto stats = sequential.ApplyUpdate(op.add, op.remove);
    ASSERT_TRUE(stats.ok()) << stats.status().message();
  }

  online::OnlineEngine batched;
  ASSERT_TRUE(batched.Initialize(base).ok());
  server::UpdateCoalescer coalescer;
  for (const Op& op : ops) coalescer.Fold(op.add, op.remove);
  const server::NetUpdate net = coalescer.Take();
  EXPECT_EQ(net.ops, 8u);  // 8 source query-ops folded (one op is add+remove)
  auto stats = batched.ApplyUpdate(net.add, net.remove);
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_LE(stats->queries_removed + stats->queries_added, 4u);

  ASSERT_TRUE(sequential.CheckInvariants().ok());
  ASSERT_TRUE(batched.CheckInvariants().ok());
  EXPECT_EQ(sequential.NumQueries(), batched.NumQueries());
  EXPECT_EQ(Canonical(sequential.CurrentSolution(), base),
            Canonical(batched.CurrentSolution(), base));
}

// The contract online re-solve ordering relies on: component ids are
// assigned in first-appearance order over the (sorted) query indices, i.e.
// components are numbered by their smallest member query index.
TEST(DeterminismTest, PartitionQueriesNumbersComponentsByFirstAppearance) {
  const InstanceContent content = SeededContent(71, /*num_queries=*/12);
  const Instance instance =
      BuildShuffled(content, 3, /*shuffle_queries=*/false);
  const ComponentPartition partition = PartitionQueries(instance.queries());
  size_t next_fresh_id = 0;
  for (size_t idx = 0; idx < partition.component_of.size(); ++idx) {
    const size_t cid = partition.component_of[idx];
    ASSERT_LE(cid, next_fresh_id) << "component ids must appear in order";
    if (cid == next_fresh_id) ++next_fresh_id;
  }
  EXPECT_EQ(next_fresh_id, partition.num_components);
}

TEST(DeterminismTest, SortedCostEntriesIsCanonical) {
  const InstanceContent content = SeededContent(51);
  const Instance a = BuildShuffled(content, 1, /*shuffle_queries=*/false);
  const Instance b = BuildShuffled(content, 2, /*shuffle_queries=*/false);
  const auto ea = SortedCostEntries(a.costs());
  const auto eb = SortedCostEntries(b.costs());
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_TRUE(ea[i].first == eb[i].first);
    EXPECT_TRUE(ApproxEq(ea[i].second, eb[i].second));
  }
}

// The preprocessing pipeline inside GeneralSolver covers the Preprocessor;
// exercise the zero-cost forced-selection path explicitly (its selection
// order reaches the forced Solution).
TEST(DeterminismTest, ZeroCostSelectionOrder) {
  InstanceContent content = SeededContent(61);
  // Make a third of the classifiers free: forced selections in step one.
  for (size_t i = 0; i < content.cost_entries.size(); i += 3) {
    content.cost_entries[i].second = 0;
  }
  std::string first;
  for (uint64_t perm = 0; perm < 4; ++perm) {
    const Instance instance = BuildShuffled(content, perm * 19 + 1,
                                            /*shuffle_queries=*/false);
    auto result = GeneralSolver().Solve(instance);
    ASSERT_TRUE(result.ok()) << result.status().message();
    const std::string rendered = result->solution.ToString(instance) + "|" +
                                 Canonical(result->solution, instance);
    if (perm == 0) {
      first = rendered;
    } else {
      EXPECT_EQ(rendered, first);
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded-vs-single equivalence (src/online/sharded_engine.h): Observation
// 3.2 makes connected components independent solve units, so a sharded
// engine whose router keeps every component on one shard must be
// *byte-identical* to the single engine — same canonical snapshot bytes,
// same canonical solution, same canonical total cost — for every shard
// count and every update history.

/// Net churn batches (coalescer-shaped: add/remove disjoint per batch)
/// over the seeded content's queries, spanning several components.
struct NetBatch {
  std::vector<PropertySet> add;
  std::vector<PropertySet> remove;
};

std::vector<NetBatch> ChurnBatches(const std::vector<PropertySet>& qs) {
  return {
      {{}, {qs[1], qs[3]}},            // shrink two components
      {{qs[1]}, {qs[5]}},              // re-add one, drop another
      {{qs[3], qs[5]}, {}},            // restore both
      {{}, {qs[0], qs[2]}},            // more shrinking
      {{qs[0]}, {qs[4]}},              // interleaved re-add + remove
  };
}

/// "%.17g" rendering — bitwise cost comparison across engines.
std::string CostBytes(Cost cost) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", cost);
  return buffer;
}

TEST(DeterminismTest, ShardedEngineMatchesSingleEngineByteForByte) {
  const InstanceContent content = SeededContent(97, /*num_queries=*/12);
  const Instance base = BuildShuffled(content, 13, /*shuffle_queries=*/false);
  const std::vector<NetBatch> batches = ChurnBatches(content.queries);

  online::OnlineEngine single;
  ASSERT_TRUE(single.Initialize(base).ok());
  for (const NetBatch& batch : batches) {
    auto stats = single.ApplyUpdate(batch.add, batch.remove);
    ASSERT_TRUE(stats.ok()) << stats.status().message();
  }
  ASSERT_TRUE(single.CheckInvariants().ok());
  // The equivalence oracle: canonical state (queries sorted within each
  // component, components by smallest query) rendered as snapshot bytes.
  const std::string expected_snapshot = durability::RenderSnapshot(
      online::CanonicalizeState(single.ExportState()), /*seq=*/7);
  const std::string expected_solution =
      Canonical(single.CurrentSolution(), base);

  for (const uint32_t shards : {1u, 2u, 4u, 7u}) {
    online::ShardedEngine sharded(shards);
    auto init = sharded.Initialize(base);
    ASSERT_TRUE(init.ok()) << init.status().message();
    for (const NetBatch& batch : batches) {
      auto stats = sharded.ApplyUpdate(batch.add, batch.remove);
      ASSERT_TRUE(stats.ok()) << stats.status().message();
    }
    ASSERT_TRUE(sharded.CheckInvariants().ok()) << shards << " shards";
    EXPECT_EQ(sharded.NumQueries(), single.NumQueries()) << shards;
    EXPECT_EQ(durability::RenderSnapshot(sharded.CanonicalState(), /*seq=*/7),
              expected_snapshot)
        << shards << " shards";
    EXPECT_EQ(Canonical(sharded.CurrentSolution(), base), expected_solution)
        << shards << " shards";
  }
}

TEST(DeterminismTest, OneShardFacadeIsATransparentPassThrough) {
  // num_shards == 1 must be the legacy engine byte for byte, including the
  // non-canonical (history-ordered) export and the running total cost.
  const InstanceContent content = SeededContent(103, /*num_queries=*/10);
  const Instance base = BuildShuffled(content, 19, /*shuffle_queries=*/false);
  const std::vector<NetBatch> batches = ChurnBatches(content.queries);

  online::OnlineEngine single;
  online::ShardedEngine facade(1);
  ASSERT_TRUE(single.Initialize(base).ok());
  ASSERT_TRUE(facade.Initialize(base).ok());
  for (const NetBatch& batch : batches) {
    auto expect = single.ApplyUpdate(batch.add, batch.remove);
    auto got = facade.ApplyUpdate(batch.add, batch.remove);
    ASSERT_TRUE(expect.ok()) << expect.status().message();
    ASSERT_TRUE(got.ok()) << got.status().message();
    EXPECT_EQ(got->queries_added, expect->queries_added);
    EXPECT_EQ(got->queries_removed, expect->queries_removed);
    EXPECT_EQ(got->components_resolved, expect->components_resolved);
  }
  EXPECT_EQ(CostBytes(facade.TotalCost()), CostBytes(single.TotalCost()));
  EXPECT_EQ(durability::RenderSnapshot(facade.ExportSharded().state, 3),
            durability::RenderSnapshot(single.ExportState(), 3));
}

TEST(DeterminismTest, ShardedCanonicalCostIsLayoutIndependent) {
  // TotalCost sums per-shard running totals, so its low bits may depend on
  // the layout (float addition is not associative); CanonicalTotalCost
  // must not — it is the cost the sharded snapshot/stats verbs expose for
  // cross-layout comparison.
  const InstanceContent content = SeededContent(109, /*num_queries=*/12);
  const Instance base = BuildShuffled(content, 23, /*shuffle_queries=*/false);
  const std::vector<NetBatch> batches = ChurnBatches(content.queries);
  std::string first;
  for (const uint32_t shards : {1u, 2u, 4u, 7u}) {
    online::ShardedEngine engine(shards);
    ASSERT_TRUE(engine.Initialize(base).ok());
    for (const NetBatch& batch : batches) {
      ASSERT_TRUE(engine.ApplyUpdate(batch.add, batch.remove).ok());
    }
    const std::string bytes = CostBytes(engine.CanonicalTotalCost());
    if (first.empty()) {
      first = bytes;
    } else {
      EXPECT_EQ(bytes, first) << shards << " shards";
    }
  }
}

TEST(DeterminismTest, ShardedEquivalenceAcrossShuffledHistories) {
  // The sharded engine inherits the single engine's determinism contract:
  // shuffled cost-table insertion histories must not leak into the
  // canonical snapshot bytes, at any shard count.
  const InstanceContent content = SeededContent(113, /*num_queries=*/10);
  std::string first;
  for (const uint32_t shards : {2u, 4u}) {
    for (uint64_t perm = 0; perm < 3; ++perm) {
      const Instance base = BuildShuffled(content, perm * 61 + 29,
                                          /*shuffle_queries=*/false);
      online::ShardedEngine engine(shards);
      ASSERT_TRUE(engine.Initialize(base).ok());
      for (const NetBatch& batch : ChurnBatches(content.queries)) {
        ASSERT_TRUE(engine.ApplyUpdate(batch.add, batch.remove).ok());
      }
      const std::string bytes =
          durability::RenderSnapshot(engine.CanonicalState(), 1);
      if (first.empty()) {
        first = bytes;
      } else {
        EXPECT_EQ(bytes, first) << shards << " shards, perm " << perm;
      }
    }
  }
}

TEST(DeterminismTest, ShardedApplyIsRunnerOrderIndependent) {
  // The server hands per-shard jobs to worker threads; whatever order (or
  // interleaving) they run in, the merged state must not change. Drive the
  // same history through the default serial runner and a reversed one.
  const InstanceContent content = SeededContent(127, /*num_queries=*/12);
  const Instance base = BuildShuffled(content, 31, /*shuffle_queries=*/false);
  const online::ShardedEngine::ShardRunner reversed =
      [](std::vector<std::function<void()>>* jobs) {
        for (auto it = jobs->rbegin(); it != jobs->rend(); ++it) {
          if (*it) (*it)();
        }
      };
  online::ShardedEngine forward(4);
  online::ShardedEngine backward(4);
  ASSERT_TRUE(forward.Initialize(base).ok());
  ASSERT_TRUE(backward.Initialize(base).ok());
  for (const NetBatch& batch : ChurnBatches(content.queries)) {
    ASSERT_TRUE(forward.ApplyUpdate(batch.add, batch.remove).ok());
    ASSERT_TRUE(backward.ApplyUpdate(batch.add, batch.remove, reversed).ok());
  }
  EXPECT_EQ(durability::RenderSnapshot(backward.CanonicalState(), 1),
            durability::RenderSnapshot(forward.CanonicalState(), 1));
  EXPECT_EQ(CostBytes(backward.CanonicalTotalCost()),
            CostBytes(forward.CanonicalTotalCost()));
}

TEST(DeterminismTest, ShardedCoalescedBatchMatchesSequentialUpdates) {
  // The serving-path composition: coalesced net batches through a sharded
  // engine must still land on the single sequential engine's bytes.
  const InstanceContent content = SeededContent(83, /*num_queries=*/10);
  const Instance base = BuildShuffled(content, 11, /*shuffle_queries=*/false);
  const std::vector<PropertySet>& qs = content.queries;
  struct Op {
    std::vector<PropertySet> add;
    std::vector<PropertySet> remove;
  };
  const std::vector<Op> ops = {
      {{}, {qs[0]}}, {{}, {qs[2]}}, {{qs[0]}, {}}, {{}, {qs[4]}},
      {{qs[2]}, {}}, {{qs[0]}, {}}, {{qs[7]}, {qs[7]}},
  };

  online::OnlineEngine sequential;
  ASSERT_TRUE(sequential.Initialize(base).ok());
  for (const Op& op : ops) {
    ASSERT_TRUE(sequential.ApplyUpdate(op.add, op.remove).ok());
  }

  online::ShardedEngine batched(4);
  ASSERT_TRUE(batched.Initialize(base).ok());
  server::UpdateCoalescer coalescer;
  for (const Op& op : ops) coalescer.Fold(op.add, op.remove);
  const server::NetUpdate net = coalescer.Take();
  ASSERT_TRUE(batched.ApplyUpdate(net.add, net.remove).ok());

  ASSERT_TRUE(batched.CheckInvariants().ok());
  EXPECT_EQ(batched.NumQueries(), sequential.NumQueries());
  EXPECT_EQ(Canonical(batched.CurrentSolution(), base),
            Canonical(sequential.CurrentSolution(), base));
  EXPECT_EQ(durability::RenderSnapshot(batched.CanonicalState(), 1),
            durability::RenderSnapshot(
                online::CanonicalizeState(sequential.ExportState()), 1));
}

/// Canonical byte rendering of the registry's counters after one solve of
/// `instance` from a zeroed registry. Gauges and histograms are excluded on
/// purpose: they carry wall-clock readings, which are not deterministic.
template <typename SolverT>
std::string SolveCounters(const Instance& instance) {
  obs::MetricsRegistry::Global().ResetAll();
  auto result = SolverT().Solve(instance);
  EXPECT_TRUE(result.ok()) << result.status().message();
  std::string out;
  for (const auto& [name, value] :
       obs::MetricsRegistry::Global().Snap().counters) {
    if (value != 0) out += name + "=" + std::to_string(value) + ";";
  }
  return out;
}

// The bench regression gate (mc3_benchdiff) compares work counters exactly,
// so they must be byte-identical run over run. Under -DMC3_OBS=OFF the
// registry is a no-op and every rendering is empty — trivially equal.
TEST(DeterminismTest, WorkCountersStableAcrossRepeatedSolves) {
  const InstanceContent content = SeededContent(81);
  const Instance instance =
      BuildShuffled(content, 5, /*shuffle_queries=*/false);
  const std::string first = SolveCounters<GeneralSolver>(instance);
  if (obs::kObsEnabled) {
    // This seed is fully solved by preprocessing, so the always-on
    // preprocess counters are the ones guaranteed to be present.
    EXPECT_NE(first.find("preprocess.runs="), std::string::npos) << first;
  }
  for (int rep = 0; rep < 2; ++rep) {
    EXPECT_EQ(SolveCounters<GeneralSolver>(instance), first) << "rep " << rep;
  }
}

TEST(DeterminismTest, WorkCountersStableAcrossShuffledHistories) {
  const InstanceContent content = SeededContent(91);
  std::string first;
  for (uint64_t perm = 0; perm < 4; ++perm) {
    // Same logical instance and query order, shuffled cost-table insertion
    // history: the operation counts must not see the container order.
    const Instance instance = BuildShuffled(content, perm * 29 + 11,
                                            /*shuffle_queries=*/false);
    const std::string counters = SolveCounters<GeneralSolver>(instance);
    if (perm == 0) {
      first = counters;
    } else {
      EXPECT_EQ(counters, first) << "perm " << perm;
    }
  }
}

TEST(DeterminismTest, K2FlowCountersStableAcrossShuffledHistories) {
  RandomInstanceConfig config;
  config.num_queries = 10;
  config.pool = 7;
  config.max_query_length = 2;
  config.zero_probability = 0;
  const Instance base = testing::RandomInstance(config, 101);
  InstanceContent content;
  content.queries = base.queries();
  content.cost_entries = SortedCostEntries(base.costs());
  std::string first;
  for (uint64_t perm = 0; perm < 4; ++perm) {
    const Instance instance = BuildShuffled(content, perm * 43 + 9,
                                            /*shuffle_queries=*/false);
    const std::string counters = SolveCounters<K2ExactSolver>(instance);
    if (perm == 0) {
      first = counters;
    } else {
      EXPECT_EQ(counters, first) << "perm " << perm;
    }
  }
}

}  // namespace
}  // namespace mc3
