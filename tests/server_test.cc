// Serving subsystem tests (src/server/, docs/serving.md): unit coverage of
// the bounded queue, worker pool, update coalescer, admission control and
// wire protocol, plus end-to-end socket tests of the acceptance criteria —
// N concurrent clients produce the same final state as the equivalent
// offline batch, with zero dropped (non-rejected) requests, 429s above the
// admission watermark, and 503s plus a clean join on graceful drain.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/instance.h"
#include "data/query_log.h"
#include "durability/durability.h"
#include "obs/exposition.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "util/float_cmp.h"
#include "online/online_engine.h"
#include "online/sharded_engine.h"
#include "server/bounded_queue.h"
#include "server/coalescer.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/worker_pool.h"

namespace mc3::server {
namespace {

// ---------------------------------------------------------------------------
// Admission control.

TEST(AdmissionTest, AcceptsBelowWatermarkRejectsAtOrAbove) {
  EXPECT_TRUE(AdmitAt(0, 4, 25).accept);
  EXPECT_TRUE(AdmitAt(3, 4, 25).accept);
  EXPECT_FALSE(AdmitAt(4, 4, 25).accept);
  EXPECT_FALSE(AdmitAt(100, 4, 25).accept);
}

TEST(AdmissionTest, RetryHintGrowsWithOverload) {
  const Admission shallow = AdmitAt(4, 4, 25);
  const Admission deep = AdmitAt(40, 4, 25);
  ASSERT_FALSE(shallow.accept);
  ASSERT_FALSE(deep.accept);
  EXPECT_GT(shallow.retry_after_ms, 0);
  EXPECT_GT(deep.retry_after_ms, shallow.retry_after_ms);
}

TEST(AdmissionTest, ZeroWatermarkNeverRejects) {
  EXPECT_TRUE(AdmitAt(1000000, 0, 25).accept);
}

// ---------------------------------------------------------------------------
// BoundedQueue.

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));
  EXPECT_EQ(queue.Depth(), 2u);
}

TEST(BoundedQueueTest, PopReturnsInFifoOrder) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(2));
  auto first = queue.Pop();
  auto second = queue.Pop();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, 1);
  EXPECT_EQ(*second, 2);
}

TEST(BoundedQueueTest, TryPopIfOnlyTakesMatchingHead) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(10));
  auto even = queue.TryPopIf([](const int& v) { return v % 2 == 0; });
  EXPECT_FALSE(even.has_value());  // head is 1 (odd): not popped
  auto odd = queue.TryPopIf([](const int& v) { return v % 2 == 1; });
  ASSERT_TRUE(odd.has_value());
  EXPECT_EQ(*odd, 1);
}

TEST(BoundedQueueTest, CloseDeliversQueuedItemsThenNullopt) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(7));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(8));  // no pushes after close
  auto item = queue.Pop();
  ASSERT_TRUE(item.has_value());  // graceful: queued item still delivered
  EXPECT_EQ(*item, 7);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(BoundedQueueTest, CloseUnblocksWaitingConsumer) {
  BoundedQueue<int> queue(4);
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    EXPECT_FALSE(queue.Pop().has_value());
    done.store(true);
  });
  queue.Close();
  consumer.join();
  EXPECT_TRUE(done.load());
}

// ---------------------------------------------------------------------------
// WorkerPool.

TEST(WorkerPoolTest, RunsPostedTasks) {
  std::atomic<int> ran{0};
  {
    WorkerPool pool(3);
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(pool.Post([&ran] { ran.fetch_add(1); }));
    }
    pool.Shutdown();  // finishes everything queued
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(WorkerPoolTest, PostAfterShutdownIsRefused) {
  WorkerPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Post([] {}));
}

// ---------------------------------------------------------------------------
// UpdateCoalescer.

PropertySet Q(std::initializer_list<PropertyId> ids) {
  return PropertySet::Of(ids);
}

TEST(CoalescerTest, LastOpWinsPerQuery) {
  UpdateCoalescer coalescer;
  coalescer.Add(Q({1}));
  coalescer.Remove(Q({1}));
  coalescer.Add(Q({2}));
  const NetUpdate net = coalescer.Take();
  ASSERT_EQ(net.remove.size(), 1u);
  EXPECT_EQ(net.remove[0], Q({1}));
  ASSERT_EQ(net.add.size(), 1u);
  EXPECT_EQ(net.add[0], Q({2}));
  EXPECT_EQ(net.ops, 3u);
}

TEST(CoalescerTest, EmissionOrderIsFirstTouch) {
  UpdateCoalescer coalescer;
  coalescer.Add(Q({3}));
  coalescer.Add(Q({1}));
  coalescer.Remove(Q({3}));
  coalescer.Add(Q({3}));  // flips back; keeps first-touch position
  coalescer.Add(Q({2}));
  const NetUpdate net = coalescer.Take();
  ASSERT_EQ(net.add.size(), 3u);
  EXPECT_EQ(net.add[0], Q({3}));
  EXPECT_EQ(net.add[1], Q({1}));
  EXPECT_EQ(net.add[2], Q({2}));
  EXPECT_TRUE(net.remove.empty());
}

TEST(CoalescerTest, FoldAppliesRemovesBeforeAdds) {
  // A single request that removes and re-adds the same query must net to
  // an add (ApplyUpdate order: removes first, then adds).
  UpdateCoalescer coalescer;
  coalescer.Fold(/*add=*/{Q({5})}, /*remove=*/{Q({5})});
  const NetUpdate net = coalescer.Take();
  ASSERT_EQ(net.add.size(), 1u);
  EXPECT_TRUE(net.remove.empty());
}

TEST(CoalescerTest, TakeResets) {
  UpdateCoalescer coalescer;
  coalescer.Add(Q({1}));
  (void)coalescer.Take();
  EXPECT_TRUE(coalescer.empty());
  EXPECT_EQ(coalescer.ops(), 0u);
}

// ---------------------------------------------------------------------------
// Protocol.

TEST(ProtocolTest, ParsesEveryOp) {
  for (const char* op :
       {"health", "stats", "solve", "update", "snapshot", "shutdown"}) {
    std::string line = std::string("{\"op\":\"") + op + "\",\"id\":3";
    if (std::string(op) == "update") line += ",\"add\":[[\"a\"]]";
    line += "}";
    auto request = ParseRequest(line);
    ASSERT_TRUE(request.ok()) << op << ": " << request.status().ToString();
    EXPECT_STREQ(OpName(request->op), op);
    EXPECT_EQ(request->id, 3u);
  }
}

TEST(ProtocolTest, ParsesUpdateQueryLists) {
  auto request = ParseRequest(
      R"({"op":"update","id":1,"add":[["a","b"],["c"]],"remove":[["d"]]})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  ASSERT_EQ(request->add.size(), 2u);
  EXPECT_EQ(request->add[0], (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(request->remove.size(), 1u);
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest("[]").ok());                       // not an object
  EXPECT_FALSE(ParseRequest(R"({"id":1})").ok());              // no op
  EXPECT_FALSE(ParseRequest(R"({"op":"frobnicate"})").ok());   // unknown op
  EXPECT_FALSE(ParseRequest(R"({"op":"solve","id":-2})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op":"solve","id":1.5})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op":"update","id":1})").ok());  // empty
  EXPECT_FALSE(ParseRequest(R"({"op":"update","add":[[]]})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op":"update","add":[[""]]})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op":"solve","solution":1})").ok());
}

TEST(ProtocolTest, ErrorResponseCarriesCodeAndRetryHint) {
  const std::string line =
      RenderErrorResponse(9, Request::Op::kUpdate, 429, "busy", 50);
  auto parsed = obs::ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("code")->number, 429);
  EXPECT_EQ(parsed->Find("id")->number, 9);
  EXPECT_EQ(parsed->Find("op")->string, "update");
  EXPECT_EQ(parsed->Find("error")->string, "busy");
  EXPECT_EQ(parsed->Find("retry_after_ms")->number, 50);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // single-line framing
}

// ---------------------------------------------------------------------------
// End-to-end over real sockets.

/// Blocking line-oriented client for the wire protocol.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  void Send(const std::string& line) {
    const std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  }

  /// Reads the next response line ("" on EOF).
  std::string ReadLine() {
    size_t newline;
    while ((newline = buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    std::string line = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    return line;
  }

  /// Send + read one response, parsed.
  obs::JsonValue Call(const std::string& line) {
    Send(line);
    const std::string response = ReadLine();
    auto parsed = obs::ParseJson(response);
    EXPECT_TRUE(parsed.ok()) << response;
    return parsed.ok() ? *parsed : obs::JsonValue{};
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

/// Renders a solution as a sorted list of "&"-joined sorted name strings:
/// id-table-independent, so solutions of engines that interned the same
/// property names in different orders still compare equal.
std::vector<std::string> CanonicalClassifiers(
    const Solution& solution, const std::vector<std::string>& names) {
  std::vector<std::string> rendered;
  rendered.reserve(solution.size());
  for (const PropertySet& classifier : solution.classifiers()) {
    std::vector<std::string> parts;
    for (const PropertyId id : classifier) parts.push_back(names.at(id));
    std::sort(parts.begin(), parts.end());
    std::string joined;
    for (const std::string& part : parts) {
      if (!joined.empty()) joined += "&";
      joined += part;
    }
    rendered.push_back(std::move(joined));
  }
  std::sort(rendered.begin(), rendered.end());
  return rendered;
}

int CodeOf(const obs::JsonValue& response) {
  const obs::JsonValue* code = response.Find("code");
  return code != nullptr && code->is_number() ? static_cast<int>(code->number)
                                              : -1;
}

/// A small base workload whose property universe the tests extend.
Instance BaseInstance() {
  InstanceBuilder builder;
  builder.AddQuery({"red", "shirt"});
  builder.AddQuery({"tv"});
  builder.SetCost({"red"}, 1);
  builder.SetCost({"shirt"}, 2);
  builder.SetCost({"red", "shirt"}, 2.5);
  builder.SetCost({"tv"}, 1.5);
  return std::move(builder).Build();
}

ServerOptions TestOptions() {
  ServerOptions options;
  options.port = 0;  // ephemeral
  options.default_cost = 2;
  options.connection_workers = 8;
  return options;
}

TEST(ServerTest, HealthStatsAndSolveEndpoints) {
  Server server(TestOptions());
  ASSERT_TRUE(server.Start(BaseInstance()).ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  const obs::JsonValue health = client.Call(R"({"op":"health","id":1})");
  EXPECT_EQ(CodeOf(health), 200);
  EXPECT_EQ(health.Find("status")->string, "ok");

  const obs::JsonValue solve =
      client.Call(R"({"op":"solve","id":2,"solution":true})");
  EXPECT_EQ(CodeOf(solve), 200);
  EXPECT_EQ(solve.Find("queries")->number, 2);
  ASSERT_NE(solve.Find("solution"), nullptr);
  EXPECT_TRUE(solve.Find("solution")->is_array());

  const obs::JsonValue stats = client.Call(R"({"op":"stats","id":3})");
  EXPECT_EQ(CodeOf(stats), 200);
  EXPECT_GE(stats.Find("requests")->number, 2);

  server.RequestDrain();
  server.Join();
}

TEST(ServerTest, MalformedLineGets400) {
  Server server(TestOptions());
  ASSERT_TRUE(server.Start(BaseInstance()).ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  const obs::JsonValue response = client.Call("this is not json");
  EXPECT_EQ(CodeOf(response), 400);
  server.RequestDrain();
  server.Join();
  EXPECT_EQ(server.GetStats().malformed, 1u);
}

TEST(ServerTest, UpdateAddsAndRemovesQueries) {
  Server server(TestOptions());
  ASSERT_TRUE(server.Start(BaseInstance()).ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  const obs::JsonValue added = client.Call(
      R"({"op":"update","id":1,"add":[["blue","sofa"]]})");
  ASSERT_EQ(CodeOf(added), 200);
  EXPECT_EQ(added.Find("queries")->number, 3);

  const obs::JsonValue removed = client.Call(
      R"({"op":"update","id":2,"remove":[["blue","sofa"]]})");
  ASSERT_EQ(CodeOf(removed), 200);
  EXPECT_EQ(removed.Find("queries")->number, 2);

  server.RequestDrain();
  server.Join();
}

TEST(ServerTest, UncoverableAddGets400WithoutDefaultCost) {
  ServerOptions options = TestOptions();
  options.default_cost = -1;  // no auto-pricing
  Server server(options);
  ASSERT_TRUE(server.Start(BaseInstance()).ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  const obs::JsonValue response = client.Call(
      R"({"op":"update","id":1,"add":[["never_priced_a","never_priced_b"]]})");
  EXPECT_EQ(CodeOf(response), 400);
  // The engine state is untouched: the failed batch fell back to
  // per-request application, which also failed atomically.
  const obs::JsonValue solve = client.Call(R"({"op":"solve","id":2})");
  EXPECT_EQ(solve.Find("queries")->number, 2);
  server.RequestDrain();
  server.Join();
}

TEST(ServerTest, AdmissionRejectsAboveWatermarkWithRetryHint) {
  ServerOptions options = TestOptions();
  options.engine_workers = 0;  // nothing drains the queue: depth is ours
  options.queue_capacity = 8;
  options.admission_watermark = 2;
  Server server(options);
  ASSERT_TRUE(server.Start(BaseInstance()).ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  // First two updates are admitted (no response yet: no engine worker).
  client.Send(R"({"op":"update","id":1,"add":[["u1"]]})");
  client.Send(R"({"op":"update","id":2,"add":[["u2"]]})");
  // Wait until both are queued (connection handling is asynchronous).
  while (server.QueueDepth() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The next one hits the watermark: immediate 429 with a retry hint.
  const obs::JsonValue rejected =
      client.Call(R"({"op":"update","id":3,"add":[["u3"]]})");
  EXPECT_EQ(CodeOf(rejected), 429);
  ASSERT_NE(rejected.Find("retry_after_ms"), nullptr);
  EXPECT_GT(rejected.Find("retry_after_ms")->number, 0);

  // Draining answers the two queued updates; nothing is lost.
  server.RequestDrain();
  server.Join();
  EXPECT_EQ(CodeOf(obs::ParseJson(client.ReadLine()).value()), 200);
  EXPECT_EQ(CodeOf(obs::ParseJson(client.ReadLine()).value()), 200);
  const ServerStats stats = server.GetStats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(ServerTest, DrainRefusesNewEngineOpsWith503) {
  Server server(TestOptions());
  ASSERT_TRUE(server.Start(BaseInstance()).ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // A first round-trip guarantees the acceptor has handed this connection
  // to a worker before the drain stops accepting (connect alone only means
  // the kernel queued us on the listen backlog).
  EXPECT_EQ(CodeOf(client.Call(R"({"op":"health","id":0})")), 200);
  server.RequestDrain();
  const obs::JsonValue refused =
      client.Call(R"({"op":"update","id":1,"add":[["x"]]})");
  EXPECT_EQ(CodeOf(refused), 503);
  server.Join();
  EXPECT_GE(server.GetStats().refused_draining, 1u);
}

TEST(ServerTest, ShutdownEndpointDrainsAndJoins) {
  Server server(TestOptions());
  ASSERT_TRUE(server.Start(BaseInstance()).ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  const obs::JsonValue ack = client.Call(R"({"op":"shutdown","id":7})");
  EXPECT_EQ(CodeOf(ack), 200);
  EXPECT_EQ(ack.Find("draining")->boolean, true);
  server.Join();  // completes because the endpoint requested the drain
  EXPECT_TRUE(server.draining());
}

TEST(ServerTest, ConcurrentClientsMatchOfflineBatchAndNothingDrops) {
  ServerOptions options = TestOptions();
  options.engine.solver_options.num_threads = 1;
  Server server(options);
  ASSERT_TRUE(server.Start(BaseInstance()).ok());

  // Each client interleaves adds and removes over its own property slice;
  // queries across clients share properties (pfx overlap) so component
  // merges happen across client boundaries too.
  constexpr size_t kClients = 4;
  constexpr size_t kOpsPerClient = 12;
  std::atomic<uint64_t> responses{0};
  std::atomic<uint64_t> non_ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([c, port = server.port(), &responses, &non_ok] {
      TestClient client(port);
      ASSERT_TRUE(client.connected());
      for (size_t i = 0; i < kOpsPerClient; ++i) {
        const std::string mine = "c" + std::to_string(c) + "_" +
                                 std::to_string(i % 3);
        const std::string shared = "shared_" + std::to_string(i % 2);
        std::string line;
        if (i % 4 == 3) {
          // Remove the query added at i-1 (same (c, i%3) name).
          line = R"({"op":"update","id":)" + std::to_string(i) +
                 R"(,"remove":[[")" + "c" + std::to_string(c) + "_" +
                 std::to_string((i - 1) % 3) + R"(","shared_)" +
                 std::to_string((i - 1) % 2) + R"("]]})";
        } else {
          line = R"({"op":"update","id":)" + std::to_string(i) +
                 R"(,"add":[[")" + mine + R"(",")" + shared + R"("]]})";
        }
        const obs::JsonValue response = client.Call(line);
        responses.fetch_add(1);
        if (CodeOf(response) != 200) non_ok.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // Zero dropped: every request of every client was answered 200 (no
  // admission pressure at these depths).
  EXPECT_EQ(responses.load(), kClients * kOpsPerClient);
  EXPECT_EQ(non_ok.load(), 0u);

  server.RequestDrain();
  server.Join();

  // Offline reference: replay the same net operations as single batches on
  // a fresh engine (per client, in the client's order — the final live set
  // is order-independent because each client touches distinct query names).
  online::OnlineEngine reference;
  ASSERT_TRUE(reference.Initialize(BaseInstance()).ok());
  std::vector<std::string> names = BaseInstance().property_names();
  std::unordered_map<std::string, PropertyId> interned;
  for (PropertyId id = 0; id < names.size(); ++id) {
    interned.emplace(names[id], id);
  }
  auto intern = [&](const std::vector<std::string>& query) {
    std::vector<PropertyId> ids;
    for (const std::string& name : query) {
      auto [it, inserted] =
          interned.emplace(name, static_cast<PropertyId>(names.size()));
      if (inserted) names.push_back(name);
      ids.push_back(it->second);
    }
    return PropertySet::FromUnsorted(std::move(ids));
  };
  // Reconstruct each client's final live contribution directly.
  std::vector<PropertySet> add;
  for (size_t c = 0; c < kClients; ++c) {
    UpdateCoalescer coalescer;
    for (size_t i = 0; i < kOpsPerClient; ++i) {
      const std::string mine =
          "c" + std::to_string(c) + "_" + std::to_string(i % 3);
      const std::string shared = "shared_" + std::to_string(i % 2);
      if (i % 4 == 3) {
        coalescer.Remove(intern(
            {"c" + std::to_string(c) + "_" + std::to_string((i - 1) % 3),
             "shared_" + std::to_string((i - 1) % 2)}));
      } else {
        coalescer.Add(intern({mine, shared}));
      }
    }
    const NetUpdate net = coalescer.Take();
    for (const PropertySet& query : net.add) add.push_back(query);
  }
  // Price the new classifiers the way the server does, then apply.
  {
    Instance pricing;
    pricing.set_property_names(names);
    for (const PropertySet& query : add) pricing.AddQuery(query);
    data::CostEstimatorOptions estimator;
    estimator.default_difficulty = 2;
    ASSERT_TRUE(data::EstimateCosts(&pricing, estimator).ok());
    for (const auto& [classifier, cost] :
         SortedCostEntries(pricing.costs())) {
      ASSERT_TRUE(reference.SetCost(classifier, cost).ok());
    }
  }
  ASSERT_TRUE(reference.ApplyUpdate(add, {}).ok());
  reference.set_property_names(names);

  server.WithEngine([&](const online::OnlineEngine& engine) {
    EXPECT_TRUE(engine.CheckInvariants().ok());
    EXPECT_EQ(engine.NumQueries(), reference.NumQueries());
    // Per-component costs are computed identically; the cached totals can
    // only differ by summation order.
    EXPECT_NEAR(engine.TotalCost(), reference.TotalCost(), 1e-9);
    EXPECT_EQ(
        CanonicalClassifiers(engine.CurrentSolution(), engine.property_names()),
        CanonicalClassifiers(reference.CurrentSolution(),
                             reference.property_names()));
  });
}

TEST(ServerTest, CoalescesBurstsIntoFewerBatches) {
  ServerOptions options = TestOptions();
  options.engine_workers = 0;  // queue everything, then drain at once
  Server server(options);
  ASSERT_TRUE(server.Start(BaseInstance()).ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 6; ++i) {
    client.Send(R"({"op":"update","id":)" + std::to_string(i) +
                R"(,"add":[["burst_)" + std::to_string(i) + R"("]]})");
  }
  while (server.QueueDepth() < 6) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.ProcessQueuedNow();
  for (int i = 0; i < 6; ++i) {
    const std::string line = client.ReadLine();
    auto response = obs::ParseJson(line);
    ASSERT_TRUE(response.ok()) << line;
    EXPECT_EQ(CodeOf(*response), 200);
    EXPECT_EQ(response->Find("batch_size")->number, 6);
  }
  const ServerStats stats = server.GetStats();
  EXPECT_EQ(stats.batches, 1u);       // one churn step for six requests
  EXPECT_EQ(stats.coalesced_ops, 6u);
  EXPECT_EQ(stats.max_batch, 6u);
  server.RequestDrain();
  server.Join();
}

// ---------------------------------------------------------------------------
// Durability (docs/durability.md): the checkpoint / wal_stats verbs and
// restartability — a server restarted on the same data dir resumes with
// the state its predecessor acknowledged.

/// Fresh per-test durable data dir, removed on destruction.
struct DurableDir {
  explicit DurableDir(const char* tag)
      : path(::testing::TempDir() + "/mc3_server_durable_" + tag + "_" +
             std::to_string(reinterpret_cast<uintptr_t>(this))) {
    std::filesystem::remove_all(path);
  }
  ~DurableDir() { std::filesystem::remove_all(path); }
  std::string path;
};

ServerOptions DurableOptions(const std::string& data_dir) {
  ServerOptions options = TestOptions();
  options.durability.data_dir = data_dir;
  // Deterministic for tests; the group-commit path is covered by WalTest.
  options.durability.wal.sync =
      durability::WalOptions::SyncPolicy::kImmediate;
  return options;
}

TEST(ServerDurabilityTest, CheckpointVerbRequiresDurability) {
  Server server(TestOptions());  // no data dir
  ASSERT_TRUE(server.Start(BaseInstance()).ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  const obs::JsonValue response =
      client.Call(R"({"op":"checkpoint","id":1})");
  EXPECT_EQ(CodeOf(response), 400);
  const obs::JsonValue stats = client.Call(R"({"op":"wal_stats","id":2})");
  EXPECT_EQ(CodeOf(stats), 200);
  ASSERT_NE(stats.Find("enabled"), nullptr);
  EXPECT_FALSE(stats.Find("enabled")->boolean);
  server.RequestDrain();
  server.Join();
}

TEST(ServerDurabilityTest, UpdatesCarryWalSeqAndStatsReportThem) {
  DurableDir dir("walseq");
  Server server(DurableOptions(dir.path));
  ASSERT_TRUE(server.Start(BaseInstance()).ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  const obs::JsonValue first = client.Call(
      R"({"op":"update","id":1,"add":[["blue","sofa"]]})");
  ASSERT_EQ(CodeOf(first), 200);
  ASSERT_NE(first.Find("wal_seq"), nullptr);
  EXPECT_EQ(first.Find("wal_seq")->number, 1);
  const obs::JsonValue second = client.Call(
      R"({"op":"update","id":2,"remove":[["blue","sofa"]]})");
  ASSERT_EQ(CodeOf(second), 200);
  EXPECT_EQ(second.Find("wal_seq")->number, 2);

  const obs::JsonValue stats = client.Call(R"({"op":"wal_stats","id":3})");
  ASSERT_EQ(CodeOf(stats), 200);
  EXPECT_TRUE(stats.Find("enabled")->boolean);
  EXPECT_EQ(stats.Find("last_seq")->number, 2);
  EXPECT_EQ(stats.Find("records_appended")->number, 2);
  EXPECT_EQ(stats.Find("wal_errors")->number, 0);
  ASSERT_NE(stats.Find("recovery"), nullptr);
  EXPECT_EQ(stats.Find("recovery")->Find("wal_records_replayed")->number, 0);

  const obs::JsonValue checkpoint =
      client.Call(R"({"op":"checkpoint","id":4})");
  ASSERT_EQ(CodeOf(checkpoint), 200);
  EXPECT_EQ(checkpoint.Find("seq")->number, 2);
  EXPECT_GT(checkpoint.Find("bytes")->number, 0);

  server.RequestDrain();
  server.Join();
}

TEST(ServerDurabilityTest, RestartOnSameDataDirResumesAcknowledgedState) {
  DurableDir dir("restart");
  // First life: apply updates (some past a checkpoint), then drain — every
  // acknowledged update is on disk.
  {
    Server server(DurableOptions(dir.path));
    ASSERT_TRUE(server.Start(BaseInstance()).ok());
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_EQ(CodeOf(client.Call(
                  R"({"op":"update","id":1,"add":[["blue","sofa"]]})")),
              200);
    ASSERT_EQ(CodeOf(client.Call(R"({"op":"checkpoint","id":2})")), 200);
    ASSERT_EQ(CodeOf(client.Call(
                  R"({"op":"update","id":3,"add":[["green","lamp"]]})")),
              200);
    ASSERT_EQ(CodeOf(client.Call(
                  R"({"op":"update","id":4,"remove":[["tv"]]})")),
              200);
    server.RequestDrain();
    server.Join();
  }

  // Second life: recovery = snapshot + WAL tail. The resumed engine equals
  // the reference engine that applied the same history directly.
  Server server(DurableOptions(dir.path));
  ASSERT_TRUE(server.Start(BaseInstance()).ok());
  const durability::DurabilityManager* manager = server.durability_manager();
  ASSERT_NE(manager, nullptr);
  EXPECT_TRUE(manager->recovery().snapshot_loaded);
  EXPECT_EQ(manager->recovery().snapshot_seq, 1u);
  EXPECT_EQ(manager->recovery().wal_records_replayed, 2u);

  online::OnlineEngine reference;
  ASSERT_TRUE(reference.Initialize(BaseInstance()).ok());
  {
    // Mirror the server's default-cost pricing for the unknown queries.
    std::vector<std::string> names = reference.property_names();
    names.push_back("blue");
    names.push_back("sofa");
    names.push_back("green");
    names.push_back("lamp");
    reference.set_property_names(names);
    const auto id = [&](const char* name) {
      return static_cast<PropertyId>(
          std::find(names.begin(), names.end(), name) - names.begin());
    };
    Instance added;
    added.set_property_names(names);
    added.AddQuery(PropertySet::Of({id("blue"), id("sofa")}));
    added.AddQuery(PropertySet::Of({id("green"), id("lamp")}));
    data::CostEstimatorOptions estimator;
    estimator.default_difficulty = 2;  // TestOptions().default_cost
    ASSERT_TRUE(data::EstimateCosts(&added, estimator).ok());
    for (const auto& [classifier, cost] :
         SortedCostEntries(added.costs())) {
      if (!IsInfiniteCost(reference.CostOf(classifier))) continue;
      ASSERT_TRUE(reference.SetCost(classifier, cost).ok());
    }
    ASSERT_TRUE(reference
                    .AddQueries({PropertySet::Of({id("blue"), id("sofa")})})
                    .ok());
    ASSERT_TRUE(reference
                    .AddQueries({PropertySet::Of({id("green"), id("lamp")})})
                    .ok());
    ASSERT_TRUE(reference.RemoveQueries({PropertySet::Of({id("tv")})}).ok());
  }

  int queries_after_restart = -1;
  server.WithEngine([&](const online::OnlineEngine& engine) {
    queries_after_restart = static_cast<int>(engine.NumQueries());
    ASSERT_TRUE(engine.CheckInvariants().ok());
    EXPECT_EQ(engine.TotalCost(), reference.TotalCost());
    EXPECT_EQ(
        CanonicalClassifiers(engine.CurrentSolution(),
                             engine.property_names()),
        CanonicalClassifiers(reference.CurrentSolution(),
                             reference.property_names()));
  });
  EXPECT_EQ(queries_after_restart, 3);  // red&shirt, blue&sofa, green&lamp

  // And the resumed server keeps logging past the recovered tail.
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  const obs::JsonValue next = client.Call(
      R"({"op":"update","id":5,"add":[["oak","desk"]]})");
  ASSERT_EQ(CodeOf(next), 200);
  EXPECT_EQ(next.Find("wal_seq")->number, 4);
  server.RequestDrain();
  server.Join();
}

// ---------------------------------------------------------------------------
// Sharded serving (docs/serving.md#sharded-serving).

TEST(ParseShardsTest, AcceptsPositiveIntegersInRange) {
  uint32_t shards = 0;
  EXPECT_TRUE(ParseShards("1", &shards));
  EXPECT_EQ(shards, 1u);
  EXPECT_TRUE(ParseShards("4", &shards));
  EXPECT_EQ(shards, 4u);
  EXPECT_TRUE(ParseShards("1024", &shards));
  EXPECT_EQ(shards, 1024u);
}

TEST(ParseShardsTest, RejectsZeroNegativeGarbageAndOverflow) {
  // `mc3 serve --shards 0` (and friends) must be a usage error, not a
  // silent fallback to some default.
  uint32_t shards = 77;
  for (const char* bad : {"0", "-1", "-4", "", "abc", "4x", "2.5", "1025",
                          "99999999999999999999", " 4"}) {
    EXPECT_FALSE(ParseShards(bad, &shards)) << "'" << bad << "'";
    EXPECT_EQ(shards, 77u) << "'" << bad << "' must leave the value alone";
  }
}

TEST(ServerTest, ShardedServerMatchesSingleShardResponses) {
  // The equivalence contract, end to end over real sockets: the same
  // update script against a 1-shard and a 4-shard server must produce
  // byte-identical solve responses (canonical merge order hides the
  // placement) at every step. Update acks are compared on their
  // state-describing fields; per-batch work counters may legitimately
  // differ when a cross-shard merge migrates queries.
  ServerOptions single_options = TestOptions();
  ServerOptions sharded_options = TestOptions();
  sharded_options.shards = 4;
  Server single(single_options);
  Server sharded(sharded_options);
  ASSERT_TRUE(single.Start(BaseInstance()).ok());
  ASSERT_TRUE(sharded.Start(BaseInstance()).ok());
  TestClient single_client(single.port());
  TestClient sharded_client(sharded.port());
  ASSERT_TRUE(single_client.connected());
  ASSERT_TRUE(sharded_client.connected());

  const std::vector<std::string> updates = {
      R"({"op":"update","id":1,"add":[["a1","a2"],["b1","b2"]]})",
      R"({"op":"update","id":2,"add":[["c1","c2"],["d1","d2"]]})",
      R"({"op":"update","id":3,"remove":[["tv"]]})",
      // Bridge two components: on the sharded server this may merge
      // groups across shards and migrate queries.
      R"({"op":"update","id":4,"add":[["a2","b1"],["c2","d1"]]})",
      R"({"op":"update","id":5,"remove":[["a1","a2"],["c1","c2"]]})",
  };
  int step = 6;
  for (const std::string& update : updates) {
    const obs::JsonValue single_ack = single_client.Call(update);
    const obs::JsonValue sharded_ack = sharded_client.Call(update);
    ASSERT_EQ(CodeOf(single_ack), 200) << update;
    ASSERT_EQ(CodeOf(sharded_ack), 200) << update;
    for (const char* field : {"queries", "components", "cost",
                              "queries_added", "queries_removed"}) {
      ASSERT_NE(sharded_ack.Find(field), nullptr) << field;
      EXPECT_EQ(sharded_ack.Find(field)->number,
                single_ack.Find(field)->number)
          << field << " after " << update;
    }
    // Read-your-writes equivalence after every step, byte for byte.
    const std::string solve = R"({"op":"solve","id":)" +
                              std::to_string(step++) +
                              R"(,"solution":true})";
    single_client.Send(solve);
    sharded_client.Send(solve);
    EXPECT_EQ(sharded_client.ReadLine(), single_client.ReadLine())
        << "after " << update;
  }

  // The stats verb exposes the sharded layout: one entry per shard, and
  // the committed ops spread over them sum to the coalesced total.
  const obs::JsonValue stats = sharded_client.Call(
      R"({"op":"stats","id":99})");
  ASSERT_EQ(CodeOf(stats), 200);
  EXPECT_EQ(stats.Find("engine_shards")->number, 4);
  const obs::JsonValue* shards = stats.Find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_TRUE(shards->is_array());
  ASSERT_EQ(shards->array.size(), 4u);
  double shard_ops = 0;
  for (const obs::JsonValue& entry : shards->array) {
    shard_ops += entry.Find("ops")->number;
  }
  EXPECT_GT(shard_ops, 0);
  const obs::JsonValue single_stats =
      single_client.Call(R"({"op":"stats","id":99})");
  EXPECT_EQ(single_stats.Find("engine_shards")->number, 1);

  single.RequestDrain();
  sharded.RequestDrain();
  single.Join();
  sharded.Join();
}

TEST(ServerTest, ShardedServerSurvivesConcurrentClients) {
  // The shard-worker fan-out path under real concurrency (the TSan job
  // runs this): multiple clients, cross-client property overlap, then a
  // canonical solution identical to a 1-shard offline replay of the final
  // live set.
  ServerOptions options = TestOptions();
  options.shards = 4;
  options.engine.solver_options.num_threads = 1;
  Server server(options);
  ASSERT_TRUE(server.Start(BaseInstance()).ok());

  constexpr size_t kClients = 4;
  constexpr size_t kOpsPerClient = 10;
  std::atomic<uint64_t> non_ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([c, port = server.port(), &non_ok] {
      TestClient client(port);
      ASSERT_TRUE(client.connected());
      for (size_t i = 0; i < kOpsPerClient; ++i) {
        const std::string mine =
            "s" + std::to_string(c) + "_" + std::to_string(i % 3);
        const std::string line = R"({"op":"update","id":)" +
                                 std::to_string(i) + R"(,"add":[[")" + mine +
                                 R"(","shared_)" + std::to_string(i % 2) +
                                 R"("]]})";
        if (CodeOf(client.Call(line)) != 200) non_ok.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(non_ok.load(), 0u);
  server.RequestDrain();
  server.Join();

  const ServerStats stats = server.GetStats();
  ASSERT_EQ(stats.shards.size(), 4u);
  uint64_t shard_ops = 0;
  for (const ShardStats& shard : stats.shards) shard_ops += shard.ops;
  EXPECT_GT(shard_ops, 0u);

  server.WithShardedEngine([&](const online::ShardedEngine& engine) {
    ASSERT_TRUE(engine.CheckInvariants().ok());
  });
}

// ---------------------------------------------------------------------------
// Serving telemetry (docs/observability.md, "Serving telemetry"): enriched
// health/stats, the metrics exposition verb, and sampled trace export.

TEST(ServerTelemetryTest, HealthReportsUptimeAndBuildInfo) {
  Server server(TestOptions());
  ASSERT_TRUE(server.Start(BaseInstance()).ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  const obs::JsonValue health = client.Call(R"({"op":"health","id":1})");
  ASSERT_EQ(CodeOf(health), 200);
  const obs::JsonValue* uptime = health.Find("uptime_seconds");
  ASSERT_NE(uptime, nullptr);
  ASSERT_TRUE(uptime->is_number());
  EXPECT_GE(uptime->number, 0);
  const obs::JsonValue* build = health.Find("build");
  ASSERT_NE(build, nullptr);
  ASSERT_TRUE(build->is_object());
  const obs::JsonValue* compiler = build->Find("compiler");
  ASSERT_NE(compiler, nullptr);
  EXPECT_FALSE(compiler->string.empty());
  ASSERT_NE(build->Find("build_type"), nullptr);
  const obs::JsonValue* obs_mode = build->Find("obs");
  ASSERT_NE(obs_mode, nullptr);
  EXPECT_EQ(obs_mode->boolean, obs::kObsEnabled);

  server.RequestDrain();
  server.Join();
}

TEST(ServerTelemetryTest, StatsReportsQueueHighWatermarkAndStages) {
  Server server(TestOptions());
  ASSERT_TRUE(server.Start(BaseInstance()).ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  ASSERT_EQ(CodeOf(client.Call(
                R"({"op":"update","id":1,"add":[["blue","sofa"]]})")),
            200);
  const obs::JsonValue stats = client.Call(R"({"op":"stats","id":2})");
  ASSERT_EQ(CodeOf(stats), 200);
  const obs::JsonValue* depth_max = stats.Find("queue_depth_max");
  ASSERT_NE(depth_max, nullptr);
  // The update above passed through the engine queue, so the high
  // watermark saw at least one entry.
  EXPECT_GE(depth_max->number, 1);
  ASSERT_NE(stats.Find("uptime_seconds"), nullptr);
  if (obs::kObsEnabled) {
    const obs::JsonValue* stages = stats.Find("stages");
    ASSERT_NE(stages, nullptr);
    ASSERT_TRUE(stages->is_object());
    const obs::JsonValue* queue_wait = stages->Find("queue_wait.update");
    ASSERT_NE(queue_wait, nullptr);
    ASSERT_NE(queue_wait->Find("count"), nullptr);
    EXPECT_GE(queue_wait->Find("count")->number, 1);
  }

  server.RequestDrain();
  server.Join();
}

TEST(ServerTelemetryTest, MetricsVerbAgreesWithStats) {
  Server server(TestOptions());
  ASSERT_TRUE(server.Start(BaseInstance()).ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  ASSERT_EQ(CodeOf(client.Call(
                R"({"op":"update","id":1,"add":[["blue","sofa"]]})")),
            200);
  ASSERT_EQ(CodeOf(client.Call(R"({"op":"solve","id":2})")), 200);
  const obs::JsonValue stats = client.Call(R"({"op":"stats","id":3})");
  ASSERT_EQ(CodeOf(stats), 200);

  const obs::JsonValue metrics = client.Call(R"({"op":"metrics","id":4})");
  ASSERT_EQ(CodeOf(metrics), 200);
  ASSERT_NE(metrics.Find("content_type"), nullptr);
  EXPECT_EQ(metrics.Find("content_type")->string,
            "text/plain; version=0.0.4");
  const obs::JsonValue* body = metrics.Find("body");
  ASSERT_NE(body, nullptr);
  ASSERT_TRUE(body->is_string());

  auto samples = obs::ParseExposition(body->string);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();

  // Counters scraped from the exposition reconcile exactly with the stats
  // verb: by parse time of the metrics request, the server has counted the
  // stats request's own response and the metrics request itself.
  const obs::ParsedSample* requests =
      obs::FindSample(*samples, "mc3_server_requests_total");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->value, stats.Find("requests")->number + 1);
  const obs::ParsedSample* responses =
      obs::FindSample(*samples, "mc3_server_responses_total");
  ASSERT_NE(responses, nullptr);
  EXPECT_EQ(responses->value, stats.Find("responses")->number + 1);

  // Gauges and build info are always exposed, in both build configs.
  EXPECT_NE(obs::FindSample(*samples, "mc3_server_queue_depth_max"), nullptr);
  EXPECT_NE(obs::FindSample(*samples, "mc3_server_uptime_seconds"), nullptr);
  EXPECT_NE(obs::FindSample(*samples, "mc3_server_batches_total"), nullptr);
  const obs::ParsedSample* build = obs::FindSample(*samples, "mc3_build_info");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->value, 1);
  EXPECT_EQ(build->labels.at("obs"), obs::kObsEnabled ? "on" : "off");
  if (obs::kObsEnabled) {
    // Registry-backed per-verb counters and stage histograms.
    const obs::ParsedSample* updates =
        obs::FindSample(*samples, "mc3_server_requests_update_total");
    ASSERT_NE(updates, nullptr);
    EXPECT_GE(updates->value, 1);
    EXPECT_NE(obs::FindSample(*samples,
                              "mc3_server_stage_queue_wait_update_count"),
              nullptr);
  }

  server.RequestDrain();
  server.Join();
}

TEST(ServerTelemetryTest, ShardedMetricsExposePerShardSeries) {
  ServerOptions options = TestOptions();
  options.shards = 2;
  Server server(options);
  ASSERT_TRUE(server.Start(BaseInstance()).ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  ASSERT_EQ(CodeOf(client.Call(
                R"({"op":"update","id":1,"add":[["blue","sofa"]]})")),
            200);
  const obs::JsonValue metrics = client.Call(R"({"op":"metrics","id":2})");
  ASSERT_EQ(CodeOf(metrics), 200);
  auto samples = obs::ParseExposition(metrics.Find("body")->string);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();

  const obs::ParsedSample* shards =
      obs::FindSample(*samples, "mc3_server_engine_shards");
  ASSERT_NE(shards, nullptr);
  EXPECT_EQ(shards->value, 2);
  double shard_ops = 0;
  for (int s = 0; s < 2; ++s) {
    const obs::ParsedSample* ops = obs::FindSample(
        *samples, "mc3_server_shard_ops", {{"shard", std::to_string(s)}});
    ASSERT_NE(ops, nullptr) << "shard " << s;
    shard_ops += ops->value;
    EXPECT_NE(obs::FindSample(*samples, "mc3_server_shard_queue_depth_max",
                              {{"shard", std::to_string(s)}}),
              nullptr);
  }
  EXPECT_GE(shard_ops, 1);  // the update's add landed on some shard

  server.RequestDrain();
  server.Join();
}

// The acceptance-criteria run: a sharded durable server with every request
// sampled produces a trace file in which one update's spans connect parse ->
// queue_wait -> coalesce -> shard_apply -> wal_durable -> serialize with
// flow events across connection, engine/shard and WAL-committer threads.
TEST(ServerTelemetryTest, ShardedDurableRunConnectsSpansAcrossThreads) {
  if (!obs::kObsEnabled) return;  // tracing compiles away under MC3_OBS=OFF
  DurableDir dir("trace");
  ServerOptions options = DurableOptions(dir.path);
  // Group commit so durability lands on the dedicated committer thread.
  options.durability.wal.sync = durability::WalOptions::SyncPolicy::kGrouped;
  options.shards = 2;
  options.trace_sample = 1;
  options.trace_out_dir = dir.path + "/traces";
  Server server(options);
  ASSERT_TRUE(server.Start(BaseInstance()).ok());
  const std::string trace_path = server.trace_file_path();
  ASSERT_FALSE(trace_path.empty());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  const obs::JsonValue updated = client.Call(
      R"({"op":"update","id":1,"add":[["blue","sofa"]]})");
  ASSERT_EQ(CodeOf(updated), 200);
  // With tracing on, every response echoes its request's trace id.
  const obs::JsonValue* echoed = updated.Find("trace_id");
  ASSERT_NE(echoed, nullptr);
  const uint64_t trace_id = static_cast<uint64_t>(echoed->number);
  ASSERT_GT(trace_id, 0u);
  const obs::JsonValue solved = client.Call(R"({"op":"solve","id":2})");
  ASSERT_EQ(CodeOf(solved), 200);
  ASSERT_NE(solved.Find("trace_id"), nullptr);
  EXPECT_NE(static_cast<uint64_t>(solved.Find("trace_id")->number), trace_id);

  server.RequestDrain();
  server.Join();  // writes the trace file after durability is closed

  std::ifstream in(trace_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << trace_path;
  std::stringstream raw;
  raw << in.rdbuf();
  auto doc = obs::ParseJson(raw.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // Gather the update's spans (X events tagged with its trace id), the
  // thread-name metadata, and the flow chain for the id.
  std::set<std::string> span_names;
  std::set<double> span_tids;
  std::map<double, std::string> thread_names;
  int flow_starts = 0, flow_steps = 0, flow_finishes = 0;
  std::set<double> flow_tids;
  for (const obs::JsonValue& event : events->array) {
    const obs::JsonValue* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") {
      thread_names[event.Find("tid")->number] =
          event.Find("args")->Find("name")->string;
      continue;
    }
    if (ph->string == "X") {
      const obs::JsonValue* args = event.Find("args");
      if (args == nullptr) continue;
      const obs::JsonValue* ids = args->Find("trace_ids");
      if (ids == nullptr) continue;
      for (const obs::JsonValue& id : ids->array) {
        if (static_cast<uint64_t>(id.number) != trace_id) continue;
        span_names.insert(event.Find("name")->string);
        span_tids.insert(event.Find("tid")->number);
      }
      continue;
    }
    if (ph->string == "s" || ph->string == "t" || ph->string == "f") {
      if (static_cast<uint64_t>(event.Find("id")->number) != trace_id)
        continue;
      flow_tids.insert(event.Find("tid")->number);
      if (ph->string == "s") ++flow_starts;
      if (ph->string == "t") ++flow_steps;
      if (ph->string == "f") {
        ++flow_finishes;
        ASSERT_NE(event.Find("bp"), nullptr);
        EXPECT_EQ(event.Find("bp")->string, "e");
      }
    }
  }

  // Every pipeline stage produced a span for this request.
  for (const char* stage : {"parse", "queue_wait", "coalesce", "shard_apply",
                            "wal_durable", "serialize"}) {
    EXPECT_EQ(span_names.count(stage), 1u) << stage;
  }
  // The journey crossed at least three threads, and the flow chain is
  // well-formed: one start, one finish, steps in between, spanning the
  // same threads the spans ran on.
  EXPECT_GE(span_tids.size(), 3u);
  EXPECT_EQ(flow_starts, 1);
  EXPECT_EQ(flow_finishes, 1);
  EXPECT_GE(flow_steps, 1);
  EXPECT_GE(flow_tids.size(), 3u);

  // Thread display names cover the three thread types the request crossed.
  std::set<std::string> named;
  for (const double tid : span_tids) {
    auto it = thread_names.find(tid);
    ASSERT_NE(it, thread_names.end());
    named.insert(it->second);
  }
  EXPECT_EQ(named.count("conn"), 1u);
  EXPECT_EQ(named.count("wal-committer"), 1u);
  bool saw_engine_side = false;
  for (const std::string& name : named) {
    if (name == "engine-worker" || name.rfind("shard-", 0) == 0) {
      saw_engine_side = true;
    }
  }
  EXPECT_TRUE(saw_engine_side);
}

TEST(ServerTelemetryTest, TracingOffKeepsResponsesFreeOfTraceIds) {
  Server server(TestOptions());  // trace_sample defaults to 0: tracing off
  ASSERT_TRUE(server.Start(BaseInstance()).ok());
  EXPECT_TRUE(server.trace_file_path().empty());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  const obs::JsonValue updated = client.Call(
      R"({"op":"update","id":1,"add":[["blue","sofa"]]})");
  ASSERT_EQ(CodeOf(updated), 200);
  EXPECT_EQ(updated.Find("trace_id"), nullptr);
  server.RequestDrain();
  server.Join();
}

}  // namespace
}  // namespace mc3::server
