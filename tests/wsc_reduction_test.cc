#include "core/wsc_reduction.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_solver.h"
#include "setcover/greedy.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace mc3 {
namespace {

using testing::PS;
using testing::RandomInstance;
using testing::RandomInstanceConfig;

/// The Figure 2 instance: P = {x,y,z,v}, Q = {xyz, yzv}, all relevant
/// classifiers priced at 1.
Instance Figure2Instance() {
  Instance inst;
  inst.AddQuery(PS({0, 1, 2}));
  inst.AddQuery(PS({1, 2, 3}));
  for (const PropertySet& q :
       {PS({0, 1, 2}), PS({1, 2, 3})}) {
    ForEachNonEmptySubset(q, [&](const PropertySet& c) {
      inst.SetCost(c, 1);
    });
  }
  return inst;
}

TEST(WscReductionTest, Figure2ElementCount) {
  const WscReduction red = ReduceToWsc(Figure2Instance());
  // Elements: one per (query, property) occurrence = 3 + 3.
  EXPECT_EQ(red.wsc.num_elements, 6);
}

TEST(WscReductionTest, Figure2SetCount) {
  const WscReduction red = ReduceToWsc(Figure2Instance());
  // C_Q: subsets of xyz (7) + subsets of yzv (7) - shared {y},{z},{yz} (3).
  EXPECT_EQ(red.wsc.sets.size(), 11u);
}

TEST(WscReductionTest, SharedClassifierCoversBothQueries) {
  const WscReduction red = ReduceToWsc(Figure2Instance());
  // The set for YZ covers 4 elements: y and z in both queries.
  bool found = false;
  for (size_t i = 0; i < red.wsc.sets.size(); ++i) {
    if (red.set_to_classifier[i] == PS({1, 2})) {
      EXPECT_EQ(red.wsc.sets[i].elements.size(), 4u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(WscReductionTest, FullQueryClassifierCoversOnlyItsQuery) {
  const WscReduction red = ReduceToWsc(Figure2Instance());
  for (size_t i = 0; i < red.wsc.sets.size(); ++i) {
    if (red.set_to_classifier[i] == PS({0, 1, 2})) {
      EXPECT_EQ(red.wsc.sets[i].elements.size(), 3u);
    }
  }
}

TEST(WscReductionTest, ClassifierNotSubsetOfQueryCoversNothingThere) {
  // xyv is not a classifier (not a subset of any query) and must not appear.
  const WscReduction red = ReduceToWsc(Figure2Instance());
  for (const PropertySet& c : red.set_to_classifier) {
    EXPECT_TRUE(c.IsSubsetOf(PS({0, 1, 2})) || c.IsSubsetOf(PS({1, 2, 3})));
  }
}

TEST(WscReductionTest, UnpricedClassifiersExcluded) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 1);
  inst.SetCost(PS({1}), 1);
  // The pair {0,1} is unpriced.
  const WscReduction red = ReduceToWsc(inst);
  EXPECT_EQ(red.wsc.sets.size(), 2u);
}

TEST(WscReductionTest, CostsCarryOver) {
  const Instance inst = testing::PaperExample();
  const WscReduction red = ReduceToWsc(inst);
  for (size_t i = 0; i < red.wsc.sets.size(); ++i) {
    EXPECT_EQ(red.wsc.sets[i].cost, inst.CostOf(red.set_to_classifier[i]));
  }
}

TEST(WscReductionTest, ValidatesStructurally) {
  const WscReduction red = ReduceToWsc(testing::PaperExample());
  EXPECT_TRUE(setcover::ValidateWsc(red.wsc).ok());
}

TEST(WscReductionTest, FrequencyBoundedByTwoPowKMinusOne) {
  // Section 5.2: f = 2^(k-1) when all classifiers are priced.
  RandomInstanceConfig config;
  config.num_queries = 5;
  config.pool = 8;
  config.max_query_length = 4;
  config.priced_probability = 1.0;
  for (int seed = 0; seed < 10; ++seed) {
    const Instance inst = RandomInstance(config, seed * 7 + 2);
    const WscReduction red = ReduceToWsc(inst);
    const double k = static_cast<double>(inst.MaxQueryLength());
    EXPECT_LE(setcover::WscFrequency(red.wsc), std::pow(2.0, k - 1) + 1e-9);
  }
}

TEST(WscReductionTest, DegreeBoundedByLengthTimesIncidence) {
  RandomInstanceConfig config;
  config.num_queries = 6;
  config.pool = 6;
  config.max_query_length = 3;
  for (int seed = 0; seed < 10; ++seed) {
    const Instance inst = RandomInstance(config, seed * 13 + 5);
    const WscReduction red = ReduceToWsc(inst);
    const auto k = static_cast<int32_t>(inst.MaxQueryLength());
    const auto incidence = static_cast<int32_t>(inst.Incidence());
    EXPECT_LE(setcover::WscDegree(red.wsc), k * incidence);
  }
}

// Cost-preserving equivalence: solving the reduction optimally gives the
// MC3 optimum (the reduction's headline property).
class WscEquivalenceTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, WscEquivalenceTest, ::testing::Range(0, 20));

TEST_P(WscEquivalenceTest, OptimaMatch) {
  RandomInstanceConfig config;
  config.num_queries = 4;
  config.pool = 6;
  config.max_query_length = 3;
  const Instance inst = RandomInstance(config, GetParam() * 53 + 29);
  const WscReduction red = ReduceToWsc(inst);

  // Brute-force the WSC optimum.
  double wsc_opt = std::numeric_limits<double>::infinity();
  const size_t m = red.wsc.sets.size();
  ASSERT_LE(m, 22u);
  for (uint64_t mask = 0; mask < (1ull << m); ++mask) {
    std::vector<bool> covered(red.wsc.num_elements, false);
    double cost = 0;
    for (size_t i = 0; i < m; ++i) {
      if (mask & (1ull << i)) {
        cost += red.wsc.sets[i].cost;
        for (auto e : red.wsc.sets[i].elements) covered[e] = true;
      }
    }
    if (cost >= wsc_opt) continue;
    bool all = true;
    for (bool b : covered) all = all && b;
    if (all) wsc_opt = cost;
  }

  auto exact = ExactSolver().Solve(inst);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(wsc_opt, exact->cost, 1e-9);
}

TEST_P(WscEquivalenceTest, WscSolutionsMapToCovers) {
  RandomInstanceConfig config;
  config.num_queries = 5;
  config.pool = 7;
  config.max_query_length = 3;
  const Instance inst = RandomInstance(config, GetParam() * 67 + 41);
  const WscReduction red = ReduceToWsc(inst);
  auto greedy = setcover::SolveGreedy(red.wsc);
  ASSERT_TRUE(greedy.ok());
  const Solution mapped = WscSolutionToMc3(red, *greedy);
  EXPECT_TRUE(Covers(inst, mapped));
  EXPECT_NEAR(mapped.TotalCost(inst), greedy->cost, 1e-9);
}

}  // namespace
}  // namespace mc3
