#include "core/partial_cover.h"

#include <gtest/gtest.h>

#include "core/general_solver.h"
#include "tests/test_util.h"

namespace mc3 {
namespace {

using testing::PS;
using testing::RandomInstance;
using testing::RandomInstanceConfig;

BudgetedInstance SmallInput(Cost budget) {
  BudgetedInstance input;
  input.instance.AddQuery(PS({0, 1}));  // weight 5
  input.instance.AddQuery(PS({2}));     // weight 3
  input.instance.AddQuery(PS({3, 4}));  // weight 4
  input.instance.SetCost(PS({0}), 2);
  input.instance.SetCost(PS({1}), 2);
  input.instance.SetCost(PS({0, 1}), 3);
  input.instance.SetCost(PS({2}), 1);
  input.instance.SetCost(PS({3}), 5);
  input.instance.SetCost(PS({4}), 5);
  input.query_weights = {5, 3, 4};
  input.budget = budget;
  return input;
}

TEST(BudgetedValidationTest, RejectsWeightSizeMismatch) {
  BudgetedInstance input = SmallInput(10);
  input.query_weights.pop_back();
  EXPECT_FALSE(SolveBudgetedGreedy(input).ok());
  EXPECT_FALSE(SolveBudgetedExact(input).ok());
}

TEST(BudgetedValidationTest, RejectsNonPositiveWeight) {
  BudgetedInstance input = SmallInput(10);
  input.query_weights[0] = 0;
  EXPECT_FALSE(SolveBudgetedGreedy(input).ok());
}

TEST(BudgetedValidationTest, RejectsNegativeBudget) {
  BudgetedInstance input = SmallInput(-1);
  EXPECT_FALSE(SolveBudgetedGreedy(input).ok());
}

TEST(BudgetedGreedyTest, ZeroBudgetCoversNothingCostly) {
  const BudgetedInstance input = SmallInput(0);
  auto result = SolveBudgetedGreedy(input);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->spent, 0);
  EXPECT_EQ(result->covered_weight, 0);
}

TEST(BudgetedGreedyTest, SmallBudgetTakesBestDensity) {
  // Budget 1: only query {2} (cost 1, weight 3, density 3) fits.
  const BudgetedInstance input = SmallInput(1);
  auto result = SolveBudgetedGreedy(input);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->covered_weight, 3);
  EXPECT_EQ(result->spent, 1);
  EXPECT_EQ(result->covered_queries, (std::vector<size_t>{1}));
}

TEST(BudgetedGreedyTest, LargeBudgetCoversEverything) {
  const BudgetedInstance input = SmallInput(100);
  auto result = SolveBudgetedGreedy(input);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->covered_weight, 12);
  EXPECT_TRUE(Covers(input.instance, result->solution));
}

TEST(BudgetedGreedyTest, SpendNeverExceedsBudget) {
  for (Cost budget : {0.0, 1.0, 3.0, 4.0, 8.0, 14.0}) {
    const BudgetedInstance input = SmallInput(budget);
    auto result = SolveBudgetedGreedy(input);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->spent, budget + 1e-9);
    EXPECT_DOUBLE_EQ(result->spent,
                     result->solution.TotalCost(input.instance));
  }
}

TEST(BudgetedGreedyTest, CoverageMonotoneInBudget) {
  double previous = -1;
  for (Cost budget : {0.0, 1.0, 2.0, 4.0, 6.0, 10.0, 14.0}) {
    const BudgetedInstance input = SmallInput(budget);
    auto result = SolveBudgetedGreedy(input);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->covered_weight, previous);
    previous = result->covered_weight;
  }
}

TEST(BudgetedGreedyTest, UncoverableQueriesIgnoredGracefully) {
  BudgetedInstance input;
  input.instance.AddQuery(PS({0, 1}));  // property 1 unpriced
  input.instance.AddQuery(PS({2}));
  input.instance.SetCost(PS({0}), 1);
  input.instance.SetCost(PS({2}), 1);
  input.query_weights = {10, 1};
  input.budget = 100;
  auto result = SolveBudgetedGreedy(input);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->covered_weight, 1);  // only the coverable query
}

TEST(BudgetedExactTest, MatchesHandComputedOptimum) {
  // Budget 4: options — {2}(1) + pair cover of {0,1} via XY(3): weight
  // 3 + 5 = 8, spend 4. Exact must find it.
  const BudgetedInstance input = SmallInput(4);
  auto result = SolveBudgetedExact(input);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->covered_weight, 8);
  EXPECT_LE(result->spent, 4);
}

TEST(BudgetedExactTest, GuardsReject) {
  BudgetedInstance input = SmallInput(4);
  BudgetedExactLimits limits;
  limits.max_queries = 1;
  EXPECT_FALSE(SolveBudgetedExact(input, limits).ok());
}

class BudgetedSweepTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, BudgetedSweepTest, ::testing::Range(0, 15));

TEST_P(BudgetedSweepTest, GreedyFeasibleAndNeverBeatsExact) {
  RandomInstanceConfig config;
  config.num_queries = 5;
  config.pool = 6;
  config.max_query_length = 3;
  BudgetedInstance input;
  input.instance = RandomInstance(config, GetParam() * 97 + 41);
  Rng rng(GetParam());
  for (size_t i = 0; i < input.instance.NumQueries(); ++i) {
    input.query_weights.push_back(1 + double(rng.UniformInt(0, 9)));
  }
  input.budget = static_cast<Cost>(rng.UniformInt(0, 40));

  auto greedy = SolveBudgetedGreedy(input);
  auto exact = SolveBudgetedExact(input);
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_LE(greedy->spent, input.budget + 1e-9);
  EXPECT_LE(exact->spent, input.budget + 1e-9);
  EXPECT_LE(greedy->covered_weight, exact->covered_weight + 1e-9);
  // Every query reported covered is actually covered.
  for (size_t qi : greedy->covered_queries) {
    Instance single;
    single.AddQuery(input.instance.queries()[qi]);
    EXPECT_TRUE(Covers(single, greedy->solution));
  }
}

TEST_P(BudgetedSweepTest, FullBudgetMatchesUnbudgetedCoverage) {
  RandomInstanceConfig config;
  config.num_queries = 6;
  config.pool = 7;
  config.max_query_length = 3;
  BudgetedInstance input;
  input.instance = RandomInstance(config, GetParam() * 131 + 17);
  input.query_weights.assign(input.instance.NumQueries(), 1.0);
  // Budget = full-cover cost: greedy must cover everything.
  auto full = GeneralSolver().Solve(input.instance);
  ASSERT_TRUE(full.ok());
  input.budget = full->cost + 1;
  auto result = SolveBudgetedGreedy(input);
  ASSERT_TRUE(result.ok());
  // Not guaranteed in theory (greedy is a heuristic), but with budget
  // exceeding a known full cover the density greedy always finishes here;
  // assert at least that it never claims more than everything and that its
  // report is consistent.
  EXPECT_LE(result->covered_weight,
            static_cast<double>(input.instance.NumQueries()));
  EXPECT_EQ(result->covered_queries.size(),
            static_cast<size_t>(result->covered_weight));
}

}  // namespace
}  // namespace mc3
