// Degenerate-input behavior across the public API: empty instances, single
// properties, large ids, and zero-cost-everything workloads.
#include <gtest/gtest.h>

#include "core/mc3.h"
#include "tests/test_util.h"

namespace mc3 {
namespace {

using testing::PS;

TEST(EmptyInstanceTest, AllSolversReturnEmptySolutions) {
  const Instance empty;
  auto k2 = K2ExactSolver().Solve(empty);
  auto general = GeneralSolver().Solve(empty);
  auto sf = ShortFirstSolver().Solve(empty);
  auto po = PropertyOrientedSolver().Solve(empty);
  auto qo = QueryOrientedSolver().Solve(empty);
  auto lg = LocalGreedySolver().Solve(empty);
  auto exact = ExactSolver().Solve(empty);
  for (const auto* r : {&k2, &general, &sf, &po, &qo, &lg, &exact}) {
    ASSERT_TRUE(r->ok());
    EXPECT_EQ((*r)->cost, 0);
    EXPECT_TRUE((*r)->solution.empty());
  }
}

TEST(EmptyInstanceTest, PreprocessIsTrivial) {
  auto pre = Preprocess(Instance{});
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(pre->forced_cost, 0);
  EXPECT_TRUE(pre->components.empty());
}

TEST(EdgeCaseTest, SinglePropertyUniverse) {
  Instance inst;
  inst.AddQuery(PS({0}));
  inst.SetCost(PS({0}), 3);
  for (auto solve : {+[](const Instance& i) { return K2ExactSolver().Solve(i); },
                     +[](const Instance& i) { return GeneralSolver().Solve(i); },
                     +[](const Instance& i) { return ShortFirstSolver().Solve(i); }}) {
    auto result = solve(inst);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->cost, 3);
  }
}

TEST(EdgeCaseTest, LargePropertyIds) {
  Instance inst;
  const PropertyId big = 4'000'000'000u;
  inst.AddQuery(PS({big, big - 7}));
  inst.SetCost(PS({big}), 1);
  inst.SetCost(PS({big - 7}), 2);
  auto result = GeneralSolver().Solve(inst);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->cost, 3);
  auto k2 = K2ExactSolver().Solve(inst);
  ASSERT_TRUE(k2.ok());
  EXPECT_EQ(k2->cost, 3);
}

TEST(EdgeCaseTest, AllZeroCosts) {
  Instance inst;
  inst.AddQuery(PS({0, 1, 2}));
  inst.AddQuery(PS({1, 3}));
  for (const PropertySet& q : inst.queries()) {
    ForEachNonEmptySubset(q, [&](const PropertySet& c) {
      inst.SetCost(c, 0);
    });
  }
  auto result = GeneralSolver().Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 0);
  EXPECT_TRUE(Covers(inst, result->solution));
}

TEST(EdgeCaseTest, IdenticalCostsEverywhereAreDeterministic) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.AddQuery(PS({1, 2}));
  for (const PropertySet& q : inst.queries()) {
    ForEachNonEmptySubset(q, [&](const PropertySet& c) {
      inst.SetCost(c, 2);
    });
  }
  auto a = GeneralSolver().Solve(inst);
  auto b = GeneralSolver().Solve(inst);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->solution.Sorted(), b->solution.Sorted());
}

TEST(EdgeCaseTest, ManyDuplicatePropertiesInOneQuery) {
  // FromUnsorted collapses duplicates; the query is really {5}.
  Instance inst;
  inst.AddQuery(PropertySet::FromUnsorted({5, 5, 5, 5}));
  inst.SetCost(PS({5}), 1);
  auto result = K2ExactSolver().Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 1);
}

TEST(EdgeCaseTest, FractionalCosts) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 0.25);
  inst.SetCost(PS({1}), 0.5);
  inst.SetCost(PS({0, 1}), 0.7);
  auto result = K2ExactSolver().Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost, 0.7);
}

TEST(EdgeCaseTest, BudgetedOnEmptyInstance) {
  BudgetedInstance input;
  input.budget = 10;
  auto result = SolveBudgetedGreedy(input);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->covered_weight, 0);
}

TEST(EdgeCaseTest, SharedLabelingOnEmptyInstance) {
  auto result = SolveSharedLabelingGreedy(Instance{}, SharedLabelingModel{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 0);
}

}  // namespace
}  // namespace mc3
