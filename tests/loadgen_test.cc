// mc3_loadgen tests: report rendering/validation round-trip plus an
// end-to-end run against an in-process server::Server — the same pairing
// the CI serve-smoke job exercises over separate processes
// (scripts/serve_smoke.sh).
#include <string>

#include <gtest/gtest.h>

#include "core/instance.h"
#include "mc3_loadgen/loadgen.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "server/server.h"

namespace mc3::loadgen {
namespace {

LoadReport SampleReport() {
  LoadReport report;
  report.options.port = 4242;
  report.options.operations = 8;
  report.sent = 8;
  report.responses = 8;
  report.ok = 7;
  report.rejected = 1;
  report.wall_seconds = 0.5;
  report.achieved_qps = 16;
  report.latency.count = 8;
  report.latency.mean = 0.001;
  report.latency.p50 = 0.001;
  report.latency.p95 = 0.002;
  report.latency.p99 = 0.002;
  report.latency.max = 0.002;
  report.server_stats_valid = true;
  report.server_batches = 3;
  report.server_coalesced_ops = 7;
  report.server_max_batch = 4;
  report.drained = true;
  return report;
}

TEST(LoadReportTest, RenderValidatesAgainstSchema) {
  const std::string json = RenderLoadReport(SampleReport());
  EXPECT_TRUE(ValidateLoadReportJson(json).ok())
      << ValidateLoadReportJson(json).ToString();
}

TEST(LoadReportTest, RenderedFieldsSurvive) {
  const std::string json = RenderLoadReport(SampleReport());
  auto parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("schema")->string, kLoadReportSchema);
  const obs::JsonValue* client = parsed->Find("client");
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->Find("sent")->number, 8);
  EXPECT_EQ(client->Find("rejected")->number, 1);
  const obs::JsonValue* server = parsed->Find("server");
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->Find("max_batch")->number, 4);
}

TEST(LoadReportTest, ValidationRejectsWrongSchemaAndMissingMembers) {
  EXPECT_FALSE(ValidateLoadReportJson("{}").ok());
  EXPECT_FALSE(ValidateLoadReportJson("not json").ok());
  EXPECT_FALSE(
      ValidateLoadReportJson(R"({"schema":"mc3.load_report/0"})").ok());
  // Drop one required member from a valid document: must fail.
  std::string json = RenderLoadReport(SampleReport());
  const size_t at = json.find("\"achieved_qps\"");
  ASSERT_NE(at, std::string::npos);
  json.replace(at, std::string("\"achieved_qps\"").size(), "\"renamed\"");
  EXPECT_FALSE(ValidateLoadReportJson(json).ok());
}

TEST(LoadGenTest, EndToEndAgainstInProcessServer) {
  server::ServerOptions server_options;
  server_options.port = 0;
  server_options.default_cost = 2;  // price the synthetic p* pool on the fly
  server_options.engine.solver_options.num_threads = 1;
  server::Server server(server_options);
  InstanceBuilder builder;
  builder.AddQuery({"seed_a", "seed_b"});
  builder.SetCost({"seed_a"}, 1);
  builder.SetCost({"seed_b"}, 1);
  ASSERT_TRUE(server.Start(std::move(builder).Build()).ok());

  LoadGenOptions options;
  options.port = server.port();
  options.operations = 48;
  options.qps = 2000;
  options.connections = 3;
  options.burst = 16;
  options.seed = 7;
  options.shutdown_after = true;

  auto report = RunLoadGen(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // `sent` counts every request on the wire: 48 workload operations plus
  // the end-of-run stats scrape and the shutdown request.
  EXPECT_EQ(report->sent, 50u);
  EXPECT_EQ(report->lost, 0u);  // graceful drain: nothing admitted is dropped
  EXPECT_GT(report->ok, 0u);
  EXPECT_TRUE(report->server_stats_valid);
  EXPECT_GE(report->server_requests, 48u);
  EXPECT_TRUE(report->drained);
  server.Join();  // the loadgen's shutdown request initiated the drain

  const std::string json = RenderLoadReport(*report);
  EXPECT_TRUE(ValidateLoadReportJson(json).ok())
      << ValidateLoadReportJson(json).ToString();
}

TEST(LoadGenTest, FailsWithoutPort) {
  LoadGenOptions options;
  options.port = 0;
  EXPECT_FALSE(RunLoadGen(options).ok());
}

// ---------------------------------------------------------------------------
// Telemetry scraping and the end-of-run counter reconcile.

TEST(LoadReportTest, TelemetryBlockRendersAndValidates) {
  LoadReport report = SampleReport();
  report.options.scrape_interval_seconds = 0.05;
  report.client_updates_sent = 6;
  report.client_solves_sent = 1;
  report.client_updates_acked = 6;
  ScrapeSample sample;
  sample.at_seconds = 0.1;
  sample.requests = 9;
  sample.responses = 9;
  report.scrapes.push_back(sample);
  report.final_exposition = "mc3_server_requests_total 9\n";
  report.reconcile.checked = true;

  const std::string json = RenderLoadReport(report);
  EXPECT_TRUE(ValidateLoadReportJson(json).ok())
      << ValidateLoadReportJson(json).ToString();
  auto parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok());
  const obs::JsonValue* telemetry = parsed->Find("telemetry");
  ASSERT_NE(telemetry, nullptr);
  EXPECT_EQ(telemetry->Find("updates_sent")->number, 6);
  const obs::JsonValue* scrapes = telemetry->Find("scrapes");
  ASSERT_NE(scrapes, nullptr);
  ASSERT_EQ(scrapes->array.size(), 1u);
  EXPECT_EQ(scrapes->array[0].Find("requests")->number, 9);
  const obs::JsonValue* reconcile = telemetry->Find("reconcile");
  ASSERT_NE(reconcile, nullptr);
  EXPECT_TRUE(reconcile->Find("ok")->boolean);
}

TEST(LoadGenTest, ScrapingEmbedsSeriesAndReconcilesCounters) {
  // The reconcile compares registry-backed per-verb counters against
  // client-side accounting; the registry is process-global, so clear the
  // residue of the earlier in-process server runs (a real deployment
  // scrapes a fresh server process, as scripts/serve_smoke.sh does).
  obs::MetricsRegistry::Global().ResetAll();
  server::ServerOptions server_options;
  server_options.port = 0;
  server_options.default_cost = 2;
  server_options.engine.solver_options.num_threads = 1;
  server::Server server(server_options);
  InstanceBuilder builder;
  builder.AddQuery({"seed_a", "seed_b"});
  builder.SetCost({"seed_a"}, 1);
  builder.SetCost({"seed_b"}, 1);
  ASSERT_TRUE(server.Start(std::move(builder).Build()).ok());

  LoadGenOptions options;
  options.port = server.port();
  options.operations = 48;
  options.qps = 2000;
  options.connections = 3;
  options.burst = 16;
  options.seed = 7;
  options.shutdown_after = true;
  options.scrape_interval_seconds = 0.01;

  auto report = RunLoadGen(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->lost, 0u);
  server.Join();

  // Client-side per-verb accounting covers the whole workload.
  EXPECT_EQ(report->client_updates_sent + report->client_solves_sent, 48u);
  EXPECT_GT(report->client_updates_acked, 0u);

  // The scraper captured at least the final settled sample, and the
  // end-of-run cross-check against server counters found no drift.
  ASSERT_FALSE(report->scrapes.empty());
  EXPECT_FALSE(report->final_exposition.empty());
  ASSERT_TRUE(report->reconcile.checked);
  EXPECT_TRUE(report->reconcile.error.empty()) << report->reconcile.error;
  const ScrapeSample& last = report->scrapes.back();
  EXPECT_GE(last.requests, 48.0);  // counters are always exposed
  EXPECT_GE(last.responses, last.requests - 1);

  // The embedded telemetry survives the render/validate round trip.
  const std::string json = RenderLoadReport(*report);
  EXPECT_TRUE(ValidateLoadReportJson(json).ok())
      << ValidateLoadReportJson(json).ToString();
  auto parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed->Find("telemetry"), nullptr);
  EXPECT_TRUE(parsed->Find("telemetry")->Find("reconcile")->Find("ok")
                  ->boolean);
}

}  // namespace
}  // namespace mc3::loadgen
