// mc3_loadgen tests: report rendering/validation round-trip plus an
// end-to-end run against an in-process server::Server — the same pairing
// the CI serve-smoke job exercises over separate processes
// (scripts/serve_smoke.sh).
#include <string>

#include <gtest/gtest.h>

#include "core/instance.h"
#include "mc3_loadgen/loadgen.h"
#include "obs/json.h"
#include "server/server.h"

namespace mc3::loadgen {
namespace {

LoadReport SampleReport() {
  LoadReport report;
  report.options.port = 4242;
  report.options.operations = 8;
  report.sent = 8;
  report.responses = 8;
  report.ok = 7;
  report.rejected = 1;
  report.wall_seconds = 0.5;
  report.achieved_qps = 16;
  report.latency.count = 8;
  report.latency.mean = 0.001;
  report.latency.p50 = 0.001;
  report.latency.p95 = 0.002;
  report.latency.p99 = 0.002;
  report.latency.max = 0.002;
  report.server_stats_valid = true;
  report.server_batches = 3;
  report.server_coalesced_ops = 7;
  report.server_max_batch = 4;
  report.drained = true;
  return report;
}

TEST(LoadReportTest, RenderValidatesAgainstSchema) {
  const std::string json = RenderLoadReport(SampleReport());
  EXPECT_TRUE(ValidateLoadReportJson(json).ok())
      << ValidateLoadReportJson(json).ToString();
}

TEST(LoadReportTest, RenderedFieldsSurvive) {
  const std::string json = RenderLoadReport(SampleReport());
  auto parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("schema")->string, kLoadReportSchema);
  const obs::JsonValue* client = parsed->Find("client");
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->Find("sent")->number, 8);
  EXPECT_EQ(client->Find("rejected")->number, 1);
  const obs::JsonValue* server = parsed->Find("server");
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->Find("max_batch")->number, 4);
}

TEST(LoadReportTest, ValidationRejectsWrongSchemaAndMissingMembers) {
  EXPECT_FALSE(ValidateLoadReportJson("{}").ok());
  EXPECT_FALSE(ValidateLoadReportJson("not json").ok());
  EXPECT_FALSE(
      ValidateLoadReportJson(R"({"schema":"mc3.load_report/0"})").ok());
  // Drop one required member from a valid document: must fail.
  std::string json = RenderLoadReport(SampleReport());
  const size_t at = json.find("\"achieved_qps\"");
  ASSERT_NE(at, std::string::npos);
  json.replace(at, std::string("\"achieved_qps\"").size(), "\"renamed\"");
  EXPECT_FALSE(ValidateLoadReportJson(json).ok());
}

TEST(LoadGenTest, EndToEndAgainstInProcessServer) {
  server::ServerOptions server_options;
  server_options.port = 0;
  server_options.default_cost = 2;  // price the synthetic p* pool on the fly
  server_options.engine.solver_options.num_threads = 1;
  server::Server server(server_options);
  InstanceBuilder builder;
  builder.AddQuery({"seed_a", "seed_b"});
  builder.SetCost({"seed_a"}, 1);
  builder.SetCost({"seed_b"}, 1);
  ASSERT_TRUE(server.Start(std::move(builder).Build()).ok());

  LoadGenOptions options;
  options.port = server.port();
  options.operations = 48;
  options.qps = 2000;
  options.connections = 3;
  options.burst = 16;
  options.seed = 7;
  options.shutdown_after = true;

  auto report = RunLoadGen(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // `sent` counts every request on the wire: 48 workload operations plus
  // the end-of-run stats scrape and the shutdown request.
  EXPECT_EQ(report->sent, 50u);
  EXPECT_EQ(report->lost, 0u);  // graceful drain: nothing admitted is dropped
  EXPECT_GT(report->ok, 0u);
  EXPECT_TRUE(report->server_stats_valid);
  EXPECT_GE(report->server_requests, 48u);
  EXPECT_TRUE(report->drained);
  server.Join();  // the loadgen's shutdown request initiated the drain

  const std::string json = RenderLoadReport(*report);
  EXPECT_TRUE(ValidateLoadReportJson(json).ok())
      << ValidateLoadReportJson(json).ToString();
}

TEST(LoadGenTest, FailsWithoutPort) {
  LoadGenOptions options;
  options.port = 0;
  EXPECT_FALSE(RunLoadGen(options).ok());
}

}  // namespace
}  // namespace mc3::loadgen
