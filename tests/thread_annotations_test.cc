// Tests for util/thread_annotations.h and the annotated wrappers in
// util/sync.h. Two jobs:
//
//  1. Prove the MC3_* macros are a clean no-op on compilers without clang's
//     thread-safety attributes: this file uses every macro in ordinary code
//     and static_asserts MC3_TSA_ENABLED == 0 under GCC, so a macro that
//     stopped expanding to nothing would fail this TU at compile time.
//  2. Exercise the runtime behavior of util::Mutex / MutexLock / UniqueLock
//     / CondVar — the annotations must not change what the wrappers do.
#include "util/thread_annotations.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace mc3 {
namespace {

#if !defined(__clang__)
static_assert(MC3_TSA_ENABLED == 0,
              "thread_annotations.h must be a no-op outside clang");
#endif

// A type using every annotation macro. Compiling it under GCC proves each
// macro expands to nothing an ordinary C++ declaration cannot carry.
class MC3_CAPABILITY("mutex") FakeLock {
 public:
  void Acquire() MC3_ACQUIRE() {}
  void Release() MC3_RELEASE() {}
  bool TryAcquire() MC3_TRY_ACQUIRE(true) { return true; }
};

class MC3_SCOPED_CAPABILITY FakeScoped {
 public:
  explicit FakeScoped(FakeLock& lock) MC3_ACQUIRE(lock) : lock_(lock) {
    lock_.Acquire();
  }
  ~FakeScoped() MC3_RELEASE() { lock_.Release(); }

 private:
  FakeLock& lock_;
};

class Annotated {
 public:
  int value() const MC3_REQUIRES(lock_) { return value_; }
  void Bump() MC3_EXCLUDES(lock_) {
    FakeScoped scoped(lock_);
    ++value_;
  }
  FakeLock& lock() MC3_RETURN_CAPABILITY(lock_) { return lock_; }
  int UncheckedValue() const MC3_NO_THREAD_SAFETY_ANALYSIS { return value_; }

 private:
  FakeLock lock_;
  int value_ MC3_GUARDED_BY(lock_) = 0;
  int* slot_ MC3_PT_GUARDED_BY(lock_) = nullptr;
};

TEST(ThreadAnnotations, MacrosAreInertOutsideClang) {
  Annotated a;
  a.Bump();
  FakeScoped scoped(a.lock());
  EXPECT_EQ(a.value(), 1);
  EXPECT_EQ(a.UncheckedValue(), 1);
}

TEST(Sync, MutexSatisfiesLockable) {
  util::Mutex mu;
  mu.lock();
  EXPECT_FALSE(mu.try_lock());  // non-recursive, already held
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Sync, MutexLockExcludesConcurrentCriticalSections) {
  util::Mutex mu;
  int counter = 0;  // every access below is under mu
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        util::MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  util::MutexLock lock(mu);
  EXPECT_EQ(counter, 4000);
}

TEST(Sync, UniqueLockRelocksAndReleasesOnce) {
  util::Mutex mu;
  {
    util::UniqueLock lock(mu);
    lock.Unlock();
    EXPECT_TRUE(mu.try_lock());  // genuinely released
    mu.unlock();
    lock.Lock();
    EXPECT_FALSE(mu.try_lock());  // genuinely re-held
  }  // destructor releases the re-acquired lock exactly once
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Sync, UniqueLockDestructorSkipsReleaseWhenUnlocked) {
  util::Mutex mu;
  {
    util::UniqueLock lock(mu);
    lock.Unlock();
  }  // destructor must not unlock a mutex the scope no longer holds
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Sync, CondVarWaitSeesNotifiedPredicate) {
  util::Mutex mu;
  util::CondVar cv;
  bool ready = false;  // guarded by mu
  std::thread producer([&] {
    util::MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    util::MutexLock lock(mu);
    cv.Wait(mu, [&] { return ready; });
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(Sync, CondVarWaitForTimesOutAndSucceeds) {
  util::Mutex mu;
  util::CondVar cv;
  bool ready = false;  // guarded by mu
  {
    util::MutexLock lock(mu);
    EXPECT_FALSE(cv.WaitFor(mu, std::chrono::milliseconds(5),
                            [&] { return ready; }));
  }
  std::thread producer([&] {
    util::MutexLock lock(mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    util::MutexLock lock(mu);
    EXPECT_TRUE(cv.WaitFor(mu, std::chrono::seconds(30),
                           [&] { return ready; }));
  }
  producer.join();
}

}  // namespace
}  // namespace mc3
