#include "core/hardness.h"

#include <gtest/gtest.h>

#include "core/exact_solver.h"
#include "core/general_solver.h"
#include "util/rng.h"

namespace mc3 {
namespace {

/// Brute-force minimum set cover cardinality.
int32_t BruteForceScOpt(const SetCoverInstance& sc) {
  const size_t m = sc.sets.size();
  int32_t best = -1;
  for (uint32_t mask = 0; mask < (1u << m); ++mask) {
    std::vector<bool> covered(sc.num_elements, false);
    int32_t count = 0;
    for (size_t i = 0; i < m; ++i) {
      if (mask & (1u << i)) {
        ++count;
        for (int32_t e : sc.sets[i]) covered[e] = true;
      }
    }
    bool all = true;
    for (bool b : covered) all = all && b;
    if (all && (best < 0 || count < best)) best = count;
  }
  return best;
}

bool ScCovers(const SetCoverInstance& sc, const std::vector<int32_t>& sets) {
  std::vector<bool> covered(sc.num_elements, false);
  for (int32_t s : sets) {
    for (int32_t e : sc.sets[s]) covered[e] = true;
  }
  for (bool b : covered) {
    if (!b) return false;
  }
  return true;
}

SetCoverInstance RandomSc(uint64_t seed) {
  Rng rng(seed);
  SetCoverInstance sc;
  sc.num_elements = 2 + static_cast<int32_t>(rng.UniformInt(0, 4));
  const int m = 2 + static_cast<int>(rng.UniformInt(0, 4));
  sc.sets.resize(m);
  // Every element goes into >= 2 sets (the f > 1 regime of Theorem 5.1).
  for (int32_t e = 0; e < sc.num_elements; ++e) {
    const auto a = rng.UniformInt(0, m - 1);
    uint64_t b = rng.UniformInt(0, m - 1);
    if (b == a) b = (b + 1) % m;
    sc.sets[a].push_back(e);
    sc.sets[b].push_back(e);
    for (int s = 0; s < m; ++s) {
      if (s != static_cast<int>(a) && s != static_cast<int>(b) &&
          rng.Bernoulli(0.3)) {
        sc.sets[s].push_back(e);
      }
    }
  }
  return sc;
}

TEST(Theorem51Test, BuildsExpectedStructure) {
  // Element 0 in sets {0, 1}; element 1 in sets {1, 2}.
  SetCoverInstance sc;
  sc.num_elements = 2;
  sc.sets = {{0}, {0, 1}, {1}};
  auto red = ReduceSetCoverToMc3(sc);
  ASSERT_TRUE(red.ok());
  EXPECT_EQ(red->instance.NumQueries(), 2u);
  // Every query contains the shared property e and has length f(element)+1.
  for (const PropertySet& q : red->instance.queries()) {
    EXPECT_TRUE(q.Contains(red->e_property));
    EXPECT_EQ(q.size(), 3u);
  }
  // Pair {s0, s1} costs 0; pairs {s_i, e} cost 1.
  EXPECT_EQ(red->instance.CostOf(PropertySet::Of({0, 1})), 0);
  EXPECT_EQ(red->instance.CostOf(
                PropertySet::Of({0, red->e_property})), 1);
}

TEST(Theorem51Test, RejectsUncoverableElement) {
  SetCoverInstance sc;
  sc.num_elements = 2;
  sc.sets = {{0}};
  auto red = ReduceSetCoverToMc3(sc);
  EXPECT_FALSE(red.ok());
}

TEST(Theorem51Test, MergesDuplicateElements) {
  SetCoverInstance sc;
  sc.num_elements = 3;
  sc.sets = {{0, 1, 2}, {0, 1}};  // elements 0 and 1 have equal membership
  auto red = ReduceSetCoverToMc3(sc);
  ASSERT_TRUE(red.ok());
  EXPECT_EQ(red->instance.NumQueries(), 2u);
}

class Theorem51EquivalenceTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, Theorem51EquivalenceTest,
                         ::testing::Range(0, 20));

TEST_P(Theorem51EquivalenceTest, OptimaAndSolutionsCorrespond) {
  const SetCoverInstance sc = RandomSc(GetParam() * 107 + 3);
  const int32_t sc_opt = BruteForceScOpt(sc);
  ASSERT_GE(sc_opt, 0);

  auto red = ReduceSetCoverToMc3(sc);
  ASSERT_TRUE(red.ok());
  ASSERT_TRUE(red->instance.Validate().ok());

  auto exact = ExactSolver().Solve(red->instance);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  // Cost preservation (the heart of the approximation-preserving proof).
  EXPECT_DOUBLE_EQ(exact->cost, static_cast<double>(sc_opt));

  // The extracted SC solution covers and has matching cardinality.
  const auto sets = ExtractSetCoverSolution(*red, exact->solution);
  EXPECT_TRUE(ScCovers(sc, sets));
  EXPECT_LE(static_cast<double>(sets.size()), exact->cost + 1e-9);
}

TEST_P(Theorem51EquivalenceTest, ApproximateSolutionsMapToCovers) {
  const SetCoverInstance sc = RandomSc(GetParam() * 211 + 9);
  auto red = ReduceSetCoverToMc3(sc);
  ASSERT_TRUE(red.ok());
  auto approx = GeneralSolver().Solve(red->instance);
  ASSERT_TRUE(approx.ok());
  const auto sets = ExtractSetCoverSolution(*red, approx->solution);
  EXPECT_TRUE(ScCovers(sc, sets));
}

TEST(Theorem52Test, SingleQueryConstruction) {
  SetCoverInstance sc;
  sc.num_elements = 4;
  sc.sets = {{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  auto inst = ReduceSetCoverToSingleQueryMc3(sc);
  ASSERT_TRUE(inst.ok());
  EXPECT_EQ(inst->NumQueries(), 1u);
  EXPECT_EQ(inst->queries()[0].size(), 4u);
  EXPECT_EQ(inst->costs().size(), 4u);
  auto exact = ExactSolver().Solve(*inst);
  ASSERT_TRUE(exact.ok());
  // Min cover of {0,1,2,3} by the four pair-sets is 2.
  EXPECT_DOUBLE_EQ(exact->cost, 2);
}

TEST(Theorem52Test, MatchesBruteForceOnRandomInstances) {
  for (int seed = 0; seed < 10; ++seed) {
    const SetCoverInstance sc = RandomSc(seed * 401 + 13);
    const int32_t sc_opt = BruteForceScOpt(sc);
    auto inst = ReduceSetCoverToSingleQueryMc3(sc);
    ASSERT_TRUE(inst.ok());
    auto exact = ExactSolver().Solve(*inst);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    EXPECT_DOUBLE_EQ(exact->cost, static_cast<double>(sc_opt));
  }
}

TEST(Theorem52Test, RejectsUncoverableElement) {
  SetCoverInstance sc;
  sc.num_elements = 2;
  sc.sets = {{0}};
  auto inst = ReduceSetCoverToSingleQueryMc3(sc);
  EXPECT_FALSE(inst.ok());
}

}  // namespace
}  // namespace mc3
