// Differential testing of PropertySet against a std::set<PropertyId>
// reference model, over randomized operation sequences.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/property_set.h"
#include "util/rng.h"

namespace mc3 {
namespace {

std::vector<PropertyId> RandomIds(Rng* rng, size_t max_size,
                                  PropertyId max_id) {
  std::vector<PropertyId> ids;
  const size_t count = rng->UniformInt(0, max_size);
  for (size_t i = 0; i < count; ++i) {
    ids.push_back(static_cast<PropertyId>(rng->UniformInt(0, max_id)));
  }
  return ids;
}

std::set<PropertyId> AsModel(const std::vector<PropertyId>& ids) {
  return {ids.begin(), ids.end()};
}

std::vector<PropertyId> AsVector(const std::set<PropertyId>& model) {
  return {model.begin(), model.end()};
}

class PropertySetFuzzTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, PropertySetFuzzTest, ::testing::Range(0, 40));

TEST_P(PropertySetFuzzTest, MatchesReferenceModel) {
  Rng rng(GetParam() * 7919 + 11);
  for (int round = 0; round < 50; ++round) {
    const auto raw_a = RandomIds(&rng, 8, 12);
    const auto raw_b = RandomIds(&rng, 8, 12);
    const PropertySet a = PropertySet::FromUnsorted(raw_a);
    const PropertySet b = PropertySet::FromUnsorted(raw_b);
    const auto model_a = AsModel(raw_a);
    const auto model_b = AsModel(raw_b);

    // Construction canonicalizes.
    EXPECT_EQ(a.ids(), AsVector(model_a));
    EXPECT_EQ(a.size(), model_a.size());
    EXPECT_EQ(a.empty(), model_a.empty());

    // Membership.
    for (PropertyId p = 0; p <= 12; ++p) {
      EXPECT_EQ(a.Contains(p), model_a.count(p) > 0) << p;
    }

    // Subset / intersection predicates.
    EXPECT_EQ(a.IsSubsetOf(b),
              std::includes(model_b.begin(), model_b.end(), model_a.begin(),
                            model_a.end()));
    bool intersects = false;
    for (PropertyId p : model_a) intersects |= model_b.count(p) > 0;
    EXPECT_EQ(a.Intersects(b), intersects);

    // Set algebra.
    std::set<PropertyId> model_union = model_a;
    model_union.insert(model_b.begin(), model_b.end());
    EXPECT_EQ(a.UnionWith(b).ids(), AsVector(model_union));

    std::set<PropertyId> model_inter;
    for (PropertyId p : model_a) {
      if (model_b.count(p)) model_inter.insert(p);
    }
    EXPECT_EQ(a.IntersectWith(b).ids(), AsVector(model_inter));

    std::set<PropertyId> model_minus = model_a;
    for (PropertyId p : model_b) model_minus.erase(p);
    EXPECT_EQ(a.Minus(b).ids(), AsVector(model_minus));

    // Plus.
    const auto extra = static_cast<PropertyId>(rng.UniformInt(0, 12));
    std::set<PropertyId> model_plus = model_a;
    model_plus.insert(extra);
    EXPECT_EQ(a.Plus(extra).ids(), AsVector(model_plus));

    // Equality and hashing consistency.
    const PropertySet a_again = PropertySet::FromUnsorted(AsVector(model_a));
    EXPECT_EQ(a, a_again);
    EXPECT_EQ(a.Hash(), a_again.Hash());
    if (model_a != model_b) {
      EXPECT_NE(a, b);
    } else {
      EXPECT_EQ(a, b);
    }

    // Probe assignment mirrors FromSorted.
    PropertySet probe;
    const auto sorted = AsVector(model_a);
    probe.AssignSortedForProbe(sorted.data(), sorted.size());
    EXPECT_EQ(probe, a);
    EXPECT_EQ(probe.Hash(), a.Hash());
  }
}

TEST_P(PropertySetFuzzTest, AlgebraIdentities) {
  Rng rng(GetParam() * 104729 + 3);
  const PropertySet a = PropertySet::FromUnsorted(RandomIds(&rng, 6, 15));
  const PropertySet b = PropertySet::FromUnsorted(RandomIds(&rng, 6, 15));
  const PropertySet c = PropertySet::FromUnsorted(RandomIds(&rng, 6, 15));

  // Commutativity / associativity of union.
  EXPECT_EQ(a.UnionWith(b), b.UnionWith(a));
  EXPECT_EQ(a.UnionWith(b).UnionWith(c), a.UnionWith(b.UnionWith(c)));
  // Absorption and difference identities.
  EXPECT_EQ(a.UnionWith(a), a);
  EXPECT_EQ(a.IntersectWith(a), a);
  EXPECT_EQ(a.Minus(a), PropertySet());
  EXPECT_EQ(a.Minus(b).UnionWith(a.IntersectWith(b)), a);
  // Subset relations.
  EXPECT_TRUE(a.IntersectWith(b).IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a.UnionWith(b)));
  EXPECT_EQ(a.Intersects(b), !a.IntersectWith(b).empty());
}

}  // namespace
}  // namespace mc3
