#include "core/preprocess.h"

#include <gtest/gtest.h>

#include "core/exact_solver.h"
#include "core/general_solver.h"
#include "tests/test_util.h"

namespace mc3 {
namespace {

using testing::PS;
using testing::RandomInstance;
using testing::RandomInstanceConfig;

TEST(PreprocessTest, SingletonQueryForcesItsClassifier) {
  Instance inst;
  inst.AddQuery(PS({0}));
  inst.SetCost(PS({0}), 4);
  auto pre = Preprocess(inst);
  ASSERT_TRUE(pre.ok());
  EXPECT_TRUE(pre->forced.Contains(PS({0})));
  EXPECT_EQ(pre->forced_cost, 4);
  EXPECT_EQ(pre->stats.singleton_queries_selected, 1u);
  EXPECT_TRUE(pre->components.empty());  // the only query is covered
  EXPECT_EQ(pre->stats.queries_covered, 1u);
}

TEST(PreprocessTest, ZeroWeightClassifiersSelected) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 0);
  inst.SetCost(PS({1}), 0);
  inst.SetCost(PS({0, 1}), 5);
  auto pre = Preprocess(inst);
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(pre->forced_cost, 0);
  EXPECT_EQ(pre->stats.zero_weight_selected, 2u);
  EXPECT_TRUE(pre->components.empty());  // X + Y covers xy for free
}

TEST(PreprocessTest, InfeasibleSingletonQuery) {
  Instance inst;
  inst.AddQuery(PS({0}));
  // Its classifier is unpriced.
  auto pre = Preprocess(inst);
  EXPECT_FALSE(pre.ok());
  EXPECT_EQ(pre.status().code(), StatusCode::kInfeasible);
}

TEST(PreprocessTest, InfeasibleLongQuery) {
  Instance inst;
  inst.AddQuery(PS({0, 1, 2}));
  inst.SetCost(PS({0}), 1);
  inst.SetCost(PS({1}), 1);
  auto pre = Preprocess(inst);
  EXPECT_EQ(pre.status().code(), StatusCode::kInfeasible);
}

TEST(PreprocessTest, PartitionSplitsDisjointQueries) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.AddQuery(PS({2, 3}));
  inst.AddQuery(PS({1, 4}));
  for (PropertyId p = 0; p <= 4; ++p) inst.SetCost(PS({p}), 5);
  // Price the pairs too, so no property has a unique candidate (otherwise
  // step 3's forced selection covers everything before partitioning).
  inst.SetCost(PS({0, 1}), 7);
  inst.SetCost(PS({2, 3}), 7);
  inst.SetCost(PS({1, 4}), 7);
  auto pre = Preprocess(inst);
  ASSERT_TRUE(pre.ok());
  // {0,1} and {1,4} share property 1 -> one component; {2,3} another.
  EXPECT_EQ(pre->stats.num_components, 2u);
  ASSERT_EQ(pre->components.size(), 2u);
  const size_t total_queries = pre->components[0].NumQueries() +
                               pre->components[1].NumQueries();
  EXPECT_EQ(total_queries, 3u);
}

TEST(PreprocessTest, PartitionDisabledEmitsSingleComponent) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.AddQuery(PS({2, 3}));
  for (PropertyId p = 0; p <= 3; ++p) inst.SetCost(PS({p}), 5);
  inst.SetCost(PS({0, 1}), 7);
  inst.SetCost(PS({2, 3}), 7);
  PreprocessOptions options;
  options.step2_partition = false;
  auto pre = Preprocess(inst, options);
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(pre->components.size(), 1u);
  EXPECT_EQ(pre->components[0].NumQueries(), 2u);
}

TEST(PreprocessTest, Step3RemovesDominatedClassifier) {
  // W(X) = W(Y) = 1, W(XY) = 3: XY is dominated (Observation 3.3).
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 1);
  inst.SetCost(PS({1}), 1);
  inst.SetCost(PS({0, 1}), 3);
  auto pre = Preprocess(inst);
  ASSERT_TRUE(pre.ok());
  EXPECT_GE(pre->stats.classifiers_removed_step3, 1u);
  // After removal each property has a unique candidate -> forced selection
  // covers the query outright.
  EXPECT_TRUE(pre->forced.Contains(PS({0})));
  EXPECT_TRUE(pre->forced.Contains(PS({1})));
  EXPECT_EQ(pre->forced_cost, 2);
  EXPECT_TRUE(pre->components.empty());
}

TEST(PreprocessTest, Step3KeepsCheaperConjunction) {
  // W(XY) = 1 < W(X) + W(Y): the conjunction survives.
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 1);
  inst.SetCost(PS({1}), 1);
  inst.SetCost(PS({0, 1}), 1);
  PreprocessOptions options;
  options.step4_k2_singleton_prune = false;  // isolate step 3
  auto pre = Preprocess(inst, options);
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(pre->stats.classifiers_removed_step3, 0u);
  ASSERT_EQ(pre->components.size(), 1u);
  EXPECT_NE(pre->components[0].CostOf(PS({0, 1})), kInfiniteCost);
}

TEST(PreprocessTest, Step3UsesRecordedReplacements) {
  // XY is removed (X+Y cheaper); when examining XYZ, the decomposition
  // {XY, Z} must be priced via XY's replacement (X+Y), so XYZ at cost 4 is
  // removed too (X+Y+Z = 3 <= 4).
  Instance inst;
  inst.AddQuery(PS({0, 1, 2}));
  inst.SetCost(PS({0}), 1);
  inst.SetCost(PS({1}), 1);
  inst.SetCost(PS({2}), 1);
  inst.SetCost(PS({0, 1}), 5);
  inst.SetCost(PS({0, 1, 2}), 4);
  auto pre = Preprocess(inst);
  ASSERT_TRUE(pre.ok());
  EXPECT_GE(pre->stats.classifiers_removed_step3, 2u);
  EXPECT_EQ(pre->forced_cost, 3);  // the three singletons, forced
}

TEST(PreprocessTest, Step4PrunesExpensiveSingleton) {
  // X costs 10; queries xy and xz have pair classifiers at 3 + 3 <= 10, so
  // Observation 3.4 selects both pairs and drops X.
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.AddQuery(PS({0, 2}));
  inst.SetCost(PS({0}), 10);
  inst.SetCost(PS({1}), 4);
  inst.SetCost(PS({2}), 4);
  inst.SetCost(PS({0, 1}), 3);
  inst.SetCost(PS({0, 2}), 3);
  auto pre = Preprocess(inst);
  ASSERT_TRUE(pre.ok());
  // Step 4 chains: dropping one singleton makes the pair selections free,
  // which can trigger the condition for further singletons (line 13 of
  // Algorithm 1) — here both Z (or Y) and X end up removed.
  EXPECT_GE(pre->stats.singletons_removed_step4, 1u);
  EXPECT_TRUE(pre->forced.Contains(PS({0, 1})));
  EXPECT_TRUE(pre->forced.Contains(PS({0, 2})));
  EXPECT_EQ(pre->forced_cost, 6);
  EXPECT_TRUE(pre->components.empty());
}

TEST(PreprocessTest, Step4SkippedWhenLongQueriesRemain) {
  // The length-3 query must survive step 3 (two cover options for
  // properties 1 and 2), so step 4's k = 2 precondition fails.
  Instance inst;
  inst.AddQuery(PS({0, 1, 2}));
  inst.AddQuery(PS({0, 3}));
  for (PropertyId p = 0; p <= 3; ++p) inst.SetCost(PS({p}), 2);
  inst.SetCost(PS({1, 2}), 3);
  inst.SetCost(PS({0, 3}), 1);
  auto pre = Preprocess(inst);
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(pre->stats.singletons_removed_step4, 0u);
  // And a long query indeed remains in the residual.
  size_t max_len = 0;
  for (const Instance& comp : pre->components) {
    for (const PropertySet& q : comp.queries()) {
      max_len = std::max(max_len, q.size());
    }
  }
  EXPECT_EQ(max_len, 3u);
}

TEST(PreprocessTest, ResidualKeepsSelectedAtCostZero) {
  // Singleton query {0} forces X; the residual query {0,1} should see X at
  // cost 0.
  Instance inst;
  inst.AddQuery(PS({0}));
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 3);
  inst.SetCost(PS({1}), 7);
  inst.SetCost(PS({0, 1}), 2);
  PreprocessOptions options;
  options.step3_decompositions = false;
  options.step4_k2_singleton_prune = false;
  auto pre = Preprocess(inst, options);
  ASSERT_TRUE(pre.ok());
  ASSERT_EQ(pre->components.size(), 1u);
  EXPECT_EQ(pre->components[0].CostOf(PS({0})), 0);
  EXPECT_EQ(pre->components[0].CostOf(PS({1})), 7);
}

TEST(PreprocessTest, PaperExampleForcedSelections) {
  const Instance inst = testing::PaperExample();
  auto pre = Preprocess(inst);
  ASSERT_TRUE(pre.ok());
  // Preprocessing must preserve optimality: forced cost plus an optimal
  // solve of the residual equals 7 (verified end-to-end in solver tests);
  // here we check it never overspends.
  EXPECT_LE(pre->forced_cost, 7);
}

TEST(PreprocessTest, StatsCountRemainingClassifiers) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 2);
  inst.SetCost(PS({1}), 2);
  inst.SetCost(PS({0, 1}), 1);
  PreprocessOptions options;
  options.step4_k2_singleton_prune = false;
  auto pre = Preprocess(inst, options);
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(pre->stats.remaining_queries, 1u);
  EXPECT_EQ(pre->stats.remaining_classifiers, 3u);
}

// Property-based: preprocessing preserves the optimal cost.
class PreprocessOptimalityTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, PreprocessOptimalityTest,
                         ::testing::Range(0, 40));

TEST_P(PreprocessOptimalityTest, ForcedPlusResidualOptimumEqualsOptimum) {
  RandomInstanceConfig config;
  config.num_queries = 5;
  config.pool = 6;
  config.max_query_length = 3;
  const Instance inst = RandomInstance(config, GetParam() * 101 + 13);
  const ExactSolver exact;

  auto whole = exact.Solve(inst);
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();

  auto pre = Preprocess(inst);
  ASSERT_TRUE(pre.ok());
  Cost preprocessed_total = pre->forced_cost;
  for (const Instance& comp : pre->components) {
    auto comp_result = exact.Solve(comp);
    ASSERT_TRUE(comp_result.ok()) << comp_result.status().ToString();
    preprocessed_total += comp_result->cost;
  }
  EXPECT_DOUBLE_EQ(preprocessed_total, whole->cost);
}

TEST_P(PreprocessOptimalityTest, EveryQueryCoveredOrInExactlyOneComponent) {
  RandomInstanceConfig config;
  config.num_queries = 7;
  config.pool = 9;
  config.max_query_length = 4;
  const Instance inst = RandomInstance(config, GetParam() * 7 + 3);
  auto pre = Preprocess(inst);
  ASSERT_TRUE(pre.ok());
  size_t residual_queries = 0;
  for (const Instance& comp : pre->components) {
    residual_queries += comp.NumQueries();
    EXPECT_TRUE(comp.Validate().ok());
    EXPECT_TRUE(comp.IsFeasible());
  }
  size_t covered = 0;
  for (const PropertySet& q : inst.queries()) {
    Instance single;
    single.AddQuery(q);
    if (Covers(single, pre->forced)) ++covered;
  }
  // Queries covered by forced selections do not appear in components; the
  // rest appear exactly once.
  EXPECT_EQ(covered, pre->stats.queries_covered);
  EXPECT_EQ(residual_queries + covered, inst.NumQueries());
}

}  // namespace
}  // namespace mc3
