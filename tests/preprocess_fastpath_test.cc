// Cross-checks the k <= 2 preprocessing fast path against the generic
// implementation, and covers the solver options added around it.
#include <gtest/gtest.h>

#include "core/exact_solver.h"
#include "core/general_solver.h"
#include "core/k2_solver.h"
#include "core/preprocess.h"
#include "tests/test_util.h"

namespace mc3 {
namespace {

using testing::PS;
using testing::RandomInstance;
using testing::RandomInstanceConfig;

class FastPathEquivalenceTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, FastPathEquivalenceTest,
                         ::testing::Range(0, 30));

TEST_P(FastPathEquivalenceTest, SameForcedCostAndResidualOptimum) {
  RandomInstanceConfig config;
  config.num_queries = 8;
  config.pool = 8;
  config.max_query_length = 2;
  config.zero_probability = 0.1;
  const Instance inst = RandomInstance(config, GetParam() * 271 + 3);

  PreprocessOptions generic;
  generic.force_generic_path = true;
  auto fast = Preprocess(inst);
  auto slow = Preprocess(inst, generic);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();

  // The two paths may make different (equally optimal) forced choices, so
  // compare the invariant quantity: forced cost + optimal residual cost.
  const ExactSolver exact;
  auto total = [&](const PreprocessResult& pre) -> Cost {
    Cost cost = pre.forced_cost;
    for (const Instance& comp : pre.components) {
      auto result = exact.Solve(comp);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      if (result.ok()) cost += result->cost;
    }
    return cost;
  };
  EXPECT_DOUBLE_EQ(total(*fast), total(*slow));
  // And both must equal the true optimum.
  auto whole = exact.Solve(inst);
  ASSERT_TRUE(whole.ok());
  EXPECT_DOUBLE_EQ(total(*fast), whole->cost);
}

TEST_P(FastPathEquivalenceTest, SameCoveredQueryCount) {
  RandomInstanceConfig config;
  config.num_queries = 10;
  config.pool = 9;
  config.max_query_length = 2;
  const Instance inst = RandomInstance(config, GetParam() * 389 + 7);
  PreprocessOptions generic;
  generic.force_generic_path = true;
  auto fast = Preprocess(inst);
  auto slow = Preprocess(inst, generic);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast->stats.remaining_queries, slow->stats.remaining_queries);
  EXPECT_EQ(fast->stats.queries_covered, slow->stats.queries_covered);
  EXPECT_EQ(fast->stats.num_components, slow->stats.num_components);
}

TEST(FastPathTest, InfeasibleMatchesGeneric) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 1);
  PreprocessOptions generic;
  generic.force_generic_path = true;
  EXPECT_EQ(Preprocess(inst).status().code(), StatusCode::kInfeasible);
  EXPECT_EQ(Preprocess(inst, generic).status().code(),
            StatusCode::kInfeasible);
}

TEST(FastPathTest, SingletonQueryForcedBothPaths) {
  Instance inst;
  inst.AddQuery(PS({3}));
  inst.SetCost(PS({3}), 2);
  PreprocessOptions generic;
  generic.force_generic_path = true;
  auto fast = Preprocess(inst);
  auto slow = Preprocess(inst, generic);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast->forced_cost, 2);
  EXPECT_EQ(slow->forced_cost, 2);
  EXPECT_TRUE(fast->components.empty());
  EXPECT_TRUE(slow->components.empty());
}

TEST(FastPathTest, StepTogglesHonored) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 1);
  inst.SetCost(PS({1}), 1);
  inst.SetCost(PS({0, 1}), 5);
  PreprocessOptions off;
  off.step1_forced_singletons = false;
  off.step3_decompositions = false;
  off.step4_k2_singleton_prune = false;
  auto pre = Preprocess(inst, off);
  ASSERT_TRUE(pre.ok());
  // Nothing selected or removed: everything survives to the residual.
  EXPECT_EQ(pre->forced_cost, 0);
  ASSERT_EQ(pre->components.size(), 1u);
  EXPECT_EQ(pre->components[0].costs().size(), 3u);
}

TEST(SolverOptionTest, VerificationOffStillSolvesCorrectly) {
  RandomInstanceConfig config;
  config.num_queries = 8;
  config.pool = 8;
  config.max_query_length = 2;
  const Instance inst = RandomInstance(config, 77);
  SolverOptions options;
  options.verify_solution = false;
  options.prune_unused = false;
  auto result = K2ExactSolver(options).Solve(inst);
  auto verified = K2ExactSolver().Solve(inst);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(verified.ok());
  EXPECT_TRUE(Covers(inst, result->solution));
  EXPECT_DOUBLE_EQ(result->cost, verified->cost);
}

TEST(SolverOptionTest, PruneNeverIncreasesCost) {
  for (int seed = 0; seed < 10; ++seed) {
    RandomInstanceConfig config;
    config.num_queries = 7;
    config.pool = 7;
    config.max_query_length = 3;
    const Instance inst = RandomInstance(config, seed * 37 + 5);
    SolverOptions no_prune;
    no_prune.prune_unused = false;
    auto pruned = GeneralSolver().Solve(inst);
    auto raw = GeneralSolver(no_prune).Solve(inst);
    ASSERT_TRUE(pruned.ok());
    ASSERT_TRUE(raw.ok());
    EXPECT_LE(pruned->cost, raw->cost + 1e-9);
    EXPECT_TRUE(Covers(inst, pruned->solution));
  }
}

}  // namespace
}  // namespace mc3
