#include "core/exact_solver.h"

#include <gtest/gtest.h>

#include "core/cover_dp.h"
#include "tests/test_util.h"

namespace mc3 {
namespace {

using testing::PS;

TEST(ExactSolverTest, TrivialSingleton) {
  Instance inst;
  inst.AddQuery(PS({0}));
  inst.SetCost(PS({0}), 2);
  auto result = ExactSolver().Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 2);
}

TEST(ExactSolverTest, PaperExampleOptimum) {
  auto result = ExactSolver().Solve(testing::PaperExample());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 7);
  EXPECT_TRUE(Covers(testing::PaperExample(), result->solution));
}

TEST(ExactSolverTest, InfeasibleDetected) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 1);
  auto result = ExactSolver().Solve(inst);
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(ExactSolverTest, SharedClassifierCountedOnce) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.AddQuery(PS({0, 2}));
  inst.SetCost(PS({0}), 10);
  inst.SetCost(PS({1}), 1);
  inst.SetCost(PS({2}), 1);
  auto result = ExactSolver().Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 12);  // X once, plus Y and Z
}

TEST(ExactSolverTest, GuardsRejectOversizedInstances) {
  ExactSolver::Limits limits;
  limits.max_queries = 1;
  const ExactSolver solver(limits);
  Instance inst;
  inst.AddQuery(PS({0}));
  inst.AddQuery(PS({1}));
  inst.SetCost(PS({0}), 1);
  inst.SetCost(PS({1}), 1);
  auto result = solver.Solve(inst);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExactSolverTest, ZeroCostClassifiersHandled) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 0);
  inst.SetCost(PS({1}), 0);
  inst.SetCost(PS({0, 1}), 1);
  auto result = ExactSolver().Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 0);
}

// Exhaustive cross-check against per-query DP composition on instances
// where queries are property-disjoint (there the optimum is separable).
class ExactSeparableTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, ExactSeparableTest, ::testing::Range(0, 10));

TEST_P(ExactSeparableTest, MatchesSeparableOptimum) {
  Rng rng(GetParam() + 777);
  Instance inst;
  Cost expected = 0;
  PropertyId base = 0;
  for (int q = 0; q < 3; ++q) {
    const size_t len = 1 + rng.UniformInt(0, 2);
    std::vector<PropertyId> props;
    for (size_t i = 0; i < len; ++i) props.push_back(base + i);
    base += static_cast<PropertyId>(len);
    inst.AddQuery(PropertySet::FromUnsorted(props));
  }
  for (const PropertySet& query : inst.queries()) {
    ForEachNonEmptySubset(query, [&](const PropertySet& c) {
      inst.SetCost(c, static_cast<Cost>(rng.UniformInt(1, 9)));
    });
  }
  for (const PropertySet& query : inst.queries()) {
    auto cover = MinCostQueryCover(query, [&](const PropertySet& c) {
      return inst.CostOf(c);
    });
    ASSERT_TRUE(cover.has_value());
    expected += cover->cost;
  }
  auto result = ExactSolver().Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost, expected);
}

}  // namespace
}  // namespace mc3
