// Update-trace parser tests: line-number tracking on parsed operations and
// the diagnostic quality of malformed-line errors (line number, offending
// token, printable masking) — the contract `mc3 serve` error messages and
// the cli_serve_malformed_trace smoke test build on.
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "online/update_trace.h"

namespace mc3::online {
namespace {

TEST(UpdateTraceTest, RecordsOneBasedSourceLines) {
  auto trace = ParseUpdateTrace(
      {
          "# header comment",   // line 1
          "+ red shirt",        // line 2
          "",                   // line 3
          "- red shirt",        // line 4
          "add,blue,tv",        // line 5
      },
      {});
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_EQ(trace->ops.size(), 3u);
  EXPECT_EQ(trace->ops[0].line, 2u);
  EXPECT_EQ(trace->ops[1].line, 4u);
  EXPECT_EQ(trace->ops[2].line, 5u);
  EXPECT_EQ(trace->skipped_lines, 2u);
}

TEST(UpdateTraceTest, EmptyOperationNamesLineAndMarker) {
  auto trace = ParseUpdateTrace({"+ red", "-"}, {});
  ASSERT_FALSE(trace.ok());
  const std::string message = trace.status().message();
  EXPECT_NE(message.find("trace line 2"), std::string::npos) << message;
  EXPECT_NE(message.find("'-'"), std::string::npos) << message;
  EXPECT_NE(message.find("without a query"), std::string::npos) << message;
}

TEST(UpdateTraceTest, StrayMarkerMidLineIsRejected) {
  // Two operations joined on one line: the classic corrupted-trace shape.
  auto trace = ParseUpdateTrace({"+ red shirt + blue"}, {});
  ASSERT_FALSE(trace.ok());
  const std::string message = trace.status().message();
  EXPECT_NE(message.find("trace line 1"), std::string::npos) << message;
  EXPECT_NE(message.find("stray operation marker '+'"), std::string::npos)
      << message;
  EXPECT_NE(message.find("two lines joined"), std::string::npos) << message;
}

TEST(UpdateTraceTest, ControlCharacterInNameIsMaskedInError) {
  auto trace = ParseUpdateTrace({"+ red shi\x01rt"}, {});
  ASSERT_FALSE(trace.ok());
  const std::string message = trace.status().message();
  EXPECT_NE(message.find("control character"), std::string::npos) << message;
  // The raw byte never reaches the message; it is masked as '?'.
  EXPECT_EQ(message.find('\x01'), std::string::npos) << message;
  EXPECT_NE(message.find("shi?rt"), std::string::npos) << message;
  EXPECT_NE(message.find("token 2"), std::string::npos) << message;
}

TEST(UpdateTraceTest, LoadPrefixesErrorsWithPath) {
  const std::string path =
      ::testing::TempDir() + "/update_trace_test_malformed.txt";
  std::FILE* out = std::fopen(path.c_str(), "wb");
  ASSERT_NE(out, nullptr);
  std::fputs("+ ok_line\n+ bad +\n", out);
  std::fclose(out);

  auto trace = LoadUpdateTrace(path, {});
  ASSERT_FALSE(trace.ok());
  const std::string message = trace.status().message();
  EXPECT_EQ(message.find(path), 0u) << message;  // path leads the message
  EXPECT_NE(message.find("trace line 2"), std::string::npos) << message;
  std::remove(path.c_str());
}

TEST(UpdateTraceTest, BaseNamesAreReusedNewNamesInterned) {
  auto trace = ParseUpdateTrace({"+ red novel"}, {"red", "shirt"});
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_EQ(trace->property_names.size(), 3u);
  EXPECT_EQ(trace->property_names[2], "novel");
  EXPECT_TRUE(trace->ops[0].query.Contains(0));  // "red" kept its base id
  EXPECT_TRUE(trace->ops[0].query.Contains(2));
}

TEST(UpdateTraceRenderTest, RenderTraceOpIsTheParserInverse) {
  const std::vector<std::string> names = {"red", "shirt", "tv"};
  auto line = RenderTraceOp(TraceOp::Kind::kAdd, PropertySet::Of({0, 2}),
                            names);
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(*line, "+ red tv");
  auto removed =
      RenderTraceOp(TraceOp::Kind::kRemove, PropertySet::Of({1}), names);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, "- shirt");

  auto parsed = ParseUpdateTrace({*line, *removed}, names);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->ops.size(), 2u);
  EXPECT_EQ(parsed->ops[0].kind, TraceOp::Kind::kAdd);
  EXPECT_EQ(parsed->ops[0].query, PropertySet::Of({0, 2}));
  EXPECT_EQ(parsed->ops[1].kind, TraceOp::Kind::kRemove);
  EXPECT_EQ(parsed->ops[1].query, PropertySet::Of({1}));
  // No new names were interned: rendering stayed inside the table.
  EXPECT_EQ(parsed->property_names, names);
}

TEST(UpdateTraceRenderTest, RenderUpdateBatchOrdersRemovesBeforeAdds) {
  const std::vector<std::string> names = {"a", "b", "c"};
  auto text = RenderUpdateBatch({PropertySet::Of({0, 1})},
                                {PropertySet::Of({2}), PropertySet::Of({1})},
                                names);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // Removes first — the order ApplyUpdate applies them — then adds, one
  // newline-terminated line each.
  EXPECT_EQ(*text, "- c\n- b\n+ a b\n");
}

TEST(UpdateTraceRenderTest, WalRecordShapedBatchRoundTrips) {
  const std::vector<std::string> names = {"red", "shirt", "sony", "tv"};
  const std::vector<PropertySet> add = {PropertySet::Of({0, 1})};
  const std::vector<PropertySet> remove = {PropertySet::Of({2, 3})};
  auto text = RenderUpdateBatch(add, remove, names);
  ASSERT_TRUE(text.ok()) << text.status().ToString();

  std::vector<std::string> lines;
  size_t start = 0;
  for (size_t nl = text->find('\n'); nl != std::string::npos;
       nl = text->find('\n', start)) {
    lines.push_back(text->substr(start, nl - start));
    start = nl + 1;
  }
  auto parsed = ParseUpdateTrace(lines, names);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->ops.size(), 2u);
  EXPECT_EQ(parsed->ops[0].kind, TraceOp::Kind::kRemove);
  EXPECT_EQ(parsed->ops[0].query, remove[0]);
  EXPECT_EQ(parsed->ops[1].kind, TraceOp::Kind::kAdd);
  EXPECT_EQ(parsed->ops[1].query, add[0]);
}

TEST(UpdateTraceRenderTest, UnserializableNamesAreRejected) {
  // A name with whitespace would parse back as two properties.
  auto spaced = RenderTraceOp(TraceOp::Kind::kAdd, PropertySet::Of({0}),
                              {"red shirt"});
  EXPECT_FALSE(spaced.ok());
  // A bare marker token would parse back as an operation sign.
  auto marker =
      RenderTraceOp(TraceOp::Kind::kAdd, PropertySet::Of({0, 1}), {"+", "x"});
  EXPECT_FALSE(marker.ok());
  // An id beyond the name table cannot be rendered at all.
  auto unnamed =
      RenderTraceOp(TraceOp::Kind::kAdd, PropertySet::Of({5}), {"only"});
  EXPECT_FALSE(unnamed.ok());
  // Empty names never round-trip.
  auto empty =
      RenderTraceOp(TraceOp::Kind::kRemove, PropertySet::Of({0}), {""});
  EXPECT_FALSE(empty.ok());
}

}  // namespace
}  // namespace mc3::online
