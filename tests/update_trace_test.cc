// Update-trace parser tests: line-number tracking on parsed operations and
// the diagnostic quality of malformed-line errors (line number, offending
// token, printable masking) — the contract `mc3 serve` error messages and
// the cli_serve_malformed_trace smoke test build on.
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "online/update_trace.h"

namespace mc3::online {
namespace {

TEST(UpdateTraceTest, RecordsOneBasedSourceLines) {
  auto trace = ParseUpdateTrace(
      {
          "# header comment",   // line 1
          "+ red shirt",        // line 2
          "",                   // line 3
          "- red shirt",        // line 4
          "add,blue,tv",        // line 5
      },
      {});
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_EQ(trace->ops.size(), 3u);
  EXPECT_EQ(trace->ops[0].line, 2u);
  EXPECT_EQ(trace->ops[1].line, 4u);
  EXPECT_EQ(trace->ops[2].line, 5u);
  EXPECT_EQ(trace->skipped_lines, 2u);
}

TEST(UpdateTraceTest, EmptyOperationNamesLineAndMarker) {
  auto trace = ParseUpdateTrace({"+ red", "-"}, {});
  ASSERT_FALSE(trace.ok());
  const std::string message = trace.status().message();
  EXPECT_NE(message.find("trace line 2"), std::string::npos) << message;
  EXPECT_NE(message.find("'-'"), std::string::npos) << message;
  EXPECT_NE(message.find("without a query"), std::string::npos) << message;
}

TEST(UpdateTraceTest, StrayMarkerMidLineIsRejected) {
  // Two operations joined on one line: the classic corrupted-trace shape.
  auto trace = ParseUpdateTrace({"+ red shirt + blue"}, {});
  ASSERT_FALSE(trace.ok());
  const std::string message = trace.status().message();
  EXPECT_NE(message.find("trace line 1"), std::string::npos) << message;
  EXPECT_NE(message.find("stray operation marker '+'"), std::string::npos)
      << message;
  EXPECT_NE(message.find("two lines joined"), std::string::npos) << message;
}

TEST(UpdateTraceTest, ControlCharacterInNameIsMaskedInError) {
  auto trace = ParseUpdateTrace({"+ red shi\x01rt"}, {});
  ASSERT_FALSE(trace.ok());
  const std::string message = trace.status().message();
  EXPECT_NE(message.find("control character"), std::string::npos) << message;
  // The raw byte never reaches the message; it is masked as '?'.
  EXPECT_EQ(message.find('\x01'), std::string::npos) << message;
  EXPECT_NE(message.find("shi?rt"), std::string::npos) << message;
  EXPECT_NE(message.find("token 2"), std::string::npos) << message;
}

TEST(UpdateTraceTest, LoadPrefixesErrorsWithPath) {
  const std::string path =
      ::testing::TempDir() + "/update_trace_test_malformed.txt";
  std::FILE* out = std::fopen(path.c_str(), "wb");
  ASSERT_NE(out, nullptr);
  std::fputs("+ ok_line\n+ bad +\n", out);
  std::fclose(out);

  auto trace = LoadUpdateTrace(path, {});
  ASSERT_FALSE(trace.ok());
  const std::string message = trace.status().message();
  EXPECT_EQ(message.find(path), 0u) << message;  // path leads the message
  EXPECT_NE(message.find("trace line 2"), std::string::npos) << message;
  std::remove(path.c_str());
}

TEST(UpdateTraceTest, BaseNamesAreReusedNewNamesInterned) {
  auto trace = ParseUpdateTrace({"+ red novel"}, {"red", "shirt"});
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_EQ(trace->property_names.size(), 3u);
  EXPECT_EQ(trace->property_names[2], "novel");
  EXPECT_TRUE(trace->ops[0].query.Contains(0));  // "red" kept its base id
  EXPECT_TRUE(trace->ops[0].query.Contains(2));
}

}  // namespace
}  // namespace mc3::online
