#include "core/general_solver.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_solver.h"
#include "core/k2_solver.h"
#include "core/short_first_solver.h"
#include "tests/test_util.h"
#include "util/float_cmp.h"

namespace mc3 {
namespace {

using testing::PaperExample;
using testing::PS;
using testing::RandomInstance;
using testing::RandomInstanceConfig;

TEST(GeneralSolverTest, SolvesPaperExampleOptimally) {
  const Instance inst = PaperExample();
  const GeneralSolver solver;
  auto result = solver.Solve(inst);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(Covers(inst, result->solution));
  // The paper's optimal solution is {AC, AJ, W} at cost 7N.
  EXPECT_EQ(result->cost, 7);
}

TEST(GeneralSolverTest, PaperExampleExactOptimumIsSeven) {
  const Instance inst = PaperExample();
  auto exact = ExactSolver().Solve(inst);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->cost, 7);
}

TEST(GeneralSolverTest, PaperExampleSolutionStructure) {
  const Instance inst = PaperExample();
  const GeneralSolver solver;
  auto result = solver.Solve(inst);
  ASSERT_TRUE(result.ok());
  // {AC, AJ, W}: three classifiers, one of them the white singleton.
  EXPECT_EQ(result->solution.size(), 3u);
  bool has_white_singleton = false;
  for (const PropertySet& c : result->solution.classifiers()) {
    if (c.size() == 1 && ApproxEq(inst.CostOf(c), 1)) {
      has_white_singleton = true;
    }
  }
  EXPECT_TRUE(has_white_singleton);
}

TEST(GeneralSolverTest, SingleLongQuery) {
  Instance inst;
  inst.AddQuery(PS({0, 1, 2, 3}));
  for (PropertyId p = 0; p < 4; ++p) inst.SetCost(PS({p}), 5);
  inst.SetCost(PS({0, 1}), 1);
  inst.SetCost(PS({2, 3}), 1);
  const GeneralSolver solver;
  auto result = solver.Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 2);
}

TEST(GeneralSolverTest, InfeasibleReported) {
  Instance inst;
  inst.AddQuery(PS({0, 1, 2}));
  inst.SetCost(PS({0}), 1);
  const GeneralSolver solver;
  auto result = solver.Solve(inst);
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(GeneralSolverTest, NoAlgorithmConfiguredIsAnError) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 1);
  inst.SetCost(PS({1}), 1);
  SolverOptions options;
  options.run_greedy = false;
  options.f_method = SolverOptions::FMethod::kNone;
  options.preprocess = false;
  const GeneralSolver solver(options);
  auto result = solver.Solve(inst);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

class GeneralSolverGuaranteeTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, GeneralSolverGuaranteeTest,
                         ::testing::Range(0, 30));

TEST_P(GeneralSolverGuaranteeTest, WithinTheoremBound) {
  RandomInstanceConfig config;
  config.num_queries = 5;
  config.pool = 7;
  config.max_query_length = 4;
  const Instance inst = RandomInstance(config, GetParam() * 41 + 17);
  const GeneralSolver solver;
  auto result = solver.Solve(inst);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(Covers(inst, result->solution));

  auto exact = ExactSolver().Solve(inst);
  ASSERT_TRUE(exact.ok());
  const double k = static_cast<double>(inst.MaxQueryLength());
  const double incidence = static_cast<double>(inst.Incidence());
  // Theorem 5.3 states min{ln I + ln(k-1) + 1, 2^(k-1)} via Delta <=
  // I*(k-1); that misses full-length classifiers when I = 1 (a length-k
  // classifier yields a WSC set of size k > (k-1)*1), so we test against
  // the corrected degree bound Delta <= max(k, (k-1)*I). See EXPERIMENTS.md.
  const double delta = std::max(k, (k - 1) * std::max(incidence, 1.0));
  const double bound = std::min(std::log(std::max(delta, 1.0)) + 1.0,
                                std::pow(2.0, k - 1));
  EXPECT_LE(result->cost, bound * exact->cost + 1e-6)
      << "cost " << result->cost << " vs opt " << exact->cost;
}

TEST_P(GeneralSolverGuaranteeTest, LpRoundingVariantAlsoCoversAndBounds) {
  RandomInstanceConfig config;
  config.num_queries = 4;
  config.pool = 6;
  config.max_query_length = 3;
  const Instance inst = RandomInstance(config, GetParam() * 59 + 23);
  SolverOptions options;
  options.f_method = SolverOptions::FMethod::kLpRounding;
  const GeneralSolver solver(options);
  auto result = solver.Solve(inst);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(Covers(inst, result->solution));
  auto exact = ExactSolver().Solve(inst);
  ASSERT_TRUE(exact.ok());
  const double k = static_cast<double>(inst.MaxQueryLength());
  EXPECT_LE(result->cost, std::pow(2.0, k - 1) * exact->cost + 1e-6);
}

TEST_P(GeneralSolverGuaranteeTest, GreedyOnlyStillCovers) {
  RandomInstanceConfig config;
  config.num_queries = 6;
  config.pool = 8;
  config.max_query_length = 3;
  const Instance inst = RandomInstance(config, GetParam() * 71 + 29);
  SolverOptions options;
  options.f_method = SolverOptions::FMethod::kNone;
  const GeneralSolver solver(options);
  auto result = solver.Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Covers(inst, result->solution));
}

TEST_P(GeneralSolverGuaranteeTest, PreprocessingNeverHurtsQuality) {
  RandomInstanceConfig config;
  config.num_queries = 6;
  config.pool = 7;
  config.max_query_length = 3;
  const Instance inst = RandomInstance(config, GetParam() * 83 + 31);
  SolverOptions with;
  SolverOptions without;
  without.preprocess = false;
  auto a = GeneralSolver(with).Solve(inst);
  auto b = GeneralSolver(without).Solve(inst);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Not a theorem, but the paper reports preprocessing improves quality in
  // practice; at minimum both must cover.
  EXPECT_TRUE(Covers(inst, a->solution));
  EXPECT_TRUE(Covers(inst, b->solution));
}

// On k <= 2 instances the general solver is only approximate; it must never
// beat the exact k=2 solver, and must stay within its guarantee.
class GeneralVsK2Test : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, GeneralVsK2Test, ::testing::Range(0, 20));

TEST_P(GeneralVsK2Test, NeverBeatsExactK2) {
  RandomInstanceConfig config;
  config.num_queries = 8;
  config.pool = 8;
  config.max_query_length = 2;
  const Instance inst = RandomInstance(config, GetParam() * 13 + 7);
  auto general = GeneralSolver().Solve(inst);
  auto k2 = K2ExactSolver().Solve(inst);
  ASSERT_TRUE(general.ok());
  ASSERT_TRUE(k2.ok());
  EXPECT_GE(general->cost, k2->cost - 1e-9);
}

TEST(ExactComponentsTest, NeverWorseThanPureApproximation) {
  for (int seed = 0; seed < 10; ++seed) {
    RandomInstanceConfig config;
    config.num_queries = 10;
    config.pool = 14;  // several small components
    config.max_query_length = 3;
    const Instance inst = RandomInstance(config, seed * 457 + 3);
    SolverOptions exact_small;
    exact_small.exact_component_max_queries = 6;
    auto approx = GeneralSolver().Solve(inst);
    auto hybrid = GeneralSolver(exact_small).Solve(inst);
    ASSERT_TRUE(approx.ok());
    ASSERT_TRUE(hybrid.ok());
    EXPECT_TRUE(Covers(inst, hybrid->solution));
    EXPECT_LE(hybrid->cost, approx->cost + 1e-9);
  }
}

TEST(ExactComponentsTest, SmallComponentsAttainOptimum) {
  RandomInstanceConfig config;
  config.num_queries = 6;
  config.pool = 8;
  config.max_query_length = 3;
  const Instance inst = RandomInstance(config, 12345);
  SolverOptions exact_small;
  exact_small.exact_component_max_queries = 8;
  auto hybrid = GeneralSolver(exact_small).Solve(inst);
  auto exact = ExactSolver().Solve(inst);
  ASSERT_TRUE(hybrid.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(hybrid->cost, exact->cost);
}

TEST(ShortFirstTest, PaperExample) {
  const Instance inst = PaperExample();
  const ShortFirstSolver solver;
  auto result = solver.Solve(inst);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(Covers(inst, result->solution));
  // The short query {chelsea, adidas} is solved exactly (AC, cost 3); the
  // optimum overall is 7 and short-first attains it here.
  EXPECT_EQ(result->cost, 7);
}

TEST(ShortFirstTest, AllShortDelegatesToK2) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 1);
  inst.SetCost(PS({1}), 1);
  inst.SetCost(PS({0, 1}), 3);
  auto result = ShortFirstSolver().Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 2);
}

TEST(ShortFirstTest, AllLongDelegatesToGeneral) {
  Instance inst;
  inst.AddQuery(PS({0, 1, 2}));
  for (PropertyId p = 0; p < 3; ++p) inst.SetCost(PS({p}), 1);
  auto result = ShortFirstSolver().Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 3);
}

TEST(ShortFirstTest, ReusesShortPhaseClassifiersForFree) {
  // Short query xy selects XY? No: X=1, Y=1 beats XY=5. The long query xyz
  // can then finish with Z only.
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.AddQuery(PS({0, 1, 2}));
  inst.SetCost(PS({0}), 1);
  inst.SetCost(PS({1}), 1);
  inst.SetCost(PS({2}), 1);
  inst.SetCost(PS({0, 1}), 5);
  SolverOptions options;
  options.short_first_reuse_selections = true;
  auto result = ShortFirstSolver(options).Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 3);
  // The paper-faithful SF (no reuse) may pay more but still covers.
  auto faithful = ShortFirstSolver().Solve(inst);
  ASSERT_TRUE(faithful.ok());
  EXPECT_GE(faithful->cost, result->cost);
}

class ShortFirstSweepTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, ShortFirstSweepTest, ::testing::Range(0, 20));

TEST_P(ShortFirstSweepTest, CoversAndStaysReasonable) {
  RandomInstanceConfig config;
  config.num_queries = 7;
  config.pool = 8;
  config.max_query_length = 4;
  const Instance inst = RandomInstance(config, GetParam() * 19 + 5);
  auto result = ShortFirstSolver().Solve(inst);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(Covers(inst, result->solution));
  auto exact = ExactSolver().Solve(inst);
  ASSERT_TRUE(exact.ok());
  EXPECT_GE(result->cost, exact->cost - 1e-9);
}

}  // namespace
}  // namespace mc3
