#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/general_solver.h"
#include "core/k2_solver.h"
#include "tests/test_util.h"

namespace mc3 {
namespace {

using testing::RandomInstance;
using testing::RandomInstanceConfig;

TEST(ParallelForTest, RunsAllIndicesInline) {
  std::vector<int> hits(10, 0);
  ParallelFor(10, 1, [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, RunsAllIndicesThreaded) {
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  ParallelFor(kCount, 4, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroCountIsNoOp) {
  bool called = false;
  // mc3-lint: capture-ok(count is zero, the body never runs on any thread)
  ParallelFor(0, 4, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(2);
  ParallelFor(2, 16, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
}

TEST(ParallelForTest, AccumulatesViaAtomics) {
  std::atomic<int64_t> sum{0};
  ParallelFor(100, 3, [&](size_t i) {
    sum.fetch_add(static_cast<int64_t>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950);
}

class ParallelSolverTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, ParallelSolverTest, ::testing::Range(0, 10));

TEST_P(ParallelSolverTest, K2SameCostAsSequential) {
  RandomInstanceConfig config;
  config.num_queries = 20;
  config.pool = 24;  // many components
  config.max_query_length = 2;
  const Instance inst = RandomInstance(config, GetParam() * 811 + 31);
  SolverOptions parallel;
  parallel.num_threads = 4;
  auto seq = K2ExactSolver().Solve(inst);
  auto par = K2ExactSolver(parallel).Solve(inst);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  EXPECT_DOUBLE_EQ(seq->cost, par->cost);
  EXPECT_TRUE(Covers(inst, par->solution));
}

TEST_P(ParallelSolverTest, GeneralSameCostAsSequential) {
  RandomInstanceConfig config;
  config.num_queries = 18;
  config.pool = 26;
  config.max_query_length = 3;
  const Instance inst = RandomInstance(config, GetParam() * 613 + 99);
  SolverOptions parallel;
  parallel.num_threads = 4;
  auto seq = GeneralSolver().Solve(inst);
  auto par = GeneralSolver(parallel).Solve(inst);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  // Components are solved independently and merged in deterministic order,
  // so the result is identical, not merely equal in cost.
  EXPECT_DOUBLE_EQ(seq->cost, par->cost);
  EXPECT_EQ(seq->solution.Sorted(), par->solution.Sorted());
}

}  // namespace
}  // namespace mc3
