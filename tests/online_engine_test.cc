#include "online/online_engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/general_solver.h"
#include "core/instance_util.h"
#include "core/k2_solver.h"
#include "data/synthetic.h"
#include "online/churn.h"
#include "online/update_trace.h"
#include "tests/test_util.h"

namespace mc3 {
namespace {

using online::ChurnGenerator;
using online::EngineOptions;
using online::OnlineEngine;
using online::UpdateStats;
using testing::PS;

EngineOptions GeneralEngineOptions(size_t threads = 1) {
  EngineOptions options;
  options.solver = EngineOptions::SolverKind::kGeneral;
  options.solver_options.num_threads = threads;
  return options;
}

/// From-scratch cost of the engine's live instance under the same pipeline.
Cost BatchCost(const OnlineEngine& engine) {
  SolverOptions options;  // defaults match GeneralEngineOptions
  auto result = GeneralSolver(options).Solve(engine.LiveInstance());
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result->cost : kInfiniteCost;
}

TEST(OnlineEngineTest, InitializeMatchesBatchSolve) {
  OnlineEngine engine(GeneralEngineOptions());
  const Instance inst = testing::PaperExample();
  auto stats = engine.Initialize(inst);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->queries_added, 2u);
  EXPECT_EQ(engine.NumQueries(), 2u);
  EXPECT_EQ(engine.NumComponents(), 1u);  // the queries share "adidas"
  EXPECT_EQ(engine.TotalCost(), 7);       // the paper's optimum
  EXPECT_EQ(engine.TotalCost(), BatchCost(engine));
  EXPECT_TRUE(engine.CheckInvariants().ok());
}

TEST(OnlineEngineTest, EmptyEngine) {
  OnlineEngine engine;
  EXPECT_EQ(engine.NumQueries(), 0u);
  EXPECT_EQ(engine.NumComponents(), 0u);
  EXPECT_EQ(engine.TotalCost(), 0);
  EXPECT_TRUE(engine.CurrentSolution().empty());
  EXPECT_TRUE(engine.CheckInvariants().ok());
  // Removing from an empty engine is a counted no-op.
  auto stats = engine.RemoveQueries({PS({0, 1})});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->missing_removes, 1u);
  EXPECT_EQ(stats->components_resolved, 0u);
}

TEST(OnlineEngineTest, RemoveLastQueryEmptiesTheEngine) {
  OnlineEngine engine(GeneralEngineOptions());
  ASSERT_TRUE(engine.Initialize(testing::PaperExample()).ok());
  auto stats = engine.RemoveQueries(engine.LiveInstance().queries());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->queries_removed, 2u);
  EXPECT_EQ(stats->components_resolved, 0u);
  EXPECT_EQ(engine.NumQueries(), 0u);
  EXPECT_EQ(engine.NumComponents(), 0u);
  EXPECT_EQ(engine.TotalCost(), 0);
  EXPECT_TRUE(engine.CurrentSolution().empty());
  EXPECT_TRUE(engine.CheckInvariants().ok());
  // And the engine keeps working afterwards: revive one query.
  auto revived = engine.AddQueries({testing::PaperExample().queries()[1]});
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ(engine.NumQueries(), 1u);
  EXPECT_EQ(engine.TotalCost(), BatchCost(engine));
  EXPECT_TRUE(engine.CheckInvariants().ok());
}

TEST(OnlineEngineTest, ComponentMergeAndSplit) {
  InstanceBuilder b;
  b.AddQuery({"a", "b"});
  b.AddQuery({"c", "d"});
  b.SetCost({"a"}, 1);
  b.SetCost({"b"}, 1);
  b.SetCost({"c"}, 1);
  b.SetCost({"d"}, 1);
  b.SetCost({"b", "c"}, 1);
  const Instance inst = std::move(b).Build();

  OnlineEngine engine(GeneralEngineOptions());
  ASSERT_TRUE(engine.Initialize(inst).ok());
  EXPECT_EQ(engine.NumComponents(), 2u);

  // {b, c} bridges the two components: they merge into one. (Builder
  // interning is first-appearance order: a=0, b=1, c=2, d=3.)
  const PropertySet bridge = PS({1, 2});
  auto merged = engine.AddQueries({bridge});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->components_dirtied, 2u);
  EXPECT_EQ(merged->components_resolved, 1u);
  EXPECT_EQ(merged->queries_touched, 3u);
  EXPECT_EQ(engine.NumComponents(), 1u);
  EXPECT_EQ(engine.TotalCost(), BatchCost(engine));
  EXPECT_TRUE(engine.CheckInvariants().ok());

  // Removing the bridge splits the component back in two.
  auto split = engine.RemoveQueries({bridge});
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->components_dirtied, 1u);
  EXPECT_EQ(split->components_resolved, 2u);
  EXPECT_EQ(engine.NumComponents(), 2u);
  EXPECT_EQ(engine.TotalCost(), BatchCost(engine));
  EXPECT_TRUE(engine.CheckInvariants().ok());
}

TEST(OnlineEngineTest, IsolatedAddTouchesOnlyItsComponent) {
  OnlineEngine engine(GeneralEngineOptions());
  ASSERT_TRUE(engine.Initialize(testing::PaperExample()).ok());
  ASSERT_TRUE(engine.SetCost(PS({100}), 2).ok());
  ASSERT_TRUE(engine.SetCost(PS({101}), 2).ok());
  auto stats = engine.AddQueries({PS({100, 101})});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->components_dirtied, 0u);
  EXPECT_EQ(stats->components_resolved, 1u);
  EXPECT_EQ(stats->queries_touched, 1u);
  EXPECT_EQ(engine.NumComponents(), 2u);
  EXPECT_EQ(engine.TotalCost(), 7 + 4);
  EXPECT_TRUE(engine.CheckInvariants().ok());
}

TEST(OnlineEngineTest, DuplicateAddAndMissingRemoveAreNoOps) {
  OnlineEngine engine(GeneralEngineOptions());
  ASSERT_TRUE(engine.Initialize(testing::PaperExample()).ok());
  const Cost before = engine.TotalCost();

  auto dup = engine.AddQueries({testing::PaperExample().queries()[0]});
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->duplicate_adds, 1u);
  EXPECT_EQ(dup->components_resolved, 0u);
  EXPECT_EQ(engine.TotalCost(), before);

  auto missing = engine.RemoveQueries({PS({7, 8, 9})});
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->missing_removes, 1u);
  EXPECT_EQ(engine.TotalCost(), before);
  EXPECT_EQ(engine.counters().updates, 3u);  // init + the two no-ops
}

TEST(OnlineEngineTest, InfeasibleAddRejectedWithoutMutation) {
  OnlineEngine engine(GeneralEngineOptions());
  ASSERT_TRUE(engine.Initialize(testing::PaperExample()).ok());
  const Cost before = engine.TotalCost();
  const size_t components = engine.NumComponents();

  // Property 99 has no priced classifier: the add must be rejected atomically
  // (the feasible first query must not slip in either).
  auto stats = engine.ApplyUpdate(
      {testing::PaperExample().queries()[0], PS({99})}, {});
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInfeasible);
  EXPECT_EQ(engine.TotalCost(), before);
  EXPECT_EQ(engine.NumComponents(), components);
  EXPECT_TRUE(engine.CheckInvariants().ok());

  auto empty = engine.AddQueries({PropertySet{}});
  EXPECT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
}

TEST(OnlineEngineTest, RepricingAppliesOnNextResolve) {
  InstanceBuilder b;
  b.AddQuery({"a", "b"});
  b.SetCost({"a"}, 5);
  b.SetCost({"b"}, 5);
  b.SetCost({"a", "b"}, 20);
  const Instance inst = std::move(b).Build();

  OnlineEngine engine(GeneralEngineOptions());
  ASSERT_TRUE(engine.Initialize(inst).ok());
  EXPECT_EQ(engine.TotalCost(), 10);  // two singletons

  // Cheaper pair price takes effect when the component is next re-solved.
  ASSERT_TRUE(engine.SetCost(inst.queries()[0], 3).ok());
  EXPECT_EQ(engine.TotalCost(), 10);  // not yet re-solved
  ASSERT_TRUE(engine.RemoveQueries({inst.queries()[0]}).ok());
  ASSERT_TRUE(engine.AddQueries({inst.queries()[0]}).ok());
  EXPECT_EQ(engine.TotalCost(), 3);
  EXPECT_TRUE(engine.CheckInvariants().ok());

  // Removing a price is not allowed.
  EXPECT_FALSE(engine.SetCost(inst.queries()[0], kInfiniteCost).ok());
  EXPECT_FALSE(engine.SetCost(inst.queries()[0], -1).ok());
}

TEST(OnlineEngineTest, K2AutoMatchesExactSolver) {
  testing::RandomInstanceConfig config;
  config.num_queries = 30;
  config.pool = 20;
  config.max_query_length = 2;
  for (uint64_t seed : {1u, 2u, 3u}) {
    const Instance inst = testing::RandomInstance(config, seed);
    OnlineEngine engine;  // kAuto: every component is k <= 2 -> exact
    ASSERT_TRUE(engine.Initialize(inst).ok());
    auto exact = K2ExactSolver().Solve(inst);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    EXPECT_DOUBLE_EQ(engine.TotalCost(), exact->cost) << "seed " << seed;
    EXPECT_TRUE(engine.CheckInvariants().ok());
  }
}

/// The ISSUE's headline equivalence: random add/remove traces on synthetic
/// instances; after every batch the engine's cover cost equals a
/// from-scratch GeneralSolver::Solve on the live instance (same options =>
/// identical cost, by the determinism of the pipeline).
TEST(OnlineEngineTest, RandomChurnMatchesBatchSolve) {
  for (uint64_t seed : {7u, 11u}) {
    data::SyntheticConfig config;
    config.num_queries = 120;
    config.seed = seed;
    const Instance base = data::GenerateSynthetic(config);

    OnlineEngine engine(GeneralEngineOptions());
    ASSERT_TRUE(engine.Initialize(base).ok());
    ASSERT_EQ(engine.NumQueries(), base.NumQueries());
    EXPECT_DOUBLE_EQ(engine.TotalCost(), BatchCost(engine));

    ChurnGenerator churn(base, /*seed=*/seed * 13);
    for (int round = 0; round < 6; ++round) {
      const ChurnGenerator::Batch batch = churn.Next(/*adds=*/6,
                                                     /*removes=*/9);
      auto stats = engine.ApplyUpdate(batch.add, batch.remove);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      ASSERT_TRUE(engine.CheckInvariants().ok()) << "seed " << seed
                                                 << " round " << round;
      EXPECT_DOUBLE_EQ(engine.TotalCost(), BatchCost(engine))
          << "seed " << seed << " round " << round;
    }
    EXPECT_EQ(engine.NumQueries(), churn.NumLive());
  }
}

TEST(OnlineEngineTest, ParallelResolveMatchesSequential) {
  data::SyntheticConfig config;
  config.num_queries = 150;
  config.seed = 42;
  const Instance base = data::GenerateSynthetic(config);

  OnlineEngine sequential(GeneralEngineOptions(1));
  OnlineEngine parallel(GeneralEngineOptions(4));
  ASSERT_TRUE(sequential.Initialize(base).ok());
  ASSERT_TRUE(parallel.Initialize(base).ok());
  EXPECT_DOUBLE_EQ(sequential.TotalCost(), parallel.TotalCost());

  ChurnGenerator churn_a(base, 99);
  ChurnGenerator churn_b(base, 99);
  for (int round = 0; round < 4; ++round) {
    const auto batch_a = churn_a.Next(5, 10);
    const auto batch_b = churn_b.Next(5, 10);
    ASSERT_TRUE(sequential.ApplyUpdate(batch_a.add, batch_a.remove).ok());
    ASSERT_TRUE(parallel.ApplyUpdate(batch_b.add, batch_b.remove).ok());
    EXPECT_DOUBLE_EQ(sequential.TotalCost(), parallel.TotalCost());
  }
  EXPECT_TRUE(parallel.CheckInvariants().ok());
}

TEST(UpdateTraceTest, ParsesMarkersCsvAndComments) {
  auto trace = online::ParseUpdateTrace(
      {"# header", "", "+ white adidas", "- sony tv", "add,white,adidas",
       "remove,sony,tv", "plain query"},
      {"white"});
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_EQ(trace->ops.size(), 5u);
  EXPECT_EQ(trace->skipped_lines, 2u);
  EXPECT_EQ(trace->ops[0].kind, online::TraceOp::Kind::kAdd);
  EXPECT_EQ(trace->ops[1].kind, online::TraceOp::Kind::kRemove);
  EXPECT_EQ(trace->ops[0].query, trace->ops[2].query);
  EXPECT_EQ(trace->ops[1].query, trace->ops[3].query);
  EXPECT_EQ(trace->ops[4].kind, online::TraceOp::Kind::kAdd);
  // "white" kept its base id; new names were interned after it.
  EXPECT_EQ(trace->property_names[0], "white");
  EXPECT_TRUE(trace->ops[0].query.Contains(0));

  auto bad = online::ParseUpdateTrace({"+"}, {});
  EXPECT_FALSE(bad.ok());
}

TEST(ChurnGeneratorTest, DeterministicAndConsistent) {
  const Instance base = data::GenerateSynthetic({.num_queries = 50, .seed = 3});
  ChurnGenerator a(base, 5);
  ChurnGenerator b(base, 5);
  for (int i = 0; i < 3; ++i) {
    const auto batch_a = a.Next(4, 8);
    const auto batch_b = b.Next(4, 8);
    EXPECT_EQ(batch_a.add, batch_b.add);
    EXPECT_EQ(batch_a.remove, batch_b.remove);
  }
  EXPECT_EQ(a.NumLive() + a.NumRetired(), base.NumQueries());
}

TEST(ShardedSyntheticTest, DomainsAreDisjointComponents) {
  online::ShardedSyntheticConfig config;
  config.num_domains = 5;
  config.domain.num_queries = 20;
  config.domain.seed = 1;
  const Instance inst = online::GenerateShardedSynthetic(config);
  EXPECT_EQ(inst.NumQueries(), 100u);
  EXPECT_TRUE(inst.Validate().ok());
  const ComponentPartition partition = PartitionQueries(inst.queries());
  EXPECT_GE(partition.num_components, config.num_domains);
}

}  // namespace
}  // namespace mc3
