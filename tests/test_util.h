// Shared helpers for the MC3 test suite.
#pragma once

#include <unordered_set>
#include <vector>

#include "core/instance.h"
#include "core/property_set.h"
#include "util/rng.h"
#include "util/float_cmp.h"

namespace mc3::testing {

/// Shorthand: PS({1, 2, 3}).
inline PropertySet PS(std::initializer_list<PropertyId> ids) {
  return PropertySet::Of(ids);
}

/// Configuration for random instances used in property-based sweeps.
struct RandomInstanceConfig {
  size_t num_queries = 6;
  size_t pool = 8;             ///< property universe size
  size_t max_query_length = 3;
  int64_t cost_min = 1;
  int64_t cost_max = 20;
  /// Probability that a non-singleton classifier is priced at all;
  /// singletons are always priced (keeps instances feasible).
  double priced_probability = 0.8;
  /// Probability that a priced classifier gets weight zero.
  double zero_probability = 0.05;
};

/// Generates a random feasible instance (singleton classifiers always
/// priced). Deterministic per seed.
inline Instance RandomInstance(const RandomInstanceConfig& config,
                               uint64_t seed) {
  Rng rng(seed);
  Instance instance;
  std::unordered_set<PropertySet, PropertySetHash> seen;
  size_t guard = 0;
  while (instance.NumQueries() < config.num_queries &&
         ++guard < config.num_queries * 100) {
    const size_t len = static_cast<size_t>(
        rng.UniformInt(1, std::min(config.max_query_length, config.pool)));
    std::vector<PropertyId> props;
    std::unordered_set<PropertyId> used;
    while (props.size() < len) {
      const auto p = static_cast<PropertyId>(rng.UniformInt(0, config.pool - 1));
      if (used.insert(p).second) props.push_back(p);
    }
    PropertySet q = PropertySet::FromUnsorted(std::move(props));
    if (seen.insert(q).second) instance.AddQuery(std::move(q));
  }
  for (const PropertySet& q : instance.queries()) {
    ForEachNonEmptySubset(q, [&](const PropertySet& c) {
      if (!IsInfiniteCost(instance.CostOf(c))) return;
      if (c.size() > 1 && !rng.Bernoulli(config.priced_probability)) return;
      Cost cost = static_cast<Cost>(
          rng.UniformInt(config.cost_min, config.cost_max));
      if (rng.Bernoulli(config.zero_probability)) cost = 0;
      instance.SetCost(c, cost);
    });
  }
  return instance;
}

/// Exact optimum by exhaustive branching, independent of the library's
/// solvers — the oracle of the differential test suite. Branches on the
/// first (query, property) pair not yet covered, trying every priced
/// classifier that covers it (a subset of the query containing the
/// property); each level selects a new classifier, so the recursion depth
/// is bounded by the number of priced classifiers. Exponential: keep
/// instances tiny (n <= 8, pool <= 8).
///
/// Returns kInfiniteCost when no finite-cost cover exists.
inline Cost BruteForceOptimum(const Instance& instance) {
  // Priced classifiers, deduplicated (selected ones are reused for free).
  std::vector<const PropertySet*> classifiers;
  std::vector<Cost> costs;
  // mc3-lint: unordered-ok(only the optimal cost is returned; order-free)
  for (const auto& [classifier, cost] : instance.costs()) {
    classifiers.push_back(&classifier);
    costs.push_back(cost);
  }
  std::vector<bool> selected(classifiers.size(), false);
  Cost best = kInfiniteCost;

  // First query with an uncovered property under the current selection,
  // and that property.
  struct Uncovered {
    size_t query = 0;
    PropertyId property = 0;
    bool found = false;
  };
  auto first_uncovered = [&]() {
    Uncovered result;
    for (size_t qi = 0; qi < instance.NumQueries() && !result.found; ++qi) {
      const PropertySet& q = instance.queries()[qi];
      for (PropertyId p : q) {
        bool covered = false;
        for (size_t ci = 0; ci < classifiers.size() && !covered; ++ci) {
          covered = selected[ci] && classifiers[ci]->Contains(p) &&
                    classifiers[ci]->IsSubsetOf(q);
        }
        if (!covered) {
          result = {qi, p, true};
          break;
        }
      }
    }
    return result;
  };

  auto search = [&](auto&& self, Cost spent) -> void {
    if (spent >= best) return;  // cost-bound pruning
    const Uncovered gap = first_uncovered();
    if (!gap.found) {
      best = spent;
      return;
    }
    const PropertySet& q = instance.queries()[gap.query];
    for (size_t ci = 0; ci < classifiers.size(); ++ci) {
      if (selected[ci] || !classifiers[ci]->Contains(gap.property) ||
          !classifiers[ci]->IsSubsetOf(q) || IsInfiniteCost(costs[ci])) {
        continue;
      }
      selected[ci] = true;
      self(self, spent + costs[ci]);
      selected[ci] = false;
    }
  };
  search(search, 0);
  return best;
}

/// The running example of the paper (Example 1.1): two soccer-shirt queries
/// with costs C:5, A:5, J:5, W:1, AC:3, AW:5, AJ:3, JW:4, JAW:5. The optimal
/// solution is {AC, AJ, W} at cost 7.
inline Instance PaperExample() {
  InstanceBuilder b;
  b.AddQuery({"juventus", "white", "adidas"});
  b.AddQuery({"chelsea", "adidas"});
  b.SetCost({"chelsea"}, 5);
  b.SetCost({"adidas"}, 5);
  b.SetCost({"juventus"}, 5);
  b.SetCost({"white"}, 1);
  b.SetCost({"adidas", "chelsea"}, 3);
  b.SetCost({"adidas", "white"}, 5);
  b.SetCost({"adidas", "juventus"}, 3);
  b.SetCost({"juventus", "white"}, 4);
  b.SetCost({"juventus", "adidas", "white"}, 5);
  return std::move(b).Build();
}

}  // namespace mc3::testing

