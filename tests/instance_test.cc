#include "core/instance.h"

#include <gtest/gtest.h>

#include <set>

#include "tests/test_util.h"
#include "util/float_cmp.h"

namespace mc3 {
namespace {

using testing::PS;

TEST(InstanceTest, CostDefaultsToInfinity) {
  Instance inst;
  EXPECT_EQ(inst.CostOf(PS({1})), kInfiniteCost);
}

TEST(InstanceTest, SetAndGetCost) {
  Instance inst;
  inst.SetCost(PS({1, 2}), 3.5);
  EXPECT_EQ(inst.CostOf(PS({2, 1})), 3.5);
}

TEST(InstanceTest, SettingInfiniteErases) {
  Instance inst;
  inst.SetCost(PS({1}), 4);
  inst.SetCost(PS({1}), kInfiniteCost);
  EXPECT_EQ(inst.costs().size(), 0u);
  EXPECT_EQ(inst.CostOf(PS({1})), kInfiniteCost);
}

TEST(InstanceTest, MaxQueryLength) {
  Instance inst;
  EXPECT_EQ(inst.MaxQueryLength(), 0u);
  inst.AddQuery(PS({1}));
  inst.AddQuery(PS({1, 2, 3}));
  EXPECT_EQ(inst.MaxQueryLength(), 3u);
}

TEST(InstanceTest, NumProperties) {
  Instance inst;
  inst.AddQuery(PS({1, 2}));
  inst.AddQuery(PS({2, 3}));
  EXPECT_EQ(inst.NumProperties(), 3u);
}

TEST(InstanceTest, IncidenceMatchesPaperExample) {
  // Q = {xy, yz}: I(y) = 2, all others 1 (Section 5 example).
  Instance inst;
  inst.AddQuery(PS({0, 1}));  // xy
  inst.AddQuery(PS({1, 2}));  // yz
  for (const PropertySet& c :
       {PS({0}), PS({1}), PS({2}), PS({0, 1}), PS({1, 2})}) {
    inst.SetCost(c, 1);
  }
  EXPECT_EQ(inst.Incidence(), 2u);
}

TEST(InstanceTest, IncidenceIgnoresUnpricedClassifiers) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.AddQuery(PS({1, 2}));
  inst.SetCost(PS({0}), 1);  // only X is priced; I(X) = 1
  EXPECT_EQ(inst.Incidence(), 1u);
}

TEST(InstanceTest, ValidateAcceptsWellFormed) {
  Instance inst;
  inst.AddQuery(PS({1, 2}));
  inst.SetCost(PS({1}), 1);
  inst.SetCost(PS({1, 2}), 2);
  EXPECT_TRUE(inst.Validate().ok());
}

TEST(InstanceTest, ValidateRejectsEmptyQuery) {
  Instance inst;
  inst.AddQuery(PropertySet());
  EXPECT_EQ(inst.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(InstanceTest, ValidateRejectsDuplicateQueries) {
  Instance inst;
  inst.AddQuery(PS({1, 2}));
  inst.AddQuery(PS({2, 1}));
  EXPECT_EQ(inst.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(InstanceTest, ValidateRejectsIrrelevantClassifier) {
  // XZ is not a subset of any query, so it is not in C_Q (Section 2.1).
  Instance inst;
  inst.AddQuery(PS({0, 1}));  // xy
  inst.AddQuery(PS({2, 3}));  // zu
  inst.SetCost(PS({0, 2}), 1);
  EXPECT_EQ(inst.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(InstanceTest, ValidateRejectsNegativeCost) {
  Instance inst;
  inst.AddQuery(PS({1}));
  inst.SetCost(PS({1}), -1);
  EXPECT_EQ(inst.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(InstanceTest, FeasibleWithSingletons) {
  Instance inst;
  inst.AddQuery(PS({1, 2}));
  inst.SetCost(PS({1}), 1);
  inst.SetCost(PS({2}), 1);
  EXPECT_TRUE(inst.IsFeasible());
}

TEST(InstanceTest, FeasibleWithPairOnly) {
  Instance inst;
  inst.AddQuery(PS({1, 2}));
  inst.SetCost(PS({1, 2}), 1);
  EXPECT_TRUE(inst.IsFeasible());
}

TEST(InstanceTest, InfeasibleWhenPropertyUncoverable) {
  Instance inst;
  inst.AddQuery(PS({1, 2}));
  inst.SetCost(PS({1}), 1);  // nothing covers property 2
  EXPECT_FALSE(inst.IsFeasible());
}

TEST(ForEachNonEmptySubsetTest, EnumeratesAll) {
  std::set<std::vector<PropertyId>> seen;
  ForEachNonEmptySubset(PS({1, 2, 3}), [&](const PropertySet& s) {
    seen.insert(s.ids());
  });
  EXPECT_EQ(seen.size(), 7u);  // 2^3 - 1
  EXPECT_TRUE(seen.count({1}));
  EXPECT_TRUE(seen.count({1, 3}));
  EXPECT_TRUE(seen.count({1, 2, 3}));
}

TEST(ForEachNonEmptySubsetTest, SingletonHasOneSubset) {
  int count = 0;
  ForEachNonEmptySubset(PS({5}), [&](const PropertySet& s) {
    ++count;
    EXPECT_EQ(s, PS({5}));
  });
  EXPECT_EQ(count, 1);
}

TEST(InstanceBuilderTest, InternsNames) {
  InstanceBuilder b;
  const PropertyId a1 = b.Intern("adidas");
  const PropertyId a2 = b.Intern("adidas");
  const PropertyId j = b.Intern("juventus");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, j);
}

TEST(InstanceBuilderTest, BuildsExampleInstance) {
  InstanceBuilder b;
  b.AddQuery({"juventus", "white", "adidas"});
  b.AddQuery({"chelsea", "adidas"});
  b.SetCost({"adidas"}, 5);
  b.SetCost({"adidas", "chelsea"}, 3);
  const Instance inst = std::move(b).Build();
  EXPECT_EQ(inst.NumQueries(), 2u);
  EXPECT_EQ(inst.MaxQueryLength(), 3u);
  EXPECT_EQ(inst.NumProperties(), 4u);
  EXPECT_TRUE(inst.Validate().ok());
  EXPECT_EQ(inst.property_names().size(), 4u);
}

TEST(InstanceBuilderTest, PriceAllClassifiersPricesCq) {
  InstanceBuilder b;
  b.AddQuery({"x", "y"});
  b.AddQuery({"y", "z"});
  b.PriceAllClassifiers([](const PropertySet& c) {
    return static_cast<Cost>(c.size());
  });
  const Instance priced = std::move(b).Build();
  // C_Q = {X, Y, Z, XY, YZ} — five classifiers.
  EXPECT_EQ(priced.costs().size(), 5u);
  EXPECT_TRUE(priced.Validate().ok());
  EXPECT_TRUE(priced.IsFeasible());
}

TEST(InstanceBuilderTest, PriceAllKeepsExistingPrices) {
  InstanceBuilder b;
  b.AddQuery({"x", "y"});
  b.SetCost({"x"}, 100);
  b.PriceAllClassifiers([](const PropertySet&) { return Cost{1}; });
  const Instance inst = std::move(b).Build();
  // The explicit price survives; everything else got the default.
  Cost x_cost = kInfiniteCost;
  // mc3-lint: unordered-ok(searching for one key; order-independent)
  for (const auto& [c, cost] : inst.costs()) {
    if (c.size() == 1 && ApproxEq(cost, 100)) x_cost = cost;
  }
  EXPECT_EQ(x_cost, 100);
}

}  // namespace
}  // namespace mc3
