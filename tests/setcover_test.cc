#include <gtest/gtest.h>

#include <cmath>

#include "setcover/greedy.h"
#include "setcover/instance.h"
#include "setcover/lp_rounding.h"
#include "setcover/primal_dual.h"
#include "util/rng.h"

namespace mc3::setcover {
namespace {

WscInstance MakeInstance(ElementId num_elements,
                         std::vector<std::pair<std::vector<ElementId>, double>>
                             sets) {
  WscInstance inst;
  inst.num_elements = num_elements;
  for (auto& [elements, cost] : sets) {
    inst.sets.push_back(WscSet{std::move(elements), cost});
  }
  return inst;
}

/// Brute-force optimum for cross-checks (up to ~15 sets).
double BruteForceOpt(const WscInstance& inst) {
  double best = std::numeric_limits<double>::infinity();
  const size_t m = inst.sets.size();
  for (uint32_t mask = 0; mask < (1u << m); ++mask) {
    std::vector<bool> covered(inst.num_elements, false);
    double cost = 0;
    for (size_t i = 0; i < m; ++i) {
      if (mask & (1u << i)) {
        cost += inst.sets[i].cost;
        for (ElementId e : inst.sets[i].elements) covered[e] = true;
      }
    }
    bool all = true;
    for (bool b : covered) all = all && b;
    if (all) best = std::min(best, cost);
  }
  return best;
}

WscInstance RandomWsc(uint64_t seed, int max_sets = 10) {
  Rng rng(seed);
  WscInstance inst;
  inst.num_elements = 1 + static_cast<ElementId>(rng.UniformInt(0, 7));
  const int m = 1 + static_cast<int>(rng.UniformInt(0, max_sets - 1));
  for (int i = 0; i < m; ++i) {
    WscSet s;
    for (ElementId e = 0; e < inst.num_elements; ++e) {
      if (rng.Bernoulli(0.45)) s.elements.push_back(e);
    }
    s.cost = static_cast<double>(rng.UniformInt(0, 12));
    if (!s.elements.empty()) inst.sets.push_back(std::move(s));
  }
  // Guarantee feasibility with one expensive full set.
  WscSet full;
  for (ElementId e = 0; e < inst.num_elements; ++e) full.elements.push_back(e);
  full.cost = 30;
  inst.sets.push_back(std::move(full));
  return inst;
}

TEST(WscInstanceTest, ValidateAcceptsGood) {
  const auto inst = MakeInstance(3, {{{0, 1}, 1.0}, {{2}, 2.0}});
  EXPECT_TRUE(ValidateWsc(inst).ok());
}

TEST(WscInstanceTest, ValidateRejectsUnsorted) {
  const auto inst = MakeInstance(3, {{{1, 0}, 1.0}});
  EXPECT_FALSE(ValidateWsc(inst).ok());
}

TEST(WscInstanceTest, ValidateRejectsOutOfRange) {
  const auto inst = MakeInstance(2, {{{0, 5}, 1.0}});
  EXPECT_FALSE(ValidateWsc(inst).ok());
}

TEST(WscInstanceTest, FrequencyAndDegree) {
  const auto inst =
      MakeInstance(3, {{{0, 1}, 1.0}, {{0, 2}, 1.0}, {{0}, 1.0}});
  EXPECT_EQ(WscFrequency(inst), 3);  // element 0 in three sets
  EXPECT_EQ(WscDegree(inst), 2);
}

TEST(WscInstanceTest, FrequencyIgnoresInfiniteCostSets) {
  auto inst = MakeInstance(1, {{{0}, 1.0}, {{0}, 1.0}});
  inst.sets[1].cost = std::numeric_limits<double>::infinity();
  EXPECT_EQ(WscFrequency(inst), 1);
}

TEST(WscInstanceTest, CoversChecksUnion) {
  const auto inst = MakeInstance(3, {{{0, 1}, 1.0}, {{2}, 1.0}});
  WscSolution sol;
  sol.selected = {0, 1};
  EXPECT_TRUE(WscCovers(inst, sol));
  sol.selected = {0};
  EXPECT_FALSE(WscCovers(inst, sol));
}

TEST(GreedyTest, PicksBestRatio) {
  // Set {0,1,2} at cost 3 (ratio 1) vs singletons at cost 0.5 (ratio 2).
  const auto inst = MakeInstance(
      3, {{{0, 1, 2}, 3.0}, {{0}, 0.5}, {{1}, 0.5}, {{2}, 0.5}});
  auto sol = SolveGreedy(inst);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->cost, 1.5);
  EXPECT_EQ(sol->selected.size(), 3u);
}

TEST(GreedyTest, ZeroCostSetsSelectedFirst) {
  const auto inst = MakeInstance(2, {{{0}, 0.0}, {{0, 1}, 5.0}, {{1}, 1.0}});
  auto sol = SolveGreedy(inst);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->cost, 1.0);
}

TEST(GreedyTest, InfeasibleReported) {
  const auto inst = MakeInstance(2, {{{0}, 1.0}});
  auto sol = SolveGreedy(inst);
  EXPECT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
}

TEST(GreedyTest, InfiniteCostSetUnusable) {
  auto inst = MakeInstance(1, {{{0}, 1.0}});
  inst.sets[0].cost = std::numeric_limits<double>::infinity();
  auto sol = SolveGreedy(inst);
  EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
}

TEST(GreedyTest, EmptyInstanceIsTriviallyCovered) {
  WscInstance inst;
  auto sol = SolveGreedy(inst);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->cost, 0);
}

class GreedyEquivalenceTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, GreedyEquivalenceTest,
                         ::testing::Range(0, 30));

TEST_P(GreedyEquivalenceTest, LazyHeapMatchesNaive) {
  const WscInstance inst = RandomWsc(GetParam() * 31 + 5);
  auto lazy = SolveGreedy(inst);
  auto naive = SolveGreedyNaive(inst);
  ASSERT_TRUE(lazy.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(lazy->selected, naive->selected);
  EXPECT_DOUBLE_EQ(lazy->cost, naive->cost);
}

class GreedyBoundTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, GreedyBoundTest, ::testing::Range(0, 25));

TEST_P(GreedyBoundTest, WithinHarmonicFactorOfOptimum) {
  const WscInstance inst = RandomWsc(GetParam() * 17 + 3);
  const double opt = BruteForceOpt(inst);
  auto sol = SolveGreedy(inst);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(WscCovers(inst, *sol));
  const int degree = WscDegree(inst);
  double harmonic = 0;
  for (int i = 1; i <= degree; ++i) harmonic += 1.0 / i;
  EXPECT_LE(sol->cost, harmonic * opt + 1e-9);
}

TEST(PrimalDualTest, SimpleInstance) {
  const auto inst = MakeInstance(2, {{{0, 1}, 1.0}, {{0}, 1.0}, {{1}, 1.0}});
  auto sol = SolvePrimalDual(inst);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(WscCovers(inst, *sol));
  // Element 0's dual raise makes both {0,1} and {0} tight, and the scheme
  // selects every tight set: cost 2 = f * OPT, the worst case of the
  // guarantee.
  EXPECT_DOUBLE_EQ(sol->cost, 2.0);
}

TEST(PrimalDualTest, InfeasibleReported) {
  const auto inst = MakeInstance(2, {{{0}, 1.0}});
  auto sol = SolvePrimalDual(inst);
  EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
}

class PrimalDualBoundTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, PrimalDualBoundTest, ::testing::Range(0, 25));

TEST_P(PrimalDualBoundTest, WithinFrequencyFactorOfOptimum) {
  const WscInstance inst = RandomWsc(GetParam() * 13 + 7);
  const double opt = BruteForceOpt(inst);
  auto sol = SolvePrimalDual(inst);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(WscCovers(inst, *sol));
  EXPECT_LE(sol->cost, WscFrequency(inst) * opt + 1e-9);
}

TEST(LpRoundingTest, SimpleInstance) {
  const auto inst = MakeInstance(2, {{{0, 1}, 1.0}, {{0}, 3.0}, {{1}, 3.0}});
  auto sol = SolveLpRounding(inst);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(WscCovers(inst, *sol));
  EXPECT_DOUBLE_EQ(sol->cost, 1.0);
}

class LpRoundingBoundTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, LpRoundingBoundTest, ::testing::Range(0, 20));

TEST_P(LpRoundingBoundTest, WithinFrequencyFactorOfOptimum) {
  const WscInstance inst = RandomWsc(GetParam() * 29 + 11, /*max_sets=*/8);
  const double opt = BruteForceOpt(inst);
  auto sol = SolveLpRounding(inst);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_TRUE(WscCovers(inst, *sol));
  EXPECT_LE(sol->cost, WscFrequency(inst) * opt + 1e-6);
}

TEST_P(LpRoundingBoundTest, LpLowerBoundBelowOptimum) {
  const WscInstance inst = RandomWsc(GetParam() * 37 + 1, /*max_sets=*/8);
  const double opt = BruteForceOpt(inst);
  auto bound = SetCoverLpLowerBound(inst);
  ASSERT_TRUE(bound.ok());
  EXPECT_LE(*bound, opt + 1e-6);
}

TEST(PruneRedundantTest, DropsSubsumedSet) {
  const auto inst =
      MakeInstance(2, {{{0, 1}, 2.0}, {{0}, 1.0}, {{1}, 1.0}});
  WscSolution sol;
  sol.selected = {0, 1, 2};
  sol.cost = 4.0;
  const WscSolution pruned = PruneRedundantSets(inst, sol);
  EXPECT_TRUE(WscCovers(inst, pruned));
  EXPECT_LE(pruned.cost, sol.cost);
  // The most expensive redundancy (the pair set) goes first, leaving the
  // two singletons.
  EXPECT_EQ(pruned.selected.size(), 2u);
  EXPECT_DOUBLE_EQ(pruned.cost, 2.0);
}

TEST(PruneRedundantTest, NoOpWhenTight) {
  const auto inst = MakeInstance(2, {{{0}, 1.0}, {{1}, 1.0}});
  WscSolution sol;
  sol.selected = {0, 1};
  sol.cost = 2.0;
  const WscSolution pruned = PruneRedundantSets(inst, sol);
  EXPECT_EQ(pruned.selected.size(), 2u);
}

}  // namespace
}  // namespace mc3::setcover
