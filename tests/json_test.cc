// Edge-case coverage for the obs/json.h parser: escape sequences (\uXXXX,
// backslash, quote), nesting depth limits, exotic numbers (exponents,
// negative zero), trailing-garbage rejection — each round-tripped through
// the writer where a faithful re-rendering exists.
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace mc3 {
namespace {

using obs::JsonValue;
using obs::JsonWriter;
using obs::ParseJson;

TEST(JsonParserTest, UnicodeEscapesDecodeToUtf8) {
  // Backslash-u escapes covering one-, two- and three-byte UTF-8 targets
  // plus a control character: A, e-acute, the euro sign, SOH.
  const std::string input =
    "{\"s\": \"\\u0041\\u00e9\\u20ac\\u0001\"}";
  auto parsed = ParseJson(input);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* s = parsed->Find("s");
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->is_string());
  EXPECT_EQ(s->string,
            "A"
            "\xC3\xA9"
            "\xE2\x82\xAC"
            "\x01");
}

TEST(JsonParserTest, BackslashAndQuoteEscapes) {
  auto parsed = ParseJson(R"({"s": "a\\b\"c\/d\n\t\r\f\b"})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* s = parsed->Find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->string, "a\\b\"c/d\n\t\r\f\b");
}

TEST(JsonParserTest, InvalidEscapesRejected) {
  EXPECT_FALSE(ParseJson(R"({"s": "\q"})").ok());
  EXPECT_FALSE(ParseJson(R"({"s": "\u12"})").ok());     // truncated hex
  EXPECT_FALSE(ParseJson(R"({"s": "\u12zz"})").ok());   // non-hex digits
  EXPECT_FALSE(ParseJson("{\"s\": \"unterminated").ok());
}

TEST(JsonParserTest, EscapeRoundTripThroughWriter) {
  const std::string original =
      "quote \" backslash \\ newline \n tab \t control \x01 "
      "euro \xE2\x82\xAC";
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("s").String(original);
  writer.EndObject();
  auto parsed = ParseJson(writer.Take());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("s")->string, original);
}

TEST(JsonParserTest, DeepNestingWithinLimitParses) {
  // 32 nested arrays: well inside the parser's depth budget.
  std::string deep;
  for (int i = 0; i < 32; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 32; ++i) deep += "]";
  auto parsed = ParseJson(deep);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* v = &*parsed;
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(v->is_array());
    ASSERT_EQ(v->array.size(), 1u);
    v = &v->array[0];
  }
  EXPECT_TRUE(v->is_number());
  EXPECT_EQ(v->number, 1);
}

TEST(JsonParserTest, ExcessiveNestingRejected) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 200; ++i) deep += "]";
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonParserTest, ExponentAndNegativeZeroNumbers) {
  auto parsed = ParseJson(
      R"({"e": 1.5e3, "E": 2E-2, "nz": -0.0, "neg": -17, "frac": 0.125})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("e")->number, 1500.0);
  EXPECT_EQ(parsed->Find("E")->number, 0.02);
  const double nz = parsed->Find("nz")->number;
  EXPECT_EQ(nz, 0.0);
  EXPECT_TRUE(std::signbit(nz));
  EXPECT_EQ(parsed->Find("neg")->number, -17.0);
  EXPECT_EQ(parsed->Find("frac")->number, 0.125);
}

TEST(JsonParserTest, NumberRoundTripThroughWriter) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("e").Number(1.5e3);
  writer.Key("small").Number(0.02);
  writer.Key("neg").Number(-17);
  writer.EndObject();
  auto parsed = ParseJson(writer.Take());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("e")->number, 1500.0);
  EXPECT_EQ(parsed->Find("small")->number, 0.02);
  EXPECT_EQ(parsed->Find("neg")->number, -17.0);
}

// The writer emits the SHORTEST decimal string that parses back to the
// exact same double. Snapshot byte-stability (docs/durability.md) builds
// on this: render o parse o render must be the identity, so the number
// formatting may not vary by magnitude or add spurious digits.
TEST(JsonWriterTest, NumbersRenderShortestRoundTrippableForm) {
  auto render = [](double v) {
    JsonWriter writer(/*compact=*/true);
    writer.BeginObject();
    writer.Key("v").Number(v);
    writer.EndObject();
    const std::string json = writer.Take();  // {"v":<digits>}
    return json.substr(5, json.size() - 6);
  };
  EXPECT_EQ(render(0.0), "0");
  EXPECT_EQ(render(5.0), "5");
  EXPECT_EQ(render(-2.5), "-2.5");
  EXPECT_EQ(render(0.1), "0.1");
  EXPECT_EQ(render(1.0 / 3.0), "0.3333333333333333");
  EXPECT_EQ(render(1e300), "1e+300");
  EXPECT_EQ(render(999999999999999.0), "999999999999999");
  EXPECT_EQ(render(9007199254740992.0), "9007199254740992");  // 2^53

  // Shortest-form rendering is exact: whatever the double, parsing the
  // rendered text recovers the identical value, and re-rendering the
  // parsed value reproduces the identical bytes.
  for (const double v : {0.1, 2.0 / 7.0, -1.2345678901234567e-8, 6.02214076e23,
                         1.7976931348623157e308, 5e-324}) {
    const std::string first = render(v);
    auto parsed = ParseJson(first);
    ASSERT_TRUE(parsed.ok()) << first;
    EXPECT_EQ(parsed->number, v) << first;
    EXPECT_EQ(render(parsed->number), first);
  }
}

TEST(JsonParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseJson("{} extra").ok());
  EXPECT_FALSE(ParseJson("[1, 2] []").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
  EXPECT_FALSE(ParseJson("{}{}").ok());
  // Trailing whitespace is NOT garbage.
  EXPECT_TRUE(ParseJson("{}  \n\t ").ok());
}

// Compact mode backs the serving wire protocol (src/server/protocol.h):
// one request/response object per line, so the writer must never emit a
// newline or any inter-token whitespace.
TEST(JsonWriterTest, CompactModeIsSingleLineWithoutWhitespace) {
  JsonWriter writer(/*compact=*/true);
  writer.BeginObject();
  writer.Key("op").String("solve");
  writer.Key("id").Int(7);
  writer.Key("nested").BeginObject();
  writer.Key("ok").Bool(true);
  writer.EndObject();
  writer.Key("list").BeginArray();
  writer.Number(1.5);
  writer.Null();
  writer.EndArray();
  writer.EndObject();
  const std::string out = writer.Take();
  EXPECT_EQ(out,
            R"({"op":"solve","id":7,"nested":{"ok":true},"list":[1.5,null]})");
  EXPECT_EQ(out.find('\n'), std::string::npos);
  EXPECT_EQ(out.find(' '), std::string::npos);
}

TEST(JsonWriterTest, CompactAndPrettyParseToTheSameDocument) {
  auto build = [](bool compact) {
    JsonWriter writer(compact);
    writer.BeginObject();
    writer.Key("a").BeginArray();
    writer.Int(1);
    writer.Int(2);
    writer.EndArray();
    writer.Key("b").String("x y");
    writer.EndObject();
    return writer.Take();
  };
  const std::string compact = build(true);
  const std::string pretty = build(false);
  EXPECT_LT(compact.size(), pretty.size());
  auto a = ParseJson(compact);
  auto b = ParseJson(pretty);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->Find("b")->string, "x y");
  EXPECT_EQ(b->Find("b")->string, "x y");
  ASSERT_EQ(a->Find("a")->array.size(), 2u);
  EXPECT_EQ(b->Find("a")->array.size(), 2u);
}

TEST(JsonParserTest, MalformedStructuresRejected) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("{\"a\": 1,}").ok());
  EXPECT_FALSE(ParseJson("{1: 2}").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
}

}  // namespace
}  // namespace mc3
