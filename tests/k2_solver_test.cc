#include "core/k2_solver.h"

#include <gtest/gtest.h>

#include "core/exact_solver.h"
#include "tests/test_util.h"

namespace mc3 {
namespace {

using testing::PS;
using testing::RandomInstance;
using testing::RandomInstanceConfig;

TEST(K2SolverTest, RejectsLongQueries) {
  Instance inst;
  inst.AddQuery(PS({0, 1, 2}));
  const K2ExactSolver solver;
  auto result = solver.Solve(inst);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(K2SolverTest, SingleQueryPicksCheaperOption) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 2);
  inst.SetCost(PS({1}), 2);
  inst.SetCost(PS({0, 1}), 3);
  const K2ExactSolver solver;
  auto result = solver.Solve(inst);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->cost, 3);
  EXPECT_TRUE(result->solution.Contains(PS({0, 1})));
}

TEST(K2SolverTest, SharedSingletonAmortizes) {
  // Queries xy, xz: X (cost 2) shared; pairs cost 3 each; Y, Z cost 1.
  // Best: X + Y + Z = 4 < XY + XZ = 6.
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.AddQuery(PS({0, 2}));
  inst.SetCost(PS({0}), 2);
  inst.SetCost(PS({1}), 1);
  inst.SetCost(PS({2}), 1);
  inst.SetCost(PS({0, 1}), 3);
  inst.SetCost(PS({0, 2}), 3);
  const K2ExactSolver solver;
  auto result = solver.Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 4);
}

TEST(K2SolverTest, SingletonQueriesHandled) {
  Instance inst;
  inst.AddQuery(PS({0}));
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 1);
  inst.SetCost(PS({1}), 5);
  inst.SetCost(PS({0, 1}), 2);
  const K2ExactSolver solver;
  auto result = solver.Solve(inst);
  ASSERT_TRUE(result.ok());
  // X forced (cost 1); then xy best covered by XY (2) vs Y (5).
  EXPECT_EQ(result->cost, 3);
}

TEST(K2SolverTest, MissingPairClassifierFallsBackToSingletons) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 2);
  inst.SetCost(PS({1}), 3);
  const K2ExactSolver solver;
  auto result = solver.Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 5);
}

TEST(K2SolverTest, MissingSingletonsFallsBackToPair) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0, 1}), 9);
  const K2ExactSolver solver;
  auto result = solver.Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 9);
}

TEST(K2SolverTest, InfeasibleInstance) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 1);
  const K2ExactSolver solver;
  auto result = solver.Solve(inst);
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(K2SolverTest, InfeasibleWithoutPreprocessing) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 1);
  SolverOptions options;
  options.preprocess = false;
  const K2ExactSolver solver(options);
  auto result = solver.Solve(inst);
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(K2SolverTest, ZeroCostClassifiers) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 0);
  inst.SetCost(PS({1}), 0);
  inst.SetCost(PS({0, 1}), 1);
  const K2ExactSolver solver;
  auto result = solver.Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 0);
}

TEST(K2SolverTest, DisconnectedComponentsSolvedIndependently) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.AddQuery(PS({2, 3}));
  inst.SetCost(PS({0}), 1);
  inst.SetCost(PS({1}), 1);
  inst.SetCost(PS({2, 3}), 1);
  inst.SetCost(PS({2}), 4);
  inst.SetCost(PS({3}), 4);
  const K2ExactSolver solver;
  auto result = solver.Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 3);
}

// The cross-check battery: exact optimality on random k <= 2 instances, for
// every max-flow engine, with and without preprocessing.
struct K2Sweep {
  int seed;
  bool preprocess;
  flow::MaxFlowAlgorithm algorithm;
};

class K2OptimalityTest : public ::testing::TestWithParam<K2Sweep> {};

std::vector<K2Sweep> MakeSweeps() {
  std::vector<K2Sweep> sweeps;
  for (int seed = 0; seed < 15; ++seed) {
    for (bool preprocess : {true, false}) {
      for (auto algorithm :
           {flow::MaxFlowAlgorithm::kDinic, flow::MaxFlowAlgorithm::kPushRelabel,
            flow::MaxFlowAlgorithm::kEdmondsKarp}) {
        sweeps.push_back({seed, preprocess, algorithm});
      }
    }
  }
  return sweeps;
}

INSTANTIATE_TEST_SUITE_P(Sweeps, K2OptimalityTest,
                         ::testing::ValuesIn(MakeSweeps()));

TEST_P(K2OptimalityTest, MatchesExactSolver) {
  const K2Sweep& sweep = GetParam();
  RandomInstanceConfig config;
  config.num_queries = 7;
  config.pool = 7;
  config.max_query_length = 2;
  const Instance inst = RandomInstance(config, sweep.seed * 997 + 11);

  SolverOptions options;
  options.preprocess = sweep.preprocess;
  options.max_flow = sweep.algorithm;
  const K2ExactSolver solver(options);
  auto result = solver.Solve(inst);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(Covers(inst, result->solution));

  auto exact = ExactSolver().Solve(inst);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_DOUBLE_EQ(result->cost, exact->cost)
      << "k=2 solver must be exact (Theorem 4.1)";
}

}  // namespace
}  // namespace mc3
