#include "core/solution.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mc3 {
namespace {

using testing::PS;

Instance TwoQueryInstance() {
  Instance inst;
  inst.AddQuery(PS({0, 1}));     // xy
  inst.AddQuery(PS({1, 2, 3}));  // yzw
  for (const PropertySet& c : {PS({0}), PS({1}), PS({2}), PS({3})}) {
    inst.SetCost(c, 2);
  }
  inst.SetCost(PS({0, 1}), 3);
  inst.SetCost(PS({2, 3}), 1);
  return inst;
}

TEST(SolutionTest, AddDeduplicates) {
  Solution s;
  EXPECT_TRUE(s.Add(PS({1, 2})));
  EXPECT_FALSE(s.Add(PS({2, 1})));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Contains(PS({1, 2})));
}

TEST(SolutionTest, MergeUnions) {
  Solution a;
  a.Add(PS({1}));
  Solution b;
  b.Add(PS({1}));
  b.Add(PS({2}));
  a.Merge(b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(SolutionTest, TotalCost) {
  const Instance inst = TwoQueryInstance();
  Solution s;
  s.Add(PS({0, 1}));
  s.Add(PS({2, 3}));
  EXPECT_EQ(s.TotalCost(inst), 4);
}

TEST(SolutionTest, TotalCostInfiniteForUnpriced) {
  const Instance inst = TwoQueryInstance();
  Solution s;
  s.Add(PS({1, 2}));  // not priced
  EXPECT_EQ(s.TotalCost(inst), kInfiniteCost);
}

TEST(SolutionTest, SortedIsCanonical) {
  Solution s;
  s.Add(PS({2}));
  s.Add(PS({1}));
  s.Add(PS({1, 2}));
  const auto sorted = s.Sorted();
  EXPECT_EQ(sorted[0], PS({1}));
  EXPECT_EQ(sorted[1], PS({1, 2}));
  EXPECT_EQ(sorted[2], PS({2}));
}

TEST(CoverageTest, PairClassifierCoversPairQuery) {
  const Instance inst = TwoQueryInstance();
  Solution s;
  s.Add(PS({0, 1}));
  s.Add(PS({1}));
  s.Add(PS({2, 3}));
  // Query 0 covered by XY; query 1 covered by Y + ZW.
  const CoverageReport report = VerifyCoverage(inst, s);
  EXPECT_TRUE(report.covers_all);
  EXPECT_TRUE(report.uncovered_queries.empty());
}

TEST(CoverageTest, DetectsUncovered) {
  const Instance inst = TwoQueryInstance();
  Solution s;
  s.Add(PS({0, 1}));
  s.Add(PS({2, 3}));  // query 1 misses property 1
  const CoverageReport report = VerifyCoverage(inst, s);
  EXPECT_FALSE(report.covers_all);
  ASSERT_EQ(report.uncovered_queries.size(), 1u);
  EXPECT_EQ(report.uncovered_queries[0], 1u);
}

TEST(CoverageTest, SupersetClassifierDoesNotCover) {
  // A classifier testing a strict superset of a query cannot be used for
  // it: union(T) must equal the query exactly.
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.AddQuery(PS({0, 1, 2}));
  inst.SetCost(PS({0, 1, 2}), 1);
  Solution s;
  s.Add(PS({0, 1, 2}));
  const CoverageReport report = VerifyCoverage(inst, s);
  EXPECT_FALSE(report.covers_all);
  ASSERT_EQ(report.uncovered_queries.size(), 1u);
  EXPECT_EQ(report.uncovered_queries[0], 0u);  // xy is not covered by XYZ
}

TEST(CoverageTest, OverlappingClassifiersCover) {
  Instance inst;
  inst.AddQuery(PS({0, 1, 2}));
  Solution s;
  s.Add(PS({0, 1}));
  s.Add(PS({1, 2}));
  EXPECT_TRUE(Covers(inst, s));
}

TEST(CoverageTest, WitnessesListSubsetClassifiers) {
  const Instance inst = TwoQueryInstance();
  Solution s;
  s.Add(PS({0, 1}));
  s.Add(PS({1}));
  s.Add(PS({2, 3}));
  const CoverageReport report = VerifyCoverage(inst, s);
  // Query 0's witnesses: XY and Y (both subsets of xy).
  EXPECT_EQ(report.witnesses[0].size(), 2u);
  // Query 1's witnesses: Y and ZW.
  EXPECT_EQ(report.witnesses[1].size(), 2u);
}

TEST(PruneUnusedTest, DropsRedundantClassifier) {
  const Instance inst = TwoQueryInstance();
  Solution s;
  s.Add(PS({0, 1}));
  s.Add(PS({1}));
  s.Add(PS({2, 3}));
  s.Add(PS({0}));  // never needed: XY covers query 0 cheaper than X+Y
  const Solution pruned = PruneUnusedClassifiers(inst, s);
  EXPECT_TRUE(Covers(inst, pruned));
  EXPECT_LE(pruned.TotalCost(inst), s.TotalCost(inst));
  EXPECT_FALSE(pruned.Contains(PS({0})));
}

TEST(PruneUnusedTest, KeepsEverythingWhenAllNeeded) {
  const Instance inst = TwoQueryInstance();
  Solution s;
  s.Add(PS({0, 1}));
  s.Add(PS({1}));
  s.Add(PS({2, 3}));
  const Solution pruned = PruneUnusedClassifiers(inst, s);
  EXPECT_EQ(pruned.size(), 3u);
}

TEST(PruneUnusedTest, NonCoveringSolutionReturnedUntouched) {
  const Instance inst = TwoQueryInstance();
  Solution s;
  s.Add(PS({0}));
  const Solution pruned = PruneUnusedClassifiers(inst, s);
  EXPECT_EQ(pruned.size(), 1u);
}

TEST(PruneUnusedTest, PrefersCheaperWitness) {
  // Both XY (cost 3) and {X, Y} (cost 4) are present; the witness should
  // keep the pair classifier and drop the singletons.
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 2);
  inst.SetCost(PS({1}), 2);
  inst.SetCost(PS({0, 1}), 3);
  Solution s;
  s.Add(PS({0}));
  s.Add(PS({1}));
  s.Add(PS({0, 1}));
  const Solution pruned = PruneUnusedClassifiers(inst, s);
  EXPECT_EQ(pruned.size(), 1u);
  EXPECT_TRUE(pruned.Contains(PS({0, 1})));
}

}  // namespace
}  // namespace mc3
