// Metamorphic testing of the serving engine: after any sequence of
// add/remove batches, the engine must be indistinguishable from a fresh
// engine (or batch solver) given the final live set — same cost, full
// coverage, consistent internal indexes. Covers sharded workloads (many
// small components), a giant single component, and k <= 2 instances where
// the per-component solver is exact.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/general_solver.h"
#include "core/k2_solver.h"
#include "online/churn.h"
#include "online/online_engine.h"
#include "tests/test_util.h"
#include "util/float_cmp.h"

namespace mc3 {
namespace {

using online::ChurnGenerator;
using online::EngineOptions;
using online::OnlineEngine;

/// Full metamorphic check of `engine` against a from-scratch batch solve of
/// its live instance with the same pipeline.
void CheckAgainstBatch(const OnlineEngine& engine, const std::string& label) {
  ASSERT_TRUE(engine.CheckInvariants().ok()) << label;
  const Instance live = engine.LiveInstance();
  const Solution maintained = engine.CurrentSolution();
  const CoverageReport coverage = VerifyCoverage(live, maintained);
  EXPECT_TRUE(coverage.covers_all)
      << label << ": " << coverage.uncovered_queries.size()
      << " live queries uncovered";

  SolverOptions options;  // defaults — identical to the engine's inner solve
  auto batch = GeneralSolver(options).Solve(live);
  ASSERT_TRUE(batch.ok()) << label << ": " << batch.status().ToString();
  EXPECT_DOUBLE_EQ(engine.TotalCost(), batch->cost) << label;
}

TEST(OnlineMetamorphicTest, ShardedChurnMatchesBatchEveryBatch) {
  online::ShardedSyntheticConfig config;
  config.num_domains = 6;
  config.domain.num_queries = 18;
  config.domain.seed = 11;
  const Instance base = online::GenerateShardedSynthetic(config);

  EngineOptions engine_options;
  engine_options.solver = EngineOptions::SolverKind::kGeneral;
  OnlineEngine engine(engine_options);
  ASSERT_TRUE(engine.Initialize(base).ok());
  CheckAgainstBatch(engine, "after initialize");

  ChurnGenerator churn(base, /*seed=*/3);
  for (int b = 0; b < 12; ++b) {
    const ChurnGenerator::Batch batch = churn.Next(/*adds=*/4, /*removes=*/7);
    auto stats = engine.ApplyUpdate(batch.add, batch.remove);
    ASSERT_TRUE(stats.ok()) << "batch " << b << ": "
                            << stats.status().ToString();
    CheckAgainstBatch(engine, "batch " + std::to_string(b));
  }
}

TEST(OnlineMetamorphicTest, GiantComponentChurn) {
  // A hub property shared by every query keeps the whole live set one
  // component, so each update repartitions and re-solves everything — the
  // engine's worst case must still match the batch solver.
  constexpr PropertyId kHub = 0;
  Instance base;
  mc3::testing::RandomInstanceConfig config;
  config.num_queries = 14;
  config.pool = 6;
  config.max_query_length = 2;
  const Instance raw = mc3::testing::RandomInstance(config, /*seed=*/5);
  for (const PropertySet& q : raw.queries()) {
    std::vector<PropertyId> props(q.begin(), q.end());
    for (PropertyId& p : props) ++p;  // make room for the hub id
    props.push_back(kHub);
    base.AddQuery(PropertySet::FromUnsorted(std::move(props)));
  }
  for (const PropertySet& q : base.queries()) {
    ForEachNonEmptySubset(q, [&](const PropertySet& c) {
      if (IsInfiniteCost(base.CostOf(c))) {
        base.SetCost(c, 1 + static_cast<Cost>(c.size()));
      }
    });
  }

  OnlineEngine engine;  // kAuto
  ASSERT_TRUE(engine.Initialize(base).ok());
  EXPECT_EQ(engine.NumComponents(), 1u);
  CheckAgainstBatch(engine, "giant after initialize");

  ChurnGenerator churn(base, /*seed=*/7);
  for (int b = 0; b < 10; ++b) {
    const ChurnGenerator::Batch batch = churn.Next(/*adds=*/3, /*removes=*/4);
    auto stats = engine.ApplyUpdate(batch.add, batch.remove);
    ASSERT_TRUE(stats.ok()) << "batch " << b;
    CheckAgainstBatch(engine, "giant batch " + std::to_string(b));
    ASSERT_LE(engine.NumComponents(), 1u) << "batch " << b;
  }
}

TEST(OnlineMetamorphicTest, K2ChurnStaysExact) {
  // On k <= 2 instances the engine's per-component solver is exact, so the
  // maintained cost must equal the independent brute-force optimum of the
  // live instance — a stronger oracle than batch-solve equality.
  mc3::testing::RandomInstanceConfig config;
  config.num_queries = 10;
  config.pool = 8;
  config.max_query_length = 2;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const Instance base = mc3::testing::RandomInstance(config, seed);
    OnlineEngine engine;  // kAuto -> k2-exact per component
    ASSERT_TRUE(engine.Initialize(base).ok()) << "seed " << seed;
    ChurnGenerator churn(base, seed);
    for (int b = 0; b < 6; ++b) {
      const ChurnGenerator::Batch batch = churn.Next(2, 3);
      auto stats = engine.ApplyUpdate(batch.add, batch.remove);
      ASSERT_TRUE(stats.ok()) << "seed " << seed << " batch " << b;
      ASSERT_TRUE(engine.CheckInvariants().ok())
          << "seed " << seed << " batch " << b;
      const Cost optimum =
          mc3::testing::BruteForceOptimum(engine.LiveInstance());
      EXPECT_DOUBLE_EQ(engine.TotalCost(), optimum)
          << "seed " << seed << " batch " << b;
    }
  }
}

}  // namespace
}  // namespace mc3
