// Durability subsystem tests (docs/durability.md): WAL framing and
// recovery semantics — append/scan round trips, torn-tail truncation, CRC
// rejection, group commit, rotation and the sequence-number contract — and
// snapshot render/parse/publish plus full DurabilityManager recovery
// equivalence (snapshot + WAL tail reproduces the live engine exactly).
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/instance.h"
#include "durability/durability.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "online/online_engine.h"
#include "online/sharded_engine.h"
#include "tests/test_util.h"

namespace mc3::durability {
namespace {

namespace fs = std::filesystem;
using mc3::testing::PaperExample;
using online::OnlineEngine;

/// Fresh per-test scratch directory, removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const char* tag)
      : path(::testing::TempDir() + "/mc3_durability_" + tag + "_" +
             std::to_string(reinterpret_cast<uintptr_t>(this))) {
    fs::remove_all(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

WalOptions ImmediateSync() {
  WalOptions options;
  options.sync = WalOptions::SyncPolicy::kImmediate;
  return options;
}

Result<std::unique_ptr<WalWriter>> OpenImmediate(const std::string& dir) {
  return WalWriter::Open(dir, ImmediateSync());
}

/// Appends `payloads` in order, expecting sequence numbers to continue
/// from the writer's current tail.
void AppendAll(WalWriter* writer, const std::vector<std::string>& payloads) {
  uint64_t expected = writer->Stats().last_seq;
  for (const std::string& payload : payloads) {
    auto seq = writer->Append(payload);
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    EXPECT_EQ(*seq, ++expected);
  }
}

/// Truncates the file by `bytes` (crash-mid-write simulation).
void Chop(const std::string& path, uint64_t bytes) {
  const uint64_t size = fs::file_size(path);
  ASSERT_GT(size, bytes);
  fs::resize_file(path, size - bytes);
}

std::string LastSegmentPath(const std::string& dir) {
  auto segments = ListWalSegments(dir);
  EXPECT_TRUE(segments.ok()) << segments.status().ToString();
  EXPECT_FALSE(segments->empty());
  return dir + "/" + segments->back();
}

TEST(WalTest, AppendReadRoundTrip) {
  ScratchDir dir("roundtrip");
  auto writer = OpenImmediate(dir.path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  AppendAll(writer->get(), {"+ a b\n", "- a b\n+ c\n", "+ d\n"});
  ASSERT_TRUE((*writer)->Close().ok());

  auto scan = ReadWal(dir.path, /*after_seq=*/0);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan->records.size(), 3u);
  EXPECT_EQ(scan->last_seq, 3u);
  EXPECT_FALSE(scan->torn_tail);
  EXPECT_EQ(scan->records[0].seq, 1u);
  EXPECT_EQ(scan->records[0].payload, "+ a b\n");
  EXPECT_EQ(scan->records[1].payload, "- a b\n+ c\n");
  EXPECT_EQ(scan->records[2].payload, "+ d\n");

  // after_seq filters strictly: only records newer than the snapshot.
  auto tail = ReadWal(dir.path, /*after_seq=*/2);
  ASSERT_TRUE(tail.ok()) << tail.status().ToString();
  ASSERT_EQ(tail->records.size(), 1u);
  EXPECT_EQ(tail->records[0].seq, 3u);
  EXPECT_EQ(tail->last_seq, 3u);
}

TEST(WalTest, ReopenContinuesSequence) {
  ScratchDir dir("reopen");
  {
    auto writer = OpenImmediate(dir.path);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    AppendAll(writer->get(), {"one\n", "two\n"});
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto writer = OpenImmediate(dir.path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_EQ((*writer)->Stats().last_seq, 2u);
  EXPECT_FALSE((*writer)->Stats().torn_tail_on_open);
  auto seq = (*writer)->Append("three\n");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 3u);
  ASSERT_TRUE((*writer)->Close().ok());

  auto scan = ReadWal(dir.path, 0);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 3u);
}

TEST(WalTest, TornFinalRecordIsDetectedAndTruncatedOnOpen) {
  ScratchDir dir("torn");
  {
    auto writer = OpenImmediate(dir.path);
    ASSERT_TRUE(writer.ok());
    AppendAll(writer->get(), {"first\n", "second\n", "third-longer\n"});
    ASSERT_TRUE((*writer)->Close().ok());
  }
  // Chop into the middle of record 3's payload: a crash mid-write.
  Chop(LastSegmentPath(dir.path), 4);

  auto scan = ReadWal(dir.path, 0);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_FALSE(scan->torn_detail.empty());
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->last_seq, 2u);

  // Reopening truncates the torn record; new appends extend the valid
  // prefix and reuse the torn record's sequence number (it never became
  // durable, so it was never acknowledged as assigned).
  auto writer = OpenImmediate(dir.path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_TRUE((*writer)->Stats().torn_tail_on_open);
  EXPECT_EQ((*writer)->Stats().last_seq, 2u);
  auto seq = (*writer)->Append("third-take-two\n");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 3u);
  ASSERT_TRUE((*writer)->Close().ok());

  auto rescan = ReadWal(dir.path, 0);
  ASSERT_TRUE(rescan.ok());
  EXPECT_FALSE(rescan->torn_tail);
  ASSERT_EQ(rescan->records.size(), 3u);
  EXPECT_EQ(rescan->records[2].payload, "third-take-two\n");
}

TEST(WalTest, CorruptedCrcTerminatesTheValidPrefix) {
  ScratchDir dir("crc");
  {
    auto writer = OpenImmediate(dir.path);
    ASSERT_TRUE(writer.ok());
    AppendAll(writer->get(), {"aaaa\n", "bbbb\n", "cccc\n"});
    ASSERT_TRUE((*writer)->Close().ok());
  }
  // Flip one byte inside record 2's payload. Everything from the damaged
  // record on is dropped: a CRC mismatch is indistinguishable from a torn
  // write at scan time.
  const std::string path = LastSegmentPath(dir.path);
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  const uint64_t record2_payload =
      sizeof(kWalMagic) + (kWalHeaderBytes + 5) + kWalHeaderBytes + 1;
  file.seekp(static_cast<std::streamoff>(record2_payload));
  file.put('X');
  file.close();

  auto scan = ReadWal(dir.path, 0);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->torn_tail);
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].payload, "aaaa\n");
  EXPECT_NE(scan->torn_detail.find("CRC"), std::string::npos)
      << scan->torn_detail;
}

TEST(WalTest, CorruptionInNonFinalSegmentIsAnError) {
  ScratchDir dir("midcorrupt");
  {
    auto writer = OpenImmediate(dir.path);
    ASSERT_TRUE(writer.ok());
    AppendAll(writer->get(), {"aaaa\n", "bbbb\n"});
    // Checkpoint-style rotation, keeping the old segment on disk.
    ASSERT_TRUE((*writer)->Rotate(/*snapshot_seq=*/0, /*keep_segments=*/true)
                    .ok());
    AppendAll(writer->get(), {"cccc\n"});
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto segments = ListWalSegments(dir.path);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 2u);
  Chop(dir.path + "/" + segments->front(), 3);

  // A torn tail is only survivable in the FINAL segment; a hole in the
  // middle of the history means records are missing and recovery must not
  // silently skip them.
  auto scan = ReadWal(dir.path, 0);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kIOError);
}

TEST(WalTest, GroupCommitSyncBarrier) {
  ScratchDir dir("grouped");
  WalOptions options;  // kGrouped default
  options.group_window_ms = 1;
  auto writer = WalWriter::Open(dir.path, options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (int i = 0; i < 64; ++i) {
    auto seq = (*writer)->Append("record " + std::to_string(i) + "\n");
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  }
  ASSERT_TRUE((*writer)->Sync().ok());
  const WalWriterStats stats = (*writer)->Stats();
  EXPECT_EQ(stats.last_seq, 64u);
  EXPECT_EQ(stats.durable_seq, 64u);
  EXPECT_EQ(stats.records_appended, 64u);
  // Group commit: strictly fewer fsyncs than records (the committer drains
  // whatever accumulated while the previous fsync was in flight).
  EXPECT_LE(stats.syncs, stats.records_appended);
  EXPECT_GE(stats.group_commit_max, 1u);
  ASSERT_TRUE((*writer)->Close().ok());

  auto scan = ReadWal(dir.path, 0);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 64u);
  EXPECT_FALSE(scan->torn_tail);
}

TEST(WalTest, RotateDeletesSegmentsCoveredByTheSnapshot) {
  ScratchDir dir("rotate");
  auto writer = OpenImmediate(dir.path);
  ASSERT_TRUE(writer.ok());
  AppendAll(writer->get(), {"a\n", "b\n", "c\n"});
  // Snapshot at seq 3 covers everything: the old segment goes away and an
  // empty successor pins the sequence floor.
  ASSERT_TRUE((*writer)->Rotate(/*snapshot_seq=*/3, /*keep_segments=*/false)
                  .ok());
  auto segments = ListWalSegments(dir.path);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 1u);
  EXPECT_EQ(segments->front(), "wal-00000000000000000004.log");

  auto scan = ReadWal(dir.path, 0);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->records.empty());
  // The empty segment's name still pins the sequence contract.
  EXPECT_EQ(scan->last_seq, 3u);

  auto seq = (*writer)->Append("d\n");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 4u);
  ASSERT_TRUE((*writer)->Close().ok());
}

TEST(WalTest, RotateKeepsSegmentsWithNewerRecords) {
  ScratchDir dir("rotatekeep");
  auto writer = OpenImmediate(dir.path);
  ASSERT_TRUE(writer.ok());
  AppendAll(writer->get(), {"a\n", "b\n", "c\n"});
  // Snapshot at seq 1 does NOT cover records 2 and 3: their segment must
  // survive the rotation.
  ASSERT_TRUE((*writer)->Rotate(/*snapshot_seq=*/1, /*keep_segments=*/false)
                  .ok());
  auto scan = ReadWal(dir.path, /*after_seq=*/1);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[0].seq, 2u);
  ASSERT_TRUE((*writer)->Close().ok());
}

TEST(WalTest, EnsureSeqFloorNeverReassignsCoveredSequences) {
  ScratchDir dir("floor");
  auto writer = OpenImmediate(dir.path);
  ASSERT_TRUE(writer.ok());
  // A snapshot at seq 10 exists but the WAL is empty (segments rotated
  // away or lost): new appends must start past the snapshot.
  ASSERT_TRUE((*writer)->EnsureSeqFloor(10).ok());
  auto seq = (*writer)->Append("eleven\n");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 11u);
  ASSERT_TRUE((*writer)->Close().ok());

  auto reopened = OpenImmediate(dir.path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->Stats().last_seq, 11u);
  ASSERT_TRUE((*reopened)->Close().ok());
}

/// A small engine with named properties, churned a little so components
/// and stored solutions are non-trivial.
OnlineEngine MakeEngine() {
  OnlineEngine engine;
  auto init = engine.Initialize(PaperExample());
  EXPECT_TRUE(init.ok()) << init.status().ToString();
  return engine;
}

TEST(SnapshotTest, RenderParseReRenderIsByteStable) {
  OnlineEngine engine = MakeEngine();
  const online::EngineState state = engine.ExportState();
  const std::string json = RenderSnapshot(state, 42);
  ASSERT_TRUE(ValidateSnapshotJson(json).ok());

  auto parsed = ParseSnapshot(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seq, 42u);
  // The canonical EngineState form makes render o parse the identity.
  EXPECT_EQ(RenderSnapshot(parsed->state, 42), json);

  // And importing reproduces the engine.
  OnlineEngine restored;
  ASSERT_TRUE(restored.ImportState(parsed->state).ok());
  ASSERT_TRUE(restored.CheckInvariants().ok());
  EXPECT_EQ(restored.TotalCost(), engine.TotalCost());
  EXPECT_EQ(restored.NumQueries(), engine.NumQueries());
  EXPECT_EQ(RenderSnapshot(restored.ExportState(), 42), json);
}

TEST(SnapshotTest, ValidateRejectsStructuralDamage) {
  OnlineEngine engine = MakeEngine();
  const std::string json = RenderSnapshot(engine.ExportState(), 7);

  std::string wrong_schema = json;
  const size_t at = wrong_schema.find("mc3.snapshot/1");
  ASSERT_NE(at, std::string::npos);
  wrong_schema.replace(at, 14, "mc3.snapshot/9");
  EXPECT_FALSE(ValidateSnapshotJson(wrong_schema).ok());

  EXPECT_FALSE(ValidateSnapshotJson("{}").ok());
  EXPECT_FALSE(ValidateSnapshotJson("not json").ok());
  // Truncation (a half-written file that dodged the atomic rename).
  EXPECT_FALSE(ValidateSnapshotJson(json.substr(0, json.size() / 2)).ok());
}

TEST(SnapshotTest, LoadLatestSkipsInvalidNewerFiles) {
  ScratchDir dir("snapload");
  OnlineEngine engine = MakeEngine();
  auto older = WriteSnapshotFile(dir.path, engine.ExportState(), 3);
  ASSERT_TRUE(older.ok()) << older.status().ToString();
  auto newer = WriteSnapshotFile(dir.path, engine.ExportState(), 9);
  ASSERT_TRUE(newer.ok());

  auto best = LoadLatestSnapshot(dir.path);
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  EXPECT_EQ(best->seq, 9u);
  EXPECT_EQ(best->skipped_invalid, 0u);

  // Rot the newest file: loading falls back to the older valid one.
  Chop(dir.path + "/" + SnapshotFileName(9), 20);
  auto fallback = LoadLatestSnapshot(dir.path);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_EQ(fallback->seq, 3u);
  EXPECT_EQ(fallback->skipped_invalid, 1u);
}

TEST(SnapshotTest, EmbeddedSeqMustMatchTheFileName) {
  ScratchDir dir("snapseq");
  OnlineEngine engine = MakeEngine();
  fs::create_directories(dir.path);
  // A document claiming seq 7 under the seq-9 file name is invalid: the
  // name is what rotation trusts when deleting covered segments.
  const std::string json = RenderSnapshot(engine.ExportState(), 7);
  std::ofstream(dir.path + "/" + SnapshotFileName(9), std::ios::binary)
      << json;
  auto best = LoadLatestSnapshot(dir.path);
  ASSERT_FALSE(best.ok());
  EXPECT_EQ(best.status().code(), StatusCode::kNotFound);
}

DurabilityOptions ManagerOptions(const std::string& dir) {
  DurabilityOptions options;
  options.data_dir = dir;
  options.wal.sync = WalOptions::SyncPolicy::kImmediate;
  return options;
}

/// Drives `engine` through `rounds` remove+re-add churn rounds, logging
/// every batch through `manager` the way the server does.
void Churn(OnlineEngine* engine, DurabilityManager* manager, size_t rounds) {
  const Instance live = engine->LiveInstance();
  const auto& queries = live.queries();
  ASSERT_GE(queries.size(), 1u);
  for (size_t r = 0; r < rounds; ++r) {
    const std::vector<PropertySet> chunk{queries[r % queries.size()]};
    ASSERT_TRUE(engine->RemoveQueries(chunk).ok());
    ASSERT_TRUE(manager->LogBatch({}, chunk, engine->property_names()).ok());
    ASSERT_TRUE(engine->AddQueries(chunk).ok());
    ASSERT_TRUE(manager->LogBatch(chunk, {}, engine->property_names()).ok());
  }
}

/// Sorted current-solution classifiers — the equivalence fingerprint
/// (property ids are stable across recovery, the name table is restored).
std::vector<PropertySet> Fingerprint(const OnlineEngine& engine) {
  return engine.CurrentSolution().Sorted();
}

TEST(DurabilityManagerTest, RecoverFromEmptyDirMatchesInitialize) {
  ScratchDir dir("mgr_empty");
  auto manager = DurabilityManager::Open(ManagerOptions(dir.path));
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  OnlineEngine engine;
  auto recovery =
      (*manager)->Recover(PaperExample(), /*default_cost=*/-1, &engine);
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_FALSE(recovery->snapshot_loaded);
  EXPECT_EQ(recovery->wal_records_replayed, 0u);
  ASSERT_TRUE((*manager)->Close().ok());

  OnlineEngine plain;
  ASSERT_TRUE(plain.Initialize(PaperExample()).ok());
  EXPECT_EQ(Fingerprint(engine), Fingerprint(plain));
  EXPECT_EQ(engine.TotalCost(), plain.TotalCost());
}

TEST(DurabilityManagerTest, SnapshotPlusWalTailReproducesTheLiveEngine) {
  ScratchDir dir("mgr_recover");
  OnlineEngine live;
  {
    auto manager = DurabilityManager::Open(ManagerOptions(dir.path));
    ASSERT_TRUE(manager.ok());
    auto recovery = (*manager)->Recover(PaperExample(), -1, &live);
    ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
    Churn(&live, manager->get(), 3);
    // Snapshot mid-history: recovery must combine it with the WAL tail.
    auto checkpoint = (*manager)->Checkpoint(live.ExportState());
    ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();
    EXPECT_EQ(checkpoint->seq, 6u);
    Churn(&live, manager->get(), 2);
    ASSERT_TRUE((*manager)->Close().ok());
  }

  OnlineEngine recovered;
  auto manager = DurabilityManager::Open(ManagerOptions(dir.path));
  ASSERT_TRUE(manager.ok());
  auto recovery = (*manager)->Recover(PaperExample(), -1, &recovered);
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_TRUE(recovery->snapshot_loaded);
  EXPECT_EQ(recovery->snapshot_seq, 6u);
  EXPECT_EQ(recovery->wal_records_replayed, 4u);
  EXPECT_EQ(recovery->wal_last_seq, 10u);
  EXPECT_FALSE(recovery->torn_tail);
  ASSERT_TRUE((*manager)->Close().ok());

  ASSERT_TRUE(recovered.CheckInvariants().ok());
  EXPECT_EQ(Fingerprint(recovered), Fingerprint(live));
  EXPECT_EQ(recovered.TotalCost(), live.TotalCost());
  EXPECT_EQ(RenderSnapshot(recovered.ExportState(), 0),
            RenderSnapshot(live.ExportState(), 0));
}

TEST(DurabilityManagerTest, TornFinalRecordRecoversThePrefix) {
  ScratchDir dir("mgr_torn");
  OnlineEngine live;
  {
    auto manager = DurabilityManager::Open(ManagerOptions(dir.path));
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE((*manager)->Recover(PaperExample(), -1, &live).ok());
    Churn(&live, manager->get(), 2);
    ASSERT_TRUE((*manager)->Close().ok());
  }
  Chop(LastSegmentPath(dir.path), 3);

  OnlineEngine recovered;
  auto manager = DurabilityManager::Open(ManagerOptions(dir.path));
  ASSERT_TRUE(manager.ok());
  auto recovery = (*manager)->Recover(PaperExample(), -1, &recovered);
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_TRUE(recovery->torn_tail);
  EXPECT_EQ(recovery->wal_records_replayed, 3u);
  ASSERT_TRUE((*manager)->Close().ok());

  // The recovered state equals replaying the surviving prefix: the last
  // (torn) record was a re-add, so the recovered engine is one query
  // short of the live one.
  ASSERT_TRUE(recovered.CheckInvariants().ok());
  EXPECT_EQ(recovered.NumQueries(), live.NumQueries() - 1);
}

TEST(DurabilityManagerTest, SnapshotNewerThanWholeWalStillRecovers) {
  ScratchDir dir("mgr_stale");
  OnlineEngine live;
  {
    auto manager = DurabilityManager::Open(ManagerOptions(dir.path));
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE((*manager)->Recover(PaperExample(), -1, &live).ok());
    Churn(&live, manager->get(), 2);
    ASSERT_TRUE((*manager)->Checkpoint(live.ExportState()).ok());
    ASSERT_TRUE((*manager)->Close().ok());
  }
  // Lose every WAL segment; the snapshot (seq 4) is all that's left.
  auto segments = ListWalSegments(dir.path);
  ASSERT_TRUE(segments.ok());
  for (const std::string& segment : *segments) {
    fs::remove(dir.path + "/" + segment);
  }

  OnlineEngine recovered;
  auto manager = DurabilityManager::Open(ManagerOptions(dir.path));
  ASSERT_TRUE(manager.ok());
  auto recovery = (*manager)->Recover(PaperExample(), -1, &recovered);
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_TRUE(recovery->snapshot_loaded);
  EXPECT_EQ(recovery->snapshot_seq, 4u);
  EXPECT_EQ(recovery->wal_records_replayed, 0u);
  EXPECT_EQ(Fingerprint(recovered), Fingerprint(live));

  // Sequences <= snapshot_seq must never be reassigned: the next logged
  // batch continues past the snapshot.
  auto seq = (*manager)->LogBatch(
      {}, {recovered.LiveInstance().queries().front()},
      recovered.property_names());
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  EXPECT_EQ(*seq, 5u);
  ASSERT_TRUE((*manager)->Close().ok());
}

TEST(DurabilityManagerTest, CheckpointPolicyByUpdateCount) {
  ScratchDir dir("mgr_policy");
  DurabilityOptions options = ManagerOptions(dir.path);
  options.checkpoint_every_updates = 3;
  auto manager = DurabilityManager::Open(options);
  ASSERT_TRUE(manager.ok());
  OnlineEngine engine;
  ASSERT_TRUE((*manager)->Recover(PaperExample(), -1, &engine).ok());

  EXPECT_FALSE((*manager)->ShouldCheckpoint());
  Churn(&engine, manager->get(), 1);  // 2 batches
  EXPECT_FALSE((*manager)->ShouldCheckpoint());
  Churn(&engine, manager->get(), 1);  // 4 batches
  EXPECT_TRUE((*manager)->ShouldCheckpoint());
  ASSERT_TRUE((*manager)->Checkpoint(engine.ExportState()).ok());
  EXPECT_FALSE((*manager)->ShouldCheckpoint());
  ASSERT_TRUE((*manager)->Close().ok());
}

// ---------------------------------------------------------------------------
// Sharded layouts (mc3.snapshot/2; src/online/sharded_engine.h,
// docs/durability.md). The WAL stays shard-agnostic — only snapshots
// record the layout — so these tests cover the snapshot schema round-trip,
// the layout-mismatch guard, and manager-level sharded recovery.

using online::ShardedEngine;

/// A churned sharded engine over the paper example (every shard count
/// yields the same canonical state; the placement varies).
ShardedEngine MakeShardedEngine(uint32_t shards) {
  ShardedEngine engine(shards);
  const Instance base = PaperExample();
  auto init = engine.Initialize(base);
  EXPECT_TRUE(init.ok()) << init.status().ToString();
  const std::vector<PropertySet>& queries = base.queries();
  EXPECT_GE(queries.size(), 2u);
  // Churn so stored solutions and the router's live set are non-trivial.
  EXPECT_TRUE(engine.ApplyUpdate({}, {queries[0]}).ok());
  EXPECT_TRUE(engine.ApplyUpdate({queries[0]}, {queries[1]}).ok());
  EXPECT_TRUE(engine.ApplyUpdate({queries[1]}, {}).ok());
  return engine;
}

TEST(SnapshotTest, ShardedRenderParseReRenderIsByteStable) {
  ShardedEngine engine = MakeShardedEngine(4);
  const online::ShardedState state = engine.ExportSharded();
  EXPECT_EQ(state.num_shards, 4u);
  const std::string json = RenderShardedSnapshot(state, 9);
  ASSERT_TRUE(ValidateSnapshotJson(json).ok());
  EXPECT_NE(json.find(kSnapshotSchemaV2), std::string::npos);

  auto parsed = ParseSnapshot(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seq, 9u);
  EXPECT_EQ(parsed->num_shards, 4u);
  ASSERT_EQ(parsed->component_shards.size(), state.component_shards.size());
  EXPECT_EQ(RenderShardedSnapshot(parsed->ToShardedState(), 9), json);

  ShardedEngine restored(4);
  ASSERT_TRUE(restored.ImportSharded(parsed->ToShardedState()).ok());
  ASSERT_TRUE(restored.CheckInvariants().ok());
  EXPECT_EQ(restored.NumQueries(), engine.NumQueries());
  // Import restores the exact placement, so the re-export is byte-stable.
  EXPECT_EQ(RenderShardedSnapshot(restored.ExportSharded(), 9), json);
}

TEST(SnapshotTest, OneShardShardedExportIsTheLegacyDocument) {
  // A 1-shard engine keeps writing plain mc3.snapshot/1 bytes: pre-sharding
  // snapshots and 1-shard snapshots stay interchangeable.
  ShardedEngine facade = MakeShardedEngine(1);
  const online::ShardedState state = facade.ExportSharded();
  ASSERT_EQ(state.num_shards, 1u);
  const std::string json = RenderShardedSnapshot(state, 5);
  EXPECT_EQ(json, RenderSnapshot(state.state, 5));
  EXPECT_NE(json.find(kSnapshotSchema), std::string::npos);
  EXPECT_EQ(json.find(kSnapshotSchemaV2), std::string::npos);

  // And a v1 document parses as a 1-shard layout.
  auto parsed = ParseSnapshot(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_shards, 1u);
  for (const uint32_t shard : parsed->component_shards) EXPECT_EQ(shard, 0u);
}

TEST(SnapshotTest, ShardLayoutMismatchIsRejectedOnImport) {
  ShardedEngine engine = MakeShardedEngine(4);
  ShardedEngine two(2);
  const Status status = two.ImportSharded(engine.ExportSharded());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("--shards"), std::string::npos)
      << status.ToString();  // the message tells the operator the fix
}

TEST(DurabilityManagerTest, ShardedSnapshotPlusWalTailRecovers) {
  ScratchDir dir("mgr_sharded");
  ShardedEngine live(4);
  {
    auto manager = DurabilityManager::Open(ManagerOptions(dir.path));
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE((*manager)->Recover(PaperExample(), -1, &live).ok());
    const std::vector<PropertySet> queries = PaperExample().queries();
    // Log the same churn the engine applies, as the server does.
    ASSERT_TRUE(live.ApplyUpdate({}, {queries[0]}).ok());
    ASSERT_TRUE(
        (*manager)->LogBatch({}, {queries[0]}, live.property_names()).ok());
    auto checkpoint = (*manager)->Checkpoint(live.ExportSharded());
    ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();
    // Post-snapshot tail: recovery must replay it into the same layout.
    ASSERT_TRUE(live.ApplyUpdate({queries[0]}, {}).ok());
    ASSERT_TRUE(
        (*manager)->LogBatch({queries[0]}, {}, live.property_names()).ok());
    ASSERT_TRUE((*manager)->Close().ok());
  }

  ShardedEngine recovered(4);
  auto manager = DurabilityManager::Open(ManagerOptions(dir.path));
  ASSERT_TRUE(manager.ok());
  auto recovery = (*manager)->Recover(PaperExample(), -1, &recovered);
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_TRUE(recovery->snapshot_loaded);
  EXPECT_EQ(recovery->wal_records_replayed, 1u);
  ASSERT_TRUE((*manager)->Close().ok());

  ASSERT_TRUE(recovered.CheckInvariants().ok());
  // Canonical byte equality. (Raw export order is slot order, which
  // depends on where the checkpoint fell inside the remove/re-add cycle —
  // the live engine reuses the freed slot, the recovered one packs the
  // snapshot first — so the canonical form is the equivalence oracle,
  // exactly as in tests/determinism_test.cc.)
  EXPECT_EQ(recovered.NumQueries(), live.NumQueries());
  EXPECT_EQ(RenderSnapshot(recovered.CanonicalState(), 0),
            RenderSnapshot(live.CanonicalState(), 0));
}

TEST(DurabilityManagerTest, ShardedRecoveryRejectsLayoutMismatch) {
  // A server restarted with the wrong --shards must fail loudly instead of
  // silently resharding (resharding would break byte-stable replay).
  ScratchDir dir("mgr_shard_mismatch");
  {
    auto manager = DurabilityManager::Open(ManagerOptions(dir.path));
    ASSERT_TRUE(manager.ok());
    ShardedEngine live(4);
    ASSERT_TRUE((*manager)->Recover(PaperExample(), -1, &live).ok());
    ASSERT_TRUE((*manager)->Checkpoint(live.ExportSharded()).ok());
    ASSERT_TRUE((*manager)->Close().ok());
  }
  ShardedEngine wrong(2);
  auto manager = DurabilityManager::Open(ManagerOptions(dir.path));
  ASSERT_TRUE(manager.ok());
  auto recovery = (*manager)->Recover(PaperExample(), -1, &wrong);
  ASSERT_FALSE(recovery.ok());
  EXPECT_EQ(recovery.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(recovery.status().ToString().find("--shards"), std::string::npos);
}

TEST(DurabilityManagerTest, LegacySnapshotRecoversIntoAOneShardEngine) {
  // Upgrade path: a data dir checkpointed by the pre-sharding server (v1
  // document via OnlineEngine) recovers into the 1-shard facade unchanged.
  ScratchDir dir("mgr_v1_upgrade");
  OnlineEngine old_engine;
  {
    auto manager = DurabilityManager::Open(ManagerOptions(dir.path));
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE((*manager)->Recover(PaperExample(), -1, &old_engine).ok());
    Churn(&old_engine, manager->get(), 2);
    ASSERT_TRUE((*manager)->Checkpoint(old_engine.ExportState()).ok());
    ASSERT_TRUE((*manager)->Close().ok());
  }
  ShardedEngine facade(1);
  auto manager = DurabilityManager::Open(ManagerOptions(dir.path));
  ASSERT_TRUE(manager.ok());
  auto recovery = (*manager)->Recover(PaperExample(), -1, &facade);
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_TRUE(recovery->snapshot_loaded);
  ASSERT_TRUE(facade.CheckInvariants().ok());
  EXPECT_EQ(RenderShardedSnapshot(facade.ExportSharded(), 0),
            RenderSnapshot(old_engine.ExportState(), 0));
}

}  // namespace
}  // namespace mc3::durability
