#include <gtest/gtest.h>

#include <cmath>

#include "core/stats.h"
#include "data/bestbuy.h"
#include "data/io.h"
#include "data/private_dataset.h"
#include "data/synthetic.h"
#include "util/csv.h"
#include "tests/test_util.h"

namespace mc3::data {
namespace {

TEST(SyntheticTest, MatchesRequestedSize) {
  SyntheticConfig config;
  config.num_queries = 500;
  const Instance inst = GenerateSynthetic(config);
  EXPECT_EQ(inst.NumQueries(), 500u);
  EXPECT_TRUE(inst.Validate().ok());
  EXPECT_TRUE(inst.IsFeasible());
}

TEST(SyntheticTest, LengthsInBounds) {
  SyntheticConfig config;
  config.num_queries = 2000;
  const Instance inst = GenerateSynthetic(config);
  size_t length_two = 0;
  for (const PropertySet& q : inst.queries()) {
    EXPECT_GE(q.size(), 2u);
    EXPECT_LE(q.size(), 10u);
    if (q.size() == 2) ++length_two;
  }
  // P(length = 2) = 1/2; allow generous slack.
  const double fraction = double(length_two) / inst.NumQueries();
  EXPECT_GT(fraction, 0.40);
  EXPECT_LT(fraction, 0.60);
}

TEST(SyntheticTest, CostsInRange) {
  SyntheticConfig config;
  config.num_queries = 300;
  const Instance inst = GenerateSynthetic(config);
  const InstanceStats stats = ComputeStats(inst);
  EXPECT_GE(stats.min_cost, 1);
  EXPECT_LE(stats.max_cost, 50);
}

TEST(SyntheticTest, DeterministicPerSeed) {
  SyntheticConfig config;
  config.num_queries = 100;
  const Instance a = GenerateSynthetic(config);
  const Instance b = GenerateSynthetic(config);
  ASSERT_EQ(a.NumQueries(), b.NumQueries());
  for (size_t i = 0; i < a.NumQueries(); ++i) {
    EXPECT_EQ(a.queries()[i], b.queries()[i]);
  }
  EXPECT_EQ(a.costs().size(), b.costs().size());
}

TEST(SyntheticTest, SeedsChangeWorkload) {
  SyntheticConfig a_config;
  a_config.num_queries = 100;
  SyntheticConfig b_config = a_config;
  b_config.seed = 2;
  const Instance a = GenerateSynthetic(a_config);
  const Instance b = GenerateSynthetic(b_config);
  bool any_difference = a.costs().size() != b.costs().size();
  for (size_t i = 0; !any_difference && i < a.NumQueries(); ++i) {
    any_difference = !(a.queries()[i] == b.queries()[i]);
  }
  EXPECT_TRUE(any_difference);
}

TEST(BestBuyTest, MatchesTableOneMarginals) {
  const Instance inst = GenerateBestBuy({});
  const InstanceStats stats = ComputeStats(inst);
  EXPECT_EQ(stats.num_queries, 1000u);       // Table 1: 1000 queries
  EXPECT_EQ(stats.max_cost, 1);              // uniform weights
  EXPECT_EQ(stats.min_cost, 1);
  EXPECT_LE(stats.max_query_length, 4u);     // Table 1: max length 4
  EXPECT_GE(stats.fraction_short, 0.93);     // "95% up to 2 properties"
  EXPECT_TRUE(stats.feasible);
}

TEST(BestBuyTest, HasNamedProperties) {
  const Instance inst = GenerateBestBuy({});
  EXPECT_FALSE(inst.property_names().empty());
  EXPECT_TRUE(inst.Validate().ok());
}

TEST(BestBuyTest, Deterministic) {
  const Instance a = GenerateBestBuy({});
  const Instance b = GenerateBestBuy({});
  ASSERT_EQ(a.NumQueries(), b.NumQueries());
  for (size_t i = 0; i < a.NumQueries(); ++i) {
    EXPECT_EQ(a.queries()[i], b.queries()[i]);
  }
}

TEST(PrivateTest, MatchesTableOneMarginals) {
  const PrivateDataset dataset = GeneratePrivate({});
  const InstanceStats stats = ComputeStats(dataset.instance);
  EXPECT_EQ(stats.num_queries, 10000u);   // Table 1: 10,000 queries
  EXPECT_GE(stats.max_cost, 40);          // costs up to 63
  EXPECT_LE(stats.max_cost, 63);
  EXPECT_GE(stats.min_cost, 1);
  EXPECT_GE(stats.max_query_length, 5u);  // lengths 1..6
  EXPECT_LE(stats.max_query_length, 6u);
  EXPECT_TRUE(stats.feasible);
}

TEST(PrivateTest, FashionCategoryIsShortHeavy) {
  const PrivateDataset dataset = GeneratePrivate({});
  const auto fashion = dataset.CategoryQueryIndices("fashion");
  ASSERT_EQ(fashion.size(), 1000u);
  size_t short_queries = 0;
  for (size_t i : fashion) {
    if (dataset.instance.queries()[i].size() <= 2) ++short_queries;
  }
  // Paper: ~96% of fashion queries have at most 2 properties.
  EXPECT_GE(double(short_queries) / fashion.size(), 0.93);
}

TEST(PrivateTest, CategoriesPartitionTheQueries) {
  const PrivateDataset dataset = GeneratePrivate({});
  size_t total = 0;
  for (const auto& c : dataset.categories) total += c.num_queries;
  EXPECT_EQ(total, dataset.instance.NumQueries());
}

TEST(PrivateTest, ConjunctionSometimesCheaperThanParts) {
  // The paper's motivating phenomenon must be present in the cost model.
  const PrivateDataset dataset = GeneratePrivate({});
  const Instance& inst = dataset.instance;
  size_t cheaper_than_min_part = 0;
  size_t examined = 0;
  // mc3-lint: unordered-ok(counting aggregation is order-independent)
  for (const auto& [classifier, cost] : inst.costs()) {
    if (classifier.size() < 2) continue;
    Cost min_part = kInfiniteCost;
    for (PropertyId p : classifier) {
      min_part = std::min(min_part, inst.CostOf(PropertySet::Of({p})));
    }
    ++examined;
    if (cost < min_part) ++cheaper_than_min_part;
  }
  ASSERT_GT(examined, 0u);
  EXPECT_GT(double(cheaper_than_min_part) / examined, 0.05);
}

TEST(PrivateTest, ValidInstance) {
  const PrivateDataset dataset = GeneratePrivate({});
  EXPECT_TRUE(dataset.instance.Validate().ok());
}

TEST(IoTest, RoundTripsPaperExample) {
  const Instance inst = mc3::testing::PaperExample();
  const std::string csv = InstanceToCsv(inst);
  auto loaded = InstanceFromCsv(csv);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumQueries(), inst.NumQueries());
  EXPECT_EQ(loaded->costs().size(), inst.costs().size());
  // Costs survive the round trip (match by classifier name rendering).
  EXPECT_EQ(InstanceToCsv(*loaded), csv);
}

TEST(IoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mc3_io_test.csv";
  const Instance inst = mc3::testing::PaperExample();
  ASSERT_TRUE(SaveInstance(inst, path).ok());
  auto loaded = LoadInstance(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumQueries(), 2u);
}

TEST(IoTest, SolutionExportRendersClassifiers) {
  const Instance inst = mc3::testing::PaperExample();
  Solution solution;
  solution.Add(PropertySet::Of({0, 2}));  // juventus & adidas
  solution.Add(PropertySet::Of({1}));     // white
  const std::string csv = SolutionToCsv(inst, solution);
  EXPECT_NE(csv.find("C,3,juventus,adidas"), std::string::npos);
  EXPECT_NE(csv.find("C,1,white"), std::string::npos);
}

TEST(IoTest, SolutionFileRoundTripAsCostTable) {
  // The exported plan is a valid cost-table fragment: appending the
  // queries reloads into a consistent instance.
  const Instance inst = mc3::testing::PaperExample();
  Solution solution;
  solution.Add(PropertySet::Of({1}));
  const std::string path = ::testing::TempDir() + "/mc3_plan_test.csv";
  ASSERT_TRUE(SaveSolution(inst, solution, path).ok());
  auto doc = mc3::ReadCsvFile(path);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][0], "C");
}

TEST(IoTest, RejectsBadCost) {
  auto loaded = InstanceFromCsv("Q,a,b\nC,notanumber,a\n");
  EXPECT_FALSE(loaded.ok());
}

TEST(IoTest, RejectsUnknownRowKind) {
  auto loaded = InstanceFromCsv("X,a,b\n");
  EXPECT_FALSE(loaded.ok());
}

TEST(IoTest, RejectsQueryWithoutProperties) {
  auto loaded = InstanceFromCsv("Q\n");
  EXPECT_FALSE(loaded.ok());
}

TEST(IoTest, RejectsInvalidInstance) {
  // Duplicate queries fail Validate on load.
  auto loaded = InstanceFromCsv("Q,a,b\nQ,b,a\nC,1,a\nC,1,b\n");
  EXPECT_FALSE(loaded.ok());
}

TEST(IoTest, MissingFileIsNotFound) {
  auto loaded = LoadInstance("/nonexistent/instance.csv");
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace mc3::data
