#include "setcover/exact.h"

#include <gtest/gtest.h>
#include <cmath>

#include "setcover/greedy.h"
#include "setcover/lp_rounding.h"
#include "setcover/primal_dual.h"
#include "util/rng.h"

namespace mc3::setcover {
namespace {

WscInstance Make(ElementId num_elements,
                 std::vector<std::pair<std::vector<ElementId>, double>> sets) {
  WscInstance inst;
  inst.num_elements = num_elements;
  for (auto& [elements, cost] : sets) {
    inst.sets.push_back(WscSet{std::move(elements), cost});
  }
  return inst;
}

TEST(WscExactTest, TrivialEmptyUniverse) {
  WscInstance inst;
  auto sol = SolveWscExact(inst);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->cost, 0);
  EXPECT_TRUE(sol->selected.empty());
}

TEST(WscExactTest, PrefersCheapCombination) {
  const auto inst = Make(
      3, {{{0, 1, 2}, 5.0}, {{0, 1}, 1.5}, {{2}, 1.0}, {{0}, 1.0},
          {{1}, 1.0}});
  auto sol = SolveWscExact(inst);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->cost, 2.5);  // {0,1} + {2}
  EXPECT_TRUE(WscCovers(inst, *sol));
}

TEST(WscExactTest, InfeasibleDetected) {
  const auto inst = Make(2, {{{0}, 1.0}});
  auto sol = SolveWscExact(inst);
  EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
}

TEST(WscExactTest, InfiniteCostSetsIgnored) {
  auto inst = Make(1, {{{0}, 1.0}, {{0}, 1.0}});
  inst.sets[0].cost = std::numeric_limits<double>::infinity();
  auto sol = SolveWscExact(inst);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->selected, (std::vector<SetId>{1}));
}

TEST(WscExactTest, UniverseGuard) {
  WscInstance inst;
  inst.num_elements = 30;
  auto sol = SolveWscExact(inst);
  EXPECT_EQ(sol.status().code(), StatusCode::kInvalidArgument);
}

TEST(WscExactTest, ZeroCostSetsFree) {
  const auto inst = Make(2, {{{0, 1}, 0.0}, {{0}, 3.0}, {{1}, 3.0}});
  auto sol = SolveWscExact(inst);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->cost, 0);
}

class WscExactSweepTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, WscExactSweepTest, ::testing::Range(0, 30));

TEST_P(WscExactSweepTest, ApproximationsNeverBeatExact) {
  Rng rng(GetParam() * 101 + 9);
  WscInstance inst;
  inst.num_elements = 1 + static_cast<ElementId>(rng.UniformInt(0, 9));
  const int m = 2 + static_cast<int>(rng.UniformInt(0, 10));
  for (int i = 0; i < m; ++i) {
    WscSet s;
    for (ElementId e = 0; e < inst.num_elements; ++e) {
      if (rng.Bernoulli(0.4)) s.elements.push_back(e);
    }
    if (s.elements.empty()) s.elements.push_back(0);
    s.cost = 1 + double(rng.UniformInt(0, 15));
    inst.sets.push_back(std::move(s));
  }
  {  // guarantee feasibility
    WscSet all;
    for (ElementId e = 0; e < inst.num_elements; ++e) all.elements.push_back(e);
    all.cost = 40;
    inst.sets.push_back(std::move(all));
  }
  auto exact = SolveWscExact(inst);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(WscCovers(inst, *exact));
  for (auto solve : {&SolveGreedy, &SolvePrimalDual, &SolveLpRounding}) {
    auto approx = solve(inst);
    ASSERT_TRUE(approx.ok());
    EXPECT_GE(approx->cost, exact->cost - 1e-9);
  }
}

TEST_P(WscExactSweepTest, MatchesBruteForce) {
  Rng rng(GetParam() * 67 + 21);
  WscInstance inst;
  inst.num_elements = 1 + static_cast<ElementId>(rng.UniformInt(0, 5));
  const int m = 1 + static_cast<int>(rng.UniformInt(0, 7));
  for (int i = 0; i < m; ++i) {
    WscSet s;
    for (ElementId e = 0; e < inst.num_elements; ++e) {
      if (rng.Bernoulli(0.5)) s.elements.push_back(e);
    }
    if (s.elements.empty()) continue;
    s.cost = double(rng.UniformInt(0, 9));
    inst.sets.push_back(std::move(s));
  }
  // Brute force over set subsets.
  double brute = std::numeric_limits<double>::infinity();
  for (uint32_t mask = 0; mask < (1u << inst.sets.size()); ++mask) {
    double cost = 0;
    uint32_t covered = 0;
    for (size_t i = 0; i < inst.sets.size(); ++i) {
      if (mask & (1u << i)) {
        cost += inst.sets[i].cost;
        for (ElementId e : inst.sets[i].elements) covered |= 1u << e;
      }
    }
    if (covered == (inst.num_elements == 0
                        ? 0u
                        : (1u << inst.num_elements) - 1)) {
      brute = std::min(brute, cost);
    }
  }
  auto exact = SolveWscExact(inst);
  if (std::isinf(brute)) {
    EXPECT_FALSE(exact.ok());
  } else {
    ASSERT_TRUE(exact.ok());
    EXPECT_DOUBLE_EQ(exact->cost, brute);
  }
}

}  // namespace
}  // namespace mc3::setcover
