#include "flow/bipartite_vertex_cover.h"

#include <gtest/gtest.h>

#include <cmath>

#include "flow/hopcroft_karp.h"
#include "util/rng.h"

namespace mc3::flow {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Brute-force minimum weighted vertex cover (for cross-checks).
double BruteForceVc(const BipartiteVcInstance& inst) {
  const size_t nl = inst.left_weights.size();
  const size_t nr = inst.right_weights.size();
  double best = kInf;
  for (uint32_t lm = 0; lm < (1u << nl); ++lm) {
    for (uint32_t rm = 0; rm < (1u << nr); ++rm) {
      bool covers = true;
      for (const auto& [l, r] : inst.edges) {
        if (!(lm & (1u << l)) && !(rm & (1u << r))) {
          covers = false;
          break;
        }
      }
      if (!covers) continue;
      double w = 0;
      for (size_t i = 0; i < nl; ++i) {
        if (lm & (1u << i)) w += inst.left_weights[i];
      }
      for (size_t i = 0; i < nr; ++i) {
        if (rm & (1u << i)) w += inst.right_weights[i];
      }
      best = std::min(best, w);
    }
  }
  return best;
}

TEST(BipartiteVcTest, SingleEdgePicksCheaperSide) {
  BipartiteVcInstance inst;
  inst.left_weights = {5};
  inst.right_weights = {2};
  inst.edges = {{0, 0}};
  auto sol = SolveBipartiteVertexCover(inst);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->weight, 2);
  EXPECT_TRUE(sol->right_in_cover[0]);
  EXPECT_FALSE(sol->left_in_cover[0]);
  EXPECT_TRUE(IsVertexCover(inst, *sol));
}

TEST(BipartiteVcTest, StarPrefersCenter) {
  // One left vertex connected to three right vertices; taking the center is
  // cheaper than the three leaves.
  BipartiteVcInstance inst;
  inst.left_weights = {4};
  inst.right_weights = {2, 2, 2};
  inst.edges = {{0, 0}, {0, 1}, {0, 2}};
  auto sol = SolveBipartiteVertexCover(inst);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->weight, 4);
  EXPECT_TRUE(sol->left_in_cover[0]);
}

TEST(BipartiteVcTest, StarPrefersLeavesWhenCheap) {
  BipartiteVcInstance inst;
  inst.left_weights = {10};
  inst.right_weights = {2, 2, 2};
  inst.edges = {{0, 0}, {0, 1}, {0, 2}};
  auto sol = SolveBipartiteVertexCover(inst);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->weight, 6);
}

TEST(BipartiteVcTest, InfiniteWeightAvoided) {
  BipartiteVcInstance inst;
  inst.left_weights = {kInf};
  inst.right_weights = {7};
  inst.edges = {{0, 0}};
  auto sol = SolveBipartiteVertexCover(inst);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->weight, 7);
  EXPECT_FALSE(sol->left_in_cover[0]);
}

TEST(BipartiteVcTest, BothEndpointsInfiniteIsInfeasible) {
  BipartiteVcInstance inst;
  inst.left_weights = {kInf};
  inst.right_weights = {kInf};
  inst.edges = {{0, 0}};
  auto sol = SolveBipartiteVertexCover(inst);
  EXPECT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
}

TEST(BipartiteVcTest, NegativeWeightRejected) {
  BipartiteVcInstance inst;
  inst.left_weights = {-1};
  inst.right_weights = {1};
  inst.edges = {{0, 0}};
  auto sol = SolveBipartiteVertexCover(inst);
  EXPECT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInvalidArgument);
}

TEST(BipartiteVcTest, OutOfRangeEdgeRejected) {
  BipartiteVcInstance inst;
  inst.left_weights = {1};
  inst.right_weights = {1};
  inst.edges = {{0, 3}};
  auto sol = SolveBipartiteVertexCover(inst);
  EXPECT_EQ(sol.status().code(), StatusCode::kInvalidArgument);
}

TEST(BipartiteVcTest, NoEdgesEmptyCover) {
  BipartiteVcInstance inst;
  inst.left_weights = {1, 2};
  inst.right_weights = {3};
  auto sol = SolveBipartiteVertexCover(inst);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->weight, 0);
}

TEST(BipartiteVcTest, ZeroWeightVerticesAreFree) {
  BipartiteVcInstance inst;
  inst.left_weights = {0, 5};
  inst.right_weights = {5, 0};
  inst.edges = {{0, 0}, {1, 1}};
  auto sol = SolveBipartiteVertexCover(inst);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->weight, 0);
}

class BipartiteVcRandomTest
    : public ::testing::TestWithParam<std::tuple<int, MaxFlowAlgorithm>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweeps, BipartiteVcRandomTest,
    ::testing::Combine(::testing::Range(0, 15),
                       ::testing::Values(MaxFlowAlgorithm::kDinic,
                                         MaxFlowAlgorithm::kPushRelabel,
                                         MaxFlowAlgorithm::kEdmondsKarp)));

TEST_P(BipartiteVcRandomTest, MatchesBruteForce) {
  const auto [seed, algorithm] = GetParam();
  Rng rng(seed);
  BipartiteVcInstance inst;
  const int nl = 1 + static_cast<int>(rng.UniformInt(0, 5));
  const int nr = 1 + static_cast<int>(rng.UniformInt(0, 5));
  for (int i = 0; i < nl; ++i) {
    inst.left_weights.push_back(
        rng.Bernoulli(0.1) ? kInf
                           : static_cast<double>(rng.UniformInt(0, 10)));
  }
  for (int i = 0; i < nr; ++i) {
    inst.right_weights.push_back(
        rng.Bernoulli(0.1) ? kInf
                           : static_cast<double>(rng.UniformInt(0, 10)));
  }
  const int m = static_cast<int>(rng.UniformInt(0, nl * nr));
  for (int i = 0; i < m; ++i) {
    inst.edges.emplace_back(static_cast<int32_t>(rng.UniformInt(0, nl - 1)),
                            static_cast<int32_t>(rng.UniformInt(0, nr - 1)));
  }
  const double brute = BruteForceVc(inst);
  auto sol = SolveBipartiteVertexCover(inst, algorithm);
  if (std::isinf(brute)) {
    EXPECT_FALSE(sol.ok());
    return;
  }
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_TRUE(IsVertexCover(inst, *sol));
  EXPECT_NEAR(sol->weight, brute, 1e-6);
}

}  // namespace
}  // namespace mc3::flow
