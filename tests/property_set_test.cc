#include "core/property_set.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "tests/test_util.h"

namespace mc3 {
namespace {

using testing::PS;

TEST(PropertySetTest, DefaultIsEmpty) {
  PropertySet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(PropertySetTest, OfSortsAndDedups) {
  const PropertySet s = PS({5, 1, 3, 1, 5});
  EXPECT_EQ(s.ids(), (std::vector<PropertyId>{1, 3, 5}));
  EXPECT_EQ(s.size(), 3u);
}

TEST(PropertySetTest, FromUnsorted) {
  const PropertySet s = PropertySet::FromUnsorted({9, 2, 2, 7});
  EXPECT_EQ(s.ids(), (std::vector<PropertyId>{2, 7, 9}));
}

TEST(PropertySetTest, FromSortedKeepsIds) {
  const PropertySet s = PropertySet::FromSorted({1, 4, 6});
  EXPECT_EQ(s.ids(), (std::vector<PropertyId>{1, 4, 6}));
}

TEST(PropertySetTest, Contains) {
  const PropertySet s = PS({2, 4, 8});
  EXPECT_TRUE(s.Contains(2));
  EXPECT_TRUE(s.Contains(4));
  EXPECT_TRUE(s.Contains(8));
  EXPECT_FALSE(s.Contains(3));
  EXPECT_FALSE(s.Contains(0));
}

TEST(PropertySetTest, SubsetOf) {
  EXPECT_TRUE(PS({1, 2}).IsSubsetOf(PS({1, 2, 3})));
  EXPECT_TRUE(PS({1, 2, 3}).IsSubsetOf(PS({1, 2, 3})));
  EXPECT_TRUE(PropertySet().IsSubsetOf(PS({1})));
  EXPECT_FALSE(PS({1, 4}).IsSubsetOf(PS({1, 2, 3})));
  EXPECT_FALSE(PS({1, 2, 3}).IsSubsetOf(PS({1, 2})));
}

TEST(PropertySetTest, Intersects) {
  EXPECT_TRUE(PS({1, 5}).Intersects(PS({5, 9})));
  EXPECT_FALSE(PS({1, 5}).Intersects(PS({2, 6})));
  EXPECT_FALSE(PropertySet().Intersects(PS({1})));
  EXPECT_FALSE(PS({1}).Intersects(PropertySet()));
}

TEST(PropertySetTest, UnionWith) {
  EXPECT_EQ(PS({1, 3}).UnionWith(PS({2, 3})), PS({1, 2, 3}));
  EXPECT_EQ(PS({1}).UnionWith(PropertySet()), PS({1}));
}

TEST(PropertySetTest, IntersectWith) {
  EXPECT_EQ(PS({1, 2, 3}).IntersectWith(PS({2, 3, 4})), PS({2, 3}));
  EXPECT_EQ(PS({1}).IntersectWith(PS({2})), PropertySet());
}

TEST(PropertySetTest, Minus) {
  EXPECT_EQ(PS({1, 2, 3}).Minus(PS({2})), PS({1, 3}));
  EXPECT_EQ(PS({1}).Minus(PS({1})), PropertySet());
  EXPECT_EQ(PS({1}).Minus(PS({9})), PS({1}));
}

TEST(PropertySetTest, Plus) {
  EXPECT_EQ(PS({1, 3}).Plus(2), PS({1, 2, 3}));
  EXPECT_EQ(PS({1, 3}).Plus(3), PS({1, 3}));
  EXPECT_EQ(PropertySet().Plus(7), PS({7}));
}

TEST(PropertySetTest, EqualityAndOrdering) {
  EXPECT_EQ(PS({1, 2}), PS({2, 1}));
  EXPECT_NE(PS({1, 2}), PS({1, 3}));
  EXPECT_LT(PS({1, 2}), PS({1, 3}));
  EXPECT_LT(PS({1}), PS({1, 0xFFFFFFFF}));
}

TEST(PropertySetTest, HashEqualSetsEqualHashes) {
  EXPECT_EQ(PS({3, 1}).Hash(), PS({1, 3}).Hash());
}

TEST(PropertySetTest, HashSpreads) {
  // Not a strict requirement, but catches degenerate hash implementations.
  std::unordered_set<size_t> hashes;
  for (PropertyId a = 0; a < 20; ++a) {
    for (PropertyId b = a + 1; b < 20; ++b) {
      hashes.insert(PS({a, b}).Hash());
    }
  }
  EXPECT_GT(hashes.size(), 150u);
}

TEST(PropertySetTest, WorksAsUnorderedKey) {
  std::unordered_set<PropertySet, PropertySetHash> set;
  set.insert(PS({1, 2}));
  set.insert(PS({2, 1}));
  set.insert(PS({3}));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(PS({1, 2})));
}

TEST(PropertySetTest, ToStringNumeric) {
  EXPECT_EQ(PS({2, 1}).ToString(), "{1,2}");
  EXPECT_EQ(PropertySet().ToString(), "{}");
}

TEST(PropertySetTest, ToStringNamed) {
  const std::vector<std::string> names{"adidas", "juventus", "white"};
  EXPECT_EQ(PS({0, 1}).ToString(names), "adidas&juventus");
  EXPECT_EQ(PS({2}).ToString(names), "white");
  // Ids beyond the name table fall back to numbers.
  EXPECT_EQ(PS({5}).ToString(names), "5");
}

TEST(PropertySetTest, LargeIdsRoundTrip) {
  const PropertyId big = 0xFFFFFFFE;
  const PropertySet s = PS({big, 0});
  EXPECT_TRUE(s.Contains(big));
  EXPECT_EQ(s.size(), 2u);
}

TEST(PropertySetTest, IterationIsSorted) {
  const PropertySet s = PS({9, 4, 7});
  std::vector<PropertyId> seen(s.begin(), s.end());
  EXPECT_EQ(seen, (std::vector<PropertyId>{4, 7, 9}));
}

}  // namespace
}  // namespace mc3
