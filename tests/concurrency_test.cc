// Lock-free read path tests (src/concurrency/, docs/serving.md#lock-free-
// reads): unit coverage of VersionedPublisher + EpochManager (publish/
// retire ordering, grace periods, the starvation bound) including a
// TSan-targeted 8-reader/2-writer stress, plus server-level coverage of the
// serving integration — read-your-writes, the stats version-vector
// consistency contract, health/reads during drain, the queued fallback
// path answering byte-identically, and the linearizable-prefix property:
// every solve observed mid-churn equals the state after some prefix of the
// acknowledged updates.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "concurrency/epoch.h"
#include "concurrency/versioned_publisher.h"
#include "core/instance.h"
#include "obs/json.h"
#include "util/sync.h"

#include "server/server.h"

namespace mc3::concurrency {
namespace {

/// Heap-published test payload whose liveness and integrity are observable:
/// construction/destruction move a shared counter, and the payload carries
/// a version-derived checksum that destruction poisons.
struct TrackedView {
  uint64_t version;
  std::array<uint64_t, 8> payload;
  std::atomic<int>* alive;

  TrackedView(uint64_t v, std::atomic<int>* counter)
      : version(v), alive(counter) {
    for (size_t i = 0; i < payload.size(); ++i) payload[i] = v * (i + 1);
    alive->fetch_add(1, std::memory_order_relaxed);
  }
  ~TrackedView() {
    for (uint64_t& word : payload) word = ~uint64_t{0};
    alive->fetch_sub(1, std::memory_order_relaxed);
  }

  bool Intact() const {
    for (size_t i = 0; i < payload.size(); ++i) {
      if (payload[i] != version * (i + 1)) return false;
    }
    return true;
  }
};

/// Allocates a view for publication. The raw-pointer ownership handoff to
/// the publisher/epoch-manager pair is exactly the contract under test.
const TrackedView* NewTracked(uint64_t v, std::atomic<int>* counter) {
  // mc3-lint: new-delete-ok(ownership passes to the publisher/epoch pair)
  return new TrackedView(v, counter);
}

TEST(ConcurrencyPublisherTest, PublishReturnsDisplacedAndCountsVersions) {
  std::atomic<int> alive{0};
  VersionedPublisher<TrackedView> publisher;
  EXPECT_EQ(publisher.Acquire(), nullptr);
  EXPECT_EQ(publisher.version(), 0u);

  const auto* first = NewTracked(1, &alive);
  EXPECT_EQ(publisher.Publish(first), nullptr);
  EXPECT_EQ(publisher.version(), 1u);
  EXPECT_EQ(publisher.Acquire(), first);

  const auto* second = NewTracked(2, &alive);
  EXPECT_EQ(publisher.Publish(second), first);
  EXPECT_EQ(publisher.version(), 2u);
  EXPECT_EQ(publisher.Acquire(), second);
  delete first;  // mc3-lint: new-delete-ok(displaced before any reader existed)
  // `second` is deleted by the publisher's destructor.
}

TEST(ConcurrencyEpochTest, RetireWithoutReadersFreesOnAdvance) {
  std::atomic<int> alive{0};
  EpochManager manager;
  manager.Retire(NewTracked(1, &alive));
  manager.Retire(NewTracked(2, &alive));
  EXPECT_EQ(alive.load(), 2);
  EXPECT_EQ(manager.PendingRetired(), 2u);
  EXPECT_EQ(manager.AdvanceAndReclaim(), 2u);
  EXPECT_EQ(alive.load(), 0);
  EXPECT_EQ(manager.PendingRetired(), 0u);
  EXPECT_EQ(manager.TotalReclaimed(), 2u);
}

TEST(ConcurrencyEpochTest, AdvanceIsMonotoneAndDestructorDrains) {
  std::atomic<int> alive{0};
  {
    EpochManager manager;
    const uint64_t before = manager.CurrentEpoch();
    manager.AdvanceAndReclaim();
    manager.AdvanceAndReclaim();
    EXPECT_EQ(manager.CurrentEpoch(), before + 2);
    // Left retired on purpose: the destructor must free it.
    ReaderRegistration reader(manager);
    {
      ReadGuard guard(manager, reader);
      manager.Retire(NewTracked(7, &alive));
      manager.AdvanceAndReclaim();  // reader pinned: cannot free yet
      EXPECT_EQ(alive.load(), 1);
    }
  }
  EXPECT_EQ(alive.load(), 0);
}

TEST(ConcurrencyEpochTest, PinnedReaderBlocksReclaimUntilUnpin) {
  std::atomic<int> alive{0};
  EpochManager manager;
  VersionedPublisher<TrackedView> publisher;
  publisher.Publish(NewTracked(1, &alive));

  ReaderRegistration reader(manager);
  {
    ReadGuard guard(manager, reader);
    const TrackedView* view = publisher.Acquire();
    ASSERT_NE(view, nullptr);
    // Writer swaps and retires while we hold the pin.
    manager.Retire(publisher.Publish(NewTracked(2, &alive)));
    EXPECT_EQ(manager.AdvanceAndReclaim(), 0u);
    // The displaced view is still fully alive and intact under the pin.
    EXPECT_EQ(alive.load(), 2);
    EXPECT_EQ(view->version, 1u);
    EXPECT_TRUE(view->Intact());
  }
  // Pin dropped: the next pass reclaims the displaced view.
  EXPECT_EQ(manager.AdvanceAndReclaim(), 1u);
  EXPECT_EQ(alive.load(), 1);
}

TEST(ConcurrencyEpochTest, ReaderPinnedAcrossManyPublishesNeverSeesFreedView) {
  constexpr int kPublishes = 100;
  std::atomic<int> alive{0};
  EpochManager manager;
  VersionedPublisher<TrackedView> publisher;
  publisher.Publish(NewTracked(1, &alive));

  ReaderRegistration reader(manager);
  {
    ReadGuard guard(manager, reader);
    const TrackedView* pinned = publisher.Acquire();
    ASSERT_NE(pinned, nullptr);
    for (int i = 0; i < kPublishes; ++i) {
      manager.Retire(
          publisher.Publish(NewTracked(uint64_t(i) + 2, &alive)));
      manager.AdvanceAndReclaim();
      // Our view was retired at a tag at or above our pin: untouchable.
      ASSERT_TRUE(pinned->Intact()) << "publish " << i;
      ASSERT_EQ(pinned->version, 1u);
    }
    // Nothing reclaimed while the pin spans every retire.
    EXPECT_EQ(alive.load(), kPublishes + 1);
    EXPECT_EQ(manager.TotalReclaimed(), 0u);
  }
  EXPECT_EQ(manager.AdvanceAndReclaim(), size_t{kPublishes});
  EXPECT_EQ(alive.load(), 1);  // the currently published view
}

TEST(ConcurrencyEpochTest, StarvationBoundFreesGarbageBelowThePin) {
  // Garbage tagged strictly below a reader's pinned epoch frees even while
  // that reader stays pinned: a reader that keeps re-pinning (the server's
  // per-request pattern) never stalls reclamation; only one pinned across
  // the whole interval holds its own tail of garbage.
  std::atomic<int> alive{0};
  EpochManager manager;
  manager.Retire(NewTracked(1, &alive));  // tagged at the current epoch

  ReaderRegistration reader(manager);
  {
    ReadGuard guard(manager, reader);  // pinned at the same epoch as the tag
    EXPECT_EQ(manager.AdvanceAndReclaim(), 0u);
  }
  {
    // Re-pin: the new pin's epoch is above the old garbage's tag.
    ReadGuard guard(manager, reader);
    manager.Retire(NewTracked(2, &alive));  // tagged at the new epoch
    EXPECT_EQ(manager.AdvanceAndReclaim(), 1u);  // old garbage frees NOW
    EXPECT_EQ(alive.load(), 1);
  }
  EXPECT_EQ(manager.AdvanceAndReclaim(), 1u);
  EXPECT_EQ(alive.load(), 0);
}

// The TSan target (ci: Concurrency suites run under -fsanitize=thread):
// 8 registered readers continuously pin/acquire/validate while 2 writers
// (serialized, as the server serializes under engine_mu_) publish, retire
// and reclaim. Readers assert they only ever dereference intact payloads.
TEST(ConcurrencyStressTest, EightReadersTwoWritersNeverObserveFreedViews) {
  constexpr int kReaders = 8;
  constexpr int kWriters = 2;
  constexpr int kPublishesPerWriter = 400;

  std::atomic<int> alive{0};
  EpochManager manager;
  VersionedPublisher<TrackedView> publisher;
  publisher.Publish(NewTracked(1, &alive));

  util::Mutex writer_mu;
  std::atomic<uint64_t> next_version{2};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      ReaderRegistration reg(manager);
      while (!stop.load(std::memory_order_acquire)) {
        ReadGuard guard(manager, reg);
        const TrackedView* view = publisher.Acquire();
        ASSERT_NE(view, nullptr);
        ASSERT_TRUE(view->Intact());
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPublishesPerWriter; ++i) {
        util::MutexLock lock(writer_mu);
        const uint64_t version =
            next_version.fetch_add(1, std::memory_order_relaxed);
        manager.Retire(publisher.Publish(NewTracked(version, &alive)));
        manager.AdvanceAndReclaim();
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(reads.load(), 0u);
  // Quiescent: everything retired but the live view reclaims.
  manager.AdvanceAndReclaim();
  manager.AdvanceAndReclaim();
  EXPECT_EQ(alive.load(), 1);
  EXPECT_EQ(manager.TotalReclaimed(),
            uint64_t{kWriters} * kPublishesPerWriter);
}

}  // namespace
}  // namespace mc3::concurrency

// ---------------------------------------------------------------------------
// Serving integration: the lock-free read path end to end.

namespace mc3::server {
namespace {

class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  void Send(const std::string& line) {
    const std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  }

  /// Reads the next response line ("" on EOF).
  std::string ReadLine() {
    size_t newline;
    while ((newline = buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    std::string line = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    return line;
  }

  /// Send + read one raw response line.
  std::string CallRaw(const std::string& line) {
    Send(line);
    return ReadLine();
  }

  /// Send + read one response, parsed.
  obs::JsonValue Call(const std::string& line) {
    const std::string response = CallRaw(line);
    auto parsed = obs::ParseJson(response);
    EXPECT_TRUE(parsed.ok()) << response;
    return parsed.ok() ? *parsed : obs::JsonValue{};
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

int CodeOf(const obs::JsonValue& response) {
  const obs::JsonValue* code = response.Find("code");
  return code != nullptr && code->is_number() ? static_cast<int>(code->number)
                                              : -1;
}

Instance BaseInstance() {
  InstanceBuilder builder;
  builder.AddQuery({"red", "shirt"});
  builder.AddQuery({"tv"});
  builder.SetCost({"red"}, 1);
  builder.SetCost({"shirt"}, 2);
  builder.SetCost({"red", "shirt"}, 2.5);
  builder.SetCost({"tv"}, 1.5);
  return std::move(builder).Build();
}

ServerOptions TestOptions() {
  ServerOptions options;
  options.port = 0;  // ephemeral
  options.default_cost = 2;
  options.connection_workers = 8;
  return options;
}

TEST(ConcurrencyReadPathFlagTest, ParsesBothModesRejectsGarbage) {
  ServerOptions::ReadPath path = ServerOptions::ReadPath::kQueued;
  EXPECT_TRUE(ParseReadPath("lockfree", &path));
  EXPECT_EQ(path, ServerOptions::ReadPath::kLockFree);
  EXPECT_TRUE(ParseReadPath("queued", &path));
  EXPECT_EQ(path, ServerOptions::ReadPath::kQueued);
  EXPECT_FALSE(ParseReadPath("", &path));
  EXPECT_FALSE(ParseReadPath("LockFree", &path));
  EXPECT_FALSE(ParseReadPath("inline", &path));
}

TEST(ConcurrencyLockFreeReadTest, ReadYourWritesAfterEveryAck) {
  // Views publish before the update's ack renders, so a client that saw
  // its 200 must see its write on the very next solve — the contract the
  // docs promise for a single connection.
  Server server(TestOptions());
  ASSERT_TRUE(server.Start(BaseInstance()).ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 8; ++i) {
    const std::string name = "rw_" + std::to_string(i);
    const obs::JsonValue ack = client.Call(
        R"({"op":"update","id":1,"add":[[")" + name + R"("]]})");
    ASSERT_EQ(CodeOf(ack), 200);
    const obs::JsonValue solve = client.Call(R"({"op":"solve","id":2})");
    ASSERT_EQ(CodeOf(solve), 200);
    EXPECT_EQ(solve.Find("queries")->number, 3 + i);
  }
  server.RequestDrain();
  server.Join();
}

TEST(ConcurrencyLockFreeReadTest, QueuedFallbackAnswersByteIdentically) {
  // `--read-path queued` must stay a drop-in fallback: the same request
  // sequence against lockfree and queued servers produces byte-identical
  // solve/snapshot responses, sharded or not.
  for (const uint32_t shards : {uint32_t{0}, uint32_t{2}}) {
    ServerOptions lockfree_options = TestOptions();
    lockfree_options.shards = shards;
    ASSERT_EQ(lockfree_options.read_path, ServerOptions::ReadPath::kLockFree);
    ServerOptions queued_options = lockfree_options;
    queued_options.read_path = ServerOptions::ReadPath::kQueued;
    Server lockfree_server(lockfree_options);
    Server queued_server(queued_options);
    ASSERT_TRUE(lockfree_server.Start(BaseInstance()).ok());
    ASSERT_TRUE(queued_server.Start(BaseInstance()).ok());
    TestClient lockfree_client(lockfree_server.port());
    TestClient queued_client(queued_server.port());
    ASSERT_TRUE(lockfree_client.connected());
    ASSERT_TRUE(queued_client.connected());

    const std::vector<std::string> script = {
        R"({"op":"solve","id":1,"solution":true})",
        R"({"op":"update","id":2,"add":[["blue","sofa"],["green"]]})",
        R"({"op":"solve","id":3,"solution":true})",
        R"({"op":"snapshot","id":4})",
        R"({"op":"update","id":5,"remove":[["blue","sofa"]],"add":[["lamp"]]})",
        R"({"op":"snapshot","id":6})",
        R"({"op":"solve","id":7})",
    };
    for (const std::string& line : script) {
      EXPECT_EQ(lockfree_client.CallRaw(line), queued_client.CallRaw(line))
          << "shards=" << shards << " line=" << line;
    }
    lockfree_server.RequestDrain();
    queued_server.RequestDrain();
    lockfree_server.Join();
    queued_server.Join();
  }
}

TEST(ConcurrencyLockFreeReadTest, HealthNeverQueuesAndReadsRefuseDuringDrain) {
  Server server(TestOptions());
  ASSERT_TRUE(server.Start(BaseInstance()).ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  const obs::JsonValue healthy = client.Call(R"({"op":"health","id":1})");
  ASSERT_EQ(CodeOf(healthy), 200);
  EXPECT_EQ(healthy.Find("status")->string, "ok");
  EXPECT_EQ(healthy.Find("retry_after_ms"), nullptr);

  server.RequestDrain();
  // Health still answers inline while draining — but honestly: 503 with a
  // retry hint, never a hang and never a queue entry.
  const obs::JsonValue draining = client.Call(R"({"op":"health","id":2})");
  EXPECT_EQ(CodeOf(draining), 503);
  EXPECT_EQ(draining.Find("status")->string, "draining");
  ASSERT_NE(draining.Find("retry_after_ms"), nullptr);
  EXPECT_GT(draining.Find("retry_after_ms")->number, 0);
  // Lock-free reads also refuse during drain (they come after the drain
  // check, before admission).
  EXPECT_EQ(CodeOf(client.Call(R"({"op":"solve","id":3})")), 503);
  server.Join();
}

TEST(ConcurrencyLockFreeReadTest, StatsReportsConsistentVersionVectorUnderChurn) {
  // The snapshot-consistency contract (docs/serving.md#lock-free-reads):
  // stats' `versions` vector always comes from one pinned index load, so
  // under concurrent write churn it always has exactly one entry per shard
  // and `view_seq` is monotone per observer.
  ServerOptions options = TestOptions();
  options.shards = 2;
  Server server(options);
  ASSERT_TRUE(server.Start(BaseInstance()).ok());

  std::atomic<bool> done{false};
  std::thread churn([&server, &done] {
    TestClient writer(server.port());
    ASSERT_TRUE(writer.connected());
    for (int i = 0; i < 48; ++i) {
      const obs::JsonValue ack = writer.Call(
          R"({"op":"update","id":1,"add":[["churn_)" + std::to_string(i) +
          R"("]]})");
      ASSERT_EQ(CodeOf(ack), 200);
    }
    done.store(true, std::memory_order_release);
  });

  TestClient reader(server.port());
  ASSERT_TRUE(reader.connected());
  uint64_t last_seq = 0;
  uint64_t observations = 0;
  while (!done.load(std::memory_order_acquire)) {
    const obs::JsonValue stats = reader.Call(R"({"op":"stats","id":2})");
    ASSERT_EQ(CodeOf(stats), 200);
    const obs::JsonValue* seq = stats.Find("view_seq");
    const obs::JsonValue* versions = stats.Find("versions");
    ASSERT_NE(seq, nullptr);
    ASSERT_NE(versions, nullptr);
    ASSERT_TRUE(versions->is_array());
    // One entry per shard, every time: never a torn or partial vector.
    ASSERT_EQ(versions->array.size(), 2u);
    const auto observed = static_cast<uint64_t>(seq->number);
    ASSERT_GE(observed, last_seq);
    ASSERT_GE(observed, 1u);  // Start() published the initial index
    last_seq = observed;
    ++observations;
  }
  churn.join();
  EXPECT_GT(observations, 0u);

  // Quiescent cross-check: per-shard versions can never exceed the number
  // of publishes, and after the churn the final index reflects all of it.
  const obs::JsonValue final_stats = reader.Call(R"({"op":"stats","id":3})");
  ASSERT_EQ(CodeOf(final_stats), 200);
  for (const obs::JsonValue& version : final_stats.Find("versions")->array) {
    ASSERT_TRUE(version.is_number());
    EXPECT_GE(version.number, 1);
  }
  server.RequestDrain();
  server.Join();
}

TEST(ConcurrencyLockFreeReadTest, MidChurnSolvesEqualSomePrefixOfAckedUpdates) {
  // Linearizable-prefix determinism: while one connection applies K
  // add-only updates (each acknowledged before the next is sent), solves
  // racing on another connection must each equal the offline state after
  // SOME prefix of those updates — never a blend. The reference responses
  // come from replaying the same updates against an identical server and
  // solving after every prefix, so the comparison is whole-line bytes.
  constexpr int kUpdates = 16;
  const auto update_line = [](int i) {
    return R"({"op":"update","id":1,"add":[["lin_a_)" + std::to_string(i) +
           R"(","lin_b_)" + std::to_string(i % 3) + R"("]]})";
  };
  const std::string solve_line = R"({"op":"solve","id":9,"solution":true})";

  Server server(TestOptions());
  ASSERT_TRUE(server.Start(BaseInstance()).ok());

  std::atomic<bool> done{false};
  std::vector<std::string> observed;
  std::thread reader_thread([&server, &done, &observed, &solve_line] {
    TestClient reader(server.port());
    ASSERT_TRUE(reader.connected());
    while (!done.load(std::memory_order_acquire)) {
      observed.push_back(reader.CallRaw(solve_line));
    }
  });
  {
    TestClient writer(server.port());
    ASSERT_TRUE(writer.connected());
    for (int i = 0; i < kUpdates; ++i) {
      ASSERT_EQ(CodeOf(writer.Call(update_line(i))), 200);
    }
  }
  done.store(true, std::memory_order_release);
  reader_thread.join();
  server.RequestDrain();
  server.Join();

  // Reference prefixes 0..K from a pristine replica of the same server.
  std::set<std::string> prefixes;
  {
    Server replica(TestOptions());
    ASSERT_TRUE(replica.Start(BaseInstance()).ok());
    TestClient replayer(replica.port());
    ASSERT_TRUE(replayer.connected());
    prefixes.insert(replayer.CallRaw(solve_line));
    for (int i = 0; i < kUpdates; ++i) {
      ASSERT_EQ(CodeOf(replayer.Call(update_line(i))), 200);
      prefixes.insert(replayer.CallRaw(solve_line));
    }
    replica.RequestDrain();
    replica.Join();
  }

  ASSERT_GT(observed.size(), 0u);
  for (const std::string& response : observed) {
    EXPECT_EQ(prefixes.count(response), 1u)
        << "mid-churn solve matches no prefix state: " << response;
  }
}

}  // namespace
}  // namespace mc3::server
