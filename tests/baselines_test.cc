#include "core/baselines.h"

#include <gtest/gtest.h>

#include "core/exact_solver.h"
#include "core/k2_solver.h"
#include "tests/test_util.h"

namespace mc3 {
namespace {

using testing::PaperExample;
using testing::PS;
using testing::RandomInstance;
using testing::RandomInstanceConfig;

TEST(PropertyOrientedTest, SelectsAllSingletons) {
  const Instance inst = PaperExample();
  auto result = PropertyOrientedSolver().Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Covers(inst, result->solution));
  EXPECT_EQ(result->solution.size(), 4u);  // c, a, j, w
  EXPECT_EQ(result->cost, 16);             // 5 + 5 + 5 + 1
}

TEST(PropertyOrientedTest, InfiniteWhenSingletonUnpriced) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 1);
  inst.SetCost(PS({0, 1}), 1);
  auto result = PropertyOrientedSolver().Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, kInfiniteCost);
}

TEST(QueryOrientedTest, SelectsWholeQueries) {
  const Instance inst = PaperExample();
  auto result = QueryOrientedSolver().Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Covers(inst, result->solution));
  EXPECT_EQ(result->solution.size(), 2u);  // JAW and AC
  EXPECT_EQ(result->cost, 8);              // 5 + 3
}

TEST(QueryOrientedTest, SharedQueriesNotDoubleCounted) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.AddQuery(PS({1, 2}));
  inst.SetCost(PS({0, 1}), 2);
  inst.SetCost(PS({1, 2}), 2);
  auto result = QueryOrientedSolver().Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 4);
}

TEST(MixedTest, RejectsLongQueries) {
  Instance inst;
  inst.AddQuery(PS({0, 1, 2}));
  auto result = MixedSolver().Solve(inst);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(MixedTest, UniformCostStar) {
  // Star: queries xa, xb, xc with uniform cost 1. Min #classifiers: X plus
  // the three other singletons (4) vs three pairs (3) -> the three pairs...
  // actually X + A + B + C = 4 classifiers; XA + XB + XC = 3. Mixed must
  // find 3.
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.AddQuery(PS({0, 2}));
  inst.AddQuery(PS({0, 3}));
  for (PropertyId p = 0; p <= 3; ++p) inst.SetCost(PS({p}), 1);
  inst.SetCost(PS({0, 1}), 1);
  inst.SetCost(PS({0, 2}), 1);
  inst.SetCost(PS({0, 3}), 1);
  auto result = MixedSolver().Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Covers(inst, result->solution));
  EXPECT_EQ(result->cost, 3);
}

TEST(MixedTest, SingletonQueriesForced) {
  Instance inst;
  inst.AddQuery(PS({0}));
  inst.AddQuery(PS({0, 1}));
  for (PropertyId p = 0; p <= 1; ++p) inst.SetCost(PS({p}), 1);
  inst.SetCost(PS({0, 1}), 1);
  auto result = MixedSolver().Solve(inst);
  ASSERT_TRUE(result.ok());
  // X is forced; then Y or XY completes: 2 classifiers total.
  EXPECT_EQ(result->cost, 2);
}

TEST(MixedTest, UnpricedPairForcesSingletons) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 1);
  inst.SetCost(PS({1}), 1);
  auto result = MixedSolver().Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 2);
}

TEST(MixedTest, UnpricedSingletonForcesPair) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 1);
  inst.SetCost(PS({0, 1}), 1);
  auto result = MixedSolver().Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 1);
}

TEST(MixedTest, InfeasibleQueryReported) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({0}), 1);
  auto result = MixedSolver().Solve(inst);
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

// On uniform-cost k<=2 instances, Mixed is exact (it solves min-cardinality
// VC), matching the paper's Figure 3a claim.
class MixedOptimalityTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, MixedOptimalityTest, ::testing::Range(0, 20));

TEST_P(MixedOptimalityTest, ExactOnUniformCosts) {
  RandomInstanceConfig config;
  config.num_queries = 7;
  config.pool = 7;
  config.max_query_length = 2;
  config.cost_min = 1;
  config.cost_max = 1;  // uniform
  config.priced_probability = 1.0;
  config.zero_probability = 0;
  const Instance inst = RandomInstance(config, GetParam() * 311 + 7);
  auto mixed = MixedSolver().Solve(inst);
  auto k2 = K2ExactSolver().Solve(inst);
  ASSERT_TRUE(mixed.ok());
  ASSERT_TRUE(k2.ok());
  EXPECT_TRUE(Covers(inst, mixed->solution));
  EXPECT_DOUBLE_EQ(mixed->cost, k2->cost);
}

TEST(LocalGreedyTest, CoversPaperExample) {
  const Instance inst = PaperExample();
  auto result = LocalGreedySolver().Solve(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Covers(inst, result->solution));
  // Local-greedy picks the cheapest single-query cover first (AC at 3 for
  // the chelsea query? q1's cheapest cover is AJ+W at 4; q2's is AC at 3).
  // Then reuses nothing and finishes q1 at 4 -> total 7 here.
  EXPECT_EQ(result->cost, 7);
}

TEST(LocalGreedyTest, ReusesSelectedClassifiers) {
  // Queries xy and xz. Covering xy first with X+Y leaves X free for xz.
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.AddQuery(PS({0, 2}));
  inst.SetCost(PS({0}), 1);
  inst.SetCost(PS({1}), 1);
  inst.SetCost(PS({2}), 5);
  inst.SetCost(PS({0, 1}), 4);
  inst.SetCost(PS({0, 2}), 4);
  auto result = LocalGreedySolver().Solve(inst);
  ASSERT_TRUE(result.ok());
  // xy covered by X+Y (2); then xz's options: X(free)+Z(5) = 5 vs XZ 4.
  EXPECT_EQ(result->cost, 6);
}

TEST(LocalGreedyTest, InfeasibleReported) {
  Instance inst;
  inst.AddQuery(PS({0, 1}));
  inst.SetCost(PS({1}), 1);
  auto result = LocalGreedySolver().Solve(inst);
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

class LocalGreedySweepTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, LocalGreedySweepTest,
                         ::testing::Range(0, 25));

TEST_P(LocalGreedySweepTest, AlwaysCoversAndNeverBeatsExact) {
  RandomInstanceConfig config;
  config.num_queries = 6;
  config.pool = 7;
  config.max_query_length = 4;
  const Instance inst = RandomInstance(config, GetParam() * 17 + 1);
  auto result = LocalGreedySolver().Solve(inst);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(Covers(inst, result->solution));
  auto exact = ExactSolver().Solve(inst);
  ASSERT_TRUE(exact.ok());
  EXPECT_GE(result->cost, exact->cost - 1e-9);
}

}  // namespace
}  // namespace mc3
