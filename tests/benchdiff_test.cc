// Tests of the mc3_benchdiff differ library: loading bench documents,
// exact counter gating, MAD-based wall-time comparison, and the
// mc3.bench_diff/1 / mc3.bench_baseline/1 render+validate round trips.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "benchdiff/benchdiff.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace mc3 {
namespace {

using benchdiff::BenchData;
using benchdiff::CaseData;
using benchdiff::DiffBenchData;
using benchdiff::DiffOptions;
using benchdiff::DiffReport;
using benchdiff::Finding;

BenchData MakeData() {
  BenchData data;
  data.schema = obs::kBenchReportSchema;
  data.obs_enabled = true;
  data.machine = "linux/x86_64 test (4 threads)";
  CaseData general;
  general.counters = {{"setcover.greedy.heap_pops", 1000},
                      {"preprocess.runs", 1}};
  general.wall_seconds = {0.100, 0.101, 0.099};
  data.cases.emplace_back("general", general);
  CaseData k2;
  k2.counters = {{"flow.dinic.augmenting_paths", 34}};
  k2.wall_seconds = {0.010, 0.010, 0.011};
  data.cases.emplace_back("k2", k2);
  return data;
}

size_t CountKind(const DiffReport& report, const std::string& kind) {
  size_t n = 0;
  for (const Finding& f : report.findings) {
    if (f.kind == kind) ++n;
  }
  return n;
}

TEST(BenchDiffTest, IdenticalDataReportsNoFindings) {
  const BenchData data = MakeData();
  const DiffReport report = DiffBenchData(data, data, DiffOptions{});
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.NumRegressions(), 0u);
  EXPECT_EQ(report.cases_compared, 2u);
  EXPECT_EQ(report.counters_compared, 3u);
}

TEST(BenchDiffTest, CounterDriftIsARegressionAtZeroTolerance) {
  const BenchData baseline = MakeData();
  BenchData current = MakeData();
  current.cases[0].second.counters["setcover.greedy.heap_pops"] = 1001;
  const DiffReport report = DiffBenchData(baseline, current, DiffOptions{});
  EXPECT_EQ(CountKind(report, "counter_drift"), 1u);
  EXPECT_EQ(report.NumRegressions(), 1u);
  const Finding& f = report.findings[0];
  EXPECT_EQ(f.case_name, "general");
  EXPECT_EQ(f.metric, "setcover.greedy.heap_pops");
  EXPECT_EQ(f.baseline, 1000);
  EXPECT_EQ(f.current, 1001);
  EXPECT_TRUE(f.regression);
}

TEST(BenchDiffTest, ToleranceSuppressesSmallDrift) {
  const BenchData baseline = MakeData();
  BenchData current = MakeData();
  current.cases[0].second.counters["setcover.greedy.heap_pops"] = 1040;
  DiffOptions options;
  options.counter_tolerance = 0.05;  // 5% allowed; 4% drift passes
  EXPECT_EQ(DiffBenchData(baseline, current, options).NumRegressions(), 0u);
  options.counter_tolerance = 0.03;  // 3% allowed; 4% drift fails
  EXPECT_EQ(DiffBenchData(baseline, current, options).NumRegressions(), 1u);
}

TEST(BenchDiffTest, MissingAndNewCountersAreRegressions) {
  const BenchData baseline = MakeData();
  BenchData current = MakeData();
  current.cases[0].second.counters.erase("preprocess.runs");
  current.cases[1].second.counters["flow.dinic.phases"] = 2;
  const DiffReport report = DiffBenchData(baseline, current, DiffOptions{});
  EXPECT_EQ(CountKind(report, "counter_missing"), 1u);
  EXPECT_EQ(CountKind(report, "counter_new"), 1u);
  EXPECT_EQ(report.NumRegressions(), 2u);
}

TEST(BenchDiffTest, MissingCaseIsARegressionNewCaseIsANote) {
  const BenchData baseline = MakeData();
  BenchData current = MakeData();
  current.cases.erase(current.cases.begin());  // drop "general"
  CaseData fresh;
  fresh.counters = {{"online.updates", 11}};
  current.cases.emplace_back("online", fresh);
  const DiffReport report = DiffBenchData(baseline, current, DiffOptions{});
  EXPECT_EQ(CountKind(report, "case_missing"), 1u);
  EXPECT_EQ(CountKind(report, "case_new"), 1u);
  EXPECT_EQ(report.NumRegressions(), 1u);  // only the missing case gates
}

TEST(BenchDiffTest, ObsDisabledCurrentFailsLoudly) {
  const BenchData baseline = MakeData();
  BenchData current = MakeData();
  current.obs_enabled = false;
  const DiffReport report = DiffBenchData(baseline, current, DiffOptions{});
  EXPECT_EQ(CountKind(report, "obs_disabled"), 1u);
  EXPECT_EQ(report.NumRegressions(), 1u);
}

TEST(BenchDiffTest, WallRegressionBeyondNoiseFloorGates) {
  const BenchData baseline = MakeData();
  BenchData current = MakeData();
  // 3x slow-down on "general": far beyond the 25% tolerance and the MAD of
  // the ~1ms jitter in the fixtures.
  current.cases[0].second.wall_seconds = {0.300, 0.301, 0.299};
  const DiffReport report = DiffBenchData(baseline, current, DiffOptions{});
  EXPECT_EQ(CountKind(report, "wall_regression"), 1u);
  EXPECT_TRUE(report.wall_compared);
}

TEST(BenchDiffTest, WallImprovementIsANote) {
  const BenchData baseline = MakeData();
  BenchData current = MakeData();
  current.cases[0].second.wall_seconds = {0.030, 0.031, 0.029};
  const DiffReport report = DiffBenchData(baseline, current, DiffOptions{});
  EXPECT_EQ(CountKind(report, "wall_improvement"), 1u);
  EXPECT_EQ(report.NumRegressions(), 0u);
}

TEST(BenchDiffTest, SmallJitterWithinNoiseFloorPasses) {
  const BenchData baseline = MakeData();
  BenchData current = MakeData();
  current.cases[0].second.wall_seconds = {0.105, 0.104, 0.106};  // 4% jitter
  const DiffReport report = DiffBenchData(baseline, current, DiffOptions{});
  EXPECT_EQ(CountKind(report, "wall_regression"), 0u);
  EXPECT_EQ(report.NumRegressions(), 0u);
}

TEST(BenchDiffTest, CountersOnlySkipsWallComparison) {
  const BenchData baseline = MakeData();
  BenchData current = MakeData();
  current.cases[0].second.wall_seconds = {9.0};
  DiffOptions options;
  options.counters_only = true;
  const DiffReport report = DiffBenchData(baseline, current, options);
  EXPECT_FALSE(report.wall_compared);
  EXPECT_EQ(report.NumRegressions(), 0u);
}

TEST(BenchDiffTest, DifferentMachinesSkipWallComparison) {
  const BenchData baseline = MakeData();
  BenchData current = MakeData();
  current.machine = "darwin/aarch64 other (8 threads)";
  current.cases[0].second.wall_seconds = {9.0};  // would gate if compared
  const DiffReport report = DiffBenchData(baseline, current, DiffOptions{});
  EXPECT_FALSE(report.wall_compared);
  EXPECT_EQ(CountKind(report, "wall_skipped"), 2u);
  EXPECT_EQ(report.NumRegressions(), 0u);
}

TEST(BenchDiffTest, MedianAndMad) {
  EXPECT_EQ(benchdiff::Median({}), 0.0);
  EXPECT_EQ(benchdiff::Median({3.0}), 3.0);
  EXPECT_EQ(benchdiff::Median({3.0, 1.0}), 2.0);
  EXPECT_EQ(benchdiff::Median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_EQ(benchdiff::MedianAbsDeviation({1.0, 2.0, 9.0}, 2.0), 1.0);
}

TEST(BenchDiffTest, DiffJsonRoundTripValidates) {
  const BenchData baseline = MakeData();
  BenchData current = MakeData();
  current.cases[0].second.counters["preprocess.runs"] = 2;
  const DiffOptions options;
  const DiffReport report = DiffBenchData(baseline, current, options);
  const std::string json = benchdiff::RenderDiffJson(report, options);
  EXPECT_TRUE(benchdiff::ValidateBenchDiffJson(json).ok());
  EXPECT_NE(json.find("mc3.bench_diff/1"), std::string::npos);
  EXPECT_FALSE(benchdiff::ValidateBenchDiffJson("{}").ok());
  EXPECT_FALSE(benchdiff::ValidateBenchDiffJson("not json").ok());
}

TEST(BenchDiffTest, BaselineRoundTrip) {
  const BenchData data = MakeData();
  const std::string json = benchdiff::RenderBaselineJson(data);
  auto loaded = benchdiff::LoadBenchData(json);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->schema, benchdiff::kBenchBaselineSchema);
  EXPECT_TRUE(loaded->obs_enabled);
  ASSERT_EQ(loaded->cases.size(), 2u);
  EXPECT_EQ(loaded->cases[0].first, "general");
  EXPECT_EQ(loaded->cases[0].second.counters, data.cases[0].second.counters);
  // Baselines are counters-only: wall times do not survive the round trip.
  EXPECT_TRUE(loaded->cases[0].second.wall_seconds.empty());
  // Diffing a report against its own baseline is clean (counters only).
  DiffOptions options;
  options.counters_only = true;
  EXPECT_EQ(DiffBenchData(*loaded, data, options).NumRegressions(), 0u);
}

TEST(BenchDiffTest, LoadsRenderedBenchReport) {
  obs::Trace trace("bench");
  std::vector<obs::BenchCase> cases;
  obs::BenchCase bench_case;
  bench_case.meta.tool = "bench";
  bench_case.meta.solver = "general";
  bench_case.meta.workload = "general";
  bench_case.meta.total_seconds = 0.125;
  bench_case.trace = &trace;
  bench_case.counters = {{"preprocess.runs", 1}};
  bench_case.wall_seconds = {0.125, 0.127};
  cases.push_back(std::move(bench_case));
  obs::BenchRunInfo run;
  run.repeat = 2;
  const std::string json =
      obs::RenderBenchReport(cases, obs::MetricsSnapshot{}, run);
  auto loaded = benchdiff::LoadBenchData(json);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->schema, obs::kBenchReportSchema);
  ASSERT_EQ(loaded->cases.size(), 1u);
  EXPECT_EQ(loaded->cases[0].first, "general");
  EXPECT_EQ(loaded->cases[0].second.counters.at("preprocess.runs"), 1u);
  EXPECT_EQ(loaded->cases[0].second.wall_seconds.size(), 2u);
  EXPECT_FALSE(loaded->machine.empty());
}

TEST(BenchDiffTest, RejectsUnknownSchema) {
  EXPECT_FALSE(
      benchdiff::LoadBenchData(R"({"schema": "mc3.other/9"})").ok());
  EXPECT_FALSE(benchdiff::LoadBenchData(R"({"no": "schema"})").ok());
  EXPECT_FALSE(benchdiff::LoadBenchData("garbage").ok());
}

}  // namespace
}  // namespace mc3
