#include "flow/max_flow.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mc3::flow {
namespace {

class MaxFlowAlgoTest : public ::testing::TestWithParam<MaxFlowAlgorithm> {};

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, MaxFlowAlgoTest,
    ::testing::Values(MaxFlowAlgorithm::kDinic, MaxFlowAlgorithm::kPushRelabel,
                      MaxFlowAlgorithm::kEdmondsKarp),
    [](const ::testing::TestParamInfo<MaxFlowAlgorithm>& info) {
      return MaxFlowAlgorithmName(info.param);
    });

TEST_P(MaxFlowAlgoTest, SingleEdge) {
  FlowNetwork net(2);
  net.AddEdge(0, 1, 5);
  EXPECT_DOUBLE_EQ(MaxFlow(&net, 0, 1, GetParam()), 5);
}

TEST_P(MaxFlowAlgoTest, SeriesTakesMin) {
  FlowNetwork net(3);
  net.AddEdge(0, 1, 5);
  net.AddEdge(1, 2, 3);
  EXPECT_DOUBLE_EQ(MaxFlow(&net, 0, 2, GetParam()), 3);
}

TEST_P(MaxFlowAlgoTest, ParallelPathsAdd) {
  FlowNetwork net(4);
  net.AddEdge(0, 1, 4);
  net.AddEdge(1, 3, 4);
  net.AddEdge(0, 2, 6);
  net.AddEdge(2, 3, 2);
  EXPECT_DOUBLE_EQ(MaxFlow(&net, 0, 3, GetParam()), 6);
}

TEST_P(MaxFlowAlgoTest, DisconnectedIsZero) {
  FlowNetwork net(4);
  net.AddEdge(0, 1, 5);
  net.AddEdge(2, 3, 5);
  EXPECT_DOUBLE_EQ(MaxFlow(&net, 0, 3, GetParam()), 0);
}

TEST_P(MaxFlowAlgoTest, ClassicCLRSNetwork) {
  // CLRS figure 26.1: max flow 23.
  FlowNetwork net(6);
  net.AddEdge(0, 1, 16);
  net.AddEdge(0, 2, 13);
  net.AddEdge(1, 2, 10);
  net.AddEdge(2, 1, 4);
  net.AddEdge(1, 3, 12);
  net.AddEdge(3, 2, 9);
  net.AddEdge(2, 4, 14);
  net.AddEdge(4, 3, 7);
  net.AddEdge(3, 5, 20);
  net.AddEdge(4, 5, 4);
  EXPECT_DOUBLE_EQ(MaxFlow(&net, 0, 5, GetParam()), 23);
}

TEST_P(MaxFlowAlgoTest, FractionalCapacities) {
  FlowNetwork net(3);
  net.AddEdge(0, 1, 0.5);
  net.AddEdge(0, 1, 0.25);
  net.AddEdge(1, 2, 10);
  EXPECT_DOUBLE_EQ(MaxFlow(&net, 0, 2, GetParam()), 0.75);
}

TEST_P(MaxFlowAlgoTest, MinCutSeparatesSourceFromSink) {
  FlowNetwork net(6);
  net.AddEdge(0, 1, 16);
  net.AddEdge(0, 2, 13);
  net.AddEdge(1, 3, 12);
  net.AddEdge(2, 4, 14);
  net.AddEdge(3, 2, 9);
  net.AddEdge(4, 3, 7);
  net.AddEdge(3, 5, 20);
  net.AddEdge(4, 5, 4);
  const Capacity value = MaxFlow(&net, 0, 5, GetParam());
  const auto reachable = net.ResidualReachable(0);
  EXPECT_TRUE(reachable[0]);
  EXPECT_FALSE(reachable[5]);
  // Cut capacity (original caps of forward edges crossing the cut) equals
  // the flow value.
  Capacity cut = 0;
  for (int id = 0; id < net.NumEdges(); id += 2) {
    const auto& fwd = net.edge(id);
    const auto& rev = net.edge(id + 1);
    const NodeId from = rev.to;
    if (reachable[from] && !reachable[fwd.to]) cut += fwd.original;
  }
  EXPECT_NEAR(cut, value, 1e-9);
}

TEST_P(MaxFlowAlgoTest, FlowConservationHolds) {
  FlowNetwork net(5);
  net.AddEdge(0, 1, 7);
  net.AddEdge(0, 2, 9);
  net.AddEdge(1, 3, 6);
  net.AddEdge(2, 3, 4);
  net.AddEdge(2, 1, 2);
  net.AddEdge(3, 4, 12);
  net.AddEdge(1, 4, 1);
  const Capacity value = MaxFlow(&net, 0, 4, GetParam());
  std::vector<Capacity> balance(5, 0);
  for (int id = 0; id < net.NumEdges(); id += 2) {
    const Capacity f = net.Flow(id);
    EXPECT_GE(f, -1e-9);
    EXPECT_LE(f, net.edge(id).original + 1e-9);
    const NodeId from = net.edge(id + 1).to;
    balance[from] -= f;
    balance[net.edge(id).to] += f;
  }
  EXPECT_NEAR(balance[0], -value, 1e-9);
  EXPECT_NEAR(balance[4], value, 1e-9);
  for (NodeId v = 1; v < 4; ++v) EXPECT_NEAR(balance[v], 0, 1e-9);
}

TEST_P(MaxFlowAlgoTest, ResetFlowRestores) {
  FlowNetwork net(2);
  net.AddEdge(0, 1, 5);
  EXPECT_DOUBLE_EQ(MaxFlow(&net, 0, 1, GetParam()), 5);
  net.ResetFlow();
  EXPECT_DOUBLE_EQ(MaxFlow(&net, 0, 1, GetParam()), 5);
}

// Random graphs: all three algorithms must agree.
class MaxFlowRandomTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MaxFlowRandomTest, ::testing::Range(0, 20));

TEST_P(MaxFlowRandomTest, AlgorithmsAgree) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.UniformInt(0, 10));
  const int m = static_cast<int>(rng.UniformInt(1, 3 * n));
  FlowNetwork base(n);
  for (int i = 0; i < m; ++i) {
    const auto u = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    const auto v = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    if (u == v) continue;
    base.AddEdge(u, v, static_cast<Capacity>(rng.UniformInt(0, 20)));
  }
  FlowNetwork net1 = base;
  FlowNetwork net2 = base;
  FlowNetwork net3 = base;
  const Capacity dinic = MaxFlowDinic(&net1, 0, n - 1);
  const Capacity push_relabel = MaxFlowPushRelabel(&net2, 0, n - 1);
  const Capacity edmonds_karp = MaxFlowEdmondsKarp(&net3, 0, n - 1);
  EXPECT_NEAR(dinic, edmonds_karp, 1e-6);
  EXPECT_NEAR(push_relabel, edmonds_karp, 1e-6);
}

}  // namespace
}  // namespace mc3::flow
