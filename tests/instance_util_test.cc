#include "core/instance_util.h"

#include <gtest/gtest.h>

#include "core/exact_solver.h"
#include "tests/test_util.h"

namespace mc3 {
namespace {

using testing::PS;

TEST(SubInstanceTest, KeepsSelectedQueriesAndRelevantCosts) {
  const Instance inst = testing::PaperExample();
  const Instance sub = SubInstance(inst, {1});  // the chelsea-adidas query
  EXPECT_EQ(sub.NumQueries(), 1u);
  EXPECT_EQ(sub.queries()[0], inst.queries()[1]);
  // Only classifiers within {chelsea, adidas} survive: C, A, AC.
  EXPECT_EQ(sub.costs().size(), 3u);
  EXPECT_TRUE(sub.Validate().ok());
}

TEST(SubInstanceTest, EmptySelection) {
  const Instance sub = SubInstance(testing::PaperExample(), {});
  EXPECT_EQ(sub.NumQueries(), 0u);
  EXPECT_TRUE(sub.costs().empty());
}

TEST(SubInstanceTest, CarriesPropertyNames) {
  const Instance inst = testing::PaperExample();
  const Instance sub = SubInstance(inst, {0});
  EXPECT_EQ(sub.property_names(), inst.property_names());
}

TEST(RandomSubInstanceTest, DeterministicPerSeed) {
  const Instance inst = testing::PaperExample();
  const Instance a = RandomSubInstance(inst, 1, 5);
  const Instance b = RandomSubInstance(inst, 1, 5);
  ASSERT_EQ(a.NumQueries(), 1u);
  EXPECT_EQ(a.queries()[0], b.queries()[0]);
}

TEST(RandomSubInstanceTest, CountClamped) {
  const Instance inst = testing::PaperExample();
  const Instance sub = RandomSubInstance(inst, 99, 1);
  EXPECT_EQ(sub.NumQueries(), 2u);
}

TEST(RandomSubInstanceTest, SampledInstancesSolvable) {
  testing::RandomInstanceConfig config;
  config.num_queries = 10;
  const Instance inst = testing::RandomInstance(config, 3);
  for (size_t count : {2u, 5u, 8u}) {
    const Instance sub = RandomSubInstance(inst, count, count * 17);
    EXPECT_EQ(sub.NumQueries(), count);
    EXPECT_TRUE(sub.Validate().ok());
    auto result = ExactSolver().Solve(sub);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }
}

TEST(PartitionQueriesTest, SplitsOnSharedProperties) {
  const std::vector<PropertySet> queries = {PS({0, 1}), PS({2, 3}),
                                            PS({1, 4}), PS({5})};
  const ComponentPartition partition = PartitionQueries(queries);
  EXPECT_EQ(partition.num_components, 3u);
  // Ids in first-appearance order.
  EXPECT_EQ(partition.component_of,
            (std::vector<size_t>{0, 1, 0, 2}));
}

TEST(PartitionQueriesTest, SubsetOfQueries) {
  const std::vector<PropertySet> queries = {PS({0, 1}), PS({1, 2}),
                                            PS({3})};
  // Without the middle query, {0,1} and {3} are separate components.
  const ComponentPartition partition = PartitionQueries(queries, {0, 2});
  EXPECT_EQ(partition.num_components, 2u);
  EXPECT_EQ(partition.component_of, (std::vector<size_t>{0, 1}));

  const ComponentPartition empty = PartitionQueries(queries, {});
  EXPECT_EQ(empty.num_components, 0u);
}

TEST(DecomposeComponentsTest, ComponentsSolveIndependently) {
  InstanceBuilder b;
  b.AddQuery({"a", "b"});
  b.AddQuery({"c", "d"});
  b.SetCost({"a"}, 1);
  b.SetCost({"b"}, 2);
  b.SetCost({"a", "b"}, 2);
  b.SetCost({"c"}, 3);
  b.SetCost({"d"}, 4);
  const Instance inst = std::move(b).Build();

  const std::vector<Instance> components = DecomposeComponents(inst);
  ASSERT_EQ(components.size(), 2u);
  Cost total = 0;
  size_t queries = 0;
  for (const Instance& component : components) {
    EXPECT_TRUE(component.Validate().ok());
    auto solved = ExactSolver().Solve(component);
    ASSERT_TRUE(solved.ok());
    total += solved->cost;
    queries += component.NumQueries();
  }
  EXPECT_EQ(queries, inst.NumQueries());
  auto whole = ExactSolver().Solve(inst);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(total, whole->cost);
}

TEST(DecomposeComponentsTest, SingleComponentAndEmpty) {
  EXPECT_TRUE(DecomposeComponents(Instance{}).empty());
  const std::vector<Instance> one =
      DecomposeComponents(testing::PaperExample());
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].NumQueries(), 2u);
}

TEST(BoundClassifierLengthTest, DropsLongClassifiers) {
  const Instance inst = testing::PaperExample();
  const Instance bounded = BoundClassifierLength(inst, 2);
  EXPECT_EQ(bounded.CostOf(PS({0, 1, 2})), kInfiniteCost);  // JAW gone
  EXPECT_EQ(bounded.NumQueries(), inst.NumQueries());
  // All length-<=2 classifiers survive: 9 - 1 = 8.
  EXPECT_EQ(bounded.costs().size(), 8u);
  EXPECT_TRUE(bounded.IsFeasible());
}

TEST(BoundClassifierLengthTest, BoundedStillSolvableAndNoCheaper) {
  const Instance inst = testing::PaperExample();
  const Instance bounded = BoundClassifierLength(inst, 1);
  auto bounded_result = ExactSolver().Solve(bounded);
  auto full_result = ExactSolver().Solve(inst);
  ASSERT_TRUE(bounded_result.ok());
  ASSERT_TRUE(full_result.ok());
  // Restricting the classifier menu can only increase the optimum.
  EXPECT_GE(bounded_result->cost, full_result->cost);
  EXPECT_EQ(bounded_result->cost, 16);  // all singletons
}

}  // namespace
}  // namespace mc3
