#include "core/cover_dp.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mc3 {
namespace {

using testing::PS;

std::function<Cost(const PropertySet&)> CostsFrom(const Instance& inst) {
  return [&inst](const PropertySet& c) { return inst.CostOf(c); };
}

TEST(CoverDpTest, SingletonQuery) {
  Instance inst;
  inst.SetCost(PS({0}), 3);
  auto cover = MinCostQueryCover(PS({0}), CostsFrom(inst));
  ASSERT_TRUE(cover.has_value());
  EXPECT_EQ(cover->cost, 3);
  ASSERT_EQ(cover->classifiers.size(), 1u);
  EXPECT_EQ(cover->classifiers[0], PS({0}));
}

TEST(CoverDpTest, PairPicksCheaperOption) {
  Instance inst;
  inst.SetCost(PS({0}), 2);
  inst.SetCost(PS({1}), 2);
  inst.SetCost(PS({0, 1}), 3);
  auto cover = MinCostQueryCover(PS({0, 1}), CostsFrom(inst));
  ASSERT_TRUE(cover.has_value());
  EXPECT_EQ(cover->cost, 3);
  EXPECT_EQ(cover->classifiers.size(), 1u);
}

TEST(CoverDpTest, MixedCover) {
  // {0,1,2}: best is {0,1} at 2 plus {2} at 1.
  Instance inst;
  inst.SetCost(PS({0}), 5);
  inst.SetCost(PS({1}), 5);
  inst.SetCost(PS({2}), 1);
  inst.SetCost(PS({0, 1}), 2);
  inst.SetCost(PS({0, 1, 2}), 4);
  auto cover = MinCostQueryCover(PS({0, 1, 2}), CostsFrom(inst));
  ASSERT_TRUE(cover.has_value());
  EXPECT_EQ(cover->cost, 3);
  EXPECT_EQ(cover->classifiers.size(), 2u);
}

TEST(CoverDpTest, OverlappingClassifiersAllowed) {
  Instance inst;
  inst.SetCost(PS({0, 1}), 1);
  inst.SetCost(PS({1, 2}), 1);
  auto cover = MinCostQueryCover(PS({0, 1, 2}), CostsFrom(inst));
  ASSERT_TRUE(cover.has_value());
  EXPECT_EQ(cover->cost, 2);
}

TEST(CoverDpTest, NoCoverReturnsNullopt) {
  Instance inst;
  inst.SetCost(PS({0}), 1);
  auto cover = MinCostQueryCover(PS({0, 1}), CostsFrom(inst));
  EXPECT_FALSE(cover.has_value());
}

TEST(CoverDpTest, ZeroCostClassifiersUsed) {
  Instance inst;
  inst.SetCost(PS({0}), 0);
  inst.SetCost(PS({1}), 4);
  inst.SetCost(PS({0, 1}), 3);
  auto cover = MinCostQueryCover(PS({0, 1}), CostsFrom(inst));
  ASSERT_TRUE(cover.has_value());
  EXPECT_EQ(cover->cost, 3);  // XY at 3 beats X(0) + Y(4)
}

TEST(CoverDpTest, CoverUnionEqualsQuery) {
  Instance inst;
  inst.SetCost(PS({0}), 1);
  inst.SetCost(PS({1}), 1);
  inst.SetCost(PS({2}), 1);
  inst.SetCost(PS({1, 2}), 1);
  auto cover = MinCostQueryCover(PS({0, 1, 2}), CostsFrom(inst));
  ASSERT_TRUE(cover.has_value());
  PropertySet unioned;
  for (const PropertySet& c : cover->classifiers) {
    unioned = unioned.UnionWith(c);
  }
  EXPECT_EQ(unioned, PS({0, 1, 2}));
}

}  // namespace
}  // namespace mc3
