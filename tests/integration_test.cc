// End-to-end integration: every solver against every kind of workload,
// checking coverage always, optimality where promised, and the cost
// relationships the paper's experiments rely on.
#include <gtest/gtest.h>

#include <memory>

#include "core/mc3.h"
#include "data/bestbuy.h"
#include "data/private_dataset.h"
#include "data/synthetic.h"
#include "tests/test_util.h"

namespace mc3 {
namespace {

using testing::RandomInstance;
using testing::RandomInstanceConfig;

std::vector<std::unique_ptr<Solver>> AllGeneralSolvers() {
  std::vector<std::unique_ptr<Solver>> solvers;
  solvers.push_back(std::make_unique<GeneralSolver>());
  solvers.push_back(std::make_unique<ShortFirstSolver>());
  solvers.push_back(std::make_unique<PropertyOrientedSolver>());
  solvers.push_back(std::make_unique<QueryOrientedSolver>());
  solvers.push_back(std::make_unique<LocalGreedySolver>());
  return solvers;
}

class SolverSweepTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, SolverSweepTest, ::testing::Range(0, 12));

TEST_P(SolverSweepTest, AllSolversCoverRandomInstances) {
  RandomInstanceConfig config;
  config.num_queries = 12;
  config.pool = 10;
  config.max_query_length = 4;
  config.priced_probability = 1.0;  // keep PO/QO finite
  const Instance inst = RandomInstance(config, GetParam() * 1001 + 7);
  for (const auto& solver : AllGeneralSolvers()) {
    auto result = solver->Solve(inst);
    ASSERT_TRUE(result.ok())
        << solver->Name() << ": " << result.status().ToString();
    EXPECT_TRUE(Covers(inst, result->solution)) << solver->Name();
    EXPECT_EQ(result->cost, result->solution.TotalCost(inst))
        << solver->Name();
  }
}

TEST_P(SolverSweepTest, Mc3gNeverWorseThanBothNaiveBaselinesTogether) {
  // MC3[G] picks the better of greedy/f-approx over a universe that
  // includes both all-singletons and all-whole-queries as feasible covers;
  // it is not guaranteed to beat each baseline, but it must never exceed
  // the query-oriented cost by more than the guarantee factor; sanity-check
  // a much weaker invariant: it never exceeds PO + QO combined.
  RandomInstanceConfig config;
  config.num_queries = 10;
  config.pool = 9;
  config.max_query_length = 3;
  config.priced_probability = 1.0;
  const Instance inst = RandomInstance(config, GetParam() * 37 + 19);
  auto general = GeneralSolver().Solve(inst);
  auto po = PropertyOrientedSolver().Solve(inst);
  auto qo = QueryOrientedSolver().Solve(inst);
  ASSERT_TRUE(general.ok());
  ASSERT_TRUE(po.ok());
  ASSERT_TRUE(qo.ok());
  EXPECT_LE(general->cost, po->cost + qo->cost);
}

TEST(IntegrationTest, BestBuyAllShortSolversAgreeOnOptimal) {
  data::BestBuyConfig config;
  config.num_queries = 200;
  const Instance full = data::GenerateBestBuy(config);
  // Figure 3a runs the short-query algorithms, so restrict BB to its short
  // slice (95% of the load).
  std::vector<size_t> short_idx;
  for (size_t i = 0; i < full.NumQueries(); ++i) {
    if (full.queries()[i].size() <= 2) short_idx.push_back(i);
  }
  const Instance inst = SubInstance(full, short_idx);
  // On uniform costs, MC3[S] and Mixed are both optimal (Figure 3a).
  auto k2 = K2ExactSolver().Solve(inst);
  auto mixed = MixedSolver().Solve(inst);
  ASSERT_TRUE(k2.ok()) << k2.status().ToString();
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  EXPECT_DOUBLE_EQ(k2->cost, mixed->cost);
  // And both beat or match the naive baselines.
  auto po = PropertyOrientedSolver().Solve(inst);
  auto qo = QueryOrientedSolver().Solve(inst);
  ASSERT_TRUE(po.ok());
  ASSERT_TRUE(qo.ok());
  EXPECT_LE(k2->cost, po->cost);
  EXPECT_LE(k2->cost, qo->cost);
}

TEST(IntegrationTest, PrivateShortSliceExactBeatsBaselines) {
  data::PrivateConfig config;
  config.electronics_queries = 400;
  config.home_garden_queries = 300;
  config.fashion_queries = 200;
  const data::PrivateDataset dataset = data::GeneratePrivate(config);
  // Restrict to short queries, as in Figure 3b.
  std::vector<size_t> short_idx;
  for (size_t i = 0; i < dataset.instance.NumQueries(); ++i) {
    if (dataset.instance.queries()[i].size() <= 2) short_idx.push_back(i);
  }
  const Instance short_inst = SubInstance(dataset.instance, short_idx);
  auto k2 = K2ExactSolver().Solve(short_inst);
  auto po = PropertyOrientedSolver().Solve(short_inst);
  auto qo = QueryOrientedSolver().Solve(short_inst);
  ASSERT_TRUE(k2.ok()) << k2.status().ToString();
  ASSERT_TRUE(po.ok());
  ASSERT_TRUE(qo.ok());
  EXPECT_LE(k2->cost, po->cost);
  EXPECT_LE(k2->cost, qo->cost);
  EXPECT_LT(k2->cost, std::min(po->cost, qo->cost));  // strictly better
}

TEST(IntegrationTest, SyntheticModerateSolvesEndToEnd) {
  data::SyntheticConfig config;
  config.num_queries = 800;
  const Instance inst = data::GenerateSynthetic(config);
  auto with = GeneralSolver().Solve(inst);
  SolverOptions no_prep;
  no_prep.preprocess = false;
  auto without = GeneralSolver(no_prep).Solve(inst);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  ASSERT_TRUE(without.ok());
  EXPECT_TRUE(Covers(inst, with->solution));
  EXPECT_TRUE(Covers(inst, without->solution));
  // The paper reports preprocessing also improves cost (Figure 3e); at
  // minimum it must never hurt here.
  EXPECT_LE(with->cost, without->cost * 1.05 + 1e-9);
}

TEST(IntegrationTest, ShortFirstBestOnFashionLikeSlices) {
  data::PrivateConfig config;
  config.electronics_queries = 0;
  config.home_garden_queries = 0;
  config.fashion_queries = 400;
  const data::PrivateDataset dataset = data::GeneratePrivate(config);
  const Instance& inst = dataset.instance;
  auto sf = ShortFirstSolver().Solve(inst);
  auto general = GeneralSolver().Solve(inst);
  ASSERT_TRUE(sf.ok()) << sf.status().ToString();
  ASSERT_TRUE(general.ok());
  // 96% of the slice is short, solved exactly by SF; it should match or
  // beat the pure approximation (the paper's Figure 3d observation).
  EXPECT_LE(sf->cost, general->cost * 1.02 + 1e-9);
}

TEST(IntegrationTest, SubsetCostsMonotoneInN) {
  // Larger random query subsets can only cost more (the Figure 3 x-axis
  // behavior): verified on nested subsets.
  data::BestBuyConfig config;
  config.num_queries = 300;
  const Instance full = data::GenerateBestBuy(config);
  std::vector<size_t> short_idx;
  for (size_t i = 0; i < full.NumQueries(); ++i) {
    if (full.queries()[i].size() <= 2) short_idx.push_back(i);
  }
  const Instance inst = SubInstance(full, short_idx);
  std::vector<size_t> all(inst.NumQueries());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  Cost prev = 0;
  for (size_t n : std::vector<size_t>{50, 100, 200, all.size()}) {
    const Instance sub =
        SubInstance(inst, {all.begin(), all.begin() + n});
    auto result = K2ExactSolver().Solve(sub);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->cost, prev - 1e-9);
    prev = result->cost;
  }
}

}  // namespace
}  // namespace mc3
