// ShardRouter unit tests (src/online/shard_router.h): the routing layer
// that keeps every connected component of the shared-property graph on one
// shard, which is what makes sharded serving byte-equivalent to a single
// engine (Observation 3.2 — independent components solve independently).
//
// Pinned here: hash placement is stable across runs, cross-shard batches
// split so a query appears at most once per shard (never as both an add
// and a remove), group merges migrate the smaller side deterministically,
// and AdoptAssignment (sharded snapshot recovery) rejects placements that
// split a component across shards.
#include <algorithm>
#include <initializer_list>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/property_set.h"
#include "online/shard_router.h"
#include "util/status.h"

namespace mc3::online {
namespace {

PropertySet Q(std::initializer_list<PropertyId> ids) {
  return PropertySet::Of(ids);
}

/// Finds a fresh two-property query (properties >= `start`, consumed in
/// pairs) whose hash placement on a pristine `num_shards` router is
/// `want`. Placement of a group nobody has touched depends only on the
/// query's own hash, so a probe router predicts the real one.
PropertySet FreshQueryOnShard(uint32_t num_shards, uint32_t want,
                              PropertyId start) {
  for (PropertyId p = start;; p += 2) {
    const PropertySet q = Q({p, static_cast<PropertyId>(p + 1)});
    ShardRouter probe(num_shards);
    probe.Route({q}, {});
    if (probe.ShardOf(q) == want) return q;
  }
}

/// Canonical byte rendering of a route plan, for whole-plan equality.
std::string Render(const RoutePlan& plan) {
  std::string out;
  for (size_t s = 0; s < plan.shards.size(); ++s) {
    out += "shard" + std::to_string(s) + "{-";
    for (const PropertySet& q : plan.shards[s].remove) out += q.ToString() + ",";
    out += "|+";
    for (const PropertySet& q : plan.shards[s].add) out += q.ToString() + ",";
    out += "}";
  }
  out += "m" + std::to_string(plan.migrated);
  out += "a" + std::to_string(plan.queries_added);
  out += "r" + std::to_string(plan.queries_removed);
  out += "d" + std::to_string(plan.duplicate_adds);
  out += "x" + std::to_string(plan.missing_removes);
  return out;
}

TEST(ShardRouterTest, PlansAreIdenticalAcrossRuns) {
  // The same batch history must route identically in two independent
  // router instances — recovery replays depend on it.
  const std::vector<std::pair<std::vector<PropertySet>, std::vector<PropertySet>>>
      history = {
          {{Q({0, 1}), Q({4, 5}), Q({8, 9})}, {}},
          {{Q({1, 2}), Q({5, 6})}, {Q({8, 9})}},
          {{Q({8, 9}), Q({2, 4})}, {Q({0, 1})}},
      };
  ShardRouter a(4);
  ShardRouter b(4);
  for (const auto& [add, remove] : history) {
    EXPECT_EQ(Render(a.Route(add, remove)), Render(b.Route(add, remove)));
  }
  ASSERT_TRUE(a.CheckInvariants().ok());
  for (const auto& [add, remove] : history) {
    for (const PropertySet& q : add) EXPECT_EQ(a.ShardOf(q), b.ShardOf(q));
  }
}

TEST(ShardRouterTest, FreshPlacementIgnoresUnrelatedHistory) {
  // A group over untouched properties is placed by its own hash, no matter
  // what else the router has seen — the property that makes the probe in
  // FreshQueryOnShard (and loadgen's disjoint tenants) meaningful.
  const PropertySet fresh = Q({40, 41});
  ShardRouter bare(4);
  bare.Route({fresh}, {});
  ShardRouter busy(4);
  busy.Route({Q({0, 1}), Q({2, 3}), Q({4, 5})}, {});
  busy.Route({Q({6, 7})}, {Q({2, 3})});
  busy.Route({fresh}, {});
  EXPECT_EQ(busy.ShardOf(fresh), bare.ShardOf(fresh));
}

TEST(ShardRouterTest, ConnectedQueriesAllLandOnOneShard) {
  // A property chain is one component: with 7 shards, every query must sit
  // on the same shard and the other six plans stay empty.
  ShardRouter router(7);
  const std::vector<PropertySet> chain = {Q({0, 1}), Q({1, 2}), Q({2, 3}),
                                          Q({3, 4})};
  const RoutePlan plan = router.Route(chain, {});
  const uint32_t home = router.ShardOf(chain[0]);
  ASSERT_LT(home, 7u);
  size_t non_empty = 0;
  for (size_t s = 0; s < plan.shards.size(); ++s) {
    if (!plan.shards[s].empty()) {
      ++non_empty;
      EXPECT_EQ(s, home);
      EXPECT_EQ(plan.shards[s].add.size(), chain.size());
      EXPECT_TRUE(plan.shards[s].remove.empty());
    }
  }
  EXPECT_EQ(non_empty, 1u);
  for (const PropertySet& q : chain) EXPECT_EQ(router.ShardOf(q), home);
  ASSERT_TRUE(router.CheckInvariants().ok());
}

TEST(ShardRouterTest, CrossShardBatchSplitsByOwnerWithDisjointOps) {
  // Seed queries spread over shards 0..2, then a mixed batch: each remove
  // must land on its owner's shard, each add on its hash shard, and no
  // shard may list a query as both an add and a remove (removes-before-
  // adds per shard is trivially safe when the sets are disjoint).
  ShardRouter router(4);
  const PropertySet on0 = FreshQueryOnShard(4, 0, 100);
  const PropertySet on1 = FreshQueryOnShard(4, 1, 200);
  const PropertySet on2 = FreshQueryOnShard(4, 2, 300);
  router.Route({on0, on1, on2}, {});
  ASSERT_EQ(router.ShardOf(on0), 0u);
  ASSERT_EQ(router.ShardOf(on1), 1u);
  ASSERT_EQ(router.ShardOf(on2), 2u);

  const PropertySet fresh3 = FreshQueryOnShard(4, 3, 400);
  const RoutePlan plan = router.Route({fresh3}, {on0, on2});
  EXPECT_EQ(plan.queries_added, 1u);
  EXPECT_EQ(plan.queries_removed, 2u);
  EXPECT_EQ(plan.migrated, 0u);
  ASSERT_EQ(plan.shards.size(), 4u);
  EXPECT_EQ(plan.shards[0].remove, std::vector<PropertySet>{on0});
  EXPECT_TRUE(plan.shards[0].add.empty());
  EXPECT_TRUE(plan.shards[1].empty());
  EXPECT_EQ(plan.shards[2].remove, std::vector<PropertySet>{on2});
  EXPECT_TRUE(plan.shards[2].add.empty());
  EXPECT_EQ(plan.shards[3].add, std::vector<PropertySet>{fresh3});
  EXPECT_TRUE(plan.shards[3].remove.empty());
  for (const ShardOps& ops : plan.shards) {
    for (const PropertySet& q : ops.add) {
      EXPECT_EQ(std::count(ops.remove.begin(), ops.remove.end(), q), 0)
          << "a query may not appear as both add and remove on one shard";
    }
  }
  ASSERT_TRUE(router.CheckInvariants().ok());
}

TEST(ShardRouterTest, SameBatchFlipNetsToNothing) {
  // remove+add of a live query in one batch nets out (the engine-side
  // coalescer already nets batches; the router must not resurrect the
  // pair as real per-shard ops).
  ShardRouter router(4);
  const PropertySet q = Q({0, 1});
  router.Route({q}, {});
  const uint32_t home = router.ShardOf(q);
  const RoutePlan plan = router.Route({q}, {q});
  for (const ShardOps& ops : plan.shards) EXPECT_TRUE(ops.empty());
  EXPECT_EQ(plan.queries_added, 0u);
  EXPECT_EQ(plan.queries_removed, 0u);
  EXPECT_EQ(plan.duplicate_adds, 1u);  // the add found the query still live
  EXPECT_TRUE(router.IsLive(q));
  EXPECT_EQ(router.ShardOf(q), home);
  ASSERT_TRUE(router.CheckInvariants().ok());
}

TEST(ShardRouterTest, UnknownRemovesAndDuplicateAddsAreCountedAndDropped) {
  ShardRouter router(2);
  const PropertySet live = Q({0, 1});
  router.Route({live}, {});
  const RoutePlan plan =
      router.Route({live, Q({4, 5}), Q({4, 5})}, {Q({8, 9})});
  EXPECT_EQ(plan.duplicate_adds, 2u);   // live re-add + in-batch repeat
  EXPECT_EQ(plan.missing_removes, 1u);  // {8,9} was never live
  EXPECT_EQ(plan.queries_added, 1u);    // only {4,5} takes effect
  EXPECT_EQ(plan.queries_removed, 0u);
  ASSERT_TRUE(router.CheckInvariants().ok());
}

TEST(ShardRouterTest, MergeMigratesTheSmallerGroupToTheLarger) {
  // Group A (2 live queries) and group B (1) on different shards; a
  // bridging add merges them. The winner is the shard with more live
  // queries, and B's query is emitted as a remove on its old shard plus an
  // add on the winner.
  ShardRouter router(4);
  const PropertySet a1 = FreshQueryOnShard(4, 0, 100);
  const PropertySet a2 =
      Q({a1.ids().front(), 500});  // shares a property: joins A's group
  const PropertySet b1 = FreshQueryOnShard(4, 1, 600);
  router.Route({a1, a2, b1}, {});
  ASSERT_EQ(router.ShardOf(a2), 0u);
  ASSERT_EQ(router.ShardOf(b1), 1u);

  const PropertySet bridge = Q({500, b1.ids().front()});
  const RoutePlan plan = router.Route({bridge}, {});
  EXPECT_EQ(plan.migrated, 1u);
  EXPECT_EQ(plan.queries_added, 1u);
  EXPECT_EQ(plan.shards[1].remove, std::vector<PropertySet>{b1});
  ASSERT_EQ(plan.shards[0].add.size(), 2u);  // the bridge and the migrant
  EXPECT_NE(std::find(plan.shards[0].add.begin(), plan.shards[0].add.end(), b1),
            plan.shards[0].add.end());
  for (const PropertySet& q : {a1, a2, b1, bridge}) {
    EXPECT_EQ(router.ShardOf(q), 0u);
  }
  ASSERT_TRUE(router.CheckInvariants().ok());
}

TEST(ShardRouterTest, MergeTieBreaksToTheSmallestShardIndex) {
  ShardRouter router(4);
  const PropertySet on2 = FreshQueryOnShard(4, 2, 100);
  const PropertySet on1 = FreshQueryOnShard(4, 1, 300);
  router.Route({on2, on1}, {});
  const PropertySet bridge = Q({on2.ids().front(), on1.ids().front()});
  const RoutePlan plan = router.Route({bridge}, {});
  EXPECT_EQ(router.ShardOf(bridge), 1u);  // equal sizes: lowest index wins
  EXPECT_EQ(plan.migrated, 1u);
  EXPECT_EQ(plan.shards[2].remove, std::vector<PropertySet>{on2});
  EXPECT_EQ(router.ShardOf(on2), 1u);
  ASSERT_TRUE(router.CheckInvariants().ok());
}

TEST(ShardRouterTest, ReAddedPropertiesRejoinTheirOldShard) {
  // Connectivity is monotone: removing a group's last live query must not
  // forget its placement, or a remove+re-add replay could land the same
  // component somewhere else mid-history.
  ShardRouter router(4);
  const PropertySet q = FreshQueryOnShard(4, 2, 100);
  router.Route({q}, {});
  router.Route({}, {q});
  EXPECT_FALSE(router.IsLive(q));
  // A different query over the same properties — not a re-add of q.
  const PropertySet sibling = Q({q.ids().front()});
  router.Route({sibling}, {});
  EXPECT_EQ(router.ShardOf(sibling), 2u);
  ASSERT_TRUE(router.CheckInvariants().ok());
}

TEST(ShardRouterTest, AdoptAssignmentRoundTripsPlacementAndRouting) {
  // Snapshot recovery: adopting a churned router's live placement into a
  // fresh router must reproduce ShardOf everywhere, and route the next
  // batch identically.
  ShardRouter original(4);
  original.Route({Q({0, 1}), Q({4, 5}), Q({8, 9}), Q({1, 2})}, {});
  original.Route({Q({12, 13})}, {Q({4, 5})});

  std::vector<std::vector<PropertySet>> live_by_shard(4);
  const std::vector<PropertySet> live = {Q({0, 1}), Q({8, 9}), Q({1, 2}),
                                         Q({12, 13})};
  for (const PropertySet& q : live) {
    live_by_shard[original.ShardOf(q)].push_back(q);
  }

  ShardRouter adopted(4);
  ASSERT_TRUE(adopted.AdoptAssignment(live_by_shard).ok());
  ASSERT_TRUE(adopted.CheckInvariants().ok());
  EXPECT_EQ(adopted.num_live(), original.num_live());
  for (const PropertySet& q : live) {
    EXPECT_EQ(adopted.ShardOf(q), original.ShardOf(q));
  }
  // Follow-up routing agrees for ops touching live groups or fresh
  // properties. (Dead groups are the one thing adoption cannot restore: a
  // snapshot records only live queries, so the removed {4,5} group's old
  // placement is forgotten — which is fine, because placement never leaks
  // into the canonical state bytes.)
  const std::vector<PropertySet> next_add = {Q({2, 3}), Q({9, 10})};
  const std::vector<PropertySet> next_remove = {Q({0, 1})};
  EXPECT_EQ(Render(adopted.Route(next_add, next_remove)),
            Render(original.Route(next_add, next_remove)));
}

TEST(ShardRouterTest, AdoptAssignmentRejectsSplitComponents) {
  // {0,1} and {1,2} share property 1 — placing them on different shards
  // violates the co-location invariant and must be refused (a snapshot
  // like this cannot have been written by this code).
  ShardRouter router(2);
  const Status status = router.AdoptAssignment({{Q({0, 1})}, {Q({1, 2})}});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("splits connected queries"),
            std::string::npos)
      << status.ToString();
}

TEST(ShardRouterTest, AdoptAssignmentRejectsRepeatedQueriesAndBadShape) {
  ShardRouter router(2);
  EXPECT_FALSE(router.AdoptAssignment({{Q({0, 1})}, {Q({0, 1})}}).ok());
  ShardRouter fresh(2);
  EXPECT_FALSE(fresh.AdoptAssignment({{Q({0, 1})}}).ok());  // 1 list, 2 shards
}

}  // namespace
}  // namespace mc3::online
