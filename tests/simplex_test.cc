#include "lp/simplex.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mc3::lp {
namespace {

LinearProgram::Constraint Row(
    std::vector<std::pair<int32_t, double>> terms, ConstraintSense sense,
    double rhs) {
  LinearProgram::Constraint c;
  c.terms = std::move(terms);
  c.sense = sense;
  c.rhs = rhs;
  return c;
}

TEST(SimplexTest, TrivialMinimumAtZero) {
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {1, 1};
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->outcome, LpOutcome::kOptimal);
  EXPECT_DOUBLE_EQ(sol->objective, 0);
}

TEST(SimplexTest, SimpleCoverLp) {
  // min x0 + x1  s.t. x0 + x1 >= 1 -> objective 1.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {1, 1};
  lp.constraints.push_back(
      Row({{0, 1}, {1, 1}}, ConstraintSense::kGreaterEqual, 1));
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->outcome, LpOutcome::kOptimal);
  EXPECT_NEAR(sol->objective, 1, 1e-8);
}

TEST(SimplexTest, WeightedCoverPrefersCheapVariable) {
  // min 5 x0 + x1  s.t. x0 + x1 >= 1 -> pick x1.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {5, 1};
  lp.constraints.push_back(
      Row({{0, 1}, {1, 1}}, ConstraintSense::kGreaterEqual, 1));
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 1, 1e-8);
  EXPECT_NEAR(sol->values[1], 1, 1e-8);
  EXPECT_NEAR(sol->values[0], 0, 1e-8);
}

TEST(SimplexTest, ClassicTwoVariableLp) {
  // min -(3x + 5y) s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (textbook example);
  // optimum at (2, 6) with objective -36.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {-3, -5};
  lp.constraints.push_back(Row({{0, 1}}, ConstraintSense::kLessEqual, 4));
  lp.constraints.push_back(Row({{1, 2}}, ConstraintSense::kLessEqual, 12));
  lp.constraints.push_back(
      Row({{0, 3}, {1, 2}}, ConstraintSense::kLessEqual, 18));
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->outcome, LpOutcome::kOptimal);
  EXPECT_NEAR(sol->objective, -36, 1e-7);
  EXPECT_NEAR(sol->values[0], 2, 1e-7);
  EXPECT_NEAR(sol->values[1], 6, 1e-7);
}

TEST(SimplexTest, EqualityConstraint) {
  // min x + 2y s.t. x + y = 3 -> x = 3, y = 0, objective 3.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {1, 2};
  lp.constraints.push_back(Row({{0, 1}, {1, 1}}, ConstraintSense::kEqual, 3));
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 3, 1e-8);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // -x <= -2 is x >= 2.
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {1};
  lp.constraints.push_back(Row({{0, -1}}, ConstraintSense::kLessEqual, -2));
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 2, 1e-8);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x <= 1 and x >= 2.
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {1};
  lp.constraints.push_back(Row({{0, 1}}, ConstraintSense::kLessEqual, 1));
  lp.constraints.push_back(Row({{0, 1}}, ConstraintSense::kGreaterEqual, 2));
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->outcome, LpOutcome::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  // min -x, x >= 0, no upper bound.
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {-1};
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->outcome, LpOutcome::kUnbounded);
}

TEST(SimplexTest, DegenerateTiesHandled) {
  // Multiple constraints meeting at the optimum (degenerate vertex).
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {-1, -1};
  lp.constraints.push_back(Row({{0, 1}, {1, 1}}, ConstraintSense::kLessEqual, 2));
  lp.constraints.push_back(Row({{0, 1}}, ConstraintSense::kLessEqual, 1));
  lp.constraints.push_back(Row({{1, 1}}, ConstraintSense::kLessEqual, 1));
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, -2, 1e-8);
}

TEST(SimplexTest, RejectsBadVariableIndex) {
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {1};
  lp.constraints.push_back(Row({{3, 1}}, ConstraintSense::kLessEqual, 1));
  auto sol = SolveSimplex(lp);
  EXPECT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInvalidArgument);
}

TEST(SimplexTest, RejectsNonFiniteCoefficient) {
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {std::numeric_limits<double>::infinity()};
  auto sol = SolveSimplex(lp);
  EXPECT_FALSE(sol.ok());
}

TEST(SimplexTest, RedundantConstraintsHandled) {
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {1};
  lp.constraints.push_back(Row({{0, 1}}, ConstraintSense::kGreaterEqual, 1));
  lp.constraints.push_back(Row({{0, 2}}, ConstraintSense::kGreaterEqual, 2));
  lp.constraints.push_back(Row({{0, 1}}, ConstraintSense::kEqual, 1));
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 1, 1e-8);
}

TEST(SimplexTest, DualValueOfFractionalVertexCoverLp) {
  // Triangle-like fractional cover: min x0+x1+x2 with pairwise sums >= 1
  // has LP optimum 1.5 (each variable 0.5) — integral optimum would be 2.
  LinearProgram lp;
  lp.num_vars = 3;
  lp.objective = {1, 1, 1};
  lp.constraints.push_back(
      Row({{0, 1}, {1, 1}}, ConstraintSense::kGreaterEqual, 1));
  lp.constraints.push_back(
      Row({{1, 1}, {2, 1}}, ConstraintSense::kGreaterEqual, 1));
  lp.constraints.push_back(
      Row({{0, 1}, {2, 1}}, ConstraintSense::kGreaterEqual, 1));
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 1.5, 1e-7);
}

class SimplexRandomTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomTest, ::testing::Range(0, 15));

TEST_P(SimplexRandomTest, FeasibleBoundedLpSatisfiesConstraints) {
  // Random LPs of the covering form (always feasible, bounded): verify the
  // reported solution is feasible and its objective matches its values.
  Rng rng(GetParam() + 99);
  LinearProgram lp;
  lp.num_vars = 2 + static_cast<int>(rng.UniformInt(0, 4));
  for (int v = 0; v < lp.num_vars; ++v) {
    lp.objective.push_back(1 + double(rng.UniformInt(0, 9)));
  }
  const int rows = 1 + static_cast<int>(rng.UniformInt(0, 5));
  for (int r = 0; r < rows; ++r) {
    LinearProgram::Constraint c;
    c.sense = ConstraintSense::kGreaterEqual;
    c.rhs = 1 + double(rng.UniformInt(0, 3));
    for (int v = 0; v < lp.num_vars; ++v) {
      if (rng.Bernoulli(0.6)) {
        c.terms.emplace_back(v, 1 + double(rng.UniformInt(0, 2)));
      }
    }
    if (c.terms.empty()) c.terms.emplace_back(0, 1.0);
    lp.constraints.push_back(std::move(c));
  }
  auto sol = SolveSimplex(lp);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->outcome, LpOutcome::kOptimal);
  double objective = 0;
  for (int v = 0; v < lp.num_vars; ++v) {
    EXPECT_GE(sol->values[v], -1e-8);
    objective += lp.objective[v] * sol->values[v];
  }
  EXPECT_NEAR(objective, sol->objective, 1e-6);
  for (const auto& c : lp.constraints) {
    double lhs = 0;
    for (const auto& [v, coeff] : c.terms) lhs += coeff * sol->values[v];
    EXPECT_GE(lhs, c.rhs - 1e-6);
  }
}

}  // namespace
}  // namespace mc3::lp
