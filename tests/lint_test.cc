// Unit tests for the mc3_lint rule engine (tools/mc3_lint/lint.h): one
// failing and one passing fixture per rule R1-R10, plus waiver syntax and
// report rendering. Fixtures live in string literals, so linting this file
// itself (the lint_clean test) sees none of them.
#include "mc3_lint/lint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.h"

namespace mc3::lint {
namespace {

/// Findings for `code` linted as a standalone library .cc file.
std::vector<Finding> Lint(const std::string& code, FileConfig config = {}) {
  return LintSnippet("fixture.cc", code, config);
}

size_t CountRule(const std::vector<Finding>& findings,
                 const std::string& rule) {
  size_t n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

// ---------------------------------------------------------------- R1

TEST(LintR1, FlagsRangeForOverUnorderedMap) {
  const auto findings = Lint(
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "void F() {\n"
      "  for (const auto& [k, v] : m) {\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "R1"), 1u);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_EQ(findings[0].tag, "unordered");
}

TEST(LintR1, ResolvesAliasChains) {
  const auto findings = Lint(
      "using Inner = std::unordered_map<int, double>;\n"
      "using CostTable = Inner;\n"
      "CostTable costs_;\n"
      "void F() {\n"
      "  for (const auto& entry : costs_) {\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "R1"), 1u);
}

TEST(LintR1, ResolvesAccessorReturningUnordered) {
  const auto findings = Lint(
      "struct S {\n"
      "  const std::unordered_map<int, int>& table() const;\n"
      "};\n"
      "void F(const S& s) {\n"
      "  for (const auto& e : s.table()) {\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "R1"), 1u);
}

TEST(LintR1, PassesOrderedMapAndLookups) {
  const auto findings = Lint(
      "#include <map>\n"
      "std::map<int, int> ordered;\n"
      "std::unordered_map<int, std::vector<int>> by_key;\n"
      "void F(int k) {\n"
      "  for (const auto& [a, b] : ordered) {\n"
      "  }\n"
      "  for (int v : by_key[k]) {\n"  // indexing, not iterating the map
      "  }\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "R1"), 0u);
}

TEST(LintR1, CrossFileSymbolFromHeaderIndex) {
  SymbolIndex index;
  IndexFile("struct E { std::unordered_map<int, int> members_; };\n", &index);
  const std::string cc =
      "void F(E& e) {\n"
      "  for (const auto& m : e.members_) {\n"
      "  }\n"
      "}\n";
  IndexFile(cc, &index);
  index.ResolveAliases();
  const auto findings = LintFile("engine.cc", cc, index, FileConfig{});
  EXPECT_EQ(CountRule(findings, "R1"), 1u);
}

// ---------------------------------------------------------------- R2

TEST(LintR2, FlagsExactCostComparison) {
  const auto eq = Lint("bool F(double total_cost, double other_cost) {\n"
                       "  return total_cost == other_cost;\n"
                       "}\n");
  EXPECT_EQ(CountRule(eq, "R2"), 1u);
  EXPECT_EQ(eq[0].tag, "float-eq");
  const auto ne = Lint("bool G(double weight, double w2) {\n"
                       "  return weight != w2;\n"
                       "}\n");
  EXPECT_EQ(CountRule(ne, "R2"), 1u);
}

TEST(LintR2, PassesHelpersAndIteratorProtocol) {
  const auto findings = Lint(
      "bool F(double cost_a, double cost_b) {\n"
      "  return ApproxEq(cost_a, cost_b);\n"
      "}\n"
      "bool G(const CostMap& costs, CostMap::iterator it) {\n"
      "  return it == costs.end();\n"  // iterator compare, not a cost
      "}\n"
      "bool H(int count, int other) {\n"
      "  return count == other;\n"  // ints named nothing cost-like
      "}\n");
  EXPECT_EQ(CountRule(findings, "R2"), 0u);
}

// ---------------------------------------------------------------- R3

TEST(LintR3, FlagsHeaderWithoutPragmaOnce) {
  FileConfig config;
  config.is_header = true;
  const auto findings =
      LintSnippet("fixture.h", "#ifndef X\n#define X\n#endif\n", config);
  EXPECT_EQ(CountRule(findings, "R3"), 1u);
  EXPECT_EQ(findings[0].tag, "pragma-once");
}

TEST(LintR3, PassesPragmaOnceHeaderAndAnySource) {
  FileConfig header;
  header.is_header = true;
  EXPECT_EQ(CountRule(LintSnippet("fixture.h", "#pragma once\nint x;\n",
                                  header), "R3"), 0u);
  // .cc files are exempt from R3 entirely.
  EXPECT_EQ(CountRule(Lint("int x;\n"), "R3"), 0u);
}

TEST(LintR3, HeaderTuSourceIncludesTheHeader) {
  const std::string tu = HeaderTuSource("core/instance.h");
  EXPECT_NE(tu.find("#include \"core/instance.h\""), std::string::npos);
}

// ---------------------------------------------------------------- R4

TEST(LintR4, FlagsRandTimePrintAndNakedNew) {
  const auto findings = Lint(
      "#include <cstdlib>\n"
      "void F() {\n"
      "  srand(time(NULL));\n"
      "  int x = rand();\n"
      "  std::cout << x;\n"
      "  int* p = new int;\n"
      "  delete p;\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "R4"), 6u);  // srand, time, rand, cout, new,
                                             // delete
}

TEST(LintR4, PassesToolsPrintingAndRaii) {
  FileConfig tool;
  tool.allow_prints = true;
  const auto printing = LintSnippet(
      "tools/cli.cc", "void F() { std::cout << 1; }\n", tool);
  EXPECT_EQ(CountRule(printing, "R4"), 0u);
  const auto raii = Lint(
      "struct S {\n"
      "  S(const S&) = delete;\n"  // deleted member, not naked delete
      "};\n"
      "void F() {\n"
      "  auto p = std::make_unique<int>(7);\n"
      "  double renewal = 0;\n"  // 'new' inside an identifier
      "}\n");
  EXPECT_EQ(CountRule(raii, "R4"), 0u);
}

TEST(LintR4, IgnoresBannedNamesInStringsAndComments) {
  const auto findings = Lint(
      "// rand() in a comment is fine\n"
      "const char* kMsg = \"call rand() and std::cout\";\n");
  EXPECT_EQ(CountRule(findings, "R4"), 0u);
}

// ---------------------------------------------------------------- R5

TEST(LintR5, FlagsDiscardedStatusCall) {
  const auto findings = Lint(
      "Status DoThing();\n"
      "void F() {\n"
      "  DoThing();\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "R5"), 1u);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintR5, FlagsDiscardedResultCall) {
  const auto findings = Lint(
      "Result<int> Fetch();\n"
      "void F() {\n"
      "  Fetch();\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "R5"), 1u);
}

TEST(LintR5, PassesConsumedStatus) {
  const auto findings = Lint(
      "Status DoThing();\n"
      "Status F() {\n"
      "  Status s = DoThing();\n"
      "  if (!DoThing().ok()) return s;\n"
      "  MC3_RETURN_IF_ERROR(DoThing());\n"
      "  return DoThing();\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "R5"), 0u);
}

TEST(LintR5, FlagsDiscardedDurabilityApiCalls) {
  // The durability APIs (src/durability/: WalWriter::Append/Sync/Rotate,
  // WriteSnapshotFile) return Status/Result like everything else; a
  // dropped call is a silent durability hole and must be flagged.
  const auto findings = Lint(
      "Result<uint64_t> Append(std::string payload);\n"
      "Status Sync();\n"
      "Status Rotate(uint64_t snapshot_seq, bool keep_segments);\n"
      "Result<uint64_t> WriteSnapshotFile(const std::string& dir);\n"
      "void Checkpoint() {\n"
      "  Sync();\n"
      "  WriteSnapshotFile(\"d\");\n"
      "  Rotate(3, false);\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "R5"), 3u);
}

TEST(LintR5, PassesConsumedDurabilityApiCalls) {
  const auto findings = Lint(
      "Result<uint64_t> Append(std::string payload);\n"
      "Status Sync();\n"
      "Status Checkpoint() {\n"
      "  auto seq = Append(\"+ a\");\n"
      "  if (!seq.ok()) return seq.status();\n"
      "  MC3_RETURN_IF_ERROR(Sync());\n"
      "  return Sync();\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "R5"), 0u);
}

TEST(LintR5, SkipsOverloadsMixingReturnTypes) {
  // SetCost returns Status on one class and void on another; a token-level
  // pass cannot tell call sites apart, so the name is exempt.
  const auto findings = Lint(
      "Status SetCost(int c);\n"
      "void SetCost(double c);\n"
      "void F() {\n"
      "  SetCost(1);\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "R5"), 0u);
}

// ---------------------------------------------------------------- R6

TEST(LintR6, FlagsSharedMutableCapture) {
  const auto findings = Lint(
      "void F(size_t n) {\n"
      "  int total = 0;\n"
      "  ParallelFor(n, 4, [&](size_t i) {\n"
      "    total += static_cast<int>(i);\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "R6"), 1u);
  EXPECT_EQ(findings[0].tag, "capture");
}

TEST(LintR6, PassesSafePatterns) {
  const auto findings = Lint(
      "std::atomic<int> total;\n"
      "void F(size_t n, std::vector<int>& out) {\n"
      "  ParallelFor(n, 4, [&](size_t i) {\n"
      "    total += 1;\n"          // atomic
      "    out[i] = 7;\n"          // per-index addressing
      "    int local = 0;\n"
      "    local += 2;\n"          // declared in the body
      "  });\n"
      "  ParallelFor(n, 4, [](size_t i) {\n"
      "    (void)i;\n"             // no by-reference captures at all
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "R6"), 0u);
}

TEST(LintR6, FlagsSharedMutableCaptureInPostedTasks) {
  // Tasks handed to the worker pool run on pool threads; a by-reference
  // captured accumulator is the same hazard as in a ParallelFor body. The
  // posted lambda is typically parameter-less.
  const auto findings = Lint(
      "void F(WorkerPool& pool) {\n"
      "  int total = 0;\n"
      "  pool.Post([&] {\n"
      "    total += 1;\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "R6"), 1u);
  EXPECT_EQ(findings[0].tag, "capture");
}

TEST(LintR6, PassesSafePostedTasks) {
  const auto findings = Lint(
      "std::atomic<int> total;\n"
      "void F(WorkerPool& pool, std::shared_ptr<Connection> conn) {\n"
      "  pool.Post([&] {\n"
      "    total += 1;\n"          // atomic
      "    int local = 0;\n"
      "    local += 2;\n"          // declared in the body
      "  });\n"
      "  pool.Post([this, conn] {\n"
      "    HandleConnection(conn);\n"  // by-value captures only
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "R6"), 0u);
}

TEST(LintR6, SkipsPostDeclarationAndDefinition) {
  const auto findings = Lint(
      "bool Post(Task task);\n"
      "bool Post(Task task) { return true; }\n");
  EXPECT_EQ(CountRule(findings, "R6"), 0u);
}

// ---------------------------------------------------------------- R7

TEST(LintR7, FlagsBareCondvarWaits) {
  const auto findings = Lint(
      "#include <condition_variable>\n"
      "std::condition_variable cv_;\n"
      "void F(std::unique_lock<std::mutex>& lk, std::chrono::seconds d) {\n"
      "  cv_.wait(lk);\n"
      "  cv_.wait_for(lk, d);\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "R7"), 2u);
  EXPECT_EQ(findings[0].tag, "cv-wait");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintR7, FlagsBareUtilCondVarWait) {
  const auto findings = Lint(
      "util::CondVar ready_;\n"
      "void F(util::UniqueLock& lock) {\n"
      "  ready_.Wait(lock);\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "R7"), 1u);
}

TEST(LintR7, PassesPredicateOverloadsAndNonCondvars) {
  const auto findings = Lint(
      "std::condition_variable cv_;\n"
      "bool done_;\n"
      "void F(std::unique_lock<std::mutex>& lk, std::chrono::seconds d,\n"
      "       std::future<int>& task) {\n"
      "  cv_.wait(lk, [&] { return done_; });\n"
      "  cv_.wait_for(lk, d, [&] { return done_; });\n"
      "  task.wait();\n"  // futures have no predicate overload
      "}\n");
  EXPECT_EQ(CountRule(findings, "R7"), 0u);
}

// ---------------------------------------------------------------- R8

TEST(LintR8, FlagsUnannotatedMembersOfMutexOwningClass) {
  const auto findings = Lint(
      "class Cache {\n"
      " public:\n"
      "  void Put(int k);\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int hits_ = 0;\n"
      "  std::vector<int> keys_;\n"
      "};\n");
  EXPECT_EQ(CountRule(findings, "R8"), 2u);
  EXPECT_EQ(findings[0].tag, "guard");
  EXPECT_EQ(findings[0].line, 6);
}

TEST(LintR8, PassesAnnotatedAtomicAndThreadSafeMembers) {
  const auto findings = Lint(
      "class Cache {\n"
      "  util::Mutex mu_;\n"
      "  int hits_ MC3_GUARDED_BY(mu_) = 0;\n"
      "  std::unique_ptr<int> slot_ MC3_PT_GUARDED_BY(mu_);\n"
      "  std::atomic<bool> stop_{false};\n"
      "  std::condition_variable cv_;\n"
      "  obs::Counter* requests_ = nullptr;\n"
      "  static constexpr int kMax = 8;\n"
      "  const int capacity_ = 4;\n"
      "};\n");
  EXPECT_EQ(CountRule(findings, "R8"), 0u);
}

TEST(LintR8, PassesConcurrencyPrimitiveMembers) {
  // Epoch/publication types (src/concurrency/) are internally synchronized:
  // owning one next to a mutex needs no MC3_GUARDED_BY.
  const auto findings = Lint(
      "class Server {\n"
      "  util::Mutex mu_;\n"
      "  int epoch_state_ MC3_GUARDED_BY(mu_) = 0;\n"
      "  concurrency::EpochManager epochs_;\n"
      "  concurrency::VersionedPublisher<ReadIndex> index_publisher_;\n"
      "  concurrency::ReaderRegistration* reader_ = nullptr;\n"
      "};\n");
  EXPECT_EQ(CountRule(findings, "R8"), 0u);
}

TEST(LintR8, WaivesLockFreeEpochSlotMembers) {
  // A lock-free slot published by one thread and scanned by another cannot
  // carry MC3_GUARDED_BY; the guard-ok waiver (with a stated ownership
  // rule) covers the member on the next line — and an unwaived,
  // unannotated neighbor still flags.
  const auto findings = Lint(
      "struct EpochSlots {\n"
      "  util::Mutex slots_mu_;\n"
      "  // mc3-lint: guard-ok(single-writer slot scanned with seq_cst "
      "loads)\n"
      "  std::uint64_t pinned_epoch_ = 0;\n"
      "  std::uint64_t unguarded_count_ = 0;\n"
      "};\n");
  EXPECT_EQ(CountRule(findings, "R8"), 1u);
}

TEST(LintR8, PassesClassWithoutMutex) {
  // No owned mutex, nothing to guard: plain structs never trigger R8.
  const auto findings = Lint(
      "struct Stats {\n"
      "  int hits = 0;\n"
      "  std::vector<int> keys;\n"
      "};\n"
      "class Uses {\n"
      "  std::mutex* borrowed_;\n"  // pointer: not owned by this class
      "  int x_ = 0;\n"
      "};\n");
  EXPECT_EQ(CountRule(findings, "R8"), 0u);
}

// ---------------------------------------------------------------- R9

TEST(LintR9, FlagsDetachAndNeverJoinedThread) {
  const auto findings = Lint(
      "void F() {\n"
      "  std::thread orphan([] {});\n"
      "  std::thread runaway([] {});\n"
      "  runaway.detach();\n"
      "}\n");
  // orphan and runaway are both never join()ed, and the detach() call is a
  // finding of its own — detaching is never how a thread gets joined.
  EXPECT_EQ(CountRule(findings, "R9"), 3u);
  EXPECT_EQ(findings[0].tag, "detach");
}

TEST(LintR9, PassesJoinedThreadsAndPointerParams) {
  const auto findings = Lint(
      "void PinThreadToCore(std::thread* thread, int core);\n"
      "void F() {\n"
      "  std::thread worker([] {});\n"
      "  worker.join();\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "R9"), 0u);
}

TEST(LintR9, JoinInAnotherFileSatisfiesHeaderDeclaration) {
  // The common split: the thread member lives in a header, the join in the
  // matching .cc. CollectJoins over the .cc must clear the header's R9.
  const std::string header =
      "class Pool {\n"
      "  util::Mutex mu_;\n"
      "  std::thread worker_;\n"
      "};\n";
  const std::string cc = "void Pool::Stop() { worker_.join(); }\n";
  SymbolIndex with_join;
  IndexFile(header, &with_join);
  CollectJoins(header, &with_join);
  CollectJoins(cc, &with_join);
  with_join.ResolveAliases();
  EXPECT_EQ(CountRule(LintFile("pool.h", header, with_join, FileConfig{}),
                      "R9"),
            0u);
  SymbolIndex without_join;
  IndexFile(header, &without_join);
  CollectJoins(header, &without_join);
  without_join.ResolveAliases();
  EXPECT_EQ(CountRule(LintFile("pool.h", header, without_join, FileConfig{}),
                      "R9"),
            1u);
}

// ---------------------------------------------------------------- R10

TEST(LintR10, FlagsTwoMutexCycle) {
  const auto findings = Lint(
      "struct Two {\n"
      "  std::mutex mu_a;\n"
      "  std::mutex mu_b;\n"
      "  void A() {\n"
      "    std::scoped_lock a(mu_a);\n"
      "    std::scoped_lock b(mu_b);\n"
      "  }\n"
      "  void B() {\n"
      "    std::scoped_lock b(mu_b);\n"
      "    std::scoped_lock a(mu_a);\n"
      "  }\n"
      "};\n");
  ASSERT_EQ(CountRule(findings, "R10"), 1u);
  const Finding& f = findings.back();
  EXPECT_EQ(f.tag, "lock-order");
  EXPECT_NE(f.message.find("Two::mu_a"), std::string::npos);
  EXPECT_NE(f.message.find("Two::mu_b"), std::string::npos);
}

TEST(LintR10, PassesConsistentOrderAndSiblingScopes) {
  const auto findings = Lint(
      "struct Two {\n"
      "  std::mutex mu_a;\n"
      "  std::mutex mu_b;\n"
      "  void A() {\n"
      "    std::scoped_lock a(mu_a);\n"
      "    std::scoped_lock b(mu_b);\n"
      "  }\n"
      "  void B() {\n"
      "    { std::scoped_lock a(mu_a); }\n"  // released before mu_b
      "    std::scoped_lock b(mu_b);\n"
      "  }\n"
      "};\n");
  EXPECT_EQ(CountRule(findings, "R10"), 0u);
}

TEST(LintR10, RequiresAnnotationSeedsHeldSet) {
  // `Drain` never names a guard in its body; the held mutex comes from the
  // MC3_REQUIRES on its declaration, seeded at the out-of-line definition.
  const std::string code =
      "struct Q {\n"
      "  util::Mutex mu_;\n"
      "  util::Mutex items_mu_;\n"
      "  void Drain() MC3_REQUIRES(mu_);\n"
      "};\n"
      "void Q::Drain() {\n"
      "  util::MutexLock lock(items_mu_);\n"
      "}\n";
  const std::vector<LockEdge> edges =
      CollectLockEdges("q.cc", code, [&] {
        SymbolIndex index;
        IndexFile(code, &index);
        index.ResolveAliases();
        return index;
      }());
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, "Q::mu_");
  EXPECT_EQ(edges[0].to, "Q::items_mu_");
}

TEST(LintR10, ValueReturningLockCallsAreNotAcquisitions) {
  // std::weak_ptr::lock() returns a shared_ptr; only statement-position
  // lock()/unlock() (void mutex API) may create graph nodes.
  const auto edges = CollectLockEdges(
      "s.cc",
      "struct S {\n"
      "  std::mutex mu_;\n"
      "  std::weak_ptr<int> weak_;\n"
      "  void F() {\n"
      "    std::scoped_lock l(mu_);\n"
      "    if (std::shared_ptr<int> p = weak_.lock()) {\n"
      "    }\n"
      "  }\n"
      "};\n",
      SymbolIndex{});
  EXPECT_TRUE(edges.empty());
}

TEST(LintR10, WaivedEdgesStayOutOfCycles) {
  const auto findings = Lint(
      "struct Two {\n"
      "  std::mutex mu_a;\n"
      "  std::mutex mu_b;\n"
      "  void A() {\n"
      "    std::scoped_lock a(mu_a);\n"
      "    std::scoped_lock b(mu_b);\n"
      "  }\n"
      "  void B() {\n"
      "    std::scoped_lock b(mu_b);\n"
      "    // mc3-lint: lock-order-ok(B never runs concurrently with A)\n"
      "    std::scoped_lock a(mu_a);\n"
      "  }\n"
      "};\n");
  EXPECT_EQ(CountRule(findings, "R10"), 0u);
}

// ------------------------------------------------------------- waivers

TEST(LintWaivers, SameLineAndPrecedingLineSuppress) {
  const std::string base =
      "std::unordered_map<int, int> m;\n"
      "void F() {\n";
  const auto same_line = Lint(
      base +
      "  for (const auto& [k, v] : m) {  // mc3-lint: unordered-ok(agg)\n"
      "  }\n}\n");
  EXPECT_EQ(CountRule(same_line, "R1"), 0u);
  const auto prev_line = Lint(
      base +
      "  // mc3-lint: unordered-ok(order-independent aggregation)\n"
      "  for (const auto& [k, v] : m) {\n"
      "  }\n}\n");
  EXPECT_EQ(CountRule(prev_line, "R1"), 0u);
}

TEST(LintWaivers, WrongTagDoesNotSuppress) {
  const auto findings = Lint(
      "std::unordered_map<int, int> m;\n"
      "void F() {\n"
      "  for (const auto& [k, v] : m) {  // mc3-lint: print-ok(not the tag)\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "R1"), 1u);
}

TEST(LintWaivers, ConcurrencyTagsSuppressTheirRules) {
  const auto cv = Lint(
      "std::condition_variable cv_;\n"
      "void F(std::unique_lock<std::mutex>& lk) {\n"
      "  cv_.wait(lk);  // mc3-lint: cv-wait-ok(caller loops on the state)\n"
      "}\n");
  EXPECT_EQ(CountRule(cv, "R7"), 0u);
  const auto guard = Lint(
      "class C {\n"
      "  std::mutex mu_;\n"
      "  // mc3-lint: guard-ok(written once before threads start)\n"
      "  int config_;\n"
      "};\n");
  EXPECT_EQ(CountRule(guard, "R8"), 0u);
  const auto detach = Lint(
      "void F() {\n"
      "  std::thread t([] {});\n"
      "  t.detach();  // mc3-lint: detach-ok(fire-and-forget logger flush)\n"
      "}\n");
  // The waiver covers the detach() line; the declaration would still need a
  // join, so only the never-joined finding remains.
  EXPECT_EQ(CountRule(detach, "R9"), 1u);
  // The four concurrency tags are known: none of these is a W0.
  EXPECT_EQ(CountRule(cv, "W0"), 0u);
  EXPECT_EQ(CountRule(guard, "W0"), 0u);
  EXPECT_EQ(CountRule(detach, "W0"), 0u);
  EXPECT_EQ(
      CountRule(Lint("// mc3-lint: lock-order-ok(single-threaded phase)\n"
                     "int x;\n"),
                "W0"),
      0u);
}

TEST(LintWaivers, MalformedWaiversAreFindings) {
  EXPECT_EQ(CountRule(Lint("// mc3-lint: unordered-ok()\nint x;\n"), "W0"),
            1u);  // empty reason
  EXPECT_EQ(CountRule(Lint("// mc3-lint: bogus-ok(reason)\nint x;\n"), "W0"),
            1u);  // unknown tag
  EXPECT_EQ(CountRule(Lint("// mc3-lint suppresses stuff\nint x;\n"), "W0"),
            1u);  // mention that parses as nothing
  EXPECT_EQ(CountRule(Lint("// mc3-lint: rand-ok(fixture helper)\nint x;\n"),
                      "W0"),
            0u);  // well-formed
}

// ------------------------------------------------------------- report

TEST(LintReport, RendersValidSchemaJson) {
  std::vector<Finding> findings = {
      {"src/a.cc", 3, "R1", "unordered", "iteration over 'm'"},
      {"src/b.cc", 9, "R4", "print", "library code must not print"},
  };
  const std::string json = FindingsToJson(findings, 42);
  auto parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const obs::JsonValue& root = *parsed;
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.Find("schema")->string, "mc3.lint_report/2");
  EXPECT_EQ(root.Find("files_scanned")->number, 42);
  EXPECT_EQ(root.Find("num_findings")->number, 2);
  ASSERT_TRUE(root.Find("findings")->is_array());
  EXPECT_EQ(root.Find("findings")->array.size(), 2u);
  // Every rule appears in the per-rule counts, zeros included, so report
  // consumers never need existence checks.
  const obs::JsonValue* by_rule = root.Find("findings_by_rule");
  ASSERT_TRUE(by_rule != nullptr && by_rule->is_object());
  EXPECT_EQ(by_rule->Find("R1")->number, 1);
  for (const char* rule : {"R2", "R3", "R5", "R6", "R7", "R8", "R9", "R10",
                           "W0"}) {
    const obs::JsonValue* count = by_rule->Find(rule);
    ASSERT_TRUE(count != nullptr) << rule;
    EXPECT_EQ(count->number, 0) << rule;
  }
  // Empty-by-default v2 sections are present even with no R10/skip input.
  const obs::JsonValue* graph = root.Find("lock_graph");
  ASSERT_TRUE(graph != nullptr && graph->is_object());
  EXPECT_TRUE(graph->Find("edges")->array.empty());
  EXPECT_TRUE(graph->Find("cycles")->array.empty());
  EXPECT_TRUE(root.Find("skipped")->array.empty());
}

TEST(LintReport, RendersLockGraphCyclesAndSkips) {
  const std::vector<LockEdge> edges = {
      {"A::mu", "A::inner", "src/a.cc", 12, false},
      {"A::inner", "A::mu", "src/a.cc", 40, true},
  };
  const std::vector<LockCycle> cycles = {
      {{"A::inner", "A::mu"}, "src/a.cc", 40},
  };
  const std::string json =
      FindingsToJson({}, 7, edges, cycles, {"src/unreadable.cc"});
  auto parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const obs::JsonValue& root = *parsed;
  const obs::JsonValue* graph = root.Find("lock_graph");
  ASSERT_TRUE(graph != nullptr && graph->is_object());
  ASSERT_EQ(graph->Find("edges")->array.size(), 2u);
  const obs::JsonValue& e0 = graph->Find("edges")->array[0];
  EXPECT_EQ(e0.Find("from")->string, "A::mu");
  EXPECT_EQ(e0.Find("to")->string, "A::inner");
  EXPECT_EQ(e0.Find("line")->number, 12);
  EXPECT_FALSE(e0.Find("waived")->boolean);
  EXPECT_TRUE(graph->Find("edges")->array[1].Find("waived")->boolean);
  ASSERT_EQ(graph->Find("cycles")->array.size(), 1u);
  const obs::JsonValue& c0 = graph->Find("cycles")->array[0];
  ASSERT_EQ(c0.Find("nodes")->array.size(), 2u);
  EXPECT_EQ(c0.Find("nodes")->array[0].string, "A::inner");
  EXPECT_EQ(c0.Find("file")->string, "src/a.cc");
  ASSERT_EQ(root.Find("skipped")->array.size(), 1u);
  EXPECT_EQ(root.Find("skipped")->array[0].string, "src/unreadable.cc");
}

TEST(LintScrub, BlanksLiteralsPreservingLines) {
  const std::string code = Scrub(
      "int a = 1;  // trailing comment\n"
      "const char* s = \"for (x : m)\";\n"
      "int b = 2;\n");
  EXPECT_EQ(code.find("comment"), std::string::npos);
  EXPECT_EQ(code.find("for (x"), std::string::npos);
  EXPECT_NE(code.find("int b = 2;"), std::string::npos);
  // Line structure intact.
  EXPECT_EQ(std::count(code.begin(), code.end(), '\n'), 3);
}

}  // namespace
}  // namespace mc3::lint
