#include "flow/hopcroft_karp.h"

#include <gtest/gtest.h>

#include <functional>

#include "util/rng.h"

namespace mc3::flow {
namespace {

bool CoversAllEdges(const BipartiteGraph& g, const UnweightedVertexCover& vc) {
  for (const auto& [l, r] : g.edges) {
    if (!vc.left_in_cover[l] && !vc.right_in_cover[r]) return false;
  }
  return true;
}

/// Simple augmenting-path matching as an oracle.
int32_t OracleMatching(const BipartiteGraph& g) {
  std::vector<std::vector<int32_t>> adj(g.num_left);
  for (const auto& [l, r] : g.edges) adj[l].push_back(r);
  std::vector<int32_t> match_right(g.num_right, -1);
  std::vector<bool> visited;
  std::function<bool(int32_t)> try_match = [&](int32_t l) {
    for (int32_t r : adj[l]) {
      if (visited[r]) continue;
      visited[r] = true;
      if (match_right[r] == -1 || try_match(match_right[r])) {
        match_right[r] = l;
        return true;
      }
    }
    return false;
  };
  int32_t size = 0;
  for (int32_t l = 0; l < g.num_left; ++l) {
    visited.assign(g.num_right, false);
    if (try_match(l)) ++size;
  }
  return size;
}

TEST(HopcroftKarpTest, PerfectMatching) {
  BipartiteGraph g{2, 2, {{0, 0}, {1, 1}}};
  const Matching m = MaxMatchingHopcroftKarp(g);
  EXPECT_EQ(m.size, 2);
  EXPECT_EQ(m.match_left[0], 0);
  EXPECT_EQ(m.match_left[1], 1);
}

TEST(HopcroftKarpTest, RequiresAugmenting) {
  // Greedy left-to-right would match 0-0 and strand vertex 1.
  BipartiteGraph g{2, 2, {{0, 0}, {0, 1}, {1, 0}}};
  const Matching m = MaxMatchingHopcroftKarp(g);
  EXPECT_EQ(m.size, 2);
}

TEST(HopcroftKarpTest, EmptyGraph) {
  BipartiteGraph g{3, 2, {}};
  EXPECT_EQ(MaxMatchingHopcroftKarp(g).size, 0);
}

TEST(HopcroftKarpTest, StarGraph) {
  BipartiteGraph g{1, 4, {{0, 0}, {0, 1}, {0, 2}, {0, 3}}};
  EXPECT_EQ(MaxMatchingHopcroftKarp(g).size, 1);
}

TEST(HopcroftKarpTest, MatchArraysConsistent) {
  BipartiteGraph g{3, 3, {{0, 1}, {1, 0}, {1, 2}, {2, 2}}};
  const Matching m = MaxMatchingHopcroftKarp(g);
  for (int32_t l = 0; l < g.num_left; ++l) {
    if (m.match_left[l] != -1) {
      EXPECT_EQ(m.match_right[m.match_left[l]], l);
    }
  }
}

TEST(KoenigTest, CoverSizeEqualsMatching) {
  BipartiteGraph g{3, 3, {{0, 0}, {0, 1}, {1, 1}, {2, 2}}};
  const Matching m = MaxMatchingHopcroftKarp(g);
  const UnweightedVertexCover vc = MinVertexCoverKoenig(g);
  EXPECT_EQ(vc.size, m.size);
  EXPECT_TRUE(CoversAllEdges(g, vc));
}

TEST(KoenigTest, PathGraph) {
  // Path L0 - R0 - L1 - R1: max matching 2, min cover 2.
  BipartiteGraph g{2, 2, {{0, 0}, {1, 0}, {1, 1}}};
  const UnweightedVertexCover vc = MinVertexCoverKoenig(g);
  EXPECT_EQ(vc.size, 2);
  EXPECT_TRUE(CoversAllEdges(g, vc));
}

class HopcroftKarpRandomTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, HopcroftKarpRandomTest,
                         ::testing::Range(0, 25));

TEST_P(HopcroftKarpRandomTest, MatchesOracleAndKoenigHolds) {
  Rng rng(GetParam() + 1000);
  BipartiteGraph g;
  g.num_left = 1 + static_cast<int32_t>(rng.UniformInt(0, 7));
  g.num_right = 1 + static_cast<int32_t>(rng.UniformInt(0, 7));
  const int m = static_cast<int>(rng.UniformInt(0, g.num_left * g.num_right));
  for (int i = 0; i < m; ++i) {
    g.edges.emplace_back(
        static_cast<int32_t>(rng.UniformInt(0, g.num_left - 1)),
        static_cast<int32_t>(rng.UniformInt(0, g.num_right - 1)));
  }
  const Matching matching = MaxMatchingHopcroftKarp(g);
  EXPECT_EQ(matching.size, OracleMatching(g));
  const UnweightedVertexCover vc = MinVertexCoverKoenig(g);
  EXPECT_EQ(vc.size, matching.size);  // Koenig's theorem
  EXPECT_TRUE(CoversAllEdges(g, vc));
}

}  // namespace
}  // namespace mc3::flow
