#include "data/query_log.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/general_solver.h"
#include "core/partial_cover.h"

namespace mc3::data {
namespace {

TEST(ParseQueryLogTest, TokenizesAndNormalizes) {
  const QueryLog log = ParseQueryLog({"White ADIDAS  Juventus!! shirt"});
  ASSERT_EQ(log.instance.NumQueries(), 1u);
  // "shirt" is not a default stopword; four properties survive.
  EXPECT_EQ(log.instance.queries()[0].size(), 4u);
  const auto& names = log.instance.property_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "white"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "adidas"), names.end());
}

TEST(ParseQueryLogTest, DropsStopwords) {
  const QueryLog log = ParseQueryLog({"tv for the kitchen"});
  ASSERT_EQ(log.instance.NumQueries(), 1u);
  EXPECT_EQ(log.instance.queries()[0].size(), 2u);  // tv, kitchen
}

TEST(ParseQueryLogTest, CustomStopwords) {
  QueryLogOptions options;
  options.stopwords = {"shirt"};
  const QueryLog log = ParseQueryLog({"adidas shirt"}, options);
  ASSERT_EQ(log.instance.NumQueries(), 1u);
  EXPECT_EQ(log.instance.queries()[0].size(), 1u);
}

TEST(ParseQueryLogTest, AggregatesDuplicates) {
  const QueryLog log = ParseQueryLog(
      {"adidas juventus", "juventus adidas", "ADIDAS juventus", "sony tv"});
  ASSERT_EQ(log.instance.NumQueries(), 2u);
  EXPECT_EQ(log.frequency[0], 3u);
  EXPECT_EQ(log.frequency[1], 1u);
  EXPECT_TRUE(log.instance.Validate().ok());
}

TEST(ParseQueryLogTest, DuplicateTokensCollapse) {
  const QueryLog log = ParseQueryLog({"red red red dress"});
  ASSERT_EQ(log.instance.NumQueries(), 1u);
  EXPECT_EQ(log.instance.queries()[0].size(), 2u);
}

TEST(ParseQueryLogTest, DropsEmptyAndTooLong) {
  QueryLogOptions options;
  options.max_query_length = 2;
  const QueryLog log =
      ParseQueryLog({"", "   !!!  ", "a b c d e", "tv"}, options);
  EXPECT_EQ(log.instance.NumQueries(), 1u);
  EXPECT_EQ(log.total_lines, 4u);
  EXPECT_EQ(log.dropped_lines, 3u);
}

TEST(ParseQueryLogTest, MinFrequencyFilter) {
  QueryLogOptions options;
  options.min_frequency = 2;
  const QueryLog log =
      ParseQueryLog({"sony tv", "sony tv", "rare query"}, options);
  ASSERT_EQ(log.instance.NumQueries(), 1u);
  EXPECT_EQ(log.frequency[0], 2u);
  EXPECT_EQ(log.dropped_lines, 1u);
}

TEST(EstimateCostsTest, PricesAllOfCq) {
  QueryLog log = ParseQueryLog({"adidas juventus white", "adidas chelsea"});
  ASSERT_TRUE(EstimateCosts(&log.instance, {}).ok());
  EXPECT_TRUE(log.instance.Validate().ok());
  EXPECT_TRUE(log.instance.IsFeasible());
  // 2^3-1 + 2^2-1 - shared {adidas} = 9 classifiers.
  EXPECT_EQ(log.instance.costs().size(), 9u);
}

TEST(EstimateCostsTest, HonorsDifficultyPriors) {
  QueryLog log = ParseQueryLog({"adidas juventus"});
  CostEstimatorOptions options;
  options.property_difficulty["adidas"] = 10;
  options.property_difficulty["juventus"] = 2;
  options.subadditivity = 0.5;
  ASSERT_TRUE(EstimateCosts(&log.instance, options).ok());
  const auto& names = log.instance.property_names();
  const auto id_of = [&](const std::string& name) {
    return static_cast<PropertyId>(
        std::find(names.begin(), names.end(), name) - names.begin());
  };
  EXPECT_EQ(log.instance.CostOf(PropertySet::Of({id_of("adidas")})), 10);
  EXPECT_EQ(log.instance.CostOf(PropertySet::Of({id_of("juventus")})), 2);
  // Pair: 0.5 * (10 + 2) = 6 — cheaper than the hard singleton.
  EXPECT_EQ(log.instance.CostOf(
                PropertySet::Of({id_of("adidas"), id_of("juventus")})),
            6);
}

TEST(EstimateCostsTest, RejectsBadParameters) {
  QueryLog log = ParseQueryLog({"tv"});
  CostEstimatorOptions options;
  options.subadditivity = 0;
  EXPECT_FALSE(EstimateCosts(&log.instance, options).ok());
}

TEST(QueryLogPipelineTest, EndToEndSolve) {
  const std::vector<std::string> raw = {
      "white adidas juventus",  "adidas chelsea", "white adidas juventus",
      "sony oled tv",           "sony tv",        "oled tv",
      "adidas chelsea",         "sony tv",
  };
  QueryLog log = ParseQueryLog(raw);
  ASSERT_TRUE(EstimateCosts(&log.instance, {}).ok());
  auto result = GeneralSolver().Solve(log.instance);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(Covers(log.instance, result->solution));
}

TEST(QueryLogPipelineTest, FrequenciesFeedBudgetedVariant) {
  const std::vector<std::string> raw = {
      "popular query", "popular query", "popular query", "niche search",
  };
  QueryLog log = ParseQueryLog(raw);
  ASSERT_TRUE(EstimateCosts(&log.instance, {}).ok());
  BudgetedInstance input;
  input.instance = log.instance;
  for (size_t f : log.frequency) {
    input.query_weights.push_back(static_cast<double>(f));
  }
  input.budget = 8;  // enough for one two-property query at difficulty 5
  auto result = SolveBudgetedGreedy(input);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The frequent query wins the budget.
  ASSERT_EQ(result->covered_queries.size(), 1u);
  EXPECT_EQ(result->covered_queries[0], 0u);
  EXPECT_EQ(result->covered_weight, 3);
}

}  // namespace
}  // namespace mc3::data
