// Property test for Algorithm 1 (paper Section 3): preprocessing preserves
// the exact optimum. For random seeded instances, the brute-force optimum
// of the original instance must equal the forced-selection cost plus the
// sum of the optima of the residual components — with each pruning step
// enabled individually (step 4 together with its step-1 precondition), with
// all of them combined, and with all disabled (partition only), on both the
// generic and the k <= 2 fast path.
#include <vector>

#include <gtest/gtest.h>

#include "core/mc3.h"
#include "tests/test_util.h"

namespace mc3 {
namespace {

using mc3::testing::BruteForceOptimum;
using mc3::testing::RandomInstance;
using mc3::testing::RandomInstanceConfig;

/// Named step configuration of one preservation check.
struct StepConfig {
  const char* name;
  PreprocessOptions options;
};

std::vector<StepConfig> StepConfigs() {
  PreprocessOptions none;
  none.step1_forced_singletons = false;
  none.step3_decompositions = false;
  none.step4_k2_singleton_prune = false;

  PreprocessOptions step1 = none;
  step1.step1_forced_singletons = true;
  PreprocessOptions step2 = none;  // partition alone (step 2 is always on
                                   // here; `none` isolates it)
  PreprocessOptions step3 = none;
  step3.step3_decompositions = true;
  // Step 4 (Obs. 3.4) presupposes step 1: its pair-cost sums skip singleton
  // queries because step 1 already retired them. Isolating it without that
  // precondition can remove a singleton classifier a live singleton query
  // still needs, so the minimal sound configuration is step1 + step4.
  PreprocessOptions step4 = none;
  step4.step1_forced_singletons = true;
  step4.step4_k2_singleton_prune = true;
  PreprocessOptions all;  // defaults: every step on

  return {{"none+partition", step2}, {"step1", step1}, {"step3", step3},
          {"step4", step4},          {"all", all}};
}

/// optimum(instance) must equal forced_cost + sum of component optima.
void CheckPreservation(const Instance& instance, uint64_t seed,
                       bool force_generic) {
  const Cost optimum = BruteForceOptimum(instance);
  ASSERT_NE(optimum, kInfiniteCost) << "seed " << seed;
  for (const StepConfig& config : StepConfigs()) {
    PreprocessOptions options = config.options;
    options.force_generic_path = force_generic;
    auto pre = Preprocess(instance, options);
    ASSERT_TRUE(pre.ok()) << "seed " << seed << " config " << config.name
                          << ": " << pre.status().ToString();
    Cost residual_total = pre->forced_cost;
    for (const Instance& component : pre->components) {
      const Cost component_optimum = BruteForceOptimum(component);
      ASSERT_NE(component_optimum, kInfiniteCost)
          << "seed " << seed << " config " << config.name;
      residual_total += component_optimum;
    }
    EXPECT_NEAR(residual_total, optimum, 1e-9)
        << "seed " << seed << " config " << config.name << " generic "
        << force_generic << ": preprocessing changed the optimum";
  }
}

TEST(PreprocessPreservationTest, MixedLengthInstances) {
  RandomInstanceConfig config;
  config.num_queries = 6;
  config.pool = 7;
  config.max_query_length = 3;
  for (uint64_t seed = 0; seed < 100; ++seed) {
    CheckPreservation(RandomInstance(config, seed), seed,
                      /*force_generic=*/false);
  }
}

TEST(PreprocessPreservationTest, K2InstancesBothPaths) {
  RandomInstanceConfig config;
  config.num_queries = 7;
  config.pool = 7;
  config.max_query_length = 2;
  for (uint64_t seed = 0; seed < 100; ++seed) {
    const Instance instance = RandomInstance(config, seed);
    ASSERT_LE(instance.MaxQueryLength(), 2u);
    // The specialized k <= 2 worker and the generic worker must both
    // preserve the optimum (they are separately implemented).
    CheckPreservation(instance, seed, /*force_generic=*/false);
    CheckPreservation(instance, seed, /*force_generic=*/true);
  }
}

TEST(PreprocessPreservationTest, PaperExample) {
  CheckPreservation(mc3::testing::PaperExample(), 0,
                    /*force_generic=*/false);
  CheckPreservation(mc3::testing::PaperExample(), 0,
                    /*force_generic=*/true);
}

}  // namespace
}  // namespace mc3
