// Differential testing of the solvers against an independent brute-force
// oracle (tests/test_util.h) on random tiny instances:
//   * ExactSolver must match the oracle exactly;
//   * GeneralSolver (every configuration) must cover all queries and never
//     beat the optimum;
//   * on k <= 2 instances, K2ExactSolver must equal the optimum (Theorem
//     4.1: the problem is polynomial there and Algorithm 2 is exact).
#include <gtest/gtest.h>

#include "core/mc3.h"
#include "tests/test_util.h"

namespace mc3 {
namespace {

using mc3::testing::BruteForceOptimum;
using mc3::testing::RandomInstance;
using mc3::testing::RandomInstanceConfig;

TEST(DifferentialOracleTest, OracleMatchesPaperExample) {
  EXPECT_EQ(BruteForceOptimum(mc3::testing::PaperExample()), 7);
}

TEST(DifferentialOracleTest, OracleReportsInfeasible) {
  Instance instance;
  instance.AddQuery(PropertySet::Of({0, 1}));
  instance.SetCost(PropertySet::Of({0}), 1);  // property 1 uncoverable
  EXPECT_EQ(BruteForceOptimum(instance), kInfiniteCost);
}

TEST(DifferentialOracleTest, ExactSolverMatchesOracle) {
  RandomInstanceConfig config;
  config.num_queries = 5;
  config.pool = 6;
  config.max_query_length = 4;
  for (uint64_t seed = 0; seed < 120; ++seed) {
    const Instance instance = RandomInstance(config, seed);
    const Cost optimum = BruteForceOptimum(instance);
    ASSERT_NE(optimum, kInfiniteCost) << "seed " << seed;
    auto exact = ExactSolver().Solve(instance);
    ASSERT_TRUE(exact.ok()) << "seed " << seed << ": "
                            << exact.status().ToString();
    EXPECT_NEAR(exact->cost, optimum, 1e-9) << "seed " << seed;
  }
}

TEST(DifferentialOracleTest, GeneralSolverNeverBeatsOracleAndCovers) {
  RandomInstanceConfig config;
  config.num_queries = 8;
  config.pool = 8;
  config.max_query_length = 4;
  SolverOptions plain;
  SolverOptions no_preprocess;
  no_preprocess.preprocess = false;
  SolverOptions greedy_only;
  greedy_only.f_method = SolverOptions::FMethod::kNone;
  SolverOptions f_only;
  f_only.run_greedy = false;
  SolverOptions with_exact;
  with_exact.exact_component_max_queries = 4;
  const SolverOptions configs[] = {plain, no_preprocess, greedy_only, f_only,
                                   with_exact};

  for (uint64_t seed = 0; seed < 60; ++seed) {
    const Instance instance = RandomInstance(config, seed);
    const Cost optimum = BruteForceOptimum(instance);
    ASSERT_NE(optimum, kInfiniteCost) << "seed " << seed;
    for (size_t ci = 0; ci < std::size(configs); ++ci) {
      auto result = GeneralSolver(configs[ci]).Solve(instance);
      ASSERT_TRUE(result.ok()) << "seed " << seed << " config " << ci << ": "
                               << result.status().ToString();
      // verify_solution is on by default, so coverage is already enforced;
      // re-check explicitly so this test does not depend on that default.
      const CoverageReport report =
          VerifyCoverage(instance, result->solution);
      EXPECT_TRUE(report.covers_all) << "seed " << seed << " config " << ci;
      EXPECT_GE(result->cost, optimum - 1e-9)
          << "seed " << seed << " config " << ci
          << ": heuristic beat the exact optimum — oracle or solver bug";
    }
  }
}

TEST(DifferentialOracleTest, K2SolverIsExact) {
  RandomInstanceConfig config;
  config.num_queries = 8;
  config.pool = 7;
  config.max_query_length = 2;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    const Instance instance = RandomInstance(config, seed);
    ASSERT_LE(instance.MaxQueryLength(), 2u);
    const Cost optimum = BruteForceOptimum(instance);
    ASSERT_NE(optimum, kInfiniteCost) << "seed " << seed;
    auto result = K2ExactSolver(SolverOptions{}).Solve(instance);
    ASSERT_TRUE(result.ok()) << "seed " << seed << ": "
                             << result.status().ToString();
    EXPECT_NEAR(result->cost, optimum, 1e-9) << "seed " << seed;
    const CoverageReport report = VerifyCoverage(instance, result->solution);
    EXPECT_TRUE(report.covers_all) << "seed " << seed;

    // The generic preprocessing path must not change the answer either.
    SolverOptions generic;
    generic.preprocess_options.force_generic_path = true;
    auto generic_result = K2ExactSolver(generic).Solve(instance);
    ASSERT_TRUE(generic_result.ok()) << "seed " << seed;
    EXPECT_NEAR(generic_result->cost, optimum, 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mc3
