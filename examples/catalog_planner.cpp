// catalog_planner: a classifier construction planner for a query workload
// stored in CSV.
//
// Usage:
//   catalog_planner <workload.csv>        plan for an existing workload
//   catalog_planner --demo <out.csv>      write a small demo workload, then
//                                         plan for it
//
// CSV dialect (see src/data/io.h):
//   Q,<prop>,<prop>,...          one row per query
//   C,<cost>,<prop>,<prop>,...   one row per priced classifier
//
// The planner validates the workload, runs Algorithm 1 + the appropriate
// solver (exact when every query is short, Algorithm 3 otherwise), and
// prints the classifier construction plan with per-query explanations.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/mc3.h"
#include "data/io.h"

namespace {

using namespace mc3;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

const char kDemoWorkload[] =
    "# demo workload: laptops\n"
    "Q,gaming,laptop\n"
    "Q,apple,laptop\n"
    "Q,apple,laptop,refurbished\n"
    "Q,lightweight\n"
    "C,8,gaming\n"
    "C,3,laptop\n"
    "C,9,apple\n"
    "C,2,lightweight\n"
    "C,5,refurbished\n"
    "C,6,gaming,laptop\n"
    "C,4,apple,laptop\n"
    "C,3,apple,refurbished\n"
    "C,9,apple,laptop,refurbished\n";

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (argc == 3 && std::strcmp(argv[1], "--demo") == 0) {
    path = argv[2];
    FILE* out = std::fopen(path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::fwrite(kDemoWorkload, 1, sizeof(kDemoWorkload) - 1, out);
    std::fclose(out);
    std::printf("wrote demo workload to %s\n", path.c_str());
  } else if (argc == 2) {
    path = argv[1];
  } else {
    std::fprintf(stderr,
                 "usage: %s <workload.csv>\n"
                 "       %s --demo <out.csv>\n",
                 argv[0], argv[0]);
    return 2;
  }

  auto instance = data::LoadInstance(path);
  if (!instance.ok()) return Fail(instance.status());

  const InstanceStats stats = ComputeStats(*instance);
  std::printf("workload: %zu queries, %zu properties, %zu priced "
              "classifiers, max query length %zu\n",
              stats.num_queries, stats.num_properties, stats.num_classifiers,
              stats.max_query_length);
  if (!stats.feasible) {
    std::fprintf(stderr,
                 "workload is infeasible: some query cannot be covered by "
                 "the priced classifiers\n");
    return 1;
  }

  // Exact when everything is short; Algorithm 3 otherwise.
  Result<SolveResult> result = Status::Internal("unset");
  if (stats.max_query_length <= 2) {
    std::printf("all queries are short: using the exact k=2 solver\n");
    result = K2ExactSolver().Solve(*instance);
  } else {
    std::printf("long queries present: using the approximation solver\n");
    result = GeneralSolver().Solve(*instance);
  }
  if (!result.ok()) return Fail(result.status());

  std::printf("\n=== construction plan (total cost %.2f) ===\n",
              result->cost);
  for (const PropertySet& c : result->solution.Sorted()) {
    std::printf("  train classifier [%s]  (cost %.2f)\n",
                c.ToString(instance->property_names()).c_str(),
                instance->CostOf(c));
  }

  std::printf("\n=== per-query evaluation plan ===\n");
  const CoverageReport report = VerifyCoverage(*instance, result->solution);
  for (size_t qi = 0; qi < instance->NumQueries(); ++qi) {
    std::printf("  %s <- AND of:",
                instance->queries()[qi]
                    .ToString(instance->property_names())
                    .c_str());
    for (const PropertySet& c : report.witnesses[qi]) {
      std::printf(" [%s]", c.ToString(instance->property_names()).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
