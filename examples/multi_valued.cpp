// multi_valued: the Section 5.3 extensions in action.
//
// Scenario: the soccer-shirt catalog again, but now the team can be
// resolved either by per-value binary classifiers (juventus?, chelsea?) or
// by one multi-valued "team" classifier that determines the team outright.
//
// Part 1 — multi-valued only: merge value-properties into attributes and
// solve the attribute-level MC3 instance.
// Part 2 — hybrid: binary and multi-valued classifiers compete inside the
// extended WSC reduction.
#include <cstdio>

#include "core/mc3.h"

int main() {
  using namespace mc3;

  // Properties: 0=juventus, 1=chelsea, 2=white, 3=adidas.
  const PropertyId kJuventus = 0, kChelsea = 1, kWhite = 2, kAdidas = 3;
  Instance instance;
  instance.set_property_names({"juventus", "chelsea", "white", "adidas"});
  instance.AddQuery(PropertySet::Of({kJuventus, kWhite, kAdidas}));
  instance.AddQuery(PropertySet::Of({kChelsea, kAdidas}));
  instance.SetCost(PropertySet::Of({kJuventus}), 5);
  instance.SetCost(PropertySet::Of({kChelsea}), 5);
  instance.SetCost(PropertySet::Of({kWhite}), 1);
  instance.SetCost(PropertySet::Of({kAdidas}), 5);
  instance.SetCost(PropertySet::Of({kAdidas, kChelsea}), 3);
  instance.SetCost(PropertySet::Of({kAdidas, kJuventus}), 3);

  // ---- Part 1: attributes only (Section 5.3, "multi-valued classifiers").
  // juventus and chelsea merge into the team attribute; white -> color;
  // adidas -> brand. Attribute-level classifier costs come from external
  // estimation, exactly as in the paper.
  const AttributeId kTeam = 0, kColor = 1, kBrand = 2;
  const std::vector<AttributeId> property_attribute = {kTeam, kTeam, kColor,
                                                       kBrand};
  CostMap attribute_costs;
  attribute_costs[PropertySet::Of({kTeam})] = 6;   // one team classifier
  attribute_costs[PropertySet::Of({kColor})] = 2;
  attribute_costs[PropertySet::Of({kBrand})] = 5;
  attribute_costs[PropertySet::Of({kTeam, kBrand})] = 8;

  auto merged = MergeToAttributes(instance, property_attribute,
                                  attribute_costs);
  if (!merged.ok()) {
    std::fprintf(stderr, "%s\n", merged.status().ToString().c_str());
    return 1;
  }
  merged->set_property_names({"team", "color", "brand"});
  std::printf("attribute-level instance: %zu queries (from %zu)\n",
              merged->NumQueries(), instance.NumQueries());
  auto merged_result = GeneralSolver().Solve(*merged);
  if (!merged_result.ok()) {
    std::fprintf(stderr, "%s\n", merged_result.status().ToString().c_str());
    return 1;
  }
  std::printf("attribute plan: %s at cost %.0f\n\n",
              merged_result->solution.ToString(*merged).c_str(),
              merged_result->cost);

  // ---- Part 2: hybrid (binary and multi-valued side by side).
  std::vector<MultiValuedClassifier> mv;
  mv.push_back({"team", PropertySet::Of({kJuventus, kChelsea}), 6});
  auto hybrid = SolveWithMultiValued(instance, mv);
  if (!hybrid.ok()) {
    std::fprintf(stderr, "%s\n", hybrid.status().ToString().c_str());
    return 1;
  }
  std::printf("hybrid plan: binary %s",
              hybrid->binary.ToString(instance).c_str());
  for (size_t i : hybrid->multi_valued) {
    std::printf(" + multi-valued '%s'", mv[i].name.c_str());
  }
  std::printf("  (cost %.0f)\n", hybrid->cost);
  std::printf(
      "\nReading: the multi-valued team classifier replaces both team\n"
      "singletons when its cost undercuts the cheapest binary cover.\n");
  return 0;
}
