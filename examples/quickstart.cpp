// Quickstart: the paper's Example 1.1 end to end.
//
// Two free-text searches hit a soccer-shirt catalog:
//     "white adidas juventus shirt"  ->  team=Juventus AND color=White
//                                        AND brand=Adidas
//     "adidas chelsea shirt"         ->  team=Chelsea AND brand=Adidas
//
// Answering them requires binary classifiers for (conjunctions of) these
// properties; the MC3 solver picks the cheapest set of classifiers to train.
// With the costs from the paper, the optimum is {adidas&chelsea,
// adidas&juventus, white} at 7 cost units.
#include <cstdio>

#include "core/mc3.h"

int main() {
  using namespace mc3;

  // 1. Describe the workload: queries plus the classifier cost estimates
  //    your labeling team produced (unpriced classifiers are simply not
  //    available).
  InstanceBuilder builder;
  builder.AddQuery({"juventus", "white", "adidas"});
  builder.AddQuery({"chelsea", "adidas"});
  builder.SetCost({"chelsea"}, 5);
  builder.SetCost({"adidas"}, 5);
  builder.SetCost({"juventus"}, 5);
  builder.SetCost({"white"}, 1);
  builder.SetCost({"adidas", "chelsea"}, 3);
  builder.SetCost({"adidas", "white"}, 5);
  builder.SetCost({"adidas", "juventus"}, 3);
  builder.SetCost({"juventus", "white"}, 4);
  builder.SetCost({"juventus", "adidas", "white"}, 5);
  const Instance instance = std::move(builder).Build();

  if (Status status = instance.Validate(); !status.ok()) {
    std::fprintf(stderr, "invalid instance: %s\n", status.ToString().c_str());
    return 1;
  }

  // 2. Solve. GeneralSolver is Algorithm 3 of the paper (preprocessing,
  //    reduction to weighted set cover, greedy + primal-dual, best of both).
  const GeneralSolver solver;
  auto result = solver.Solve(instance);
  if (!result.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 3. The classifiers to train, and what each query uses.
  std::printf("classifiers to train: %s\n",
              result->solution.ToString(instance).c_str());
  std::printf("total construction cost: %.0f\n", result->cost);

  const CoverageReport report = VerifyCoverage(instance, result->solution);
  for (size_t qi = 0; qi < instance.NumQueries(); ++qi) {
    std::printf("query %s is answered by:",
                instance.queries()[qi]
                    .ToString(instance.property_names())
                    .c_str());
    for (const PropertySet& c : report.witnesses[qi]) {
      std::printf(" [%s]", c.ToString(instance.property_names()).c_str());
    }
    std::printf("\n");
  }

  // 4. For reference: the certified optimum from the exact solver (viable
  //    for small instances only).
  auto exact = ExactSolver().Solve(instance);
  if (exact.ok()) {
    std::printf("exact optimum: %.0f (solver %s optimal here)\n", exact->cost,
                exact->cost == result->cost ? "is" : "is NOT");
  }
  return 0;
}
