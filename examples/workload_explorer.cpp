// workload_explorer: generates the three reconstructed datasets of the
// paper's evaluation (BestBuy-like, Private-like, Synthetic), prints their
// Table-1 statistics, and compares every applicable solver on each.
//
// Usage: workload_explorer [scale]
//   scale (default 0.2) multiplies dataset sizes; 1.0 = Table 1 sizes for
//   BB/P (the synthetic dataset defaults to 10k even at scale 1).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/mc3.h"
#include "data/bestbuy.h"
#include "data/private_dataset.h"
#include "data/synthetic.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace mc3;

void Explore(const std::string& name, const Instance& instance,
             bool uniform_costs) {
  const InstanceStats stats = ComputeStats(instance);
  std::printf(
      "\n=== %s ===\n"
      "queries: %zu   properties: %zu   classifiers: %zu\n"
      "max length: %zu   short queries: %.1f%%   costs: [%.0f, %.0f]   "
      "incidence: %zu\n",
      name.c_str(), stats.num_queries, stats.num_properties,
      stats.num_classifiers, stats.max_query_length,
      100 * stats.fraction_short, stats.min_cost, stats.max_cost,
      stats.incidence);

  std::vector<std::unique_ptr<Solver>> solvers;
  const bool all_short = stats.max_query_length <= 2;
  if (all_short) {
    solvers.push_back(std::make_unique<K2ExactSolver>());
    if (uniform_costs) solvers.push_back(std::make_unique<MixedSolver>());
  } else {
    solvers.push_back(std::make_unique<GeneralSolver>());
    solvers.push_back(std::make_unique<ShortFirstSolver>());
    solvers.push_back(std::make_unique<LocalGreedySolver>());
  }
  solvers.push_back(std::make_unique<QueryOrientedSolver>());
  solvers.push_back(std::make_unique<PropertyOrientedSolver>());

  TablePrinter table({"solver", "cost", "classifiers", "time (s)"});
  for (const auto& solver : solvers) {
    Timer timer;
    auto result = solver->Solve(instance);
    const double seconds = timer.Seconds();
    if (!result.ok()) {
      table.AddRow({solver->Name(), result.status().ToString(), "-", "-"});
      continue;
    }
    table.AddRow({solver->Name(), TablePrinter::Num(result->cost, 0),
                  std::to_string(result->solution.size()),
                  TablePrinter::Num(seconds, 3)});
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.2;
  if (argc > 1) scale = std::atof(argv[1]);
  if (scale <= 0) scale = 0.2;
  auto scaled = [scale](size_t base) {
    return std::max<size_t>(20, static_cast<size_t>(base * scale));
  };

  data::BestBuyConfig bb_config;
  bb_config.num_queries = scaled(1000);
  const Instance bb = data::GenerateBestBuy(bb_config);
  // The short-query solvers need the short slice of BB (95% of it).
  std::vector<size_t> short_idx;
  for (size_t i = 0; i < bb.NumQueries(); ++i) {
    if (bb.queries()[i].size() <= 2) short_idx.push_back(i);
  }
  Explore("BestBuy-like (short slice, uniform costs)",
          SubInstance(bb, short_idx), /*uniform_costs=*/true);

  data::PrivateConfig p_config;
  p_config.electronics_queries = scaled(5500);
  p_config.home_garden_queries = scaled(3500);
  p_config.fashion_queries = scaled(1000);
  const data::PrivateDataset p = data::GeneratePrivate(p_config);
  Explore("Private-like (3 categories, costs 1-63)", p.instance,
          /*uniform_costs=*/false);

  data::SyntheticConfig s_config;
  s_config.num_queries = scaled(10000);
  Explore("Synthetic (geometric lengths, costs 1-50)",
          data::GenerateSynthetic(s_config), /*uniform_costs=*/false);
  return 0;
}
