// mc3_benchdiff — compare two bench documents, or write a counters-only
// baseline from a report.
//
//   mc3_benchdiff <baseline.json> <current.json> [--counters-only]
//                 [--counter-tolerance PCT] [--wall-tolerance PCT]
//                 [--min-wall-ms MS] [--json out.json]
//       Diffs `current` against `baseline` (each a mc3.bench_report/1, /2
//       or mc3.bench_baseline/1 document). Prints a findings table;
//       --json additionally writes a validated mc3.bench_diff/1 document.
//       Tolerances are percentages (default: counters 0, wall 25).
//
//   mc3_benchdiff --write-baseline <out.json> <report.json>
//       Extracts the per-case work counters of `report` into a
//       machine-independent mc3.bench_baseline/1 document (the format
//       committed under bench/baselines/ and gated in CI).
//
// Exit codes: 0 no regression, 1 regression found, 2 usage or load error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "benchdiff/benchdiff.h"

namespace {

using namespace mc3;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  mc3_benchdiff <baseline.json> <current.json> [--counters-only]\n"
      "                [--counter-tolerance PCT] [--wall-tolerance PCT]\n"
      "                [--min-wall-ms MS] [--json out.json]\n"
      "  mc3_benchdiff --write-baseline <out.json> <report.json>\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return Status::InvalidArgument("cannot open " + path);
  }
  std::string content;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), in)) > 0) {
    content.append(buffer, n);
  }
  std::fclose(in);
  return content;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), out);
  const bool flushed = std::fclose(out) == 0;
  if (written != content.size() || !flushed) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

Result<benchdiff::BenchData> LoadFile(const std::string& path) {
  auto content = ReadFile(path);
  if (!content.ok()) return content.status();
  auto data = benchdiff::LoadBenchData(*content);
  if (!data.ok()) {
    return Status::InvalidArgument(path + ": " + data.status().ToString());
  }
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);

  if (!args.empty() && args[0] == "--write-baseline") {
    if (args.size() != 3) return Usage();
    auto data = LoadFile(args[2]);
    if (!data.ok()) return Fail(data.status());
    const std::string json = benchdiff::RenderBaselineJson(*data);
    if (Status status = WriteFile(args[1], json); !status.ok()) {
      return Fail(status);
    }
    std::printf("baseline written to %s (%zu cases, schema %s)\n",
                args[1].c_str(), data->cases.size(),
                benchdiff::kBenchBaselineSchema);
    return 0;
  }

  std::vector<std::string> paths;
  benchdiff::DiffOptions options;
  std::string json_out;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> const char* {
      return i + 1 < args.size() ? args[++i].c_str() : nullptr;
    };
    if (arg == "--counters-only") {
      options.counters_only = true;
    } else if (arg == "--counter-tolerance") {
      const char* v = value();
      if (v == nullptr) return Usage();
      options.counter_tolerance = std::strtod(v, nullptr) / 100.0;
    } else if (arg == "--wall-tolerance") {
      const char* v = value();
      if (v == nullptr) return Usage();
      options.wall_tolerance = std::strtod(v, nullptr) / 100.0;
    } else if (arg == "--min-wall-ms") {
      const char* v = value();
      if (v == nullptr) return Usage();
      options.min_wall_seconds = std::strtod(v, nullptr) / 1e3;
    } else if (arg == "--json") {
      const char* v = value();
      if (v == nullptr) return Usage();
      json_out = v;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) return Usage();

  auto baseline = LoadFile(paths[0]);
  if (!baseline.ok()) return Fail(baseline.status());
  auto current = LoadFile(paths[1]);
  if (!current.ok()) return Fail(current.status());

  const benchdiff::DiffReport report =
      benchdiff::DiffBenchData(*baseline, *current, options);

  std::printf("compared %zu cases, %zu counters%s\n", report.cases_compared,
              report.counters_compared,
              report.wall_compared ? ", wall times" : "");
  if (report.findings.empty()) {
    std::printf("no drift: counters identical%s\n",
                options.counters_only ? " (wall times not compared)" : "");
  } else {
    std::printf("%s", benchdiff::RenderDiffTable(report).c_str());
  }

  if (!json_out.empty()) {
    const std::string json = benchdiff::RenderDiffJson(report, options);
    if (Status status = benchdiff::ValidateBenchDiffJson(json);
        !status.ok()) {
      return Fail(status);
    }
    if (Status status = WriteFile(json_out, json); !status.ok()) {
      return Fail(status);
    }
    std::printf("diff written to %s (schema %s)\n", json_out.c_str(),
                benchdiff::kBenchDiffSchema);
  }

  const size_t regressions = report.NumRegressions();
  if (regressions > 0) {
    std::fprintf(stderr, "%zu regression finding(s)\n", regressions);
    return 1;
  }
  return 0;
}
