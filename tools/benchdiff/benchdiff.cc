#include "benchdiff/benchdiff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/json.h"
#include "obs/report.h"
#include "util/table.h"

namespace mc3::benchdiff {
namespace {

/// Scale factor turning a MAD into a standard-deviation estimate for
/// normally distributed noise.
constexpr double kMadToSigma = 1.4826;

std::string FormatMachine(const obs::JsonValue& machine) {
  const obs::JsonValue* os = machine.Find("os");
  const obs::JsonValue* arch = machine.Find("arch");
  const obs::JsonValue* compiler = machine.Find("compiler");
  const obs::JsonValue* threads = machine.Find("hardware_threads");
  std::string out;
  out += os != nullptr && os->is_string() ? os->string : "?";
  out += "/";
  out += arch != nullptr && arch->is_string() ? arch->string : "?";
  out += " ";
  out += compiler != nullptr && compiler->is_string() ? compiler->string
                                                      : "?";
  if (threads != nullptr && threads->is_number()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " (%.0f threads)", threads->number);
    out += buf;
  }
  return out;
}

Status ParseCounters(const obs::JsonValue& counters, const std::string& path,
                     std::map<std::string, uint64_t>* out) {
  if (!counters.is_object()) {
    return Status::InvalidArgument(path + ": counters is not an object");
  }
  for (const auto& [name, value] : counters.object) {
    if (!value.is_number() || value.number < 0) {
      return Status::InvalidArgument(path + "." + name +
                                     ": not a non-negative number");
    }
    (*out)[name] = static_cast<uint64_t>(value.number);
  }
  return Status::OK();
}

Result<BenchData> LoadBaseline(const obs::JsonValue& root) {
  BenchData data;
  data.schema = kBenchBaselineSchema;
  const obs::JsonValue* obs_flag = root.Find("obs_enabled");
  data.obs_enabled = obs_flag != nullptr && obs_flag->boolean;
  const obs::JsonValue* cases = root.Find("cases");
  if (cases == nullptr || !cases->is_object()) {
    return Status::InvalidArgument(
        "baseline document: $.cases missing or not an object");
  }
  for (const auto& [name, counters] : cases->object) {
    CaseData case_data;
    MC3_RETURN_IF_ERROR(
        ParseCounters(counters, "$.cases." + name, &case_data.counters));
    data.cases.emplace_back(name, std::move(case_data));
  }
  return data;
}

Result<BenchData> LoadReport(const obs::JsonValue& root,
                             const std::string& schema) {
  BenchData data;
  data.schema = schema;
  const bool v2 = schema == obs::kBenchReportSchema;
  const obs::JsonValue* obs_flag = root.Find("obs_enabled");
  data.obs_enabled = obs_flag != nullptr && obs_flag->boolean;
  if (v2) {
    if (const obs::JsonValue* machine = root.Find("machine");
        machine != nullptr && machine->is_object()) {
      data.machine = FormatMachine(*machine);
    }
  }
  const obs::JsonValue* cases = root.Find("cases");
  if (cases == nullptr || !cases->is_array()) {
    return Status::InvalidArgument(
        "report document: $.cases missing or not an array");
  }
  for (size_t i = 0; i < cases->array.size(); ++i) {
    const obs::JsonValue& entry = cases->array[i];
    const std::string path = "$.cases[" + std::to_string(i) + "]";
    const obs::JsonValue* workload = entry.Find("workload");
    if (workload == nullptr || !workload->is_string()) {
      return Status::InvalidArgument(path + ".workload missing");
    }
    CaseData case_data;
    if (v2) {
      const obs::JsonValue* counters = entry.Find("counters");
      if (counters == nullptr) {
        return Status::InvalidArgument(path + ".counters missing");
      }
      MC3_RETURN_IF_ERROR(
          ParseCounters(*counters, path + ".counters", &case_data.counters));
      const obs::JsonValue* walls = entry.Find("wall_seconds");
      if (walls == nullptr || !walls->is_array()) {
        return Status::InvalidArgument(path + ".wall_seconds missing");
      }
      for (const obs::JsonValue& w : walls->array) {
        if (!w.is_number()) {
          return Status::InvalidArgument(path + ".wall_seconds: not numbers");
        }
        case_data.wall_seconds.push_back(w.number);
      }
    } else {
      // /1 reports predate counters; the single total becomes one sample.
      const obs::JsonValue* result = entry.Find("result");
      const obs::JsonValue* seconds =
          result != nullptr ? result->Find("total_seconds") : nullptr;
      if (seconds != nullptr && seconds->is_number()) {
        case_data.wall_seconds.push_back(seconds->number);
      }
    }
    data.cases.emplace_back(workload->string, std::move(case_data));
  }
  return data;
}

void AddFinding(DiffReport* report, Finding finding) {
  report->findings.push_back(std::move(finding));
}

std::string Percent(double change) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", 100 * change);
  return buf;
}

void DiffCounters(const std::string& name, const CaseData& base,
                  const CaseData& cur, const DiffOptions& options,
                  DiffReport* report) {
  for (const auto& [counter, base_value] : base.counters) {
    const auto it = cur.counters.find(counter);
    if (it == cur.counters.end()) {
      AddFinding(report,
                 Finding{"counter_missing", name, counter,
                         static_cast<double>(base_value), 0, -1.0, true,
                         "counter disappeared from the current report"});
      continue;
    }
    ++report->counters_compared;
    const double b = static_cast<double>(base_value);
    const double c = static_cast<double>(it->second);
    const double change = (c - b) / std::max(b, 1.0);
    if (std::fabs(change) > options.counter_tolerance) {
      AddFinding(report, Finding{"counter_drift", name, counter, b, c,
                                 change, true,
                                 "deterministic work count drifted by " +
                                     Percent(change)});
    }
  }
  for (const auto& [counter, value] : cur.counters) {
    if (base.counters.count(counter) == 0) {
      AddFinding(report,
                 Finding{"counter_new", name, counter, 0,
                         static_cast<double>(value), 1.0, true,
                         "counter absent from the baseline — refresh it"});
    }
  }
}

void DiffWalls(const std::string& name, const CaseData& base,
               const CaseData& cur, const DiffOptions& options,
               DiffReport* report) {
  if (base.wall_seconds.empty() || cur.wall_seconds.empty()) return;
  const double base_median = Median(base.wall_seconds);
  const double cur_median = Median(cur.wall_seconds);
  if (base_median < options.min_wall_seconds &&
      cur_median < options.min_wall_seconds) {
    return;  // too fast to time meaningfully
  }
  // Noise floor: the combined MAD-estimated sigma of both runs, or the
  // relative tolerance, whichever is larger.
  const double noise =
      kMadToSigma * (MedianAbsDeviation(base.wall_seconds, base_median) +
                     MedianAbsDeviation(cur.wall_seconds, cur_median));
  const double threshold =
      std::max(options.wall_tolerance * base_median, 3 * noise);
  const double change = (cur_median - base_median) / std::max(base_median, 1e-12);
  report->wall_compared = true;
  if (cur_median > base_median + threshold) {
    AddFinding(report,
               Finding{"wall_regression", name, "wall_seconds", base_median,
                       cur_median, change,
                       true, "median slowed by " + Percent(change) +
                           " (beyond the MAD noise floor)"});
  } else if (cur_median < base_median - threshold) {
    AddFinding(report,
               Finding{"wall_improvement", name, "wall_seconds", base_median,
                       cur_median, change, false,
                       "median improved by " + Percent(change)});
  }
}

}  // namespace

const CaseData* BenchData::FindCase(const std::string& name) const {
  for (const auto& [case_name, data] : cases) {
    if (case_name == name) return &data;
  }
  return nullptr;
}

Result<BenchData> LoadBenchData(const std::string& json) {
  auto parsed = obs::ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const obs::JsonValue* schema = parsed->Find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return Status::InvalidArgument("document has no schema string");
  }
  if (schema->string == kBenchBaselineSchema) return LoadBaseline(*parsed);
  if (schema->string == obs::kBenchReportSchema ||
      schema->string == obs::kBenchReportSchemaV1) {
    return LoadReport(*parsed, schema->string);
  }
  return Status::InvalidArgument("unsupported schema '" + schema->string +
                                 "'");
}

size_t DiffReport::NumRegressions() const {
  size_t n = 0;
  for (const Finding& f : findings) {
    if (f.regression) ++n;
  }
  return n;
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double MedianAbsDeviation(const std::vector<double>& values, double median) {
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (const double v : values) deviations.push_back(std::fabs(v - median));
  return Median(std::move(deviations));
}

DiffReport DiffBenchData(const BenchData& baseline, const BenchData& current,
                         const DiffOptions& options) {
  DiffReport report;
  // A de-instrumented current build makes the counter gate vacuous; that
  // must fail loudly rather than report a clean diff.
  if (baseline.obs_enabled && !current.obs_enabled) {
    AddFinding(&report,
               Finding{"obs_disabled", "", "", 0, 0, 0, true,
                       "current report was built with MC3_OBS=OFF; counters "
                       "cannot be gated"});
    return report;
  }
  const bool same_machine = !baseline.machine.empty() &&
                            baseline.machine == current.machine;
  for (const auto& [name, base_case] : baseline.cases) {
    const CaseData* cur_case = current.FindCase(name);
    if (cur_case == nullptr) {
      AddFinding(&report, Finding{"case_missing", name, "", 0, 0, 0, true,
                                  "case missing from the current report"});
      continue;
    }
    ++report.cases_compared;
    DiffCounters(name, base_case, *cur_case, options, &report);
    if (!options.counters_only) {
      if (same_machine) {
        DiffWalls(name, base_case, *cur_case, options, &report);
      } else if (!base_case.wall_seconds.empty() &&
                 !cur_case->wall_seconds.empty()) {
        AddFinding(&report,
                   Finding{"wall_skipped", name, "wall_seconds",
                           Median(base_case.wall_seconds),
                           Median(cur_case->wall_seconds), 0, false,
                           "machines differ or are unidentified; wall times "
                           "not comparable"});
      }
    }
  }
  for (const auto& [name, cur_case] : current.cases) {
    if (baseline.FindCase(name) == nullptr) {
      AddFinding(&report, Finding{"case_new", name, "", 0, 0, 0, false,
                                  "case absent from the baseline"});
    }
  }
  return report;
}

std::string RenderDiffJson(const DiffReport& report,
                           const DiffOptions& options) {
  obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema").String(kBenchDiffSchema);
  writer.Key("counters_only").Bool(options.counters_only);
  writer.Key("counter_tolerance").Number(options.counter_tolerance);
  writer.Key("wall_tolerance").Number(options.wall_tolerance);
  writer.Key("cases_compared").Int(report.cases_compared);
  writer.Key("counters_compared").Int(report.counters_compared);
  writer.Key("wall_compared").Bool(report.wall_compared);
  writer.Key("regressions").Int(report.NumRegressions());
  writer.Key("findings").BeginArray();
  for (const Finding& f : report.findings) {
    writer.BeginObject();
    writer.Key("kind").String(f.kind);
    writer.Key("case").String(f.case_name);
    writer.Key("metric").String(f.metric);
    writer.Key("baseline").Number(f.baseline);
    writer.Key("current").Number(f.current);
    writer.Key("change").Number(f.change);
    writer.Key("regression").Bool(f.regression);
    writer.Key("detail").String(f.detail);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  return writer.Take();
}

Status ValidateBenchDiffJson(const std::string& json) {
  auto parsed = obs::ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const obs::JsonValue* schema = parsed->Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != kBenchDiffSchema) {
    return Status::InvalidArgument(std::string("$.schema: expected ") +
                                   kBenchDiffSchema);
  }
  for (const char* key : {"cases_compared", "counters_compared",
                          "counter_tolerance", "wall_tolerance",
                          "regressions"}) {
    const obs::JsonValue* v = parsed->Find(key);
    if (v == nullptr || !v->is_number()) {
      return Status::InvalidArgument(std::string("$.") + key +
                                     ": missing or not a number");
    }
  }
  for (const char* key : {"counters_only", "wall_compared"}) {
    const obs::JsonValue* v = parsed->Find(key);
    if (v == nullptr || v->kind != obs::JsonValue::Kind::kBool) {
      return Status::InvalidArgument(std::string("$.") + key +
                                     ": missing or not a bool");
    }
  }
  const obs::JsonValue* findings = parsed->Find("findings");
  if (findings == nullptr || !findings->is_array()) {
    return Status::InvalidArgument("$.findings: missing or not an array");
  }
  for (size_t i = 0; i < findings->array.size(); ++i) {
    const obs::JsonValue& f = findings->array[i];
    const std::string path = "$.findings[" + std::to_string(i) + "]";
    for (const char* key : {"kind", "case", "metric", "detail"}) {
      const obs::JsonValue* v = f.Find(key);
      if (v == nullptr || !v->is_string()) {
        return Status::InvalidArgument(path + "." + key +
                                       ": missing or not a string");
      }
    }
    for (const char* key : {"baseline", "current", "change"}) {
      const obs::JsonValue* v = f.Find(key);
      if (v == nullptr || !v->is_number()) {
        return Status::InvalidArgument(path + "." + key +
                                       ": missing or not a number");
      }
    }
    const obs::JsonValue* regression = f.Find("regression");
    if (regression == nullptr ||
        regression->kind != obs::JsonValue::Kind::kBool) {
      return Status::InvalidArgument(path + ".regression: missing or not a "
                                     "bool");
    }
  }
  return Status::OK();
}

std::string RenderDiffTable(const DiffReport& report) {
  TablePrinter table({"kind", "case", "metric", "baseline", "current",
                      "change", "gate"});
  for (const Finding& f : report.findings) {
    table.AddRow({f.kind, f.case_name, f.metric, TablePrinter::Num(f.baseline, 6),
                  TablePrinter::Num(f.current, 6), Percent(f.change),
                  f.regression ? "REGRESSION" : "note"});
  }
  return table.ToString();
}

std::string RenderBaselineJson(const BenchData& data) {
  obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema").String(kBenchBaselineSchema);
  writer.Key("obs_enabled").Bool(data.obs_enabled);
  writer.Key("source_schema").String(data.schema);
  writer.Key("cases").BeginObject();
  for (const auto& [name, case_data] : data.cases) {
    writer.Key(name).BeginObject();
    for (const auto& [counter, value] : case_data.counters) {
      writer.Key(counter).Int(value);
    }
    writer.EndObject();
  }
  writer.EndObject();
  writer.EndObject();
  return writer.Take();
}

}  // namespace mc3::benchdiff
