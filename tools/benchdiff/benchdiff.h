// mc3_benchdiff — deterministic perf-regression gating over bench reports.
//
// Compares two mc3.bench_report/{1,2} (or mc3.bench_baseline/1) documents:
//   * work counters are compared EXACTLY per case (any relative drift above
//     --counter-tolerance, default 0%, is a finding) — they are
//     byte-deterministic operation counts, so drift means the algorithms did
//     different work, never measurement noise;
//   * wall times are compared robustly: median over the per-case repeats
//     with a noise floor derived from the median absolute deviation (MAD),
//     and only when both documents carry wall times from the same machine.
//
// The differ is a library so tests/benchdiff_test.cc can drive it on fixture
// documents; tools/benchdiff/mc3_benchdiff_main.cc is the thin CLI
// (exit 0 = no regression, 1 = regression, 2 = usage/load error).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace mc3::benchdiff {

inline constexpr const char kBenchDiffSchema[] = "mc3.bench_diff/1";
inline constexpr const char kBenchBaselineSchema[] = "mc3.bench_baseline/1";

/// One bench case as the differ sees it.
struct CaseData {
  std::map<std::string, uint64_t> counters;
  /// Wall time of every measured repeat; empty for counter-only baselines.
  std::vector<double> wall_seconds;
};

/// A loaded bench document (report or baseline), reduced to what the differ
/// needs.
struct BenchData {
  std::string schema;        ///< declared schema of the source document
  bool obs_enabled = false;  ///< counters are meaningful only when true
  /// "os/arch compiler (N threads)" for /2 reports; empty otherwise. Wall
  /// times are only comparable when both sides report the same machine.
  std::string machine;
  std::vector<std::pair<std::string, CaseData>> cases;  ///< document order

  const CaseData* FindCase(const std::string& name) const;
};

/// Parses a mc3.bench_report/1, mc3.bench_report/2 or mc3.bench_baseline/1
/// document. A /1 report has no counters; its per-case total_seconds becomes
/// a single wall sample.
Result<BenchData> LoadBenchData(const std::string& json);

struct DiffOptions {
  bool counters_only = false;      ///< skip the wall-time comparison
  double counter_tolerance = 0.0;  ///< allowed relative drift per counter
  double wall_tolerance = 0.25;    ///< relative slow-down floor
  double min_wall_seconds = 5e-3;  ///< medians below this are never gated
};

/// One comparison outcome. `regression == true` findings drive the nonzero
/// exit code; the rest are informational notes (improvements, skipped
/// comparisons).
struct Finding {
  std::string kind;  ///< counter_drift | counter_missing | counter_new |
                     ///< case_missing | case_new | wall_regression |
                     ///< wall_improvement | wall_skipped | obs_disabled
  std::string case_name;
  std::string metric;  ///< counter name, or "wall_seconds"
  double baseline = 0;
  double current = 0;
  double change = 0;  ///< relative: (current - baseline) / max(baseline, 1)
  bool regression = true;
  std::string detail;
};

struct DiffReport {
  std::vector<Finding> findings;
  size_t cases_compared = 0;
  size_t counters_compared = 0;
  bool wall_compared = false;

  size_t NumRegressions() const;
};

/// Compares `current` against `baseline` under `options`.
DiffReport DiffBenchData(const BenchData& baseline, const BenchData& current,
                         const DiffOptions& options);

/// Median of `values` (average of the middle two for even sizes; 0 when
/// empty). Takes a copy because it sorts.
double Median(std::vector<double> values);

/// Median absolute deviation of `values` around `median`.
double MedianAbsDeviation(const std::vector<double>& values, double median);

/// Renders the diff as a mc3.bench_diff/1 document.
std::string RenderDiffJson(const DiffReport& report,
                           const DiffOptions& options);

/// Validates a mc3.bench_diff/1 document (used on every emitted diff).
Status ValidateBenchDiffJson(const std::string& json);

/// Renders the findings as a human-readable table (util/table.h).
std::string RenderDiffTable(const DiffReport& report);

/// Renders `data` as a counters-only, machine-independent
/// mc3.bench_baseline/1 document (the committed-baseline format).
std::string RenderBaselineJson(const BenchData& data);

}  // namespace mc3::benchdiff
