// mc3 — command-line interface to the MC3 library.
//
//   mc3 stats <workload.csv>
//       Print Table-1-style statistics of a workload.
//
//   mc3 solve <workload.csv> [--solver general|k2|short-first|local-greedy|
//             query-oriented|property-oriented|exact] [--no-preprocess]
//             [--threads N] [--exact-components N] [--plan]
//             [--out plan.csv]
//       Choose the classifiers to train; --plan additionally prints the
//       per-query evaluation plan; --out writes the plan as CSV.
//
//   mc3 generate --dataset bestbuy|private|synthetic [--n N] [--seed S]
//             -o <out.csv>
//       Write one of the paper's reconstructed workloads as CSV.
//
//   mc3 preprocess <workload.csv>
//       Run Algorithm 1 alone and report what it pruned.
//
//   mc3 ingest <log.txt> -o <workload.csv> [--default-cost D]
//       Turn a raw free-text query log (one search per line) into a priced
//       MC3 workload (tokenize, aggregate, estimate costs).
//
//   mc3 serve <workload.csv> --trace <trace.txt> [--solver NAME]
//             [--threads N] [--batch N] [--default-cost D]
//             [--verify-every N] [--verbose]
//       Load the workload into the incremental serving engine and replay an
//       update trace ('+ props...' adds a query, '- props...' removes one;
//       see src/online/update_trace.h), re-solving only the dirty
//       components per batch. --batch groups N trace operations per update
//       (default 1); --default-cost prices classifiers of added queries
//       missing from the workload's table; --verify-every runs the
//       engine's invariant checker every N batches. A trace operation the
//       engine rejects (e.g. an uncoverable add with no --default-cost)
//       aborts the replay with exit code 1, naming the batch and the trace
//       lines it came from.
//
//   mc3 serve <workload.csv> --listen <port> [--port-file F]
//             [--queue-capacity N] [--watermark N] [--max-batch N]
//             [--workers N] [--solver NAME] [--threads N]
//             [--default-cost D]
//       Network mode: load the workload into the incremental engine and
//       serve it over a line-delimited-JSON TCP protocol (src/server/,
//       docs/serving.md) until a shutdown request or SIGTERM/SIGINT drains
//       it. --listen 0 binds an ephemeral port; --port-file writes the
//       bound port for scripts. --queue-capacity/--watermark bound the
//       engine-op queue (admission control answers 429 above the
//       watermark); --max-batch caps update coalescing; --workers sizes
//       the connection pool. --trace-sample N records every Nth request's
//       pipeline spans; with --trace-out DIR a Chrome trace-event JSON
//       file is written on drain (docs/observability.md, "Serving
//       telemetry").
//
//   mc3 bench [--quick] [--seed S] [--report out.json] [--repeat N]
//             [--warmup N] [--filter SUBSTR]
//       Unified observability bench: runs a general solve, a k<=2 exact
//       solve and an online churn replay over synthetic workloads, each
//       under a fresh phase trace, and writes a mc3.bench_report/2 JSON
//       document (default BENCH_mc3.json) with per-phase timings, per-case
//       deterministic work counters, per-repeat wall times and machine
//       metadata. The emitted report is self-validated against the schema;
//       a violation is a runtime failure, as is counter drift across
//       repeats of one case. --quick shrinks the workloads for smoke runs;
//       --repeat measures each case N times (median reported); --warmup
//       discards N unmeasured runs per case first; --filter keeps only the
//       cases whose name contains SUBSTR. Diff two reports (or gate against
//       a committed baseline) with tools/mc3_benchdiff.
//
//   `solve` and `serve` additionally accept --report <out.json> to export a
//   mc3.solve_report/1 document (phase trace + metrics snapshot) of the run.
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <filesystem>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/mc3.h"
#include "data/bestbuy.h"
#include "data/io.h"
#include "data/private_dataset.h"
#include "data/query_log.h"
#include "data/synthetic.h"
#include "durability/durability.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "online/online_engine.h"
#include "online/update_trace.h"
#include "server/server.h"
#include "util/timer.h"
#include "util/float_cmp.h"

namespace {

using namespace mc3;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  mc3 stats <workload.csv>\n"
      "  mc3 solve <workload.csv> [--solver NAME] [--no-preprocess]\n"
      "            [--threads N] [--exact-components N] [--plan]\n"
      "  mc3 generate --dataset bestbuy|private|synthetic [--n N]\n"
      "            [--seed S] -o <out.csv>\n"
      "  mc3 preprocess <workload.csv>\n"
      "  mc3 ingest <log.txt> -o <workload.csv> [--default-cost D]\n"
      "  mc3 serve <workload.csv> --trace <trace.txt> [--solver NAME]\n"
      "            [--threads N] [--batch N] [--default-cost D]\n"
      "            [--verify-every N] [--verbose] [--solution-out F]\n"
      "  mc3 serve <workload.csv> --listen <port> [--port-file F]\n"
      "            [--queue-capacity N] [--watermark N] [--max-batch N]\n"
      "            [--workers N] [--solver NAME] [--threads N]\n"
      "            [--shards N] [--pin-cores]\n"
      "            [--read-path lockfree|queued]\n"
      "            [--default-cost D] [--data-dir DIR]\n"
      "            [--wal-sync grouped|immediate|none] [--wal-group-ms MS]\n"
      "            [--checkpoint-every N] [--checkpoint-interval SECS]\n"
      "            [--keep-wal-segments] [--record-trace F]\n"
      "            [--trace-sample N] [--trace-out DIR]\n"
      "  mc3 recover <workload.csv> --data-dir DIR [--solver NAME]\n"
      "            [--threads N] [--default-cost D] [--solution-out F]\n"
      "            [--shards N (0 = adopt the snapshot layout)]\n"
      "  mc3 wal dump --data-dir DIR [--after SEQ] [-o out.txt]\n"
      "  mc3 wal stats --data-dir DIR\n"
      "  mc3 bench [--quick] [--seed S] [--report out.json] [--repeat N]\n"
      "            [--warmup N] [--filter SUBSTR]\n"
      "(solve and serve also accept --report <out.json>)\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<Instance> Load(const std::string& path) {
  return data::LoadInstance(path);
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), out);
  const bool flushed = std::fclose(out) == 0;
  if (written != content.size() || !flushed) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

/// Fills the instance-shape section of a report header.
void DescribeInstance(const Instance& instance, obs::SolveReportMeta* meta) {
  meta->num_queries = instance.NumQueries();
  meta->num_classifiers = instance.costs().size();
  meta->num_properties = instance.NumProperties();
  meta->max_query_length = instance.MaxQueryLength();
}

/// Renders, schema-validates and writes a solve report; validation failure
/// is a runtime error (the emitted document is the product).
int WriteSolveReport(const obs::SolveReportMeta& meta, const obs::Trace& trace,
                     const std::string& path) {
  const std::string json = obs::RenderSolveReport(
      meta, trace, obs::MetricsRegistry::Global().Snap());
  if (Status status = obs::ValidateSolveReportJson(json); !status.ok()) {
    return Fail(status);
  }
  if (Status status = WriteFile(path, json); !status.ok()) {
    return Fail(status);
  }
  std::printf("report written to %s\n", path.c_str());
  return 0;
}

/// Maps a --solver spelling to the engine's solver kind; false = unknown.
bool ParseSolverKind(const std::string& name,
                     online::EngineOptions::SolverKind* out) {
  if (name == "auto") {
    *out = online::EngineOptions::SolverKind::kAuto;
  } else if (name == "general") {
    *out = online::EngineOptions::SolverKind::kGeneral;
  } else if (name == "k2") {
    *out = online::EngineOptions::SolverKind::kK2Exact;
  } else if (name == "short-first") {
    *out = online::EngineOptions::SolverKind::kShortFirst;
  } else {
    return false;
  }
  return true;
}

/// Renders the engine's current solution keyed by property NAMES, not ids:
/// one classifier per line (names sorted lexicographically within the
/// line), lines sorted, each suffixed with the classifier's cost; a final
/// "total" line sums the per-line costs in that canonical order. Two
/// engines that reached the same solution through different id
/// interleavings — live serving vs. WAL replay (`mc3 recover`) vs. offline
/// trace replay — render byte-identical files, which is what
/// scripts/recover_smoke.sh diffs.
/// Templated over the engine type: `mc3 recover` renders through the
/// sharded facade (whose merged CurrentSolution dedupes across shards) and
/// everything else through a plain OnlineEngine.
template <typename EngineT>
Result<std::string> RenderCanonicalSolution(const EngineT& engine) {
  const std::vector<std::string>& names = engine.property_names();
  std::vector<std::pair<std::vector<std::string>, Cost>> rows;
  for (const PropertySet& classifier : engine.CurrentSolution().Sorted()) {
    std::vector<std::string> row;
    row.reserve(classifier.ids().size());
    for (const PropertyId id : classifier.ids()) {
      if (id >= names.size() || names[id].empty()) {
        return Status::Internal(
            "property " + std::to_string(id) +
            " has no name; cannot render a canonical solution");
      }
      row.push_back(names[id]);
    }
    std::sort(row.begin(), row.end());
    rows.emplace_back(std::move(row), engine.CostOf(classifier));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  Cost total = 0;
  char buffer[64];
  for (const auto& [row, cost] : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ' ';
      out += row[i];
    }
    std::snprintf(buffer, sizeof(buffer), " # %.17g\n", cost);
    out += buffer;
    total += cost;
  }
  std::snprintf(buffer, sizeof(buffer), "total %.17g\n", total);
  out += buffer;
  return out;
}

int CmdStats(const std::string& path) {
  auto instance = Load(path);
  if (!instance.ok()) return Fail(instance.status());
  const InstanceStats stats = ComputeStats(*instance);
  std::printf("queries:        %zu\n", stats.num_queries);
  std::printf("properties:     %zu\n", stats.num_properties);
  std::printf("classifiers:    %zu (priced)\n", stats.num_classifiers);
  std::printf("max length k:   %zu\n", stats.max_query_length);
  std::printf("short (<=2):    %.1f%%\n", 100 * stats.fraction_short);
  std::printf("cost range:     [%.2f, %.2f]\n", stats.min_cost,
              stats.max_cost);
  std::printf("incidence I:    %zu\n", stats.incidence);
  std::printf("feasible:       %s\n", stats.feasible ? "yes" : "NO");
  std::printf("length histogram:");
  for (size_t l = 1; l < stats.length_histogram.size(); ++l) {
    std::printf(" %zu:%zu", l, stats.length_histogram[l]);
  }
  std::printf("\n");
  return 0;
}

int CmdSolve(const std::string& path, const std::string& solver_name,
             const SolverOptions& options, bool print_plan,
             const std::string& out_path, const std::string& report_path) {
  auto instance = Load(path);
  if (!instance.ok()) return Fail(instance.status());

  std::unique_ptr<Solver> solver;
  if (solver_name == "general") {
    solver = std::make_unique<GeneralSolver>(options);
  } else if (solver_name == "k2") {
    solver = std::make_unique<K2ExactSolver>(options);
  } else if (solver_name == "short-first") {
    solver = std::make_unique<ShortFirstSolver>(options);
  } else if (solver_name == "local-greedy") {
    solver = std::make_unique<LocalGreedySolver>();
  } else if (solver_name == "query-oriented") {
    solver = std::make_unique<QueryOrientedSolver>();
  } else if (solver_name == "property-oriented") {
    solver = std::make_unique<PropertyOrientedSolver>();
  } else if (solver_name == "exact") {
    solver = std::make_unique<ExactSolver>();
  } else if (solver_name == "auto") {
    if (instance->MaxQueryLength() <= 2) {
      solver = std::make_unique<K2ExactSolver>(options);
    } else {
      solver = std::make_unique<GeneralSolver>(options);
    }
  } else {
    std::fprintf(stderr, "unknown solver '%s'\n", solver_name.c_str());
    return 2;
  }

  obs::Trace trace("solve");
  Timer timer;
  Result<SolveResult> result = [&] {
    obs::ScopedTraceActivation activate(&trace);
    return solver->Solve(*instance);
  }();
  const double total_seconds = timer.Seconds();
  if (!result.ok()) return Fail(result.status());
  std::printf("solver:      %s\n", solver->Name().c_str());
  std::printf("total cost:  %.2f\n", result->cost);
  std::printf("classifiers: %zu\n", result->solution.size());
  for (const PropertySet& c : result->solution.Sorted()) {
    std::printf("  [%s]  cost %.2f\n",
                c.ToString(instance->property_names()).c_str(),
                instance->CostOf(c));
  }
  if (!out_path.empty()) {
    if (Status status = data::SaveSolution(*instance, result->solution,
                                           out_path);
        !status.ok()) {
      return Fail(status);
    }
    std::printf("plan written to %s\n", out_path.c_str());
  }
  if (print_plan) {
    std::printf("evaluation plan:\n");
    const CoverageReport report = VerifyCoverage(*instance, result->solution);
    for (size_t qi = 0; qi < instance->NumQueries(); ++qi) {
      std::printf("  %s <- AND of:",
                  instance->queries()[qi]
                      .ToString(instance->property_names())
                      .c_str());
      for (const PropertySet& c : report.witnesses[qi]) {
        std::printf(" [%s]", c.ToString(instance->property_names()).c_str());
      }
      std::printf("\n");
    }
  }
  if (!report_path.empty()) {
    obs::SolveReportMeta meta;
    meta.tool = "solve";
    meta.solver = solver->Name();
    meta.workload = path;
    DescribeInstance(*instance, &meta);
    meta.cost = result->cost;
    meta.solution_size = result->solution.size();
    meta.num_components = result->num_components;
    meta.total_seconds = total_seconds;
    if (int code = WriteSolveReport(meta, trace, report_path); code != 0) {
      return code;
    }
  }
  return 0;
}

int CmdGenerate(const std::string& dataset, size_t n, uint64_t seed,
                const std::string& out) {
  Instance instance;
  if (dataset == "bestbuy") {
    data::BestBuyConfig config;
    if (n > 0) config.num_queries = n;
    config.seed = seed;
    instance = data::GenerateBestBuy(config);
  } else if (dataset == "private") {
    data::PrivateConfig config;
    if (n > 0) {
      config.electronics_queries = n * 55 / 100;
      config.home_garden_queries = n * 35 / 100;
      config.fashion_queries = n - config.electronics_queries -
                               config.home_garden_queries;
    }
    config.seed = seed;
    instance = std::move(data::GeneratePrivate(config).instance);
  } else if (dataset == "synthetic") {
    data::SyntheticConfig config;
    if (n > 0) config.num_queries = n;
    config.seed = seed;
    instance = data::GenerateSynthetic(config);
  } else {
    std::fprintf(stderr, "unknown dataset '%s'\n", dataset.c_str());
    return 2;
  }
  if (Status status = data::SaveInstance(instance, out); !status.ok()) {
    return Fail(status);
  }
  std::printf("wrote %zu queries / %zu classifiers to %s\n",
              instance.NumQueries(), instance.costs().size(), out.c_str());
  return 0;
}

int CmdIngest(const std::string& path, const std::string& out,
              Cost default_cost) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<std::string> lines;
  std::string current;
  int c;
  while ((c = std::fgetc(in)) != EOF) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current += static_cast<char>(c);
    }
  }
  if (!current.empty()) lines.push_back(std::move(current));
  std::fclose(in);

  data::QueryLog log = data::ParseQueryLog(lines);
  data::CostEstimatorOptions cost_options;
  cost_options.default_difficulty = default_cost;
  if (Status status = data::EstimateCosts(&log.instance, cost_options);
      !status.ok()) {
    return Fail(status);
  }
  if (Status status = data::SaveInstance(log.instance, out); !status.ok()) {
    return Fail(status);
  }
  std::printf(
      "ingested %zu lines (%zu dropped) -> %zu distinct queries, %zu priced "
      "classifiers -> %s\n",
      log.total_lines, log.dropped_lines, log.instance.NumQueries(),
      log.instance.costs().size(), out.c_str());
  return 0;
}

struct ServeConfig {
  std::string solver = "auto";
  size_t threads = 1;
  size_t batch = 1;         ///< trace operations per engine update
  Cost default_cost = -1;   ///< < 0 = no auto-pricing of unknown classifiers
  size_t verify_every = 0;  ///< 0 = only verify at the end
  bool verbose = false;
  std::string report;        ///< empty = no JSON report
  std::string solution_out;  ///< trace mode: canonical solution file

  // Network mode (--listen).
  long listen = -1;       ///< < 0 = trace-replay mode
  std::string port_file;  ///< write the bound port here (for scripts)
  size_t queue_capacity = 1024;
  size_t watermark = 0;  ///< 0 derives 3/4 of capacity
  size_t max_batch = 256;
  size_t workers = 16;   ///< connection pool size
};

/// SIGTERM/SIGINT -> graceful drain, via the self-pipe trick (the handler
/// may only call async-signal-safe functions, so it just writes a byte; a
/// watcher thread turns that into Server::RequestDrain).
int g_signal_pipe[2] = {-1, -1};

void HandleDrainSignal(int /*signum*/) {
  const char byte = 's';
  (void)!write(g_signal_pipe[1], &byte, 1);
}

int CmdServeListen(const std::string& workload_path,
                   const ServeConfig& config,
                   const server::ServerOptions& server_options) {
  auto instance = Load(workload_path);
  if (!instance.ok()) return Fail(instance.status());

  server::Server server(server_options);
  if (Status status = server.Start(*instance); !status.ok()) {
    return Fail(status);
  }
  if (const durability::DurabilityManager* manager =
          server.durability_manager()) {
    const durability::RecoveryStats& recovery = manager->recovery();
    std::printf("recovered:  snapshot %s, %llu wal records replayed "
                "(last seq %llu)%s, %.1f ms\n",
                recovery.snapshot_loaded
                    ? ("seq " + std::to_string(recovery.snapshot_seq)).c_str()
                    : "none",
                static_cast<unsigned long long>(recovery.wal_records_replayed),
                static_cast<unsigned long long>(recovery.wal_last_seq),
                recovery.torn_tail ? ", torn tail dropped" : "",
                1e3 * recovery.recovery_seconds);
  }
  server.WithShardedEngine([&](const online::ShardedEngine& engine) {
    std::printf("listening:  %s:%u (%zu queries, %zu components, "
                "cost %.2f)\n",
                server_options.host.c_str(), server.port(),
                engine.NumQueries(), engine.NumComponents(),
                engine.TotalCost());
    if (engine.num_shards() > 1) {
      std::printf("sharded:    %u engine shards%s\n", engine.num_shards(),
                  server_options.pin_cores ? ", workers pinned to cores"
                                           : "");
    }
  });
  std::fflush(stdout);
  if (!config.port_file.empty()) {
    if (Status status =
            WriteFile(config.port_file, std::to_string(server.port()) + "\n");
        !status.ok()) {
      server.RequestDrain();
      server.Join();
      return Fail(status);
    }
  }

  if (pipe(g_signal_pipe) != 0) {
    server.RequestDrain();
    server.Join();
    return Fail(Status::Internal("cannot create signal pipe"));
  }
  std::signal(SIGTERM, HandleDrainSignal);
  std::signal(SIGINT, HandleDrainSignal);
  std::atomic<bool> watcher_stop{false};
  std::thread watcher([&server, &watcher_stop] {
    char byte;
    while (read(g_signal_pipe[0], &byte, 1) == 1) {
      if (watcher_stop.load(std::memory_order_acquire)) return;
      server.RequestDrain();
      return;
    }
  });

  server.Join();  // returns after a shutdown request or signal drains it

  watcher_stop.store(true, std::memory_order_release);
  (void)!write(g_signal_pipe[1], "q", 1);
  watcher.join();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  close(g_signal_pipe[0]);
  close(g_signal_pipe[1]);
  g_signal_pipe[0] = g_signal_pipe[1] = -1;

  const server::ServerStats stats = server.GetStats();
  std::printf("drained:    %llu requests (%llu responses), %llu rejected, "
              "%llu refused, %llu malformed\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.responses),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.refused_draining),
              static_cast<unsigned long long>(stats.malformed));
  std::printf("coalesced:  %llu update ops into %llu engine batches "
              "(largest %llu)\n",
              static_cast<unsigned long long>(stats.coalesced_ops),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.max_batch));
  if (const std::string trace_file = server.trace_file_path();
      !trace_file.empty()) {
    std::printf("trace:      %s (load in Perfetto / chrome://tracing)\n",
                trace_file.c_str());
  }
  int exit_code = 0;
  server.WithShardedEngine([&](const online::ShardedEngine& engine) {
    if (engine.num_shards() > 1) {
      for (size_t s = 0; s < stats.shards.size(); ++s) {
        std::printf("shard %zu:    %llu batches, %llu ops\n", s,
                    static_cast<unsigned long long>(stats.shards[s].batches),
                    static_cast<unsigned long long>(stats.shards[s].ops));
      }
      std::printf("migrated:   %llu queries between shards\n",
                  static_cast<unsigned long long>(stats.migrated));
    }
    std::printf("final:      %zu queries, %zu components, cost %.2f\n",
                engine.NumQueries(), engine.NumComponents(),
                engine.TotalCost());
    if (Status status = engine.CheckInvariants(); !status.ok()) {
      exit_code = Fail(status);
    }
  });
  return exit_code;
}

int CmdServe(const std::string& workload_path, const std::string& trace_path,
             const ServeConfig& config) {
  auto instance = Load(workload_path);
  if (!instance.ok()) return Fail(instance.status());

  online::EngineOptions options;
  if (!ParseSolverKind(config.solver, &options.solver)) {
    std::fprintf(stderr, "unknown serve solver '%s'\n", config.solver.c_str());
    return 2;
  }
  options.solver_options.num_threads = config.threads;

  online::OnlineEngine engine(options);
  obs::Trace obs_trace("serve");
  obs::ScopedTraceActivation activate(&obs_trace);
  Timer total_timer;
  auto init = engine.Initialize(*instance);
  if (!init.ok()) return Fail(init.status());
  std::printf("loaded:     %zu queries, %zu components, cost %.2f "
              "(%.1f ms)\n",
              engine.NumQueries(), engine.NumComponents(), engine.TotalCost(),
              1e3 * init->resolve_seconds);

  auto trace =
      online::LoadUpdateTrace(trace_path, instance->property_names());
  if (!trace.ok()) return Fail(trace.status());
  engine.set_property_names(trace->property_names);
  std::printf("trace:      %zu operations (%zu lines skipped)\n",
              trace->ops.size(), trace->skipped_lines);

  // Price classifiers the trace introduces but the workload doesn't know.
  if (config.default_cost >= 0) {
    Instance added;
    added.set_property_names(trace->property_names);
    std::unordered_set<PropertySet, PropertySetHash> seen;
    for (const online::TraceOp& op : trace->ops) {
      if (op.kind == online::TraceOp::Kind::kAdd &&
          seen.insert(op.query).second) {
        added.AddQuery(op.query);
      }
    }
    data::CostEstimatorOptions estimator;
    estimator.default_difficulty = config.default_cost;
    if (Status status = data::EstimateCosts(&added, estimator);
        !status.ok()) {
      return Fail(status);
    }
    size_t priced = 0;
    for (const auto& [classifier, cost] : SortedCostEntries(added.costs())) {
      if (!IsInfiniteCost(engine.CostOf(classifier))) continue;
      if (Status status = engine.SetCost(classifier, cost); !status.ok()) {
        return Fail(status);
      }
      ++priced;
    }
    std::printf("priced:     %zu new classifiers at default difficulty "
                "%.2f\n",
                priced, config.default_cost);
  }

  const size_t batch_size = std::max<size_t>(1, config.batch);
  size_t batches = 0;
  for (size_t at = 0; at < trace->ops.size(); at += batch_size) {
    std::vector<PropertySet> add;
    std::vector<PropertySet> remove;
    const size_t end = std::min(at + batch_size, trace->ops.size());
    for (size_t i = at; i < end; ++i) {
      if (trace->ops[i].kind == online::TraceOp::Kind::kAdd) {
        add.push_back(trace->ops[i].query);
      } else {
        remove.push_back(trace->ops[i].query);
      }
    }
    auto stats = engine.ApplyUpdate(add, remove);
    if (!stats.ok()) {
      // Mid-stream failure: name the batch and its trace lines, then exit
      // non-zero (the engine left the live set untouched — ApplyUpdate
      // fails atomically).
      std::fprintf(stderr,
                   "error: update batch %zu (trace lines %zu..%zu of %s) "
                   "rejected by the engine\n",
                   batches + 1, trace->ops[at].line, trace->ops[end - 1].line,
                   trace_path.c_str());
      return Fail(stats.status());
    }
    ++batches;
    if (config.verbose) {
      std::printf("batch %-5zu +%zu -%zu | %zu dirty -> %zu resolved, "
                  "%zu queries touched, %.2f ms | cost %.2f, "
                  "%zu components\n",
                  batches, stats->queries_added, stats->queries_removed,
                  stats->components_dirtied, stats->components_resolved,
                  stats->queries_touched, 1e3 * stats->resolve_seconds,
                  engine.TotalCost(), engine.NumComponents());
    }
    if (config.verify_every > 0 && batches % config.verify_every == 0) {
      if (Status status = engine.CheckInvariants(); !status.ok()) {
        return Fail(status);
      }
    }
  }
  if (Status status = engine.CheckInvariants(); !status.ok()) {
    return Fail(status);
  }

  // Initialize() is counted in the cumulative counters; subtract its stats
  // so the summary reflects the replay alone.
  const online::EngineCounters& counters = engine.counters();
  const double replay_seconds =
      counters.resolve_seconds - init->resolve_seconds;
  std::printf("replayed:   %zu batches (+%zu / -%zu queries)\n", batches,
              counters.queries_added - init->queries_added,
              counters.queries_removed - init->queries_removed);
  std::printf("re-solved:  %zu components, %zu queries touched, "
              "%.1f ms total (%.2f ms/batch)\n",
              counters.components_resolved - init->components_resolved,
              counters.queries_touched - init->queries_touched,
              1e3 * replay_seconds,
              batches > 0 ? 1e3 * replay_seconds /
                                static_cast<double>(batches)
                          : 0.0);
  std::printf("final:      %zu queries, %zu components, cost %.2f "
              "(invariants ok)\n",
              engine.NumQueries(), engine.NumComponents(),
              engine.TotalCost());
  if (!config.solution_out.empty()) {
    auto canonical = RenderCanonicalSolution(engine);
    if (!canonical.ok()) return Fail(canonical.status());
    if (Status status = WriteFile(config.solution_out, *canonical);
        !status.ok()) {
      return Fail(status);
    }
    std::printf("solution:   %s (canonical, %zu classifiers)\n",
                config.solution_out.c_str(),
                engine.CurrentSolution().classifiers().size());
  }
  if (!config.report.empty()) {
    obs::SolveReportMeta meta;
    meta.tool = "serve";
    meta.solver = config.solver;
    meta.workload = workload_path;
    DescribeInstance(engine.LiveInstance(), &meta);
    meta.cost = engine.TotalCost();
    meta.solution_size = engine.CurrentSolution().size();
    meta.num_components = engine.NumComponents();
    meta.total_seconds = total_timer.Seconds();
    if (int code = WriteSolveReport(meta, obs_trace, config.report);
        code != 0) {
      return code;
    }
  }
  return 0;
}

/// `mc3 recover`: offline recovery of a durable data directory — loads the
/// base workload, replays snapshot + WAL tail exactly as a durable server
/// start would, verifies invariants and reports what was recovered. With
/// --solution-out, writes the canonical solution for equivalence checks
/// (scripts/recover_smoke.sh diffs it against an offline trace replay).
/// `shards` = 0 adopts the snapshot's recorded layout (1 when no snapshot
/// exists); a positive count forces that layout and fails when a snapshot
/// disagrees. Opens the directory's WAL for writing — a torn tail is
/// truncated — so do not point it at a live server's data dir.
int CmdRecover(const std::string& workload_path, const ServeConfig& config,
               const std::string& data_dir, uint32_t shards) {
  auto instance = Load(workload_path);
  if (!instance.ok()) return Fail(instance.status());

  online::EngineOptions options;
  if (!ParseSolverKind(config.solver, &options.solver)) {
    std::fprintf(stderr, "unknown recover solver '%s'\n",
                 config.solver.c_str());
    return 2;
  }
  options.solver_options.num_threads = config.threads;
  if (shards == 0) {
    auto probed = durability::ProbeSnapshotShardCount(data_dir);
    if (probed.ok()) {
      shards = *probed;
    } else if (probed.status().code() == StatusCode::kNotFound) {
      shards = 1;  // no snapshot yet: the WAL replays into any layout
    } else {
      return Fail(probed.status());
    }
  }
  online::ShardedEngine engine(shards, options);

  durability::DurabilityOptions durability_options;
  durability_options.data_dir = data_dir;
  // Recovery only reads; no point spinning up a committer or fsyncing.
  durability_options.wal.sync = durability::WalOptions::SyncPolicy::kNone;
  auto manager = durability::DurabilityManager::Open(durability_options);
  if (!manager.ok()) return Fail(manager.status());
  auto recovery = (*manager)->Recover(*instance, config.default_cost, &engine);
  if (!recovery.ok()) return Fail(recovery.status());
  if (Status status = engine.CheckInvariants(); !status.ok()) {
    return Fail(status);
  }
  std::printf("recovered:  snapshot %s, %llu wal records replayed "
              "(last seq %llu)%s, %.1f ms\n",
              recovery->snapshot_loaded
                  ? ("seq " + std::to_string(recovery->snapshot_seq)).c_str()
                  : "none",
              static_cast<unsigned long long>(recovery->wal_records_replayed),
              static_cast<unsigned long long>(recovery->wal_last_seq),
              recovery->torn_tail ? ", torn tail dropped" : "",
              1e3 * recovery->recovery_seconds);
  if (engine.num_shards() > 1) {
    std::printf("sharded:    %u engine shards\n", engine.num_shards());
  }
  std::printf("final:      %zu queries, %zu components, cost %.2f "
              "(invariants ok)\n",
              engine.NumQueries(), engine.NumComponents(), engine.TotalCost());
  if (!config.solution_out.empty()) {
    auto canonical = RenderCanonicalSolution(engine);
    if (!canonical.ok()) return Fail(canonical.status());
    if (Status status = WriteFile(config.solution_out, *canonical);
        !status.ok()) {
      return Fail(status);
    }
    std::printf("solution:   %s (canonical, %zu classifiers)\n",
                config.solution_out.c_str(),
                engine.CurrentSolution().classifiers().size());
  }
  if (Status status = (*manager)->Close(); !status.ok()) return Fail(status);
  return 0;
}

/// `mc3 wal dump`: concatenates the update_trace payloads of every valid
/// WAL record with seq > `after` — the output replays through
/// `mc3 serve --trace`. Read-only (a torn tail is reported, not truncated).
int CmdWalDump(const std::string& data_dir, uint64_t after,
               const std::string& out_path) {
  auto scan = durability::ReadWal(data_dir, after);
  if (!scan.ok()) return Fail(scan.status());
  std::string payloads;
  for (const durability::WalRecord& record : scan->records) {
    payloads += record.payload;
  }
  if (out_path.empty()) {
    std::fwrite(payloads.data(), 1, payloads.size(), stdout);
  } else if (Status status = WriteFile(out_path, payloads); !status.ok()) {
    return Fail(status);
  }
  std::fprintf(stderr, "wal:        %zu records after seq %llu "
               "(last seq %llu)%s\n",
               scan->records.size(), static_cast<unsigned long long>(after),
               static_cast<unsigned long long>(scan->last_seq),
               scan->torn_tail ? ", torn tail" : "");
  return 0;
}

/// `mc3 wal stats`: read-only summary of a durable data directory.
int CmdWalStats(const std::string& data_dir) {
  auto segments = durability::ListWalSegments(data_dir);
  if (!segments.ok()) return Fail(segments.status());
  auto scan = durability::ReadWal(data_dir, 0);
  if (!scan.ok()) return Fail(scan.status());
  std::printf("segments:   %zu\n", segments->size());
  for (const std::string& segment : *segments) {
    std::printf("  %s\n", segment.c_str());
  }
  std::printf("records:    %zu (last seq %llu)\n", scan->records.size(),
              static_cast<unsigned long long>(scan->last_seq));
  if (scan->torn_tail) {
    std::printf("torn tail:  %s\n", scan->torn_detail.c_str());
  }
  auto snapshot = durability::LoadLatestSnapshot(data_dir);
  if (snapshot.ok()) {
    std::printf("snapshot:   seq %llu (%s)%s\n",
                static_cast<unsigned long long>(snapshot->seq),
                snapshot->path.c_str(),
                snapshot->skipped_invalid > 0 ? ", invalid newer skipped"
                                              : "");
  } else if (snapshot.status().code() == StatusCode::kNotFound) {
    std::printf("snapshot:   none\n");
  } else {
    return Fail(snapshot.status());
  }
  return 0;
}

int CmdPreprocess(const std::string& path) {
  auto instance = Load(path);
  if (!instance.ok()) return Fail(instance.status());
  auto pre = Preprocess(*instance);
  if (!pre.ok()) return Fail(pre.status());
  const PreprocessStats& stats = pre->stats;
  std::printf("forced selections:     %zu (cost %.2f)\n",
              pre->forced.size(), pre->forced_cost);
  std::printf("  singleton queries:   %zu\n",
              stats.singleton_queries_selected);
  std::printf("  zero-weight:         %zu\n", stats.zero_weight_selected);
  std::printf("  step-3 forced:       %zu\n", stats.forced_selections_step3);
  std::printf("  step-4 selections:   %zu\n", stats.selections_step4);
  std::printf("classifiers removed:   %zu (step 3) + %zu (step 4)\n",
              stats.classifiers_removed_step3, stats.singletons_removed_step4);
  std::printf("queries covered:       %zu of %zu\n", stats.queries_covered,
              instance->NumQueries());
  std::printf("residual:              %zu queries, %zu classifiers, "
              "%zu independent components\n",
              stats.remaining_queries, stats.remaining_classifiers,
              stats.num_components);
  return 0;
}

/// Run-level bench parameters (mirrors obs::BenchRunInfo plus the output
/// path).
struct BenchConfig {
  bool quick = false;
  uint64_t seed = 1;
  std::string report_path;
  size_t repeat = 1;
  size_t warmup = 0;
  std::string filter;
};

double MedianOf(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  if (n == 0) return 0;
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

/// Non-zero counters of `snap` (zero entries are registry artifacts of
/// earlier cases: handles persist across ResetAll).
std::map<std::string, uint64_t> NonZeroCounters(
    const obs::MetricsSnapshot& snap) {
  std::map<std::string, uint64_t> counters;
  for (const auto& [name, value] : snap.counters) {
    if (value > 0) counters[name] = value;
  }
  return counters;
}

/// Runs `body` under a fresh trace `warmup` unmeasured times, then `repeat`
/// measured times with the metrics registry reset before each measurement.
/// Fills the case's counters (first repeat; drift across repeats is a
/// runtime failure — work counters are the determinism contract), all wall
/// times and the last run's trace; merges every measured snapshot into
/// `run_metrics`.
Status RunRepeated(const char* name, const BenchConfig& config,
                   const std::function<Status()>& body,
                   obs::MetricsSnapshot* run_metrics, obs::BenchCase* out,
                   std::vector<std::unique_ptr<obs::Trace>>* traces) {
  auto& registry = obs::MetricsRegistry::Global();
  for (size_t i = 0; i < config.warmup; ++i) {
    obs::Trace trace(name);
    obs::ScopedTraceActivation activate(&trace);
    MC3_RETURN_IF_ERROR(body());
  }
  const size_t repeat = std::max<size_t>(1, config.repeat);
  for (size_t i = 0; i < repeat; ++i) {
    registry.ResetAll();
    auto trace = std::make_unique<obs::Trace>(name);
    Timer timer;
    Status status = [&] {
      obs::ScopedTraceActivation activate(trace.get());
      return body();
    }();
    const double seconds = timer.Seconds();
    MC3_RETURN_IF_ERROR(status);
    out->wall_seconds.push_back(seconds);
    const obs::MetricsSnapshot snap = registry.Snap();
    const std::map<std::string, uint64_t> counters = NonZeroCounters(snap);
    if (i == 0) {
      out->counters = counters;
    } else if (counters != out->counters) {
      return Status::Internal(std::string("work counters of case '") + name +
                              "' drifted across repeats — the solve is "
                              "non-deterministic");
    }
    obs::MergeSnapshot(run_metrics, snap);
    if (i + 1 == repeat) {
      out->trace = trace.get();  // report the last measured run's span tree
      traces->push_back(std::move(trace));
    }
  }
  out->meta.total_seconds = MedianOf(out->wall_seconds);
  return Status::OK();
}

void PrintBenchCase(const obs::BenchCase& bench_case) {
  std::printf("case %-14s %6zu queries | cost %10.2f, %5zu classifiers, "
              "%7.1f ms (median of %zu)\n",
              bench_case.meta.workload.c_str(), bench_case.meta.num_queries,
              bench_case.meta.cost, bench_case.meta.solution_size,
              1e3 * bench_case.meta.total_seconds,
              bench_case.wall_seconds.size());
}

/// Solves `instance` (repeatedly) under fresh phase traces and appends the
/// bench case.
int RunBenchSolveCase(const char* name, const Instance& instance,
                      const Solver& solver, const BenchConfig& config,
                      obs::MetricsSnapshot* run_metrics,
                      std::vector<std::unique_ptr<obs::Trace>>* traces,
                      std::vector<obs::BenchCase>* cases) {
  obs::BenchCase bench_case;
  Result<SolveResult> result = Status::Internal("bench body never ran");
  Status status = RunRepeated(
      name, config,
      [&] {
        result = solver.Solve(instance);
        return result.ok() ? Status::OK() : result.status();
      },
      run_metrics, &bench_case, traces);
  if (!status.ok()) return Fail(status);

  bench_case.meta.tool = "bench";
  bench_case.meta.solver = solver.Name();
  bench_case.meta.workload = name;
  DescribeInstance(instance, &bench_case.meta);
  bench_case.meta.cost = result->cost;
  bench_case.meta.solution_size = result->solution.size();
  bench_case.meta.num_components = result->num_components;
  PrintBenchCase(bench_case);
  cases->push_back(std::move(bench_case));
  return 0;
}

bool CaseSelected(const BenchConfig& config, const char* name) {
  return config.filter.empty() ||
         std::string(name).find(config.filter) != std::string::npos;
}

int CmdBench(const BenchConfig& config) {
  const double scale = config.quick ? 0.05 : 1.0;
  const uint64_t seed = config.seed;
  auto scaled = [&](size_t n) {
    return std::max<size_t>(100, static_cast<size_t>(n * scale));
  };
  std::vector<std::unique_ptr<obs::Trace>> traces;
  std::vector<obs::BenchCase> cases;
  obs::MetricsSnapshot run_metrics;

  // Case 1: the general pipeline (Algorithm 1 + WSC greedy / primal-dual)
  // on the paper's mixed-length synthetic workload.
  if (CaseSelected(config, "general")) {
    data::SyntheticConfig synth;
    synth.num_queries = scaled(20000);
    synth.seed = seed;
    const Instance instance = data::GenerateSynthetic(synth);
    if (int code = RunBenchSolveCase("general", instance,
                                     GeneralSolver(SolverOptions{}), config,
                                     &run_metrics, &traces, &cases);
        code != 0) {
      return code;
    }
  }

  // Case 2: the exact k <= 2 path (Algorithm 2: vertex cover via max-flow).
  if (CaseSelected(config, "k2")) {
    data::SyntheticConfig synth;
    synth.num_queries = scaled(20000);
    synth.max_query_length = 2;
    synth.seed = seed + 1;
    const Instance instance = data::GenerateSynthetic(synth);
    if (int code = RunBenchSolveCase("k2", instance,
                                     K2ExactSolver(SolverOptions{}), config,
                                     &run_metrics, &traces, &cases);
        code != 0) {
      return code;
    }
  }

  // Case 3: online churn — initialize the serving engine, then remove and
  // re-add sliding batches so the dirty-region repartition and component
  // re-solve paths are exercised. A fresh engine per repeat keeps the work
  // counters repeat-stable.
  if (CaseSelected(config, "online")) {
    data::SyntheticConfig synth;
    synth.num_queries = scaled(5000);
    synth.seed = seed + 2;
    const Instance instance = data::GenerateSynthetic(synth);
    obs::BenchCase bench_case;
    // Engine state of the last repeat, for the result section of the meta.
    std::unique_ptr<online::OnlineEngine> engine;
    Status status = RunRepeated(
        "online", config,
        [&]() -> Status {
          engine =
              std::make_unique<online::OnlineEngine>(online::EngineOptions{});
          auto init = engine->Initialize(instance);
          if (!init.ok()) return init.status();
          const auto& queries = instance.queries();
          const size_t batch = std::max<size_t>(1, queries.size() / 20);
          const size_t batches = std::min<size_t>(5, queries.size() / batch);
          for (size_t b = 0; b < batches; ++b) {
            const auto begin = queries.begin() + b * batch;
            const std::vector<PropertySet> chunk(begin, begin + batch);
            auto removed = engine->RemoveQueries(chunk);
            if (!removed.ok()) return removed.status();
            auto added = engine->AddQueries(chunk);
            if (!added.ok()) return added.status();
          }
          return engine->CheckInvariants();
        },
        &run_metrics, &bench_case, &traces);
    if (!status.ok()) return Fail(status);

    bench_case.meta.tool = "bench";
    bench_case.meta.solver = "online:auto";
    bench_case.meta.workload = "online";
    DescribeInstance(instance, &bench_case.meta);
    bench_case.meta.cost = engine->TotalCost();
    bench_case.meta.solution_size = engine->CurrentSolution().size();
    bench_case.meta.num_components = engine->NumComponents();
    PrintBenchCase(bench_case);
    cases.push_back(std::move(bench_case));
  }

  // Case 4: the durability path — the online churn of case 3 with every
  // batch WAL-logged (immediate fsync so the work counters are
  // repeat-stable), a mid-run checkpoint, then a full recovery into a
  // second engine that must reproduce the live solution exactly. Uses a
  // throwaway data dir under the working directory, recreated per repeat.
  if (CaseSelected(config, "wal")) {
    data::SyntheticConfig synth;
    synth.num_queries = scaled(2000);
    synth.seed = seed + 3;
    Instance instance = data::GenerateSynthetic(synth);
    // Synthetic instances are nameless; WAL payloads are name-keyed.
    std::vector<std::string> names;
    names.reserve(instance.NumProperties());
    for (size_t p = 0; p < instance.NumProperties(); ++p) {
      names.push_back("p" + std::to_string(p));
    }
    instance.set_property_names(std::move(names));
    // Per-process scratch dir: concurrent bench invocations (ctest -j runs
    // several) must not recover each other's half-written WALs.
    const std::string data_dir =
        "bench_wal." + std::to_string(::getpid()) + ".tmp";
    obs::BenchCase bench_case;
    std::unique_ptr<online::OnlineEngine> engine;
    Status status = RunRepeated(
        "wal", config,
        [&]() -> Status {
          std::error_code ec;
          std::filesystem::remove_all(data_dir, ec);
          engine =
              std::make_unique<online::OnlineEngine>(online::EngineOptions{});
          durability::DurabilityOptions durability_options;
          durability_options.data_dir = data_dir;
          durability_options.wal.sync =
              durability::WalOptions::SyncPolicy::kImmediate;
          auto manager = durability::DurabilityManager::Open(durability_options);
          if (!manager.ok()) return manager.status();
          auto recovery =
              (*manager)->Recover(instance, /*default_cost=*/-1, engine.get());
          if (!recovery.ok()) return recovery.status();
          const auto& queries = instance.queries();
          const size_t batch = std::max<size_t>(1, queries.size() / 20);
          const size_t batches = std::min<size_t>(5, queries.size() / batch);
          for (size_t b = 0; b < batches; ++b) {
            const auto begin = queries.begin() + b * batch;
            const std::vector<PropertySet> chunk(begin, begin + batch);
            auto removed = engine->RemoveQueries(chunk);
            if (!removed.ok()) return removed.status();
            auto logged =
                (*manager)->LogBatch({}, chunk, engine->property_names());
            if (!logged.ok()) return logged.status();
            auto added = engine->AddQueries(chunk);
            if (!added.ok()) return added.status();
            logged = (*manager)->LogBatch(chunk, {}, engine->property_names());
            if (!logged.ok()) return logged.status();
            if (b + 1 == (batches + 1) / 2) {
              auto checkpoint = (*manager)->Checkpoint(engine->ExportState());
              if (!checkpoint.ok()) return checkpoint.status();
            }
          }
          if (Status s = (*manager)->Close(); !s.ok()) return s;
          // Reopen and recover into a fresh engine: the canonical solution
          // must match the live engine byte for byte.
          online::OnlineEngine recovered{online::EngineOptions{}};
          auto reopened =
              durability::DurabilityManager::Open(durability_options);
          if (!reopened.ok()) return reopened.status();
          auto replay = (*reopened)->Recover(instance, -1, &recovered);
          if (!replay.ok()) return replay.status();
          if (Status s = (*reopened)->Close(); !s.ok()) return s;
          if (Status s = recovered.CheckInvariants(); !s.ok()) return s;
          auto live = RenderCanonicalSolution(*engine);
          if (!live.ok()) return live.status();
          auto redone = RenderCanonicalSolution(recovered);
          if (!redone.ok()) return redone.status();
          if (*live != *redone) {
            return Status::Internal(
                "recovered solution diverges from the live engine");
          }
          std::filesystem::remove_all(data_dir, ec);
          return Status::OK();
        },
        &run_metrics, &bench_case, &traces);
    if (!status.ok()) return Fail(status);

    bench_case.meta.tool = "bench";
    bench_case.meta.solver = "durability:auto";
    bench_case.meta.workload = "wal";
    DescribeInstance(instance, &bench_case.meta);
    bench_case.meta.cost = engine->TotalCost();
    bench_case.meta.solution_size = engine->CurrentSolution().size();
    bench_case.meta.num_components = engine->NumComponents();
    PrintBenchCase(bench_case);
    cases.push_back(std::move(bench_case));
  }

  if (cases.empty()) {
    std::fprintf(stderr, "no bench case matches --filter '%s'\n",
                 config.filter.c_str());
    return 2;
  }

  obs::BenchRunInfo run;
  run.quick = config.quick;
  run.scale = scale;
  run.seed = seed;
  run.repeat = std::max<size_t>(1, config.repeat);
  run.warmup = config.warmup;
  run.filter = config.filter;
  const std::string json = obs::RenderBenchReport(cases, run_metrics, run);
  if (Status status = obs::ValidateBenchReportJson(json); !status.ok()) {
    return Fail(status);
  }
  const std::string path =
      config.report_path.empty() ? "BENCH_mc3.json" : config.report_path;
  if (Status status = WriteFile(path, json); !status.ok()) {
    return Fail(status);
  }
  std::printf("report:        %s (%s, schema %s)\n", path.c_str(),
              obs::kObsEnabled ? "validated" : "validated; obs compiled out",
              obs::kBenchReportSchema);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);

  auto flag_value = [&](const std::string& flag) -> const std::string* {
    for (size_t i = 0; i + 1 < args.size(); ++i) {
      if (args[i] == flag) return &args[i + 1];
    }
    return nullptr;
  };
  auto has_flag = [&](const std::string& flag) {
    for (const auto& a : args) {
      if (a == flag) return true;
    }
    return false;
  };
  auto positional = [&]() -> const std::string* {
    for (size_t i = 0; i < args.size(); ++i) {
      if (args[i].rfind("--", 0) == 0) {
        ++i;  // skip the flag's value
        continue;
      }
      if (i > 0 && args[i - 1].rfind("--", 0) == 0 &&
          (args[i - 1] == "--solver" || args[i - 1] == "--n" ||
           args[i - 1] == "--seed" || args[i - 1] == "--dataset" ||
           args[i - 1] == "--threads" || args[i - 1] == "--exact-components" ||
           args[i - 1] == "--default-cost" || args[i - 1] == "--out" ||
           args[i - 1] == "--trace" || args[i - 1] == "--batch" ||
           args[i - 1] == "--verify-every" || args[i - 1] == "--report" ||
           args[i - 1] == "--repeat" || args[i - 1] == "--warmup" ||
           args[i - 1] == "--filter" || args[i - 1] == "--listen" ||
           args[i - 1] == "--port-file" || args[i - 1] == "--queue-capacity" ||
           args[i - 1] == "--watermark" || args[i - 1] == "--max-batch" ||
           args[i - 1] == "--workers" || args[i - 1] == "--shards" ||
           args[i - 1] == "--read-path" || args[i - 1] == "--data-dir" ||
           args[i - 1] == "--wal-sync" || args[i - 1] == "--wal-group-ms" ||
           args[i - 1] == "--checkpoint-every" ||
           args[i - 1] == "--checkpoint-interval" ||
           args[i - 1] == "--record-trace" ||
           args[i - 1] == "--trace-sample" || args[i - 1] == "--trace-out" ||
           args[i - 1] == "--solution-out" || args[i - 1] == "--after" ||
           args[i - 1] == "-o")) {
        continue;
      }
      return &args[i];
    }
    return nullptr;
  };

  if (command == "stats") {
    const std::string* path = positional();
    if (path == nullptr) return Usage();
    return CmdStats(*path);
  }
  if (command == "solve") {
    const std::string* path = positional();
    if (path == nullptr) return Usage();
    const std::string* solver = flag_value("--solver");
    SolverOptions options;
    if (has_flag("--no-preprocess")) options.preprocess = false;
    if (const std::string* threads = flag_value("--threads")) {
      options.num_threads = std::strtoul(threads->c_str(), nullptr, 10);
    }
    if (const std::string* ec = flag_value("--exact-components")) {
      options.exact_component_max_queries =
          std::strtoul(ec->c_str(), nullptr, 10);
    }
    const std::string* out = flag_value("--out");
    const std::string* report = flag_value("--report");
    return CmdSolve(*path, solver != nullptr ? *solver : "auto", options,
                    has_flag("--plan"), out != nullptr ? *out : "",
                    report != nullptr ? *report : "");
  }
  if (command == "generate") {
    const std::string* dataset = flag_value("--dataset");
    const std::string* out = flag_value("-o");
    if (dataset == nullptr || out == nullptr) return Usage();
    size_t n = 0;
    uint64_t seed = 1;
    if (const std::string* v = flag_value("--n")) {
      n = std::strtoul(v->c_str(), nullptr, 10);
    }
    if (const std::string* v = flag_value("--seed")) {
      seed = std::strtoull(v->c_str(), nullptr, 10);
    }
    return CmdGenerate(*dataset, n, seed, *out);
  }
  if (command == "preprocess") {
    const std::string* path = positional();
    if (path == nullptr) return Usage();
    return CmdPreprocess(*path);
  }
  if (command == "serve") {
    const std::string* path = positional();
    const std::string* trace = flag_value("--trace");
    const std::string* listen = flag_value("--listen");
    if (path == nullptr || (trace == nullptr && listen == nullptr)) {
      return Usage();
    }
    ServeConfig config;
    if (const std::string* v = flag_value("--solver")) config.solver = *v;
    if (const std::string* v = flag_value("--threads")) {
      config.threads = std::strtoul(v->c_str(), nullptr, 10);
    }
    if (const std::string* v = flag_value("--batch")) {
      config.batch = std::strtoul(v->c_str(), nullptr, 10);
    }
    if (const std::string* v = flag_value("--default-cost")) {
      config.default_cost = std::strtod(v->c_str(), nullptr);
    }
    if (const std::string* v = flag_value("--verify-every")) {
      config.verify_every = std::strtoul(v->c_str(), nullptr, 10);
    }
    config.verbose = has_flag("--verbose");
    if (const std::string* v = flag_value("--report")) config.report = *v;
    if (const std::string* v = flag_value("--solution-out")) {
      config.solution_out = *v;
    }
    if (listen != nullptr) {
      config.listen = std::strtol(listen->c_str(), nullptr, 10);
      if (config.listen < 0 || config.listen > 65535) return Usage();
      if (const std::string* v = flag_value("--port-file")) {
        config.port_file = *v;
      }
      if (const std::string* v = flag_value("--queue-capacity")) {
        config.queue_capacity = std::strtoul(v->c_str(), nullptr, 10);
      }
      if (const std::string* v = flag_value("--watermark")) {
        config.watermark = std::strtoul(v->c_str(), nullptr, 10);
      }
      if (const std::string* v = flag_value("--max-batch")) {
        config.max_batch = std::strtoul(v->c_str(), nullptr, 10);
      }
      if (const std::string* v = flag_value("--workers")) {
        config.workers = std::strtoul(v->c_str(), nullptr, 10);
      }
      server::ServerOptions server_options;
      if (const std::string* v = flag_value("--shards")) {
        if (!server::ParseShards(*v, &server_options.shards)) {
          std::fprintf(stderr,
                       "invalid --shards '%s': need a positive shard count "
                       "(at most 1024)\n",
                       v->c_str());
          return Usage();
        }
      }
      if (const std::string* v = flag_value("--read-path")) {
        if (!server::ParseReadPath(*v, &server_options.read_path)) {
          std::fprintf(stderr,
                       "unknown --read-path '%s': need lockfree or queued\n",
                       v->c_str());
          return 2;
        }
      }
      server_options.pin_cores = has_flag("--pin-cores");
      server_options.port = static_cast<uint16_t>(config.listen);
      server_options.queue_capacity = config.queue_capacity;
      server_options.admission_watermark = config.watermark;
      server_options.max_batch = config.max_batch;
      server_options.connection_workers = config.workers;
      server_options.default_cost = config.default_cost;
      if (!ParseSolverKind(config.solver, &server_options.engine.solver)) {
        std::fprintf(stderr, "unknown serve solver '%s'\n",
                     config.solver.c_str());
        return 2;
      }
      server_options.engine.solver_options.num_threads = config.threads;
      if (const std::string* v = flag_value("--data-dir")) {
        server_options.durability.data_dir = *v;
      }
      if (const std::string* v = flag_value("--wal-sync")) {
        if (*v == "grouped") {
          server_options.durability.wal.sync =
              durability::WalOptions::SyncPolicy::kGrouped;
        } else if (*v == "immediate") {
          server_options.durability.wal.sync =
              durability::WalOptions::SyncPolicy::kImmediate;
        } else if (*v == "none") {
          server_options.durability.wal.sync =
              durability::WalOptions::SyncPolicy::kNone;
        } else {
          std::fprintf(stderr, "unknown --wal-sync '%s'\n", v->c_str());
          return 2;
        }
      }
      if (const std::string* v = flag_value("--wal-group-ms")) {
        server_options.durability.wal.group_window_ms =
            std::strtod(v->c_str(), nullptr);
      }
      if (const std::string* v = flag_value("--checkpoint-every")) {
        server_options.durability.checkpoint_every_updates =
            std::strtoull(v->c_str(), nullptr, 10);
      }
      if (const std::string* v = flag_value("--checkpoint-interval")) {
        server_options.durability.checkpoint_interval_s =
            std::strtod(v->c_str(), nullptr);
      }
      server_options.durability.keep_segments = has_flag("--keep-wal-segments");
      if (const std::string* v = flag_value("--record-trace")) {
        server_options.record_trace_path = *v;
      }
      if (const std::string* v = flag_value("--trace-sample")) {
        server_options.trace_sample = std::strtoull(v->c_str(), nullptr, 10);
      }
      if (const std::string* v = flag_value("--trace-out")) {
        server_options.trace_out_dir = *v;
      }
      return CmdServeListen(*path, config, server_options);
    }
    return CmdServe(*path, *trace, config);
  }
  if (command == "recover") {
    const std::string* path = positional();
    const std::string* data_dir = flag_value("--data-dir");
    if (path == nullptr || data_dir == nullptr) return Usage();
    ServeConfig config;
    if (const std::string* v = flag_value("--solver")) config.solver = *v;
    if (const std::string* v = flag_value("--threads")) {
      config.threads = std::strtoul(v->c_str(), nullptr, 10);
    }
    if (const std::string* v = flag_value("--default-cost")) {
      config.default_cost = std::strtod(v->c_str(), nullptr);
    }
    if (const std::string* v = flag_value("--solution-out")) {
      config.solution_out = *v;
    }
    uint32_t shards = 0;  // adopt the snapshot's layout
    if (const std::string* v = flag_value("--shards"); v != nullptr &&
                                                       *v != "0") {
      if (!server::ParseShards(*v, &shards)) {
        std::fprintf(stderr,
                     "invalid --shards '%s': need a positive shard count "
                     "(at most 1024), or 0 to adopt the snapshot layout\n",
                     v->c_str());
        return Usage();
      }
    }
    return CmdRecover(*path, config, *data_dir, shards);
  }
  if (command == "wal") {
    const std::string* verb = positional();
    const std::string* data_dir = flag_value("--data-dir");
    if (verb == nullptr || data_dir == nullptr) return Usage();
    if (*verb == "dump") {
      uint64_t after = 0;
      if (const std::string* v = flag_value("--after")) {
        after = std::strtoull(v->c_str(), nullptr, 10);
      }
      const std::string* out = flag_value("-o");
      return CmdWalDump(*data_dir, after, out != nullptr ? *out : "");
    }
    if (*verb == "stats") return CmdWalStats(*data_dir);
    return Usage();
  }
  if (command == "bench") {
    BenchConfig config;
    config.quick = has_flag("--quick");
    if (const std::string* v = flag_value("--seed")) {
      config.seed = std::strtoull(v->c_str(), nullptr, 10);
    }
    if (const std::string* v = flag_value("--report")) {
      config.report_path = *v;
    }
    if (const std::string* v = flag_value("--repeat")) {
      config.repeat = std::strtoul(v->c_str(), nullptr, 10);
    }
    if (const std::string* v = flag_value("--warmup")) {
      config.warmup = std::strtoul(v->c_str(), nullptr, 10);
    }
    if (const std::string* v = flag_value("--filter")) {
      config.filter = *v;
    }
    return CmdBench(config);
  }
  if (command == "ingest") {
    const std::string* path = positional();
    const std::string* out = flag_value("-o");
    if (path == nullptr || out == nullptr) return Usage();
    Cost default_cost = 5;
    if (const std::string* v = flag_value("--default-cost")) {
      default_cost = std::strtod(v->c_str(), nullptr);
    }
    return CmdIngest(*path, *out, default_cost);
  }
  return Usage();
}
