// mc3_lint command-line driver. Usage:
//
//   mc3_lint [--report <file.json>] <path>...
//   mc3_lint --emit-header-tus <dir> <path>...
//
// Paths are files or directories (searched recursively for .h/.cc). The
// first form lints and exits non-zero when any finding remains; the second
// form only writes the generated per-header translation units used by the
// mc3_header_tus build target (rule R3 self-containment) and exits 0.
//
// Files under tools/, bench/ and examples/ may print (R4's print ban only
// covers library and test code).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "mc3_lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

void CollectFiles(const fs::path& root, std::vector<fs::path>* out) {
  if (fs::is_regular_file(root)) {
    if (IsSourceFile(root)) out->push_back(root);
    return;
  }
  if (!fs::is_directory(root)) return;
  for (fs::recursive_directory_iterator it(root), end; it != end; ++it) {
    const std::string name = it->path().filename().string();
    if (it->is_directory() &&
        (name == ".git" || name.rfind("build", 0) == 0)) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && IsSourceFile(it->path())) {
      out->push_back(it->path());
    }
  }
}

mc3::lint::FileConfig ConfigFor(const fs::path& path) {
  mc3::lint::FileConfig config;
  const std::string p = path.generic_string();
  config.allow_prints = p.find("tools/") != std::string::npos ||
                        p.find("bench/") != std::string::npos ||
                        p.find("examples/") != std::string::npos;
  config.is_header = path.extension() == ".h";
  return config;
}

/// Include path of a header relative to its src/ root, or "" when the
/// header is not under a src/ directory.
std::string SrcRelative(const fs::path& path) {
  const std::string p = path.generic_string();
  const size_t at = p.rfind("src/");
  if (at == std::string::npos) return "";
  return p.substr(at + 4);
}

int EmitHeaderTus(const fs::path& dir, const std::vector<fs::path>& files) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  size_t emitted = 0;
  for (const fs::path& file : files) {
    if (file.extension() != ".h") continue;
    const std::string rel = SrcRelative(file);
    if (rel.empty()) continue;  // only library headers get TU checks
    std::string mangled = rel;
    std::replace(mangled.begin(), mangled.end(), '/', '_');
    mangled = "tu_" + mangled.substr(0, mangled.size() - 2) + ".cc";
    std::ofstream out(dir / mangled, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "mc3_lint: cannot write " << (dir / mangled) << "\n";
      return 2;
    }
    out << mc3::lint::HeaderTuSource(rel);
    ++emitted;
  }
  std::cout << "mc3_lint: emitted " << emitted << " header TUs under "
            << dir.string() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string report_path;
  std::string tu_dir;
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--emit-header-tus" && i + 1 < argc) {
      tu_dir = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: mc3_lint [--report out.json] <path>...\n"
                   "       mc3_lint --emit-header-tus <dir> <path>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "mc3_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "mc3_lint: no paths given (try: mc3_lint src tests tools "
                 "bench)\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    if (!fs::exists(root)) {
      std::cerr << "mc3_lint: error: no such path: " << root
                << " (paths are files or directories scanned recursively "
                   "for .h/.cc)\n";
      return 2;
    }
    CollectFiles(root, &files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  if (!tu_dir.empty()) return EmitHeaderTus(tu_dir, files);

  // Pass 1: cross-file symbol index over headers only. Members and
  // accessors declared in a header must resolve when their iteration site
  // is in a .cc, but names local to one .cc must not poison every other
  // file (a std::vector named like someone else's unordered_set is fine).
  // The join index (rule R9) spans every file regardless: threads are
  // routinely declared in a header and joined in the matching .cc. A file
  // that cannot be read is recorded, reported, and fails the run — but does
  // not abort the scan of everything else.
  mc3::lint::SymbolIndex header_index;
  std::map<std::string, std::string> contents;
  std::vector<std::string> skipped;
  for (const fs::path& file : files) {
    std::string content;
    if (!ReadFile(file, &content)) {
      std::cerr << "mc3_lint: error: cannot read " << file
                << " (recorded as skipped)\n";
      skipped.push_back(file.generic_string());
      continue;
    }
    if (file.extension() == ".h") {
      mc3::lint::IndexFile(content, &header_index);
    }
    mc3::lint::CollectJoins(content, &header_index);
    contents.emplace(file.generic_string(), std::move(content));
  }
  header_index.ResolveAliases();

  // Pass 2: lint each file against the header index plus its own symbols,
  // and collect the lock-acquisition edges for the whole-project R10 pass.
  std::vector<mc3::lint::Finding> findings;
  std::vector<mc3::lint::LockEdge> lock_edges;
  for (const auto& [path, content] : contents) {
    mc3::lint::SymbolIndex index = header_index;
    if (fs::path(path).extension() != ".h") {
      mc3::lint::IndexFile(content, &index);
      index.ResolveAliases();
    }
    std::vector<mc3::lint::Finding> file_findings =
        mc3::lint::LintFile(path, content, index, ConfigFor(path));
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
    std::vector<mc3::lint::LockEdge> file_edges =
        mc3::lint::CollectLockEdges(path, content, index);
    lock_edges.insert(lock_edges.end(),
                      std::make_move_iterator(file_edges.begin()),
                      std::make_move_iterator(file_edges.end()));
  }
  const std::vector<mc3::lint::LockCycle> lock_cycles =
      mc3::lint::FindLockCycles(lock_edges);
  for (const mc3::lint::LockCycle& cycle : lock_cycles) {
    findings.push_back(mc3::lint::CycleFinding(cycle));
  }

  for (const mc3::lint::Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule
              << (f.tag.empty() ? "" : "/" + f.tag) << "] " << f.message
              << "\n";
  }
  std::cout << "mc3_lint: " << contents.size() << " files, "
            << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s");
  if (!skipped.empty()) {
    std::cout << ", " << skipped.size() << " skipped (unreadable)";
  }
  std::cout << "\n";

  if (!report_path.empty()) {
    std::ofstream out(report_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "mc3_lint: cannot write report " << report_path << "\n";
      return 2;
    }
    out << mc3::lint::FindingsToJson(findings, contents.size(), lock_edges,
                                     lock_cycles, skipped);
  }
  if (!skipped.empty()) return 2;
  return findings.empty() ? 0 : 1;
}
