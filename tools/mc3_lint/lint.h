// mc3_lint: project-specific static analysis for the MC3 codebase.
//
// A dependency-free, file/token-level pass (no compiler frontend) enforcing
// the project rules documented in docs/static_analysis.md:
//
//   R1 determinism      — no iteration over unordered_{map,set} in library
//                         code unless waived; unordered iteration order leaks
//                         into greedy tie-breaks and component ordering.
//   R2 float-equality   — no ==/!= on cost/weight doubles; use the ApproxEq /
//                         IsInfiniteCost / IsZeroCost helpers
//                         (util/float_cmp.h).
//   R3 header hygiene   — every header starts with #pragma once and is
//                         self-contained (enforced by generated per-header
//                         translation units, see EmitHeaderTu).
//   R4 banned constructs— rand()/srand(), time(NULL), std::cout / printf in
//                         src/ libraries (tools/, bench/, examples/ may
//                         print), naked new/delete.
//   R5 unchecked Status — the result of a Status- or Result<T>-returning call
//                         must be consumed (assigned, returned, tested, or
//                         explicitly discarded with (void)).
//   R6 shared-mutable capture — a by-reference capture mutated inside a
//                         ParallelFor body without indexing by the worker
//                         slot, atomics, or a mutex is a data-race hazard
//                         (ThreadSanitizer in CI is the dynamic complement).
//   R7 cv-wait          — a condition-variable wait without a predicate
//                         overload; spurious wakeups turn the bare overload
//                         into a latent hang or lost-signal bug.
//   R8 guarded members  — a class owning a mutex must annotate every other
//                         mutable, non-thread-safe data member with
//                         MC3_GUARDED_BY (util/thread_annotations.h) or
//                         carry a guard-ok waiver explaining the ownership.
//   R9 thread lifetime  — no detached std::threads, and a directly declared
//                         std::thread must be join()ed somewhere in the
//                         scanned file set (vectors of threads are joined in
//                         loops and are out of scope for a token pass).
//   R10 lock order      — the static lock-acquisition graph (scoped guards
//                         nested inside held scopes, plus holds implied by
//                         MC3_REQUIRES annotations) must be acyclic; a cycle
//                         is a potential deadlock. The graph is emitted in
//                         the JSON report.
//
// Waivers: a finding is suppressed by a comment on the same line (or on an
// immediately preceding comment-only line) of the form
//
//     // mc3-lint: unordered-ok(ids are sorted two lines below)
//
// i.e. a rule tag (unordered, float-eq, pragma-once, print, new-delete,
// rand, time, status, capture, cv-wait, guard, detach, lock-order) followed
// by "-ok" and a non-empty parenthesized reason. A malformed waiver (unknown
// tag, empty reason) is itself a finding.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mc3::lint {

/// One rule violation.
struct Finding {
  std::string file;
  int line = 0;           ///< 1-based
  std::string rule;       ///< "R1".."R10" or "W0" (malformed waiver)
  std::string tag;        ///< waiver tag that would suppress it
  std::string message;
};

/// Per-file knobs derived from the file's location.
struct FileConfig {
  bool allow_prints = false;  ///< tools/, bench/, examples/: printing is fine
  bool is_header = false;     ///< apply R3
};

/// One acquisition edge of the lock-order graph (rule R10): `to` was
/// acquired while `from` was held, at file:line. Waived edges (lock-order-ok
/// on the acquisition line) stay in the dumped graph but never participate
/// in cycle detection.
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;
  int line = 0;
  bool waived = false;
};

/// One cycle of the lock-order graph; `nodes` lists the mutexes in
/// acquisition order (first node repeated implicitly), file/line anchor the
/// back edge that closes the cycle.
struct LockCycle {
  std::vector<std::string> nodes;
  std::string file;
  int line = 0;
};

/// Symbols collected in the indexing pass over every scanned file. All
/// containers are ordered so lint output is deterministic by construction.
struct SymbolIndex {
  /// Type aliases resolving to unordered containers (e.g. CostMap).
  std::set<std::string> unordered_aliases;
  /// Variables, members, parameters and accessor functions whose type (or
  /// return type) is an unordered container.
  std::set<std::string> unordered_symbols;
  /// Functions returning Status or Result<T>.
  std::set<std::string> status_functions;
  /// Functions declared with any other return type. A name in both sets is
  /// an overload a token-level pass cannot disambiguate, so R5 skips it.
  std::set<std::string> nonstatus_functions;
  /// Names declared with a thread-safe type (std::atomic, std::mutex,
  /// obs::Counter/Gauge/Histogram): exempt from R6.
  std::set<std::string> threadsafe_symbols;
  /// Names declared with a condition-variable type (std::condition_variable
  /// or util::CondVar): receivers checked by R7.
  std::set<std::string> condvar_symbols;
  /// Thread names join()ed (or joinable()-probed) anywhere in the scanned
  /// file set; fill with CollectJoins over EVERY file — threads are often
  /// declared in a header and joined in the matching .cc (rule R9).
  std::set<std::string> joined_symbols;
  /// Function name -> mutexes named in an MC3_REQUIRES annotation on its
  /// declaration. Seeds the held-set at the function's out-of-line
  /// definition, where clang-style attributes are not repeated (rule R10).
  std::map<std::string, std::vector<std::string>> requires_map;
  /// Raw alias table (name -> definition text) used for transitive aliases.
  std::map<std::string, std::string> alias_defs;
  /// Scrubbed contents of every indexed file, re-scanned by ResolveAliases()
  /// once the full alias set is known.
  std::vector<std::string> indexed_contents;

  /// Resolves alias-of-alias chains; call once after indexing every file.
  void ResolveAliases();
};

/// `content` with comments and string/character literals blanked out
/// (replaced by spaces, newlines preserved), so rule scans never match
/// inside literals or prose. Handles raw string literals.
std::string Scrub(const std::string& content);

/// Comment text per line (1-based), for waiver extraction.
std::map<int, std::string> CommentsByLine(const std::string& content);

/// Indexing pass: records symbols declared in `content` into `index`.
void IndexFile(const std::string& content, SymbolIndex* index);

/// Join-index pass for rule R9: records every `x.join()` / `x.joinable()`
/// receiver in `content` into `index->joined_symbols`. Unlike IndexFile
/// (headers only in the driver), this must run over every scanned file.
void CollectJoins(const std::string& content, SymbolIndex* index);

/// Lock-order pass for rule R10: the acquisition edges observed in
/// `content`. `index` supplies requires_map so out-of-line definitions of
/// MC3_REQUIRES-annotated functions seed the held set.
std::vector<LockEdge> CollectLockEdges(const std::string& path,
                                       const std::string& content,
                                       const SymbolIndex& index);

/// Cycle detection over the non-waived edges of the lock-order graph.
/// Deterministic: cycles are reported once, in node-sorted order.
std::vector<LockCycle> FindLockCycles(const std::vector<LockEdge>& edges);

/// Renders a cycle as an R10 finding.
Finding CycleFinding(const LockCycle& cycle);

/// Linting pass: returns the findings for one file (rules R1-R9; R10 is a
/// whole-project pass — see CollectLockEdges/FindLockCycles). `index` must
/// have been built (and ResolveAliases() called) over every file in the
/// project so cross-file symbols (e.g. members declared in headers) resolve.
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content,
                              const SymbolIndex& index,
                              const FileConfig& config);

/// Convenience for tests: index `content` alone, then lint it — including a
/// single-file R10 pass.
std::vector<Finding> LintSnippet(const std::string& path,
                                 const std::string& content,
                                 const FileConfig& config = {});

/// The generated translation unit proving `header_include_path` (an include
/// path relative to src/, e.g. "core/instance.h") is self-contained.
std::string HeaderTuSource(const std::string& header_include_path);

/// Renders findings as a mc3.lint_report/2 JSON document: per-rule counts
/// for every rule (zeros included), the findings, the lock-order graph with
/// its cycles, and the files that could not be read.
std::string FindingsToJson(const std::vector<Finding>& findings,
                           size_t files_scanned,
                           const std::vector<LockEdge>& lock_edges = {},
                           const std::vector<LockCycle>& lock_cycles = {},
                           const std::vector<std::string>& skipped_files = {});

}  // namespace mc3::lint
