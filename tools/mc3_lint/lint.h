// mc3_lint: project-specific static analysis for the MC3 codebase.
//
// A dependency-free, file/token-level pass (no compiler frontend) enforcing
// the project rules documented in docs/static_analysis.md:
//
//   R1 determinism      — no iteration over unordered_{map,set} in library
//                         code unless waived; unordered iteration order leaks
//                         into greedy tie-breaks and component ordering.
//   R2 float-equality   — no ==/!= on cost/weight doubles; use the ApproxEq /
//                         IsInfiniteCost / IsZeroCost helpers
//                         (util/float_cmp.h).
//   R3 header hygiene   — every header starts with #pragma once and is
//                         self-contained (enforced by generated per-header
//                         translation units, see EmitHeaderTu).
//   R4 banned constructs— rand()/srand(), time(NULL), std::cout / printf in
//                         src/ libraries (tools/, bench/, examples/ may
//                         print), naked new/delete.
//   R5 unchecked Status — the result of a Status- or Result<T>-returning call
//                         must be consumed (assigned, returned, tested, or
//                         explicitly discarded with (void)).
//   R6 shared-mutable capture — a by-reference capture mutated inside a
//                         ParallelFor body without indexing by the worker
//                         slot, atomics, or a mutex is a data-race hazard
//                         (ThreadSanitizer in CI is the dynamic complement).
//
// Waivers: a finding is suppressed by a comment on the same line (or on an
// immediately preceding comment-only line) of the form
//
//     // mc3-lint: unordered-ok(ids are sorted two lines below)
//
// i.e. a rule tag (unordered, float-eq, pragma-once, print, new-delete,
// rand, time, status, capture) followed by "-ok" and a non-empty
// parenthesized reason. A malformed waiver (unknown tag, empty reason) is
// itself a finding.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mc3::lint {

/// One rule violation.
struct Finding {
  std::string file;
  int line = 0;           ///< 1-based
  std::string rule;       ///< "R1".."R6" or "W0" (malformed waiver)
  std::string tag;        ///< waiver tag that would suppress it
  std::string message;
};

/// Per-file knobs derived from the file's location.
struct FileConfig {
  bool allow_prints = false;  ///< tools/, bench/, examples/: printing is fine
  bool is_header = false;     ///< apply R3
};

/// Symbols collected in the indexing pass over every scanned file. All
/// containers are ordered so lint output is deterministic by construction.
struct SymbolIndex {
  /// Type aliases resolving to unordered containers (e.g. CostMap).
  std::set<std::string> unordered_aliases;
  /// Variables, members, parameters and accessor functions whose type (or
  /// return type) is an unordered container.
  std::set<std::string> unordered_symbols;
  /// Functions returning Status or Result<T>.
  std::set<std::string> status_functions;
  /// Functions declared with any other return type. A name in both sets is
  /// an overload a token-level pass cannot disambiguate, so R5 skips it.
  std::set<std::string> nonstatus_functions;
  /// Names declared with a thread-safe type (std::atomic, std::mutex,
  /// obs::Counter/Gauge/Histogram): exempt from R6.
  std::set<std::string> threadsafe_symbols;
  /// Raw alias table (name -> definition text) used for transitive aliases.
  std::map<std::string, std::string> alias_defs;
  /// Scrubbed contents of every indexed file, re-scanned by ResolveAliases()
  /// once the full alias set is known.
  std::vector<std::string> indexed_contents;

  /// Resolves alias-of-alias chains; call once after indexing every file.
  void ResolveAliases();
};

/// `content` with comments and string/character literals blanked out
/// (replaced by spaces, newlines preserved), so rule scans never match
/// inside literals or prose. Handles raw string literals.
std::string Scrub(const std::string& content);

/// Comment text per line (1-based), for waiver extraction.
std::map<int, std::string> CommentsByLine(const std::string& content);

/// Indexing pass: records symbols declared in `content` into `index`.
void IndexFile(const std::string& content, SymbolIndex* index);

/// Linting pass: returns the findings for one file. `index` must have been
/// built (and ResolveAliases() called) over every file in the project so
/// cross-file symbols (e.g. members declared in headers) resolve.
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content,
                              const SymbolIndex& index,
                              const FileConfig& config);

/// Convenience for tests: index `content` alone, then lint it.
std::vector<Finding> LintSnippet(const std::string& path,
                                 const std::string& content,
                                 const FileConfig& config = {});

/// The generated translation unit proving `header_include_path` (an include
/// path relative to src/, e.g. "core/instance.h") is self-contained.
std::string HeaderTuSource(const std::string& header_include_path);

/// Renders findings as a mc3.lint_report/1 JSON document.
std::string FindingsToJson(const std::vector<Finding>& findings,
                           size_t files_scanned);

}  // namespace mc3::lint
