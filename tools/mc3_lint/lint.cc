#include "mc3_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <functional>
#include <regex>
#include <sstream>
#include <utility>

#include "obs/json.h"

namespace mc3::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when content[pos..] starts the word `word` on both boundaries.
bool IsWordAt(const std::string& s, size_t pos, const std::string& word) {
  if (s.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && IsIdentChar(s[pos - 1])) return false;
  const size_t end = pos + word.size();
  return end >= s.size() || !IsIdentChar(s[end]);
}

size_t SkipSpaces(const std::string& s, size_t pos) {
  while (pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[pos])) != 0) {
    ++pos;
  }
  return pos;
}

/// Previous non-whitespace character before `pos`, or '\0'.
char PrevSignificant(const std::string& s, size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(s[pos])) == 0) return s[pos];
  }
  return '\0';
}

/// With s[pos] == open, returns the index one past the matching close (or
/// npos). Assumes literals are already scrubbed.
size_t SkipBalanced(const std::string& s, size_t pos, char open, char close) {
  int depth = 0;
  for (; pos < s.size(); ++pos) {
    if (s[pos] == open) ++depth;
    if (s[pos] == close && --depth == 0) return pos + 1;
  }
  return std::string::npos;
}

int LineOf(const std::string& s, size_t pos) {
  return 1 + static_cast<int>(std::count(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(std::min(pos, s.size())), '\n'));
}

const std::set<std::string>& KnownTags() {
  static const std::set<std::string> tags = {
      "unordered", "float-eq", "pragma-once", "print",
      "new-delete", "rand",     "time",        "status",
      "capture",    "cv-wait",  "guard",       "detach",
      "lock-order"};
  return tags;
}

/// True when the word `word` occurs in `s` on identifier boundaries.
bool ContainsWord(const std::string& s, const std::string& word) {
  size_t pos = s.find(word);
  while (pos != std::string::npos) {
    if (IsWordAt(s, pos, word)) return true;
    pos = s.find(word, pos + 1);
  }
  return false;
}

/// The identifier ending the member-access chain that terminates at `pos`
/// (exclusive): `c->reader` -> "reader", `workers_[i]` -> "workers_". Empty
/// when `pos` is not preceded by an identifier (or an indexed one).
std::string ReceiverBefore(const std::string& s, size_t pos) {
  while (pos > 0 &&
         std::isspace(static_cast<unsigned char>(s[pos - 1])) != 0) {
    --pos;
  }
  if (pos > 0 && s[pos - 1] == ']') {
    int depth = 0;
    while (pos > 0) {
      --pos;
      if (s[pos] == ']') ++depth;
      if (s[pos] == '[' && --depth == 0) break;
    }
  }
  size_t end = pos;
  while (pos > 0 && IsIdentChar(s[pos - 1])) --pos;
  return s.substr(pos, end - pos);
}

/// Splits `text` on commas at top-level (outside (), [], {}; '<' is left
/// untracked on purpose — a stray less-than must not swallow commas).
std::vector<std::string> SplitTopLevel(const std::string& text) {
  std::vector<std::string> parts;
  std::string current;
  int depth = 0;
  for (char c : text) {
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

std::string TrimCopy(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return s.substr(b, e - b);
}

/// True when the nearest word before `pos` is `word` (e.g. `enum` before a
/// `class` keyword).
bool PrecededByWord(const std::string& s, size_t pos,
                    const std::string& word) {
  while (pos > 0 &&
         std::isspace(static_cast<unsigned char>(s[pos - 1])) != 0) {
    --pos;
  }
  size_t begin = pos;
  while (begin > 0 && IsIdentChar(s[begin - 1])) --begin;
  return s.compare(begin, pos - begin, word) == 0;
}

/// Attribute-macro heuristic for class heads: MC3_SCOPED_CAPABILITY and
/// friends are SHOUTY_CASE with at least one underscore or digit.
bool LooksLikeMacro(const std::string& word) {
  bool has_sep = false;
  for (char c : word) {
    if (std::islower(static_cast<unsigned char>(c)) != 0) return false;
    if (c == '_' || std::isdigit(static_cast<unsigned char>(c)) != 0) {
      has_sep = true;
    }
  }
  return has_sep && word.size() > 2;
}

struct ScrubResult {
  std::string code;                   ///< literals/comments blanked
  std::map<int, std::string> comments;  ///< comment text per line
};

ScrubResult ScrubImpl(const std::string& in) {
  ScrubResult out;
  out.code.assign(in.size(), ' ');
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  std::string raw_delim;  // the )delim" terminator of a raw string
  int line = 1;
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '\n') {
      out.code[i] = '\n';
      if (state == State::kLineComment) state = State::kCode;
      ++line;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < in.size() && in[i + 1] == '/') {
          state = State::kLineComment;
        } else if (c == '/' && i + 1 < in.size() && in[i + 1] == '*') {
          state = State::kBlockComment;
          ++i;  // consume '*' so "/*/" is not a complete comment
          if (i < in.size() && in[i] == '\n') ++line, out.code[i] = '\n';
        } else if (c == 'R' && i + 1 < in.size() && in[i + 1] == '"' &&
                   (i == 0 || !IsIdentChar(in[i - 1]))) {
          // Raw string literal R"delim( ... )delim".
          size_t j = i + 2;
          std::string delim;
          while (j < in.size() && in[j] != '(') delim += in[j++];
          raw_delim = ")" + delim + "\"";
          state = State::kRawString;
          i = j;  // at '(' (or end)
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        } else {
          out.code[i] = c;
        }
        break;
      case State::kLineComment:
      case State::kBlockComment:
        out.comments[line] += c;
        if (state == State::kBlockComment && c == '*' && i + 1 < in.size() &&
            in[i + 1] == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
          if (i < in.size() && in[i] == '\n') ++line, out.code[i] = '\n';
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == ')' && in.compare(i, raw_delim.size(), raw_delim) == 0) {
          // Keep the line count right across the terminator.
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

/// After a type token (and optional template arguments) starting the
/// declaration at `pos` (one past the type name), extracts the declared
/// identifier, or "" when this is not a declaration site.
std::string DeclaredName(const std::string& s, size_t pos) {
  pos = SkipSpaces(s, pos);
  if (pos < s.size() && s[pos] == '<') {
    pos = SkipBalanced(s, pos, '<', '>');
    if (pos == std::string::npos) return "";
  }
  pos = SkipSpaces(s, pos);
  // Not a declaration when the type is only mentioned (::iterator, nested
  // template argument, cast, ...).
  if (pos < s.size() && (s[pos] == ':' || s[pos] == '>' || s[pos] == ',' ||
                         s[pos] == ')' || s[pos] == ';' || s[pos] == '{')) {
    return "";
  }
  while (pos < s.size() && (s[pos] == '&' || s[pos] == '*')) {
    pos = SkipSpaces(s, pos + 1);
  }
  if (pos >= s.size() || !IsIdentStart(s[pos])) return "";
  size_t end = pos;
  while (end < s.size() && IsIdentChar(s[end])) ++end;
  std::string name = s.substr(pos, end - pos);
  if (name == "const" || name == "constexpr" || name == "static" ||
      name == "operator") {
    return "";
  }
  return name;
}

/// Collects declarations whose type is named by `type_token` into `out`.
void CollectDecls(const std::string& code, const std::string& type_token,
                  std::set<std::string>* out) {
  size_t pos = 0;
  while ((pos = code.find(type_token, pos)) != std::string::npos) {
    const size_t start = pos;
    pos += type_token.size();
    if (start > 0 && IsIdentChar(code[start - 1])) {
      continue;  // suffix of a longer identifier
    }
    if (pos < code.size() && IsIdentChar(code[pos])) continue;
    // Alias right-hand sides are handled by the alias table.
    if (PrevSignificant(code, start) == '=') continue;
    const std::string name = DeclaredName(code, pos);
    if (!name.empty()) out->insert(name);
  }
}

/// Collects every `TYPE NAME(` two-word declaration whose TYPE is not
/// Status/Result into `out`. Used to spot overload sets where only some
/// overloads return Status — R5 must skip those names.
void CollectNonStatusFunctions(const std::string& code,
                               std::set<std::string>* out) {
  static const std::set<std::string> kNotATypeword = {
      "return",   "co_return", "co_await", "co_yield", "throw", "new",
      "delete",   "case",      "goto",     "else",     "do",    "operator",
      "Status",   "Result"};
  size_t pos = 0;
  while (pos < code.size()) {
    if (!IsIdentStart(code[pos]) ||
        (pos > 0 && IsIdentChar(code[pos - 1]))) {
      ++pos;
      continue;
    }
    size_t end = pos;
    while (end < code.size() && IsIdentChar(code[end])) ++end;
    const std::string first = code.substr(pos, end - pos);
    size_t p = SkipSpaces(code, end);
    if (p == end || p >= code.size() || !IsIdentStart(code[p])) {
      pos = end;
      continue;
    }
    size_t end2 = p;
    while (end2 < code.size() && IsIdentChar(code[end2])) ++end2;
    const std::string second = code.substr(p, end2 - p);
    const size_t after = SkipSpaces(code, end2);
    if (after < code.size() && code[after] == '(' &&
        kNotATypeword.count(first) == 0) {
      out->insert(second);
    }
    pos = end;
  }
}

/// Collects names of functions returning `ret` (optionally templated, e.g.
/// Result<T>) into `out`.
void CollectReturning(const std::string& code, const std::string& ret,
                      bool templated, std::set<std::string>* out) {
  size_t pos = 0;
  while ((pos = code.find(ret, pos)) != std::string::npos) {
    const size_t start = pos;
    pos += ret.size();
    if (start > 0 && IsIdentChar(code[start - 1])) continue;
    size_t p = pos;
    if (templated) {
      p = SkipSpaces(code, p);
      if (p >= code.size() || code[p] != '<') continue;
      p = SkipBalanced(code, p, '<', '>');
      if (p == std::string::npos) continue;
    } else if (p < code.size() && (IsIdentChar(code[p]) || code[p] == '<')) {
      continue;  // StatusCode, Status<...>, ...
    }
    p = SkipSpaces(code, p);
    // Qualified name: A::B::name — keep the last component.
    std::string name;
    while (p < code.size() && IsIdentStart(code[p])) {
      size_t end = p;
      while (end < code.size() && IsIdentChar(code[end])) ++end;
      name = code.substr(p, end - p);
      p = SkipSpaces(code, end);
      if (code.compare(p, 2, "::") == 0) {
        p = SkipSpaces(code, p + 2);
        continue;
      }
      break;
    }
    if (name.empty() || name == "const" || name == "constexpr") continue;
    if (p < code.size() && code[p] == '(') out->insert(name);
  }
}

bool ContainsCostWord(const std::string& expr) {
  static const std::regex kCostish("[Cc]ost|[Ww]eight");
  if (!std::regex_search(expr, kCostish)) return false;
  // Container-protocol calls on cost maps yield iterators/sizes, not costs.
  for (const char* ex : {".end(", ".begin(", ".size(", ".count(", ".find(",
                         ".empty(", ".contains("}) {
    if (expr.find(ex) != std::string::npos) return false;
  }
  return true;
}

/// Extends an operand of a comparison leftwards from `pos` (exclusive).
std::string OperandLeft(const std::string& s, size_t pos) {
  size_t end = pos;
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  size_t begin = end;
  while (begin > 0) {
    const char c = s[begin - 1];
    if (IsIdentChar(c) || c == '.' || c == ':' || c == '_') {
      --begin;
    } else if (c == '>' && begin > 1 && s[begin - 2] == '-') {
      begin -= 2;
    } else if (c == ')' || c == ']') {
      const char open = (c == ')') ? '(' : '[';
      int depth = 0;
      size_t p = begin;
      while (p > 0) {
        --p;
        if (s[p] == c) ++depth;
        if (s[p] == open && --depth == 0) break;
      }
      if (depth != 0) break;
      begin = p;
    } else {
      break;
    }
  }
  return s.substr(begin, end - begin);
}

/// Extends an operand of a comparison rightwards from `pos` (inclusive).
std::string OperandRight(const std::string& s, size_t pos) {
  pos = SkipSpaces(s, pos);
  size_t end = pos;
  while (end < s.size()) {
    const char c = s[end];
    if (IsIdentChar(c) || c == '.' || c == ':') {
      ++end;
    } else if (c == '-' && end + 1 < s.size() && s[end + 1] == '>') {
      end += 2;
    } else if (c == '(' || c == '[') {
      const size_t next = SkipBalanced(s, end, c, c == '(' ? ')' : ']');
      if (next == std::string::npos) break;
      end = next;
    } else {
      break;
    }
  }
  return s.substr(pos, end - pos);
}

struct Waivers {
  /// line -> waived tags.
  std::map<int, std::set<std::string>> by_line;
  std::vector<Finding> malformed;
};

Waivers ExtractWaivers(const std::string& path, const ScrubResult& scrubbed) {
  Waivers out;
  static const std::regex kWaiver(
      R"(mc3-lint:\s*([a-z0-9-]+?)-ok\(([^)]*)\))");
  static const std::regex kMention("mc3-lint");
  for (const auto& [line, text] : scrubbed.comments) {
    bool any = false;
    for (std::sregex_iterator it(text.begin(), text.end(), kWaiver), end;
         it != end; ++it) {
      any = true;
      const std::string tag = (*it)[1].str();
      const std::string reason = (*it)[2].str();
      if (KnownTags().count(tag) == 0) {
        out.malformed.push_back(
            {path, line, "W0", "",
             "unknown waiver tag '" + tag + "' (see docs/static_analysis.md)"});
        continue;
      }
      if (SkipSpaces(reason, 0) >= reason.size()) {
        out.malformed.push_back(
            {path, line, "W0", "",
             "waiver '" + tag + "-ok' requires a non-empty reason"});
        continue;
      }
      out.by_line[line].insert(tag);
    }
    if (!any && std::regex_search(text, kMention)) {
      out.malformed.push_back(
          {path, line, "W0", "",
           "malformed waiver; expected 'mc3-lint: <tag>-ok(<reason>)'"});
    }
  }
  return out;
}

/// True when line `line` of the scrubbed code holds no code characters.
bool CodeLineBlank(const std::string& code, int line) {
  int at = 1;
  size_t pos = 0;
  while (at < line && pos < code.size()) {
    if (code[pos] == '\n') ++at;
    ++pos;
  }
  while (pos < code.size() && code[pos] != '\n') {
    if (std::isspace(static_cast<unsigned char>(code[pos])) == 0) return false;
    ++pos;
  }
  return true;
}

class Linter {
 public:
  Linter(const std::string& path, const ScrubResult& scrubbed,
         const SymbolIndex& index, const FileConfig& config)
      : path_(path), code_(scrubbed.code), index_(index), config_(config) {
    Waivers waivers = ExtractWaivers(path, scrubbed);
    // A waiver on a comment-only line covers the next line of code.
    for (const auto& [line, tags] : waivers.by_line) {
      const int target = CodeLineBlank(code_, line) ? line + 1 : line;
      waived_[target].insert(tags.begin(), tags.end());
      if (target != line) {
        waived_[line].insert(tags.begin(), tags.end());
      }
    }
    for (Finding& f : waivers.malformed) findings_.push_back(std::move(f));
  }

  std::vector<Finding> Run() {
    if (config_.is_header) RulePragmaOnce();
    RuleUnorderedIteration();
    RuleFloatEquality();
    RuleBannedConstructs();
    RuleUncheckedStatus();
    RuleSharedMutableCapture();
    RuleCvWait();
    RuleGuardedMembers();
    RuleThreadDetach();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
    return std::move(findings_);
  }

 private:
  void Report(size_t pos, const std::string& rule, const std::string& tag,
              std::string message) {
    const int line = LineOf(code_, pos);
    const auto it = waived_.find(line);
    if (it != waived_.end() && it->second.count(tag) > 0) return;
    findings_.push_back({path_, line, rule, tag, std::move(message)});
  }

  // R3 — headers must use #pragma once.
  void RulePragmaOnce() {
    if (code_.find("#pragma once") == std::string::npos) {
      findings_.push_back({path_, 1, "R3", "pragma-once",
                           "header must start with #pragma once (include "
                           "guards are not used in this project)"});
    }
  }

  // R1 — range-for over an unordered container.
  void RuleUnorderedIteration() {
    size_t pos = 0;
    while ((pos = code_.find("for", pos)) != std::string::npos) {
      const size_t at = pos;
      pos += 3;
      if (!IsWordAt(code_, at, "for")) continue;
      size_t open = SkipSpaces(code_, at + 3);
      if (open >= code_.size() || code_[open] != '(') continue;
      const size_t close = SkipBalanced(code_, open, '(', ')');
      if (close == std::string::npos) continue;
      // Find the range-for ':' at depth 1 (ignoring '::').
      int depth = 0;
      size_t colon = std::string::npos;
      for (size_t i = open; i < close; ++i) {
        const char c = code_[i];
        if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
        if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
        if (c == ':' && depth == 1) {
          if ((i + 1 < close && code_[i + 1] == ':') ||
              (i > 0 && code_[i - 1] == ':')) {
            continue;
          }
          colon = i;
          break;
        }
      }
      if (colon == std::string::npos) continue;
      std::string expr = code_.substr(colon + 1, close - 1 - (colon + 1));
      // Trim.
      while (!expr.empty() &&
             std::isspace(static_cast<unsigned char>(expr.back())) != 0) {
        expr.pop_back();
      }
      size_t lead = SkipSpaces(expr, 0);
      expr.erase(0, lead);
      if (expr.empty()) continue;
      // Indexing yields a mapped value, not the container itself.
      if (expr.back() == ']') continue;
      std::string target = expr;
      if (target.back() == ')') {
        // Strip the call's argument list: X.costs() -> X.costs
        int d = 0;
        size_t p = target.size();
        while (p > 0) {
          --p;
          if (target[p] == ')') ++d;
          if (target[p] == '(' && --d == 0) break;
        }
        target.resize(p);
      }
      size_t tail = target.size();
      while (tail > 0 && IsIdentChar(target[tail - 1])) --tail;
      const std::string name = target.substr(tail);
      const bool inline_unordered =
          expr.find("unordered_map<") != std::string::npos ||
          expr.find("unordered_set<") != std::string::npos;
      if (!inline_unordered && (name.empty() ||
                                index_.unordered_symbols.count(name) == 0)) {
        continue;
      }
      Report(at, "R1", "unordered",
             "iteration over unordered container '" + expr +
                 "': order is platform-dependent and can leak into "
                 "solutions; iterate a sorted copy (SortedCostEntries) or "
                 "waive with unordered-ok(<reason>)");
    }
  }

  // R2 — ==/!= on cost/weight values.
  void RuleFloatEquality() {
    for (size_t i = 0; i + 1 < code_.size(); ++i) {
      const bool eq = code_[i] == '=' && code_[i + 1] == '=';
      const bool ne = code_[i] == '!' && code_[i + 1] == '=';
      if (!eq && !ne) continue;
      if (i > 0 && std::string("=<>!+-*/%&|^").find(code_[i - 1]) !=
                       std::string::npos) {
        continue;
      }
      if (i + 2 < code_.size() && code_[i + 2] == '=') continue;
      const std::string lhs = OperandLeft(code_, i);
      const std::string rhs = OperandRight(code_, i + 2);
      if (!ContainsCostWord(lhs) && !ContainsCostWord(rhs)) continue;
      Report(i, "R2", "float-eq",
             "exact floating-point comparison on a cost/weight ('" + lhs +
                 (eq ? " == " : " != ") + rhs +
                 "'); use ApproxEq / IsInfiniteCost / IsZeroCost from "
                 "util/float_cmp.h");
    }
  }

  // R4 — rand(), time(NULL), printing from library code, naked new/delete.
  void RuleBannedConstructs() {
    for (const char* fn : {"rand", "srand"}) {
      size_t pos = 0;
      while ((pos = code_.find(fn, pos)) != std::string::npos) {
        const size_t at = pos;
        pos += std::string(fn).size();
        if (!IsWordAt(code_, at, fn)) continue;
        const size_t p = SkipSpaces(code_, pos);
        if (p < code_.size() && code_[p] == '(') {
          Report(at, "R4", "rand",
                 std::string(fn) +
                     "() is not seedable/deterministic; use util/rng.h");
        }
      }
    }
    {
      size_t pos = 0;
      while ((pos = code_.find("time", pos)) != std::string::npos) {
        const size_t at = pos;
        pos += 4;
        if (!IsWordAt(code_, at, "time")) continue;
        size_t p = SkipSpaces(code_, pos);
        if (p >= code_.size() || code_[p] != '(') continue;
        p = SkipSpaces(code_, p + 1);
        for (const char* arg : {"NULL", "nullptr", "0"}) {
          if (IsWordAt(code_, p, arg) || code_.compare(p, strlen(arg), arg) == 0) {
            const size_t q = SkipSpaces(code_, p + strlen(arg));
            if (q < code_.size() && code_[q] == ')') {
              Report(at, "R4", "time",
                     "wall-clock seeding breaks reproducibility; thread a "
                     "seed through util/rng.h");
            }
            break;
          }
        }
      }
    }
    if (!config_.allow_prints) {
      size_t pos = 0;
      while ((pos = code_.find("std::cout", pos)) != std::string::npos) {
        Report(pos, "R4", "print",
               "library code must not print (only tools/ and bench/ may); "
               "return data or use obs:: reporting");
        pos += 9;
      }
      for (const char* fn : {"printf", "fprintf", "puts", "putchar"}) {
        pos = 0;
        while ((pos = code_.find(fn, pos)) != std::string::npos) {
          const size_t at = pos;
          pos += std::string(fn).size();
          if (!IsWordAt(code_, at, fn)) continue;
          const size_t p = SkipSpaces(code_, pos);
          if (p < code_.size() && code_[p] == '(') {
            Report(at, "R4", "print",
                   "library code must not print (only tools/ and bench/ "
                   "may)");
          }
        }
      }
    }
    {
      size_t pos = 0;
      while ((pos = code_.find("new", pos)) != std::string::npos) {
        const size_t at = pos;
        pos += 3;
        if (!IsWordAt(code_, at, "new")) continue;
        const size_t p = SkipSpaces(code_, pos);
        if (p >= code_.size() ||
            (!IsIdentStart(code_[p]) && code_[p] != '(')) {
          continue;
        }
        Report(at, "R4", "new-delete",
               "naked new; use std::make_unique / containers (RAII)");
      }
      pos = 0;
      while ((pos = code_.find("delete", pos)) != std::string::npos) {
        const size_t at = pos;
        pos += 6;
        if (!IsWordAt(code_, at, "delete")) continue;
        if (PrevSignificant(code_, at) == '=') continue;  // = delete;
        Report(at, "R4", "new-delete",
               "naked delete; use std::make_unique / containers (RAII)");
      }
    }
  }

  // R5 — the result of a Status/Result-returning call must be consumed.
  void RuleUncheckedStatus() {
    for (const std::string& fn : index_.status_functions) {
      // Overload sets mixing Status and non-Status return types cannot be
      // told apart without type information; leave them to [[nodiscard]].
      if (index_.nonstatus_functions.count(fn) > 0) continue;
      size_t pos = 0;
      while ((pos = code_.find(fn, pos)) != std::string::npos) {
        const size_t at = pos;
        pos += fn.size();
        if (!IsWordAt(code_, at, fn)) continue;
        size_t open = SkipSpaces(code_, at + fn.size());
        if (open >= code_.size() || code_[open] != '(') continue;
        // Walk back over the object chain (obj. / ptr-> / ns:: / arr[i].).
        size_t p = at;
        while (p > 0) {
          const char c = code_[p - 1];
          if (IsIdentChar(c) || c == '.' || c == ':' || c == ']' ||
              c == '[' || (c == '>' && p > 1 && code_[p - 2] == '-') ||
              (c == '-' )) {
            --p;
          } else {
            break;
          }
        }
        const char before = PrevSignificant(code_, p);
        if (before != ';' && before != '{' && before != '}' &&
            before != '\0') {
          continue;
        }
        const size_t close = SkipBalanced(code_, open, '(', ')');
        if (close == std::string::npos) continue;
        const size_t next = SkipSpaces(code_, close);
        if (next >= code_.size() || code_[next] != ';') continue;
        Report(at, "R5", "status",
               "result of Status-returning call '" + fn +
                   "(...)' is discarded; check it, return it, or cast to "
                   "(void) with a waiver");
      }
    }
  }

  // R6 — by-reference captures mutated inside lambdas handed to a
  // concurrency entry point: ParallelFor bodies run on worker threads, and
  // tasks posted to a WorkerPool (Post) run on pool threads.
  void RuleSharedMutableCapture() {
    RuleSharedMutableCaptureFor("ParallelFor");
    RuleSharedMutableCaptureFor("Post");
  }

  void RuleSharedMutableCaptureFor(const std::string& entry) {
    size_t pos = 0;
    while ((pos = code_.find(entry, pos)) != std::string::npos) {
      const size_t at = pos;
      pos += entry.size();
      if (!IsWordAt(code_, at, entry)) continue;
      // Skip the definition/declaration itself (preceded by its return
      // type: 'void ParallelFor', 'bool Post').
      {
        size_t p = at;
        while (p > 0 &&
               std::isspace(static_cast<unsigned char>(code_[p - 1])) != 0) {
          --p;
        }
        if (p >= 4 && code_.compare(p - 4, 4, "void") == 0) continue;
        if (p >= 4 && code_.compare(p - 4, 4, "bool") == 0) continue;
      }
      const size_t call_open = SkipSpaces(code_, at + entry.size());
      if (call_open >= code_.size() || code_[call_open] != '(') continue;
      const size_t call_close = SkipBalanced(code_, call_open, '(', ')');
      if (call_close == std::string::npos) continue;
      const std::string args =
          code_.substr(call_open, call_close - call_open);
      const size_t cap_open = args.find('[');
      if (cap_open == std::string::npos) continue;
      const size_t cap_close = args.find(']', cap_open);
      if (cap_close == std::string::npos) continue;
      const std::string captures =
          args.substr(cap_open + 1, cap_close - cap_open - 1);
      if (captures.find('&') == std::string::npos) continue;
      // Parameter list, when present (posted tasks are usually param-less:
      // `Post([&] { ... })`).
      const size_t param_open = SkipSpaces(args, cap_close + 1);
      std::set<std::string> params;
      size_t body_from = cap_close + 1;
      if (param_open < args.size() && args[param_open] == '(') {
        const size_t param_close = SkipBalanced(args, param_open, '(', ')');
        if (param_close == std::string::npos) continue;
        std::string param_text =
            args.substr(param_open + 1, param_close - param_open - 2);
        std::string word;
        for (char c : param_text + ",") {
          if (IsIdentChar(c)) {
            word += c;
          } else if (!word.empty()) {
            params.insert(word);  // keep every token; over-approximation
            word.clear();
          }
        }
        body_from = param_close;
      }
      size_t body_open = args.find('{', body_from);
      if (body_open == std::string::npos) continue;
      const size_t body_close = SkipBalanced(args, body_open, '{', '}');
      if (body_close == std::string::npos) continue;
      const std::string body =
          args.substr(body_open, body_close - body_open);
      const size_t body_abs = call_open + body_open;
      CheckBodyMutations(body, body_abs, params, entry);
    }
  }

  bool DeclaredInBody(const std::string& body, const std::string& name) {
    // TYPE name =/;/{/( — enough to recognize locals, incl. auto& refs.
    const std::regex decl(
        "[;{(]\\s*(const\\s+)?[A-Za-z_][\\w:]*(<[^;{}]*>)?\\s*[&*]?\\s+" +
        name + "\\s*[\\[=;{(]");
    return std::regex_search(body, decl);
  }

  void CheckBodyMutations(const std::string& body, size_t body_abs,
                          const std::set<std::string>& params,
                          const std::string& entry) {
    static const std::regex kMutation(
        R"((\+\+|--)?\s*\b([A-Za-z_]\w*)\s*(\+\+|--|[+\-*/|&^]?=(?!=)|(?:\.|->)(?:push_back|emplace_back|emplace|insert|erase|clear|pop_back|resize|assign|Merge|Add)\s*\())");
    for (std::sregex_iterator it(body.begin(), body.end(), kMutation), end;
         it != end; ++it) {
      const std::smatch& m = *it;
      const std::string name = m[2].str();
      const size_t name_pos = static_cast<size_t>(m.position(2));
      // Member of / element of something else: fresh[i].queries = ...
      if (name_pos > 0) {
        const char before = PrevSignificant(body, name_pos);
        if (before == '.' || before == '>' || before == ']') continue;
      }
      // Indexed by the worker slot: statuses[i] = ... (the regex cannot
      // match that shape for '=', but ++hits[i] can reach here).
      const size_t after = name_pos + name.size();
      if (after < body.size() && SkipSpaces(body, after) < body.size() &&
          body[SkipSpaces(body, after)] == '[') {
        continue;
      }
      if (params.count(name) > 0) continue;
      if (index_.threadsafe_symbols.count(name) > 0) continue;
      if (DeclaredInBody(body, name)) continue;
      if (name == "this") continue;
      Report(body_abs + name_pos, "R6", "capture",
             "'" + name + "' is captured by reference and mutated inside a " +
                 entry +
                 " body without per-index addressing, an atomic, or a mutex "
                 "— data-race hazard (see the TSan CI job)");
    }
  }

  // R7 — condition-variable waits must use the predicate overload; the bare
  // overload returns on spurious wakeups and on signals sent before the
  // wait, so callers must re-check state in a loop the predicate encodes.
  void RuleCvWait() {
    static const struct {
      const char* method;
      int min_commas;  ///< top-level commas the predicate overload carries
    } kWaits[] = {
        {"wait", 1},      {"wait_for", 2}, {"wait_until", 2},
        {"Wait", 1},      {"WaitFor", 2},  {"WaitUntil", 2},
    };
    for (const auto& w : kWaits) {
      const std::string method = w.method;
      size_t pos = 0;
      while ((pos = code_.find(method, pos)) != std::string::npos) {
        const size_t at = pos;
        pos += method.size();
        if (!IsWordAt(code_, at, method)) continue;
        // Member access on a known condition variable.
        size_t p = at;
        while (p > 0 &&
               std::isspace(static_cast<unsigned char>(code_[p - 1])) != 0) {
          --p;
        }
        if (p > 0 && code_[p - 1] == '.') {
          --p;
        } else if (p > 1 && code_[p - 1] == '>' && code_[p - 2] == '-') {
          p -= 2;
        } else {
          continue;
        }
        const std::string receiver = ReceiverBefore(code_, p);
        if (receiver.empty() ||
            index_.condvar_symbols.count(receiver) == 0) {
          continue;
        }
        const size_t open = SkipSpaces(code_, at + method.size());
        if (open >= code_.size() || code_[open] != '(') continue;
        const size_t close = SkipBalanced(code_, open, '(', ')');
        if (close == std::string::npos) continue;
        const std::string args =
            code_.substr(open + 1, close - open - 2);
        const int commas =
            static_cast<int>(SplitTopLevel(args).size()) - 1;
        if (commas >= w.min_commas) continue;
        Report(at, "R7", "cv-wait",
               "'" + receiver + "." + method +
                   "' without a predicate: spurious wakeups and early "
                   "notifies make the bare overload a lost-signal bug; pass "
                   "the predicate overload (it re-checks under the lock)");
      }
    }
  }

  // R8 — every mutable, non-thread-safe member of a mutex-owning class must
  // carry MC3_GUARDED_BY (or a guard-ok waiver naming the ownership rule).
  void RuleGuardedMembers() {
    size_t pos = 0;
    while (pos < code_.size()) {
      const size_t ck = code_.find("class", pos);
      const size_t sk = code_.find("struct", pos);
      const size_t at = std::min(ck, sk);
      if (at == std::string::npos) break;
      const char* kw = (at == ck) ? "class" : "struct";
      pos = at + strlen(kw);
      if (!IsWordAt(code_, at, kw)) continue;
      if (PrecededByWord(code_, at, "enum")) continue;
      CheckClassBody(at + strlen(kw));
    }
  }

  void CheckClassBody(size_t p) {
    // Class head: skip attribute macros (MC3_SCOPED_CAPABILITY, possibly
    // with arguments) and `final`; a second plain identifier means this is
    // a variable declaration (`struct sockaddr_in addr{}`), not a
    // definition.
    p = SkipSpaces(code_, p);
    std::string name;
    while (p < code_.size() && IsIdentStart(code_[p])) {
      size_t e = p;
      while (e < code_.size() && IsIdentChar(code_[e])) ++e;
      const std::string word = code_.substr(p, e - p);
      p = SkipSpaces(code_, e);
      if (LooksLikeMacro(word) || word == "final" || word == "alignas") {
        if (p < code_.size() && code_[p] == '(') {
          p = SkipBalanced(code_, p, '(', ')');
          if (p == std::string::npos) return;
          p = SkipSpaces(code_, p);
        }
        continue;
      }
      if (!name.empty()) return;
      name = word;
    }
    if (name.empty()) return;
    if (p < code_.size() && code_[p] == ':' &&
        (p + 1 >= code_.size() || code_[p + 1] != ':')) {
      // Base-class list: scan to the body.
      while (p < code_.size() && code_[p] != '{' && code_[p] != ';') ++p;
    }
    if (p >= code_.size() || code_[p] != '{') return;
    const size_t body_end = SkipBalanced(code_, p, '{', '}');
    if (body_end == std::string::npos) return;

    // Depth-1 member segments: terminated by ';', with balanced inner
    // braces skipped (a '(' before the brace marks a function definition,
    // whose body is dropped; otherwise it is brace-initialization and the
    // segment continues to the ';').
    struct Member {
      size_t pos = std::string::npos;
      std::string text;
    };
    std::vector<Member> members;
    Member seg;
    int paren_depth = 0;
    size_t i = p + 1;
    while (i + 1 < body_end) {
      const char c = code_[i];
      if (c == '{') {
        const size_t past = SkipBalanced(code_, i, '{', '}');
        if (past == std::string::npos) return;
        if (seg.text.find('(') != std::string::npos) {
          seg = Member{};
          paren_depth = 0;
        }
        i = past;
        continue;
      }
      if (c == '(') ++paren_depth;
      if (c == ')') --paren_depth;
      if (c == ';' && paren_depth == 0) {
        if (!seg.text.empty()) members.push_back(seg);
        seg = Member{};
        ++i;
        continue;
      }
      if (c == ':' && paren_depth == 0) {
        if (i + 1 < body_end && code_[i + 1] == ':') {
          seg.text += "::";
          i += 2;
          continue;
        }
        const std::string t = TrimCopy(seg.text);
        if (t == "public" || t == "private" || t == "protected") {
          seg = Member{};
        } else {
          seg.text += c;
        }
        ++i;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) == 0) {
        if (seg.pos == std::string::npos) seg.pos = i;
        seg.text += c;
      } else if (!seg.text.empty() && seg.text.back() != ' ') {
        seg.text += ' ';
      }
      ++i;
    }

    const auto is_owned_mutex = [](const std::string& text) {
      if (text.find('&') != std::string::npos ||
          text.find('*') != std::string::npos) {
        return false;
      }
      for (const char* word : {"mutex", "shared_mutex", "recursive_mutex",
                               "timed_mutex", "Mutex"}) {
        if (ContainsWord(text, word)) return true;
      }
      return false;
    };
    bool has_mutex = false;
    for (const Member& m : members) {
      if (is_owned_mutex(m.text)) has_mutex = true;
    }
    if (!has_mutex) return;

    for (const Member& m : members) {
      std::string text = TrimCopy(m.text);
      for (const char* prefix : {"mutable ", "inline "}) {
        if (text.rfind(prefix, 0) == 0) text = text.substr(strlen(prefix));
      }
      // Immutable, type-only, or non-member segments need no guard.
      bool skip = false;
      for (const char* lead :
           {"static", "using", "typedef", "friend", "template", "enum",
            "struct", "class", "const", "constexpr", "operator", "public",
            "private", "protected", "explicit", "virtual"}) {
        if (IsWordAt(text, 0, lead)) skip = true;
      }
      if (skip) continue;
      if (text.find("MC3_GUARDED_BY") != std::string::npos ||
          text.find("MC3_PT_GUARDED_BY") != std::string::npos) {
        continue;
      }
      // Internally synchronized / owner-joined types are exempt.
      bool exempt = false;
      for (const char* word :
           {"atomic", "mutex", "shared_mutex", "recursive_mutex",
            "timed_mutex", "Mutex", "condition_variable",
            "condition_variable_any", "CondVar", "once_flag", "thread",
            "jthread", "Counter", "Gauge", "Histogram", "BoundedQueue",
            "WorkerPool", "MutexLock", "UniqueLock", "EpochManager",
            "VersionedPublisher", "ReadGuard", "ReaderRegistration"}) {
        if (ContainsWord(text, word)) exempt = true;
      }
      if (exempt) continue;
      if (text.find('(') != std::string::npos) continue;  // function decl
      // Declared member name: trailing identifier of the declarator part.
      std::string decl = text;
      const size_t cut = decl.find_first_of("=:[{");
      if (cut != std::string::npos) decl = decl.substr(0, cut);
      decl = TrimCopy(decl);
      size_t tail = decl.size();
      while (tail > 0 && IsIdentChar(decl[tail - 1])) --tail;
      const std::string member = decl.substr(tail);
      Report(m.pos, "R8", "guard",
             "member '" + (member.empty() ? text : member) + "' of '" +
                 name +
                 "' (a mutex-owning class) has no MC3_GUARDED_BY "
                 "annotation; annotate it, make it atomic/const, or waive "
                 "with guard-ok(<ownership rule>)");
    }
  }

  // R9 — detached threads are unjoinable and outlive their state; directly
  // declared std::threads must be joined somewhere in the scanned file set.
  void RuleThreadDetach() {
    size_t pos = 0;
    while ((pos = code_.find("detach", pos)) != std::string::npos) {
      const size_t at = pos;
      pos += 6;
      if (!IsWordAt(code_, at, "detach")) continue;
      const size_t open = SkipSpaces(code_, at + 6);
      if (open >= code_.size() || code_[open] != '(') continue;
      size_t p = at;
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(code_[p - 1])) != 0) {
        --p;
      }
      const bool member =
          (p > 0 && code_[p - 1] == '.') ||
          (p > 1 && code_[p - 1] == '>' && code_[p - 2] == '-');
      if (!member) continue;
      Report(at, "R9", "detach",
             "detached thread: nothing can join it, so it races process "
             "shutdown and any state it touches; keep the std::thread and "
             "join it on the owner's shutdown path");
    }
    pos = 0;
    while ((pos = code_.find("std::thread", pos)) != std::string::npos) {
      const size_t at = pos;
      pos += 11;
      if (at > 0 && IsIdentChar(code_[at - 1])) continue;
      if (pos < code_.size() && IsIdentChar(code_[pos])) continue;
      // Non-owning pointer/reference declarators are out of scope.
      const size_t after = SkipSpaces(code_, pos);
      if (after < code_.size() &&
          (code_[after] == '&' || code_[after] == '*')) {
        continue;
      }
      const std::string decl_name = DeclaredName(code_, pos);
      if (decl_name.empty()) continue;
      if (index_.joined_symbols.count(decl_name) > 0) continue;
      Report(at, "R9", "detach",
             "'std::thread " + decl_name +
                 "' is never join()ed in the scanned files; join it on the "
                 "owner's shutdown path or waive with detach-ok(<reason>)");
    }
  }

  const std::string& path_;
  const std::string code_;
  const SymbolIndex& index_;
  const FileConfig& config_;
  std::map<int, std::set<std::string>> waived_;
  std::vector<Finding> findings_;
};

}  // namespace

std::string Scrub(const std::string& content) {
  return ScrubImpl(content).code;
}

std::map<int, std::string> CommentsByLine(const std::string& content) {
  return ScrubImpl(content).comments;
}

void SymbolIndex::ResolveAliases() {
  // Fixpoint over alias-of-alias chains.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, rhs] : alias_defs) {
      if (unordered_aliases.count(name) > 0) continue;
      bool unordered = rhs.find("unordered_map") != std::string::npos ||
                       rhs.find("unordered_set") != std::string::npos;
      for (const std::string& alias : unordered_aliases) {
        if (unordered) break;
        size_t pos = rhs.find(alias);
        while (pos != std::string::npos) {
          if (IsWordAt(rhs, pos, alias)) {
            unordered = true;
            break;
          }
          pos = rhs.find(alias, pos + 1);
        }
      }
      if (unordered) {
        unordered_aliases.insert(name);
        changed = true;
      }
    }
  }
  for (const std::string& content : indexed_contents) {
    for (const std::string& alias : unordered_aliases) {
      CollectDecls(content, alias, &unordered_symbols);
    }
  }
}

void IndexFile(const std::string& content, SymbolIndex* index) {
  const std::string code = Scrub(content);
  // Type aliases: using NAME = RHS;
  size_t pos = 0;
  while ((pos = code.find("using", pos)) != std::string::npos) {
    const size_t at = pos;
    pos += 5;
    if (!IsWordAt(code, at, "using")) continue;
    size_t p = SkipSpaces(code, at + 5);
    size_t end = p;
    while (end < code.size() && IsIdentChar(code[end])) ++end;
    if (end == p) continue;
    const std::string name = code.substr(p, end - p);
    p = SkipSpaces(code, end);
    if (p >= code.size() || code[p] != '=') continue;
    const size_t semi = code.find(';', p);
    if (semi == std::string::npos) continue;
    index->alias_defs[name] = code.substr(p + 1, semi - p - 1);
  }
  for (const char* type : {"unordered_map", "unordered_set"}) {
    CollectDecls(code, type, &index->unordered_symbols);
  }
  CollectReturning(code, "Status", /*templated=*/false,
                   &index->status_functions);
  CollectReturning(code, "Result", /*templated=*/true,
                   &index->status_functions);
  CollectNonStatusFunctions(code, &index->nonstatus_functions);
  for (const char* type :
       {"std::atomic", "std::mutex", "std::shared_mutex", "std::once_flag",
        "std::condition_variable", "obs::Counter", "obs::Gauge",
        "obs::Histogram", "Counter", "Gauge", "Histogram", "Mutex",
        "CondVar", "BoundedQueue", "WorkerPool"}) {
    CollectDecls(code, type, &index->threadsafe_symbols);
  }
  // Condition-variable receivers for R7. "CondVar" also matches the tail of
  // util::CondVar; "std::condition_variable" skips the _any suffix on its
  // own (the following ident char fails the boundary check), so list both.
  for (const char* type : {"std::condition_variable",
                           "std::condition_variable_any", "CondVar"}) {
    CollectDecls(code, type, &index->condvar_symbols);
  }
  // MC3_REQUIRES annotations on declarations: `Ret Name(args) MC3_REQUIRES(
  // mu)` records Name -> {mu} so R10 can seed the held set at the
  // out-of-line definition, where the attribute is not repeated.
  pos = 0;
  while ((pos = code.find("MC3_REQUIRES", pos)) != std::string::npos) {
    const size_t at = pos;
    pos += 12;
    if (!IsWordAt(code, at, "MC3_REQUIRES")) continue;
    const size_t open = SkipSpaces(code, at + 12);
    if (open >= code.size() || code[open] != '(') continue;
    const size_t close = SkipBalanced(code, open, '(', ')');
    if (close == std::string::npos) continue;
    // Walk back over trailing qualifiers to the parameter list.
    size_t p = at;
    while (true) {
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(code[p - 1])) != 0) {
        --p;
      }
      size_t q = p;
      while (q > 0 && IsIdentChar(code[q - 1])) --q;
      const std::string word = code.substr(q, p - q);
      if (word == "const" || word == "noexcept" || word == "override" ||
          word == "final") {
        p = q;
        continue;
      }
      break;
    }
    if (p == 0 || code[p - 1] != ')') continue;
    int depth = 0;
    size_t q = p;
    while (q > 0) {
      --q;
      if (code[q] == ')') ++depth;
      if (code[q] == '(' && --depth == 0) break;
    }
    if (q == 0 || code[q] != '(') continue;
    while (q > 0 &&
           std::isspace(static_cast<unsigned char>(code[q - 1])) != 0) {
      --q;
    }
    size_t name_end = q;
    while (q > 0 && IsIdentChar(code[q - 1])) --q;
    if (name_end == q) continue;  // lambda `[..]() MC3_REQUIRES(..)` etc.
    const std::string fn = code.substr(q, name_end - q);
    for (const std::string& arg :
         SplitTopLevel(code.substr(open + 1, close - open - 2))) {
      const std::string mu = TrimCopy(arg);
      if (!mu.empty()) index->requires_map[fn].push_back(mu);
    }
  }
  index->indexed_contents.push_back(code);
}

void CollectJoins(const std::string& content, SymbolIndex* index) {
  const std::string code = Scrub(content);
  size_t pos = 0;
  while ((pos = code.find("join", pos)) != std::string::npos) {
    const size_t at = pos;
    pos += 4;
    size_t len = 0;
    if (IsWordAt(code, at, "join")) {
      len = 4;
    } else if (IsWordAt(code, at, "joinable")) {
      len = 8;
    } else {
      continue;
    }
    const size_t open = SkipSpaces(code, at + len);
    if (open >= code.size() || code[open] != '(') continue;
    // Member access only: x.join() / x->join().
    size_t p = at;
    while (p > 0 &&
           std::isspace(static_cast<unsigned char>(code[p - 1])) != 0) {
      --p;
    }
    if (p > 0 && code[p - 1] == '.') {
      --p;
    } else if (p > 1 && code[p - 1] == '>' && code[p - 2] == '-') {
      p -= 2;
    } else {
      continue;
    }
    const std::string receiver = ReceiverBefore(code, p);
    if (!receiver.empty()) index->joined_symbols.insert(receiver);
  }
}

std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content,
                              const SymbolIndex& index,
                              const FileConfig& config) {
  const ScrubResult scrubbed = ScrubImpl(content);
  Linter linter(path, scrubbed, index, config);
  return linter.Run();
}

std::vector<LockEdge> CollectLockEdges(const std::string& path,
                                       const std::string& content,
                                       const SymbolIndex& index) {
  const ScrubResult scrubbed = ScrubImpl(content);
  const std::string& code = scrubbed.code;
  // Acquisition lines waived with lock-order-ok (a waiver on a comment-only
  // line covers the next code line, as for every other rule).
  std::set<int> waived_lines;
  {
    const Waivers waivers = ExtractWaivers(path, scrubbed);
    for (const auto& [line, tags] : waivers.by_line) {
      if (tags.count("lock-order") == 0) continue;
      waived_lines.insert(line);
      if (CodeLineBlank(code, line)) waived_lines.insert(line + 1);
    }
  }

  // File stem as the fallback qualifier for free-function mutexes.
  std::string stem = path;
  if (const size_t slash = stem.find_last_of('/');
      slash != std::string::npos) {
    stem = stem.substr(slash + 1);
  }
  if (const size_t dot = stem.find('.'); dot != std::string::npos) {
    stem = stem.substr(0, dot);
  }

  std::vector<LockEdge> edges;
  std::string current_class = stem;
  struct ClassScope {
    int depth;
    std::string saved;
  };
  std::vector<ClassScope> class_stack;
  struct Held {
    int depth;          ///< released when the scan leaves this brace depth
    std::string node;
    std::string guard;  ///< guard variable, for UniqueLock Lock()/Unlock()
  };
  std::vector<Held> held;
  std::map<std::string, std::string> guards;  // guard variable -> node
  int depth = 0;

  const auto normalize = [](const std::string& m) {
    std::string out;
    for (char c : m) {
      if (std::isspace(static_cast<unsigned char>(c)) == 0) out += c;
    }
    if (out.rfind("this->", 0) == 0) out = out.substr(6);
    while (!out.empty() && (out.front() == '&' || out.front() == '*')) {
      out.erase(out.begin());
    }
    return out;
  };
  const auto qualify = [&current_class](const std::string& m) {
    return current_class + "::" + m;
  };
  const auto already_held = [&held](const std::string& node) {
    for (const Held& h : held) {
      if (h.node == node) return true;
    }
    return false;
  };
  const auto acquire = [&](const std::string& node, const std::string& guard,
                           size_t at) {
    const int line = LineOf(code, at);
    const bool waived = waived_lines.count(line) > 0;
    for (const Held& h : held) {
      if (h.node == node) continue;
      edges.push_back({h.node, node, path, line, waived});
    }
    held.push_back({depth, node, guard});
  };
  const auto release = [&held](const std::string& node) {
    for (size_t k = held.size(); k-- > 0;) {
      if (held[k].node == node) {
        held.erase(held.begin() + static_cast<std::ptrdiff_t>(k));
        return;
      }
    }
  };
  // True when a function body opens after the parameter list ending at `pp`
  // (skipping cv-qualifiers and attribute macros with arguments). Any other
  // character — ';' of a declaration, operators of a call expression —
  // means no body.
  const auto body_follows = [&code](size_t pp) {
    size_t p = SkipSpaces(code, pp);
    while (p < code.size()) {
      if (code[p] == '{') return true;
      if (!IsIdentStart(code[p])) return false;
      size_t e = p;
      while (e < code.size() && IsIdentChar(code[e])) ++e;
      p = SkipSpaces(code, e);
      if (p < code.size() && code[p] == '(') {
        const size_t past = SkipBalanced(code, p, '(', ')');
        if (past == std::string::npos) return false;
        p = SkipSpaces(code, past);
      }
    }
    return false;
  };
  const auto seed = [&](const std::string& node) {
    if (!already_held(node)) held.push_back({depth + 1, node, ""});
  };

  static const std::set<std::string> kGuardTypes = {
      "MutexLock", "UniqueLock",  "lock_guard",
      "unique_lock", "scoped_lock", "shared_lock"};

  size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (c == '{') {
      ++depth;
      ++i;
      continue;
    }
    if (c == '}') {
      --depth;
      while (!held.empty() && held.back().depth > depth) held.pop_back();
      while (!class_stack.empty() && class_stack.back().depth == depth) {
        current_class = class_stack.back().saved;
        class_stack.pop_back();
      }
      ++i;
      continue;
    }
    if (!IsIdentStart(c) || (i > 0 && IsIdentChar(code[i - 1]))) {
      ++i;
      continue;
    }
    size_t e = i;
    while (e < code.size() && IsIdentChar(code[e])) ++e;
    const std::string w = code.substr(i, e - i);

    // Class definitions scope the mutex names: `mu_` of BoundedQueue and
    // `mu_` of WalWriter are different nodes.
    if (w == "class" || w == "struct") {
      if (!PrecededByWord(code, i, "enum")) {
        size_t p = SkipSpaces(code, e);
        std::string cname;
        bool plausible = true;
        while (p < code.size() && IsIdentStart(code[p])) {
          size_t e2 = p;
          while (e2 < code.size() && IsIdentChar(code[e2])) ++e2;
          const std::string word = code.substr(p, e2 - p);
          p = SkipSpaces(code, e2);
          if (LooksLikeMacro(word) || word == "final" || word == "alignas") {
            if (p < code.size() && code[p] == '(') {
              const size_t past = SkipBalanced(code, p, '(', ')');
              if (past == std::string::npos) {
                plausible = false;
                break;
              }
              p = SkipSpaces(code, past);
            }
            continue;
          }
          if (!cname.empty()) {
            plausible = false;  // `struct sockaddr_in addr{}`
            break;
          }
          cname = word;
        }
        if (plausible && !cname.empty()) {
          if (p < code.size() && code[p] == ':' &&
              (p + 1 >= code.size() || code[p + 1] != ':')) {
            while (p < code.size() && code[p] != '{' && code[p] != ';') ++p;
          }
          if (p < code.size() && code[p] == '{') {
            class_stack.push_back({depth, current_class});
            current_class = cname;
          }
        }
      }
      i = e;
      continue;
    }

    // Scoped lock guards: `util::MutexLock lock(mu_);`,
    // `std::lock_guard<std::mutex> lock(mu);`, multi-mutex scoped_lock.
    if (kGuardTypes.count(w) > 0) {
      size_t p = SkipSpaces(code, e);
      if (p < code.size() && code[p] == '<') {
        p = SkipBalanced(code, p, '<', '>');
        if (p == std::string::npos) {
          i = e;
          continue;
        }
        p = SkipSpaces(code, p);
      }
      if (p < code.size() && IsIdentStart(code[p])) {
        size_t e2 = p;
        while (e2 < code.size() && IsIdentChar(code[e2])) ++e2;
        const std::string guard_name = code.substr(p, e2 - p);
        const size_t open = SkipSpaces(code, e2);
        if (open < code.size() && code[open] == '(') {
          const size_t close = SkipBalanced(code, open, '(', ')');
          if (close != std::string::npos) {
            const std::string args =
                code.substr(open + 1, close - open - 2);
            // adopt_lock: already held elsewhere; defer_lock: not held.
            if (args.find("adopt_lock") == std::string::npos &&
                args.find("defer_lock") == std::string::npos) {
              for (const std::string& part : SplitTopLevel(args)) {
                const std::string mu = normalize(part);
                if (mu.empty()) continue;
                const std::string node = qualify(mu);
                acquire(node, guard_name, i);
                guards[guard_name] = node;
              }
            }
          }
        }
      }
      i = e;
      continue;
    }

    // Manual lock()/unlock() member calls — including relocks through a
    // UniqueLock guard variable (`lock.Unlock(); ...; lock.Lock();`).
    if (w == "lock" || w == "Lock" || w == "unlock" || w == "Unlock") {
      size_t p0 = i;
      while (p0 > 0 &&
             std::isspace(static_cast<unsigned char>(code[p0 - 1])) != 0) {
        --p0;
      }
      size_t recv_end = std::string::npos;
      if (p0 > 0 && code[p0 - 1] == '.') {
        recv_end = p0 - 1;
      } else if (p0 > 1 && code[p0 - 1] == '>' && code[p0 - 2] == '-') {
        recv_end = p0 - 2;
      }
      if (recv_end != std::string::npos) {
        const std::string receiver = ReceiverBefore(code, recv_end);
        const size_t open = SkipSpaces(code, e);
        if (!receiver.empty() && open < code.size() && code[open] == '(') {
          const size_t close = SkipBalanced(code, open, '(', ')');
          // A mutex lock()/unlock() returns void, so the call is a whole
          // statement; a `.lock()` whose value is consumed is something
          // else (std::weak_ptr::lock upgrades to a shared_ptr).
          const bool statement =
              close != std::string::npos &&
              SkipSpaces(code, close) < code.size() &&
              code[SkipSpaces(code, close)] == ';' &&
              [&] {
                const size_t recv_start = code.rfind(receiver, recv_end);
                if (recv_start == std::string::npos) return false;
                const char before = PrevSignificant(code, recv_start);
                // Statement position, possibly through a member chain
                // (`this->mu_.lock();`) — but not `x = weak.lock();`.
                return before == ';' || before == '{' || before == '}' ||
                       before == '.' || before == '>' || before == '\0';
              }();
          if (statement &&
              TrimCopy(code.substr(open + 1, close - open - 2)).empty()) {
            const auto git = guards.find(receiver);
            const bool via_guard = git != guards.end();
            const std::string node =
                via_guard ? git->second : qualify(receiver);
            if (w == "lock" || w == "Lock") {
              if (!already_held(node)) {
                acquire(node, via_guard ? receiver : "", i);
              }
            } else {
              release(node);
            }
          }
        }
      }
      i = e;
      continue;
    }

    // A lambda (or inline definition) annotated MC3_REQUIRES holds its
    // mutexes for the body that follows.
    if (w == "MC3_REQUIRES") {
      const size_t open = SkipSpaces(code, e);
      if (open < code.size() && code[open] == '(') {
        const size_t close = SkipBalanced(code, open, '(', ')');
        if (close != std::string::npos && body_follows(close)) {
          for (const std::string& part :
               SplitTopLevel(code.substr(open + 1, close - open - 2))) {
            const std::string mu = normalize(part);
            if (!mu.empty()) seed(qualify(mu));
          }
        }
      }
      i = e;
      continue;
    }

    // Function definitions: a qualified head (`Server::Join(...) {`) sets
    // the class context, and a name carrying MC3_REQUIRES on its (header)
    // declaration seeds the held set — attributes are not repeated
    // out-of-line.
    {
      size_t p = SkipSpaces(code, e);
      std::string qualifier;
      std::string fn;
      size_t after_name = e;
      if (p + 1 < code.size() && code[p] == ':' && code[p + 1] == ':') {
        const size_t q = SkipSpaces(code, p + 2);
        if (q < code.size() && IsIdentStart(code[q])) {
          size_t e2 = q;
          while (e2 < code.size() && IsIdentChar(code[e2])) ++e2;
          qualifier = w;
          fn = code.substr(q, e2 - q);
          after_name = e2;
        }
      } else if (p < code.size() && code[p] == '(') {
        fn = w;
      }
      if (!fn.empty()) {
        const size_t open = SkipSpaces(code, after_name);
        if (open < code.size() && code[open] == '(') {
          const size_t close = SkipBalanced(code, open, '(', ')');
          if (close != std::string::npos && body_follows(close)) {
            if (!qualifier.empty()) current_class = qualifier;
            const auto rit = index.requires_map.find(fn);
            if (rit != index.requires_map.end()) {
              for (const std::string& raw : rit->second) {
                seed(qualify(normalize(raw)));
              }
            }
          }
        }
      }
    }
    i = e;
  }
  return edges;
}

std::vector<LockCycle> FindLockCycles(const std::vector<LockEdge>& edges) {
  std::map<std::string, std::set<std::string>> adj;
  std::map<std::pair<std::string, std::string>, const LockEdge*> info;
  for (const LockEdge& e : edges) {
    if (e.waived || e.from == e.to) continue;
    adj[e.from].insert(e.to);
    adj[e.to];  // make sure every node exists before the DFS walks it
    info.emplace(std::make_pair(e.from, e.to), &e);
  }
  std::vector<LockCycle> cycles;
  std::set<std::vector<std::string>> seen;
  std::map<std::string, int> color;  // 0 white, 1 on path, 2 done
  std::vector<std::string> path;
  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = 1;
    path.push_back(u);
    for (const std::string& v : adj[u]) {
      if (color[v] == 1) {
        const auto at = std::find(path.begin(), path.end(), v);
        std::vector<std::string> nodes(at, path.end());
        // Canonical rotation so each cycle is reported once.
        const auto min_it = std::min_element(nodes.begin(), nodes.end());
        std::rotate(nodes.begin(), min_it, nodes.end());
        if (seen.insert(nodes).second) {
          const LockEdge* back = info.at({u, v});
          cycles.push_back({nodes, back->file, back->line});
        }
      } else if (color[v] == 0) {
        dfs(v);
      }
    }
    path.pop_back();
    color[u] = 2;
  };
  for (const auto& [node, targets] : adj) {
    (void)targets;
    if (color[node] == 0) dfs(node);
  }
  return cycles;
}

Finding CycleFinding(const LockCycle& cycle) {
  std::string chain;
  for (const std::string& node : cycle.nodes) chain += node + " -> ";
  if (!cycle.nodes.empty()) chain += cycle.nodes.front();
  return {cycle.file, cycle.line, "R10", "lock-order",
          "lock-order cycle (potential deadlock): " + chain +
              "; acquire these mutexes in one global order everywhere, or "
              "waive an acquisition site with lock-order-ok(<reason>)"};
}

std::vector<Finding> LintSnippet(const std::string& path,
                                 const std::string& content,
                                 const FileConfig& config) {
  SymbolIndex index;
  IndexFile(content, &index);
  CollectJoins(content, &index);
  index.ResolveAliases();
  std::vector<Finding> findings = LintFile(path, content, index, config);
  for (const LockCycle& cycle :
       FindLockCycles(CollectLockEdges(path, content, index))) {
    findings.push_back(CycleFinding(cycle));
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::string HeaderTuSource(const std::string& header_include_path) {
  return "// Generated by mc3_lint --emit-header-tus (rule R3): compiling\n"
         "// this TU proves the header is self-contained.\n"
         "#include \"" +
         header_include_path + "\"\n";
}

std::string FindingsToJson(const std::vector<Finding>& findings,
                           size_t files_scanned,
                           const std::vector<LockEdge>& lock_edges,
                           const std::vector<LockCycle>& lock_cycles,
                           const std::vector<std::string>& skipped_files) {
  obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema").String("mc3.lint_report/2");
  writer.Key("files_scanned").Int(files_scanned);
  writer.Key("num_findings").Int(findings.size());
  // Every rule appears in the counts, zeros included, so report consumers
  // can distinguish "clean" from "rule did not run".
  std::map<std::string, uint64_t> by_rule;
  for (const char* rule : {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8",
                           "R9", "R10", "W0"}) {
    by_rule[rule] = 0;
  }
  for (const Finding& f : findings) ++by_rule[f.rule];
  writer.Key("findings_by_rule").BeginObject();
  for (const auto& [rule, count] : by_rule) {
    writer.Key(rule).Int(count);
  }
  writer.EndObject();
  writer.Key("findings").BeginArray();
  for (const Finding& f : findings) {
    writer.BeginObject();
    writer.Key("file").String(f.file);
    writer.Key("line").Int(static_cast<uint64_t>(f.line));
    writer.Key("rule").String(f.rule);
    writer.Key("tag").String(f.tag);
    writer.Key("message").String(f.message);
    writer.EndObject();
  }
  writer.EndArray();
  // The full lock-acquisition graph (rule R10), including waived edges, so
  // the deadlock surface is auditable from the artifact alone.
  writer.Key("lock_graph").BeginObject();
  writer.Key("edges").BeginArray();
  for (const LockEdge& e : lock_edges) {
    writer.BeginObject();
    writer.Key("from").String(e.from);
    writer.Key("to").String(e.to);
    writer.Key("file").String(e.file);
    writer.Key("line").Int(static_cast<uint64_t>(e.line));
    writer.Key("waived").Bool(e.waived);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("cycles").BeginArray();
  for (const LockCycle& cycle : lock_cycles) {
    writer.BeginObject();
    writer.Key("nodes").BeginArray();
    for (const std::string& node : cycle.nodes) writer.String(node);
    writer.EndArray();
    writer.Key("file").String(cycle.file);
    writer.Key("line").Int(static_cast<uint64_t>(cycle.line));
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  // Files the driver could not read; non-empty means the scan is partial
  // and the run exits non-zero even at zero findings.
  writer.Key("skipped").BeginArray();
  for (const std::string& path : skipped_files) writer.String(path);
  writer.EndArray();
  writer.EndObject();
  return writer.Take();
}

}  // namespace mc3::lint
