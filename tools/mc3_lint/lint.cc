#include "mc3_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <regex>
#include <sstream>

#include "obs/json.h"

namespace mc3::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when content[pos..] starts the word `word` on both boundaries.
bool IsWordAt(const std::string& s, size_t pos, const std::string& word) {
  if (s.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && IsIdentChar(s[pos - 1])) return false;
  const size_t end = pos + word.size();
  return end >= s.size() || !IsIdentChar(s[end]);
}

size_t SkipSpaces(const std::string& s, size_t pos) {
  while (pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[pos])) != 0) {
    ++pos;
  }
  return pos;
}

/// Previous non-whitespace character before `pos`, or '\0'.
char PrevSignificant(const std::string& s, size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(s[pos])) == 0) return s[pos];
  }
  return '\0';
}

/// With s[pos] == open, returns the index one past the matching close (or
/// npos). Assumes literals are already scrubbed.
size_t SkipBalanced(const std::string& s, size_t pos, char open, char close) {
  int depth = 0;
  for (; pos < s.size(); ++pos) {
    if (s[pos] == open) ++depth;
    if (s[pos] == close && --depth == 0) return pos + 1;
  }
  return std::string::npos;
}

int LineOf(const std::string& s, size_t pos) {
  return 1 + static_cast<int>(std::count(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(std::min(pos, s.size())), '\n'));
}

const std::set<std::string>& KnownTags() {
  static const std::set<std::string> tags = {
      "unordered", "float-eq", "pragma-once", "print",
      "new-delete", "rand",     "time",        "status",
      "capture"};
  return tags;
}

struct ScrubResult {
  std::string code;                   ///< literals/comments blanked
  std::map<int, std::string> comments;  ///< comment text per line
};

ScrubResult ScrubImpl(const std::string& in) {
  ScrubResult out;
  out.code.assign(in.size(), ' ');
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  std::string raw_delim;  // the )delim" terminator of a raw string
  int line = 1;
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '\n') {
      out.code[i] = '\n';
      if (state == State::kLineComment) state = State::kCode;
      ++line;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < in.size() && in[i + 1] == '/') {
          state = State::kLineComment;
        } else if (c == '/' && i + 1 < in.size() && in[i + 1] == '*') {
          state = State::kBlockComment;
          ++i;  // consume '*' so "/*/" is not a complete comment
          if (i < in.size() && in[i] == '\n') ++line, out.code[i] = '\n';
        } else if (c == 'R' && i + 1 < in.size() && in[i + 1] == '"' &&
                   (i == 0 || !IsIdentChar(in[i - 1]))) {
          // Raw string literal R"delim( ... )delim".
          size_t j = i + 2;
          std::string delim;
          while (j < in.size() && in[j] != '(') delim += in[j++];
          raw_delim = ")" + delim + "\"";
          state = State::kRawString;
          i = j;  // at '(' (or end)
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        } else {
          out.code[i] = c;
        }
        break;
      case State::kLineComment:
      case State::kBlockComment:
        out.comments[line] += c;
        if (state == State::kBlockComment && c == '*' && i + 1 < in.size() &&
            in[i + 1] == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
          if (i < in.size() && in[i] == '\n') ++line, out.code[i] = '\n';
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == ')' && in.compare(i, raw_delim.size(), raw_delim) == 0) {
          // Keep the line count right across the terminator.
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

/// After a type token (and optional template arguments) starting the
/// declaration at `pos` (one past the type name), extracts the declared
/// identifier, or "" when this is not a declaration site.
std::string DeclaredName(const std::string& s, size_t pos) {
  pos = SkipSpaces(s, pos);
  if (pos < s.size() && s[pos] == '<') {
    pos = SkipBalanced(s, pos, '<', '>');
    if (pos == std::string::npos) return "";
  }
  pos = SkipSpaces(s, pos);
  // Not a declaration when the type is only mentioned (::iterator, nested
  // template argument, cast, ...).
  if (pos < s.size() && (s[pos] == ':' || s[pos] == '>' || s[pos] == ',' ||
                         s[pos] == ')' || s[pos] == ';' || s[pos] == '{')) {
    return "";
  }
  while (pos < s.size() && (s[pos] == '&' || s[pos] == '*')) {
    pos = SkipSpaces(s, pos + 1);
  }
  if (pos >= s.size() || !IsIdentStart(s[pos])) return "";
  size_t end = pos;
  while (end < s.size() && IsIdentChar(s[end])) ++end;
  std::string name = s.substr(pos, end - pos);
  if (name == "const" || name == "constexpr" || name == "static" ||
      name == "operator") {
    return "";
  }
  return name;
}

/// Collects declarations whose type is named by `type_token` into `out`.
void CollectDecls(const std::string& code, const std::string& type_token,
                  std::set<std::string>* out) {
  size_t pos = 0;
  while ((pos = code.find(type_token, pos)) != std::string::npos) {
    const size_t start = pos;
    pos += type_token.size();
    if (start > 0 && IsIdentChar(code[start - 1])) {
      continue;  // suffix of a longer identifier
    }
    if (pos < code.size() && IsIdentChar(code[pos])) continue;
    // Alias right-hand sides are handled by the alias table.
    if (PrevSignificant(code, start) == '=') continue;
    const std::string name = DeclaredName(code, pos);
    if (!name.empty()) out->insert(name);
  }
}

/// Collects every `TYPE NAME(` two-word declaration whose TYPE is not
/// Status/Result into `out`. Used to spot overload sets where only some
/// overloads return Status — R5 must skip those names.
void CollectNonStatusFunctions(const std::string& code,
                               std::set<std::string>* out) {
  static const std::set<std::string> kNotATypeword = {
      "return",   "co_return", "co_await", "co_yield", "throw", "new",
      "delete",   "case",      "goto",     "else",     "do",    "operator",
      "Status",   "Result"};
  size_t pos = 0;
  while (pos < code.size()) {
    if (!IsIdentStart(code[pos]) ||
        (pos > 0 && IsIdentChar(code[pos - 1]))) {
      ++pos;
      continue;
    }
    size_t end = pos;
    while (end < code.size() && IsIdentChar(code[end])) ++end;
    const std::string first = code.substr(pos, end - pos);
    size_t p = SkipSpaces(code, end);
    if (p == end || p >= code.size() || !IsIdentStart(code[p])) {
      pos = end;
      continue;
    }
    size_t end2 = p;
    while (end2 < code.size() && IsIdentChar(code[end2])) ++end2;
    const std::string second = code.substr(p, end2 - p);
    const size_t after = SkipSpaces(code, end2);
    if (after < code.size() && code[after] == '(' &&
        kNotATypeword.count(first) == 0) {
      out->insert(second);
    }
    pos = end;
  }
}

/// Collects names of functions returning `ret` (optionally templated, e.g.
/// Result<T>) into `out`.
void CollectReturning(const std::string& code, const std::string& ret,
                      bool templated, std::set<std::string>* out) {
  size_t pos = 0;
  while ((pos = code.find(ret, pos)) != std::string::npos) {
    const size_t start = pos;
    pos += ret.size();
    if (start > 0 && IsIdentChar(code[start - 1])) continue;
    size_t p = pos;
    if (templated) {
      p = SkipSpaces(code, p);
      if (p >= code.size() || code[p] != '<') continue;
      p = SkipBalanced(code, p, '<', '>');
      if (p == std::string::npos) continue;
    } else if (p < code.size() && (IsIdentChar(code[p]) || code[p] == '<')) {
      continue;  // StatusCode, Status<...>, ...
    }
    p = SkipSpaces(code, p);
    // Qualified name: A::B::name — keep the last component.
    std::string name;
    while (p < code.size() && IsIdentStart(code[p])) {
      size_t end = p;
      while (end < code.size() && IsIdentChar(code[end])) ++end;
      name = code.substr(p, end - p);
      p = SkipSpaces(code, end);
      if (code.compare(p, 2, "::") == 0) {
        p = SkipSpaces(code, p + 2);
        continue;
      }
      break;
    }
    if (name.empty() || name == "const" || name == "constexpr") continue;
    if (p < code.size() && code[p] == '(') out->insert(name);
  }
}

bool ContainsCostWord(const std::string& expr) {
  static const std::regex kCostish("[Cc]ost|[Ww]eight");
  if (!std::regex_search(expr, kCostish)) return false;
  // Container-protocol calls on cost maps yield iterators/sizes, not costs.
  for (const char* ex : {".end(", ".begin(", ".size(", ".count(", ".find(",
                         ".empty(", ".contains("}) {
    if (expr.find(ex) != std::string::npos) return false;
  }
  return true;
}

/// Extends an operand of a comparison leftwards from `pos` (exclusive).
std::string OperandLeft(const std::string& s, size_t pos) {
  size_t end = pos;
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  size_t begin = end;
  while (begin > 0) {
    const char c = s[begin - 1];
    if (IsIdentChar(c) || c == '.' || c == ':' || c == '_') {
      --begin;
    } else if (c == '>' && begin > 1 && s[begin - 2] == '-') {
      begin -= 2;
    } else if (c == ')' || c == ']') {
      const char open = (c == ')') ? '(' : '[';
      int depth = 0;
      size_t p = begin;
      while (p > 0) {
        --p;
        if (s[p] == c) ++depth;
        if (s[p] == open && --depth == 0) break;
      }
      if (depth != 0) break;
      begin = p;
    } else {
      break;
    }
  }
  return s.substr(begin, end - begin);
}

/// Extends an operand of a comparison rightwards from `pos` (inclusive).
std::string OperandRight(const std::string& s, size_t pos) {
  pos = SkipSpaces(s, pos);
  size_t end = pos;
  while (end < s.size()) {
    const char c = s[end];
    if (IsIdentChar(c) || c == '.' || c == ':') {
      ++end;
    } else if (c == '-' && end + 1 < s.size() && s[end + 1] == '>') {
      end += 2;
    } else if (c == '(' || c == '[') {
      const size_t next = SkipBalanced(s, end, c, c == '(' ? ')' : ']');
      if (next == std::string::npos) break;
      end = next;
    } else {
      break;
    }
  }
  return s.substr(pos, end - pos);
}

struct Waivers {
  /// line -> waived tags.
  std::map<int, std::set<std::string>> by_line;
  std::vector<Finding> malformed;
};

Waivers ExtractWaivers(const std::string& path, const ScrubResult& scrubbed) {
  Waivers out;
  static const std::regex kWaiver(
      R"(mc3-lint:\s*([a-z0-9-]+?)-ok\(([^)]*)\))");
  static const std::regex kMention("mc3-lint");
  for (const auto& [line, text] : scrubbed.comments) {
    bool any = false;
    for (std::sregex_iterator it(text.begin(), text.end(), kWaiver), end;
         it != end; ++it) {
      any = true;
      const std::string tag = (*it)[1].str();
      const std::string reason = (*it)[2].str();
      if (KnownTags().count(tag) == 0) {
        out.malformed.push_back(
            {path, line, "W0", "",
             "unknown waiver tag '" + tag + "' (see docs/static_analysis.md)"});
        continue;
      }
      if (SkipSpaces(reason, 0) >= reason.size()) {
        out.malformed.push_back(
            {path, line, "W0", "",
             "waiver '" + tag + "-ok' requires a non-empty reason"});
        continue;
      }
      out.by_line[line].insert(tag);
    }
    if (!any && std::regex_search(text, kMention)) {
      out.malformed.push_back(
          {path, line, "W0", "",
           "malformed waiver; expected 'mc3-lint: <tag>-ok(<reason>)'"});
    }
  }
  return out;
}

/// True when line `line` of the scrubbed code holds no code characters.
bool CodeLineBlank(const std::string& code, int line) {
  int at = 1;
  size_t pos = 0;
  while (at < line && pos < code.size()) {
    if (code[pos] == '\n') ++at;
    ++pos;
  }
  while (pos < code.size() && code[pos] != '\n') {
    if (std::isspace(static_cast<unsigned char>(code[pos])) == 0) return false;
    ++pos;
  }
  return true;
}

class Linter {
 public:
  Linter(const std::string& path, const ScrubResult& scrubbed,
         const SymbolIndex& index, const FileConfig& config)
      : path_(path), code_(scrubbed.code), index_(index), config_(config) {
    Waivers waivers = ExtractWaivers(path, scrubbed);
    // A waiver on a comment-only line covers the next line of code.
    for (const auto& [line, tags] : waivers.by_line) {
      const int target = CodeLineBlank(code_, line) ? line + 1 : line;
      waived_[target].insert(tags.begin(), tags.end());
      if (target != line) {
        waived_[line].insert(tags.begin(), tags.end());
      }
    }
    for (Finding& f : waivers.malformed) findings_.push_back(std::move(f));
  }

  std::vector<Finding> Run() {
    if (config_.is_header) RulePragmaOnce();
    RuleUnorderedIteration();
    RuleFloatEquality();
    RuleBannedConstructs();
    RuleUncheckedStatus();
    RuleSharedMutableCapture();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
    return std::move(findings_);
  }

 private:
  void Report(size_t pos, const std::string& rule, const std::string& tag,
              std::string message) {
    const int line = LineOf(code_, pos);
    const auto it = waived_.find(line);
    if (it != waived_.end() && it->second.count(tag) > 0) return;
    findings_.push_back({path_, line, rule, tag, std::move(message)});
  }

  // R3 — headers must use #pragma once.
  void RulePragmaOnce() {
    if (code_.find("#pragma once") == std::string::npos) {
      findings_.push_back({path_, 1, "R3", "pragma-once",
                           "header must start with #pragma once (include "
                           "guards are not used in this project)"});
    }
  }

  // R1 — range-for over an unordered container.
  void RuleUnorderedIteration() {
    size_t pos = 0;
    while ((pos = code_.find("for", pos)) != std::string::npos) {
      const size_t at = pos;
      pos += 3;
      if (!IsWordAt(code_, at, "for")) continue;
      size_t open = SkipSpaces(code_, at + 3);
      if (open >= code_.size() || code_[open] != '(') continue;
      const size_t close = SkipBalanced(code_, open, '(', ')');
      if (close == std::string::npos) continue;
      // Find the range-for ':' at depth 1 (ignoring '::').
      int depth = 0;
      size_t colon = std::string::npos;
      for (size_t i = open; i < close; ++i) {
        const char c = code_[i];
        if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
        if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
        if (c == ':' && depth == 1) {
          if ((i + 1 < close && code_[i + 1] == ':') ||
              (i > 0 && code_[i - 1] == ':')) {
            continue;
          }
          colon = i;
          break;
        }
      }
      if (colon == std::string::npos) continue;
      std::string expr = code_.substr(colon + 1, close - 1 - (colon + 1));
      // Trim.
      while (!expr.empty() &&
             std::isspace(static_cast<unsigned char>(expr.back())) != 0) {
        expr.pop_back();
      }
      size_t lead = SkipSpaces(expr, 0);
      expr.erase(0, lead);
      if (expr.empty()) continue;
      // Indexing yields a mapped value, not the container itself.
      if (expr.back() == ']') continue;
      std::string target = expr;
      if (target.back() == ')') {
        // Strip the call's argument list: X.costs() -> X.costs
        int d = 0;
        size_t p = target.size();
        while (p > 0) {
          --p;
          if (target[p] == ')') ++d;
          if (target[p] == '(' && --d == 0) break;
        }
        target.resize(p);
      }
      size_t tail = target.size();
      while (tail > 0 && IsIdentChar(target[tail - 1])) --tail;
      const std::string name = target.substr(tail);
      const bool inline_unordered =
          expr.find("unordered_map<") != std::string::npos ||
          expr.find("unordered_set<") != std::string::npos;
      if (!inline_unordered && (name.empty() ||
                                index_.unordered_symbols.count(name) == 0)) {
        continue;
      }
      Report(at, "R1", "unordered",
             "iteration over unordered container '" + expr +
                 "': order is platform-dependent and can leak into "
                 "solutions; iterate a sorted copy (SortedCostEntries) or "
                 "waive with unordered-ok(<reason>)");
    }
  }

  // R2 — ==/!= on cost/weight values.
  void RuleFloatEquality() {
    for (size_t i = 0; i + 1 < code_.size(); ++i) {
      const bool eq = code_[i] == '=' && code_[i + 1] == '=';
      const bool ne = code_[i] == '!' && code_[i + 1] == '=';
      if (!eq && !ne) continue;
      if (i > 0 && std::string("=<>!+-*/%&|^").find(code_[i - 1]) !=
                       std::string::npos) {
        continue;
      }
      if (i + 2 < code_.size() && code_[i + 2] == '=') continue;
      const std::string lhs = OperandLeft(code_, i);
      const std::string rhs = OperandRight(code_, i + 2);
      if (!ContainsCostWord(lhs) && !ContainsCostWord(rhs)) continue;
      Report(i, "R2", "float-eq",
             "exact floating-point comparison on a cost/weight ('" + lhs +
                 (eq ? " == " : " != ") + rhs +
                 "'); use ApproxEq / IsInfiniteCost / IsZeroCost from "
                 "util/float_cmp.h");
    }
  }

  // R4 — rand(), time(NULL), printing from library code, naked new/delete.
  void RuleBannedConstructs() {
    for (const char* fn : {"rand", "srand"}) {
      size_t pos = 0;
      while ((pos = code_.find(fn, pos)) != std::string::npos) {
        const size_t at = pos;
        pos += std::string(fn).size();
        if (!IsWordAt(code_, at, fn)) continue;
        const size_t p = SkipSpaces(code_, pos);
        if (p < code_.size() && code_[p] == '(') {
          Report(at, "R4", "rand",
                 std::string(fn) +
                     "() is not seedable/deterministic; use util/rng.h");
        }
      }
    }
    {
      size_t pos = 0;
      while ((pos = code_.find("time", pos)) != std::string::npos) {
        const size_t at = pos;
        pos += 4;
        if (!IsWordAt(code_, at, "time")) continue;
        size_t p = SkipSpaces(code_, pos);
        if (p >= code_.size() || code_[p] != '(') continue;
        p = SkipSpaces(code_, p + 1);
        for (const char* arg : {"NULL", "nullptr", "0"}) {
          if (IsWordAt(code_, p, arg) || code_.compare(p, strlen(arg), arg) == 0) {
            const size_t q = SkipSpaces(code_, p + strlen(arg));
            if (q < code_.size() && code_[q] == ')') {
              Report(at, "R4", "time",
                     "wall-clock seeding breaks reproducibility; thread a "
                     "seed through util/rng.h");
            }
            break;
          }
        }
      }
    }
    if (!config_.allow_prints) {
      size_t pos = 0;
      while ((pos = code_.find("std::cout", pos)) != std::string::npos) {
        Report(pos, "R4", "print",
               "library code must not print (only tools/ and bench/ may); "
               "return data or use obs:: reporting");
        pos += 9;
      }
      for (const char* fn : {"printf", "fprintf", "puts", "putchar"}) {
        pos = 0;
        while ((pos = code_.find(fn, pos)) != std::string::npos) {
          const size_t at = pos;
          pos += std::string(fn).size();
          if (!IsWordAt(code_, at, fn)) continue;
          const size_t p = SkipSpaces(code_, pos);
          if (p < code_.size() && code_[p] == '(') {
            Report(at, "R4", "print",
                   "library code must not print (only tools/ and bench/ "
                   "may)");
          }
        }
      }
    }
    {
      size_t pos = 0;
      while ((pos = code_.find("new", pos)) != std::string::npos) {
        const size_t at = pos;
        pos += 3;
        if (!IsWordAt(code_, at, "new")) continue;
        const size_t p = SkipSpaces(code_, pos);
        if (p >= code_.size() ||
            (!IsIdentStart(code_[p]) && code_[p] != '(')) {
          continue;
        }
        Report(at, "R4", "new-delete",
               "naked new; use std::make_unique / containers (RAII)");
      }
      pos = 0;
      while ((pos = code_.find("delete", pos)) != std::string::npos) {
        const size_t at = pos;
        pos += 6;
        if (!IsWordAt(code_, at, "delete")) continue;
        if (PrevSignificant(code_, at) == '=') continue;  // = delete;
        Report(at, "R4", "new-delete",
               "naked delete; use std::make_unique / containers (RAII)");
      }
    }
  }

  // R5 — the result of a Status/Result-returning call must be consumed.
  void RuleUncheckedStatus() {
    for (const std::string& fn : index_.status_functions) {
      // Overload sets mixing Status and non-Status return types cannot be
      // told apart without type information; leave them to [[nodiscard]].
      if (index_.nonstatus_functions.count(fn) > 0) continue;
      size_t pos = 0;
      while ((pos = code_.find(fn, pos)) != std::string::npos) {
        const size_t at = pos;
        pos += fn.size();
        if (!IsWordAt(code_, at, fn)) continue;
        size_t open = SkipSpaces(code_, at + fn.size());
        if (open >= code_.size() || code_[open] != '(') continue;
        // Walk back over the object chain (obj. / ptr-> / ns:: / arr[i].).
        size_t p = at;
        while (p > 0) {
          const char c = code_[p - 1];
          if (IsIdentChar(c) || c == '.' || c == ':' || c == ']' ||
              c == '[' || (c == '>' && p > 1 && code_[p - 2] == '-') ||
              (c == '-' )) {
            --p;
          } else {
            break;
          }
        }
        const char before = PrevSignificant(code_, p);
        if (before != ';' && before != '{' && before != '}' &&
            before != '\0') {
          continue;
        }
        const size_t close = SkipBalanced(code_, open, '(', ')');
        if (close == std::string::npos) continue;
        const size_t next = SkipSpaces(code_, close);
        if (next >= code_.size() || code_[next] != ';') continue;
        Report(at, "R5", "status",
               "result of Status-returning call '" + fn +
                   "(...)' is discarded; check it, return it, or cast to "
                   "(void) with a waiver");
      }
    }
  }

  // R6 — by-reference captures mutated inside lambdas handed to a
  // concurrency entry point: ParallelFor bodies run on worker threads, and
  // tasks posted to a WorkerPool (Post) run on pool threads.
  void RuleSharedMutableCapture() {
    RuleSharedMutableCaptureFor("ParallelFor");
    RuleSharedMutableCaptureFor("Post");
  }

  void RuleSharedMutableCaptureFor(const std::string& entry) {
    size_t pos = 0;
    while ((pos = code_.find(entry, pos)) != std::string::npos) {
      const size_t at = pos;
      pos += entry.size();
      if (!IsWordAt(code_, at, entry)) continue;
      // Skip the definition/declaration itself (preceded by its return
      // type: 'void ParallelFor', 'bool Post').
      {
        size_t p = at;
        while (p > 0 &&
               std::isspace(static_cast<unsigned char>(code_[p - 1])) != 0) {
          --p;
        }
        if (p >= 4 && code_.compare(p - 4, 4, "void") == 0) continue;
        if (p >= 4 && code_.compare(p - 4, 4, "bool") == 0) continue;
      }
      const size_t call_open = SkipSpaces(code_, at + entry.size());
      if (call_open >= code_.size() || code_[call_open] != '(') continue;
      const size_t call_close = SkipBalanced(code_, call_open, '(', ')');
      if (call_close == std::string::npos) continue;
      const std::string args =
          code_.substr(call_open, call_close - call_open);
      const size_t cap_open = args.find('[');
      if (cap_open == std::string::npos) continue;
      const size_t cap_close = args.find(']', cap_open);
      if (cap_close == std::string::npos) continue;
      const std::string captures =
          args.substr(cap_open + 1, cap_close - cap_open - 1);
      if (captures.find('&') == std::string::npos) continue;
      // Parameter list, when present (posted tasks are usually param-less:
      // `Post([&] { ... })`).
      const size_t param_open = SkipSpaces(args, cap_close + 1);
      std::set<std::string> params;
      size_t body_from = cap_close + 1;
      if (param_open < args.size() && args[param_open] == '(') {
        const size_t param_close = SkipBalanced(args, param_open, '(', ')');
        if (param_close == std::string::npos) continue;
        std::string param_text =
            args.substr(param_open + 1, param_close - param_open - 2);
        std::string word;
        for (char c : param_text + ",") {
          if (IsIdentChar(c)) {
            word += c;
          } else if (!word.empty()) {
            params.insert(word);  // keep every token; over-approximation
            word.clear();
          }
        }
        body_from = param_close;
      }
      size_t body_open = args.find('{', body_from);
      if (body_open == std::string::npos) continue;
      const size_t body_close = SkipBalanced(args, body_open, '{', '}');
      if (body_close == std::string::npos) continue;
      const std::string body =
          args.substr(body_open, body_close - body_open);
      const size_t body_abs = call_open + body_open;
      CheckBodyMutations(body, body_abs, params, entry);
    }
  }

  bool DeclaredInBody(const std::string& body, const std::string& name) {
    // TYPE name =/;/{/( — enough to recognize locals, incl. auto& refs.
    const std::regex decl(
        "[;{(]\\s*(const\\s+)?[A-Za-z_][\\w:]*(<[^;{}]*>)?\\s*[&*]?\\s+" +
        name + "\\s*[\\[=;{(]");
    return std::regex_search(body, decl);
  }

  void CheckBodyMutations(const std::string& body, size_t body_abs,
                          const std::set<std::string>& params,
                          const std::string& entry) {
    static const std::regex kMutation(
        R"((\+\+|--)?\s*\b([A-Za-z_]\w*)\s*(\+\+|--|[+\-*/|&^]?=(?!=)|(?:\.|->)(?:push_back|emplace_back|emplace|insert|erase|clear|pop_back|resize|assign|Merge|Add)\s*\())");
    for (std::sregex_iterator it(body.begin(), body.end(), kMutation), end;
         it != end; ++it) {
      const std::smatch& m = *it;
      const std::string name = m[2].str();
      const size_t name_pos = static_cast<size_t>(m.position(2));
      // Member of / element of something else: fresh[i].queries = ...
      if (name_pos > 0) {
        const char before = PrevSignificant(body, name_pos);
        if (before == '.' || before == '>' || before == ']') continue;
      }
      // Indexed by the worker slot: statuses[i] = ... (the regex cannot
      // match that shape for '=', but ++hits[i] can reach here).
      const size_t after = name_pos + name.size();
      if (after < body.size() && SkipSpaces(body, after) < body.size() &&
          body[SkipSpaces(body, after)] == '[') {
        continue;
      }
      if (params.count(name) > 0) continue;
      if (index_.threadsafe_symbols.count(name) > 0) continue;
      if (DeclaredInBody(body, name)) continue;
      if (name == "this") continue;
      Report(body_abs + name_pos, "R6", "capture",
             "'" + name + "' is captured by reference and mutated inside a " +
                 entry +
                 " body without per-index addressing, an atomic, or a mutex "
                 "— data-race hazard (see the TSan CI job)");
    }
  }

  const std::string& path_;
  const std::string code_;
  const SymbolIndex& index_;
  const FileConfig& config_;
  std::map<int, std::set<std::string>> waived_;
  std::vector<Finding> findings_;
};

}  // namespace

std::string Scrub(const std::string& content) {
  return ScrubImpl(content).code;
}

std::map<int, std::string> CommentsByLine(const std::string& content) {
  return ScrubImpl(content).comments;
}

void SymbolIndex::ResolveAliases() {
  // Fixpoint over alias-of-alias chains.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, rhs] : alias_defs) {
      if (unordered_aliases.count(name) > 0) continue;
      bool unordered = rhs.find("unordered_map") != std::string::npos ||
                       rhs.find("unordered_set") != std::string::npos;
      for (const std::string& alias : unordered_aliases) {
        if (unordered) break;
        size_t pos = rhs.find(alias);
        while (pos != std::string::npos) {
          if (IsWordAt(rhs, pos, alias)) {
            unordered = true;
            break;
          }
          pos = rhs.find(alias, pos + 1);
        }
      }
      if (unordered) {
        unordered_aliases.insert(name);
        changed = true;
      }
    }
  }
  for (const std::string& content : indexed_contents) {
    for (const std::string& alias : unordered_aliases) {
      CollectDecls(content, alias, &unordered_symbols);
    }
  }
}

void IndexFile(const std::string& content, SymbolIndex* index) {
  const std::string code = Scrub(content);
  // Type aliases: using NAME = RHS;
  size_t pos = 0;
  while ((pos = code.find("using", pos)) != std::string::npos) {
    const size_t at = pos;
    pos += 5;
    if (!IsWordAt(code, at, "using")) continue;
    size_t p = SkipSpaces(code, at + 5);
    size_t end = p;
    while (end < code.size() && IsIdentChar(code[end])) ++end;
    if (end == p) continue;
    const std::string name = code.substr(p, end - p);
    p = SkipSpaces(code, end);
    if (p >= code.size() || code[p] != '=') continue;
    const size_t semi = code.find(';', p);
    if (semi == std::string::npos) continue;
    index->alias_defs[name] = code.substr(p + 1, semi - p - 1);
  }
  for (const char* type : {"unordered_map", "unordered_set"}) {
    CollectDecls(code, type, &index->unordered_symbols);
  }
  CollectReturning(code, "Status", /*templated=*/false,
                   &index->status_functions);
  CollectReturning(code, "Result", /*templated=*/true,
                   &index->status_functions);
  CollectNonStatusFunctions(code, &index->nonstatus_functions);
  for (const char* type :
       {"std::atomic", "std::mutex", "std::shared_mutex", "std::once_flag",
        "std::condition_variable", "obs::Counter", "obs::Gauge",
        "obs::Histogram", "Counter", "Gauge", "Histogram"}) {
    CollectDecls(code, type, &index->threadsafe_symbols);
  }
  index->indexed_contents.push_back(code);
}

std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content,
                              const SymbolIndex& index,
                              const FileConfig& config) {
  const ScrubResult scrubbed = ScrubImpl(content);
  Linter linter(path, scrubbed, index, config);
  return linter.Run();
}

std::vector<Finding> LintSnippet(const std::string& path,
                                 const std::string& content,
                                 const FileConfig& config) {
  SymbolIndex index;
  IndexFile(content, &index);
  index.ResolveAliases();
  return LintFile(path, content, index, config);
}

std::string HeaderTuSource(const std::string& header_include_path) {
  return "// Generated by mc3_lint --emit-header-tus (rule R3): compiling\n"
         "// this TU proves the header is self-contained.\n"
         "#include \"" +
         header_include_path + "\"\n";
}

std::string FindingsToJson(const std::vector<Finding>& findings,
                           size_t files_scanned) {
  obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema").String("mc3.lint_report/1");
  writer.Key("files_scanned").Int(files_scanned);
  writer.Key("num_findings").Int(findings.size());
  std::map<std::string, uint64_t> by_rule;
  for (const Finding& f : findings) ++by_rule[f.rule];
  writer.Key("findings_by_rule").BeginObject();
  for (const auto& [rule, count] : by_rule) {
    writer.Key(rule).Int(count);
  }
  writer.EndObject();
  writer.Key("findings").BeginArray();
  for (const Finding& f : findings) {
    writer.BeginObject();
    writer.Key("file").String(f.file);
    writer.Key("line").Int(static_cast<uint64_t>(f.line));
    writer.Key("rule").String(f.rule);
    writer.Key("tag").String(f.tag);
    writer.Key("message").String(f.message);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  return writer.Take();
}

}  // namespace mc3::lint
