// mc3_loadgen — drive a running `mc3 serve --listen` server with an
// open-loop churn workload and write a mc3.load_report/1 summary.
//
//   mc3_loadgen --port N [--host H] [--port-file F] [--qps Q] [--ops N]
//               [--connections N] [--burst N] [--seed S] [--quick]
//               [--solve-every N] [--remove-every N] [--read-ratio R]
//               [--tenants N]
//               [--shutdown] [--report out.json] [--min-coalesced-batch N]
//               [--scrape-interval SECS] [--scrape-out F]
//
// --port-file reads the target port from a file written by
// `mc3 serve --listen 0 --port-file F` (ephemeral-port handshake for CI).
// --quick shrinks the run for smoke tests. --min-coalesced-batch fails the
// run (exit 1) unless the server reports a coalesced batch at least that
// large — the CI gate proving that batching actually engaged. --tenants
// splits the synthetic property pool into disjoint per-tenant slices so a
// sharded server (mc3 serve --shards N) can spread the work; the final
// "sweep:" summary line carries committed update throughput for
// QPS-vs-shards sweeps (scripts/shard_sweep.sh). --scrape-interval samples
// the server's `metrics` exposition on a dedicated connection during the
// run, embeds the time series in the report, and fails the run (exit 1) if
// the final server counters disagree with client-side accounting;
// --scrape-out dumps the final raw exposition text for artifact upload.
// --read-ratio R (in [0,1]) switches to mixed mode: each operation is
// independently a solve with probability R (deterministic per seed), the
// report splits read-vs-write latency summaries, and the sweep line gains
// read/write p99s — the knob behind scripts/read_sweep.sh.
//
// Exit codes: 0 success, 1 runtime/gate failure, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mc3_loadgen/loadgen.h"

namespace {

using namespace mc3;

int Usage() {
  std::fprintf(
      stderr,
      "usage: mc3_loadgen --port N [--host H] [--port-file F] [--qps Q]\n"
      "                   [--ops N] [--connections N] [--burst N] [--seed S]\n"
      "                   [--quick] [--solve-every N] [--remove-every N]\n"
      "                   [--read-ratio R]\n"
      "                   [--tenants N] [--properties N] [--query-length N]\n"
      "                   [--shutdown] [--report out.json]\n"
      "                   [--min-coalesced-batch N]\n"
      "                   [--scrape-interval SECS] [--scrape-out F]\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), out);
  const bool flushed = std::fclose(out) == 0;
  if (written != content.size() || !flushed) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

Result<uint16_t> ReadPortFile(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return Status::NotFound("cannot open port file " + path);
  }
  char buffer[32] = {};
  const size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, in);
  std::fclose(in);
  const unsigned long port = std::strtoul(buffer, nullptr, 10);
  if (n == 0 || port == 0 || port > 65535) {
    return Status::InvalidArgument("port file " + path +
                                   " does not hold a port number");
  }
  return static_cast<uint16_t>(port);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  auto flag_value = [&](const std::string& flag) -> const std::string* {
    for (size_t i = 0; i + 1 < args.size(); ++i) {
      if (args[i] == flag) return &args[i + 1];
    }
    return nullptr;
  };
  auto has_flag = [&](const std::string& flag) {
    for (const auto& a : args) {
      if (a == flag) return true;
    }
    return false;
  };

  loadgen::LoadGenOptions options;
  if (has_flag("--quick")) {
    options.operations = 64;
    options.qps = 400;
    options.connections = 4;
    options.burst = 24;
  }
  if (const std::string* v = flag_value("--host")) options.host = *v;
  if (const std::string* v = flag_value("--port")) {
    options.port = static_cast<uint16_t>(std::strtoul(v->c_str(), nullptr, 10));
  }
  if (const std::string* v = flag_value("--port-file")) {
    auto port = ReadPortFile(*v);
    if (!port.ok()) return Fail(port.status());
    options.port = *port;
  }
  if (const std::string* v = flag_value("--qps")) {
    options.qps = std::strtod(v->c_str(), nullptr);
  }
  if (const std::string* v = flag_value("--ops")) {
    options.operations = std::strtoul(v->c_str(), nullptr, 10);
  }
  if (const std::string* v = flag_value("--connections")) {
    options.connections = std::strtoul(v->c_str(), nullptr, 10);
  }
  if (const std::string* v = flag_value("--burst")) {
    options.burst = std::strtoul(v->c_str(), nullptr, 10);
  }
  if (const std::string* v = flag_value("--seed")) {
    options.seed = std::strtoull(v->c_str(), nullptr, 10);
  }
  if (const std::string* v = flag_value("--solve-every")) {
    options.solve_every = std::strtoul(v->c_str(), nullptr, 10);
  }
  if (const std::string* v = flag_value("--remove-every")) {
    options.remove_every = std::strtoul(v->c_str(), nullptr, 10);
  }
  if (const std::string* v = flag_value("--read-ratio")) {
    char* end = nullptr;
    options.read_ratio = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || *end != '\0' || options.read_ratio < 0 ||
        options.read_ratio > 1) {
      return Usage();
    }
  }
  if (const std::string* v = flag_value("--tenants")) {
    options.tenants = std::strtoul(v->c_str(), nullptr, 10);
    if (options.tenants == 0) return Usage();
  }
  if (const std::string* v = flag_value("--properties")) {
    options.num_properties = std::strtoul(v->c_str(), nullptr, 10);
    if (options.num_properties == 0) return Usage();
  }
  if (const std::string* v = flag_value("--query-length")) {
    options.query_length = std::strtoul(v->c_str(), nullptr, 10);
    if (options.query_length == 0) return Usage();
  }
  if (const std::string* v = flag_value("--scrape-interval")) {
    options.scrape_interval_seconds = std::strtod(v->c_str(), nullptr);
    if (options.scrape_interval_seconds <= 0) return Usage();
  }
  options.shutdown_after = has_flag("--shutdown");
  if (options.port == 0) return Usage();

  auto report = loadgen::RunLoadGen(options);
  if (!report.ok()) return Fail(report.status());

  const std::string json = loadgen::RenderLoadReport(*report);
  if (Status status = loadgen::ValidateLoadReportJson(json); !status.ok()) {
    return Fail(status);  // self-validation: the emitted document is the product
  }
  if (const std::string* path = flag_value("--report")) {
    if (Status status = WriteFile(*path, json); !status.ok()) {
      return Fail(status);
    }
    std::printf("report written to %s\n", path->c_str());
  } else {
    std::printf("%s\n", json.c_str());
  }
  if (const std::string* path = flag_value("--scrape-out")) {
    if (report->final_exposition.empty()) {
      std::fprintf(stderr,
                   "error: --scrape-out needs --scrape-interval and a "
                   "successful scrape\n");
      return 1;
    }
    if (Status status = WriteFile(*path, report->final_exposition);
        !status.ok()) {
      return Fail(status);
    }
    std::printf("exposition written to %s (%zu scrapes)\n", path->c_str(),
                report->scrapes.size());
  }
  std::printf(
      "sent %llu, ok %llu, rejected %llu, refused %llu, errors %llu, "
      "lost %llu | server batches %llu, coalesced ops %llu, max batch %llu\n",
      static_cast<unsigned long long>(report->sent),
      static_cast<unsigned long long>(report->ok),
      static_cast<unsigned long long>(report->rejected),
      static_cast<unsigned long long>(report->refused),
      static_cast<unsigned long long>(report->errors),
      static_cast<unsigned long long>(report->lost),
      static_cast<unsigned long long>(report->server_batches),
      static_cast<unsigned long long>(report->server_coalesced_ops),
      static_cast<unsigned long long>(report->server_max_batch));
  if (report->server_engine_shards > 1) {
    for (const loadgen::ShardLoad& load : report->server_shards) {
      std::printf("shard %llu: %llu batches, %llu ops, queue depth %llu\n",
                  static_cast<unsigned long long>(load.shard),
                  static_cast<unsigned long long>(load.batches),
                  static_cast<unsigned long long>(load.ops),
                  static_cast<unsigned long long>(load.queue_depth));
    }
    std::printf("migrated %llu queries between shards\n",
                static_cast<unsigned long long>(report->server_migrated));
  }
  // Machine-parsable sweep line (scripts/shard_sweep.sh): committed update
  // throughput is the per-shard op total over the run's wall clock.
  uint64_t committed_ops = 0;
  for (const loadgen::ShardLoad& load : report->server_shards) {
    committed_ops += load.ops;
  }
  std::printf("sweep: shards=%llu committed_ops=%llu wall=%.3f "
              "ops_per_sec=%.1f\n",
              static_cast<unsigned long long>(
                  report->server_engine_shards > 0
                      ? report->server_engine_shards
                      : 1),
              static_cast<unsigned long long>(committed_ops),
              report->wall_seconds,
              report->wall_seconds > 0
                  ? static_cast<double>(committed_ops) / report->wall_seconds
                  : 0.0);
  // Mixed-mode sweep line (scripts/read_sweep.sh): per-verb p99s under the
  // planned read ratio, in microseconds for stable parsing.
  if (options.read_ratio >= 0) {
    std::printf("read_sweep: read_ratio=%.2f reads=%llu writes=%llu "
                "read_p50_us=%.1f read_p99_us=%.1f write_p50_us=%.1f "
                "write_p99_us=%.1f\n",
                options.read_ratio,
                static_cast<unsigned long long>(report->read_latency.count),
                static_cast<unsigned long long>(report->write_latency.count),
                report->read_latency.p50 * 1e6,
                report->read_latency.p99 * 1e6,
                report->write_latency.p50 * 1e6,
                report->write_latency.p99 * 1e6);
  }

  if (report->lost > 0) {
    std::fprintf(stderr, "error: %llu accepted requests got no response\n",
                 static_cast<unsigned long long>(report->lost));
    return 1;
  }
  if (options.scrape_interval_seconds > 0) {
    if (!report->reconcile.checked) {
      std::fprintf(stderr,
                   "error: --scrape-interval was set but no metrics "
                   "exposition was captured\n");
      return 1;
    }
    if (!report->reconcile.error.empty()) {
      std::fprintf(stderr, "error: counter reconcile drift: %s\n",
                   report->reconcile.error.c_str());
      return 1;
    }
    std::printf("reconcile: ok (%llu updates, %llu solves, %zu scrapes)\n",
                static_cast<unsigned long long>(report->client_updates_sent),
                static_cast<unsigned long long>(report->client_solves_sent),
                report->scrapes.size());
  }
  if (const std::string* v = flag_value("--min-coalesced-batch")) {
    const uint64_t want = std::strtoull(v->c_str(), nullptr, 10);
    if (!report->server_stats_valid || report->server_max_batch < want) {
      std::fprintf(stderr,
                   "error: max coalesced batch %llu below required %llu\n",
                   static_cast<unsigned long long>(report->server_max_batch),
                   static_cast<unsigned long long>(want));
      return 1;
    }
  }
  return 0;
}
