// mc3_loadgen — open-loop load generator for the serving subsystem
// (src/server/, docs/serving.md).
//
// The generator pre-computes an arrival schedule (an initial burst at t=0,
// then one request every 1/qps seconds) and a deterministic churn workload
// (seeded RNG over a synthetic property pool), then replays it over N
// line-delimited-JSON connections without waiting for responses — open-loop
// arrivals, so server slowness shows up as queueing/429s instead of
// silently throttling the offered load. Reader threads collect per-request
// client-side latencies and categorize responses by code (200/400/429/503).
// At the end the server's stats endpoint is scraped so the report can
// attest that update coalescing actually happened (max_batch > 1 whenever
// the burst outruns the engine worker).
//
// The run is summarized as a mc3.load_report/1 JSON document, self-validated
// against its schema before it is written (the same contract as the solve
// and bench reports).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace mc3::loadgen {

inline constexpr const char kLoadReportSchema[] = "mc3.load_report/1";

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< required

  /// Open-loop arrival rate after the initial burst.
  double qps = 200;
  /// Engine operations (updates and interleaved solves) to send.
  size_t operations = 128;
  size_t connections = 4;
  /// Requests sent back-to-back at t=0: with a single engine worker this
  /// guarantees a queue run long enough to coalesce (max_batch > 1).
  size_t burst = 16;
  /// Every Nth operation is a solve (read) instead of an update; 0 = none.
  size_t solve_every = 16;
  /// Every Nth update also removes a previously added query; 0 = never.
  size_t remove_every = 3;
  /// Mixed read/write mode (read_sweep.sh, docs/serving.md#lock-free-reads):
  /// when in [0,1], each operation is independently a solve with this
  /// probability (seeded, deterministic) instead of the solve_every cadence,
  /// and the report splits latencies into read/write summaries. Negative
  /// (the default) keeps the historical plan byte-for-byte.
  double read_ratio = -1;

  uint64_t seed = 1;
  /// Synthetic property pool ("p0" .. "p{N-1}") and query length. With
  /// `tenants` > 1 each tenant gets its own disjoint pool of
  /// `num_properties` names, so the total pool is tenants * num_properties.
  size_t num_properties = 24;
  size_t query_length = 3;
  /// Number of disjoint property pools. Updates round-robin across
  /// tenants, so queries from different tenants never share a property:
  /// the server's shard router keeps each tenant's components independent
  /// and a sharded server can apply a coalesced batch in parallel. 1 keeps
  /// the historical single-pool workload byte-for-byte.
  size_t tenants = 1;

  /// Give up waiting for responses / connects after this long.
  double timeout_seconds = 30;
  /// Send a shutdown request after the run and wait for the drain ack.
  bool shutdown_after = false;

  /// Scrape the server's `metrics` verb (Prometheus text exposition) every
  /// this many seconds on a dedicated connection; 0 disables scraping. The
  /// sampled series is embedded in the report, and a final scrape
  /// cross-checks server counters against client-side accounting.
  double scrape_interval_seconds = 0;
};

struct LatencySummary {
  uint64_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

/// One engine shard's work counters as scraped from the stats verb.
struct ShardLoad {
  uint64_t shard = 0;
  uint64_t batches = 0;      ///< shard-local jobs dispatched
  uint64_t ops = 0;          ///< add/remove operations applied on the shard
  uint64_t queue_depth = 0;  ///< shard queue depth at scrape time
};

/// One sample of the server's `metrics` exposition, taken mid-run by the
/// scraper connection. Counter fields are absent (-1) when the exposition
/// did not carry them (an -DMC3_OBS=OFF server has no registry counters).
struct ScrapeSample {
  double at_seconds = 0;  ///< run-clock time of the scrape
  double requests = -1;   ///< mc3_server_requests_total
  double responses = -1;  ///< mc3_server_responses_total
  double requests_update = -1;  ///< mc3_server_requests_update_total
  double requests_solve = -1;   ///< mc3_server_requests_solve_total
  double batches = -1;          ///< mc3_server_batches_total
  double queue_depth = -1;      ///< mc3_server_queue_depth
};

/// Outcome of the end-of-run counter cross-check (scraper runs only).
/// `checked` means a final exposition was captured; a non-empty `error`
/// describes the first drift found and fails the run.
struct ReconcileResult {
  bool checked = false;
  std::string error;
};

/// Everything the run observed; rendered as mc3.load_report/1.
struct LoadReport {
  LoadGenOptions options;

  // Client-side accounting. Every sent request gets exactly one response
  // line (200/400/429/503); missing responses at timeout are `lost`.
  uint64_t sent = 0;
  uint64_t responses = 0;
  uint64_t ok = 0;
  uint64_t rejected = 0;  ///< 429 admission rejects
  uint64_t refused = 0;   ///< 503 while draining
  uint64_t errors = 0;    ///< 400s and unparseable responses
  uint64_t lost = 0;
  double wall_seconds = 0;
  double achieved_qps = 0;
  LatencySummary latency;
  /// Per-verb latency split (mixed mode, options.read_ratio >= 0 only):
  /// reads are solves, writes are updates. The combined summary above still
  /// covers every response.
  LatencySummary read_latency;
  LatencySummary write_latency;

  // Server-side truth, scraped from the stats endpoint after the run.
  bool server_stats_valid = false;
  uint64_t server_batches = 0;
  uint64_t server_coalesced_ops = 0;
  uint64_t server_max_batch = 0;
  uint64_t server_requests = 0;
  uint64_t server_responses = 0;
  uint64_t server_rejected = 0;
  /// Sharding view (docs/serving.md#sharded-serving): how many engine
  /// shards the server runs, how many live queries migrated between shards
  /// during the run, and each shard's work counters. A pre-sharding server
  /// reports no `shards` array; `server_engine_shards` then stays 0.
  uint64_t server_engine_shards = 0;
  uint64_t server_migrated = 0;
  std::vector<ShardLoad> server_shards;

  /// Client-side per-verb accounting, the reconcile baseline: how many
  /// updates/solves went out and how many updates came back with code 200.
  uint64_t client_updates_sent = 0;
  uint64_t client_solves_sent = 0;
  uint64_t client_updates_acked = 0;

  /// Scraper output (`scrape_interval_seconds > 0` only): the sampled
  /// exposition time series, the raw final exposition body (for artifact
  /// dumps) and the counter cross-check verdict.
  std::vector<ScrapeSample> scrapes;
  std::string final_exposition;
  ReconcileResult reconcile;

  bool drained = false;  ///< shutdown requested and acknowledged
};

/// Runs the workload against a live server. Fails when the target cannot be
/// reached or the run times out with nothing received.
Result<LoadReport> RunLoadGen(const LoadGenOptions& options);

/// Renders `report` as a mc3.load_report/1 document.
std::string RenderLoadReport(const LoadReport& report);

/// Structural validation of a load-report document: schema tag plus the
/// presence and types of every required field.
Status ValidateLoadReportJson(const std::string& json);

}  // namespace mc3::loadgen
