#include "mc3_loadgen/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "obs/exposition.h"
#include "obs/json.h"
#include "util/sync.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace mc3::loadgen {
namespace {

/// One request of the pre-computed schedule.
struct PlannedRequest {
  double at = 0;  ///< seconds from run start (0 inside the burst)
  std::string line;
  size_t conn = 0;
  uint64_t id = 0;
  bool solve = false;  ///< read op (vs. update), for per-verb accounting
};

/// Per-connection state. The reader thread owns `latencies` and the
/// category counts; the sender only touches `fd` and `sent`. The scraped
/// response bodies are polled by the main thread while the reader is still
/// running, so they live behind `scrape_mu`.
struct ConnState {
  // mc3-lint: guard-ok(set once by the connector before the reader launches)
  int fd = -1;
  // mc3-lint: guard-ok(sender-thread-owned; readers only see it after join)
  uint64_t sent = 0;
  std::atomic<uint64_t> got{0};
  // mc3-lint: guard-ok(reader-thread-owned; harvested after join)
  uint64_t ok = 0;
  // mc3-lint: guard-ok(reader-thread-owned; harvested after join)
  uint64_t ok_updates = 0;
  // mc3-lint: guard-ok(reader-thread-owned; harvested after join)
  uint64_t rejected = 0;
  // mc3-lint: guard-ok(reader-thread-owned; harvested after join)
  uint64_t refused = 0;
  // mc3-lint: guard-ok(reader-thread-owned; harvested after join)
  uint64_t errors = 0;
  // mc3-lint: guard-ok(reader-thread-owned; harvested after join)
  std::vector<double> latencies;
  // mc3-lint: guard-ok(reader-thread-owned; harvested after join)
  std::vector<double> read_latencies;
  // mc3-lint: guard-ok(reader-thread-owned; harvested after join)
  std::vector<double> write_latencies;
  mc3::util::Mutex scrape_mu;
  /// Last stats response seen.
  std::string stats_json MC3_GUARDED_BY(scrape_mu);
  /// Shutdown ack, when requested.
  std::string shutdown_json MC3_GUARDED_BY(scrape_mu);
  // mc3-lint: guard-ok(launched by the connector, joined only by the harvester)
  std::thread reader;

  std::string StatsJson() {
    mc3::util::MutexLock lock(scrape_mu);
    return stats_json;
  }
  std::string ShutdownJson() {
    mc3::util::MutexLock lock(scrape_mu);
    return shutdown_json;
  }
};

Result<int> Connect(const std::string& host, uint16_t port,
                    double timeout_seconds) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse host " + host);
  }
  Timer waited;
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Internal(std::string("socket: ") + std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    if (waited.Seconds() > timeout_seconds) {
      return Status::IOError("cannot connect to " + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(errno));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

Status SendLine(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Request kinds for the per-verb latency split, indexed by request id.
enum class ReqKind : uint8_t { kWrite = 0, kRead = 1, kOther = 2 };

/// Blocking line reader: categorizes every response, records latency
/// against `send_time` (indexed by response id; `kinds` splits the sample
/// into read/write series) and stashes stats/shutdown bodies for the
/// end-of-run scrape.
void ReaderLoop(ConnState* conn, const Timer* run_clock,
                const std::vector<std::atomic<double>>* send_time,
                const std::vector<ReqKind>* kinds) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    size_t newline;
    while ((newline = buffer.find('\n', start)) != std::string::npos) {
      const std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (line.empty()) continue;
      conn->got.fetch_add(1, std::memory_order_release);
      auto parsed = obs::ParseJson(line);
      if (!parsed.ok() || !parsed->is_object()) {
        ++conn->errors;
        continue;
      }
      const obs::JsonValue* code = parsed->Find("code");
      const obs::JsonValue* op = parsed->Find("op");
      const obs::JsonValue* id = parsed->Find("id");
      const int status = (code != nullptr && code->is_number())
                             ? static_cast<int>(code->number)
                             : 0;
      if (status == 200) {
        ++conn->ok;
        if (op != nullptr && op->is_string() && op->string == "update") {
          ++conn->ok_updates;
        }
      } else if (status == 429) {
        ++conn->rejected;
      } else if (status == 503) {
        ++conn->refused;
      } else {
        ++conn->errors;
      }
      if (id != nullptr && id->is_number()) {
        const size_t slot = static_cast<size_t>(id->number);
        const double stamped =
            slot < send_time->size()
                ? (*send_time)[slot].load(std::memory_order_acquire)
                : -1;
        if (stamped >= 0) {
          const double latency = run_clock->Seconds() - stamped;
          conn->latencies.push_back(latency);
          if (slot < kinds->size()) {
            if ((*kinds)[slot] == ReqKind::kRead) {
              conn->read_latencies.push_back(latency);
            } else if ((*kinds)[slot] == ReqKind::kWrite) {
              conn->write_latencies.push_back(latency);
            }
          }
        }
      }
      if (op != nullptr && op->is_string()) {
        mc3::util::MutexLock lock(conn->scrape_mu);
        if (op->string == "stats") conn->stats_json = line;
        if (op->string == "shutdown") conn->shutdown_json = line;
      }
    }
    buffer.erase(0, start);
  }
}

LatencySummary Summarize(std::vector<double> latencies) {
  LatencySummary summary;
  if (latencies.empty()) return summary;
  std::sort(latencies.begin(), latencies.end());
  summary.count = latencies.size();
  double sum = 0;
  for (const double v : latencies) sum += v;
  summary.mean = sum / static_cast<double>(latencies.size());
  auto at = [&](double q) {
    const size_t rank = std::min(
        latencies.size() - 1,
        static_cast<size_t>(q * static_cast<double>(latencies.size())));
    return latencies[rank];
  };
  summary.p50 = at(0.50);
  summary.p95 = at(0.95);
  summary.p99 = at(0.99);
  summary.max = latencies.back();
  return summary;
}

/// Deterministically plans the whole run: ids are 1-based and dense, so
/// send times index by id.
std::vector<PlannedRequest> PlanRequests(const LoadGenOptions& options) {
  std::mt19937_64 rng(options.seed);
  std::vector<PlannedRequest> plan;
  plan.reserve(options.operations);
  std::vector<std::vector<std::string>> added;
  size_t updates = 0;
  for (size_t i = 0; i < options.operations; ++i) {
    PlannedRequest request;
    request.id = i + 1;
    request.conn = options.connections > 0 ? i % options.connections : 0;
    request.at = i < options.burst
                     ? 0
                     : static_cast<double>(i - options.burst) /
                           std::max(1.0, options.qps);
    // Mixed mode draws one uniform per operation (so the plan stays fully
    // determined by the seed); the historical cadence consumes no RNG here,
    // keeping read_ratio < 0 plans byte-identical to older releases.
    const bool solve =
        options.read_ratio >= 0
            ? (static_cast<double>(rng() >> 11) * 0x1.0p-53) <
                  options.read_ratio
            : options.solve_every > 0 && (i + 1) % options.solve_every == 0;
    request.solve = solve;
    obs::JsonWriter writer(/*compact=*/true);
    writer.BeginObject();
    writer.Key("op").String(solve ? "solve" : "update");
    writer.Key("id").Int(request.id);
    if (!solve) {
      ++updates;
      // Round-robin tenant choice; each tenant draws from its own disjoint
      // slice of the property namespace. With one tenant the offset is 0
      // and the plan (names and RNG consumption) is byte-identical to the
      // historical single-pool workload.
      const size_t tenant =
          options.tenants > 1 ? (updates - 1) % options.tenants : 0;
      const size_t offset = tenant * options.num_properties;
      std::vector<std::string> query;
      std::vector<size_t> pool(options.num_properties);
      for (size_t p = 0; p < pool.size(); ++p) pool[p] = p;
      for (size_t l = 0; l < options.query_length && !pool.empty(); ++l) {
        const size_t pick = rng() % pool.size();
        query.push_back("p" + std::to_string(offset + pool[pick]));
        pool.erase(pool.begin() + static_cast<ptrdiff_t>(pick));
      }
      writer.Key("add").BeginArray();
      writer.BeginArray();
      for (const std::string& name : query) writer.String(name);
      writer.EndArray();
      writer.EndArray();
      if (options.remove_every > 0 && !added.empty() &&
          updates % options.remove_every == 0) {
        const size_t victim = rng() % added.size();
        writer.Key("remove").BeginArray();
        writer.BeginArray();
        for (const std::string& name : added[victim]) writer.String(name);
        writer.EndArray();
        writer.EndArray();
        added.erase(added.begin() + static_cast<ptrdiff_t>(victim));
      }
      added.push_back(std::move(query));
    }
    writer.EndObject();
    request.line = writer.Take();
    plan.push_back(std::move(request));
  }
  return plan;
}

uint64_t FieldAsInt(const obs::JsonValue& value, const char* key) {
  const obs::JsonValue* field = value.Find(key);
  return (field != nullptr && field->is_number())
             ? static_cast<uint64_t>(field->number)
             : 0;
}

/// One synchronous request/response exchange on a dedicated connection
/// (nothing else is in flight, so the next newline is our response).
Result<std::string> SyncRequest(int fd, const std::string& line) {
  MC3_RETURN_IF_ERROR(SendLine(fd, line));
  std::string buffer;
  char chunk[4096];
  size_t newline;
  while ((newline = buffer.find('\n')) == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      return Status::IOError("connection closed mid-scrape");
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
  return buffer.substr(0, newline);
}

/// Fetches one `metrics` exposition; returns the raw text body and fills
/// `sample` with the series values (absent samples stay -1).
Result<std::string> ScrapeOnce(int fd, uint64_t id, double at_seconds,
                               ScrapeSample* sample) {
  auto line = SyncRequest(
      fd, "{\"op\":\"metrics\",\"id\":" + std::to_string(id) + "}");
  if (!line.ok()) return line.status();
  auto envelope = obs::ParseJson(*line);
  if (!envelope.ok() || !envelope->is_object()) {
    return Status::InvalidArgument("metrics response is not a JSON object");
  }
  const obs::JsonValue* code = envelope->Find("code");
  if (code == nullptr || !code->is_number() ||
      static_cast<int>(code->number) != 200) {
    return Status::InvalidArgument("metrics verb answered non-200");
  }
  const obs::JsonValue* body = envelope->Find("body");
  if (body == nullptr || !body->is_string()) {
    return Status::InvalidArgument("metrics response has no body");
  }
  auto parsed = obs::ParseExposition(body->string);
  if (!parsed.ok()) return parsed.status();
  sample->at_seconds = at_seconds;
  const auto value_of = [&parsed](const char* name) -> double {
    const obs::ParsedSample* found = obs::FindSample(*parsed, name);
    return found != nullptr ? found->value : -1;
  };
  sample->requests = value_of("mc3_server_requests_total");
  sample->responses = value_of("mc3_server_responses_total");
  sample->requests_update = value_of("mc3_server_requests_update_total");
  sample->requests_solve = value_of("mc3_server_requests_solve_total");
  sample->batches = value_of("mc3_server_batches_total");
  sample->queue_depth = value_of("mc3_server_queue_depth");
  return body->string;
}

/// End-of-run cross-check: the final exposition's per-verb request
/// counters must equal the client's sent counts (requests are counted at
/// parse, strictly before any response, so by the time every response has
/// arrived the counters are settled), and the server cannot have committed
/// more engine batches than the client saw acknowledged updates. Registry
/// counters absent from the exposition (obs compiled out) skip their check.
std::string ReconcileDrift(const ScrapeSample& last, const LoadReport& report) {
  const auto drift = [](const char* what, double got, uint64_t want) {
    return std::string(what) + ": server reports " +
           std::to_string(static_cast<uint64_t>(got)) + ", client counted " +
           std::to_string(want);
  };
  if (last.requests_update >= 0 &&
      static_cast<uint64_t>(last.requests_update) !=
          report.client_updates_sent) {
    return drift("update requests", last.requests_update,
                 report.client_updates_sent);
  }
  if (last.requests_solve >= 0 &&
      static_cast<uint64_t>(last.requests_solve) !=
          report.client_solves_sent) {
    return drift("solve requests", last.requests_solve,
                 report.client_solves_sent);
  }
  if (last.batches >= 0 && static_cast<uint64_t>(last.batches) >
                               report.client_updates_acked) {
    return drift("engine batches exceed acked updates", last.batches,
                 report.client_updates_acked);
  }
  return "";
}

}  // namespace

Result<LoadReport> RunLoadGen(const LoadGenOptions& options) {
  if (options.port == 0) {
    return Status::InvalidArgument("loadgen needs a target --port");
  }
  if (options.operations == 0 || options.connections == 0) {
    return Status::InvalidArgument(
        "loadgen needs operations > 0 and connections > 0");
  }
  LoadReport report;
  report.options = options;

  const std::vector<PlannedRequest> plan = PlanRequests(options);
  // send_time[id] stamps each request as it goes out; -1 = not sent yet.
  // Atomic because readers race the stamp: a response can only arrive after
  // its send, but the socket gives no happens-before edge the memory model
  // (or TSan) recognizes.
  std::vector<std::atomic<double>> send_time(options.operations + 3);
  for (auto& slot : send_time) slot.store(-1, std::memory_order_relaxed);
  // kinds[id] classifies each planned request for the read/write latency
  // split; the end-of-run stats/shutdown ids stay kOther.
  std::vector<ReqKind> kinds(options.operations + 3, ReqKind::kOther);
  for (const PlannedRequest& request : plan) {
    kinds[request.id] = request.solve ? ReqKind::kRead : ReqKind::kWrite;
  }
  Timer run_clock;

  // The scraper's dedicated connection opens first: a failure here returns
  // before any thread launches.
  int scrape_fd = -1;
  if (options.scrape_interval_seconds > 0) {
    auto fd = Connect(options.host, options.port, options.timeout_seconds);
    if (!fd.ok()) return fd.status();
    scrape_fd = *fd;
  }

  std::vector<std::unique_ptr<ConnState>> conns;
  for (size_t c = 0; c < options.connections; ++c) {
    auto fd = Connect(options.host, options.port, options.timeout_seconds);
    if (!fd.ok()) {
      if (scrape_fd >= 0) ::close(scrape_fd);
      return fd.status();
    }
    auto conn = std::make_unique<ConnState>();
    conn->fd = *fd;
    conns.push_back(std::move(conn));
  }
  for (auto& conn : conns) {
    ConnState* state = conn.get();
    state->reader = std::thread(
        [state, &run_clock, &send_time, &kinds] {
          ReaderLoop(state, &run_clock, &send_time, &kinds);
        });
  }

  // Scraper thread: samples the metrics exposition every interval, then
  // takes one settled final sample after the stop flag (set once every
  // response is in). State is scraper-owned and harvested after join.
  std::vector<ScrapeSample> scrapes;
  std::string final_exposition;
  std::atomic<bool> scrape_stop{false};
  std::thread scraper;
  if (scrape_fd >= 0) {
    scraper = std::thread([&options, &run_clock, &scrapes, &final_exposition,
                           &scrape_stop, scrape_fd] {
      uint64_t scrape_id = 1;
      const auto take = [&] {
        ScrapeSample sample;
        auto body = ScrapeOnce(scrape_fd, scrape_id++, run_clock.Seconds(),
                               &sample);
        if (body.ok()) {
          scrapes.push_back(sample);
          final_exposition = std::move(*body);
        }
      };
      while (!scrape_stop.load(std::memory_order_acquire)) {
        take();
        Timer slept;
        while (!scrape_stop.load(std::memory_order_acquire) &&
               slept.Seconds() < options.scrape_interval_seconds) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      }
      take();  // settled counters: every client response has arrived
    });
  }

  // Open-loop replay: sleep to each request's arrival time, stamp, send.
  Status send_status = Status::OK();
  for (const PlannedRequest& request : plan) {
    const double now = run_clock.Seconds();
    if (request.at > now) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(request.at - now));
    }
    ConnState& conn = *conns[request.conn];
    send_time[request.id].store(run_clock.Seconds(),
                                std::memory_order_release);
    send_status = SendLine(conn.fd, request.line);
    if (!send_status.ok()) break;
    ++conn.sent;
    ++report.sent;
    if (request.solve) {
      ++report.client_solves_sent;
    } else {
      ++report.client_updates_sent;
    }
  }

  // Wait for every in-flight response (each sent request gets exactly one).
  Timer waited;
  auto all_in = [&] {
    for (const auto& conn : conns) {
      if (conn->got.load(std::memory_order_acquire) < conn->sent) {
        return false;
      }
    }
    return true;
  };
  while (!all_in() && waited.Seconds() < options.timeout_seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  report.wall_seconds = run_clock.Seconds();

  // Stop the scraper now: its final sample then sees settled counters
  // (every response has arrived, and the server counts requests before it
  // answers), and it is gone before a drain can 503 its connection.
  if (scraper.joinable()) {
    scrape_stop.store(true, std::memory_order_release);
    scraper.join();
  }
  if (scrape_fd >= 0) ::close(scrape_fd);

  // Scrape the server's stats (connection 0) so the report can attest
  // coalescing; then optionally request the drain.
  ConnState& front = *conns[0];
  const uint64_t stats_id = options.operations + 1;
  send_time[stats_id].store(run_clock.Seconds(), std::memory_order_release);
  if (Status sent = SendLine(front.fd, "{\"op\":\"stats\",\"id\":" +
                                           std::to_string(stats_id) + "}");
      sent.ok()) {
    ++front.sent;
    ++report.sent;
    Timer stats_wait;
    while (front.StatsJson().empty() && stats_wait.Seconds() < 5) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  if (options.shutdown_after) {
    const uint64_t shutdown_id = options.operations + 2;
    send_time[shutdown_id].store(run_clock.Seconds(),
                                 std::memory_order_release);
    if (Status sent =
            SendLine(front.fd, "{\"op\":\"shutdown\",\"id\":" +
                                   std::to_string(shutdown_id) + "}");
        sent.ok()) {
      ++front.sent;
      ++report.sent;
      Timer drain_wait;
      while (front.ShutdownJson().empty() && drain_wait.Seconds() < 10) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      report.drained = !front.ShutdownJson().empty();
    }
  }

  // Readers are unblocked by closing our end; they may first drain any
  // remaining buffered lines from the server.
  for (auto& conn : conns) ::shutdown(conn->fd, SHUT_WR);
  for (auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
    ::close(conn->fd);
  }

  std::vector<double> latencies;
  std::vector<double> read_latencies;
  std::vector<double> write_latencies;
  for (const auto& conn : conns) {
    report.responses += conn->got.load(std::memory_order_acquire);
    report.ok += conn->ok;
    report.client_updates_acked += conn->ok_updates;
    report.rejected += conn->rejected;
    report.refused += conn->refused;
    report.errors += conn->errors;
    latencies.insert(latencies.end(), conn->latencies.begin(),
                     conn->latencies.end());
    read_latencies.insert(read_latencies.end(), conn->read_latencies.begin(),
                          conn->read_latencies.end());
    write_latencies.insert(write_latencies.end(),
                           conn->write_latencies.begin(),
                           conn->write_latencies.end());
  }
  if (options.scrape_interval_seconds > 0) {
    report.scrapes = std::move(scrapes);
    report.final_exposition = std::move(final_exposition);
    if (!report.scrapes.empty()) {
      report.reconcile.checked = true;
      report.reconcile.error = ReconcileDrift(report.scrapes.back(), report);
    }
  }
  report.lost =
      report.sent > report.responses ? report.sent - report.responses : 0;
  report.latency = Summarize(std::move(latencies));
  report.read_latency = Summarize(std::move(read_latencies));
  report.write_latency = Summarize(std::move(write_latencies));
  report.achieved_qps =
      report.wall_seconds > 0
          ? static_cast<double>(report.sent) / report.wall_seconds
          : 0;

  // Readers are joined: plain access is safe from here on.
  if (!front.stats_json.empty()) {
    if (auto stats = obs::ParseJson(front.stats_json); stats.ok()) {
      report.server_stats_valid = true;
      report.server_batches = FieldAsInt(*stats, "batches");
      report.server_coalesced_ops = FieldAsInt(*stats, "coalesced_ops");
      report.server_max_batch = FieldAsInt(*stats, "max_batch");
      report.server_requests = FieldAsInt(*stats, "requests");
      report.server_responses = FieldAsInt(*stats, "responses");
      report.server_rejected = FieldAsInt(*stats, "rejected");
      // Sharding counters are additive to the stats verb: absent on a
      // pre-sharding server, so missing fields simply stay 0.
      report.server_engine_shards = FieldAsInt(*stats, "engine_shards");
      report.server_migrated = FieldAsInt(*stats, "migrated");
      if (const obs::JsonValue* shards = stats->Find("shards");
          shards != nullptr && shards->is_array()) {
        for (const obs::JsonValue& entry : shards->array) {
          if (!entry.is_object()) continue;
          ShardLoad load;
          load.shard = FieldAsInt(entry, "shard");
          load.batches = FieldAsInt(entry, "batches");
          load.ops = FieldAsInt(entry, "ops");
          load.queue_depth = FieldAsInt(entry, "queue_depth");
          report.server_shards.push_back(load);
        }
      }
    }
  }
  if (report.responses == 0) {
    return Status::IOError("no responses received from " + options.host +
                           ":" + std::to_string(options.port));
  }
  return report;
}

std::string RenderLoadReport(const LoadReport& report) {
  obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema").String(kLoadReportSchema);
  writer.Key("tool").String("mc3_loadgen");

  writer.Key("target").BeginObject();
  writer.Key("host").String(report.options.host);
  writer.Key("port").Int(report.options.port);
  writer.EndObject();

  writer.Key("run").BeginObject();
  writer.Key("qps").Number(report.options.qps);
  writer.Key("operations").Int(report.options.operations);
  writer.Key("connections").Int(report.options.connections);
  writer.Key("burst").Int(report.options.burst);
  writer.Key("solve_every").Int(report.options.solve_every);
  writer.Key("remove_every").Int(report.options.remove_every);
  writer.Key("seed").Int(report.options.seed);
  writer.Key("tenants").Int(report.options.tenants);
  if (report.options.read_ratio >= 0) {
    writer.Key("read_ratio").Number(report.options.read_ratio);
  }
  writer.Key("shutdown_after").Bool(report.options.shutdown_after);
  writer.EndObject();

  writer.Key("client").BeginObject();
  writer.Key("sent").Int(report.sent);
  writer.Key("responses").Int(report.responses);
  writer.Key("ok").Int(report.ok);
  writer.Key("rejected").Int(report.rejected);
  writer.Key("refused").Int(report.refused);
  writer.Key("errors").Int(report.errors);
  writer.Key("lost").Int(report.lost);
  writer.Key("wall_seconds").Number(report.wall_seconds);
  writer.Key("achieved_qps").Number(report.achieved_qps);
  const auto write_summary = [&writer](const char* key,
                                       const LatencySummary& summary) {
    writer.Key(key).BeginObject();
    writer.Key("count").Int(summary.count);
    writer.Key("mean").Number(summary.mean);
    writer.Key("p50").Number(summary.p50);
    writer.Key("p95").Number(summary.p95);
    writer.Key("p99").Number(summary.p99);
    writer.Key("max").Number(summary.max);
    writer.EndObject();
  };
  write_summary("latency_seconds", report.latency);
  // Mixed-mode split (additive, like the telemetry block): present exactly
  // when the run planned by read ratio.
  if (report.options.read_ratio >= 0) {
    write_summary("read_latency_seconds", report.read_latency);
    write_summary("write_latency_seconds", report.write_latency);
  }
  writer.EndObject();

  writer.Key("server").BeginObject();
  writer.Key("stats_valid").Bool(report.server_stats_valid);
  writer.Key("batches").Int(report.server_batches);
  writer.Key("coalesced_ops").Int(report.server_coalesced_ops);
  writer.Key("max_batch").Int(report.server_max_batch);
  writer.Key("requests").Int(report.server_requests);
  writer.Key("responses").Int(report.server_responses);
  writer.Key("rejected").Int(report.server_rejected);
  writer.Key("engine_shards").Int(report.server_engine_shards);
  writer.Key("migrated").Int(report.server_migrated);
  writer.Key("shards").BeginArray();
  for (const ShardLoad& load : report.server_shards) {
    writer.BeginObject();
    writer.Key("shard").Int(load.shard);
    writer.Key("batches").Int(load.batches);
    writer.Key("ops").Int(load.ops);
    writer.Key("queue_depth").Int(load.queue_depth);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();

  // Additive telemetry block (absent when the scraper did not run, so the
  // schema tag stays mc3.load_report/1).
  if (report.options.scrape_interval_seconds > 0) {
    writer.Key("telemetry").BeginObject();
    writer.Key("scrape_interval_seconds")
        .Number(report.options.scrape_interval_seconds);
    writer.Key("updates_sent").Int(report.client_updates_sent);
    writer.Key("solves_sent").Int(report.client_solves_sent);
    writer.Key("updates_acked").Int(report.client_updates_acked);
    writer.Key("scrapes").BeginArray();
    for (const ScrapeSample& sample : report.scrapes) {
      writer.BeginObject();
      writer.Key("at_seconds").Number(sample.at_seconds);
      writer.Key("requests").Number(sample.requests);
      writer.Key("responses").Number(sample.responses);
      writer.Key("requests_update").Number(sample.requests_update);
      writer.Key("requests_solve").Number(sample.requests_solve);
      writer.Key("batches").Number(sample.batches);
      writer.Key("queue_depth").Number(sample.queue_depth);
      writer.EndObject();
    }
    writer.EndArray();
    writer.Key("reconcile").BeginObject();
    writer.Key("checked").Bool(report.reconcile.checked);
    writer.Key("ok").Bool(report.reconcile.checked &&
                          report.reconcile.error.empty());
    writer.Key("error").String(report.reconcile.error);
    writer.EndObject();
    writer.EndObject();
  }

  writer.Key("drained").Bool(report.drained);
  writer.EndObject();
  return writer.Take();
}

namespace {

Status RequireMember(const obs::JsonValue& object, const char* key,
                     obs::JsonValue::Kind kind, const char* where) {
  const obs::JsonValue* member = object.Find(key);
  if (member == nullptr || member->kind != kind) {
    return Status::InvalidArgument(std::string("load report: ") + where +
                                   " needs member \"" + key + "\"");
  }
  return Status::OK();
}

}  // namespace

Status ValidateLoadReportJson(const std::string& json) {
  auto parsed = obs::ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const obs::JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::InvalidArgument("load report: document must be an object");
  }
  const obs::JsonValue* schema = root.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != kLoadReportSchema) {
    return Status::InvalidArgument(
        std::string("load report: schema must be ") + kLoadReportSchema);
  }
  using Kind = obs::JsonValue::Kind;
  MC3_RETURN_IF_ERROR(RequireMember(root, "tool", Kind::kString, "root"));
  MC3_RETURN_IF_ERROR(RequireMember(root, "target", Kind::kObject, "root"));
  MC3_RETURN_IF_ERROR(RequireMember(root, "run", Kind::kObject, "root"));
  MC3_RETURN_IF_ERROR(RequireMember(root, "client", Kind::kObject, "root"));
  MC3_RETURN_IF_ERROR(RequireMember(root, "server", Kind::kObject, "root"));
  MC3_RETURN_IF_ERROR(RequireMember(root, "drained", Kind::kBool, "root"));
  const obs::JsonValue& target = *root.Find("target");
  MC3_RETURN_IF_ERROR(RequireMember(target, "host", Kind::kString, "target"));
  MC3_RETURN_IF_ERROR(RequireMember(target, "port", Kind::kNumber, "target"));
  const obs::JsonValue& run = *root.Find("run");
  for (const char* key :
       {"qps", "operations", "connections", "burst", "seed"}) {
    MC3_RETURN_IF_ERROR(RequireMember(run, key, Kind::kNumber, "run"));
  }
  const obs::JsonValue& client = *root.Find("client");
  for (const char* key : {"sent", "responses", "ok", "rejected", "refused",
                          "errors", "lost", "wall_seconds", "achieved_qps"}) {
    MC3_RETURN_IF_ERROR(RequireMember(client, key, Kind::kNumber, "client"));
  }
  MC3_RETURN_IF_ERROR(
      RequireMember(client, "latency_seconds", Kind::kObject, "client"));
  const obs::JsonValue& latency = *client.Find("latency_seconds");
  for (const char* key : {"count", "mean", "p50", "p95", "p99", "max"}) {
    MC3_RETURN_IF_ERROR(
        RequireMember(latency, key, Kind::kNumber, "latency_seconds"));
  }
  // Mixed-mode runs (run.read_ratio present) must carry the full per-verb
  // latency split; single-mode runs must not fake one half of it.
  if (run.Find("read_ratio") != nullptr) {
    MC3_RETURN_IF_ERROR(
        RequireMember(run, "read_ratio", Kind::kNumber, "run"));
    for (const char* block : {"read_latency_seconds",
                              "write_latency_seconds"}) {
      MC3_RETURN_IF_ERROR(RequireMember(client, block, Kind::kObject,
                                        "client"));
      const obs::JsonValue& split = *client.Find(block);
      for (const char* key : {"count", "mean", "p50", "p95", "p99", "max"}) {
        MC3_RETURN_IF_ERROR(RequireMember(split, key, Kind::kNumber, block));
      }
    }
  }
  const obs::JsonValue& server = *root.Find("server");
  MC3_RETURN_IF_ERROR(
      RequireMember(server, "stats_valid", Kind::kBool, "server"));
  for (const char* key : {"batches", "coalesced_ops", "max_batch", "requests",
                          "responses", "rejected", "engine_shards",
                          "migrated"}) {
    MC3_RETURN_IF_ERROR(RequireMember(server, key, Kind::kNumber, "server"));
  }
  MC3_RETURN_IF_ERROR(RequireMember(server, "shards", Kind::kArray, "server"));
  for (const obs::JsonValue& entry : server.Find("shards")->array) {
    if (!entry.is_object()) {
      return Status::InvalidArgument(
          "load report: server.shards entries must be objects");
    }
    for (const char* key : {"shard", "batches", "ops", "queue_depth"}) {
      MC3_RETURN_IF_ERROR(
          RequireMember(entry, key, Kind::kNumber, "server.shards"));
    }
  }
  // The telemetry block is optional (scraper runs only), but when present
  // it must be structurally complete.
  if (const obs::JsonValue* telemetry = root.Find("telemetry");
      telemetry != nullptr) {
    if (!telemetry->is_object()) {
      return Status::InvalidArgument(
          "load report: telemetry must be an object");
    }
    for (const char* key : {"scrape_interval_seconds", "updates_sent",
                            "solves_sent", "updates_acked"}) {
      MC3_RETURN_IF_ERROR(
          RequireMember(*telemetry, key, Kind::kNumber, "telemetry"));
    }
    MC3_RETURN_IF_ERROR(
        RequireMember(*telemetry, "scrapes", Kind::kArray, "telemetry"));
    for (const obs::JsonValue& entry : telemetry->Find("scrapes")->array) {
      if (!entry.is_object()) {
        return Status::InvalidArgument(
            "load report: telemetry.scrapes entries must be objects");
      }
      for (const char* key :
           {"at_seconds", "requests", "responses", "requests_update",
            "requests_solve", "batches", "queue_depth"}) {
        MC3_RETURN_IF_ERROR(
            RequireMember(entry, key, Kind::kNumber, "telemetry.scrapes"));
      }
    }
    MC3_RETURN_IF_ERROR(
        RequireMember(*telemetry, "reconcile", Kind::kObject, "telemetry"));
    const obs::JsonValue& reconcile = *telemetry->Find("reconcile");
    MC3_RETURN_IF_ERROR(
        RequireMember(reconcile, "checked", Kind::kBool, "reconcile"));
    MC3_RETURN_IF_ERROR(
        RequireMember(reconcile, "ok", Kind::kBool, "reconcile"));
    MC3_RETURN_IF_ERROR(
        RequireMember(reconcile, "error", Kind::kString, "reconcile"));
  }
  return Status::OK();
}

}  // namespace mc3::loadgen
