// Build metadata for fleet-facing surfaces: the serving `health` verb and
// the `metrics` exposition both report which compiler and configuration
// produced the running binary, so operators can tell what they are scraping.
// Everything here is resolved from predefined macros plus the MC3_BUILD_TYPE
// definition injected by the top-level CMakeLists.txt.
#pragma once

#include <string>

namespace mc3::util {

/// Compiler id and version, e.g. "clang 17.0.6" or "gcc 13.2.0".
inline std::string BuildCompiler() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

/// CMAKE_BUILD_TYPE the binary was configured with (e.g. "RelWithDebInfo").
inline std::string BuildType() {
#if defined(MC3_BUILD_TYPE)
  const std::string type = MC3_BUILD_TYPE;
  return type.empty() ? "unspecified" : type;
#else
  return "unspecified";
#endif
}

}  // namespace mc3::util
