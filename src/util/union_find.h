// Disjoint-set forest over dense ids, growing on demand. Used for the
// shared-property component partition (paper Section 3, Observation 3.2)
// both offline (Algorithm 1 step 2) and online (the serving engine's
// dirty-region repartition).
#pragma once

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

namespace mc3 {

/// Union-find with path halving. Ids outside the current range are adopted
/// lazily as singletons.
class UnionFind {
 public:
  uint32_t Find(uint32_t x) {
    Ensure(x);
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[a] = b;
  }

  bool Connected(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

 private:
  void Ensure(uint32_t x) {
    if (x >= parent_.size()) {
      const size_t old = parent_.size();
      parent_.resize(static_cast<size_t>(x) + 1);
      std::iota(parent_.begin() + old, parent_.end(),
                static_cast<uint32_t>(old));
    }
  }
  std::vector<uint32_t> parent_;
};

}  // namespace mc3

