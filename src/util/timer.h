// Wall-clock timing for the experiment harness (figures 3c/3f report
// running-time series).
#pragma once

#include <chrono>

namespace mc3 {

/// Monotonic wall-clock stopwatch, started on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mc3

