// Minimal data-parallel helper for solving independent sub-instances
// concurrently (paper Section 3, step 2: "This step allows us to solve all
// sub-instances in parallel").
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace mc3 {

/// Runs fn(0), ..., fn(count-1) across up to `num_threads` worker threads
/// (work-stealing via an atomic counter). `num_threads <= 1` runs inline.
/// fn must be safe to call concurrently for distinct indices; exceptions
/// must not escape fn.
inline void ParallelFor(size_t count, size_t num_threads,
                        const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (num_threads <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const size_t workers = std::min(num_threads, count);
  std::atomic<size_t> next{0};
  auto worker = [&] {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t t = 1; t < workers; ++t) threads.emplace_back(worker);
  worker();
  for (auto& thread : threads) thread.join();
}

}  // namespace mc3

