// Deterministic pseudo-random number generation for dataset synthesis and
// property-based tests. A thin wrapper over SplitMix64 + xoshiro256**, so
// streams are reproducible across platforms and standard-library versions
// (std::uniform_int_distribution is not portable across implementations).
#pragma once

#include <cassert>
#include <cstdint>

namespace mc3 {

/// Deterministic, portable RNG (xoshiro256** seeded via SplitMix64).
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams on all
  /// platforms.
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  uint64_t UniformInt(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    const uint64_t range = hi - lo + 1;  // range == 0 means the full 2^64.
    if (range == 0) return Next();
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = range * ((~uint64_t{0}) / range);
    uint64_t v;
    do {
      v = Next();
    } while (v >= limit);
    return lo + (v % range);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace mc3

