#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace mc3 {

Result<CsvDocument> ParseCsv(const std::string& text) {
  CsvDocument doc;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  bool row_has_content = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&]() -> Status {
    if (in_quotes) {
      return Status::IOError("unterminated quoted field");
    }
    if (row_has_content || !row.empty()) {
      end_field();
      // Skip comment rows (first field starts with '#') and all-empty rows.
      bool all_empty = true;
      for (const auto& f : row) {
        if (!f.empty()) {
          all_empty = false;
          break;
        }
      }
      if (!all_empty && !(row.size() >= 1 && !row[0].empty() &&
                          row[0][0] == '#')) {
        doc.rows.push_back(std::move(row));
      }
      row.clear();
    }
    row_has_content = false;
    return Status::OK();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      row_has_content = true;
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        row_has_content = true;
        break;
      case ',':
        end_field();
        row_has_content = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n': {
        Status st = end_row();
        if (!st.ok()) return st;
        break;
      }
      default:
        field += c;
        field_started = true;
        row_has_content = true;
        break;
    }
  }
  if (row_has_content || !row.empty() || field_started) {
    Status st = end_row();
    if (!st.ok()) return st;
  }
  if (in_quotes) return Status::IOError("unterminated quoted field");
  return doc;
}

Result<CsvDocument> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str());
}

namespace {

bool NeedsQuoting(const std::string& field) {
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(const std::string& field, std::string* out) {
  if (!NeedsQuoting(field)) {
    *out += field;
    return;
  }
  *out += '"';
  for (char c : field) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

}  // namespace

std::string FormatCsv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      AppendField(row[i], &out);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open file for writing: " + path);
  out << FormatCsv(rows);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace mc3
