// Status / Result<T>: lightweight error propagation without exceptions,
// following the RocksDB / Arrow idiom. Library entry points that can fail on
// user input return Status (or Result<T>); programming errors are asserted.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace mc3 {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< malformed input (e.g. empty query, negative cost)
  kInfeasible,        ///< no finite-cost solution exists
  kNotFound,          ///< missing file / missing key
  kIOError,           ///< filesystem or parse failure
  kInternal,          ///< invariant violation surfaced as an error
};

/// Outcome of a fallible operation: a code plus a human-readable message.
/// [[nodiscard]] is the compiler-enforced side of lint rule R5: a dropped
/// Status is a swallowed error.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<category>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value or an error Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Value accessors; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mc3

/// Propagates a non-OK Status to the caller.
#define MC3_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::mc3::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

