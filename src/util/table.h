// Console table rendering for the benchmark harness: every figure/table
// binary prints the paper's rows/series through this formatter so output is
// uniform and machine-greppable.
#pragma once

#include <string>
#include <vector>

namespace mc3 {

/// Accumulates rows and renders an aligned ASCII table.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats a double with the given precision.
  static std::string Num(double v, int precision = 2);

  /// Renders the table (header, separator, rows) as a string.
  std::string ToString() const;

  /// Renders the body as CSV (for EXPERIMENTS.md ingestion).
  std::string ToCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mc3

