#include "util/table.h"

#include <cassert>
#include <cmath>
#include <cstdio>

#include "util/csv.h"

namespace mc3 {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double v, int precision) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      line += (i == 0) ? "| " : " | ";
      line += row[i];
      line.append(widths[i] - row[i].size(), ' ');
    }
    line += " |\n";
    return line;
  };
  std::string out = render_row(headers_);
  std::string sep = "|";
  for (size_t w : widths) sep += std::string(w + 2, '-') + "|";
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::ToCsv() const {
  std::vector<std::vector<std::string>> all;
  all.push_back(headers_);
  all.insert(all.end(), rows_.begin(), rows_.end());
  return FormatCsv(all);
}

}  // namespace mc3
