// Clang Thread Safety Analysis attribute shim.
//
// Wraps clang's `-Wthread-safety` attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) behind MC3_*
// macros that expand to nothing on compilers without the attributes, so
// the annotations cost nothing under GCC and are machine-checked under
// clang (the `thread-safety` CI job builds with
// `-Wthread-safety -Werror=thread-safety`).
//
// libstdc++'s std::mutex / std::lock_guard carry no such attributes, so
// annotating raw standard types is useless: the analysis would reject
// every access to a guarded field because it never sees the lock happen.
// Threaded code therefore uses the annotated wrappers in util/sync.h
// (util::Mutex, util::MutexLock, util::UniqueLock, util::CondVar), and
// lint rule R8 (`guard`, docs/static_analysis.md) enforces that classes
// owning a mutex annotate their data members with MC3_GUARDED_BY.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define MC3_TSA_ENABLED 1
#endif
#endif

#ifdef MC3_TSA_ENABLED
#define MC3_TSA_ATTR(x) __attribute__((x))
#else
#define MC3_TSA_ENABLED 0
#define MC3_TSA_ATTR(x)  // no-op: compiler lacks thread-safety attributes
#endif

/// Declares a type to be a capability (lockable). Argument names the
/// capability kind in diagnostics, e.g. MC3_CAPABILITY("mutex").
#define MC3_CAPABILITY(x) MC3_TSA_ATTR(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability (std::lock_guard-shaped).
#define MC3_SCOPED_CAPABILITY MC3_TSA_ATTR(scoped_lockable)

/// Field annotation: reads/writes require holding `x`.
#define MC3_GUARDED_BY(x) MC3_TSA_ATTR(guarded_by(x))

/// Pointer field annotation: the pointee is guarded by `x` (the pointer
/// itself is not).
#define MC3_PT_GUARDED_BY(x) MC3_TSA_ATTR(pt_guarded_by(x))

/// Function annotation: caller must hold the listed capabilities.
#define MC3_REQUIRES(...) MC3_TSA_ATTR(requires_capability(__VA_ARGS__))

/// Function annotation: caller must hold the listed capabilities in shared
/// (reader) mode, e.g. a pinned epoch on concurrency::EpochManager.
#define MC3_REQUIRES_SHARED(...) \
  MC3_TSA_ATTR(requires_shared_capability(__VA_ARGS__))

/// Function annotation: acquires the listed capabilities (or, on a
/// scoped-capability member, the capabilities the object manages).
#define MC3_ACQUIRE(...) MC3_TSA_ATTR(acquire_capability(__VA_ARGS__))

/// Function annotation: acquires the listed capabilities in shared
/// (reader) mode — many readers may hold them concurrently.
#define MC3_ACQUIRE_SHARED(...) \
  MC3_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))

/// Function annotation: releases the listed capabilities.
#define MC3_RELEASE(...) MC3_TSA_ATTR(release_capability(__VA_ARGS__))

/// Function annotation: releases capabilities held in shared mode.
#define MC3_RELEASE_SHARED(...) \
  MC3_TSA_ATTR(release_shared_capability(__VA_ARGS__))

/// Function annotation: acquires the capability iff the call returns the
/// first argument, e.g. MC3_TRY_ACQUIRE(true).
#define MC3_TRY_ACQUIRE(...) MC3_TSA_ATTR(try_acquire_capability(__VA_ARGS__))

/// Function annotation: caller must NOT hold the listed capabilities
/// (the function acquires them itself, or blocks on work done under them).
#define MC3_EXCLUDES(...) MC3_TSA_ATTR(locks_excluded(__VA_ARGS__))

/// Function annotation: returns a reference to the named capability.
#define MC3_RETURN_CAPABILITY(x) MC3_TSA_ATTR(lock_returned(x))

/// Escape hatch: the function's locking is correct by a protocol the
/// analysis cannot see (document why at each use site).
#define MC3_NO_THREAD_SAFETY_ANALYSIS MC3_TSA_ATTR(no_thread_safety_analysis)
