// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320): the checksum of
// write-ahead-log record framing (src/durability/wal.h). Table-driven,
// dependency-free; the table is built once on first use.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace mc3 {

namespace internal {

inline const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) != 0 ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace internal

/// Extends a running CRC-32 with `size` bytes (start from `Crc32(...)` with
/// no prior value, or chain calls for split buffers).
inline uint32_t Crc32Extend(uint32_t crc, const void* data, size_t size) {
  const auto& table = internal::Crc32Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

/// CRC-32 of one contiguous buffer.
inline uint32_t Crc32(const void* data, size_t size) {
  return Crc32Extend(0, data, size);
}

}  // namespace mc3
