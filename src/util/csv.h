// Minimal CSV reading/writing for instance serialization and experiment
// output. Supports the subset of RFC 4180 the library emits: comma
// separation, double-quote quoting, quote escaping by doubling.
#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace mc3 {

/// A parsed CSV document: rows of string fields.
struct CsvDocument {
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text. Empty lines are skipped; lines starting with '#' are
/// treated as comments and skipped.
Result<CsvDocument> ParseCsv(const std::string& text);

/// Reads and parses a CSV file.
Result<CsvDocument> ReadCsvFile(const std::string& path);

/// Serializes rows to CSV text, quoting fields that contain separators.
std::string FormatCsv(const std::vector<std::vector<std::string>>& rows);

/// Writes rows to a CSV file, creating/truncating it.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace mc3

