// Floating-point comparison helpers backing lint rule R2 (see
// docs/static_analysis.md): costs and weights are doubles that flow through
// sums and ratios, so exact ==/!= on them is either a rounding bug waiting
// to happen or a deliberate sentinel test that deserves a named function.
// The three helpers cover every intentional case in this codebase:
//
//   ApproxEq(a, b)     — tolerant equality for accumulated/derived costs.
//   IsInfiniteCost(c)  — the kInfiniteCost "classifier omitted" sentinel.
//                        Exactly equivalent to c == kInfiniteCost (true only
//                        for +inf; false for NaN, -inf and every finite c).
//   IsZeroCost(c)      — the exact-zero sentinel for free classifiers.
//                        Zero is exactly representable and only ever assigned
//                        (never computed), so exact comparison is correct.
#pragma once

#include <algorithm>
#include <cmath>

namespace mc3 {

/// Tolerant equality for cost values that went through arithmetic. Equal
/// infinities compare equal; NaN compares unequal to everything.
inline bool ApproxEq(double a, double b, double rel_tol = 1e-9,
                     double abs_tol = 1e-12) {
  if (a == b) return true;  // fast path; also +inf==+inf, -inf==-inf
  if (std::isinf(a) || std::isinf(b)) return false;
  const double diff = std::fabs(a - b);
  return diff <= abs_tol ||
         diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

/// True iff `c` is the kInfiniteCost sentinel (+infinity). `!IsInfiniteCost(c)`
/// is exactly `c != kInfiniteCost`, including for NaN and -inf.
inline bool IsInfiniteCost(double c) { return std::isinf(c) && c > 0; }

/// True iff `c` is exactly zero (the "free classifier" sentinel; zero is
/// assigned, never computed, so exact comparison is intended here).
inline bool IsZeroCost(double c) { return c == 0; }

}  // namespace mc3
