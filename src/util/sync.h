// Annotated synchronization primitives for clang Thread Safety Analysis.
//
// Thin zero-overhead wrappers over the standard primitives that carry the
// MC3_* capability attributes (util/thread_annotations.h), so clang can
// statically verify lock discipline: which fields each mutex guards
// (MC3_GUARDED_BY), which functions expect it held (MC3_REQUIRES), and
// that every acquire has a matching release. Under GCC everything expands
// to the plain standard types' behavior.
//
// All threaded code in the repo uses these instead of raw std::mutex /
// std::lock_guard / std::condition_variable; lint rule R8 (`guard`)
// enforces annotation coverage on classes that own a mutex.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "util/thread_annotations.h"

namespace mc3::util {

class CondVar;

/// std::mutex with capability attributes. Satisfies BasicLockable /
/// Lockable, so standard RAII types also work, but prefer MutexLock /
/// UniqueLock below: the standard ones carry no attributes and make the
/// analysis reject every guarded access under clang.
class MC3_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MC3_ACQUIRE() { mu_.lock(); }
  void unlock() MC3_RELEASE() { mu_.unlock(); }
  bool try_lock() MC3_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::lock_guard over Mutex: acquires in the constructor, releases in
/// the destructor, no unlock in between.
class MC3_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MC3_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() MC3_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

/// std::unique_lock over Mutex: scoped like MutexLock but relockable, for
/// code that drops the lock around blocking work (e.g. the WAL group
/// committer releases it around the disk write). The destructor releases
/// only if currently held.
class MC3_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) MC3_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;
  ~UniqueLock() MC3_RELEASE() {
    if (held_) mu_.unlock();
  }

  void Unlock() MC3_RELEASE() {
    held_ = false;
    mu_.unlock();
  }
  void Lock() MC3_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable bound to util::Mutex. Wait takes the mutex and a
/// predicate and loops internally, so a lost-wakeup-prone bare wait is
/// unrepresentable (lint rule R7 `cv-wait` bans predicate-less waits on
/// the standard types too). Callers hold `mu` across the call; predicates
/// run with it held, so lambdas reading guarded fields should themselves
/// be annotated MC3_REQUIRES(mu).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until pred() is true. Caller holds `mu`; it is released while
  /// blocked and re-held both when pred runs and on return.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) MC3_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();  // the caller's scope still owns the re-acquired lock
  }

  /// Blocks until pred() is true or `timeout` elapsed; returns pred().
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
               Pred pred) MC3_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(lock, timeout, std::move(pred));
    lock.release();
    return satisfied;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mc3::util
