// Primal-dual f-approximation for Weighted Set Cover (Bar-Yehuda & Even's
// local-ratio scheme). Achieves the same factor-f guarantee as the LP-based
// algorithm the paper cites [Vazirani 2013], with no LP solve, in
// O(sum |S|) time — this is the scalable default f-method inside
// Algorithm 3 (see lp_rounding.h for the literal LP variant).
#pragma once

#include "setcover/instance.h"
#include "util/status.h"

namespace mc3::setcover {

/// Runs the primal-dual f-approximation. For each uncovered element (in
/// element order) the minimum residual cost among its covering sets is paid
/// as a dual increase; sets whose residual reaches zero are selected.
/// Returns kInfeasible if some element is in no finite-cost set.
Result<WscSolution> SolvePrimalDual(const WscInstance& instance);

}  // namespace mc3::setcover

