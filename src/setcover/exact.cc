#include "setcover/exact.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace mc3::setcover {

Result<WscSolution> SolveWscExact(const WscInstance& instance,
                                  int32_t max_elements) {
  if (instance.num_elements > max_elements) {
    return Status::InvalidArgument(
        "universe too large for the exact set-cover DP");
  }
  const int32_t n = instance.num_elements;
  const uint32_t full = n == 0 ? 0 : (1u << n) - 1;

  // Set masks; keep only finite-cost, non-empty sets.
  std::vector<uint32_t> masks;
  std::vector<SetId> ids;
  std::vector<double> costs;
  for (size_t i = 0; i < instance.sets.size(); ++i) {
    const WscSet& s = instance.sets[i];
    if (!std::isfinite(s.cost) || s.elements.empty()) continue;
    uint32_t mask = 0;
    for (ElementId e : s.elements) mask |= 1u << e;
    masks.push_back(mask);
    ids.push_back(static_cast<SetId>(i));
    costs.push_back(s.cost);
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dp(full + 1, kInf);
  std::vector<int32_t> via(full + 1, -1);
  std::vector<uint32_t> from(full + 1, 0);
  dp[0] = 0;
  for (uint32_t mask = 0; mask <= full; ++mask) {
    if (dp[mask] == kInf) continue;
    if (mask == full) break;
    // Branch on the first uncovered element: some chosen set must contain
    // it, which prunes the transition fan-out without losing optimality.
    uint32_t first_uncovered = 0;
    while (mask & (1u << first_uncovered)) ++first_uncovered;
    for (size_t s = 0; s < masks.size(); ++s) {
      if (!(masks[s] & (1u << first_uncovered))) continue;
      const uint32_t next = mask | masks[s];
      const double cost = dp[mask] + costs[s];
      if (cost < dp[next]) {
        dp[next] = cost;
        via[next] = static_cast<int32_t>(s);
        from[next] = mask;
      }
    }
  }
  if (dp[full] == kInf) {
    return Status::Infeasible("some element is in no finite-cost set");
  }
  WscSolution solution;
  solution.cost = dp[full];
  for (uint32_t mask = full; mask != 0; mask = from[mask]) {
    solution.selected.push_back(ids[via[mask]]);
  }
  std::sort(solution.selected.begin(), solution.selected.end());
  return solution;
}

}  // namespace mc3::setcover
