// Greedy Weighted Set Cover [Chvatal 1979]: at each step select the set
// maximizing (newly covered elements) / cost. Approximation factor
// H(Delta) <= ln Delta + 1.
//
// Two implementations with identical selections (deterministic tie-breaks):
//   * naive      — recomputes every ratio per iteration, O(n m) [6];
//   * lazy heap  — priority queue with lazy re-evaluation,
//                  O(log m * sum |S|) [Cormode-Karloff-Wirth 2010].
// The lazy variant is what Algorithm 3 uses; the naive one serves as an
// oracle in tests and a baseline in the micro-benchmarks.
#pragma once

#include "setcover/instance.h"
#include "util/status.h"

namespace mc3::setcover {

/// Greedy WSC via a lazy-deletion max-heap. Zero-cost sets that cover at
/// least one uncovered element are selected up front (their ratio is
/// infinite). Infinite-cost sets are never selected. Returns kInfeasible if
/// some element is in no finite-cost set.
Result<WscSolution> SolveGreedy(const WscInstance& instance);

/// Reference greedy recomputing all ratios each round; same tie-breaking
/// (higher ratio first, then lower set id) and hence identical output.
Result<WscSolution> SolveGreedyNaive(const WscInstance& instance);

}  // namespace mc3::setcover

