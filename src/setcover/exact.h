// Exact Weighted Set Cover via dynamic programming over element subsets:
// dp[mask] = cheapest cost covering at least the elements in mask.
// O(2^n * m) time, O(2^n) space — the textbook exact algorithm for small
// universes [Hua et al. 2009/2010 study this family for multicover]. Used
// as an oracle by the test suite and available for small planning problems.
#pragma once

#include "setcover/instance.h"
#include "util/status.h"

namespace mc3::setcover {

/// Solves WSC exactly. Returns InvalidArgument when the universe exceeds
/// `max_elements` (default 22: 4M dp states) and kInfeasible when some
/// element is in no finite-cost set.
Result<WscSolution> SolveWscExact(const WscInstance& instance,
                                  int32_t max_elements = 22);

}  // namespace mc3::setcover

