#include "setcover/instance.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mc3::setcover {

Status ValidateWsc(const WscInstance& instance) {
  if (instance.num_elements < 0) {
    return Status::InvalidArgument("negative num_elements");
  }
  for (size_t i = 0; i < instance.sets.size(); ++i) {
    const WscSet& s = instance.sets[i];
    if (s.cost < 0 || std::isnan(s.cost)) {
      return Status::InvalidArgument("set " + std::to_string(i) +
                                     " has invalid cost");
    }
    for (size_t j = 0; j < s.elements.size(); ++j) {
      if (s.elements[j] < 0 || s.elements[j] >= instance.num_elements) {
        return Status::InvalidArgument("set " + std::to_string(i) +
                                       " references unknown element");
      }
      if (j > 0 && s.elements[j] <= s.elements[j - 1]) {
        return Status::InvalidArgument("set " + std::to_string(i) +
                                       " elements not sorted-unique");
      }
    }
  }
  return Status::OK();
}

int32_t WscFrequency(const WscInstance& instance) {
  std::vector<int32_t> counts(instance.num_elements, 0);
  for (const WscSet& s : instance.sets) {
    if (!std::isfinite(s.cost)) continue;
    for (ElementId e : s.elements) ++counts[e];
  }
  int32_t f = 0;
  for (int32_t c : counts) f = std::max(f, c);
  return f;
}

int32_t WscDegree(const WscInstance& instance) {
  size_t degree = 0;
  for (const WscSet& s : instance.sets) {
    if (!std::isfinite(s.cost)) continue;
    degree = std::max(degree, s.elements.size());
  }
  return static_cast<int32_t>(degree);
}

std::vector<std::vector<SetId>> BuildElementIndex(
    const WscInstance& instance) {
  std::vector<std::vector<SetId>> index(instance.num_elements);
  for (size_t i = 0; i < instance.sets.size(); ++i) {
    const WscSet& s = instance.sets[i];
    if (!std::isfinite(s.cost)) continue;
    for (ElementId e : s.elements) {
      index[e].push_back(static_cast<SetId>(i));
    }
  }
  return index;
}

bool WscCovers(const WscInstance& instance, const WscSolution& solution) {
  std::vector<bool> covered(instance.num_elements, false);
  for (SetId id : solution.selected) {
    for (ElementId e : instance.sets[id].elements) covered[e] = true;
  }
  return std::all_of(covered.begin(), covered.end(),
                     [](bool b) { return b; });
}

WscSolution PruneRedundantSets(const WscInstance& instance,
                               const WscSolution& solution) {
  // cover_count[e] = how many selected sets cover e.
  std::vector<int32_t> cover_count(instance.num_elements, 0);
  for (SetId id : solution.selected) {
    for (ElementId e : instance.sets[id].elements) ++cover_count[e];
  }
  // Try to drop sets from most expensive to least.
  std::vector<SetId> order = solution.selected;
  std::stable_sort(order.begin(), order.end(), [&](SetId a, SetId b) {
    return instance.sets[a].cost > instance.sets[b].cost;
  });
  std::vector<bool> dropped_lookup(instance.sets.size(), false);
  for (SetId id : order) {
    const WscSet& s = instance.sets[id];
    const bool redundant =
        std::all_of(s.elements.begin(), s.elements.end(),
                    [&](ElementId e) { return cover_count[e] >= 2; });
    if (redundant) {
      dropped_lookup[id] = true;
      for (ElementId e : s.elements) --cover_count[e];
    }
  }
  WscSolution pruned;
  for (SetId id : solution.selected) {
    if (!dropped_lookup[id]) {
      pruned.selected.push_back(id);
      pruned.cost += instance.sets[id].cost;
    }
  }
  return pruned;
}

}  // namespace mc3::setcover
