#include "setcover/greedy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/float_cmp.h"

namespace mc3::setcover {
namespace {

/// Ensures every element belongs to at least one finite-cost set.
Status CheckFeasible(const WscInstance& instance) {
  std::vector<bool> coverable(instance.num_elements, false);
  for (const WscSet& s : instance.sets) {
    if (!std::isfinite(s.cost)) continue;
    for (ElementId e : s.elements) coverable[e] = true;
  }
  for (ElementId e = 0; e < instance.num_elements; ++e) {
    if (!coverable[e]) {
      return Status::Infeasible("element " + std::to_string(e) +
                                " is in no finite-cost set");
    }
  }
  return Status::OK();
}

int32_t CountUncovered(const WscSet& s, const std::vector<bool>& covered) {
  int32_t count = 0;
  for (ElementId e : s.elements) {
    if (!covered[e]) ++count;
  }
  return count;
}

/// Selects `id`, marking its elements covered. Returns how many were new.
int32_t Select(const WscInstance& instance, SetId id,
               std::vector<bool>* covered, int32_t* remaining,
               WscSolution* solution) {
  int32_t newly = 0;
  for (ElementId e : instance.sets[id].elements) {
    if (!(*covered)[e]) {
      (*covered)[e] = true;
      ++newly;
    }
  }
  *remaining -= newly;
  solution->selected.push_back(id);
  solution->cost += instance.sets[id].cost;
  return newly;
}

/// Process-lifetime counters for the greedy loop; the per-solve picture
/// lives in the "greedy" span stats.
void RecordGreedyPick(int32_t newly_covered) {
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter& picks = registry.GetCounter("setcover.greedy.picks");
  static obs::Histogram& coverage =
      registry.GetHistogram("setcover.greedy.coverage_per_pick");
  picks.Add();
  coverage.Record(newly_covered);
}

/// Selects every zero-cost set that covers something new. Shared by both
/// variants so their outputs stay identical.
void SelectFreeSets(const WscInstance& instance, std::vector<bool>* covered,
                    int32_t* remaining, WscSolution* solution) {
  for (size_t i = 0; i < instance.sets.size(); ++i) {
    const WscSet& s = instance.sets[i];
    if (IsZeroCost(s.cost) && CountUncovered(s, *covered) > 0) {
      Select(instance, static_cast<SetId>(i), covered, remaining, solution);
    }
  }
}

}  // namespace

Result<WscSolution> SolveGreedy(const WscInstance& instance) {
  obs::ScopedSpan span("greedy");
  MC3_RETURN_IF_ERROR(CheckFeasible(instance));
  std::vector<bool> covered(instance.num_elements, false);
  int32_t remaining = instance.num_elements;
  WscSolution solution;
  SelectFreeSets(instance, &covered, &remaining, &solution);

  struct Entry {
    double ratio;
    SetId id;
    bool operator<(const Entry& other) const {
      // priority_queue is a max-heap: higher ratio wins; ties to lower id.
      if (ratio != other.ratio) return ratio < other.ratio;
      return id > other.id;
    }
  };
  std::priority_queue<Entry> heap;
  for (size_t i = 0; i < instance.sets.size(); ++i) {
    const WscSet& s = instance.sets[i];
    if (s.cost <= 0 || !std::isfinite(s.cost) || s.elements.empty()) continue;
    heap.push(Entry{static_cast<double>(s.elements.size()) / s.cost,
                    static_cast<SetId>(i)});
  }

  size_t picks = 0;
  size_t sets_scanned = 0;
  size_t lazy_reevals = 0;
  while (remaining > 0 && !heap.empty()) {
    const Entry top = heap.top();
    heap.pop();
    ++sets_scanned;
    const int32_t count = CountUncovered(instance.sets[top.id], covered);
    if (count == 0) continue;
    const double ratio =
        static_cast<double>(count) / instance.sets[top.id].cost;
    // Ratios only decrease as coverage grows, so a stale entry can safely be
    // re-inserted with its refreshed ratio; a fresh entry is the argmax.
    if (ratio == top.ratio) {
      const int32_t newly =
          Select(instance, top.id, &covered, &remaining, &solution);
      ++picks;
      RecordGreedyPick(newly);
    } else {
      ++lazy_reevals;
      heap.push(Entry{ratio, top.id});
    }
  }
  if (remaining > 0) {
    return Status::Internal("greedy terminated with uncovered elements");
  }
  // Work counters for the perf-regression harness: heap pops and lazy
  // re-insertions are the greedy's deterministic cost drivers.
  {
    auto& registry = obs::MetricsRegistry::Global();
    static obs::Counter& pops =
        registry.GetCounter("setcover.greedy.heap_pops");
    static obs::Counter& reevals =
        registry.GetCounter("setcover.greedy.lazy_reevals");
    pops.Add(sets_scanned);
    reevals.Add(lazy_reevals);
  }
  span.AddStat("elements", static_cast<double>(instance.num_elements));
  span.AddStat("picks", static_cast<double>(picks));
  span.AddStat("sets_scanned", static_cast<double>(sets_scanned));
  span.AddStat("cost", solution.cost);
  return solution;
}

Result<WscSolution> SolveGreedyNaive(const WscInstance& instance) {
  MC3_RETURN_IF_ERROR(CheckFeasible(instance));
  std::vector<bool> covered(instance.num_elements, false);
  int32_t remaining = instance.num_elements;
  WscSolution solution;
  SelectFreeSets(instance, &covered, &remaining, &solution);

  while (remaining > 0) {
    SetId best = -1;
    double best_ratio = -1;
    for (size_t i = 0; i < instance.sets.size(); ++i) {
      const WscSet& s = instance.sets[i];
      if (s.cost <= 0 || !std::isfinite(s.cost)) continue;
      const int32_t count = CountUncovered(s, covered);
      if (count == 0) continue;
      const double ratio = static_cast<double>(count) / s.cost;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = static_cast<SetId>(i);
      }
    }
    if (best < 0) {
      return Status::Internal("greedy terminated with uncovered elements");
    }
    Select(instance, best, &covered, &remaining, &solution);
  }
  return solution;
}

}  // namespace mc3::setcover
