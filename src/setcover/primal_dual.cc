#include "setcover/primal_dual.h"

#include <cmath>
#include <limits>
#include <vector>

namespace mc3::setcover {

Result<WscSolution> SolvePrimalDual(const WscInstance& instance) {
  const auto element_index = BuildElementIndex(instance);
  for (ElementId e = 0; e < instance.num_elements; ++e) {
    if (element_index[e].empty()) {
      return Status::Infeasible("element " + std::to_string(e) +
                                " is in no finite-cost set");
    }
  }

  std::vector<double> residual(instance.sets.size());
  for (size_t i = 0; i < instance.sets.size(); ++i) {
    residual[i] = instance.sets[i].cost;
  }
  std::vector<bool> covered(instance.num_elements, false);
  std::vector<bool> selected(instance.sets.size(), false);
  WscSolution solution;

  auto select = [&](SetId id) {
    selected[id] = true;
    solution.selected.push_back(id);
    solution.cost += instance.sets[id].cost;
    for (ElementId e : instance.sets[id].elements) covered[e] = true;
  };

  for (ElementId e = 0; e < instance.num_elements; ++e) {
    if (covered[e]) continue;
    // Raise this element's dual until some covering set becomes tight.
    double delta = std::numeric_limits<double>::infinity();
    for (SetId id : element_index[e]) {
      if (!selected[id]) delta = std::min(delta, residual[id]);
    }
    // At least one covering set exists and unselected (else e were covered).
    for (SetId id : element_index[e]) {
      if (selected[id]) continue;
      residual[id] -= delta;
      if (residual[id] <= 1e-12) select(id);
    }
  }
  if (!WscCovers(instance, solution)) {
    return Status::Internal("primal-dual left elements uncovered");
  }
  return solution;
}

}  // namespace mc3::setcover
