#include "setcover/primal_dual.h"

#include <cmath>
#include <limits>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mc3::setcover {

Result<WscSolution> SolvePrimalDual(const WscInstance& instance) {
  obs::ScopedSpan span("primal_dual");
  const auto element_index = BuildElementIndex(instance);
  for (ElementId e = 0; e < instance.num_elements; ++e) {
    if (element_index[e].empty()) {
      return Status::Infeasible("element " + std::to_string(e) +
                                " is in no finite-cost set");
    }
  }

  std::vector<double> residual(instance.sets.size());
  for (size_t i = 0; i < instance.sets.size(); ++i) {
    residual[i] = instance.sets[i].cost;
  }
  std::vector<bool> covered(instance.num_elements, false);
  std::vector<bool> selected(instance.sets.size(), false);
  WscSolution solution;

  auto select = [&](SetId id) {
    selected[id] = true;
    solution.selected.push_back(id);
    solution.cost += instance.sets[id].cost;
    for (ElementId e : instance.sets[id].elements) covered[e] = true;
  };

  size_t rounds = 0;
  for (ElementId e = 0; e < instance.num_elements; ++e) {
    if (covered[e]) continue;
    ++rounds;
    // Raise this element's dual until some covering set becomes tight.
    double delta = std::numeric_limits<double>::infinity();
    for (SetId id : element_index[e]) {
      if (!selected[id]) delta = std::min(delta, residual[id]);
    }
    // At least one covering set exists and unselected (else e were covered).
    for (SetId id : element_index[e]) {
      if (selected[id]) continue;
      residual[id] -= delta;
      if (residual[id] <= 1e-12) select(id);
    }
  }
  if (!WscCovers(instance, solution)) {
    return Status::Internal("primal-dual left elements uncovered");
  }
  {
    auto& registry = obs::MetricsRegistry::Global();
    static obs::Counter& raises =
        registry.GetCounter("setcover.primal_dual.raises");
    raises.Add(rounds);
  }
  span.AddStat("elements", static_cast<double>(instance.num_elements));
  span.AddStat("rounds", static_cast<double>(rounds));
  span.AddStat("selected", static_cast<double>(solution.selected.size()));
  span.AddStat("cost", solution.cost);
  return solution;
}

}  // namespace mc3::setcover
