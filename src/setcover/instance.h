// Weighted Set Cover (WSC) instance model, the target of the paper's
// Section 5 reduction: elements are (query, property) occurrences, sets are
// classifiers.
#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace mc3::setcover {

/// Element index within a WSC instance; elements are dense 0..num_elements-1.
using ElementId = int32_t;
/// Set index within a WSC instance.
using SetId = int32_t;

/// One candidate set: the elements it covers and its cost.
struct WscSet {
  std::vector<ElementId> elements;  ///< sorted, unique
  double cost = 0;
};

/// A Weighted Set Cover instance.
struct WscInstance {
  ElementId num_elements = 0;
  std::vector<WscSet> sets;
};

/// Checks structural validity: element ids in range, sorted-unique element
/// lists, non-negative costs.
Status ValidateWsc(const WscInstance& instance);

/// The frequency parameter f: the maximum, over elements, of the number of
/// (finite-cost) sets containing the element. Zero for empty instances.
int32_t WscFrequency(const WscInstance& instance);

/// The degree parameter Delta: the cardinality of the largest finite-cost
/// set. Zero for empty instances.
int32_t WscDegree(const WscInstance& instance);

/// For each element, the ids of the finite-cost sets that contain it.
std::vector<std::vector<SetId>> BuildElementIndex(const WscInstance& instance);

/// A solution: the chosen set ids (in selection order) and their total cost.
struct WscSolution {
  std::vector<SetId> selected;
  double cost = 0;
};

/// True iff the union of the selected sets covers every element.
bool WscCovers(const WscInstance& instance, const WscSolution& solution);

/// Post-pass: drops selected sets that are redundant (every element they
/// cover is also covered by another selected set), scanning in decreasing
/// cost order so the most expensive redundancies go first. Preserves
/// coverage; never increases cost. Returns the pruned solution.
WscSolution PruneRedundantSets(const WscInstance& instance,
                               const WscSolution& solution);

}  // namespace mc3::setcover

