// LP-rounding f-approximation for Weighted Set Cover [Vazirani 2013,
// ch. 14]: solve the LP relaxation
//     min sum c_S x_S   s.t.  sum_{S covering e} x_S >= 1,  x >= 0
// and select every set with x_S >= 1/f. This is the literal algorithm the
// paper cites for the f bound in Algorithm 3; it runs a dense simplex, so
// it is intended for small/medium instances (the scalable equivalent is
// setcover/primal_dual.h).
#pragma once

#include "setcover/instance.h"
#include "util/status.h"

namespace mc3::setcover {

/// Runs LP rounding. Returns kInfeasible if some element is in no
/// finite-cost set.
Result<WscSolution> SolveLpRounding(const WscInstance& instance);

/// Solves only the LP relaxation, returning its optimal objective (a lower
/// bound on the optimal integral cover used in tests and ablations).
Result<double> SetCoverLpLowerBound(const WscInstance& instance);

}  // namespace mc3::setcover

