#include "setcover/lp_rounding.h"

#include <cmath>
#include <vector>

#include "lp/simplex.h"

namespace mc3::setcover {
namespace {

/// Builds the LP relaxation over the finite-cost sets. `var_to_set` maps LP
/// variable indices back to set ids.
Result<lp::LinearProgram> BuildRelaxation(const WscInstance& instance,
                                          std::vector<SetId>* var_to_set) {
  lp::LinearProgram relaxation;
  std::vector<int32_t> set_to_var(instance.sets.size(), -1);
  for (size_t i = 0; i < instance.sets.size(); ++i) {
    if (!std::isfinite(instance.sets[i].cost)) continue;
    set_to_var[i] = relaxation.num_vars++;
    var_to_set->push_back(static_cast<SetId>(i));
    relaxation.objective.push_back(instance.sets[i].cost);
  }
  const auto element_index = BuildElementIndex(instance);
  for (ElementId e = 0; e < instance.num_elements; ++e) {
    if (element_index[e].empty()) {
      return Status::Infeasible("element " + std::to_string(e) +
                                " is in no finite-cost set");
    }
    lp::LinearProgram::Constraint c;
    c.sense = lp::ConstraintSense::kGreaterEqual;
    c.rhs = 1;
    for (SetId id : element_index[e]) {
      c.terms.emplace_back(set_to_var[id], 1.0);
    }
    relaxation.constraints.push_back(std::move(c));
  }
  return relaxation;
}

}  // namespace

Result<WscSolution> SolveLpRounding(const WscInstance& instance) {
  std::vector<SetId> var_to_set;
  auto relaxation = BuildRelaxation(instance, &var_to_set);
  if (!relaxation.ok()) return relaxation.status();
  auto lp_solution = lp::SolveSimplex(*relaxation);
  if (!lp_solution.ok()) return lp_solution.status();
  if (lp_solution->outcome != lp::LpOutcome::kOptimal) {
    // The relaxation is feasible by construction and bounded below by 0.
    return Status::Internal("set-cover LP relaxation did not solve");
  }

  const int32_t f = WscFrequency(instance);
  // f >= 1 because every element is in at least one finite-cost set.
  const double threshold = 1.0 / f - 1e-9;
  WscSolution solution;
  for (size_t v = 0; v < var_to_set.size(); ++v) {
    if (lp_solution->values[v] >= threshold) {
      solution.selected.push_back(var_to_set[v]);
      solution.cost += instance.sets[var_to_set[v]].cost;
    }
  }
  if (!WscCovers(instance, solution)) {
    // Cannot happen: each element's constraint forces some x_S >= 1/f.
    return Status::Internal("LP rounding produced a non-cover");
  }
  return solution;
}

Result<double> SetCoverLpLowerBound(const WscInstance& instance) {
  std::vector<SetId> var_to_set;
  auto relaxation = BuildRelaxation(instance, &var_to_set);
  if (!relaxation.ok()) return relaxation.status();
  auto lp_solution = lp::SolveSimplex(*relaxation);
  if (!lp_solution.ok()) return lp_solution.status();
  if (lp_solution->outcome != lp::LpOutcome::kOptimal) {
    return Status::Internal("set-cover LP relaxation did not solve");
  }
  return lp_solution->objective;
}

}  // namespace mc3::setcover
