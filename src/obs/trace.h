// Per-solve phase tracing: a tree of timed spans covering Algorithm 1's four
// preprocessing steps, component decomposition, the k<=2 max-flow pipeline,
// the WSC greedy / f-approximation loops, and the online engine's update
// path. A Trace is activated on the current thread (RAII); instrumented code
// opens ScopedSpans against the ambient trace without any API threading.
// When no trace is active — the common production case — every ScopedSpan
// constructor is a single thread-local read, so instrumentation stays in the
// noise (<2% on bench_online_updates; see docs/observability.md).
//
// Parallel sections (ParallelFor over components) adopt the parent span on
// each worker thread via ScopedSpanAdoption; child creation under a shared
// parent is serialized by the Trace's mutex.
//
// With MC3_OBS_DISABLED the whole layer compiles to no-ops.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#if !defined(MC3_OBS_DISABLED)
#include <chrono>

#include "util/sync.h"
#include "util/thread_annotations.h"
#endif

namespace mc3::obs {

class JsonWriter;

/// One node of the span tree: a named phase, its wall time, optional numeric
/// stats (insertion-ordered), and nested sub-phases.
struct SpanNode {
  std::string name;
  double seconds = 0;
  std::vector<std::pair<std::string, double>> stats;
  std::vector<std::unique_ptr<SpanNode>> children;

  /// Sum of `seconds` over this node and descendants matching `name`.
  double TotalSeconds(const std::string& span_name) const;
  /// Number of this node + descendants matching `name`.
  size_t CountSpans(const std::string& span_name) const;
  /// First descendant (pre-order, self included) named `span_name`.
  const SpanNode* FindSpan(const std::string& span_name) const;
};

#if !defined(MC3_OBS_DISABLED)

/// A per-solve span tree. Thread-compatible for reads after the traced
/// region ends; concurrent span creation during the region is internally
/// synchronized.
class Trace {
 public:
  explicit Trace(std::string root_name = "solve");

  SpanNode* root() { return root_.get(); }
  const SpanNode& root() const { return *root_; }

  /// Appends a child span under `parent` (thread-safe).
  SpanNode* OpenChild(SpanNode* parent, const char* name);

  /// Renders the span tree as a JSON object into `writer` (value position).
  void Render(JsonWriter* writer) const;

 private:
  util::Mutex mu_;
  // mu_ serializes concurrent OpenChild appends during the traced region;
  // root()/Render read the tree only after the region ends (class contract
  // above), so the pointer is deliberately not lock-annotated.
  // mc3-lint: guard-ok(reads are quiescent by contract; only OpenChild runs concurrently)
  std::unique_ptr<SpanNode> root_;
};

/// The ambient tracing context of the current thread.
struct TraceContext {
  Trace* trace = nullptr;
  SpanNode* span = nullptr;
};

/// Current thread's ambient context ({nullptr, nullptr} when tracing is
/// inactive). Pass the result to ScopedSpanAdoption inside ParallelFor
/// workers to keep spans attached across threads.
TraceContext CurrentTraceContext();

/// Activates `trace` on this thread for the scope's lifetime: subsequent
/// ScopedSpans attach under the trace's root. Restores the previous ambient
/// context on destruction.
class ScopedTraceActivation {
 public:
  explicit ScopedTraceActivation(Trace* trace);
  ~ScopedTraceActivation();
  ScopedTraceActivation(const ScopedTraceActivation&) = delete;
  ScopedTraceActivation& operator=(const ScopedTraceActivation&) = delete;

 private:
  TraceContext saved_;
};

/// Re-installs a captured context on a worker thread (RAII).
class ScopedSpanAdoption {
 public:
  explicit ScopedSpanAdoption(const TraceContext& context);
  ~ScopedSpanAdoption();
  ScopedSpanAdoption(const ScopedSpanAdoption&) = delete;
  ScopedSpanAdoption& operator=(const ScopedSpanAdoption&) = delete;

 private:
  TraceContext saved_;
};

/// RAII span: opens a child of the ambient span on construction (no-op when
/// tracing is inactive), records wall time and pops on destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a numeric stat to this span (no-op when inactive).
  void AddStat(const char* key, double value);

  bool active() const { return node_ != nullptr; }

 private:
  Trace* trace_ = nullptr;
  SpanNode* node_ = nullptr;
  TraceContext saved_;
  std::chrono::steady_clock::time_point start_;
};

#else  // MC3_OBS_DISABLED

class Trace {
 public:
  explicit Trace(std::string = "solve") {}
  SpanNode* root() { return &root_; }
  const SpanNode& root() const { return root_; }
  SpanNode* OpenChild(SpanNode*, const char*) { return &root_; }
  void Render(JsonWriter* writer) const;

 private:
  SpanNode root_;
};

struct TraceContext {
  Trace* trace = nullptr;
  SpanNode* span = nullptr;
};

inline TraceContext CurrentTraceContext() { return {}; }

class ScopedTraceActivation {
 public:
  explicit ScopedTraceActivation(Trace*) {}
};

class ScopedSpanAdoption {
 public:
  explicit ScopedSpanAdoption(const TraceContext&) {}
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*) {}
  void AddStat(const char*, double) {}
  bool active() const { return false; }
};

#endif  // MC3_OBS_DISABLED

}  // namespace mc3::obs

