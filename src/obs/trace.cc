#include "obs/trace.h"

#include "obs/json.h"

namespace mc3::obs {

double SpanNode::TotalSeconds(const std::string& span_name) const {
  double total = name == span_name ? seconds : 0;
  for (const auto& child : children) total += child->TotalSeconds(span_name);
  return total;
}

size_t SpanNode::CountSpans(const std::string& span_name) const {
  size_t total = name == span_name ? 1 : 0;
  for (const auto& child : children) total += child->CountSpans(span_name);
  return total;
}

const SpanNode* SpanNode::FindSpan(const std::string& span_name) const {
  if (name == span_name) return this;
  for (const auto& child : children) {
    if (const SpanNode* found = child->FindSpan(span_name)) return found;
  }
  return nullptr;
}

namespace {

void RenderNode(const SpanNode& node, JsonWriter* writer) {
  writer->BeginObject();
  writer->Key("name").String(node.name);
  writer->Key("seconds").Number(node.seconds);
  if (!node.stats.empty()) {
    writer->Key("stats").BeginObject();
    for (const auto& [key, value] : node.stats) {
      writer->Key(key).Number(value);
    }
    writer->EndObject();
  }
  if (!node.children.empty()) {
    writer->Key("children").BeginArray();
    for (const auto& child : node.children) RenderNode(*child, writer);
    writer->EndArray();
  }
  writer->EndObject();
}

}  // namespace

#if !defined(MC3_OBS_DISABLED)

namespace {

thread_local TraceContext g_ambient;

}  // namespace

Trace::Trace(std::string root_name) : root_(std::make_unique<SpanNode>()) {
  root_->name = std::move(root_name);
}

SpanNode* Trace::OpenChild(SpanNode* parent, const char* name) {
  auto child = std::make_unique<SpanNode>();
  child->name = name;
  SpanNode* raw = child.get();
  {
    util::MutexLock lock(mu_);
    parent->children.push_back(std::move(child));
  }
  return raw;
}

void Trace::Render(JsonWriter* writer) const {
  RenderNode(*root_, writer);
}

TraceContext CurrentTraceContext() { return g_ambient; }

ScopedTraceActivation::ScopedTraceActivation(Trace* trace) : saved_(g_ambient) {
  g_ambient = TraceContext{trace, trace != nullptr ? trace->root() : nullptr};
}

ScopedTraceActivation::~ScopedTraceActivation() { g_ambient = saved_; }

ScopedSpanAdoption::ScopedSpanAdoption(const TraceContext& context)
    : saved_(g_ambient) {
  g_ambient = context;
}

ScopedSpanAdoption::~ScopedSpanAdoption() { g_ambient = saved_; }

ScopedSpan::ScopedSpan(const char* name) {
  const TraceContext ambient = g_ambient;
  if (ambient.trace == nullptr) return;
  trace_ = ambient.trace;
  node_ = trace_->OpenChild(ambient.span, name);
  saved_ = ambient;
  g_ambient = TraceContext{trace_, node_};
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (node_ == nullptr) return;
  node_->seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  g_ambient = saved_;
}

void ScopedSpan::AddStat(const char* key, double value) {
  if (node_ == nullptr) return;
  node_->stats.emplace_back(key, value);
}

#else  // MC3_OBS_DISABLED

void Trace::Render(JsonWriter* writer) const { RenderNode(root_, writer); }

#endif  // MC3_OBS_DISABLED

}  // namespace mc3::obs
