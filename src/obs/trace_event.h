// Chrome trace-event exporter for the serving pipeline (docs/observability.md,
// "Serving telemetry"). Collects per-thread spans tagged with request trace
// IDs and renders them as a Chrome trace-event JSON document
// ({"traceEvents": [...]}) loadable in Perfetto / chrome://tracing.
//
// A request's journey crosses threads (connection worker -> engine worker ->
// shard workers -> WAL committer), so spans alone do not show causality. Each
// span may therefore carry one or more trace IDs; at render time the sink
// stitches every ID's spans together with flow events ('s' -> 't' -> 'f'),
// ordered by timestamp. Phases are assigned at render time rather than at
// record time because stages can complete out of order (group commit acks a
// batch before the fsync that makes it durable).
//
// Recording is mutex-guarded but off the default path: the server only
// records spans for sampled requests (`--trace-sample N`). Under
// -DMC3_OBS=OFF the whole class degrades to inlined no-ops.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

#if !defined(MC3_OBS_DISABLED)
#include <map>
#include <thread>

#include "util/sync.h"
#include "util/thread_annotations.h"
#include "util/timer.h"
#endif

namespace mc3::obs {

#if !defined(MC3_OBS_DISABLED)

/// Thread-safe collector of trace-event records. One sink lives for the
/// duration of a server run; threads register a display name once and append
/// spans as sampled requests pass through them.
class TraceEventSink {
 public:
  /// `max_events` bounds memory for long runs; further spans are counted in
  /// dropped() instead of recorded.
  explicit TraceEventSink(size_t max_events = 1 << 20);

  /// Microseconds since the sink was created (the trace timebase).
  double NowUs() const;

  /// Registers the calling thread under `name` (first call wins; later calls
  /// are cheap no-ops). Rendered as a thread_name metadata event.
  void NameCurrentThread(const std::string& name);

  /// Records a complete ('X') event [start_us, start_us + dur_us) on the
  /// calling thread. `trace_ids` lists the sampled requests this span worked
  /// for (empty is allowed: the span renders without flow stitching).
  void Span(const std::string& name, double start_us, double dur_us,
            const std::vector<uint64_t>& trace_ids);

  /// Convenience overload for single-request spans. trace_id 0 means "not
  /// sampled": the span is recorded without a flow id.
  void Span(const std::string& name, double start_us, double dur_us,
            uint64_t trace_id);

  uint64_t dropped() const;

  /// Renders the whole sink as a Chrome trace-event JSON document. Flow
  /// events are finalized here: for each trace id with >= 2 spans, the
  /// earliest gets 's', the latest 'f', the rest 't'.
  std::string RenderJson() const;

  /// Renders and writes the document to `path` (overwrites).
  Status WriteFile(const std::string& path) const;

 private:
  struct Record {
    std::string name;
    int tid = 0;
    double ts = 0;   ///< microseconds since sink creation
    double dur = 0;  ///< microseconds
    std::vector<uint64_t> flow_ids;
  };

  int TidForCurrentThread() MC3_REQUIRES(mu_);

  // mc3-lint: guard-ok(started at construction, read-only afterwards)
  Timer timer_;
  const size_t max_events_;

  mutable util::Mutex mu_;
  std::map<std::thread::id, int> tids_ MC3_GUARDED_BY(mu_);
  std::vector<std::string> thread_names_ MC3_GUARDED_BY(mu_);
  std::vector<Record> records_ MC3_GUARDED_BY(mu_);
  uint64_t dropped_ MC3_GUARDED_BY(mu_) = 0;
};

#else  // MC3_OBS_DISABLED: the same API as inlined no-ops.

class TraceEventSink {
 public:
  explicit TraceEventSink(size_t = 0) {}
  double NowUs() const { return 0; }
  void NameCurrentThread(const std::string&) {}
  void Span(const std::string&, double, double,
            const std::vector<uint64_t>&) {}
  void Span(const std::string&, double, double, uint64_t) {}
  uint64_t dropped() const { return 0; }
  std::string RenderJson() const { return "{\"traceEvents\":[]}"; }
  Status WriteFile(const std::string&) const { return Status::OK(); }
};

#endif  // MC3_OBS_DISABLED

}  // namespace mc3::obs
