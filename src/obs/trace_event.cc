#include "obs/trace_event.h"

#if !defined(MC3_OBS_DISABLED)

#include <algorithm>
#include <fstream>
#include <utility>

#include "obs/json.h"

namespace mc3::obs {

TraceEventSink::TraceEventSink(size_t max_events) : max_events_(max_events) {}

double TraceEventSink::NowUs() const { return timer_.Seconds() * 1e6; }

int TraceEventSink::TidForCurrentThread() {
  const std::thread::id self = std::this_thread::get_id();
  auto it = tids_.find(self);
  if (it != tids_.end()) return it->second;
  const int tid = static_cast<int>(thread_names_.size());
  tids_.emplace(self, tid);
  thread_names_.emplace_back();  // named lazily; render falls back to tid-N
  return tid;
}

void TraceEventSink::NameCurrentThread(const std::string& name) {
  util::MutexLock lock(mu_);
  const int tid = TidForCurrentThread();
  if (thread_names_[tid].empty()) thread_names_[tid] = name;
}

void TraceEventSink::Span(const std::string& name, double start_us,
                          double dur_us,
                          const std::vector<uint64_t>& trace_ids) {
  util::MutexLock lock(mu_);
  if (records_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  Record rec;
  rec.name = name;
  rec.tid = TidForCurrentThread();
  rec.ts = start_us;
  rec.dur = dur_us;
  rec.flow_ids = trace_ids;
  records_.push_back(std::move(rec));
}

void TraceEventSink::Span(const std::string& name, double start_us,
                          double dur_us, uint64_t trace_id) {
  std::vector<uint64_t> ids;
  if (trace_id != 0) ids.push_back(trace_id);
  Span(name, start_us, dur_us, ids);
}

uint64_t TraceEventSink::dropped() const {
  util::MutexLock lock(mu_);
  return dropped_;
}

std::string TraceEventSink::RenderJson() const {
  util::MutexLock lock(mu_);
  JsonWriter w(/*compact=*/true);
  w.BeginObject().Key("traceEvents").BeginArray();

  // Thread-name metadata events first, so viewers label the rows.
  for (size_t tid = 0; tid < thread_names_.size(); ++tid) {
    std::string name = thread_names_[tid];
    if (name.empty()) name = "thread-" + std::to_string(tid);
    w.BeginObject();
    w.Key("ph").String("M");
    w.Key("pid").Int(1);
    w.Key("tid").Int(tid);
    w.Key("name").String("thread_name");
    w.Key("args").BeginObject().Key("name").String(name).EndObject();
    w.EndObject();
  }

  // Complete ('X') events, in recording order.
  for (const Record& rec : records_) {
    w.BeginObject();
    w.Key("ph").String("X");
    w.Key("pid").Int(1);
    w.Key("tid").Int(static_cast<uint64_t>(rec.tid));
    w.Key("name").String(rec.name);
    w.Key("cat").String("request");
    w.Key("ts").Number(rec.ts);
    w.Key("dur").Number(rec.dur);
    if (!rec.flow_ids.empty()) {
      w.Key("args").BeginObject().Key("trace_ids").BeginArray();
      for (uint64_t id : rec.flow_ids) w.Int(id);
      w.EndArray().EndObject();
    }
    w.EndObject();
  }

  // Flow events, finalized at render time: stages can finish out of order
  // (the WAL fsync may land after the response is written), so phases are
  // assigned by timestamp once all spans are in, not when they are recorded.
  struct FlowPoint {
    double ts = 0;  ///< binding point, inside the span on its thread
    int tid = 0;
    size_t order = 0;  ///< recording index, tie-break for equal timestamps
  };
  std::map<uint64_t, std::vector<FlowPoint>> flows;
  for (size_t i = 0; i < records_.size(); ++i) {
    const Record& rec = records_[i];
    for (uint64_t id : rec.flow_ids) {
      flows[id].push_back({rec.ts + rec.dur / 2, rec.tid, i});
    }
  }
  for (const auto& [id, points_in] : flows) {
    if (points_in.size() < 2) continue;  // nothing to connect
    std::vector<FlowPoint> points = points_in;
    std::sort(points.begin(), points.end(),
              [](const FlowPoint& a, const FlowPoint& b) {
                return a.ts != b.ts ? a.ts < b.ts : a.order < b.order;
              });
    for (size_t i = 0; i < points.size(); ++i) {
      const char* ph = i == 0 ? "s" : (i + 1 == points.size() ? "f" : "t");
      w.BeginObject();
      w.Key("ph").String(ph);
      w.Key("pid").Int(1);
      w.Key("tid").Int(static_cast<uint64_t>(points[i].tid));
      w.Key("name").String("request");
      w.Key("cat").String("request");
      w.Key("id").Int(id);
      w.Key("ts").Number(points[i].ts);
      if (ph[0] == 'f') w.Key("bp").String("e");
      w.EndObject();
    }
  }

  w.EndArray().EndObject();
  return w.Take();
}

Status TraceEventSink::WriteFile(const std::string& path) const {
  const std::string doc = RenderJson();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open trace file: " + path);
  out << doc << "\n";
  out.flush();
  if (!out) return Status::IOError("cannot write trace file: " + path);
  return Status::OK();
}

}  // namespace mc3::obs

#endif  // !MC3_OBS_DISABLED
