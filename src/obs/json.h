// Minimal JSON support for the observability layer: a streaming writer used
// to render SolveReport / bench reports, and a small recursive-descent
// parser used to validate emitted reports against their schema. Both are
// deliberately tiny (no external dependency, no DOM mutation API): reports
// are write-once documents and validation only needs read access.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace mc3::obs {

/// Streaming JSON writer with two-space pretty printing (or single-line
/// compact output for line-delimited protocols). Commas and indentation are
/// managed internally; callers interleave Key() with value calls inside
/// objects and plain value calls inside arrays. Non-finite numbers (JSON
/// has no Infinity/NaN) are written as null.
class JsonWriter {
 public:
  /// `compact` omits all whitespace: the document is one line, suitable for
  /// newline-delimited framing (the serving wire protocol).
  explicit JsonWriter(bool compact = false) : compact_(compact) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Int(uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Finalizes and returns the document (the writer is left empty).
  std::string Take();

 private:
  void BeforeValue();
  void Indent();

  std::string out_;
  /// One frame per open container: whether it already holds a value (for
  /// comma placement) and whether it is an object (for key bookkeeping).
  struct Frame {
    bool has_value = false;
    bool is_object = false;
  };
  std::vector<Frame> stack_;
  bool pending_key_ = false;  ///< a Key() was written, value comes next
  bool compact_ = false;      ///< no newlines or indentation
};

/// Appends the JSON escape of `value` (without surrounding quotes) to `out`.
void AppendJsonEscaped(std::string_view value, std::string* out);

/// Parsed JSON value (immutable tree). Object member order is preserved.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Member lookup on objects; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses a complete JSON document (trailing garbage is an error). Returns
/// kInvalidArgument with a position-annotated message on malformed input.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace mc3::obs

