#include "obs/exposition.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace mc3::obs {

namespace {

/// Prometheus float formatting: exact integers render bare, everything else
/// with enough digits to round-trip.
std::string FormatValue(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Label values escape backslash, double quote and newline.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void AppendLabels(const std::map<std::string, std::string>& labels,
                  std::string* out) {
  if (labels.empty()) return;
  *out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) *out += ',';
    first = false;
    *out += k;
    *out += "=\"";
    *out += EscapeLabelValue(v);
    *out += '"';
  }
  *out += '}';
}

void AppendHeader(const std::string& name, const std::string& raw,
                  const std::string& type, std::string* out) {
  *out += "# HELP " + name + " mc3 metric " + raw + "\n";
  *out += "# TYPE " + name + " " + type + "\n";
}

}  // namespace

std::string PrometheusName(const std::string& raw) {
  std::string out = "mc3_";
  out.reserve(raw.size() + 4);
  for (char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string RenderPrometheus(const MetricsSnapshot& snap,
                             const std::vector<ExpositionSample>& extra) {
  std::string out;
  for (const auto& [raw, value] : snap.counters) {
    const std::string name = PrometheusName(raw) + "_total";
    AppendHeader(name, raw, "counter", &out);
    out += name + " " + FormatValue(static_cast<double>(value)) + "\n";
  }
  for (const auto& [raw, value] : snap.gauges) {
    const std::string name = PrometheusName(raw);
    AppendHeader(name, raw, "gauge", &out);
    out += name + " " + FormatValue(value) + "\n";
  }
  for (const auto& [raw, h] : snap.histograms) {
    const std::string name = PrometheusName(raw);
    AppendHeader(name, raw, "histogram", &out);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      out += name + "_bucket{le=\"" +
             FormatValue(HistogramBucketBound(static_cast<int>(i) + 1)) +
             "\"} " + FormatValue(static_cast<double>(cumulative)) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " +
           FormatValue(static_cast<double>(h.count)) + "\n";
    out += name + "_sum " + FormatValue(h.sum) + "\n";
    out += name + "_count " + FormatValue(static_cast<double>(h.count)) + "\n";
  }
  std::string last_name;  // adjacent same-name extras share one header
  for (const ExpositionSample& s : extra) {
    std::string name = PrometheusName(s.name);
    if (s.type == "counter") name += "_total";
    if (name != last_name) {
      AppendHeader(name, s.name, s.type, &out);
      last_name = name;
    }
    out += name;
    AppendLabels(s.labels, &out);
    out += " " + FormatValue(s.value) + "\n";
  }
  return out;
}

Result<std::vector<ParsedSample>> ParseExposition(const std::string& text) {
  std::vector<ParsedSample> samples;
  size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    const auto fail = [&](const std::string& why) {
      return Status::InvalidArgument("exposition line " +
                                     std::to_string(line_no) + ": " + why +
                                     ": " + line);
    };
    size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i >= line.size() || line[i] == '#') continue;

    ParsedSample s;
    const size_t name_start = i;
    while (i < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[i])) ||
            line[i] == '_' || line[i] == ':')) {
      ++i;
    }
    if (i == name_start) return fail("expected metric name");
    s.name = line.substr(name_start, i - name_start);

    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        const size_t key_start = i;
        while (i < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[i])) ||
                line[i] == '_')) {
          ++i;
        }
        const std::string key = line.substr(key_start, i - key_start);
        if (key.empty() || i >= line.size() || line[i] != '=')
          return fail("expected label key=");
        ++i;
        if (i >= line.size() || line[i] != '"')
          return fail("expected quoted label value");
        ++i;
        std::string value;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\' && i + 1 < line.size()) {
            ++i;
            if (line[i] == 'n') {
              value += '\n';
            } else {
              value += line[i];
            }
          } else {
            value += line[i];
          }
          ++i;
        }
        if (i >= line.size()) return fail("unterminated label value");
        ++i;  // closing quote
        s.labels[key] = value;
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size()) return fail("unterminated label set");
      ++i;  // closing brace
    }

    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i >= line.size()) return fail("missing value");
    const std::string token = line.substr(i);
    if (token == "+Inf") {
      s.value = std::numeric_limits<double>::infinity();
    } else if (token == "-Inf") {
      s.value = -std::numeric_limits<double>::infinity();
    } else if (token == "NaN") {
      s.value = std::numeric_limits<double>::quiet_NaN();
    } else {
      char* end = nullptr;
      s.value = std::strtod(token.c_str(), &end);
      if (end == token.c_str()) return fail("malformed value");
      // An optional trailing integer timestamp is accepted and ignored.
      while (*end != '\0' &&
             std::isspace(static_cast<unsigned char>(*end))) {
        ++end;
      }
      if (*end != '\0') {
        char* ts_end = nullptr;
        (void)std::strtoll(end, &ts_end, 10);
        if (ts_end == end || *ts_end != '\0')
          return fail("trailing garbage after value");
      }
    }
    samples.push_back(std::move(s));
  }
  return samples;
}

const ParsedSample* FindSample(
    const std::vector<ParsedSample>& samples, const std::string& name,
    const std::map<std::string, std::string>& labels) {
  for (const ParsedSample& s : samples) {
    if (s.name != name) continue;
    bool match = true;
    for (const auto& [k, v] : labels) {
      auto it = s.labels.find(k);
      if (it == s.labels.end() || it->second != v) {
        match = false;
        break;
      }
    }
    if (match) return &s;
  }
  return nullptr;
}

}  // namespace mc3::obs
