// Prometheus text exposition for the metrics registry (the serving `metrics`
// verb; docs/observability.md "Serving telemetry"). Renders a
// MetricsSnapshot plus caller-supplied labeled samples (server/shard stats,
// build info) in the text exposition format:
//
//   # HELP mc3_server_requests_total ...
//   # TYPE mc3_server_requests_total counter
//   mc3_server_requests_total 42
//   mc3_server_shard_queue_depth{shard="3"} 1
//
// Counters get a `_total` suffix, histograms render as cumulative
// `_bucket{le="..."}` series plus `_sum`/`_count`. A small parser for the
// same format lives here too, so the load generator and tests can scrape
// without a real Prometheus client. Both directions operate on plain
// snapshot structs, so they compile identically under -DMC3_OBS=OFF (the
// snapshot is just empty).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace mc3::obs {

/// One labeled sample merged into the exposition output alongside the
/// registry (used for per-shard stats and `mc3_build_info`).
struct ExpositionSample {
  std::string name;  ///< raw dotted name; sanitized via PrometheusName
  std::string type;  ///< "counter" or "gauge"
  std::map<std::string, std::string> labels;
  double value = 0;
};

/// Sanitized metric name: `mc3_` prefix, every non-[a-zA-Z0-9_] mapped to
/// '_'. Counter names additionally get `_total` at render time.
std::string PrometheusName(const std::string& raw);

/// Renders the snapshot plus `extra` samples as one exposition document.
/// Extra samples sharing a name must be adjacent (they share one # TYPE
/// line); within the registry, names are already sorted.
std::string RenderPrometheus(const MetricsSnapshot& snap,
                             const std::vector<ExpositionSample>& extra);

/// One scraped sample: sanitized name, labels, value.
struct ParsedSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0;
};

/// Parses an exposition document (comments and blank lines skipped).
/// Returns kInvalidArgument naming the offending line on malformed input.
Result<std::vector<ParsedSample>> ParseExposition(const std::string& text);

/// First sample matching `name` (and `labels`, when given); nullptr when
/// absent. Convenience for tests and the loadgen reconcile check.
const ParsedSample* FindSample(
    const std::vector<ParsedSample>& samples, const std::string& name,
    const std::map<std::string, std::string>& labels = {});

}  // namespace mc3::obs
