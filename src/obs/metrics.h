// Process-wide metrics for the solver hot paths: monotonic counters, gauges
// and latency/value histograms, collected in a thread-safe registry and
// exportable as JSON (the "metrics" section of SolveReport).
//
// Design constraints (see docs/observability.md):
//   * recording must be cheap enough to leave on in production — counters
//     and histograms are lock-free atomics; the registry mutex is only taken
//     on first lookup of a name (instrumented sites cache the handle in a
//     function-local static);
//   * the whole layer compiles away under -DMC3_OBS=OFF (the
//     MC3_OBS_DISABLED preprocessor flag): the same API degrades to inlined
//     no-ops so call sites never need #ifdefs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#if !defined(MC3_OBS_DISABLED)
#include <atomic>
#include <limits>
#include <memory>

#include "util/sync.h"
#include "util/thread_annotations.h"
#endif

namespace mc3::obs {

/// Inclusive lower bound of exponential bucket `i` (0 for the first bucket,
/// 2^(i-1) * 1e-7 afterwards). Shared by the live Histogram and snapshot
/// percentile math so both builds agree on the bucket geometry.
double HistogramBucketBound(int i);

/// Point-in-time copy of one histogram's state.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0;
  double min = 0;  ///< 0 when count == 0
  double max = 0;
  /// Occupancy of the exponential buckets; buckets[i] counts samples in
  /// [2^i * 1e-7, 2^(i+1) * 1e-7) with the first/last buckets open-ended.
  std::vector<uint64_t> buckets;

  double Mean() const { return count == 0 ? 0 : sum / static_cast<double>(count); }

  /// Estimated value at quantile `q` in [0, 1]: linear interpolation inside
  /// the bucket holding the rank, clamped to the observed [min, max]. Exact
  /// at the extremes (q=0 -> min, q=1 -> max); 0 when the histogram is empty.
  double Percentile(double q) const;
  double P50() const { return Percentile(0.50); }
  double P95() const { return Percentile(0.95); }
  double P99() const { return Percentile(0.99); }
};

/// Point-in-time copy of the whole registry.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Accumulates `delta` into `into`: counters and histogram buckets add,
/// gauges last-write-win. The bench runner resets the registry between cases
/// and merges the per-case snapshots into the run-wide metrics section.
void MergeSnapshot(MetricsSnapshot* into, const MetricsSnapshot& delta);

#if !defined(MC3_OBS_DISABLED)

/// Monotonic event counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Lock-free histogram over non-negative doubles with exponential buckets
/// sized for latencies in seconds (0.1 microsecond granularity at the low
/// end, ~1.5 hours at the high end) — but any non-negative quantity works
/// (the greedy's coverage-per-pick distribution uses one too).
class Histogram {
 public:
  static constexpr int kNumBuckets = 36;

  /// Bucket index for `value`: floor(log2(value / 1e-7)), clamped.
  static int BucketOf(double value);
  /// Inclusive lower bound of bucket `i` (0 for the first bucket).
  static double BucketLowerBound(int i);

  void Record(double value);
  HistogramSnapshot Snap() const;
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{0};
};

/// Name -> metric registry. Handles returned by the Get* methods are stable
/// for the lifetime of the process (metrics are never deleted; ResetAll
/// zeroes values in place), so instrumented sites can cache them.
class MetricsRegistry {
 public:
  /// The process-wide registry used by all instrumented code.
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Zeroes every registered metric (names and handles survive). The bench
  /// runner calls this between cases so each case reports its own deltas.
  void ResetAll();

  MetricsSnapshot Snap() const;

 private:
  mutable util::Mutex mu_;
  // The maps are guarded; the pointed-to metrics are lock-free and stable,
  // so handed-out references stay valid without the lock.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      MC3_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ MC3_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      MC3_GUARDED_BY(mu_);
};

#else  // MC3_OBS_DISABLED: the same API as inlined no-ops.

class Counter {
 public:
  void Add(uint64_t = 1) {}
  uint64_t Value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Set(double) {}
  double Value() const { return 0; }
  void Reset() {}
};

class Histogram {
 public:
  static constexpr int kNumBuckets = 36;
  static int BucketOf(double) { return 0; }
  static double BucketLowerBound(int) { return 0; }
  void Record(double) {}
  HistogramSnapshot Snap() const { return {}; }
  void Reset() {}
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global() {
    static MetricsRegistry registry;
    return registry;
  }
  Counter& GetCounter(const std::string&) { return counter_; }
  Gauge& GetGauge(const std::string&) { return gauge_; }
  Histogram& GetHistogram(const std::string&) { return histogram_; }
  void ResetAll() {}
  MetricsSnapshot Snap() const { return {}; }

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#endif  // MC3_OBS_DISABLED

/// True when the library was built with observability compiled in.
inline constexpr bool kObsEnabled =
#if !defined(MC3_OBS_DISABLED)
    true;
#else
    false;
#endif

}  // namespace mc3::obs

