#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mc3::obs {

// ---------------------------------------------------------------------------
// Writer.

void AppendJsonEscaped(std::string_view value, std::string* out) {
  for (const char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void JsonWriter::Indent() {
  if (compact_) return;
  out_ += '\n';
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // "key": prefix already emitted
  }
  if (stack_.empty()) return;
  if (stack_.back().has_value) out_ += ',';
  stack_.back().has_value = true;
  Indent();
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Frame{false, true});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  const bool had_values = stack_.back().has_value;
  stack_.pop_back();
  if (had_values) Indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Frame{false, false});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  const bool had_values = stack_.back().has_value;
  stack_.pop_back();
  if (had_values) Indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (stack_.back().has_value) out_ += ',';
  stack_.back().has_value = true;
  Indent();
  out_ += '"';
  AppendJsonEscaped(key, &out_);
  out_ += compact_ ? "\":" : "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  AppendJsonEscaped(value, &out_);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  if (!std::isfinite(value)) return Null();
  BeforeValue();
  char buf[32];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    // Whole numbers render without a fraction or exponent.
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    // Shortest round-trippable form: the fewest significant digits whose
    // strtod parse recovers the exact double. Keeps snapshot files
    // byte-stable across save/load/save cycles (a re-save serializes the
    // parsed double to the same text).
    for (int precision = 1; precision <= 17; ++precision) {
      std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
      if (std::strtod(buf, nullptr) == value) break;
    }
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Int(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

std::string JsonWriter::Take() {
  std::string result = std::move(out_);
  out_.clear();
  stack_.clear();
  pending_key_ = false;
  // Pretty documents end in a newline (they are whole files); compact ones
  // must not — the line-delimited protocol frames them itself.
  if (!compact_) result += '\n';
  return result;
}

// ---------------------------------------------------------------------------
// Parser.

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    MC3_RETURN_IF_ERROR(ParseValue(&value, /*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("invalid literal");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Error("bad \\u escape");
            }
            // Reports only ever escape control characters; decode the BMP
            // code point as UTF-8.
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error("unknown escape");
        }
      } else {
        *out += c;
      }
    }
    return Error("unterminated string");
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      while (true) {
        SkipWhitespace();
        std::string key;
        MC3_RETURN_IF_ERROR(ParseString(&key));
        SkipWhitespace();
        if (!Consume(':')) return Error("expected ':'");
        JsonValue member;
        MC3_RETURN_IF_ERROR(ParseValue(&member, depth + 1));
        out->object.emplace_back(std::move(key), std::move(member));
        SkipWhitespace();
        if (Consume('}')) return Status::OK();
        if (!Consume(',')) return Error("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      while (true) {
        JsonValue element;
        MC3_RETURN_IF_ERROR(ParseValue(&element, depth + 1));
        out->array.push_back(std::move(element));
        SkipWhitespace();
        if (Consume(']')) return Status::OK();
        if (!Consume(',')) return Error("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return ParseLiteral("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return ParseLiteral("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return ParseLiteral("null");
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      // Copy the token to a buffer first: the string_view is not guaranteed
      // to be null-terminated, which strtod requires.
      size_t end = pos_;
      while (end < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[end])) != 0 ||
              text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
              text_[end] == 'e' || text_[end] == 'E')) {
        ++end;
      }
      const std::string token(text_.substr(pos_, end - pos_));
      char* parsed_end = nullptr;
      out->kind = JsonValue::Kind::kNumber;
      out->number = std::strtod(token.c_str(), &parsed_end);
      if (parsed_end != token.c_str() + token.size()) {
        return Error("invalid number");
      }
      pos_ = end;
      return Status::OK();
    }
    return Error("unexpected character");
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace mc3::obs
