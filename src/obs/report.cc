#include "obs/report.h"

#include <thread>

#include "obs/json.h"

namespace mc3::obs {

namespace {

void RenderHistogram(const HistogramSnapshot& h, JsonWriter* writer) {
  writer->BeginObject();
  writer->Key("count").Int(h.count);
  writer->Key("sum").Number(h.sum);
  writer->Key("min").Number(h.min);
  writer->Key("max").Number(h.max);
  writer->Key("mean").Number(h.Mean());
  writer->Key("p50").Number(h.P50());
  writer->Key("p95").Number(h.P95());
  writer->Key("p99").Number(h.P99());
  writer->Key("buckets").BeginArray();
  for (const uint64_t b : h.buckets) writer->Int(b);
  writer->EndArray();
  writer->EndObject();
}

void RenderMetaBody(const SolveReportMeta& meta, JsonWriter* writer) {
  writer->Key("tool").String(meta.tool);
  writer->Key("solver").String(meta.solver);
  writer->Key("workload").String(meta.workload);
  writer->Key("instance").BeginObject();
  writer->Key("queries").Int(meta.num_queries);
  writer->Key("classifiers").Int(meta.num_classifiers);
  writer->Key("properties").Int(meta.num_properties);
  writer->Key("max_query_length").Int(meta.max_query_length);
  writer->EndObject();
  writer->Key("result").BeginObject();
  writer->Key("cost").Number(meta.cost);
  writer->Key("classifiers").Int(meta.solution_size);
  writer->Key("components").Int(meta.num_components);
  writer->Key("seconds").Number(meta.total_seconds);
  writer->EndObject();
}

}  // namespace

void RenderMetrics(const MetricsSnapshot& metrics, JsonWriter* writer) {
  writer->BeginObject();
  writer->Key("counters").BeginObject();
  for (const auto& [name, value] : metrics.counters) {
    writer->Key(name).Int(value);
  }
  writer->EndObject();
  writer->Key("gauges").BeginObject();
  for (const auto& [name, value] : metrics.gauges) {
    writer->Key(name).Number(value);
  }
  writer->EndObject();
  writer->Key("histograms").BeginObject();
  for (const auto& [name, h] : metrics.histograms) {
    writer->Key(name);
    RenderHistogram(h, writer);
  }
  writer->EndObject();
  writer->EndObject();
}

std::string RenderSolveReport(const SolveReportMeta& meta, const Trace& trace,
                              const MetricsSnapshot& metrics) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema").String(kSolveReportSchema);
  writer.Key("obs_enabled").Bool(kObsEnabled);
  RenderMetaBody(meta, &writer);
  writer.Key("phases");
  trace.Render(&writer);
  writer.Key("metrics");
  RenderMetrics(metrics, &writer);
  writer.EndObject();
  return writer.Take();
}

MachineInfo DescribeMachine() {
  MachineInfo machine;
#if defined(__linux__)
  machine.os = "linux";
#elif defined(__APPLE__)
  machine.os = "darwin";
#elif defined(_WIN32)
  machine.os = "windows";
#else
  machine.os = "unknown";
#endif
#if defined(__x86_64__) || defined(_M_X64)
  machine.arch = "x86_64";
#elif defined(__aarch64__) || defined(_M_ARM64)
  machine.arch = "aarch64";
#else
  machine.arch = "unknown";
#endif
#if defined(__VERSION__)
  machine.compiler = __VERSION__;
#else
  machine.compiler = "unknown";
#endif
  machine.hardware_threads = std::thread::hardware_concurrency();
  return machine;
}

std::string RenderBenchReport(const std::vector<BenchCase>& cases,
                              const MetricsSnapshot& metrics,
                              const BenchRunInfo& run) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema").String(kBenchReportSchema);
  writer.Key("obs_enabled").Bool(kObsEnabled);
  writer.Key("quick").Bool(run.quick);
  writer.Key("scale").Number(run.scale);
  writer.Key("seed").Int(run.seed);
  writer.Key("repeat").Int(run.repeat);
  writer.Key("warmup").Int(run.warmup);
  writer.Key("filter").String(run.filter);
  const MachineInfo machine = DescribeMachine();
  writer.Key("machine").BeginObject();
  writer.Key("os").String(machine.os);
  writer.Key("arch").String(machine.arch);
  writer.Key("compiler").String(machine.compiler);
  writer.Key("hardware_threads").Int(machine.hardware_threads);
  writer.EndObject();
  writer.Key("cases").BeginArray();
  for (const BenchCase& c : cases) {
    writer.BeginObject();
    RenderMetaBody(c.meta, &writer);
    writer.Key("counters").BeginObject();
    for (const auto& [name, value] : c.counters) {
      writer.Key(name).Int(value);
    }
    writer.EndObject();
    writer.Key("wall_seconds").BeginArray();
    for (const double s : c.wall_seconds) writer.Number(s);
    writer.EndArray();
    writer.Key("phases");
    c.trace->Render(&writer);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("metrics");
  RenderMetrics(metrics, &writer);
  writer.EndObject();
  return writer.Take();
}

// ---------------------------------------------------------------------------
// Validation.

namespace {

Status Violation(const std::string& path, const std::string& what) {
  return Status::InvalidArgument("schema violation at " + path + ": " + what);
}

Status RequireNumber(const JsonValue& object, const std::string& path,
                     const char* key, bool non_negative = true) {
  const JsonValue* field = object.Find(key);
  if (field == nullptr || !field->is_number()) {
    return Violation(path + "." + key, "missing or not a number");
  }
  if (non_negative && field->number < 0) {
    return Violation(path + "." + key, "negative value");
  }
  return Status::OK();
}

Status RequireString(const JsonValue& object, const std::string& path,
                     const char* key) {
  const JsonValue* field = object.Find(key);
  if (field == nullptr || !field->is_string()) {
    return Violation(path + "." + key, "missing or not a string");
  }
  return Status::OK();
}

/// Span-tree node: name + seconds required; stats (numeric members) and
/// children (nodes) optional.
Status CheckSpanNode(const JsonValue& node, const std::string& path) {
  if (!node.is_object()) return Violation(path, "span is not an object");
  MC3_RETURN_IF_ERROR(RequireString(node, path, "name"));
  MC3_RETURN_IF_ERROR(RequireNumber(node, path, "seconds"));
  if (const JsonValue* stats = node.Find("stats")) {
    if (!stats->is_object()) return Violation(path + ".stats", "not an object");
    for (const auto& [key, value] : stats->object) {
      if (!value.is_number()) {
        return Violation(path + ".stats." + key, "not a number");
      }
    }
  }
  if (const JsonValue* children = node.Find("children")) {
    if (!children->is_array()) {
      return Violation(path + ".children", "not an array");
    }
    for (size_t i = 0; i < children->array.size(); ++i) {
      MC3_RETURN_IF_ERROR(CheckSpanNode(
          children->array[i], path + ".children[" + std::to_string(i) + "]"));
    }
  }
  return Status::OK();
}

/// The shared body of a solve report / bench case.
Status CheckReportBody(const JsonValue& body, const std::string& path) {
  MC3_RETURN_IF_ERROR(RequireString(body, path, "tool"));
  MC3_RETURN_IF_ERROR(RequireString(body, path, "solver"));
  MC3_RETURN_IF_ERROR(RequireString(body, path, "workload"));
  const JsonValue* instance = body.Find("instance");
  if (instance == nullptr || !instance->is_object()) {
    return Violation(path + ".instance", "missing or not an object");
  }
  for (const char* key :
       {"queries", "classifiers", "properties", "max_query_length"}) {
    MC3_RETURN_IF_ERROR(RequireNumber(*instance, path + ".instance", key));
  }
  const JsonValue* result = body.Find("result");
  if (result == nullptr || !result->is_object()) {
    return Violation(path + ".result", "missing or not an object");
  }
  MC3_RETURN_IF_ERROR(RequireNumber(*result, path + ".result", "cost"));
  MC3_RETURN_IF_ERROR(RequireNumber(*result, path + ".result", "classifiers"));
  MC3_RETURN_IF_ERROR(RequireNumber(*result, path + ".result", "components"));
  MC3_RETURN_IF_ERROR(RequireNumber(*result, path + ".result", "seconds"));
  const JsonValue* phases = body.Find("phases");
  if (phases == nullptr) return Violation(path + ".phases", "missing");
  return CheckSpanNode(*phases, path + ".phases");
}

Status CheckMetrics(const JsonValue& root, const std::string& path) {
  const JsonValue* metrics = root.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return Violation(path + ".metrics", "missing or not an object");
  }
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const JsonValue* s = metrics->Find(section);
    if (s == nullptr || !s->is_object()) {
      return Violation(path + ".metrics." + section,
                       "missing or not an object");
    }
  }
  for (const auto& [name, h] : metrics->Find("histograms")->object) {
    const std::string hpath = path + ".metrics.histograms." + name;
    if (!h.is_object()) return Violation(hpath, "not an object");
    MC3_RETURN_IF_ERROR(RequireNumber(h, hpath, "count"));
    MC3_RETURN_IF_ERROR(RequireNumber(h, hpath, "sum", false));
    const JsonValue* buckets = h.Find("buckets");
    if (buckets == nullptr || !buckets->is_array()) {
      return Violation(hpath + ".buckets", "missing or not an array");
    }
  }
  return Status::OK();
}

Result<JsonValue> ParseWithSchema(const std::string& json,
                                  const std::vector<const char*>& schemas) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  if (!parsed->is_object()) {
    return Violation("$", "document is not an object");
  }
  const JsonValue* declared = parsed->Find("schema");
  bool matched = false;
  if (declared != nullptr && declared->is_string()) {
    for (const char* schema : schemas) {
      if (declared->string == schema) matched = true;
    }
  }
  if (!matched) {
    std::string expected;
    for (const char* schema : schemas) {
      if (!expected.empty()) expected += " or ";
      expected += std::string("\"") + schema + "\"";
    }
    return Violation("$.schema", "expected " + expected);
  }
  const JsonValue* obs = parsed->Find("obs_enabled");
  if (obs == nullptr || obs->kind != JsonValue::Kind::kBool) {
    return Violation("$.obs_enabled", "missing or not a boolean");
  }
  return parsed;
}

/// Collects the names of every span in a phases tree into `out`.
void CollectSpanNames(const JsonValue& node, std::vector<std::string>* out) {
  if (const JsonValue* name = node.Find("name")) {
    if (name->is_string()) out->push_back(name->string);
  }
  if (const JsonValue* children = node.Find("children")) {
    for (const JsonValue& child : children->array) {
      CollectSpanNames(child, out);
    }
  }
}

}  // namespace

Status ValidateSolveReportJson(const std::string& json) {
  auto parsed = ParseWithSchema(json, {kSolveReportSchema});
  if (!parsed.ok()) return parsed.status();
  MC3_RETURN_IF_ERROR(CheckReportBody(*parsed, "$"));
  return CheckMetrics(*parsed, "$");
}

Status ValidateBenchReportJson(const std::string& json) {
  auto parsed = ParseWithSchema(json, {kBenchReportSchema,
                                       kBenchReportSchemaV1});
  if (!parsed.ok()) return parsed.status();
  const bool v2 = parsed->Find("schema")->string == kBenchReportSchema;
  const JsonValue* quick = parsed->Find("quick");
  if (quick == nullptr || quick->kind != JsonValue::Kind::kBool) {
    return Violation("$.quick", "missing or not a boolean");
  }
  MC3_RETURN_IF_ERROR(RequireNumber(*parsed, "$", "scale"));
  const JsonValue* obs = parsed->Find("obs_enabled");
  std::string filter;
  if (v2) {
    MC3_RETURN_IF_ERROR(RequireNumber(*parsed, "$", "seed"));
    MC3_RETURN_IF_ERROR(RequireNumber(*parsed, "$", "repeat"));
    MC3_RETURN_IF_ERROR(RequireNumber(*parsed, "$", "warmup"));
    MC3_RETURN_IF_ERROR(RequireString(*parsed, "$", "filter"));
    filter = parsed->Find("filter")->string;
    const JsonValue* machine = parsed->Find("machine");
    if (machine == nullptr || !machine->is_object()) {
      return Violation("$.machine", "missing or not an object");
    }
    for (const char* key : {"os", "arch", "compiler"}) {
      MC3_RETURN_IF_ERROR(RequireString(*machine, "$.machine", key));
    }
    MC3_RETURN_IF_ERROR(
        RequireNumber(*machine, "$.machine", "hardware_threads"));
  }
  const JsonValue* cases = parsed->Find("cases");
  if (cases == nullptr || !cases->is_array() || cases->array.empty()) {
    return Violation("$.cases", "missing, not an array, or empty");
  }
  std::vector<std::string> span_names;
  for (size_t i = 0; i < cases->array.size(); ++i) {
    const std::string path = "$.cases[" + std::to_string(i) + "]";
    MC3_RETURN_IF_ERROR(CheckReportBody(cases->array[i], path));
    if (const JsonValue* phases = cases->array[i].Find("phases")) {
      CollectSpanNames(*phases, &span_names);
    }
    if (v2) {
      const JsonValue* counters = cases->array[i].Find("counters");
      if (counters == nullptr || !counters->is_object()) {
        return Violation(path + ".counters", "missing or not an object");
      }
      for (const auto& [name, value] : counters->object) {
        if (!value.is_number() || value.number < 0) {
          return Violation(path + ".counters." + name,
                           "not a non-negative number");
        }
      }
      // Compiled-in observability must actually deliver the work counters:
      // an empty object means a de-instrumented build, which would make the
      // benchdiff gate vacuous.
      if (obs != nullptr && obs->boolean && counters->object.empty()) {
        return Violation(path + ".counters",
                         "empty although obs_enabled is true");
      }
      const JsonValue* walls = cases->array[i].Find("wall_seconds");
      if (walls == nullptr || !walls->is_array() || walls->array.empty()) {
        return Violation(path + ".wall_seconds",
                         "missing, not an array, or empty");
      }
      for (size_t r = 0; r < walls->array.size(); ++r) {
        if (!walls->array[r].is_number() || walls->array[r].number < 0) {
          return Violation(
              path + ".wall_seconds[" + std::to_string(r) + "]",
              "not a non-negative number");
        }
      }
    }
  }
  MC3_RETURN_IF_ERROR(CheckMetrics(*parsed, "$"));

  // When observability is compiled in, the report must carry the per-phase
  // timings the perf trajectory is tracked on (ISSUE 2 acceptance): all four
  // preprocessing steps, the k2 flow path, both WSC phases, and the online
  // update path. A filtered run (subset of cases) is exempt — its report is
  // a debugging aid, not a trajectory point.
  if (obs != nullptr && obs->boolean && filter.empty()) {
    for (const char* required :
         {"preprocess", "step1", "step3", "step4", "partition", "k2_component",
          "maxflow", "greedy", "primal_dual", "online_update", "repartition",
          "solve_component"}) {
      bool found = false;
      for (const std::string& name : span_names) {
        if (name == required) {
          found = true;
          break;
        }
      }
      if (!found) {
        return Violation("$.cases[*].phases",
                         std::string("required phase \"") + required +
                             "\" missing from every case");
      }
    }
  }
  return Status::OK();
}

}  // namespace mc3::obs
