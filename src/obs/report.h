// JSON solve/bench reports: the machine-readable export of the
// observability layer, written by `mc3 solve --report`, `mc3 serve
// --report` and the unified `mc3 bench` runner (which emits
// BENCH_*.json files tracking the perf trajectory across PRs).
//
// Two schemas, both versioned and validated by this module (the schemas are
// documented in docs/observability.md):
//   * mc3.solve_report/1 — one solve (or serve replay): header, instance
//     shape, result, span tree, metrics snapshot;
//   * mc3.bench_report/1 — a list of named bench cases, each a solve report
//     body, plus the merged metrics snapshot.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace mc3::obs {

inline constexpr const char kSolveReportSchema[] = "mc3.solve_report/1";
inline constexpr const char kBenchReportSchema[] = "mc3.bench_report/1";

/// Header + scalar sections of one solve report.
struct SolveReportMeta {
  std::string tool;    ///< "solve", "serve", "bench"
  std::string solver;  ///< solver Name() or engine description
  std::string workload;

  // Instance shape.
  size_t num_queries = 0;
  size_t num_classifiers = 0;
  size_t num_properties = 0;
  size_t max_query_length = 0;

  // Result.
  double cost = 0;
  size_t solution_size = 0;
  size_t num_components = 0;
  double total_seconds = 0;
};

/// One case of a bench report: a meta block plus its solve's span tree.
struct BenchCase {
  SolveReportMeta meta;
  const Trace* trace = nullptr;  ///< borrowed; must outlive rendering
};

/// Renders a complete solve report document: meta + `trace`'s span tree +
/// `metrics`. Always includes an "obs_enabled" flag so consumers know
/// whether empty phases mean "nothing ran" or "compiled out".
std::string RenderSolveReport(const SolveReportMeta& meta, const Trace& trace,
                              const MetricsSnapshot& metrics);

/// Renders a bench report over `cases` (each with its own trace).
std::string RenderBenchReport(const std::vector<BenchCase>& cases,
                              const MetricsSnapshot& metrics, bool quick,
                              double scale);

/// Validates a solve-report document against mc3.solve_report/1: parses the
/// JSON and checks the presence and types of every required field
/// (recursively for the span tree). Returns kInvalidArgument with the first
/// violation found.
Status ValidateSolveReportJson(const std::string& json);

/// Validates a bench-report document against mc3.bench_report/1. In
/// addition to structural checks, when the document declares obs_enabled
/// it requires the per-phase timings the perf trajectory is tracked on:
/// the four preprocessing steps, the k2 max-flow solve, the greedy and
/// f-approximation WSC phases, and the online update path.
Status ValidateBenchReportJson(const std::string& json);

/// Renders `metrics` as a JSON object into `writer` (value position).
/// Exposed for the CLI's report assembly.
void RenderMetrics(const MetricsSnapshot& metrics, JsonWriter* writer);

}  // namespace mc3::obs

