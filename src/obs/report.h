// JSON solve/bench reports: the machine-readable export of the
// observability layer, written by `mc3 solve --report`, `mc3 serve
// --report` and the unified `mc3 bench` runner (which emits
// BENCH_*.json files tracking the perf trajectory across PRs).
//
// Two schemas, both versioned and validated by this module (the schemas are
// documented in docs/observability.md):
//   * mc3.solve_report/1 — one solve (or serve replay): header, instance
//     shape, result, span tree, metrics snapshot;
//   * mc3.bench_report/1 — a list of named bench cases, each a solve report
//     body, plus the merged metrics snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace mc3::obs {

inline constexpr const char kSolveReportSchema[] = "mc3.solve_report/1";
/// Current bench-report schema: /2 adds per-case deterministic work
/// counters, per-repeat wall times, run parameters and machine metadata.
/// The validator still accepts /1 documents (pre-existing trajectory files).
inline constexpr const char kBenchReportSchema[] = "mc3.bench_report/2";
inline constexpr const char kBenchReportSchemaV1[] = "mc3.bench_report/1";

/// Header + scalar sections of one solve report.
struct SolveReportMeta {
  std::string tool;    ///< "solve", "serve", "bench"
  std::string solver;  ///< solver Name() or engine description
  std::string workload;

  // Instance shape.
  size_t num_queries = 0;
  size_t num_classifiers = 0;
  size_t num_properties = 0;
  size_t max_query_length = 0;

  // Result.
  double cost = 0;
  size_t solution_size = 0;
  size_t num_components = 0;
  double total_seconds = 0;
};

/// One case of a bench report: a meta block plus its solve's span tree.
struct BenchCase {
  SolveReportMeta meta;
  const Trace* trace = nullptr;  ///< borrowed; must outlive rendering
  /// Deterministic work counters recorded by this case alone (the runner
  /// resets the registry between cases). Byte-stable across repeats and
  /// machines; mc3_benchdiff gates on exact equality.
  std::map<std::string, uint64_t> counters;
  /// Wall time of every measured repeat, in order; meta.total_seconds holds
  /// the median. Singleton when --repeat was not given.
  std::vector<double> wall_seconds;
};

/// Run-level parameters of a bench invocation (schema /2 header fields).
struct BenchRunInfo {
  bool quick = false;
  double scale = 1.0;
  uint64_t seed = 1;
  size_t repeat = 1;   ///< measured runs per case
  size_t warmup = 0;   ///< discarded runs per case before measuring
  std::string filter;  ///< substring case filter; empty = all cases
};

/// Hardware/toolchain identification stored alongside wall times so a
/// trajectory of BENCH_*.json files stays interpretable. Work counters are
/// machine-independent; wall times are only comparable within one machine.
struct MachineInfo {
  std::string os;
  std::string arch;
  std::string compiler;
  size_t hardware_threads = 0;
};

/// Describes the build host/toolchain of the running binary.
MachineInfo DescribeMachine();

/// Renders a complete solve report document: meta + `trace`'s span tree +
/// `metrics`. Always includes an "obs_enabled" flag so consumers know
/// whether empty phases mean "nothing ran" or "compiled out".
std::string RenderSolveReport(const SolveReportMeta& meta, const Trace& trace,
                              const MetricsSnapshot& metrics);

/// Renders a mc3.bench_report/2 document over `cases` (each with its own
/// trace, counters and repeat timings).
std::string RenderBenchReport(const std::vector<BenchCase>& cases,
                              const MetricsSnapshot& metrics,
                              const BenchRunInfo& run);

/// Validates a solve-report document against mc3.solve_report/1: parses the
/// JSON and checks the presence and types of every required field
/// (recursively for the span tree). Returns kInvalidArgument with the first
/// violation found.
Status ValidateSolveReportJson(const std::string& json);

/// Validates a bench-report document against mc3.bench_report/1 or /2. In
/// addition to structural checks, when the document declares obs_enabled
/// (and, for /2, no case filter) it requires the per-phase timings the perf
/// trajectory is tracked on: the four preprocessing steps, the k2 max-flow
/// solve, the greedy and f-approximation WSC phases, and the online update
/// path. /2 documents additionally need per-case counters, per-repeat wall
/// times and the machine block.
Status ValidateBenchReportJson(const std::string& json);

/// Renders `metrics` as a JSON object into `writer` (value position).
/// Exposed for the CLI's report assembly.
void RenderMetrics(const MetricsSnapshot& metrics, JsonWriter* writer);

}  // namespace mc3::obs

