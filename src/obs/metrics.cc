#include "obs/metrics.h"

#if !defined(MC3_OBS_DISABLED)

#include <cmath>
#include <limits>

namespace mc3::obs {

namespace {

/// Relaxed compare-exchange accumulate for atomic doubles (fetch_add on
/// atomic<double> needs C++20 library support that libstdc++ lowers to the
/// same loop; spelled out here for portability).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double expected = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(expected, expected + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double expected = target->load(std::memory_order_relaxed);
  while (value < expected && !target->compare_exchange_weak(
                                 expected, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double expected = target->load(std::memory_order_relaxed);
  while (value > expected && !target->compare_exchange_weak(
                                 expected, value, std::memory_order_relaxed)) {
  }
}

constexpr double kBucketBase = 1e-7;  ///< lower bound of bucket 1

}  // namespace

int Histogram::BucketOf(double value) {
  if (!(value > kBucketBase)) return 0;  // also catches NaN and negatives
  const int bucket = 1 + static_cast<int>(std::log2(value / kBucketBase));
  return bucket >= kNumBuckets ? kNumBuckets - 1 : bucket;
}

double Histogram::BucketLowerBound(int i) {
  if (i <= 0) return 0;
  return kBucketBase * std::pow(2.0, i - 1);
}

void Histogram::Record(double value) {
  if (std::isnan(value)) return;
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

HistogramSnapshot Histogram::Snap() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  snap.buckets.resize(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  // Drop trailing empty buckets so snapshots (and their JSON) stay small.
  while (!snap.buckets.empty() && snap.buckets.back() == 0) {
    snap.buckets.pop_back();
  }
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Destroying the registry at exit would race late metric updates.
  // mc3-lint: new-delete-ok(intentionally leaked process-lifetime singleton)
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricsSnapshot MetricsRegistry::Snap() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h->Snap();
  return snap;
}

}  // namespace mc3::obs

#endif  // !MC3_OBS_DISABLED
