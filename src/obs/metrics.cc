#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mc3::obs {

namespace {

constexpr double kHistogramBucketBase = 1e-7;  ///< lower bound of bucket 1

}  // namespace

// The snapshot helpers compile in both configurations: MC3_OBS=OFF builds
// still link report rendering and mc3_benchdiff, which operate on snapshots
// parsed from JSON rather than on live instruments.

double HistogramBucketBound(int i) {
  if (i <= 0) return 0;
  return kHistogramBucketBase * std::pow(2.0, i - 1);
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0;
  if (q <= 0) return min;
  if (q >= 1) return max;
  // Rank of the requested quantile among the `count` samples (1-based).
  const double rank = q * static_cast<double>(count);
  double seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double next = seen + static_cast<double>(buckets[i]);
    if (rank <= next) {
      // Interpolate inside bucket i, clamped to the observed range (the
      // first and last buckets are open-ended; min/max bound them). Values
      // beyond the bucket table clamp into the last bucket, so its upper
      // edge is the observed max, not the (finite) next bound — and lo can
      // then exceed the nominal bucket range entirely.
      const double lo = std::max(HistogramBucketBound(static_cast<int>(i)), min);
      double hi = i + 1 >= buckets.size()
                      ? max
                      : std::min(HistogramBucketBound(static_cast<int>(i) + 1),
                                 max);
      if (hi < lo) hi = lo;
      const double fraction =
          (rank - seen) / static_cast<double>(buckets[i]);
      return lo + fraction * (hi - lo);
    }
    seen = next;
  }
  return max;
}

void MergeSnapshot(MetricsSnapshot* into, const MetricsSnapshot& delta) {
  for (const auto& [name, value] : delta.counters) {
    into->counters[name] += value;
  }
  for (const auto& [name, value] : delta.gauges) {
    into->gauges[name] = value;
  }
  for (const auto& [name, h] : delta.histograms) {
    HistogramSnapshot& target = into->histograms[name];
    if (target.count == 0) {
      target = h;
      continue;
    }
    if (h.count == 0) continue;
    target.min = std::min(target.min, h.min);
    target.max = std::max(target.max, h.max);
    target.count += h.count;
    target.sum += h.sum;
    if (h.buckets.size() > target.buckets.size()) {
      target.buckets.resize(h.buckets.size(), 0);
    }
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      target.buckets[i] += h.buckets[i];
    }
  }
}

}  // namespace mc3::obs

#if !defined(MC3_OBS_DISABLED)

namespace mc3::obs {

namespace {

/// Relaxed compare-exchange accumulate for atomic doubles (fetch_add on
/// atomic<double> needs C++20 library support that libstdc++ lowers to the
/// same loop; spelled out here for portability).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double expected = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(expected, expected + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double expected = target->load(std::memory_order_relaxed);
  while (value < expected && !target->compare_exchange_weak(
                                 expected, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double expected = target->load(std::memory_order_relaxed);
  while (value > expected && !target->compare_exchange_weak(
                                 expected, value, std::memory_order_relaxed)) {
  }
}

constexpr double kBucketBase = 1e-7;  ///< lower bound of bucket 1

}  // namespace

int Histogram::BucketOf(double value) {
  if (!(value > kBucketBase)) return 0;  // also catches NaN and negatives
  const int bucket = 1 + static_cast<int>(std::log2(value / kBucketBase));
  return bucket >= kNumBuckets ? kNumBuckets - 1 : bucket;
}

double Histogram::BucketLowerBound(int i) { return HistogramBucketBound(i); }

void Histogram::Record(double value) {
  if (std::isnan(value)) return;
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

HistogramSnapshot Histogram::Snap() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  snap.buckets.resize(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  // Drop trailing empty buckets so snapshots (and their JSON) stay small.
  while (!snap.buckets.empty() && snap.buckets.back() == 0) {
    snap.buckets.pop_back();
  }
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Destroying the registry at exit would race late metric updates.
  // mc3-lint: new-delete-ok(intentionally leaked process-lifetime singleton)
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  util::MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  util::MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  util::MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::ResetAll() {
  util::MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricsSnapshot MetricsRegistry::Snap() const {
  util::MutexLock lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h->Snap();
  return snap;
}

}  // namespace mc3::obs

#endif  // !MC3_OBS_DISABLED
