#include <algorithm>
#include <deque>
#include <limits>
#include <vector>

#include "flow/max_flow.h"
#include "obs/metrics.h"

namespace mc3::flow {

Capacity MaxFlowEdmondsKarp(FlowNetwork* network, NodeId source, NodeId sink) {
  if (source == sink) return 0;
  FlowNetwork& net = *network;
  Capacity total = 0;
  uint64_t augmentations = 0;
  uint64_t edges_scanned = 0;
  std::vector<int> parent_edge(net.NumNodes());
  while (true) {
    // BFS for the shortest augmenting path.
    std::fill(parent_edge.begin(), parent_edge.end(), -1);
    parent_edge[source] = -2;
    std::deque<NodeId> queue{source};
    bool found = false;
    while (!queue.empty() && !found) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (int id : net.OutEdges(u)) {
        ++edges_scanned;
        const auto& e = net.edge(id);
        if (e.residual > kCapacityEpsilon && parent_edge[e.to] == -1) {
          parent_edge[e.to] = id;
          if (e.to == sink) {
            found = true;
            break;
          }
          queue.push_back(e.to);
        }
      }
    }
    if (!found) break;
    // Bottleneck along the path.
    Capacity bottleneck = std::numeric_limits<Capacity>::infinity();
    for (NodeId v = sink; v != source;) {
      const int id = parent_edge[v];
      bottleneck = std::min(bottleneck, net.edge(id).residual);
      v = net.edge(id ^ 1).to;
    }
    for (NodeId v = sink; v != source;) {
      const int id = parent_edge[v];
      net.Push(id, bottleneck);
      v = net.edge(id ^ 1).to;
    }
    total += bottleneck;
    ++augmentations;
  }
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter& aug_counter =
      registry.GetCounter("flow.edmonds_karp.augmentations");
  static obs::Counter& edge_counter =
      registry.GetCounter("flow.edmonds_karp.edges_scanned");
  aug_counter.Add(augmentations);
  edge_counter.Add(edges_scanned);
  return total;
}

}  // namespace mc3::flow
