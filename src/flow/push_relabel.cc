#include <deque>
#include <vector>

#include "flow/max_flow.h"
#include "obs/metrics.h"

namespace mc3::flow {
namespace {

/// FIFO push-relabel with the gap heuristic. Represents the preflow-based
/// family discussed in the paper's related work ([2] couples the bipartite
/// WVC reduction with a preflow algorithm; [36] compares preflow variants on
/// real-world bipartite graphs).
class PushRelabel {
 public:
  PushRelabel(FlowNetwork* network, NodeId source, NodeId sink)
      : net_(*network),
        source_(source),
        sink_(sink),
        n_(network->NumNodes()),
        height_(n_, 0),
        excess_(n_, 0),
        active_(n_, false),
        height_count_(2 * n_ + 1, 0) {}

  Capacity Run() {
    height_[source_] = n_;
    height_count_[0] = n_ - 1;
    height_count_[n_] = 1;
    // Saturate all source edges.
    for (int id : net_.OutEdges(source_)) {
      auto& e = net_.edge(id);
      if ((id & 1) == 0 && e.residual > kCapacityEpsilon) {
        const Capacity amount = e.residual;
        net_.Push(id, amount);
        excess_[e.to] += amount;
        Activate(e.to);
      }
    }
    while (!queue_.empty()) {
      const NodeId u = queue_.front();
      queue_.pop_front();
      active_[u] = false;
      Discharge(u);
    }
    // Deterministic work counters, published once per run (counts follow the
    // canonical edge order, not wall time; see docs/benchmarking.md).
    auto& registry = obs::MetricsRegistry::Global();
    static obs::Counter& pushes =
        registry.GetCounter("flow.push_relabel.pushes");
    static obs::Counter& relabels =
        registry.GetCounter("flow.push_relabel.relabels");
    static obs::Counter& gaps =
        registry.GetCounter("flow.push_relabel.gap_firings");
    pushes.Add(pushes_);
    relabels.Add(relabels_);
    gaps.Add(gap_firings_);
    return excess_[sink_];
  }

 private:
  void Activate(NodeId u) {
    if (!active_[u] && u != source_ && u != sink_ &&
        excess_[u] > kCapacityEpsilon) {
      active_[u] = true;
      queue_.push_back(u);
    }
  }

  void Discharge(NodeId u) {
    while (excess_[u] > kCapacityEpsilon) {
      bool pushed_any = false;
      for (int id : net_.OutEdges(u)) {
        auto& e = net_.edge(id);
        if (e.residual > kCapacityEpsilon &&
            height_[u] == height_[e.to] + 1) {
          const Capacity amount = std::min(excess_[u], e.residual);
          ++pushes_;
          net_.Push(id, amount);
          excess_[u] -= amount;
          excess_[e.to] += amount;
          Activate(e.to);
          pushed_any = true;
          if (excess_[u] <= kCapacityEpsilon) break;
        }
      }
      if (excess_[u] <= kCapacityEpsilon) break;
      if (!pushed_any) {
        if (!Relabel(u)) break;  // no admissible or relabelable arc: done
      }
    }
  }

  /// Raises u to one above its lowest residual neighbor. Applies the gap
  /// heuristic: if u's old height becomes empty, every node above it (below
  /// n_) can never reach the sink again and is lifted past n_.
  bool Relabel(NodeId u) {
    const int old_height = height_[u];
    int min_neighbor = 2 * n_;
    for (int id : net_.OutEdges(u)) {
      const auto& e = net_.edge(id);
      if (e.residual > kCapacityEpsilon) {
        min_neighbor = std::min(min_neighbor, height_[e.to]);
      }
    }
    if (min_neighbor >= 2 * n_) return false;
    const int new_height = std::min(min_neighbor + 1, 2 * n_);
    if (new_height <= old_height) return false;
    ++relabels_;
    --height_count_[old_height];
    height_[u] = new_height;
    ++height_count_[new_height];
    if (height_count_[old_height] == 0 && old_height < n_) {
      ++gap_firings_;
      // Gap heuristic: lift every node strictly between the gap and n_.
      for (NodeId v = 0; v < n_; ++v) {
        if (height_[v] > old_height && height_[v] < n_) {
          --height_count_[height_[v]];
          height_[v] = n_ + 1;
          ++height_count_[height_[v]];
        }
      }
    }
    return true;
  }

  FlowNetwork& net_;
  const NodeId source_;
  const NodeId sink_;
  const int n_;
  std::vector<int> height_;
  std::vector<Capacity> excess_;
  std::vector<bool> active_;
  std::vector<int> height_count_;
  std::deque<NodeId> queue_;
  uint64_t pushes_ = 0;
  uint64_t relabels_ = 0;
  uint64_t gap_firings_ = 0;
};

}  // namespace

Capacity MaxFlowPushRelabel(FlowNetwork* network, NodeId source, NodeId sink) {
  if (source == sink) return 0;
  return PushRelabel(network, source, sink).Run();
}

}  // namespace mc3::flow
