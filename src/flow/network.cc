#include "flow/network.h"

#include <deque>

namespace mc3::flow {

std::vector<bool> FlowNetwork::ResidualReachable(NodeId source) const {
  std::vector<bool> seen(NumNodes(), false);
  std::deque<NodeId> queue;
  seen[source] = true;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (int id : head_[u]) {
      const Edge& e = edges_[id];
      if (e.residual > kCapacityEpsilon && !seen[e.to]) {
        seen[e.to] = true;
        queue.push_back(e.to);
      }
    }
  }
  return seen;
}

}  // namespace mc3::flow
