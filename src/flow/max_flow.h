// Max-flow algorithm suite.
//
// The paper's Algorithm 2 solves MC3 (k = 2) via max-flow over a sparse
// bipartite network and reports (Section 6) that Dinic's algorithm [Dinic
// 1970] performed best among the bipartite-optimized candidates [Ahuja et
// al. 1994]. We implement three algorithms:
//   * Dinic        — the paper's production choice (default everywhere);
//   * PushRelabel  — FIFO push-relabel with the gap heuristic, representing
//                    the preflow-based competitors discussed in [2] and [36];
//   * EdmondsKarp  — simple BFS augmentation, used as a cross-check oracle
//                    in tests and as a baseline in the micro-benchmarks.
#pragma once

#include "flow/network.h"

namespace mc3::flow {

/// Which max-flow implementation to run.
enum class MaxFlowAlgorithm {
  kDinic,
  kPushRelabel,
  kEdmondsKarp,
};

/// Human-readable algorithm name (for bench output).
const char* MaxFlowAlgorithmName(MaxFlowAlgorithm algorithm);

/// Computes a maximum s-t flow with Dinic's algorithm (O(V^2 E); O(E sqrt V)
/// on unit-capacity bipartite graphs). Mutates `network` residuals.
Capacity MaxFlowDinic(FlowNetwork* network, NodeId source, NodeId sink);

/// FIFO push-relabel with the gap heuristic (O(V^3)). Mutates residuals.
Capacity MaxFlowPushRelabel(FlowNetwork* network, NodeId source, NodeId sink);

/// Edmonds-Karp BFS augmentation (O(V E^2)). Mutates residuals.
Capacity MaxFlowEdmondsKarp(FlowNetwork* network, NodeId source, NodeId sink);

/// Dispatches on `algorithm`.
Capacity MaxFlow(FlowNetwork* network, NodeId source, NodeId sink,
                 MaxFlowAlgorithm algorithm = MaxFlowAlgorithm::kDinic);

}  // namespace mc3::flow

