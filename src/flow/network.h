// Residual flow-network representation shared by all max-flow algorithms.
//
// This is the substrate behind Algorithm 2 of the paper: MC3 with k = 2 is
// reduced to bipartite Weighted Vertex Cover, which in turn reduces to
// Max-Flow (Theorem 2.3 / [Baiou-Barahona 2016]).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace mc3::flow {

/// Node index within a FlowNetwork.
using NodeId = int32_t;
/// Edge capacities/flows. Instances built from classifier costs use finite
/// doubles; "infinite" capacities must be clamped by the caller (see
/// BipartiteVertexCover) so that every algorithm terminates.
using Capacity = double;

/// Tolerance under which a residual capacity is treated as zero. All
/// workloads in this library use costs that are exactly representable
/// (integers or small sums thereof), so this guards only against accumulated
/// rounding in long augmenting chains.
inline constexpr Capacity kCapacityEpsilon = 1e-9;

/// Directed flow network with paired residual edges.
///
/// Every AddEdge(u, v, c) also creates the reverse residual edge (v, u, 0);
/// the two are stored adjacently (ids e and e^1), the standard pairing trick.
/// Max-flow algorithms mutate residual capacities in place; Flow(e) recovers
/// the flow pushed through a forward edge.
class FlowNetwork {
 public:
  struct Edge {
    NodeId to;
    Capacity residual;  ///< remaining capacity
    Capacity original;  ///< capacity at construction (0 for reverse edges)
  };

  /// Creates a network with `num_nodes` nodes and no edges.
  explicit FlowNetwork(NodeId num_nodes) : head_(num_nodes) {}

  /// Adds a node, returning its id.
  NodeId AddNode() {
    head_.emplace_back();
    return static_cast<NodeId>(head_.size()) - 1;
  }

  /// Adds a directed edge with the given capacity. Returns the forward edge
  /// id; the paired reverse edge has id `id ^ 1`.
  int AddEdge(NodeId from, NodeId to, Capacity capacity) {
    assert(from >= 0 && from < NumNodes());
    assert(to >= 0 && to < NumNodes());
    assert(capacity >= 0);
    const int id = static_cast<int>(edges_.size());
    edges_.push_back(Edge{to, capacity, capacity});
    edges_.push_back(Edge{from, 0, 0});
    head_[from].push_back(id);
    head_[to].push_back(id + 1);
    return id;
  }

  NodeId NumNodes() const { return static_cast<NodeId>(head_.size()); }
  int NumEdges() const { return static_cast<int>(edges_.size()); }

  Edge& edge(int id) { return edges_[id]; }
  const Edge& edge(int id) const { return edges_[id]; }

  /// Edge ids (forward and residual) leaving `node`.
  const std::vector<int>& OutEdges(NodeId node) const { return head_[node]; }

  /// Flow currently pushed through forward edge `id`.
  Capacity Flow(int id) const {
    return edges_[id].original - edges_[id].residual;
  }

  /// Pushes `amount` along edge `id` (and pulls it back on the pair).
  void Push(int id, Capacity amount) {
    edges_[id].residual -= amount;
    edges_[id ^ 1].residual += amount;
  }

  /// Restores all residual capacities to the original capacities.
  void ResetFlow() {
    for (auto& e : edges_) e.residual = e.original;
  }

  /// Nodes reachable from `source` via edges with positive residual
  /// capacity. After a max-flow computation this is the source side of a
  /// minimum s-t cut.
  std::vector<bool> ResidualReachable(NodeId source) const;

 private:
  std::vector<std::vector<int>> head_;
  std::vector<Edge> edges_;
};

}  // namespace mc3::flow

