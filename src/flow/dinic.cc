#include <algorithm>
#include <deque>
#include <limits>
#include <vector>

#include "flow/max_flow.h"
#include "obs/metrics.h"

namespace mc3::flow {
namespace {

/// Dinic's algorithm: repeat { BFS level graph; DFS blocking flow } until the
/// sink is unreachable. The DFS keeps a current-arc iterator per node so each
/// phase is O(VE).
///
/// Work counters (flow.dinic.*) are accumulated locally and published to the
/// registry once per Run(): the counts depend only on the network's edge
/// order — which the determinism audit made canonical — never on wall time,
/// so mc3_benchdiff gates them at exact equality.
class Dinic {
 public:
  Dinic(FlowNetwork* network, NodeId source, NodeId sink)
      : net_(*network),
        source_(source),
        sink_(sink),
        level_(network->NumNodes()),
        arc_(network->NumNodes()) {}

  Capacity Run() {
    Capacity total = 0;
    while (Bfs()) {
      ++phases_;
      std::fill(arc_.begin(), arc_.end(), 0);
      while (true) {
        const Capacity pushed =
            Dfs(source_, std::numeric_limits<Capacity>::infinity());
        if (pushed <= kCapacityEpsilon) break;
        ++augmenting_paths_;
        total += pushed;
      }
    }
    auto& registry = obs::MetricsRegistry::Global();
    static obs::Counter& phases = registry.GetCounter("flow.dinic.phases");
    static obs::Counter& paths =
        registry.GetCounter("flow.dinic.augmenting_paths");
    static obs::Counter& edges =
        registry.GetCounter("flow.dinic.edges_scanned");
    phases.Add(phases_);
    paths.Add(augmenting_paths_);
    edges.Add(edges_scanned_);
    return total;
  }

 private:
  bool Bfs() {
    std::fill(level_.begin(), level_.end(), -1);
    std::deque<NodeId> queue;
    level_[source_] = 0;
    queue.push_back(source_);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (int id : net_.OutEdges(u)) {
        ++edges_scanned_;
        const auto& e = net_.edge(id);
        if (e.residual > kCapacityEpsilon && level_[e.to] < 0) {
          level_[e.to] = level_[u] + 1;
          queue.push_back(e.to);
        }
      }
    }
    return level_[sink_] >= 0;
  }

  Capacity Dfs(NodeId u, Capacity limit) {
    if (u == sink_) return limit;
    const auto& out = net_.OutEdges(u);
    for (size_t& i = arc_[u]; i < out.size(); ++i) {
      const int id = out[i];
      ++edges_scanned_;
      const auto& e = net_.edge(id);
      if (e.residual <= kCapacityEpsilon || level_[e.to] != level_[u] + 1) {
        continue;
      }
      const Capacity pushed = Dfs(e.to, std::min(limit, e.residual));
      if (pushed > kCapacityEpsilon) {
        net_.Push(id, pushed);
        return pushed;
      }
      // Dead end below e.to for this phase; the arc pointer advances.
    }
    return 0;
  }

  FlowNetwork& net_;
  const NodeId source_;
  const NodeId sink_;
  std::vector<int> level_;
  std::vector<size_t> arc_;
  uint64_t phases_ = 0;
  uint64_t augmenting_paths_ = 0;
  uint64_t edges_scanned_ = 0;
};

}  // namespace

Capacity MaxFlowDinic(FlowNetwork* network, NodeId source, NodeId sink) {
  return Dinic(network, source, sink).Run();
}

const char* MaxFlowAlgorithmName(MaxFlowAlgorithm algorithm) {
  switch (algorithm) {
    case MaxFlowAlgorithm::kDinic:
      return "dinic";
    case MaxFlowAlgorithm::kPushRelabel:
      return "push_relabel";
    case MaxFlowAlgorithm::kEdmondsKarp:
      return "edmonds_karp";
  }
  return "unknown";
}

Capacity MaxFlow(FlowNetwork* network, NodeId source, NodeId sink,
                 MaxFlowAlgorithm algorithm) {
  switch (algorithm) {
    case MaxFlowAlgorithm::kDinic:
      return MaxFlowDinic(network, source, sink);
    case MaxFlowAlgorithm::kPushRelabel:
      return MaxFlowPushRelabel(network, source, sink);
    case MaxFlowAlgorithm::kEdmondsKarp:
      return MaxFlowEdmondsKarp(network, source, sink);
  }
  return 0;
}

}  // namespace mc3::flow
