#include <algorithm>
#include <deque>
#include <limits>
#include <vector>

#include "flow/max_flow.h"

namespace mc3::flow {
namespace {

/// Dinic's algorithm: repeat { BFS level graph; DFS blocking flow } until the
/// sink is unreachable. The DFS keeps a current-arc iterator per node so each
/// phase is O(VE).
class Dinic {
 public:
  Dinic(FlowNetwork* network, NodeId source, NodeId sink)
      : net_(*network),
        source_(source),
        sink_(sink),
        level_(network->NumNodes()),
        arc_(network->NumNodes()) {}

  Capacity Run() {
    Capacity total = 0;
    while (Bfs()) {
      std::fill(arc_.begin(), arc_.end(), 0);
      while (true) {
        const Capacity pushed =
            Dfs(source_, std::numeric_limits<Capacity>::infinity());
        if (pushed <= kCapacityEpsilon) break;
        total += pushed;
      }
    }
    return total;
  }

 private:
  bool Bfs() {
    std::fill(level_.begin(), level_.end(), -1);
    std::deque<NodeId> queue;
    level_[source_] = 0;
    queue.push_back(source_);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (int id : net_.OutEdges(u)) {
        const auto& e = net_.edge(id);
        if (e.residual > kCapacityEpsilon && level_[e.to] < 0) {
          level_[e.to] = level_[u] + 1;
          queue.push_back(e.to);
        }
      }
    }
    return level_[sink_] >= 0;
  }

  Capacity Dfs(NodeId u, Capacity limit) {
    if (u == sink_) return limit;
    const auto& out = net_.OutEdges(u);
    for (size_t& i = arc_[u]; i < out.size(); ++i) {
      const int id = out[i];
      const auto& e = net_.edge(id);
      if (e.residual <= kCapacityEpsilon || level_[e.to] != level_[u] + 1) {
        continue;
      }
      const Capacity pushed = Dfs(e.to, std::min(limit, e.residual));
      if (pushed > kCapacityEpsilon) {
        net_.Push(id, pushed);
        return pushed;
      }
      // Dead end below e.to for this phase; the arc pointer advances.
    }
    return 0;
  }

  FlowNetwork& net_;
  const NodeId source_;
  const NodeId sink_;
  std::vector<int> level_;
  std::vector<size_t> arc_;
};

}  // namespace

Capacity MaxFlowDinic(FlowNetwork* network, NodeId source, NodeId sink) {
  return Dinic(network, source, sink).Run();
}

const char* MaxFlowAlgorithmName(MaxFlowAlgorithm algorithm) {
  switch (algorithm) {
    case MaxFlowAlgorithm::kDinic:
      return "dinic";
    case MaxFlowAlgorithm::kPushRelabel:
      return "push_relabel";
    case MaxFlowAlgorithm::kEdmondsKarp:
      return "edmonds_karp";
  }
  return "unknown";
}

Capacity MaxFlow(FlowNetwork* network, NodeId source, NodeId sink,
                 MaxFlowAlgorithm algorithm) {
  switch (algorithm) {
    case MaxFlowAlgorithm::kDinic:
      return MaxFlowDinic(network, source, sink);
    case MaxFlowAlgorithm::kPushRelabel:
      return MaxFlowPushRelabel(network, source, sink);
    case MaxFlowAlgorithm::kEdmondsKarp:
      return MaxFlowEdmondsKarp(network, source, sink);
  }
  return 0;
}

}  // namespace mc3::flow
