#include "flow/hopcroft_karp.h"

#include <deque>
#include <limits>

namespace mc3::flow {
namespace {

constexpr int32_t kInfDist = std::numeric_limits<int32_t>::max();

/// Adjacency of left vertices.
std::vector<std::vector<int32_t>> BuildAdjacency(const BipartiteGraph& graph) {
  std::vector<std::vector<int32_t>> adj(graph.num_left);
  for (const auto& [l, r] : graph.edges) adj[l].push_back(r);
  return adj;
}

class HopcroftKarp {
 public:
  explicit HopcroftKarp(const BipartiteGraph& graph)
      : adj_(BuildAdjacency(graph)),
        num_left_(graph.num_left),
        match_left_(graph.num_left, -1),
        match_right_(graph.num_right, -1),
        dist_(graph.num_left, kInfDist) {}

  Matching Run() {
    int32_t size = 0;
    while (Bfs()) {
      for (int32_t l = 0; l < num_left_; ++l) {
        if (match_left_[l] == -1 && Dfs(l)) ++size;
      }
    }
    Matching m;
    m.match_left = std::move(match_left_);
    m.match_right = std::move(match_right_);
    m.size = size;
    return m;
  }

 private:
  /// Layers free left vertices at distance 0 and alternates
  /// unmatched/matched edges; returns whether an augmenting path exists.
  bool Bfs() {
    std::deque<int32_t> queue;
    for (int32_t l = 0; l < num_left_; ++l) {
      if (match_left_[l] == -1) {
        dist_[l] = 0;
        queue.push_back(l);
      } else {
        dist_[l] = kInfDist;
      }
    }
    bool found_free_right = false;
    while (!queue.empty()) {
      const int32_t l = queue.front();
      queue.pop_front();
      for (int32_t r : adj_[l]) {
        const int32_t l2 = match_right_[r];
        if (l2 == -1) {
          found_free_right = true;
        } else if (dist_[l2] == kInfDist) {
          dist_[l2] = dist_[l] + 1;
          queue.push_back(l2);
        }
      }
    }
    return found_free_right;
  }

  bool Dfs(int32_t l) {
    for (int32_t r : adj_[l]) {
      const int32_t l2 = match_right_[r];
      if (l2 == -1 || (dist_[l2] == dist_[l] + 1 && Dfs(l2))) {
        match_left_[l] = r;
        match_right_[r] = l;
        return true;
      }
    }
    dist_[l] = kInfDist;
    return false;
  }

  std::vector<std::vector<int32_t>> adj_;
  const int32_t num_left_;
  std::vector<int32_t> match_left_;
  std::vector<int32_t> match_right_;
  std::vector<int32_t> dist_;
};

}  // namespace

Matching MaxMatchingHopcroftKarp(const BipartiteGraph& graph) {
  return HopcroftKarp(graph).Run();
}

UnweightedVertexCover MinVertexCoverKoenig(const BipartiteGraph& graph) {
  const Matching matching = MaxMatchingHopcroftKarp(graph);
  const auto adj = BuildAdjacency(graph);

  // Koenig: let Z = vertices reachable from unmatched left vertices by
  // alternating paths (unmatched edge left->right, matched edge right->left).
  // Cover = (L \ Z) union (R intersect Z).
  std::vector<bool> left_visited(graph.num_left, false);
  std::vector<bool> right_visited(graph.num_right, false);
  std::deque<int32_t> queue;
  for (int32_t l = 0; l < graph.num_left; ++l) {
    if (matching.match_left[l] == -1) {
      left_visited[l] = true;
      queue.push_back(l);
    }
  }
  while (!queue.empty()) {
    const int32_t l = queue.front();
    queue.pop_front();
    for (int32_t r : adj[l]) {
      if (matching.match_left[l] == r) continue;  // only unmatched edges L->R
      if (right_visited[r]) continue;
      right_visited[r] = true;
      const int32_t l2 = matching.match_right[r];
      if (l2 != -1 && !left_visited[l2]) {
        left_visited[l2] = true;
        queue.push_back(l2);
      }
    }
  }

  UnweightedVertexCover cover;
  cover.left_in_cover.assign(graph.num_left, false);
  cover.right_in_cover.assign(graph.num_right, false);
  for (int32_t l = 0; l < graph.num_left; ++l) {
    if (!left_visited[l]) {
      cover.left_in_cover[l] = true;
      ++cover.size;
    }
  }
  for (int32_t r = 0; r < graph.num_right; ++r) {
    if (right_visited[r]) {
      cover.right_in_cover[r] = true;
      ++cover.size;
    }
  }
  return cover;
}

}  // namespace mc3::flow
