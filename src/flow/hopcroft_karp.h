// Maximum bipartite matching (Hopcroft-Karp) and minimum *unweighted* vertex
// cover via Koenig's theorem.
//
// This is the substrate for the "Mixed" baseline of [Dushkin et al.,
// EDBT 2019], which solves MC3 with uniform classifier costs and k <= 2
// exactly: with unit weights, bipartite WVC degenerates to unweighted VC,
// i.e. maximum matching.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace mc3::flow {

/// An unweighted bipartite graph given by its edge list.
struct BipartiteGraph {
  int32_t num_left = 0;
  int32_t num_right = 0;
  std::vector<std::pair<int32_t, int32_t>> edges;
};

/// A maximum matching: match_left[l] = matched right vertex or -1; likewise
/// match_right.
struct Matching {
  std::vector<int32_t> match_left;
  std::vector<int32_t> match_right;
  int32_t size = 0;
};

/// Computes a maximum matching in O(E sqrt V).
Matching MaxMatchingHopcroftKarp(const BipartiteGraph& graph);

/// Minimum unweighted vertex cover derived from a maximum matching via
/// Koenig's theorem: |cover| = |matching|.
struct UnweightedVertexCover {
  std::vector<bool> left_in_cover;
  std::vector<bool> right_in_cover;
  int32_t size = 0;
};
UnweightedVertexCover MinVertexCoverKoenig(const BipartiteGraph& graph);

}  // namespace mc3::flow

