// Weighted Vertex Cover on bipartite graphs via max-flow (Theorem 2.3 of the
// paper, reduction per [Baiou-Barahona 2016]). This is the engine behind the
// exact k = 2 solver (Algorithm 2).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "flow/max_flow.h"
#include "util/status.h"

namespace mc3::flow {

/// A bipartite graph with weighted vertices on both sides. Vertices may have
/// weight +infinity, meaning they must never enter the cover (the paper models
/// omitted classifiers this way); such weights are clamped internally.
struct BipartiteVcInstance {
  std::vector<double> left_weights;
  std::vector<double> right_weights;
  /// Edges as (left index, right index) pairs.
  std::vector<std::pair<int32_t, int32_t>> edges;
};

/// A vertex cover: the chosen vertices on each side, plus its total weight.
struct BipartiteVcSolution {
  std::vector<bool> left_in_cover;
  std::vector<bool> right_in_cover;
  double weight = 0;
};

/// Solves weighted vertex cover on a bipartite graph exactly.
///
/// Construction: source -> each left vertex with capacity w(l); each right
/// vertex -> sink with capacity w(r); each edge (l, r) with infinite
/// capacity. A minimum s-t cut corresponds to a minimum-weight cover: left
/// vertices whose source edge is cut plus right vertices whose sink edge is
/// cut. Infinite vertex weights are clamped to (sum of finite weights + 1).
///
/// Returns kInfeasible if some edge has both endpoints of infinite weight
/// (no finite cover exists).
Result<BipartiteVcSolution> SolveBipartiteVertexCover(
    const BipartiteVcInstance& instance,
    MaxFlowAlgorithm algorithm = MaxFlowAlgorithm::kDinic);

/// Verifies that `solution` covers every edge of `instance`; test helper.
bool IsVertexCover(const BipartiteVcInstance& instance,
                   const BipartiteVcSolution& solution);

}  // namespace mc3::flow

