#include "flow/bipartite_vertex_cover.h"

#include <cmath>
#include <limits>

namespace mc3::flow {

Result<BipartiteVcSolution> SolveBipartiteVertexCover(
    const BipartiteVcInstance& instance, MaxFlowAlgorithm algorithm) {
  const auto num_left = static_cast<int32_t>(instance.left_weights.size());
  const auto num_right = static_cast<int32_t>(instance.right_weights.size());

  // Sum of finite weights; used as the clamp for infinite weights. If every
  // edge has at least one finite endpoint, the all-finite-vertices cover is
  // feasible and costs at most this sum, so a clamped vertex can never be
  // part of a minimum cut.
  double finite_sum = 0;
  for (double w : instance.left_weights) {
    if (w < 0) return Status::InvalidArgument("negative left vertex weight");
    if (std::isfinite(w)) finite_sum += w;
  }
  for (double w : instance.right_weights) {
    if (w < 0) return Status::InvalidArgument("negative right vertex weight");
    if (std::isfinite(w)) finite_sum += w;
  }
  const double clamp = finite_sum + 1;

  for (const auto& [l, r] : instance.edges) {
    if (l < 0 || l >= num_left || r < 0 || r >= num_right) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (!std::isfinite(instance.left_weights[l]) &&
        !std::isfinite(instance.right_weights[r])) {
      return Status::Infeasible(
          "edge with both endpoints of infinite weight has no finite cover");
    }
  }

  // Node layout: 0 = source, 1..num_left = left, then right, then sink.
  const NodeId source = 0;
  const NodeId sink = 1 + num_left + num_right;
  FlowNetwork net(sink + 1);
  auto left_node = [&](int32_t l) { return 1 + l; };
  auto right_node = [&](int32_t r) { return 1 + num_left + r; };

  for (int32_t l = 0; l < num_left; ++l) {
    const double w = instance.left_weights[l];
    net.AddEdge(source, left_node(l), std::isfinite(w) ? w : clamp);
  }
  for (int32_t r = 0; r < num_right; ++r) {
    const double w = instance.right_weights[r];
    net.AddEdge(right_node(r), sink, std::isfinite(w) ? w : clamp);
  }
  // Edge capacities need only exceed any possible cut; clamp suffices.
  for (const auto& [l, r] : instance.edges) {
    net.AddEdge(left_node(l), right_node(r), clamp);
  }

  MaxFlow(&net, source, sink, algorithm);

  // Source side of the min cut.
  const std::vector<bool> reachable = net.ResidualReachable(source);

  BipartiteVcSolution solution;
  solution.left_in_cover.assign(num_left, false);
  solution.right_in_cover.assign(num_right, false);
  for (int32_t l = 0; l < num_left; ++l) {
    if (!reachable[left_node(l)]) {
      solution.left_in_cover[l] = true;
      solution.weight += instance.left_weights[l];
    }
  }
  for (int32_t r = 0; r < num_right; ++r) {
    if (reachable[right_node(r)]) {
      solution.right_in_cover[r] = true;
      solution.weight += instance.right_weights[r];
    }
  }
  return solution;
}

bool IsVertexCover(const BipartiteVcInstance& instance,
                   const BipartiteVcSolution& solution) {
  for (const auto& [l, r] : instance.edges) {
    if (!solution.left_in_cover[l] && !solution.right_in_cover[r]) {
      return false;
    }
  }
  return true;
}

}  // namespace mc3::flow
