#include "online/sharded_engine.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/instance_util.h"
#include "util/timer.h"

namespace mc3::online {

EngineState CanonicalizeState(EngineState state) {
  for (EngineState::Component& component : state.components) {
    std::sort(component.queries.begin(), component.queries.end());
    std::sort(component.solution.begin(), component.solution.end());
  }
  std::sort(state.components.begin(), state.components.end(),
            [](const EngineState::Component& a,
               const EngineState::Component& b) {
              return a.queries < b.queries;
            });
  return state;
}

ShardedEngine::ShardedEngine(uint32_t num_shards, EngineOptions options)
    : options_(options),
      router_(num_shards == 0 ? 1 : num_shards) {
  const uint32_t n = num_shards == 0 ? 1 : num_shards;
  engines_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) engines_.emplace_back(options);
  last_batch_.shard_ops.assign(n, 0);
  last_batch_.shard_apply_seconds.assign(n, 0.0);
}

Result<UpdateStats> ShardedEngine::Initialize(const Instance& base) {
  if (!base.property_names().empty()) {
    set_property_names(base.property_names());
  }
  // Sorted so a failing classifier reports the same error on every run
  // (mirrors OnlineEngine::Initialize).
  for (const auto& [classifier, cost] : SortedCostEntries(base.costs())) {
    MC3_RETURN_IF_ERROR(SetCost(classifier, cost));
  }
  return ApplyUpdate(base.queries(), {});
}

Status ShardedEngine::SetCost(const PropertySet& classifier, Cost cost) {
  for (OnlineEngine& engine : engines_) {
    MC3_RETURN_IF_ERROR(engine.SetCost(classifier, cost));
  }
  costs_[classifier] = cost;
  return Status::OK();
}

Cost ShardedEngine::CostOf(const PropertySet& classifier) const {
  return engines_.front().CostOf(classifier);
}

bool ShardedEngine::Coverable(const PropertySet& query) const {
  std::unordered_set<PropertyId> covered;
  ForEachNonEmptySubset(query, [&](const PropertySet& sub) {
    if (costs_.count(sub) == 0) return;
    for (const PropertyId p : sub) covered.insert(p);
  });
  return covered.size() == query.size();
}

Status ShardedEngine::ValidateAdds(
    const std::vector<PropertySet>& add) const {
  std::unordered_set<PropertySet, PropertySetHash> seen;
  for (const PropertySet& q : add) {
    if (q.empty()) {
      return Status::InvalidArgument("cannot add the empty query");
    }
    // Duplicates (already live, or repeated in the batch) are skipped
    // without further checks, exactly as the engine skips them.
    if (router_.IsLive(q) || !seen.insert(q).second) continue;
    if (options_.solver == EngineOptions::SolverKind::kK2Exact &&
        q.size() > 2) {
      return Status::InvalidArgument(
          "query " + q.ToString(names_) +
          " has length > 2 but the engine is configured for K2ExactSolver");
    }
    if (!Coverable(q)) {
      return Status::Infeasible(
          "query " + q.ToString(names_) +
          " cannot be covered by finite-cost classifiers of the engine's "
          "table");
    }
  }
  return Status::OK();
}

Result<UpdateStats> ShardedEngine::ApplyUpdate(
    const std::vector<PropertySet>& add,
    const std::vector<PropertySet>& remove) {
  return ApplyUpdate(add, remove, [](std::vector<std::function<void()>>* jobs) {
    for (std::function<void()>& job : *jobs) {
      if (job) job();
    }
  });
}

Result<UpdateStats> ShardedEngine::ApplyUpdate(
    const std::vector<PropertySet>& add,
    const std::vector<PropertySet>& remove, const ShardRunner& runner) {
  const uint32_t n = num_shards();
  if (n == 1) return engines_.front().ApplyUpdate(add, remove);

  // Validate before any router or shard mutation: the whole batch commits
  // or nothing does, matching the single engine's all-or-nothing contract.
  MC3_RETURN_IF_ERROR(ValidateAdds(add));

  const RoutePlan plan = router_.Route(add, remove);
  last_batch_.shard_ops.assign(n, 0);
  last_batch_.shard_apply_seconds.assign(n, 0.0);
  last_batch_.migrated = plan.migrated;

  UpdateStats stats;
  stats.queries_added = plan.queries_added;
  stats.queries_removed = plan.queries_removed;
  stats.duplicate_adds = plan.duplicate_adds;
  stats.missing_removes = plan.missing_removes;
  ++counters_.updates;

  std::vector<std::function<void()>> jobs(n);
  std::vector<Status> statuses(n);
  std::vector<UpdateStats> shard_stats(n);
  // Timed into a local (one slot per shard, no sharing) and copied into
  // last_batch_ after the runner joins, so concurrent jobs never touch a
  // member.
  std::vector<double> apply_seconds(n, 0.0);
  bool any = false;
  for (uint32_t i = 0; i < n; ++i) {
    if (plan.shards[i].empty()) continue;
    any = true;
    last_batch_.shard_ops[i] = plan.shards[i].ops();
    const ShardOps& ops = plan.shards[i];
    jobs[i] = [this, i, &ops, &statuses, &shard_stats, &apply_seconds] {
      const Timer apply_timer;
      auto applied = engines_[i].ApplyUpdate(ops.add, ops.remove);
      apply_seconds[i] = apply_timer.Seconds();
      if (applied.ok()) {
        shard_stats[i] = *applied;
      } else {
        statuses[i] = applied.status();
      }
    };
  }
  if (!any) return stats;
  runner(&jobs);
  last_batch_.shard_apply_seconds = apply_seconds;

  for (uint32_t i = 0; i < n; ++i) {
    if (!statuses[i].ok()) {
      // Unreachable for validated batches (the routed ops were pre-checked
      // against the same replicated table); surfaced loudly as the engine
      // bug it would be.
      return Status::Internal("shard " + std::to_string(i) +
                              " rejected a pre-validated batch: " +
                              statuses[i].message());
    }
    stats.components_dirtied += shard_stats[i].components_dirtied;
    stats.components_resolved += shard_stats[i].components_resolved;
    stats.queries_touched += shard_stats[i].queries_touched;
    stats.resolve_seconds += shard_stats[i].resolve_seconds;
  }
  migrated_total_ += plan.migrated;
  counters_.queries_added += stats.queries_added;
  counters_.queries_removed += stats.queries_removed;
  counters_.components_resolved += stats.components_resolved;
  counters_.queries_touched += stats.queries_touched;
  counters_.resolve_seconds += stats.resolve_seconds;
  return stats;
}

Cost ShardedEngine::TotalCost() const {
  Cost total = 0;
  for (const OnlineEngine& engine : engines_) total += engine.TotalCost();
  return total;
}

Cost ShardedEngine::CanonicalTotalCost() const {
  Cost total = 0;
  for (const EngineState::Component& component : CanonicalState().components) {
    total += component.cost;
  }
  return total;
}

Solution ShardedEngine::CurrentSolution() const {
  Solution merged;
  for (const OnlineEngine& engine : engines_) {
    merged.Merge(engine.CurrentSolution());
  }
  return merged;
}

size_t ShardedEngine::NumQueries() const {
  size_t total = 0;
  for (const OnlineEngine& engine : engines_) total += engine.NumQueries();
  return total;
}

size_t ShardedEngine::NumComponents() const {
  size_t total = 0;
  for (const OnlineEngine& engine : engines_) total += engine.NumComponents();
  return total;
}

EngineCounters ShardedEngine::counters() const {
  if (engines_.size() == 1) return engines_.front().counters();
  return counters_;
}

void ShardedEngine::set_property_names(std::vector<std::string> names) {
  names_ = std::move(names);
  for (OnlineEngine& engine : engines_) {
    engine.set_property_names(names_);
  }
}

ShardedState ShardedEngine::ExportSharded() const {
  ShardedState out;
  out.num_shards = num_shards();
  out.state.property_names = names_;
  out.state.costs = SortedCostEntries(costs_);
  for (uint32_t i = 0; i < engines_.size(); ++i) {
    EngineState shard_state = engines_[i].ExportState();
    for (EngineState::Component& component : shard_state.components) {
      out.state.components.push_back(std::move(component));
      out.component_shards.push_back(i);
    }
  }
  return out;
}

EngineState ShardedEngine::CanonicalState() const {
  return CanonicalizeState(ExportSharded().state);
}

Status ShardedEngine::ImportSharded(const ShardedState& state) {
  if (state.num_shards != num_shards()) {
    return Status::InvalidArgument(
        "snapshot lays out " + std::to_string(state.num_shards) +
        " shard(s) but the engine is sharded " +
        std::to_string(num_shards()) +
        " way(s); restart with a matching --shards");
  }
  if (state.component_shards.size() != state.state.components.size()) {
    return Status::InvalidArgument(
        "snapshot shard tags do not match its component list");
  }
  std::vector<EngineState> per_shard(engines_.size());
  for (EngineState& shard_state : per_shard) {
    shard_state.property_names = state.state.property_names;
    shard_state.costs = state.state.costs;
  }
  for (size_t idx = 0; idx < state.state.components.size(); ++idx) {
    const uint32_t shard = state.component_shards[idx];
    if (shard >= engines_.size()) {
      return Status::InvalidArgument(
          "snapshot places a component on unknown shard " +
          std::to_string(shard));
    }
    per_shard[shard].components.push_back(state.state.components[idx]);
  }
  for (uint32_t i = 0; i < engines_.size(); ++i) {
    MC3_RETURN_IF_ERROR(engines_[i].ImportState(per_shard[i]));
  }
  names_ = state.state.property_names;
  // mc3-lint: unordered-ok(ShardedState.costs is a sorted vector, not a map)
  for (const auto& [classifier, cost] : state.state.costs) {
    costs_[classifier] = cost;
  }
  if (num_shards() > 1) {
    std::vector<std::vector<PropertySet>> live(engines_.size());
    for (size_t idx = 0; idx < state.state.components.size(); ++idx) {
      for (const PropertySet& q : state.state.components[idx].queries) {
        live[state.component_shards[idx]].push_back(q);
      }
    }
    MC3_RETURN_IF_ERROR(router_.AdoptAssignment(live));
  }
  return Status::OK();
}

Status ShardedEngine::CheckInvariants() const {
  for (const OnlineEngine& engine : engines_) {
    MC3_RETURN_IF_ERROR(engine.CheckInvariants());
  }
  if (num_shards() == 1) return Status::OK();

  // The sharding contract: no property (and hence no connected component)
  // spans two shards, the router placement matches reality, and the cost
  // table is replicated bit-exactly.
  std::unordered_map<PropertyId, uint32_t> prop_shard;
  size_t total_live = 0;
  const std::vector<std::pair<PropertySet, Cost>> table =
      SortedCostEntries(costs_);
  for (uint32_t i = 0; i < engines_.size(); ++i) {
    const EngineState shard_state = engines_[i].ExportState();
    for (const EngineState::Component& component : shard_state.components) {
      for (const PropertySet& q : component.queries) {
        ++total_live;
        if (router_.ShardOf(q) != i) {
          return Status::Internal(
              "router places a live query away from its shard");
        }
        for (const PropertyId p : q) {
          const auto [it, inserted] = prop_shard.emplace(p, i);
          if (!inserted && it->second != i) {
            return Status::Internal(
                "property shared across shards (a component is split)");
          }
        }
      }
    }
    if (shard_state.costs.size() != table.size()) {
      return Status::Internal("cost table not fully replicated to a shard");
    }
    for (const auto& [classifier, cost] : table) {
      // mc3-lint: float-eq-ok(replication is bit-exact: same SetCost values)
      if (engines_[i].CostOf(classifier) != cost) {
        return Status::Internal("cost table diverged on a shard");
      }
    }
  }
  if (router_.num_live() != total_live) {
    return Status::Internal("router live set out of sync with the shards");
  }
  return router_.CheckInvariants();
}

}  // namespace mc3::online
