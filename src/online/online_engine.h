// Incremental serving engine: component-scoped re-solve over an evolving
// query log.
//
// The paper's setting is an e-commerce query log that changes continuously
// (Section 6), yet the batch solvers recompute everything on any change.
// Observation 3.2 (Algorithm 1 step 2) says the instance decomposes into
// independent connected components of the shared-property graph — so a
// single update can only invalidate the components whose property sets it
// touches. The engine exploits this:
//
//   * it owns a live query set and classifier cost table;
//   * a property -> component index (components partition the properties of
//     live queries) locates the components an update touches;
//   * adds can merge components, removes can split them; instead of
//     maintaining a decremental connectivity structure, the partition is
//     recomputed lazily for the dirty region only (a fresh union-find over
//     the touched components' queries);
//   * each dirty component is re-solved from scratch through the existing
//     batch machinery (GeneralSolver / K2ExactSolver / ShortFirstSolver),
//     dirty components in parallel via SolverOptions::num_threads;
//   * untouched components keep their stored Solution verbatim.
//
// Work per update is proportional to the dirty region, not the universe —
// the same observation sub-linear Set Cover algorithms build on (Indyk et
// al., arXiv:1902.03534). See docs/online.md for the full model.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/instance.h"
#include "core/solution.h"
#include "core/solver.h"
#include "util/status.h"

namespace mc3::online {

/// Engine configuration.
struct EngineOptions {
  /// Which batch solver re-solves a dirty component. kAuto picks
  /// K2ExactSolver when the component's queries all have length <= 2 (the
  /// exact PTIME regime) and GeneralSolver otherwise.
  enum class SolverKind { kAuto, kGeneral, kK2Exact, kShortFirst };
  SolverKind solver = SolverKind::kAuto;

  /// Options forwarded to the per-component solver. `num_threads` is used
  /// by the engine itself to re-solve dirty components concurrently; the
  /// inner solvers always run single-threaded (their instances are single
  /// components already).
  SolverOptions solver_options;
};

/// Diagnostics of one update batch.
struct UpdateStats {
  size_t queries_added = 0;
  size_t queries_removed = 0;
  size_t duplicate_adds = 0;    ///< adds ignored: query already live
  size_t missing_removes = 0;   ///< removes ignored: query not live
  /// Pre-existing components invalidated by the batch (merged, split,
  /// shrunk or grown).
  size_t components_dirtied = 0;
  /// Components solved by this update (the dirty region's new partition).
  size_t components_resolved = 0;
  /// Live queries in the dirty region (re-solved queries).
  size_t queries_touched = 0;
  /// Wall time of the update: repartition + sub-instance builds + solves.
  double resolve_seconds = 0;
};

/// Cumulative counters over the engine's lifetime.
struct EngineCounters {
  size_t updates = 0;
  size_t queries_added = 0;
  size_t queries_removed = 0;
  size_t components_resolved = 0;
  size_t queries_touched = 0;
  double resolve_seconds = 0;
};

/// Serializable point-in-time engine state: the payload of a durability
/// snapshot (src/durability/snapshot.h, docs/durability.md). Canonical
/// form — costs sorted by classifier, components ordered by creation id
/// with queries in live-slot order, solutions sorted — so exporting,
/// importing and re-exporting yields an identical value.
struct EngineState {
  std::vector<std::string> property_names;
  /// The full classifier price table, sorted by classifier.
  std::vector<std::pair<PropertySet, Cost>> costs;
  struct Component {
    std::vector<PropertySet> queries;   ///< live queries, slot order
    std::vector<PropertySet> solution;  ///< stored solution, sorted
    Cost cost = 0;                      ///< stored solve cost
  };
  std::vector<Component> components;

  size_t NumQueries() const;
};

/// The incremental engine. Not thread-safe: callers serialize updates (the
/// engine parallelizes internally across dirty components).
class OnlineEngine {
 public:
  explicit OnlineEngine(EngineOptions options = {});

  /// Merges `instance`'s cost table into the engine's and adds all its
  /// queries as one batch. Property names are adopted.
  Result<UpdateStats> Initialize(const Instance& instance);

  /// Prices `classifier` (overwriting any previous price). Costs can be
  /// added or re-priced but never removed: `cost` must be finite and
  /// non-negative, and re-pricing does not re-solve components that already
  /// bought the classifier (their stored cost keeps the old price until
  /// something else dirties them).
  Status SetCost(const PropertySet& classifier, Cost cost);

  /// Price of `classifier` in the engine's table; +infinity when absent.
  Cost CostOf(const PropertySet& classifier) const;

  /// Applies one update batch: removes first, then adds. Only the touched
  /// components are repartitioned and re-solved. Fails without mutating
  /// anything when an added query is empty, or is not coverable by
  /// finite-cost classifiers of the engine's table (price its subsets
  /// first).
  Result<UpdateStats> ApplyUpdate(const std::vector<PropertySet>& add,
                                  const std::vector<PropertySet>& remove);

  /// Convenience wrappers over ApplyUpdate.
  Result<UpdateStats> AddQueries(const std::vector<PropertySet>& queries);
  Result<UpdateStats> RemoveQueries(const std::vector<PropertySet>& queries);

  /// Aggregate construction cost of the maintained cover (sum of the
  /// per-component solve costs).
  Cost TotalCost() const { return total_cost_; }

  /// Union of the per-component solutions: the classifiers to keep trained.
  Solution CurrentSolution() const;

  /// Materializes the current instance: live queries plus the relevant
  /// finite-cost classifiers.
  Instance LiveInstance() const;

  size_t NumQueries() const { return num_live_; }
  size_t NumComponents() const { return components_.size(); }
  const EngineCounters& counters() const { return counters_; }

  const std::vector<std::string>& property_names() const { return names_; }
  void set_property_names(std::vector<std::string> names) {
    names_ = std::move(names);
  }

  /// Exports the full engine state (price table, live queries, stored
  /// per-component solutions) in canonical form. The inverse of
  /// ImportState: importing the export into a fresh engine reproduces the
  /// live set, the solution store and every future update byte-identically
  /// (cumulative counters are not part of the state and restart at zero).
  EngineState ExportState() const;

  /// Restores an exported state into this engine, which must be untouched
  /// (no costs, no queries). Validates structural integrity — non-empty
  /// distinct queries, finite non-negative costs, components that partition
  /// their properties — but not coverage; run CheckInvariants afterwards
  /// for the full O(instance) audit.
  Status ImportState(const EngineState& state);

  /// Invariant checker (O(instance)): the maintained cover passes
  /// VerifyCoverage on the live instance, the component index partitions
  /// the live queries and their properties exactly, and the cached
  /// aggregate cost matches the per-component solutions.
  Status CheckInvariants() const;

 private:
  struct Component {
    std::vector<size_t> queries;  ///< live query slots of this component
    Solution solution;
    Cost cost = 0;
  };

  /// True iff every property of `query` is covered by some finite-cost
  /// classifier of the table that is a subset of `query`.
  bool Coverable(const PropertySet& query) const;

  /// Builds the sub-instance over the live queries in `slots`.
  Instance BuildSubInstance(const std::vector<size_t>& slots) const;

  /// Solves `sub` with the configured solver. On success stores solution
  /// and cost into `out`.
  Status SolveComponent(const Instance& sub, Component* out) const;

  EngineOptions options_;

  /// Every query ever seen, with tombstones; `slot_of_` maps a query to its
  /// slot so removed queries can be revived in place.
  std::vector<PropertySet> queries_;
  std::vector<bool> live_;
  std::unordered_map<PropertySet, size_t, PropertySetHash> slot_of_;
  size_t num_live_ = 0;

  CostMap costs_;
  std::vector<std::string> names_;

  /// Component registry; ids are never reused.
  std::unordered_map<size_t, Component> components_;
  size_t next_component_id_ = 0;
  /// Slot -> owning component id (valid for live slots only).
  std::vector<size_t> component_of_slot_;
  /// Property -> owning component id. A property of a live query belongs to
  /// exactly one component.
  std::unordered_map<PropertyId, size_t> component_of_prop_;

  Cost total_cost_ = 0;
  EngineCounters counters_;
};

}  // namespace mc3::online

